// Package anonmix is a from-scratch Go reproduction of
//
//	Yong Guan, Xinwen Fu, Riccardo Bettati, Wei Zhao.
//	"An Optimal Strategy for Anonymous Communication Protocols."
//	Proceedings of ICDCS 2002.
//
// The paper quantifies how rerouting-based anonymous communication
// systems (Anonymizer, Freedom, Onion Routing, Crowds, PipeNet, ...)
// protect sender identity against a passive adversary that compromises C
// of the N system nodes plus the receiver, measures that protection with
// the entropy-based anonymity degree H*(S), and derives the path-length
// distribution maximizing it.
//
// # Architecture
//
// Every way of computing the paper's one headline quantity — the
// anonymity degree H*(S) — hangs off a single scenario layer:
//
//   - internal/scenario — the unification seam. A Config declares a run
//     (population N, adversary, strategy, protocol substrate, workload);
//     scenario.Run(cfg) executes it on any registered Backend: "exact"
//     (closed form), "mc" (sampling estimator), or "testbed" (discrete-
//     event network simulation). Backends refuse what they cannot express
//     with a shared capability error type (internal/scenario/capability),
//     so callers switch backends on errors.Is instead of string-matching.
//     The scenario layer also owns the process-wide engine cache; a
//     cross-backend agreement test pins exact == Monte-Carlo == testbed
//     within sampling error across strategies and receiver modes.
//
//     Workloads have a second dimension beyond message count: Rounds.
//     With Workload.Rounds > 1 a scenario becomes a set of persistent
//     sender→receiver sessions — one initiator re-forming its path every
//     round — and every backend implements the repeated-communication
//     attack of Wright et al. ([23] in the paper): the exact backend
//     accumulates exact per-round posteriors by Bayesian log-posterior
//     multiplication (adversary.Accumulator), the Monte-Carlo backend
//     folds sampled multi-round sessions through the shared engine, and
//     the testbed runs the sessions on the event kernel — intersection
//     accumulation on the routed substrates, Reiter–Rubin predecessor
//     counting on Crowds. Results carry the degradation curve H_1..H_k
//     (Result.HRounds) and, with Workload.Confidence set, identification
//     statistics; a second agreement test pins the three backends' curves
//     against each other at k ∈ {1, 4, 16}. internal/degrade is a thin
//     façade over this machinery.
//
//     The third dimension is time: Config.Timeline makes the population
//     dynamic as a sequence of piecewise-constant Epochs, each carrying a
//     traffic budget (Messages or Rounds) and deltas — joins, leaves,
//     creeping compromise, recovery — applied under deterministic identity
//     rules shared by every backend. The exact backend computes each
//     phase's H*(S_e) through the shared engine cache and blends a
//     traffic-weighted mixture; Monte-Carlo samples each phase stratified;
//     the testbed executes the schedule as kernel-level churn events at
//     virtual timestamps with path selection restricted to the live
//     membership. Degradation timelines thread persistent sessions across
//     the phase boundaries through adversary.PhasedAccumulator: each
//     round's posterior lives over its phase's population, accumulation
//     happens over the union identity space, members absent during an
//     observed round are eliminated, and a sender the adversary swallows
//     mid-timeline is identified from that phase on. Result.Epochs carries
//     the per-phase trajectory next to the blended curve. The contract is
//     pinned three ways: a timeline agreement test (grow / shrink / creep
//     × both receiver modes), a seeded differential harness running ~100
//     generated scenarios — the full space of strategies, protocols,
//     rounds, and timelines — on every capable backend, and fuzz targets
//     (FuzzNormalize, FuzzParseTimeline, pathsel.FuzzStrategyLookup)
//     asserting that nothing panics and only ErrBadConfig or capability
//     errors escape.
//
// The analysis stack underneath:
//
//   - internal/events — the exact Bayesian anonymity-degree engine
//     (counted shape buckets, polynomial in C)
//   - internal/theory — closed forms for the paper's Theorems 1–3
//   - internal/optimize — the §5.4 optimal-distribution solvers
//   - internal/dist, internal/pathsel — length distributions & strategies;
//     pathsel.Lookup resolves name-addressable specs ("crowds:0.75,20",
//     "uniform:0,10") from a registry shared by every CLI
//   - internal/adversary, internal/trace, internal/montecarlo — the threat
//     model pipeline and the sampling estimator
//   - internal/figures — regenerates every figure of the paper's §6, plus
//     ablations and the cross-backend comparison figure
//   - internal/core — the library facade (System, strategies, optimum)
//
// The simulation stack:
//
//   - internal/simnet — the testbed, built on a sharded discrete-event
//     kernel: nodes are virtual, events ("packet arrives at node v at
//     logical time t") live in per-shard binary heaps, and one goroutine
//     per shard (pool.Workers(), never per node) drains them. Goroutines
//     and memory scale with in-flight traffic, not with N, so a
//     1,000,000-node system runs a 1,000-message workload in a few
//     megabytes of heap and a handful of milliseconds. Per-hop delays are
//     a pure function of (seed, message, hop), keeping runs reproducible
//     under any shard scheduling; an optional threshold-mix batching
//     stage holds packets per node and flushes full (or quiescent)
//     batches in shuffled order with a shared release time. Dynamic
//     populations are kernel-native: Config.Churn schedules per-node
//     join/leave/compromise/recover transitions at virtual timestamps,
//     evaluated read-only at each event's logical time (race-free under
//     any shard interleaving, per-churned-node state only — never O(N)),
//     and Settle/AdvanceTime let a driver place traffic phases on
//     disjoint time windows with the transitions on the boundaries.
//   - internal/onion, internal/crowds, internal/mixbatch — protocol
//     substrates plugged into the kernel through the Forwarder interface
//     (layered encryption, coin-flip jondo routing, batch linkage
//     analysis).
//
// # Reliability
//
// The fourth scenario dimension is failure. Config.Faults declares a
// fault plan (internal/faults): a per-link loss probability, per-hop
// latency jitter, and crash/recover schedules at virtual timestamps,
// parsed from the CLI syntax "loss=0.05,jitter=3,crash=3@100-200" by
// faults.ParseFaults. Config.Reliability picks the delivery policy the
// network answers faults with: PolicyNone (drop and move on),
// PolicyRetransmit (per-link retries under an exponential backoff
// budget), or PolicyReroute (the driver re-injects failed messages end
// to end over freshly drawn paths). Both retry policies are bounded by
// MaxAttempts, which is what makes Settle terminate even under 100%
// loss — a run degrades gracefully to zero delivery instead of hanging.
//
// Loss draws are a pure function of (seed, message, attempt, hop), so a
// faulted run is bit-reproducible under any shard interleaving, like
// every other kernel source of randomness. Every backend reports
// Result.DeliveryRate and Result.MeanAttempts next to H; the exact
// backend folds PolicyNone loss into an effective-delivery length
// distribution P'(l) ∝ P(l)·(1−q)^(l+1) and refuses the retry policies
// and crash schedules with capability errors, while Monte-Carlo and the
// testbed execute them.
//
// Retries are not free: every retransmission a compromised node carries,
// and every failed rerouting attempt, hands the adversary an extra
// partial trace of the same session. Result.HDegraded measures that
// retry-anonymity cost — the delivered trace's posterior folded with one
// posterior per leaked partial observation, analyzed under the
// uncompromised-receiver model (a failed attempt never reached the
// receiver). HDegraded ≤ H always, and the gap grows with the loss rate;
// the reliability-sweep figure and anonsim -faults plot both next to the
// delivery rate. The contract is pinned by a cross-backend agreement
// suite (internal/scenario/reliability_test.go), the fault arm of the
// differential harness, and faults.FuzzParseFaults.
//
// The commands are thin shells over the scenario layer: anonsim runs one
// scenario on any backend (-backend, -strategy, -protocol), anonopt
// solves the design problem and ranks named strategies against the
// optimum, anonbench regenerates figures, and anond serves the same stack
// over HTTP. None of them constructs a network or an estimator directly,
// and all of them classify failures through scenario.Classify: exit code
// 2 (or HTTP 400) for configurations that can never succeed as written,
// 1 (HTTP 422) for capability refusals, 1 (HTTP 500) for runtime
// failures.
//
// The benchmarks in bench_test.go regenerate every figure and theorem of
// the evaluation section; EXPERIMENTS.md records paper-vs-measured for
// each, and DESIGN.md documents the model reconstruction.
//
// # The anond service
//
// internal/anond + cmd/anond expose the stack as a daemon — anonymity
// analysis as a service. POST /v1/scenario runs any backend, POST
// /v1/degradation serves the repeated-communication curve H_1..H_k, POST
// /v1/optimize solves the static and epoch-aware design problems, and
// GET /v1/metrics and /v1/health report counters and liveness. Requests
// are the scenario vocabulary in JSON; the strategy, timeline, and fault
// fields reuse the CLIs' compact string syntaxes verbatim.
//
// The daemon leans on the library's concurrency contracts rather than
// adding its own: concurrent requests share the process-wide engine
// cache; byte-identical in-flight requests coalesce into one computation
// through a single-flight group keyed by the canonicalized request
// fingerprint (the computation runs on a detached context canceled only
// when the last waiting client disconnects); a disconnected client's
// context cancels its run at the backends' next batch checkpoint
// (scenario.RunContext); and ?stream=1 turns a long run into NDJSON
// progress lines fed from Config.Progress, ending in one terminal result
// or error line. A per-client token bucket answers 429 with Retry-After
// when a client outruns its budget, and SIGTERM drains gracefully:
// health flips to 503, new compute work is refused, in-flight runs
// finish, and the final metrics snapshot is flushed to the log.
// `make serve-smoke` exercises all of this over a real socket and is a
// blocking CI step.
//
// # Performance
//
// The analysis stack is built around three layers of shared, concurrency-
// safe state; every layer is exact, so cached results are bit-identical to
// recomputation:
//
//   - internal/combin keeps process-wide grow-on-demand tables for
//     ln(n!) and the stars-and-bars composition counts that dominate the
//     engine's inner loop. Reads are lock-free atomic loads of immutable
//     snapshots; growth is mutex-serialized copy-and-replace.
//
//   - events.Engine aggregates over counted shape buckets instead of
//     concrete observation classes: per-class statistics depend only on
//     (k compromised, m runs, j₂ wide junctions, tail flag), so the
//     Θ(3^C) class space collapses into O(min(C, L)³) buckets with
//     closed-form multiplicities C(k−1,m−1)·C(m−1,j₂). AnonymityDegree,
//     BucketStats, and the optimizer's Weights are therefore exact for
//     any C ≤ N−1 — constant corrupted fractions included (N = 1000,
//     C = 400 evaluates in well under a millisecond) — where the old
//     enumeration capped at C = 12. The per-class APIs (ClassStats,
//     Enumerate) keep that bound; StatsFor handles single classes at any
//     C, which lets the Monte-Carlo estimator cross-validate the bucketed
//     engine deep into the large-C regime.
//
//   - events.Engine memoizes every posterior it computes, keyed by the
//     observation class or bucket set and the exact IEEE-754 fingerprint
//     of the path-length distribution. ClassStats, StatsFor, Weights, and
//     AnonymityDegree never compute a (class, distribution) pair twice,
//     and class enumerations are shared per (C, receiver) across engines.
//     Engines are safe for concurrent use; scenario.Engine additionally
//     shares one engine per configuration process-wide — an LRU with a
//     configurable capacity (SetEngineCacheCapacity) and exported
//     hit/miss/eviction counters (CacheStats) — so figures, CLIs, the
//     estimator, and the testbed adversary all hit one cache.
//
//   - events.Engine.Neighbor is the delta path for drifting populations:
//     a (N±dn, C±dc) engine derived from an existing one instead of built
//     from scratch. All engines descending from one root share a family
//     of per-distribution shape tables — the N-independent part of the
//     bucketed aggregation, merged across buckets with identical
//     (k, base, free) shape — so a derived engine's AnonymityDegree only
//     computes the small N- and C-dependent weight table and a dot
//     product per shape group. The factorization reorders the exact same
//     products, so delta-derived engines agree with fresh ones to the
//     last few ulps (property-tested at ≤ 1e-12 over ±1 steps and ±k
//     jumps); on a 32-epoch timeline at N ≈ 10^5 the per-epoch exact
//     evaluation is ≈ 8x cheaper than fresh construction
//     (BenchmarkTimelineExactDelta). scenario.Engine rides it
//     transparently: a cache miss with any same-flag engine resident is
//     delta-derived rather than rebuilt, which makes exact timeline
//     blending and the epoch-aware optimizer cheap by construction.
//
//   - optimize.MaximizeTimeline lifts the §5.4 design problem to dynamic
//     populations: per-epoch re-optimization warm-started from the
//     previous epoch's optimum (two ascents instead of the full restart
//     budget), plus a joint solve maximizing the traffic-weighted blend
//     Σ w_e·H*_e under one distribution. Like Maximize, results are
//     bit-identical at any pool width. anonopt -epochs and the
//     epoch-optimizer figure are the CLI surfaces.
//
//   - internal/pool is a bounded worker pool (GOMAXPROCS-sized by
//     default) behind every fan-out loop: per-class statistics in events,
//     per-point series generation in figures, restart batches in
//     optimize.Maximize, and sampling workers in montecarlo. The calling
//     goroutine always participates, so a saturated or width-1 pool
//     degrades to inline serial execution — never deadlock — and each
//     task writes only its own output slot, which keeps parallel results
//     byte-identical to the serial reference path (pool.SetWorkers(1)).
//
//   - The sampling hot path — every Monte-Carlo trial and testbed
//     session — is allocation-free at steady state. Path lengths draw
//     from a Vose alias table (dist.Alias, O(1) per draw, effective PMF
//     within 1e-12 of the source distribution), distinct intermediates
//     from per-worker scratch arenas (pathsel.Sampler: a reusable path
//     buffer plus an open-addressed rejection set in the sparse regime, a
//     Fisher–Yates pool in the dense one), and adversarial analysis runs
//     through adversary.Scratch / Accumulator.ObserveScratch — the
//     classify-fold-snapshot pipeline with zero heap traffic once the
//     engine's memoized class statistics are warm (StatsFor itself looks
//     up cached statistics through pooled binary keys, no strings). The
//     multi-round degradation benchmark dropped from ~93ms / 57MB / 366k
//     allocations per op to ~21ms / 15kB / ~120 allocations, and
//     BenchmarkDegradationRounds fails if the per-op allocation count
//     regresses past 1% of the old baseline.
//
//   - Randomness in the trial loops is counter-based (stats.Stream, a
//     SplitMix64 stream): trial t of seed s draws a pure function of
//     (s, t, draw index), so estimates are bit-identical at any worker
//     count — workers steal fixed-size trial batches and merge partial
//     Welford statistics in batch order. The stream derivation shares
//     stats.ForkSeed's lineage with the kernel's per-message draws.
//     Changing the mixing constants, the per-trial draw order, or the
//     stream derivation is a breaking change to every seed-pinned golden
//     (anonbench TSVs, TestSeedDeterminism, the differential harness
//     corpus): regenerate them in the same commit and say so, as
//     documented in internal/stats/stream.go.
//
// # Static invariants
//
// The determinism and error contracts above are not just documented —
// they are machine-checked. internal/analysis is a small go/analysis-
// style framework (stdlib-only: packages load via `go list -json -deps
// -export`, module sources are type-checked into one shared universe,
// and object facts propagate across package boundaries) carrying four
// analyzers, run by cmd/anonlint, `make lint`, the CI lint step, and
// the suite self-check test:
//
//   - detrand: in the determinism-contract packages (simnet, montecarlo,
//     events, faults, adversary, scenario, optimize, pathsel, stats) no
//     time.Now, no global math/rand draws, and no order-sensitive `for
//     range` over a map — writes keyed by the loop key, commutative
//     integer accumulation, and the collect-then-sort idiom pass;
//     appends, sends, early returns, and float reductions do not.
//
//   - seedpurity: every RNG constructor (math/rand.NewSource,
//     stats.NewRand/Fork/ForkSeed/NewStream, and — via derived facts —
//     any helper that feeds a parameter into one of them) must be seeded
//     from an explicit parameter or field, never a literal, a
//     package-level variable, or the wall clock.
//
//   - errcontract: errors born inside Validate/normalize/Parse*
//     functions must stay errors.Is-matchable against a package sentinel
//     (%w-wrapping or errors.Join), because the differential harness and
//     the fuzz targets assert sentinel identity across backends.
//
//   - floatcmp: no exact ==/!= between two computed floating-point
//     values; comparisons against constants and the x != x NaN test are
//     exempt.
//
// A deliberate exception is annotated in place as
// //anonlint:allow <analyzer>(<reason>) — the reason is mandatory, the
// annotation covers only its own line and the next, and a malformed
// annotation is itself a lint failure rather than a silent no-op, so
// `grep -rn 'anonlint:allow'` always enumerates the complete, justified
// exception list.
//
// The benchmark harness doubles as the regression gate:
//
//	make bench-smoke     # perf acceptance suite (same command CI runs)
//	go test -race ./...  # cache-layer safety
//	make lint            # go vet + anonlint (static invariants)
//	make bench           # snapshot BENCH_<date>_<sha>.json
//	make bench-compare   # gate ns/op, B/op, allocs/op vs the baseline
//	make profile         # CPU + heap pprof over the smoke set
//
// EXPERIMENTS.md records the current numbers, including the measured
// speedup of the cache layer over the serial baseline, of the bucketed
// engine over the per-class enumeration, and of the zero-allocation
// sampling fast path over the seed hot loop.
package anonmix
