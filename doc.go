// Package anonmix is a from-scratch Go reproduction of
//
//	Yong Guan, Xinwen Fu, Riccardo Bettati, Wei Zhao.
//	"An Optimal Strategy for Anonymous Communication Protocols."
//	Proceedings of ICDCS 2002.
//
// The paper quantifies how rerouting-based anonymous communication
// systems (Anonymizer, Freedom, Onion Routing, Crowds, PipeNet, ...)
// protect sender identity against a passive adversary that compromises C
// of the N system nodes plus the receiver, measures that protection with
// the entropy-based anonymity degree H*(S), and derives the path-length
// distribution maximizing it.
//
// The library lives under internal/ (importable within this module):
//
//   - internal/core — the public facade (System, strategies, optimum)
//   - internal/events — the exact Bayesian anonymity-degree engine
//   - internal/theory — closed forms for the paper's Theorems 1–3
//   - internal/optimize — the §5.4 optimal-distribution solvers
//   - internal/dist, internal/pathsel — length distributions & strategies
//   - internal/simnet, internal/onion, internal/crowds, internal/mixbatch
//     — the goroutine testbed and protocol substrates
//   - internal/adversary, internal/trace, internal/montecarlo — the threat
//     model pipeline and the sampling estimator
//   - internal/figures — regenerates every figure of the paper's §6
//
// The benchmarks in bench_test.go regenerate every figure and theorem of
// the evaluation section; EXPERIMENTS.md records paper-vs-measured for
// each, and DESIGN.md documents the model reconstruction.
package anonmix
