// Package anonmix is a from-scratch Go reproduction of
//
//	Yong Guan, Xinwen Fu, Riccardo Bettati, Wei Zhao.
//	"An Optimal Strategy for Anonymous Communication Protocols."
//	Proceedings of ICDCS 2002.
//
// The paper quantifies how rerouting-based anonymous communication
// systems (Anonymizer, Freedom, Onion Routing, Crowds, PipeNet, ...)
// protect sender identity against a passive adversary that compromises C
// of the N system nodes plus the receiver, measures that protection with
// the entropy-based anonymity degree H*(S), and derives the path-length
// distribution maximizing it.
//
// The library lives under internal/ (importable within this module):
//
//   - internal/core — the public facade (System, strategies, optimum)
//   - internal/events — the exact Bayesian anonymity-degree engine
//   - internal/theory — closed forms for the paper's Theorems 1–3
//   - internal/optimize — the §5.4 optimal-distribution solvers
//   - internal/dist, internal/pathsel — length distributions & strategies
//   - internal/simnet, internal/onion, internal/crowds, internal/mixbatch
//     — the goroutine testbed and protocol substrates
//   - internal/adversary, internal/trace, internal/montecarlo — the threat
//     model pipeline and the sampling estimator
//   - internal/figures — regenerates every figure of the paper's §6
//
// The benchmarks in bench_test.go regenerate every figure and theorem of
// the evaluation section; EXPERIMENTS.md records paper-vs-measured for
// each, and DESIGN.md documents the model reconstruction.
//
// # Performance
//
// The analysis stack is built around three layers of shared, concurrency-
// safe state; every layer is exact, so cached results are bit-identical to
// recomputation:
//
//   - internal/combin keeps process-wide grow-on-demand tables for
//     ln(n!) and the stars-and-bars composition counts that dominate the
//     engine's inner loop. Reads are lock-free atomic loads of immutable
//     snapshots; growth is mutex-serialized copy-and-replace.
//
//   - events.Engine aggregates over counted shape buckets instead of
//     concrete observation classes: per-class statistics depend only on
//     (k compromised, m runs, j₂ wide junctions, tail flag), so the
//     Θ(3^C) class space collapses into O(min(C, L)³) buckets with
//     closed-form multiplicities C(k−1,m−1)·C(m−1,j₂). AnonymityDegree,
//     BucketStats, and the optimizer's Weights are therefore exact for
//     any C ≤ N−1 — constant corrupted fractions included (N = 1000,
//     C = 400 evaluates in well under a millisecond) — where the old
//     enumeration capped at C = 12. The per-class APIs (ClassStats,
//     Enumerate) keep that bound; StatsFor handles single classes at any
//     C, which lets the Monte-Carlo estimator cross-validate the bucketed
//     engine deep into the large-C regime.
//
//   - events.Engine memoizes every posterior it computes, keyed by the
//     observation class or bucket set and the exact IEEE-754 fingerprint
//     of the path-length distribution. ClassStats, StatsFor, Weights, and
//     AnonymityDegree never compute a (class, distribution) pair twice,
//     and class enumerations are shared per (C, receiver) across engines.
//     Engines are safe for concurrent use; internal/figures additionally
//     shares one engine per (N, C, inference mode) across all generators.
//
//   - internal/pool is a bounded worker pool (GOMAXPROCS-sized by
//     default) behind every fan-out loop: per-class statistics in events,
//     per-point series generation in figures, restart batches in
//     optimize.Maximize, and sampling workers in montecarlo. The calling
//     goroutine always participates, so a saturated or width-1 pool
//     degrades to inline serial execution — never deadlock — and each
//     task writes only its own output slot, which keeps parallel results
//     byte-identical to the serial reference path (pool.SetWorkers(1)).
//
// The benchmark harness doubles as the regression gate:
//
//	make bench-smoke     # perf acceptance suite (same command CI runs)
//	go test -race ./...  # cache-layer safety
//	make bench           # snapshot BENCH_<date>_<sha>.json
//
// EXPERIMENTS.md records the current numbers, including the measured
// speedup of the cache layer over the serial baseline and of the bucketed
// engine over the per-class enumeration.
package anonmix
