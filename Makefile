# Build, test, and benchmark entry points for the anonmix reproduction.

GO ?= go
DATE := $(shell date +%Y%m%d)

.PHONY: all build vet test race bench bench-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench snapshots the full benchmark suite as JSON so the performance
# trajectory is tracked across PRs (see EXPERIMENTS.md).
bench:
	$(GO) test -run '^$$' -bench . -benchmem -json > BENCH_$(DATE).json
	@echo "wrote BENCH_$(DATE).json"

# bench-smoke is the quick acceptance sweep used by CI.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFig3a$$|BenchmarkFig4|BenchmarkWeights$$' -benchmem

clean:
	rm -f BENCH_*.json
