# Build, test, and benchmark entry points for the anonmix reproduction.

GO ?= go
DATE := $(shell date +%Y%m%d)
# The short commit hash keys bench snapshots so a same-day rerun (or a
# stack of PRs landing together) never clobbers an earlier measurement.
SHA := $(shell git rev-parse --short HEAD 2>/dev/null || echo nogit)

.PHONY: all build vet test race bench bench-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench snapshots the full benchmark suite as JSON so the performance
# trajectory is tracked across PRs (see EXPERIMENTS.md).
bench:
	$(GO) test -run '^$$' -bench . -benchmem -json > BENCH_$(DATE)_$(SHA).json
	@echo "wrote BENCH_$(DATE)_$(SHA).json"

# bench-smoke is the quick acceptance sweep; CI runs exactly this target
# so the two can never diverge.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFig3a$$|BenchmarkFig4|BenchmarkWeights$$|BenchmarkDegreeLargeC$$|BenchmarkWeightsLargeC$$' -benchtime=1x -benchmem

clean:
	rm -f BENCH_*.json
