# Build, test, and benchmark entry points for the anonmix reproduction.

GO ?= go
DATE := $(shell date +%Y%m%d)
# The short commit hash keys bench snapshots so a same-day rerun (or a
# stack of PRs landing together) never clobbers an earlier measurement.
SHA := $(shell git rev-parse --short HEAD 2>/dev/null || echo nogit)

.PHONY: all build vet lint test race bench bench-smoke bench-compare cover fuzz-smoke serve-smoke profile clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs go vet plus anonlint, the repository's own static-analysis
# suite (internal/analysis): determinism-contract, seed-purity,
# error-contract, and float-comparison invariants. Suppressions use
# //anonlint:allow <analyzer>(<reason>) with a mandatory reason.
lint: vet
	$(GO) run ./cmd/anonlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# SNAPSHOT picks a free BENCH_<date>_<sha>[...].json name: rerunning at
# the committed baseline's own commit must never clobber the baseline
# (bench-compare would then find one file and silently have nothing to
# compare).
SNAPSHOT = $$(f=BENCH_$(DATE)_$(SHA).json; [ -e $$f ] && f=BENCH_$(DATE)_$(SHA)_r$$(date +%H%M%S).json; echo $$f)

# bench snapshots the full benchmark suite as JSON so the performance
# trajectory is tracked across PRs (see EXPERIMENTS.md).
bench:
	@f=$(SNAPSHOT); $(GO) test -run '^$$' -bench . -benchmem -json > $$f && echo "wrote $$f"

# SMOKE is the single definition of the gated smoke set: bench-smoke,
# bench-smoke-snapshot, and bench-compare all derive from it, so the run
# pattern and the regression gate cannot drift apart.
SMOKE = Fig3a|Fig4[abcd]|Weights|DegreeLargeC|WeightsLargeC|DegradationRounds|ChurnSweep|TimelineExactDelta|MaximizeTimeline|ReliabilitySweep|LossyChurnMillion|MCTrialsPerSecond

# bench-smoke is the quick acceptance sweep; CI runs exactly this target
# so the two can never diverge.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Benchmark($(SMOKE))$$' -benchtime=1x -benchmem

# bench-smoke-snapshot records just the smoke set as a JSON snapshot (the
# cheap CI-side input for bench-compare; `make bench` is the full suite).
# Each benchmark runs BENCHCOUNT times and benchcompare keeps the
# per-metric minimum — contention on a shared runner only ever slows a
# sample down, so min-of-N is the robust estimate of the code's cost.
BENCHCOUNT ?= 3
.PHONY: bench-smoke-snapshot
bench-smoke-snapshot:
	@f=$(SNAPSHOT); $(GO) test -run '^$$' -bench 'Benchmark($(SMOKE))$$' -count=$(BENCHCOUNT) -benchmem -json > $$f && echo "wrote $$f"

# bench-compare diffs the two newest BENCH_*.json snapshots and fails on a
# >20% ns/op regression in the smoke set. CI runs it non-blocking after
# bench-smoke-snapshot, so the committed snapshot is the baseline.
bench-compare:
	$(GO) run ./cmd/benchcompare -smoke '^($(SMOKE))$$'

# profile captures CPU and heap pprof profiles over the smoke benchmarks
# into PROFILE_DIR (flat files, no date key: each run overwrites the last,
# and CI uploads them as build artifacts). Inspect with
# `go tool pprof profiles/cpu.out`.
PROFILE_DIR = profiles
profile:
	@mkdir -p $(PROFILE_DIR)
	$(GO) test -run '^$$' -bench 'Benchmark($(SMOKE))$$' -benchtime=1x -benchmem \
		-cpuprofile $(PROFILE_DIR)/cpu.out -memprofile $(PROFILE_DIR)/heap.out \
		-o $(PROFILE_DIR)/bench.test
	@echo "wrote $(PROFILE_DIR)/cpu.out $(PROFILE_DIR)/heap.out"

# COVER_FLOOR is the scenario layer's coverage gate: the figure recorded
# with the fault-injection layer. New scenario-layer code must arrive with
# tests that keep the package at or above it (the differential harness,
# the timeline suite, and the reliability suite currently hold it there).
COVER_FLOOR = 91.4

# cover measures internal/scenario statement coverage and fails if it
# drops below the recorded floor.
cover:
	@$(GO) test -coverprofile=cover.out ./internal/scenario
	@$(GO) tool cover -func=cover.out | awk -v floor=$(COVER_FLOOR) '\
		/^total:/ { sub(/%/, "", $$3); \
			if ($$3 + 0 < floor + 0) { printf "coverage %s%% below floor %s%%\n", $$3, floor; exit 1 } \
			else { printf "coverage %s%% (floor %s%%)\n", $$3, floor } }'
	@rm -f cover.out

# FUZZTIME bounds each fuzz-smoke target; CI runs exactly this target.
FUZZTIME = 10s

# fuzz-smoke runs every fuzz target briefly (one -fuzz regex per package
# invocation, as the toolchain requires): the scenario configuration
# surface, the CLI epoch syntax, the fault-plan syntax, the strategy
# registry, the onion codec, and the anonlint suppression parser.
fuzz-smoke:
	$(GO) test ./internal/analysis/allow -run '^$$' -fuzz '^FuzzParseAllow$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/scenario -run '^$$' -fuzz '^FuzzNormalize$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/scenario -run '^$$' -fuzz '^FuzzParseTimeline$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/faults -run '^$$' -fuzz '^FuzzParseFaults$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/pathsel -run '^$$' -fuzz '^FuzzStrategyLookup$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/onion -run '^$$' -fuzz '^FuzzBuildPeel$$' -fuzztime $(FUZZTIME)

# serve-smoke boots the anond daemon on an ephemeral port and exercises
# the HTTP surface end to end over a real socket: every /v1 endpoint's
# success and failure statuses, NDJSON streaming, and a SIGTERM drain
# with a request in flight. CI runs exactly this target.
serve-smoke:
	sh scripts/serve_smoke.sh

# clean removes only untracked snapshots: committed BENCH_*.json files are
# the bench-compare trajectory baselines and must survive.
clean:
	@rm -rf $(PROFILE_DIR)
	@for f in BENCH_*.json; do \
		[ -e "$$f" ] || continue; \
		git ls-files --error-unmatch "$$f" >/dev/null 2>&1 || rm -f "$$f"; \
	done
