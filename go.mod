module anonmix

go 1.24
