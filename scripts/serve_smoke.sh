#!/bin/sh
# serve_smoke.sh — end-to-end smoke of the anond daemon over a real
# socket: boot on an ephemeral port, hit every /v1 endpoint (success and
# failure statuses), check NDJSON streaming, then SIGTERM with a request
# in flight and assert the graceful drain finishes it.
#
# Run via `make serve-smoke`. Requires curl; everything else is POSIX sh.
set -eu

GO=${GO:-go}
WORK=$(mktemp -d)
LOG="$WORK/anond.log"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT INT TERM

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    echo "--- daemon log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

# jsonfield FILE KEY — crude extraction of a top-level scalar field.
jsonfield() {
    sed -n "s/.*\"$2\"[[:space:]]*:[[:space:]]*\"\{0,1\}\([^,\"}]*\)\"\{0,1\}.*/\1/p" "$1" | head -1
}

$GO build -o "$WORK/anond" ./cmd/anond

"$WORK/anond" -addr 127.0.0.1:0 -drain-timeout 60s >"$LOG" 2>&1 &
PID=$!

# The daemon logs "listening on 127.0.0.1:PORT" once the socket is bound.
ADDR=
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/.*listening on \([0-9.:]*\)$/\1/p' "$LOG" | head -1)
    [ -n "$ADDR" ] && break
    kill -0 "$PID" 2>/dev/null || fail "daemon exited during startup"
    sleep 0.1
done
[ -n "$ADDR" ] || fail "daemon never reported its address"
BASE="http://$ADDR"
echo "serve-smoke: daemon at $BASE"

status=$(curl -s -o "$WORK/health" -w '%{http_code}' "$BASE/v1/health")
[ "$status" = 200 ] || fail "health: status $status"
[ "$(jsonfield "$WORK/health" status)" = ok ] || fail "health: body $(cat "$WORK/health")"

# Exact scenario: a well-formed run answers 200 with an anonymity degree.
status=$(curl -s -o "$WORK/scenario" -w '%{http_code}' -d \
    '{"n":100,"compromised":1,"strategy":"uniform:1,5"}' "$BASE/v1/scenario")
[ "$status" = 200 ] || fail "scenario: status $status"
h=$(jsonfield "$WORK/scenario" h)
[ -n "$h" ] || fail "scenario: no h in $(cat "$WORK/scenario")"

# A config that can never succeed answers 400 with the bad_config class.
status=$(curl -s -o "$WORK/bad" -w '%{http_code}' -d \
    '{"n":5,"compromised":9}' "$BASE/v1/scenario")
[ "$status" = 400 ] || fail "bad config: status $status"
[ "$(jsonfield "$WORK/bad" class)" = bad_config ] || fail "bad config: class $(cat "$WORK/bad")"

# A backend refusing a well-formed scenario answers 422.
status=$(curl -s -o "$WORK/cap" -w '%{http_code}' -d \
    '{"n":30,"compromised":2,"backend":"exact","strategy":"crowds:0.7"}' "$BASE/v1/scenario")
[ "$status" = 422 ] || fail "capability: status $status"
[ "$(jsonfield "$WORK/cap" class)" = capability ] || fail "capability: class $(cat "$WORK/cap")"

# Degradation: the H_1..H_k curve rides in h_rounds.
status=$(curl -s -o "$WORK/degr" -w '%{http_code}' -d \
    '{"n":30,"compromised":3,"strategy":"uniform:1,6","rounds":5,"messages":400,"seed":1}' \
    "$BASE/v1/degradation")
[ "$status" = 200 ] || fail "degradation: status $status"
grep -q '"h_rounds"' "$WORK/degr" || fail "degradation: no h_rounds in $(cat "$WORK/degr")"

# Optimizer: the designed distribution comes back as support atoms.
status=$(curl -s -o "$WORK/opt" -w '%{http_code}' -d \
    '{"n":40,"c":2,"mean":6}' "$BASE/v1/optimize")
[ "$status" = 200 ] || fail "optimize: status $status"
grep -q '"dist"' "$WORK/opt" || fail "optimize: no dist in $(cat "$WORK/opt")"

# Streaming: progress lines then exactly one terminal result line.
curl -s -d \
    '{"n":60,"compromised":4,"backend":"mc","strategy":"uniform:1,5","messages":100000,"seed":9}' \
    "$BASE/v1/scenario?stream=1" >"$WORK/stream"
grep -q '"progress"' "$WORK/stream" || fail "stream: no progress lines"
[ "$(grep -c '"result"' "$WORK/stream")" = 1 ] || fail "stream: terminal line count != 1"

# Metrics: the counters reflect the traffic above.
status=$(curl -s -o "$WORK/metrics" -w '%{http_code}' "$BASE/v1/metrics")
[ "$status" = 200 ] || fail "metrics: status $status"
grep -q '"engine_cache"' "$WORK/metrics" || fail "metrics: no engine_cache in $(cat "$WORK/metrics")"

# Graceful drain: SIGTERM with a slow request in flight. The in-flight
# run must complete (200 with its curve) and the daemon must exit 0.
curl -s -o "$WORK/inflight" -w '%{http_code}' -d \
    '{"n":97,"compromised":6,"strategy":"uniform:1,9","rounds":40,"messages":8000,"seed":11}' \
    "$BASE/v1/degradation" >"$WORK/inflight_status" &
CURL=$!
for _ in $(seq 1 100); do
    if curl -s "$BASE/v1/metrics" | grep -q '"in_flight": *1'; then break; fi
    sleep 0.05
done
kill -TERM "$PID"
wait "$CURL" || fail "in-flight request aborted by drain"
[ "$(cat "$WORK/inflight_status")" = 200 ] || fail "in-flight request: status $(cat "$WORK/inflight_status")"
grep -q '"h_rounds"' "$WORK/inflight" || fail "in-flight request: incomplete body"
if wait "$PID"; then :; else fail "daemon exited non-zero after SIGTERM"; fi
grep -q 'final metrics' "$LOG" || fail "no final metrics flush in log"

echo "serve-smoke: OK"
