//go:build race

package pathsel

// raceEnabled reports whether the race detector instruments this build;
// allocation budgets are meaningless under its shadow-memory overhead.
const raceEnabled = true
