package pathsel

import (
	"testing"

	"anonmix/internal/dist"
	"anonmix/internal/stats"
	"anonmix/internal/trace"
)

// leakyPMF is an adversarial distribution for the inverse-CDF tail
// regression: its mass sums to 0.9 (far outside dist.Validate's tolerance,
// so it can only enter a Selector built as an in-package literal) and its
// top support atom carries zero mass. A u drawn in [0.9, 1) falls off the
// CDF table, and the pre-fix clamp-to-hi behavior would return the
// zero-mass length 4.
type leakyPMF struct{}

func (leakyPMF) Support() (int, int) { return 1, 4 }
func (leakyPMF) PMF(l int) float64 {
	switch l {
	case 1:
		return 0.5
	case 2:
		return 0.4
	}
	return 0
}
func (leakyPMF) Mean() float64  { return 1.3 }
func (leakyPMF) String() string { return "leaky" }

// TestSampleLengthTailClamp is satellite (a)'s regression: when the CDF
// sums short of a draw, SampleLength must clamp to the last length with
// positive mass, never to a zero-mass atom at the support's end.
func TestSampleLengthTailClamp(t *testing.T) {
	sel := &Selector{n: 50, strategy: Strategy{Name: "leaky", Length: leakyPMF{}, Kind: Simple}}
	rng := stats.NewRand(1)
	sawTail := false
	for i := 0; i < 2000; i++ {
		l := sel.SampleLength(rng)
		if (leakyPMF{}).PMF(l) == 0 {
			t.Fatalf("draw %d: length %d has zero mass", i, l)
		}
		if l == 2 {
			sawTail = true
		}
	}
	if !sawTail {
		t.Error("no draw reached the last positive atom")
	}
}

// TestSamplerLengthAgreesWithPMF: chi-square agreement between the alias
// sampler's length draws and the source distribution, for a distribution
// with interior structure. 6 degrees of freedom; 1e-3 quantile ~22.5.
func TestSamplerLengthAgreesWithPMF(t *testing.T) {
	strat, err := UniformLength(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewSelector(40, strat)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sel.NewSampler()
	if err != nil {
		t.Fatal(err)
	}
	const draws = 140000
	rng := stats.NewStream(3, 0)
	counts := make(map[int]int)
	for i := 0; i < draws; i++ {
		counts[sp.SampleLength(&rng)]++
	}
	var chi2 float64
	for l := 1; l <= 7; l++ {
		exp := draws / 7.0
		d := float64(counts[l]) - exp
		chi2 += d * d / exp
	}
	if chi2 > 22.5 {
		t.Errorf("chi-square = %v over %v", chi2, counts)
	}
}

// TestSamplerDrawCounts pins the stream-consumption contract goldens rely
// on: a point mass consumes zero draws, everything else exactly two.
func TestSamplerDrawCounts(t *testing.T) {
	fixed, err := FixedLength(3)
	if err != nil {
		t.Fatal(err)
	}
	selF, err := NewSelector(10, fixed)
	if err != nil {
		t.Fatal(err)
	}
	spF, err := selF.NewSampler()
	if err != nil {
		t.Fatal(err)
	}
	a, b := stats.NewStream(11, 0), stats.NewStream(11, 0)
	if l := spF.SampleLength(&a); l != 3 {
		t.Fatalf("fixed length draw = %d", l)
	}
	if a.Uint64() != b.Uint64() {
		t.Error("point mass consumed stream draws")
	}

	uni, err := UniformLength(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	selU, err := NewSelector(10, uni)
	if err != nil {
		t.Fatal(err)
	}
	spU, err := selU.NewSampler()
	if err != nil {
		t.Fatal(err)
	}
	a, b = stats.NewStream(11, 0), stats.NewStream(11, 0)
	spU.SampleLength(&a)
	b.Uint64()
	b.Uint64()
	if a.Uint64() != b.Uint64() {
		t.Error("non-point distribution did not consume exactly two draws")
	}
}

// TestSamplerPathProperties: both route shapes produce well-formed paths
// in both the sparse (rejection) and dense (Fisher–Yates) regimes, and
// the returned slice is the sampler's reused buffer.
func TestSamplerPathProperties(t *testing.T) {
	for _, tc := range []struct {
		name string
		n    int
		lo   int
		hi   int
		kind PathKind
	}{
		{"simple sparse", 200, 1, 6, Simple},    // l*16 <= n: rejection set
		{"simple dense", 12, 4, 9, Simple},      // Fisher–Yates pool
		{"simple boundary", 8, 7, 7, Simple},    // l = n-1: every other node
		{"complicated", 15, 1, 10, Complicated}, // cycles allowed
	} {
		t.Run(tc.name, func(t *testing.T) {
			u, err := dist.NewUniform(tc.lo, tc.hi)
			if err != nil {
				t.Fatal(err)
			}
			sel, err := NewSelector(tc.n, Strategy{Name: "t", Length: u, Kind: tc.kind})
			if err != nil {
				t.Fatal(err)
			}
			sp, err := sel.NewSampler()
			if err != nil {
				t.Fatal(err)
			}
			rng := stats.NewStream(9, 0)
			const sender = trace.NodeID(2)
			for i := 0; i < 3000; i++ {
				path, err := sp.SelectPath(&rng, sender)
				if err != nil {
					t.Fatal(err)
				}
				if len(path) < tc.lo || len(path) > tc.hi {
					t.Fatalf("path length %d outside [%d,%d]", len(path), tc.lo, tc.hi)
				}
				seen := make(map[trace.NodeID]bool)
				prev := sender
				for _, v := range path {
					if int(v) < 0 || int(v) >= tc.n {
						t.Fatalf("node %d outside system", v)
					}
					if tc.kind == Simple {
						if v == sender {
							t.Fatal("simple path contains the sender")
						}
						if seen[v] {
							t.Fatalf("simple path repeats node %d", v)
						}
						seen[v] = true
					} else if v == prev {
						t.Fatalf("complicated path forwarded to the current holder %d", v)
					}
					prev = v
				}
			}
		})
	}
}

// TestSamplerMatchesSelectorDistribution: the sampler and the classic
// selector draw hop marginals from the same distribution — checked on the
// first-hop frequencies of a sparse simple strategy, which exercises the
// open-addressed rejection set against the map-based original. Each node
// other than the sender should appear first with probability 1/(n-1);
// 18 dof, 1e-3 quantile ~42.3.
func TestSamplerMatchesSelectorDistribution(t *testing.T) {
	const n, draws = 20, 190000
	strat, err := UniformLength(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewSelector(n, strat)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sel.NewSampler()
	if err != nil {
		t.Fatal(err)
	}
	const sender = trace.NodeID(0)
	for _, src := range []string{"sampler", "selector"} {
		counts := make([]int, n)
		switch src {
		case "sampler":
			rng := stats.NewStream(21, 0)
			for i := 0; i < draws; i++ {
				path, err := sp.SelectPath(&rng, sender)
				if err != nil {
					t.Fatal(err)
				}
				counts[path[0]]++
			}
		case "selector":
			rng := stats.NewRand(21)
			for i := 0; i < draws; i++ {
				path, err := sel.SelectPath(rng, sender)
				if err != nil {
					t.Fatal(err)
				}
				counts[path[0]]++
			}
		}
		if counts[sender] != 0 {
			t.Fatalf("%s: sender drawn as first hop", src)
		}
		exp := float64(draws) / float64(n-1)
		var chi2 float64
		for v := 1; v < n; v++ {
			d := float64(counts[v]) - exp
			chi2 += d * d / exp
		}
		if chi2 > 42.3 {
			t.Errorf("%s: first-hop chi-square = %v", src, chi2)
		}
	}
}

// TestSamplerBufferReuse pins the arena contract: successive draws share
// one backing array, and a retained path is overwritten by the next call.
func TestSamplerBufferReuse(t *testing.T) {
	strat, err := FixedLength(3)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewSelector(30, strat)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sel.NewSampler()
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewStream(4, 0)
	p1, err := sp.SelectPath(&rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := sp.SelectPath(&rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if &p1[0] != &p2[0] {
		t.Error("sampler allocated a fresh path buffer per draw")
	}
}

// TestSamplerRejectsBadSender mirrors the selector's bounds check.
func TestSamplerRejectsBadSender(t *testing.T) {
	strat, err := FixedLength(2)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewSelector(10, strat)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sel.NewSampler()
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewStream(1, 0)
	for _, s := range []trace.NodeID{trace.NodeID(-1), 10, 99} {
		if _, err := sp.SelectPath(&rng, s); err == nil {
			t.Errorf("sender %d accepted", s)
		}
	}
}

// TestSamplerZeroAllocSteadyState asserts the tentpole's core claim at
// the unit level: once warm, a simple-path draw performs zero heap
// allocations in both regimes.
func TestSamplerZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation inflates allocation counts")
	}
	for _, tc := range []struct {
		name string
		n    int
	}{{"sparse", 200}, {"dense", 10}} {
		strat, err := UniformLength(1, 6)
		if err != nil {
			t.Fatal(err)
		}
		sel, err := NewSelector(tc.n, strat)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := sel.NewSampler()
		if err != nil {
			t.Fatal(err)
		}
		rng := stats.NewStream(8, 0)
		allocs := testing.AllocsPerRun(500, func() {
			if _, err := sp.SelectPath(&rng, 3); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocs per draw, want 0", tc.name, allocs)
		}
	}
}
