package pathsel

import (
	"errors"
	"math"
	"testing"

	"anonmix/internal/stats"
	"anonmix/internal/trace"
)

func TestLookupPresets(t *testing.T) {
	cases := []struct {
		spec string
		name string
		kind PathKind
		mean float64
	}{
		{"anonymizer", "Anonymizer", Simple, 1},
		{"lpwa", "LPWA", Simple, 1},
		{"freedom", "Freedom", Simple, 3},
		{"onionrouting1", "Onion Routing I", Simple, 5},
		{"pipenet", "PipeNet", Simple, 3.5},
		{"fixed:5", "F(5)", Simple, 5},
		{" Fixed:5 ", "F(5)", Simple, 5}, // case/space-insensitive
		{"uniform:0,10", "U(0,10)", Simple, 5},
		{"remailer:4", "Anonymous Remailer", Simple, 4},
	}
	for _, tc := range cases {
		s, err := Lookup(tc.spec)
		if err != nil {
			t.Errorf("%q: %v", tc.spec, err)
			continue
		}
		if s.Name != tc.name || s.Kind != tc.kind {
			t.Errorf("%q: got %s/%v, want %s/%v", tc.spec, s.Name, s.Kind, tc.name, tc.kind)
		}
		if math.Abs(s.Length.Mean()-tc.mean) > 1e-12 {
			t.Errorf("%q: mean %v, want %v", tc.spec, s.Length.Mean(), tc.mean)
		}
	}
}

func TestLookupGeometricFamilies(t *testing.T) {
	s, err := Lookup("crowds:0.75,20")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "Crowds" || s.Kind != Complicated {
		t.Errorf("crowds: %+v", s)
	}
	if _, hi := s.Length.Support(); hi != 20 {
		t.Errorf("crowds maxLen = %d", hi)
	}
	// Omitted maxLen falls back to the documented default.
	s, err = Lookup("onionrouting2:0.5")
	if err != nil {
		t.Fatal(err)
	}
	if _, hi := s.Length.Support(); hi != DefaultGeometricMax {
		t.Errorf("default maxLen = %d, want %d", hi, DefaultGeometricMax)
	}
	if _, err := Lookup("hordes:0.7,15"); err != nil {
		t.Error(err)
	}
}

func TestLookupErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus", "", "fixed", "fixed:x", "fixed:1,2", "uniform:3",
		"crowds", "crowds:1.5", "pipenet:3", "uniform:5,2",
	} {
		if _, err := Lookup(spec); err == nil {
			t.Errorf("%q accepted", spec)
		} else if !errors.Is(err, ErrBadStrategy) {
			t.Errorf("%q: err %v not ErrBadStrategy", spec, err)
		}
	}
	if _, err := Lookup("nope:1"); !errors.Is(err, ErrUnknownStrategy) {
		t.Errorf("unknown name err = %v", err)
	}
}

func TestRegisterCustomEntry(t *testing.T) {
	err := Register(Entry{Name: "testonly", Usage: "testonly", Parse: func([]string) (Strategy, error) {
		return FixedLength(2)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("testonly"); err != nil {
		t.Error(err)
	}
	found := false
	for _, e := range Specs() {
		if e.Name == "testonly" {
			found = true
		}
	}
	if !found {
		t.Error("registered entry missing from Specs")
	}
	if err := Register(Entry{}); err == nil {
		t.Error("empty entry accepted")
	}
}

// TestSparsePathFastPath: the rejection-sampling path must produce valid
// simple paths (distinct intermediates, never the sender) on a large
// system without O(N) work per draw.
func TestSparsePathFastPath(t *testing.T) {
	const n = 500_000
	s, err := Lookup("uniform:0,8")
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewSelector(n, s)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(42)
	for trial := 0; trial < 200; trial++ {
		sender := trace.NodeID(rng.Intn(n))
		path, err := sel.SelectPath(rng, sender)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[trace.NodeID]bool{sender: true}
		for _, v := range path {
			if seen[v] {
				t.Fatalf("trial %d: repeated node %v in %v", trial, v, path)
			}
			seen[v] = true
		}
	}
}

func TestSplitSpecs(t *testing.T) {
	got := SplitSpecs(" freedom ; uniform:1,5 ;; fixed:7 ")
	want := []string{"freedom", "uniform:1,5", "fixed:7"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if SplitSpecs("") != nil {
		t.Error("empty list should be nil")
	}
}
