package pathsel_test

// Fuzz target for the strategy registry, mirroring onion.FuzzBuildPeel:
// arbitrary specs must never panic Lookup, every rejection must carry the
// ErrBadStrategy identity, and a resolved strategy must survive the
// selector pipeline.

import (
	"errors"
	"testing"
	"unicode"

	"anonmix/internal/pathsel"
	"anonmix/internal/stats"
)

// FuzzStrategyLookup is seeded from the registry's documented spec shapes
// plus the known-rejected forms of the registry tests.
func FuzzStrategyLookup(f *testing.F) {
	for _, seed := range []string{
		"freedom", "pipenet", "anonymizer", "lpwa", "onionrouting1",
		"fixed:5", "uniform:0,10", "remailer:2",
		"crowds:0.75,20", "onionrouting2:0.8", "hordes:0.7,12",
		"FIXED: 5 ", " crowds : 0.7 ",
		"", ":", "fixed", "fixed:", "fixed:x", "fixed:1,2", "uniform:5",
		"crowds:1.5", "crowds:-1", "warp:9", "freedom:1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		// Bound construction cost, not the parse space: the truncated
		// geometric constructor is linear in maxLen, so specs with huge
		// numeric arguments would turn the fuzzer into a benchmark.
		digits := 0
		for _, r := range spec {
			if unicode.IsDigit(r) {
				if digits++; digits > 6 {
					return
				}
			} else {
				digits = 0
			}
		}
		s, err := pathsel.Lookup(spec)
		if err != nil {
			if !errors.Is(err, pathsel.ErrBadStrategy) {
				t.Fatalf("Lookup(%q) escaped with %v", spec, err)
			}
			return
		}
		// A resolved strategy is a real strategy: it validates against a
		// system large enough for every registry family, or fails with the
		// strategy error identity (e.g. simple paths longer than n−1).
		const n = 50
		if err := s.Validate(n); err != nil {
			if !errors.Is(err, pathsel.ErrBadStrategy) {
				t.Fatalf("Validate of %q escaped with %v", spec, err)
			}
			return
		}
		sel, err := pathsel.NewSelector(n, s)
		if err != nil {
			t.Fatalf("NewSelector of valid %q: %v", spec, err)
		}
		rng := stats.NewRand(1)
		path, err := sel.SelectPath(rng, 3)
		if err != nil {
			t.Fatalf("SelectPath of valid %q: %v", spec, err)
		}
		lo, hi := s.Length.Support()
		if len(path) < lo || len(path) > hi {
			t.Fatalf("path length %d outside support [%d,%d] for %q", len(path), lo, hi, spec)
		}
	})
}
