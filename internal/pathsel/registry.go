package pathsel

// The strategy registry makes every strategy name-addressable, so CLIs,
// scenario configs, and experiment files can all say "crowds:0.75,20" or
// "uniform:0,10" instead of hand-wiring per-flag constructors. Specs have
// the shape
//
//	name[:arg1,arg2,...]
//
// with the arguments parsed by the named entry. The built-in entries cover
// every preset of §2 of the paper plus the parametric families; packages
// can Register additional entries (e.g. an optimizer that materializes its
// output distribution under a name).

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ErrUnknownStrategy reports a spec whose name no registry entry claims.
var ErrUnknownStrategy = fmt.Errorf("%w: unknown strategy name", ErrBadStrategy)

// DefaultGeometricMax is the truncation bound used by geometric-length
// specs (crowds, onionrouting2, hordes) when the spec omits the explicit
// maximum length. Callers that know N should pass min(wanted, N−1)
// explicitly; the default keeps short specs like "crowds:0.75" usable.
const DefaultGeometricMax = 20

// Parser builds a strategy from the comma-separated argument list of a
// spec (already split from the name; empty when the spec had no colon).
type Parser func(args []string) (Strategy, error)

// Entry describes one registered strategy family.
type Entry struct {
	// Name is the spec prefix, lower-case ("crowds", "uniform").
	Name string
	// Usage documents the argument list ("crowds:pf[,maxLen]").
	Usage string
	// Parse builds the strategy.
	Parse Parser
}

var (
	regMu    sync.RWMutex
	registry = map[string]Entry{}
)

// Register adds (or replaces) a registry entry. The name is matched
// case-insensitively at lookup.
func Register(e Entry) error {
	if e.Name == "" || e.Parse == nil {
		return fmt.Errorf("%w: registry entry needs a name and a parser", ErrBadStrategy)
	}
	regMu.Lock()
	defer regMu.Unlock()
	registry[strings.ToLower(e.Name)] = e
	return nil
}

// Specs lists the registered entries sorted by name, for -help output.
func Specs() []Entry {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Entry, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup resolves a strategy spec such as "freedom", "fixed:5",
// "uniform:0,10", or "crowds:0.75,20". Names are case-insensitive;
// surrounding whitespace is ignored.
func Lookup(spec string) (Strategy, error) {
	name := strings.TrimSpace(spec)
	var args []string
	if i := strings.IndexByte(name, ':'); i >= 0 {
		for _, a := range strings.Split(name[i+1:], ",") {
			args = append(args, strings.TrimSpace(a))
		}
		name = name[:i]
	}
	name = strings.ToLower(strings.TrimSpace(name))
	regMu.RLock()
	e, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return Strategy{}, fmt.Errorf("%w: %q (known: %s)", ErrUnknownStrategy, spec, knownNames())
	}
	s, err := e.Parse(args)
	if err != nil {
		if errors.Is(err, ErrBadStrategy) {
			return Strategy{}, fmt.Errorf("pathsel: spec %q (usage %s): %w", spec, e.Usage, err)
		}
		// Constructor errors (e.g. dist validation) gain the strategy
		// sentinel so callers can match the whole family with errors.Is.
		return Strategy{}, fmt.Errorf("%w: spec %q (usage %s): %w", ErrBadStrategy, spec, e.Usage, err)
	}
	return s, nil
}

// SplitSpecs splits a semicolon-separated spec list ("freedom;uniform:1,5")
// into individual specs, trimming whitespace and dropping empties. The
// separator is a semicolon because commas appear inside specs. Every CLI
// spec-list flag goes through this helper so their syntax cannot drift.
func SplitSpecs(list string) []string {
	var out []string
	for _, s := range strings.Split(list, ";") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

// knownNames renders the sorted registry names for error messages.
func knownNames() string {
	specs := Specs()
	names := make([]string, len(specs))
	for i, e := range specs {
		names[i] = e.Name
	}
	return strings.Join(names, ", ")
}

// argInts parses exactly want integer arguments.
func argInts(args []string, want int) ([]int, error) {
	if len(args) != want {
		return nil, fmt.Errorf("%w: need %d argument(s), have %d", ErrBadStrategy, want, len(args))
	}
	out := make([]int, len(args))
	for i, a := range args {
		v, err := strconv.Atoi(a)
		if err != nil {
			return nil, fmt.Errorf("%w: argument %q: %v", ErrBadStrategy, a, err)
		}
		out[i] = v
	}
	return out, nil
}

// argGeometric parses "pf[,maxLen]" for the coin-flip families.
func argGeometric(args []string) (pf float64, maxLen int, err error) {
	if len(args) < 1 || len(args) > 2 {
		return 0, 0, fmt.Errorf("%w: need pf[,maxLen]", ErrBadStrategy)
	}
	pf, err = strconv.ParseFloat(args[0], 64)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: pf %q: %v", ErrBadStrategy, args[0], err)
	}
	maxLen = DefaultGeometricMax
	if len(args) == 2 {
		maxLen, err = strconv.Atoi(args[1])
		if err != nil {
			return 0, 0, fmt.Errorf("%w: maxLen %q: %v", ErrBadStrategy, args[1], err)
		}
	}
	return pf, maxLen, nil
}

// noArgs wraps a preset constructor as a Parser rejecting arguments.
func noArgs(name string, f func() Strategy) Parser {
	return func(args []string) (Strategy, error) {
		if len(args) != 0 {
			return Strategy{}, fmt.Errorf("%w: %s takes no arguments", ErrBadStrategy, name)
		}
		return f(), nil
	}
}

func init() {
	for _, e := range []Entry{
		{Name: "anonymizer", Usage: "anonymizer", Parse: noArgs("anonymizer", Anonymizer)},
		{Name: "lpwa", Usage: "lpwa", Parse: noArgs("lpwa", LPWA)},
		{Name: "freedom", Usage: "freedom", Parse: noArgs("freedom", Freedom)},
		{Name: "pipenet", Usage: "pipenet", Parse: noArgs("pipenet", PipeNet)},
		{Name: "onionrouting1", Usage: "onionrouting1", Parse: noArgs("onionrouting1", OnionRoutingI)},
		{Name: "fixed", Usage: "fixed:l", Parse: func(args []string) (Strategy, error) {
			v, err := argInts(args, 1)
			if err != nil {
				return Strategy{}, err
			}
			return FixedLength(v[0])
		}},
		{Name: "uniform", Usage: "uniform:a,b", Parse: func(args []string) (Strategy, error) {
			v, err := argInts(args, 2)
			if err != nil {
				return Strategy{}, err
			}
			return UniformLength(v[0], v[1])
		}},
		{Name: "remailer", Usage: "remailer:chain", Parse: func(args []string) (Strategy, error) {
			v, err := argInts(args, 1)
			if err != nil {
				return Strategy{}, err
			}
			return Remailer(v[0])
		}},
		{Name: "crowds", Usage: "crowds:pf[,maxLen]", Parse: func(args []string) (Strategy, error) {
			pf, maxLen, err := argGeometric(args)
			if err != nil {
				return Strategy{}, err
			}
			return Crowds(pf, maxLen)
		}},
		{Name: "onionrouting2", Usage: "onionrouting2:pf[,maxLen]", Parse: func(args []string) (Strategy, error) {
			pf, maxLen, err := argGeometric(args)
			if err != nil {
				return Strategy{}, err
			}
			return OnionRoutingII(pf, maxLen)
		}},
		{Name: "hordes", Usage: "hordes:pf[,maxLen]", Parse: func(args []string) (Strategy, error) {
			pf, maxLen, err := argGeometric(args)
			if err != nil {
				return Strategy{}, err
			}
			return Hordes(pf, maxLen)
		}},
	} {
		if err := Register(e); err != nil {
			panic(err)
		}
	}
}
