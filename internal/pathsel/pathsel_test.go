package pathsel

import (
	"errors"
	"math"
	"testing"

	"anonmix/internal/dist"
	"anonmix/internal/stats"
	"anonmix/internal/trace"
)

func TestPresets(t *testing.T) {
	cases := []struct {
		s        Strategy
		wantMean float64
		wantKind PathKind
	}{
		{Anonymizer(), 1, Simple},
		{LPWA(), 1, Simple},
		{Freedom(), 3, Simple},
		{OnionRoutingI(), 5, Simple},
		{PipeNet(), 3.5, Simple},
	}
	for _, c := range cases {
		if err := c.s.Validate(100); err != nil {
			t.Errorf("%s: %v", c.s.Name, err)
		}
		if m := c.s.Length.Mean(); math.Abs(m-c.wantMean) > 1e-12 {
			t.Errorf("%s: mean = %v, want %v", c.s.Name, m, c.wantMean)
		}
		if c.s.Kind != c.wantKind {
			t.Errorf("%s: kind = %v", c.s.Name, c.s.Kind)
		}
	}
	crowds, err := Crowds(0.75, 99)
	if err != nil {
		t.Fatal(err)
	}
	if crowds.Kind != Complicated {
		t.Errorf("Crowds kind = %v", crowds.Kind)
	}
	or2, err := OnionRoutingII(0.8, 99)
	if err != nil {
		t.Fatal(err)
	}
	if or2.Kind != Complicated {
		t.Errorf("OR-II kind = %v", or2.Kind)
	}
	hordes, err := Hordes(0.8, 99)
	if err != nil {
		t.Fatal(err)
	}
	if hordes.Kind != Complicated || hordes.Name != "Hordes" {
		t.Errorf("Hordes = %+v", hordes)
	}
	if _, err := Hordes(-1, 99); err == nil {
		t.Error("Hordes(-1) accepted")
	}
	rem, err := Remailer(4)
	if err != nil {
		t.Fatal(err)
	}
	if rem.Length.Mean() != 4 {
		t.Errorf("Remailer mean = %v", rem.Length.Mean())
	}
	if _, err := Crowds(1.5, 99); err == nil {
		t.Error("Crowds(1.5) accepted")
	}
	if _, err := Remailer(-1); err == nil {
		t.Error("Remailer(-1) accepted")
	}
}

func TestStrategyValidate(t *testing.T) {
	if err := (Strategy{}).Validate(10); !errors.Is(err, ErrBadStrategy) {
		t.Errorf("nil dist err = %v", err)
	}
	f, err := dist.NewFixed(12)
	if err != nil {
		t.Fatal(err)
	}
	s := Strategy{Name: "too long", Length: f, Kind: Simple}
	if err := s.Validate(10); !errors.Is(err, ErrBadStrategy) {
		t.Errorf("overlong simple err = %v", err)
	}
	s.Kind = PathKind(9)
	if err := s.Validate(100); !errors.Is(err, ErrBadStrategy) {
		t.Errorf("bad kind err = %v", err)
	}
}

func TestNewSelectorValidation(t *testing.T) {
	if _, err := NewSelector(1, Anonymizer()); !errors.Is(err, ErrBadStrategy) {
		t.Errorf("n=1 err = %v", err)
	}
	sel, err := NewSelector(50, OnionRoutingI())
	if err != nil {
		t.Fatal(err)
	}
	if sel.N() != 50 || sel.Strategy().Name != "Onion Routing I" {
		t.Errorf("accessors: %d %s", sel.N(), sel.Strategy().Name)
	}
	if _, err := sel.SelectPath(stats.NewRand(1), trace.NodeID(50)); !errors.Is(err, ErrBadSender) {
		t.Error("out-of-range sender accepted")
	}
	if _, err := sel.SelectPath(stats.NewRand(1), trace.Receiver); !errors.Is(err, ErrBadSender) {
		t.Error("receiver as sender accepted")
	}
}

func TestSimplePathProperties(t *testing.T) {
	strat, err := UniformLength(0, 20)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewSelector(30, strat)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(7)
	sender := trace.NodeID(4)
	for i := 0; i < 2000; i++ {
		path, err := sel.SelectPath(rng, sender)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[trace.NodeID]bool, len(path))
		for _, v := range path {
			if v == sender {
				t.Fatalf("simple path contains the sender: %v", path)
			}
			if v == trace.Receiver || int(v) < 0 || int(v) >= 30 {
				t.Fatalf("node out of range: %v", v)
			}
			if seen[v] {
				t.Fatalf("simple path repeats node %v: %v", v, path)
			}
			seen[v] = true
		}
	}
}

// TestSimplePathUniformity: every non-sender node should appear as the
// first intermediate with equal frequency.
func TestSimplePathUniformity(t *testing.T) {
	strat, err := FixedLength(1)
	if err != nil {
		t.Fatal(err)
	}
	n := 10
	sel, err := NewSelector(n, strat)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(11)
	counts := make(map[trace.NodeID]int)
	const trials = 90000
	for i := 0; i < trials; i++ {
		path, err := sel.SelectPath(rng, 0)
		if err != nil {
			t.Fatal(err)
		}
		counts[path[0]]++
	}
	want := float64(trials) / float64(n-1)
	for v := 1; v < n; v++ {
		got := float64(counts[trace.NodeID(v)])
		if math.Abs(got-want) > 5*math.Sqrt(want) {
			t.Errorf("node %d chosen %v times, want ≈%v", v, got, want)
		}
	}
	if counts[0] != 0 {
		t.Errorf("sender chosen as intermediate %d times", counts[0])
	}
}

func TestSampleLengthMatchesDistribution(t *testing.T) {
	strat, err := UniformLength(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewSelector(20, strat)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(3)
	counts := make(map[int]int)
	const trials = 40000
	for i := 0; i < trials; i++ {
		counts[sel.SampleLength(rng)]++
	}
	for l := 2; l <= 5; l++ {
		got := float64(counts[l])
		want := float64(trials) / 4
		if math.Abs(got-want) > 5*math.Sqrt(want) {
			t.Errorf("length %d drawn %v times, want ≈%v", l, got, want)
		}
	}
	if counts[1] != 0 || counts[6] != 0 {
		t.Errorf("lengths outside support drawn: %v", counts)
	}
}

func TestComplicatedPathAllowsCycles(t *testing.T) {
	strat, err := Crowds(0.9, 60)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewSelector(6, strat)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(5)
	var sawRepeat, sawSender bool
	for i := 0; i < 3000; i++ {
		path, err := sel.SelectPath(rng, 2)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[trace.NodeID]bool)
		prev := trace.NodeID(2)
		for _, v := range path {
			if v == prev {
				t.Fatalf("immediate self-loop at %v: %v", v, path)
			}
			if seen[v] {
				sawRepeat = true
			}
			if v == 2 {
				sawSender = true
			}
			seen[v] = true
			prev = v
		}
	}
	if !sawRepeat {
		t.Error("complicated paths never revisited a node in 3000 trials")
	}
	if !sawSender {
		t.Error("complicated paths never passed back through the sender")
	}
}

// TestGeometricLengths: Crowds path lengths should follow the truncated
// geometric distribution of Formula (12).
func TestGeometricLengths(t *testing.T) {
	strat, err := Crowds(0.5, 40)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewSelector(25, strat)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(13)
	var sum stats.Summary
	for i := 0; i < 50000; i++ {
		sum.Add(float64(sel.SampleLength(rng)))
	}
	if math.Abs(sum.Mean()-2) > 4*sum.StdErr() {
		t.Errorf("geometric mean length = %v ± %v, want 2", sum.Mean(), sum.StdErr())
	}
}

func TestWithLength(t *testing.T) {
	if _, err := WithLength("x", nil); !errors.Is(err, ErrBadStrategy) {
		t.Error("nil distribution accepted")
	}
	p, err := dist.NewPMF(2, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	s, err := WithLength("optimal", p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != Simple || s.Name != "optimal" {
		t.Errorf("strategy = %+v", s)
	}
	_ = s.String()
	_ = Simple.String()
	_ = Complicated.String()
	_ = PathKind(9).String()
}
