//go:build !race

package pathsel

const raceEnabled = false
