package pathsel

import (
	"fmt"

	"anonmix/internal/dist"
	"anonmix/internal/stats"
	"anonmix/internal/trace"
)

// Sampler is a per-worker path-drawing arena: an alias table for O(1)
// length draws plus reusable node buffers, so the steady-state cost of a
// path is zero heap allocations. It is NOT safe for concurrent use — each
// worker goroutine builds its own from the shared (read-only) Selector —
// and the slice returned by SelectPath is valid only until the next call.
//
// Draws come from a counter-based stats.Stream, so a path is a pure
// function of the stream's (seed, stream-index) identity; the Monte-Carlo
// estimator and the testbed route the same streams through this sampler,
// which is what keeps their traces bit-identical.
type Sampler struct {
	sel   *Selector
	alias *dist.Alias

	path []trace.NodeID // reused output buffer
	pool []trace.NodeID // dense-draw Fisher–Yates pool
	seen []int32        // sparse-draw open-addressed set, entries are id+1
	mask int            // len(seen)-1, a power of two minus one
}

// NewSampler builds a sampling arena for the selector's strategy.
func (s *Selector) NewSampler() (*Sampler, error) {
	a, err := dist.NewAlias(s.strategy.Length)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadStrategy, err)
	}
	_, hi := s.strategy.Length.Support()
	sp := &Sampler{
		sel:   s,
		alias: a,
		path:  make([]trace.NodeID, 0, hi),
	}
	if s.strategy.Kind == Simple {
		// The rejection set holds at most hi+1 entries (path plus sender);
		// size it to the next power of two ≥ 4x that for a ≤1/4 load factor.
		size := 4
		for size < 4*(hi+2) {
			size *= 2
		}
		sp.seen = make([]int32, size)
		sp.mask = size - 1
		sp.pool = make([]trace.NodeID, 0, s.n)
	}
	return sp, nil
}

// SampleLength draws a path length in O(1) from the alias table. Point
// masses (K == 1) consume no draws; all other distributions consume
// exactly two (column, then threshold), regardless of the outcome.
func (sp *Sampler) SampleLength(rng *stats.Stream) int {
	if sp.alias.K() == 1 {
		return sp.alias.Lo()
	}
	col := rng.Intn(sp.alias.K())
	return sp.alias.Draw(col, rng.Float64())
}

// SelectPath draws a rerouting path exactly as Selector.SelectPath does —
// same distribution, same route shapes — but into the sampler's reused
// buffer. The result is valid until the next SelectPath call; callers that
// retain paths must copy.
func (sp *Sampler) SelectPath(rng *stats.Stream, sender trace.NodeID) ([]trace.NodeID, error) {
	s := sp.sel
	if int(sender) < 0 || int(sender) >= s.n {
		return nil, fmt.Errorf("%w: %v in system of %d", ErrBadSender, sender, s.n)
	}
	l := sp.SampleLength(rng)
	if s.strategy.Kind == Complicated {
		return sp.complicated(rng, sender, l), nil
	}
	return sp.simple(rng, sender, l), nil
}

// simple mirrors Selector.simplePath: rejection sampling against the
// open-addressed set when sparse, a partial Fisher–Yates over the reused
// pool when dense. Each next hop is uniform over the not-yet-used nodes.
func (sp *Sampler) simple(rng *stats.Stream, sender trace.NodeID, l int) []trace.NodeID {
	s := sp.sel
	sp.path = sp.path[:0]
	if l*16 <= s.n {
		sp.clearSeen()
		sp.insertSeen(int32(sender))
		for len(sp.path) < l {
			v := int32(rng.Intn(s.n))
			if sp.insertSeen(v) {
				sp.path = append(sp.path, trace.NodeID(v))
			}
		}
		return sp.path
	}
	sp.pool = sp.pool[:0]
	for v := 0; v < s.n; v++ {
		if trace.NodeID(v) != sender {
			sp.pool = append(sp.pool, trace.NodeID(v))
		}
	}
	for i := 0; i < l; i++ {
		j := i + rng.Intn(len(sp.pool)-i)
		sp.pool[i], sp.pool[j] = sp.pool[j], sp.pool[i]
	}
	sp.path = append(sp.path, sp.pool[:l]...)
	return sp.path
}

// complicated mirrors Selector.complicatedPath hop for hop.
func (sp *Sampler) complicated(rng *stats.Stream, sender trace.NodeID, l int) []trace.NodeID {
	s := sp.sel
	sp.path = sp.path[:0]
	cur := sender
	for i := 0; i < l; i++ {
		next := trace.NodeID(rng.Intn(s.n - 1))
		if next >= cur {
			next++ // skip the current holder
		}
		sp.path = append(sp.path, next)
		cur = next
	}
	return sp.path
}

func (sp *Sampler) clearSeen() {
	for i := range sp.seen {
		sp.seen[i] = 0
	}
}

// insertSeen adds node id v to the set, reporting whether it was new.
// Entries are stored as v+1 so zero means empty.
func (sp *Sampler) insertSeen(v int32) bool {
	e := v + 1
	i := int(uint64(e)*0x9E3779B97F4A7C15>>32) & sp.mask
	for {
		switch sp.seen[i] {
		case 0:
			sp.seen[i] = e
			return true
		case e:
			return false
		}
		i = (i + 1) & sp.mask
	}
}
