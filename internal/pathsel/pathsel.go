// Package pathsel implements the rerouting path selection algorithm of
// Guan et al. (ICDCS 2002) Figure 2: (1) draw a path length from the
// strategy's distribution, (2) choose the sequence of intermediate nodes.
// It ships presets for every system surveyed in §2 of the paper —
// Anonymizer, LPWA, Anonymous Remailer, Onion Routing I/II, Crowds,
// Hordes, Freedom, and PipeNet — expressed through their path-length
// strategies.
package pathsel

import (
	"errors"
	"fmt"
	"math/rand"

	"anonmix/internal/dist"
	"anonmix/internal/trace"
)

// Errors returned by the selector.
var (
	// ErrBadStrategy reports an inconsistent strategy definition.
	ErrBadStrategy = errors.New("pathsel: invalid strategy")
	// ErrBadSender reports a sender outside the node range.
	ErrBadSender = errors.New("pathsel: sender outside system")
)

// PathKind distinguishes the two route shapes of §3.2.
type PathKind uint8

// Path kinds.
const (
	// Simple paths never revisit a node (and never include the sender as
	// an intermediate). This is the shape the exact engine analyzes.
	Simple PathKind = iota + 1
	// Complicated paths are chosen hop by hop uniformly at random and may
	// contain cycles, as in Crowds and Onion Routing II.
	Complicated
)

// String names the kind.
func (k PathKind) String() string {
	switch k {
	case Simple:
		return "simple"
	case Complicated:
		return "complicated"
	default:
		return fmt.Sprintf("PathKind(%d)", uint8(k))
	}
}

// Strategy is a named path-selection policy: a path-length distribution
// plus the route shape.
type Strategy struct {
	// Name identifies the strategy in reports (e.g. "Onion Routing I").
	Name string
	// Length is the path-length distribution.
	Length dist.Length
	// Kind selects simple or complicated routes.
	Kind PathKind
}

// Validate checks the strategy against a system of n nodes.
func (s Strategy) Validate(n int) error {
	if s.Length == nil {
		return fmt.Errorf("%w: nil length distribution", ErrBadStrategy)
	}
	if err := dist.Validate(s.Length); err != nil {
		return fmt.Errorf("%w: %v", ErrBadStrategy, err)
	}
	if s.Kind != Simple && s.Kind != Complicated {
		return fmt.Errorf("%w: kind %v", ErrBadStrategy, s.Kind)
	}
	_, hi := s.Length.Support()
	if s.Kind == Simple && hi > n-1 {
		return fmt.Errorf("%w: simple paths of length %d impossible with %d nodes",
			ErrBadStrategy, hi, n)
	}
	return nil
}

// String renders the name, distribution, and kind.
func (s Strategy) String() string {
	return fmt.Sprintf("%s{%s,%s}", s.Name, s.Length, s.Kind)
}

// Selector draws rerouting paths for a fixed system size.
type Selector struct {
	n        int
	strategy Strategy
}

// NewSelector returns a path selector for an n-node system.
func NewSelector(n int, s Strategy) (*Selector, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: n = %d", ErrBadStrategy, n)
	}
	if err := s.Validate(n); err != nil {
		return nil, err
	}
	return &Selector{n: n, strategy: s}, nil
}

// Strategy returns the selector's strategy.
func (s *Selector) Strategy() Strategy { return s.strategy }

// N returns the system size.
func (s *Selector) N() int { return s.n }

// SampleLength draws a path length from the strategy's distribution by
// inverse-CDF sampling. Floating-point CDFs can sum to slightly less than
// one, so a draw can fall off the table's end; it then clamps to the last
// length that carries positive mass (not blindly to the support's upper
// bound, which may be a zero atom).
func (s *Selector) SampleLength(rng *rand.Rand) int {
	lo, hi := s.strategy.Length.Support()
	u := rng.Float64()
	var cum float64
	last := hi
	for l := lo; l <= hi; l++ {
		p := s.strategy.Length.PMF(l)
		if p <= 0 {
			continue
		}
		last = l
		cum += p
		if u < cum {
			return l
		}
	}
	return last
}

// SelectPath implements Figure 2: it draws a length and returns the ordered
// intermediate nodes for a message from the given sender. The returned
// slice never contains the receiver; simple paths contain no repeats and
// never the sender.
func (s *Selector) SelectPath(rng *rand.Rand, sender trace.NodeID) ([]trace.NodeID, error) {
	if int(sender) < 0 || int(sender) >= s.n {
		return nil, fmt.Errorf("%w: %v in system of %d", ErrBadSender, sender, s.n)
	}
	l := s.SampleLength(rng)
	if s.strategy.Kind == Complicated {
		return s.complicatedPath(rng, sender, l), nil
	}
	return s.simplePath(rng, sender, l), nil
}

// simplePath samples l distinct intermediates uniformly from the n−1 nodes
// other than the sender. Sparse draws (l ≪ n) use rejection sampling so
// selection is O(l) — a million-node system must not allocate a
// million-entry pool per message; dense draws fall back to a partial
// Fisher–Yates shuffle. Both produce the same distribution: each next hop
// is uniform over the not-yet-used nodes.
func (s *Selector) simplePath(rng *rand.Rand, sender trace.NodeID, l int) []trace.NodeID {
	if l*16 <= s.n {
		path := make([]trace.NodeID, 0, l)
		seen := make(map[trace.NodeID]bool, l+1)
		seen[sender] = true
		for len(path) < l {
			v := trace.NodeID(rng.Intn(s.n))
			if seen[v] {
				continue
			}
			seen[v] = true
			path = append(path, v)
		}
		return path
	}
	pool := make([]trace.NodeID, 0, s.n-1)
	for v := 0; v < s.n; v++ {
		if trace.NodeID(v) != sender {
			pool = append(pool, trace.NodeID(v))
		}
	}
	for i := 0; i < l; i++ {
		j := i + rng.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
	}
	return pool[:l:l]
}

// complicatedPath picks each hop uniformly among all nodes except the one
// currently holding the message, so cycles (and returns through the sender)
// are possible — the Crowds/Onion-Routing-II route shape.
func (s *Selector) complicatedPath(rng *rand.Rand, sender trace.NodeID, l int) []trace.NodeID {
	path := make([]trace.NodeID, 0, l)
	cur := sender
	for i := 0; i < l; i++ {
		next := trace.NodeID(rng.Intn(s.n - 1))
		if next >= cur {
			next++ // skip the current holder
		}
		path = append(path, next)
		cur = next
	}
	return path
}

// The presets below encode the path-selection behavior of the systems
// surveyed in §2 of the paper. Construction errors are impossible for the
// fixed parameters and are converted to panics in the unexported helper —
// the exported constructors that take user parameters return errors.

func mustFixed(name string, l int) Strategy {
	f, err := dist.NewFixed(l)
	if err != nil {
		panic(fmt.Sprintf("pathsel: preset %s: %v", name, err))
	}
	return Strategy{Name: name, Length: f, Kind: Simple}
}

// Anonymizer is the single-proxy strategy: every path has exactly one
// intermediate node (the Anonymizer server).
func Anonymizer() Strategy { return mustFixed("Anonymizer", 1) }

// LPWA is the Lucent Personalized Web Assistant strategy, also one proxy.
func LPWA() Strategy { return mustFixed("LPWA", 1) }

// Freedom is the Freedom network strategy: fixed three-node routes, no
// cycles.
func Freedom() Strategy { return mustFixed("Freedom", 3) }

// OnionRoutingI is the first Onion Routing deployment: all routes have
// exactly five hops.
func OnionRoutingI() Strategy { return mustFixed("Onion Routing I", 5) }

// PipeNet is the PipeNet 1.1 strategy: three or four intermediate nodes,
// equiprobably.
func PipeNet() Strategy {
	u, err := dist.NewUniform(3, 4)
	if err != nil {
		panic(fmt.Sprintf("pathsel: preset PipeNet: %v", err))
	}
	return Strategy{Name: "PipeNet", Length: u, Kind: Simple}
}

// Crowds returns the Crowds strategy with forwarding probability pf: after
// the first jondo, each jondo forwards to another jondo with probability pf
// (geometric lengths, cycles allowed). maxLen truncates the geometric tail;
// use n−1 to match the exact engine's simple-path analysis support.
func Crowds(pf float64, maxLen int) (Strategy, error) {
	g, err := dist.NewGeometric(pf, 1, maxLen)
	if err != nil {
		return Strategy{}, err
	}
	return Strategy{Name: "Crowds", Length: g, Kind: Complicated}, nil
}

// OnionRoutingII returns the Onion Routing II strategy, which borrows the
// Crowds coin-flip route selection (geometric lengths, cycles allowed).
func OnionRoutingII(pf float64, maxLen int) (Strategy, error) {
	g, err := dist.NewGeometric(pf, 1, maxLen)
	if err != nil {
		return Strategy{}, err
	}
	return Strategy{Name: "Onion Routing II", Length: g, Kind: Complicated}, nil
}

// Hordes returns the Hordes forward-path strategy: like Crowds it routes
// requests through coin-flip jondo chains with cycles allowed (replies go
// back over multicast, which does not affect the sender-anonymity forward
// path the paper analyzes).
func Hordes(pf float64, maxLen int) (Strategy, error) {
	g, err := dist.NewGeometric(pf, 1, maxLen)
	if err != nil {
		return Strategy{}, err
	}
	return Strategy{Name: "Hordes", Length: g, Kind: Complicated}, nil
}

// Remailer returns an Anonymous-Remailer-style strategy with a fixed chain
// of the given length.
func Remailer(chain int) (Strategy, error) {
	f, err := dist.NewFixed(chain)
	if err != nil {
		return Strategy{}, err
	}
	return Strategy{Name: "Anonymous Remailer", Length: f, Kind: Simple}, nil
}

// FixedLength returns the paper's F(l) strategy on simple paths.
func FixedLength(l int) (Strategy, error) {
	f, err := dist.NewFixed(l)
	if err != nil {
		return Strategy{}, err
	}
	return Strategy{Name: fmt.Sprintf("F(%d)", l), Length: f, Kind: Simple}, nil
}

// UniformLength returns the paper's U(a,b) strategy on simple paths.
func UniformLength(a, b int) (Strategy, error) {
	u, err := dist.NewUniform(a, b)
	if err != nil {
		return Strategy{}, err
	}
	return Strategy{Name: fmt.Sprintf("U(%d,%d)", a, b), Length: u, Kind: Simple}, nil
}

// WithLength returns a simple-path strategy for an arbitrary distribution,
// e.g. an optimizer output.
func WithLength(name string, d dist.Length) (Strategy, error) {
	if d == nil {
		return Strategy{}, fmt.Errorf("%w: nil distribution", ErrBadStrategy)
	}
	return Strategy{Name: name, Length: d, Kind: Simple}, nil
}
