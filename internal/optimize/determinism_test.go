package optimize

// Determinism of the parallel restart batch: Maximize on a fresh engine
// with the pool at width 1 (serial reference) must agree bit-for-bit with
// Maximize on another fresh engine at width 8 — same objective value, same
// mass function, same iteration count. Fresh engines are used on both
// sides so no memo state crosses between the runs.

import (
	"testing"

	"anonmix/internal/events"
	"anonmix/internal/pool"
)

func TestMaximizeParallelRestartsDeterministic(t *testing.T) {
	solve := func(workers int) Result {
		t.Helper()
		e, err := events.New(60, 2)
		if err != nil {
			t.Fatal(err)
		}
		prev := pool.SetWorkers(workers)
		defer pool.SetWorkers(prev)
		res, err := Maximize(Problem{Engine: e, Lo: 0, Hi: 59, Mean: 12},
			WithMaxIterations(120), WithRestarts(4))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := solve(1)
	parallel := solve(8)
	if serial.H != parallel.H {
		t.Errorf("H: serial %v, parallel %v (must be bit-identical)", serial.H, parallel.H)
	}
	if serial.Iterations != parallel.Iterations || serial.Converged != parallel.Converged {
		t.Errorf("trace: serial {%d %v}, parallel {%d %v}",
			serial.Iterations, serial.Converged, parallel.Iterations, parallel.Converged)
	}
	if serial.Dist.Lo != parallel.Dist.Lo || len(serial.Dist.Mass) != len(parallel.Dist.Mass) {
		t.Fatalf("support mismatch: %d/%d atoms", len(serial.Dist.Mass), len(parallel.Dist.Mass))
	}
	for i := range serial.Dist.Mass {
		if serial.Dist.Mass[i] != parallel.Dist.Mass[i] {
			t.Errorf("mass[%d]: serial %v, parallel %v", i, serial.Dist.Mass[i], parallel.Dist.Mass[i])
		}
	}
}
