package optimize

// Epoch-aware optimization: the §5.4 design problem lifted to a dynamic
// population. A timeline of epochs — each a (N_e, C_e) system carrying a
// share w_e of the traffic — admits two defender policies:
//
//   - per-epoch: re-optimize the length distribution whenever the
//     population drifts, warm-starting each epoch's ascent from the
//     previous optimum (consecutive epochs differ by ±1 node, so the
//     optimum barely moves and warm starts converge in a handful of
//     iterations);
//   - joint: commit to one distribution for the whole timeline, maximizing
//     the traffic-weighted blend Σ w_e·H*_e — the policy of a system that
//     cannot re-deploy per epoch.
//
// MaximizeTimeline solves both. The per-epoch curve upper-bounds the joint
// one by construction; the gap is the price of static deployment, and
// figures.EpochOptimizerSweep charts it against the static baseline.
//
// The epochs' engines are expected to come from one engine family
// (scenario.Engine's delta cache, or events.Engine.Neighbor chains), which
// makes each epoch's Weights table cheap to build; the solver itself only
// requires that they share the inference mode semantics of Maximize.

import (
	"fmt"
	"math"

	"anonmix/internal/dist"
	"anonmix/internal/events"
)

// EpochProblem is one epoch of a TimelineProblem.
type EpochProblem struct {
	// Engine evaluates H*_e for the epoch's (N_e, C_e) system.
	Engine *events.Engine
	// Weight is the epoch's share of the timeline's traffic. Weights are
	// normalized to sum to 1; all-zero weights mean equal shares.
	Weight float64
}

// TimelineProblem describes the epoch-aware design problem: one support
// and optional mean constraint (shared by every epoch — the defender picks
// from one family of distributions), and the epochs to optimize over.
type TimelineProblem struct {
	// Epochs is the population trajectory with traffic weights.
	Epochs []EpochProblem
	// Lo and Hi bound the support (0 ≤ Lo ≤ Hi ≤ min_e N_e − 1).
	Lo, Hi int
	// Mean, when not NaN, constrains the expected path length.
	Mean float64
}

// TimelineResult is the outcome of a MaximizeTimeline run.
type TimelineResult struct {
	// PerEpoch holds each epoch's re-optimized distribution and its
	// epoch-local H*_e.
	PerEpoch []Result
	// PerEpochH is the traffic-weighted blend Σ w_e·PerEpoch[e].H — the
	// anonymity a defender re-optimizing every epoch achieves.
	PerEpochH float64
	// Joint is the single-distribution solution; Joint.H is its blended
	// objective Σ w_e·H*_e(Joint.Dist).
	Joint Result
}

// normalWeights validates the problem and returns the normalized epoch
// weights.
func (p TimelineProblem) normalWeights() ([]float64, error) {
	if len(p.Epochs) == 0 {
		return nil, fmt.Errorf("%w: timeline has no epochs", ErrBadProblem)
	}
	var sum float64
	for i, ep := range p.Epochs {
		if ep.Engine == nil {
			return nil, fmt.Errorf("%w: epoch %d has a nil engine", ErrBadProblem, i)
		}
		if ep.Weight < 0 || math.IsNaN(ep.Weight) || math.IsInf(ep.Weight, 0) {
			return nil, fmt.Errorf("%w: epoch %d has weight %v", ErrBadProblem, i, ep.Weight)
		}
		if err := p.epochProblem(i).validate(); err != nil {
			return nil, fmt.Errorf("epoch %d: %w", i, err)
		}
		sum += ep.Weight
	}
	w := make([]float64, len(p.Epochs))
	for i := range w {
		if sum > 0 {
			w[i] = p.Epochs[i].Weight / sum
		} else {
			w[i] = 1 / float64(len(w))
		}
	}
	return w, nil
}

// epochProblem is the static problem of one epoch.
func (p TimelineProblem) epochProblem(i int) Problem {
	return Problem{Engine: p.Epochs[i].Engine, Lo: p.Lo, Hi: p.Hi, Mean: p.Mean}
}

// MaximizeTimeline solves the per-epoch and joint design problems. The
// first epoch runs the full multi-restart Maximize; every later epoch
// warm-starts from the previous optimum plus the uniform safety start —
// two ascents instead of the configured restarts, which is where the
// timeline-scale speedup comes from (consecutive optima are near-identical
// for ±1 drifts). The joint solve reuses the per-epoch evaluators through
// a blended objective and seeds its restarts with the first and last
// per-epoch optima. Determinism matches Maximize: restarts fold in start
// order, epochs chain serially, so parallel pools are bit-identical to
// serial ones.
func MaximizeTimeline(p TimelineProblem, opts ...Option) (TimelineResult, error) {
	w, err := p.normalWeights()
	if err != nil {
		return TimelineResult{}, err
	}
	cfg := config{maxIters: 400, restarts: 4, tol: 1e-12, initialLR: 0.5}
	for _, o := range opts {
		o(&cfg)
	}
	evs := make([]*evaluator, len(p.Epochs))
	for i := range p.Epochs {
		if evs[i], err = newEvaluator(p.epochProblem(i)); err != nil {
			return TimelineResult{}, err
		}
	}
	res := TimelineResult{PerEpoch: make([]Result, len(p.Epochs))}
	var warm []float64
	for i := range p.Epochs {
		ep := p.epochProblem(i)
		var starts [][]float64
		if warm == nil {
			starts = ep.startingPoints(cfg.restarts)
		} else {
			ws := append([]float64(nil), warm...)
			ep.project(ws)
			starts = append([][]float64{ws}, ep.startingPoints(1)...)
		}
		best, err := ep.solveStarts(evs[i], starts, cfg)
		if err != nil {
			return TimelineResult{}, fmt.Errorf("epoch %d: %w", i, err)
		}
		res.PerEpoch[i] = best
		res.PerEpochH += w[i] * best.H
		warm = best.Dist.Mass
	}

	joint := p.epochProblem(0)
	starts := joint.startingPoints(cfg.restarts)
	for _, i := range []int{0, len(p.Epochs) - 1} {
		ws := append([]float64(nil), res.PerEpoch[i].Dist.Mass...)
		joint.project(ws)
		starts = append(starts, ws)
	}
	best, err := joint.solveStarts(&jointEvaluator{evs: evs, w: w}, starts, cfg)
	if err != nil {
		return TimelineResult{}, fmt.Errorf("joint: %w", err)
	}
	res.Joint = best
	return res, nil
}

// EvaluateTimeline returns the traffic-weighted blend Σ w_e·H*_e(d) of one
// distribution across the timeline's epochs — the yardstick that puts a
// static design, the joint optimum, and per-epoch re-optimization on one
// scale.
func EvaluateTimeline(p TimelineProblem, d dist.Length) (float64, error) {
	w, err := p.normalWeights()
	if err != nil {
		return 0, err
	}
	var h float64
	for i, ep := range p.Epochs {
		he, err := ep.Engine.AnonymityDegree(d)
		if err != nil {
			return 0, fmt.Errorf("epoch %d: %w", i, err)
		}
		h += w[i] * he
	}
	return h, nil
}

// jointEvaluator blends the per-epoch evaluators into one objective:
// value = Σ w_e·value_e, gradient likewise. The per-epoch evaluators are
// read-only, so the blend is safe for concurrent restarts; the gradient
// scratch is per-call.
type jointEvaluator struct {
	evs []*evaluator
	w   []float64
}

func (j *jointEvaluator) value(mass []float64) float64 {
	var h float64
	for i, ev := range j.evs {
		h += j.w[i] * ev.value(mass)
	}
	return h
}

func (j *jointEvaluator) valueGrad(mass, grad []float64) float64 {
	for i := range grad {
		grad[i] = 0
	}
	tmp := make([]float64, len(grad))
	var h float64
	for i, ev := range j.evs {
		h += j.w[i] * ev.valueGrad(mass, tmp)
		for g := range grad {
			grad[g] += j.w[i] * tmp[g]
		}
	}
	return h
}
