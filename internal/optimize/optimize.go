// Package optimize solves the path-length-distribution design problem of
// Guan et al. (ICDCS 2002) §5.4: choose the probability mass function of the
// rerouting path length to maximize the anonymity degree H*(S), subject to
// the simplex constraints of Formulas (16)–(17) and, optionally, a target
// expected path length (the per-mean optimization of §6.4 / Figure 6).
//
// Three solvers are provided:
//
//   - Maximize: projected gradient ascent over the full simplex (with an
//     optional mean-equality constraint), multi-restart, the general solver
//     for Formula (15).
//   - BestUniform: exhaustive search within the uniform family U(a, 2m−a)
//     at a fixed mean m — the parametric optimization of §6.4, Formula (19).
//   - BestTwoPoint: exhaustive search over two-atom distributions at a fixed
//     mean, used to cross-check the general solver (extreme points of the
//     mean-constrained simplex have two-atom support).
package optimize

import (
	"errors"
	"fmt"
	"math"

	"anonmix/internal/dist"
	"anonmix/internal/events"
	"anonmix/internal/pool"
)

// Errors returned by the solvers.
var (
	// ErrBadProblem reports an inconsistent problem definition.
	ErrBadProblem = errors.New("optimize: invalid problem")
	// ErrInfeasible reports constraints that no distribution satisfies.
	ErrInfeasible = errors.New("optimize: constraints are infeasible")
)

// Problem describes a path-length-distribution design problem.
type Problem struct {
	// Engine computes the objective H*(S).
	Engine *events.Engine
	// Lo and Hi bound the support of the designed distribution
	// (0 ≤ Lo ≤ Hi ≤ N−1).
	Lo, Hi int
	// Mean, when not NaN, constrains the expected path length to this
	// value (the §6.4 per-mean problem). NaN leaves the mean free.
	Mean float64
}

// UnconstrainedMean is the Mean value that leaves the expectation free.
func UnconstrainedMean() float64 { return math.NaN() }

// meanConstrained reports whether the problem pins the expectation.
func (p Problem) meanConstrained() bool { return !math.IsNaN(p.Mean) }

func (p Problem) validate() error {
	if p.Engine == nil {
		return fmt.Errorf("%w: nil engine", ErrBadProblem)
	}
	if p.Lo < 0 || p.Hi < p.Lo || p.Hi > p.Engine.N()-1 {
		return fmt.Errorf("%w: support [%d,%d] with N=%d", ErrBadProblem, p.Lo, p.Hi, p.Engine.N())
	}
	if p.meanConstrained() && (p.Mean < float64(p.Lo) || p.Mean > float64(p.Hi)) {
		return fmt.Errorf("%w: mean %v outside support [%d,%d]", ErrInfeasible, p.Mean, p.Lo, p.Hi)
	}
	return nil
}

// Result is the outcome of a Maximize run.
type Result struct {
	// Dist is the optimized mass function.
	Dist dist.PMF
	// H is the anonymity degree achieved by Dist.
	H float64
	// Iterations counts gradient steps summed over restarts.
	Iterations int
	// Converged reports whether the best restart terminated by the
	// improvement tolerance rather than the iteration cap.
	Converged bool
}

// config holds solver tuning knobs.
type config struct {
	maxIters  int
	restarts  int
	tol       float64
	initialLR float64
}

// Option tunes the Maximize solver.
type Option func(*config)

// WithMaxIterations caps gradient steps per restart (default 400).
func WithMaxIterations(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.maxIters = n
		}
	}
}

// WithRestarts sets the number of distinct starting points (default 4).
func WithRestarts(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.restarts = n
		}
	}
}

// WithTolerance sets the objective-improvement stopping tolerance
// (default 1e-12 bits).
func WithTolerance(tol float64) Option {
	return func(c *config) {
		if tol > 0 {
			c.tol = tol
		}
	}
}

// Maximize solves Formula (15): it returns a distribution on [Lo, Hi]
// (optionally with the given mean) that maximizes the anonymity degree.
// The solver is projected gradient ascent with backtracking line search and
// multiple deterministic restarts; the returned Result.H is the best value
// found. The objective is smooth but not concave in general, so the result
// is a high-quality local optimum; tests cross-check it against exhaustive
// parametric searches.
func Maximize(p Problem, opts ...Option) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	cfg := config{maxIters: 400, restarts: 4, tol: 1e-12, initialLR: 0.5}
	for _, o := range opts {
		o(&cfg)
	}

	ev, err := newEvaluator(p)
	if err != nil {
		return Result{}, err
	}
	return p.solveStarts(ev, p.startingPoints(cfg.restarts), cfg)
}

// objective abstracts the ascent target: the single-engine evaluator, or
// the epoch-blended jointEvaluator of MaximizeTimeline. Implementations
// must be safe for concurrent calls (restarts share one objective).
type objective interface {
	value(mass []float64) float64
	valueGrad(mass, grad []float64) float64
}

// solveStarts runs one projected-gradient ascent per start and returns the
// best result. The objective's internals are read-only, so every restart
// shares them; each ascent owns its own iterate and gradient buffers.
// Restarts run concurrently on the shared pool and are folded in start
// order, so the winner (and its tie-breaking) is identical to the serial
// loop.
func (p Problem) solveStarts(ev objective, starts [][]float64, cfg config) (Result, error) {
	results := make([]Result, len(starts))
	pool.ForEach(len(starts), func(i int) {
		results[i] = p.ascend(ev, starts[i], cfg)
	})
	best := Result{H: math.Inf(-1)}
	for _, res := range results {
		if res.H > best.H {
			conv := res.Converged
			iters := best.Iterations + res.Iterations
			best = res
			best.Converged = conv
			best.Iterations = iters
		} else {
			best.Iterations += res.Iterations
		}
	}
	if math.IsInf(best.H, -1) {
		return Result{}, fmt.Errorf("%w: no feasible start found", ErrInfeasible)
	}
	// Trim floating dust so the result passes strict validation downstream.
	mass := make([]float64, p.Hi-p.Lo+1)
	copy(mass, best.Dist.Mass)
	cleanNormalize(mass)
	pd, err := dist.NewPMF(p.Lo, mass)
	if err != nil {
		return Result{}, fmt.Errorf("optimize: result failed validation: %w", err)
	}
	best.Dist = pd
	return best, nil
}

// startingPoints returns deterministic feasible starts: uniform over the
// support, concentrated near the mean, and spread two-point-like shapes.
func (p Problem) startingPoints(k int) [][]float64 {
	n := p.Hi - p.Lo + 1
	mk := func(fill func(v []float64)) []float64 {
		v := make([]float64, n)
		fill(v)
		p.project(v)
		return v
	}
	starts := [][]float64{
		mk(func(v []float64) {
			for i := range v {
				v[i] = 1 / float64(n)
			}
		}),
	}
	if p.meanConstrained() {
		starts = append(starts,
			mk(func(v []float64) { // point mass near the mean
				i := int(math.Round(p.Mean)) - p.Lo
				if i < 0 {
					i = 0
				}
				if i >= n {
					i = n - 1
				}
				v[i] = 1
			}),
			mk(func(v []float64) { // mass at the extremes
				v[0] = 0.5
				v[n-1] = 0.5
			}),
			mk(func(v []float64) { // geometric-ish decay
				for i := range v {
					v[i] = math.Pow(0.8, float64(i))
				}
			}),
		)
	} else {
		starts = append(starts,
			mk(func(v []float64) { v[n-1] = 1 }),
			mk(func(v []float64) { v[n/2] = 1 }),
			mk(func(v []float64) {
				for i := range v {
					v[i] = float64(i + 1)
				}
			}),
		)
	}
	if len(starts) > k {
		starts = starts[:k]
	}
	return starts
}

// ascend runs projected gradient ascent from one start.
func (p Problem) ascend(ev objective, start []float64, cfg config) Result {
	n := len(start)
	cur := make([]float64, n)
	copy(cur, start)
	grad := make([]float64, n)
	curH := ev.valueGrad(cur, grad)

	cand := make([]float64, n)
	var iters int
	converged := false
	lr := cfg.initialLR
	for iters = 0; iters < cfg.maxIters; iters++ {
		improved := false
		for ; lr > 1e-14; lr /= 2 {
			for i := range cand {
				cand[i] = cur[i] + lr*grad[i]
			}
			p.project(cand)
			if h := ev.value(cand); h > curH+cfg.tol {
				copy(cur, cand)
				curH = ev.valueGrad(cur, grad)
				improved = true
				lr *= 4 // allow the step to grow back
				if lr > 8 {
					lr = 8
				}
				break
			}
		}
		if !improved {
			converged = true
			break
		}
	}
	res := Result{H: curH, Iterations: iters, Converged: converged}
	res.Dist = dist.PMF{Lo: p.Lo, Mass: append([]float64(nil), cur...)}
	return res
}

// evaluator computes the objective and its exact gradient from the engine's
// weight vectors: H*(p) = frac · Σ_σ n_σ·P_σ(p)·f(α_σ) with P_σ, P0_σ
// linear in p, α_σ = P0_σ/P_σ, and n_σ the bucket multiplicity
// (ClassWeights.Count — the number of concrete observation classes sharing
// the entry's vectors), so
//
//	∂H*/∂p_l = frac · Σ_σ n_σ·[ f(α_σ)·W_σ(l) + f'(α_σ)·(W0_σ(l) − α_σ·W_σ(l)) ].
//
// The multiplicity never enters α (it cancels in P0/P), which is what lets
// one bucket entry stand for its whole class family.
type evaluator struct {
	weights []events.ClassWeights
	frac    float64 // (N−C)/N, the uncompromised-sender branch weight
}

func newEvaluator(p Problem) (*evaluator, error) {
	w, err := p.Engine.Weights(p.Lo, p.Hi)
	if err != nil {
		return nil, err
	}
	n := p.Engine.N()
	return &evaluator{weights: w, frac: float64(n-p.Engine.C()) / float64(n)}, nil
}

// clampAlpha keeps posterior spikes strictly inside (0,1) so the entropy
// derivative stays finite.
func clampAlpha(a float64) float64 {
	const eps = 1e-12
	if a < eps {
		return eps
	}
	if a > 1-eps {
		return 1 - eps
	}
	return a
}

// fAndDeriv returns the per-class entropy f(α) and its derivative f'(α).
func fAndDeriv(cw events.ClassWeights, alpha float64) (f, fp float64) {
	switch {
	case cw.UniformOverAll:
		return math.Log2(float64(cw.Rest)), 0
	case cw.Rest <= 0:
		return 0, 0
	case cw.FullPosition:
		lg := math.Log2(float64(cw.Rest))
		return (1 - alpha) * lg, -lg
	default:
		a := clampAlpha(alpha)
		q := 1 - a
		f = -a*math.Log2(a) - q*math.Log2(q/float64(cw.Rest))
		fp = math.Log2(q / (float64(cw.Rest) * a))
		return f, fp
	}
}

// value returns H*(p) for a feasible mass vector.
func (ev *evaluator) value(mass []float64) float64 {
	var h float64
	for _, cw := range ev.weights {
		var sp, sp0 float64
		for i, w := range cw.W {
			if m := mass[i]; m != 0 {
				sp += w * m
				sp0 += cw.W0[i] * m
			}
		}
		if sp <= 0 {
			continue
		}
		f, _ := fAndDeriv(cw, sp0/sp)
		h += cw.Count * sp * f
	}
	return ev.frac * h
}

// valueGrad returns H*(p) and fills grad with its exact gradient.
func (ev *evaluator) valueGrad(mass, grad []float64) float64 {
	for i := range grad {
		grad[i] = 0
	}
	var h float64
	for _, cw := range ev.weights {
		var sp, sp0 float64
		for i, w := range cw.W {
			if m := mass[i]; m != 0 {
				sp += w * m
				sp0 += cw.W0[i] * m
			}
		}
		if sp <= 0 {
			// Directional derivative into an unreached bucket: each unit of
			// mass at l contributes Count·W(l)·f(W0(l)/W(l)).
			for i, w := range cw.W {
				if w > 0 {
					f, _ := fAndDeriv(cw, cw.W0[i]/w)
					grad[i] += ev.frac * cw.Count * w * f
				}
			}
			continue
		}
		alpha := sp0 / sp
		f, fp := fAndDeriv(cw, alpha)
		h += cw.Count * sp * f
		for i, w := range cw.W {
			grad[i] += ev.frac * cw.Count * (f*w + fp*(cw.W0[i]-alpha*w))
		}
	}
	return ev.frac * h
}

// project performs the Euclidean projection of v onto the feasible set
// {p ≥ 0, Σp = 1} intersected with the mean hyperplane when constrained.
// The KKT form is p_i = max(0, v_i − λ − μ·l_i); λ is found by bisection
// for each μ, and μ by an outer bisection on the mean residual.
func (p Problem) project(v []float64) {
	if !p.meanConstrained() {
		projectSimplex(v)
		return
	}
	n := len(v)
	lengths := make([]float64, n)
	for i := range lengths {
		lengths[i] = float64(p.Lo + i)
	}
	// For fixed μ, the λ sub-problem is exactly the simplex projection of
	// v − μ·lengths; the mean of that projection is nonincreasing in μ, so
	// one bisection on μ solves the full KKT system.
	work := make([]float64, n)
	eval := func(mu float64) float64 {
		for i := range work {
			work[i] = v[i] - mu*lengths[i]
		}
		projectSimplex(work)
		var mean float64
		for i := range work {
			mean += work[i] * lengths[i]
		}
		return mean
	}
	muLo, muHi := -1e5, 1e5
	for iter := 0; iter < 90; iter++ {
		mu := (muLo + muHi) / 2
		if eval(mu) > p.Mean {
			muLo = mu
		} else {
			muHi = mu
		}
	}
	eval((muLo + muHi) / 2)
	copy(v, work)
	cleanNormalize(v)
	nudgeMean(v, lengths, p.Mean)
}

// projectSimplex is the standard O(n log n) Euclidean projection onto the
// probability simplex (Held, Wolfe, Crowder 1974).
func projectSimplex(v []float64) {
	n := len(v)
	sorted := append([]float64(nil), v...)
	// Insertion sort descending (n is small).
	for i := 1; i < n; i++ {
		x := sorted[i]
		j := i - 1
		for j >= 0 && sorted[j] < x {
			sorted[j+1] = sorted[j]
			j--
		}
		sorted[j+1] = x
	}
	var cum, theta float64
	for i := 0; i < n; i++ {
		cum += sorted[i]
		t := (cum - 1) / float64(i+1)
		if i == n-1 || sorted[i+1] <= t {
			theta = t
			// Only valid at the first index where the condition holds.
			if i == n-1 || sorted[i]-t >= 0 {
				break
			}
		}
	}
	for i := range v {
		v[i] -= theta
		if v[i] < 0 {
			v[i] = 0
		}
	}
	cleanNormalize(v)
}

// cleanNormalize clamps negatives/dust to zero and rescales to sum 1.
func cleanNormalize(v []float64) {
	var sum float64
	for i := range v {
		if v[i] < 1e-15 || math.IsNaN(v[i]) {
			v[i] = 0
		}
		sum += v[i]
	}
	if sum <= 0 {
		// Degenerate input: fall back to uniform.
		for i := range v {
			v[i] = 1 / float64(len(v))
		}
		return
	}
	for i := range v {
		v[i] /= sum
	}
}

// nudgeMean applies a final first-order correction so the projected vector
// meets the mean constraint to high precision despite bisection residue.
// It shifts mass between the two support atoms bracketing the residual.
func nudgeMean(v, lengths []float64, target float64) {
	var mean float64
	for i := range v {
		mean += v[i] * lengths[i]
	}
	resid := target - mean
	if math.Abs(resid) < 1e-12 {
		return
	}
	// Move mass between the extreme atoms with nonzero headroom.
	lo, hi := -1, -1
	for i := range v {
		if v[i] > 1e-9 {
			if lo == -1 {
				lo = i
			}
			hi = i
		}
	}
	if lo == -1 || lo == hi {
		return
	}
	span := lengths[hi] - lengths[lo]
	if span == 0 {
		return
	}
	delta := resid / span
	if delta > v[lo] {
		delta = v[lo]
	}
	if -delta > v[hi] {
		delta = -v[hi]
	}
	v[lo] -= delta
	v[hi] += delta
}

// BestUniform performs the §6.4 parametric optimization (Formula 19): among
// uniform distributions U(a, 2·mean−a) with the given integer mean and
// support within [lo, hi], it returns the one maximizing H*(S).
func BestUniform(e *events.Engine, mean, lo, hi int) (dist.Uniform, float64, error) {
	if e == nil {
		return dist.Uniform{}, 0, fmt.Errorf("%w: nil engine", ErrBadProblem)
	}
	if lo < 0 || hi > e.N()-1 || mean < lo || mean > hi {
		return dist.Uniform{}, 0, fmt.Errorf("%w: mean %d, support [%d,%d], N=%d",
			ErrBadProblem, mean, lo, hi, e.N())
	}
	var cands []dist.Uniform
	for a := lo; a <= mean; a++ {
		b := 2*mean - a
		if b > hi {
			continue
		}
		u, err := dist.NewUniform(a, b)
		if err != nil {
			return dist.Uniform{}, 0, err
		}
		cands = append(cands, u)
	}
	// Evaluate the family concurrently, then fold in candidate order so the
	// first-best tie-breaking matches a serial scan.
	hs, err := pool.MapErr(len(cands), func(i int) (float64, error) {
		return e.AnonymityDegree(cands[i])
	})
	if err != nil {
		return dist.Uniform{}, 0, err
	}
	bestH := math.Inf(-1)
	var bestU dist.Uniform
	for i, h := range hs {
		if h > bestH {
			bestH, bestU = h, cands[i]
		}
	}
	if math.IsInf(bestH, -1) {
		return dist.Uniform{}, 0, fmt.Errorf("%w: no uniform with mean %d fits in [%d,%d]",
			ErrInfeasible, mean, lo, hi)
	}
	return bestU, bestH, nil
}

// BestTwoPoint searches all two-atom distributions {l1: p, l2: 1−p} with
// the given mean and support within [lo, hi], returning the maximizer. The
// extreme points of the mean-constrained simplex are two-atom
// distributions, so this provides a strong independent check on Maximize.
func BestTwoPoint(e *events.Engine, mean float64, lo, hi int) (dist.TwoPoint, float64, error) {
	if e == nil {
		return dist.TwoPoint{}, 0, fmt.Errorf("%w: nil engine", ErrBadProblem)
	}
	if lo < 0 || hi > e.N()-1 || mean < float64(lo) || mean > float64(hi) {
		return dist.TwoPoint{}, 0, fmt.Errorf("%w: mean %v, support [%d,%d], N=%d",
			ErrBadProblem, mean, lo, hi, e.N())
	}
	bestH := math.Inf(-1)
	var bestT dist.TwoPoint
	for l1 := lo; float64(l1) <= mean; l1++ {
		for l2 := int(math.Ceil(mean)); l2 <= hi; l2++ {
			var p1 float64
			if l1 == l2 {
				//anonlint:allow floatcmp(degenerate two-point is feasible only when the mean hits the atom exactly)
				if float64(l1) != mean {
					continue
				}
				p1 = 1
			} else {
				p1 = (float64(l2) - mean) / float64(l2-l1)
			}
			if p1 < 0 || p1 > 1 {
				continue
			}
			tp, err := dist.NewTwoPoint(l1, l2, p1)
			if err != nil {
				return dist.TwoPoint{}, 0, err
			}
			h, err := e.AnonymityDegree(tp)
			if err != nil {
				return dist.TwoPoint{}, 0, err
			}
			if h > bestH {
				bestH, bestT = h, tp
			}
		}
	}
	if math.IsInf(bestH, -1) {
		return dist.TwoPoint{}, 0, fmt.Errorf("%w: no two-point with mean %v in [%d,%d]",
			ErrInfeasible, mean, lo, hi)
	}
	return bestT, bestH, nil
}
