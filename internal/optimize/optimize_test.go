package optimize

import (
	"errors"
	"math"
	"testing"

	"anonmix/internal/dist"
	"anonmix/internal/events"
)

func engine(t *testing.T, n, c int) *events.Engine {
	t.Helper()
	e, err := events.New(n, c)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestProblemValidation(t *testing.T) {
	e := engine(t, 50, 1)
	cases := []struct {
		name string
		p    Problem
		want error
	}{
		{"nil engine", Problem{Lo: 0, Hi: 10, Mean: UnconstrainedMean()}, ErrBadProblem},
		{"bad support", Problem{Engine: e, Lo: 5, Hi: 3, Mean: UnconstrainedMean()}, ErrBadProblem},
		{"support past N-1", Problem{Engine: e, Lo: 0, Hi: 50, Mean: UnconstrainedMean()}, ErrBadProblem},
		{"mean outside", Problem{Engine: e, Lo: 2, Hi: 10, Mean: 20}, ErrInfeasible},
	}
	for _, c := range cases {
		if _, err := Maximize(c.p); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

// TestMaximizeBeatsParametricFamilies: the general solver must do at least
// as well as every member of the parametric families at the same mean.
func TestMaximizeBeatsParametricFamilies(t *testing.T) {
	e := engine(t, 60, 1)
	for _, mean := range []int{5, 12, 25} {
		res, err := Maximize(Problem{Engine: e, Lo: 0, Hi: 59, Mean: float64(mean)},
			WithMaxIterations(250))
		if err != nil {
			t.Fatal(err)
		}
		if m := res.Dist.Mean(); math.Abs(m-float64(mean)) > 1e-6 {
			t.Errorf("mean %d: optimized distribution has mean %v", mean, m)
		}
		_, hu, err := BestUniform(e, mean, 0, 59)
		if err != nil {
			t.Fatal(err)
		}
		if res.H < hu-1e-9 {
			t.Errorf("mean %d: Maximize %v below best uniform %v", mean, res.H, hu)
		}
		f, err := dist.NewFixed(mean)
		if err != nil {
			t.Fatal(err)
		}
		hf, err := e.AnonymityDegree(f)
		if err != nil {
			t.Fatal(err)
		}
		if res.H < hf-1e-9 {
			t.Errorf("mean %d: Maximize %v below fixed %v", mean, res.H, hf)
		}
	}
}

// TestMaximizeNearBestTwoPoint: extreme points of the mean-constrained
// simplex are two-atom distributions, so the exhaustive two-point search is
// a strong lower bound the gradient solver should reach or beat (within a
// small numerical slack).
func TestMaximizeNearBestTwoPoint(t *testing.T) {
	e := engine(t, 40, 1)
	for _, mean := range []float64{6, 15} {
		res, err := Maximize(Problem{Engine: e, Lo: 0, Hi: 39, Mean: mean},
			WithMaxIterations(300), WithRestarts(4))
		if err != nil {
			t.Fatal(err)
		}
		_, htp, err := BestTwoPoint(e, mean, 0, 39)
		if err != nil {
			t.Fatal(err)
		}
		if res.H < htp-1e-6 {
			t.Errorf("mean %v: Maximize %v vs best two-point %v", mean, res.H, htp)
		}
	}
}

// TestUnconstrainedMaximize: without a mean constraint the solver should
// find a distribution at least as good as the best fixed length anywhere in
// the support (the global fixed-length peak).
func TestUnconstrainedMaximize(t *testing.T) {
	e := engine(t, 50, 1)
	res, err := Maximize(Problem{Engine: e, Lo: 0, Hi: 49, Mean: UnconstrainedMean()},
		WithMaxIterations(300))
	if err != nil {
		t.Fatal(err)
	}
	bestFixed := math.Inf(-1)
	for l := 0; l <= 49; l++ {
		f, err := dist.NewFixed(l)
		if err != nil {
			t.Fatal(err)
		}
		h, err := e.AnonymityDegree(f)
		if err != nil {
			t.Fatal(err)
		}
		if h > bestFixed {
			bestFixed = h
		}
	}
	if res.H < bestFixed-1e-9 {
		t.Errorf("unconstrained Maximize %v below best fixed %v", res.H, bestFixed)
	}
	if res.H > e.MaxAnonymity() {
		t.Errorf("H %v exceeds log2 N", res.H)
	}
}

// TestMaximizeStationarity: no single-coordinate mass transfer that
// preserves the mean should improve the solution noticeably.
func TestMaximizeStationarity(t *testing.T) {
	e := engine(t, 40, 1)
	mean := 10.0
	res, err := Maximize(Problem{Engine: e, Lo: 0, Hi: 39, Mean: mean}, WithMaxIterations(400))
	if err != nil {
		t.Fatal(err)
	}
	base := res.H
	lo, _ := res.Dist.Support()
	mass := res.Dist.Mass
	const eps = 1e-4
	// Transfer eps of mass among triples (i, j, k) that keep mean and total
	// fixed: move from j to i and k proportionally.
	for i := 0; i < len(mass); i++ {
		for k := i + 2; k < len(mass); k += 3 {
			j := (i + k) / 2
			if j == i || j == k || mass[j] < 2*eps {
				continue
			}
			wi := float64(k-j) / float64(k-i)
			wk := float64(j-i) / float64(k-i)
			cand := append([]float64(nil), mass...)
			cand[j] -= eps
			cand[i] += eps * wi
			cand[k] += eps * wk
			var sum float64
			for _, v := range cand {
				sum += v
			}
			for idx := range cand {
				cand[idx] /= sum
			}
			pd := dist.PMF{Lo: lo, Mass: cand}
			h, err := e.AnonymityDegree(pd)
			if err != nil {
				continue
			}
			if h > base+1e-6 {
				t.Errorf("perturbation (%d→%d,%d) improves H by %v; not stationary",
					j+lo, i+lo, k+lo, h-base)
			}
		}
	}
}

func TestBestUniformMatchesExhaustive(t *testing.T) {
	e := engine(t, 100, 1)
	mean := 10
	u, h, err := BestUniform(e, mean, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	if got := u.Mean(); got != float64(mean) {
		t.Errorf("best uniform mean = %v", got)
	}
	// Verify against manual scan.
	for a := 0; a <= mean; a++ {
		b := 2*mean - a
		if b > 99 {
			continue
		}
		cand, err := dist.NewUniform(a, b)
		if err != nil {
			t.Fatal(err)
		}
		hc, err := e.AnonymityDegree(cand)
		if err != nil {
			t.Fatal(err)
		}
		if hc > h+1e-12 {
			t.Errorf("U(%d,%d) beats BestUniform: %v > %v", a, b, hc, h)
		}
	}
	// Paper §6.4: at short means the widest small-lower-bound uniform wins.
	if u.A > 2 {
		t.Errorf("best uniform at mean %d is %s; expected a small lower bound (paper §6.4)", mean, u)
	}
}

func TestBestUniformErrors(t *testing.T) {
	e := engine(t, 30, 1)
	if _, _, err := BestUniform(nil, 5, 0, 10); !errors.Is(err, ErrBadProblem) {
		t.Errorf("nil engine err = %v", err)
	}
	if _, _, err := BestUniform(e, 40, 0, 29); !errors.Is(err, ErrBadProblem) {
		t.Errorf("mean out of range err = %v", err)
	}
	if _, _, err := BestUniform(e, 5, 0, 40); !errors.Is(err, ErrBadProblem) {
		t.Errorf("support past N err = %v", err)
	}
}

func TestBestTwoPointMeanRespected(t *testing.T) {
	e := engine(t, 50, 1)
	for _, mean := range []float64{4, 7.5, 20} {
		tp, h, err := BestTwoPoint(e, mean, 0, 49)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(tp.Mean()-mean) > 1e-9 {
			t.Errorf("mean %v: two-point mean %v", mean, tp.Mean())
		}
		if h <= 0 || h > e.MaxAnonymity() {
			t.Errorf("mean %v: H = %v out of range", mean, h)
		}
	}
	if _, _, err := BestTwoPoint(e, -1, 0, 49); !errors.Is(err, ErrBadProblem) {
		t.Error("negative mean accepted")
	}
}

// TestOptimizedBeatsPaperBaselines reproduces the qualitative content of
// Figure 6: the optimized distribution beats both F(L) and U(2, 2L−2).
func TestOptimizedBeatsPaperBaselines(t *testing.T) {
	e := engine(t, 100, 1)
	for _, mean := range []int{5, 10, 20} {
		res, err := Maximize(Problem{Engine: e, Lo: 0, Hi: 99, Mean: float64(mean)},
			WithMaxIterations(250))
		if err != nil {
			t.Fatal(err)
		}
		f, err := dist.NewFixed(mean)
		if err != nil {
			t.Fatal(err)
		}
		hf, err := e.AnonymityDegree(f)
		if err != nil {
			t.Fatal(err)
		}
		u, err := dist.NewUniform(2, 2*mean-2)
		if err != nil {
			t.Fatal(err)
		}
		hu, err := e.AnonymityDegree(u)
		if err != nil {
			t.Fatal(err)
		}
		if !(res.H >= hu-1e-9 && res.H >= hf-1e-9) {
			t.Errorf("mean %d: optimized %v, U(2,2L-2) %v, F(L) %v", mean, res.H, hu, hf)
		}
		if !(res.H > hf+1e-6) {
			t.Errorf("mean %d: optimization should strictly beat the fixed strategy (%v vs %v)",
				mean, res.H, hf)
		}
	}
}

func TestProjectSimplex(t *testing.T) {
	cases := [][]float64{
		{0.2, 0.3, 0.5},
		{1, 1, 1},
		{-1, 2, 0.5},
		{0, 0, 0},
		{5},
	}
	for _, v := range cases {
		in := append([]float64(nil), v...)
		projectSimplex(in)
		var sum float64
		for _, x := range in {
			if x < 0 {
				t.Errorf("projectSimplex(%v) produced negative entry %v", v, in)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("projectSimplex(%v) sums to %v", v, sum)
		}
	}
	// Projection of a point already on the simplex is identity.
	p := []float64{0.25, 0.25, 0.5}
	in := append([]float64(nil), p...)
	projectSimplex(in)
	for i := range p {
		if math.Abs(in[i]-p[i]) > 1e-9 {
			t.Errorf("identity projection changed %v to %v", p, in)
		}
	}
}

func TestProjectWithMean(t *testing.T) {
	e := engine(t, 30, 1)
	prob := Problem{Engine: e, Lo: 2, Hi: 20, Mean: 9}
	v := make([]float64, 19)
	for i := range v {
		v[i] = float64(i%5) - 1
	}
	prob.project(v)
	var sum, mean float64
	for i, x := range v {
		if x < -1e-12 {
			t.Errorf("negative mass %v at %d", x, i)
		}
		sum += x
		mean += x * float64(prob.Lo+i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("sum = %v", sum)
	}
	if math.Abs(mean-9) > 1e-6 {
		t.Errorf("mean = %v, want 9", mean)
	}
}
