package optimize

import (
	"math"
	"testing"

	"anonmix/internal/events"
	"anonmix/internal/pool"
)

// timelineEngines builds a drifting (N, C) trajectory as one engine
// family, the way scenario's delta cache would hand it to the solver.
func timelineEngines(t *testing.T, n, c int, steps [][2]int) []*events.Engine {
	t.Helper()
	e, err := events.New(n, c)
	if err != nil {
		t.Fatal(err)
	}
	out := []*events.Engine{e}
	for _, s := range steps {
		if e, err = e.Neighbor(s[0], s[1]); err != nil {
			t.Fatal(err)
		}
		out = append(out, e)
	}
	return out
}

func creepProblem(t *testing.T) TimelineProblem {
	t.Helper()
	engines := timelineEngines(t, 60, 2, [][2]int{{0, 1}, {0, 1}, {1, 1}})
	p := TimelineProblem{Lo: 0, Hi: 30, Mean: 12}
	for i, e := range engines {
		p.Epochs = append(p.Epochs, EpochProblem{Engine: e, Weight: float64(1 + i%2)})
	}
	return p
}

// TestMaximizeTimelineWarmStartDeterministic extends the
// TestMaximizeParallelRestartsDeterministic contract to the epoch-aware
// solver: warm-started parallel restarts must be bit-identical to serial.
func TestMaximizeTimelineWarmStartDeterministic(t *testing.T) {
	solve := func(workers int) TimelineResult {
		t.Helper()
		prev := pool.SetWorkers(workers)
		defer pool.SetWorkers(prev)
		res, err := MaximizeTimeline(creepProblem(t), WithMaxIterations(120), WithRestarts(4))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := solve(1)
	parallel := solve(8)
	if serial.PerEpochH != parallel.PerEpochH || serial.Joint.H != parallel.Joint.H {
		t.Errorf("blended H: serial (%v, joint %v), parallel (%v, joint %v) (must be bit-identical)",
			serial.PerEpochH, serial.Joint.H, parallel.PerEpochH, parallel.Joint.H)
	}
	check := func(label string, a, b Result) {
		t.Helper()
		if a.H != b.H || a.Iterations != b.Iterations || a.Converged != b.Converged {
			t.Errorf("%s: serial {%v %d %v}, parallel {%v %d %v}",
				label, a.H, a.Iterations, a.Converged, b.H, b.Iterations, b.Converged)
		}
		if a.Dist.Lo != b.Dist.Lo || len(a.Dist.Mass) != len(b.Dist.Mass) {
			t.Fatalf("%s: support mismatch", label)
		}
		for i := range a.Dist.Mass {
			if a.Dist.Mass[i] != b.Dist.Mass[i] {
				t.Errorf("%s mass[%d]: serial %v, parallel %v", label, i, a.Dist.Mass[i], b.Dist.Mass[i])
			}
		}
	}
	for i := range serial.PerEpoch {
		check("epoch", serial.PerEpoch[i], parallel.PerEpoch[i])
	}
	check("joint", serial.Joint, parallel.Joint)
}

// TestMaximizeTimelineSingleEpoch pins the degenerate case: one epoch with
// the full restart budget is exactly Maximize.
func TestMaximizeTimelineSingleEpoch(t *testing.T) {
	e, err := events.New(60, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := Problem{Engine: e, Lo: 0, Hi: 59, Mean: 12}
	want, err := Maximize(p, WithMaxIterations(120), WithRestarts(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := MaximizeTimeline(TimelineProblem{
		Epochs: []EpochProblem{{Engine: e, Weight: 1}}, Lo: 0, Hi: 59, Mean: 12,
	}, WithMaxIterations(120), WithRestarts(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.PerEpoch[0].H != want.H || res.PerEpochH != want.H {
		t.Errorf("single-epoch PerEpoch H %v (blend %v), Maximize %v", res.PerEpoch[0].H, res.PerEpochH, want.H)
	}
	for i := range want.Dist.Mass {
		if res.PerEpoch[0].Dist.Mass[i] != want.Dist.Mass[i] {
			t.Errorf("mass[%d]: timeline %v, Maximize %v", i, res.PerEpoch[0].Dist.Mass[i], want.Dist.Mass[i])
		}
	}
}

// TestMaximizeTimelineOrdering pins the structural relations between the
// three policies: per-epoch dominates joint (it has strictly more freedom),
// and the reported blends are consistent with EvaluateTimeline.
func TestMaximizeTimelineOrdering(t *testing.T) {
	p := creepProblem(t)
	res, err := MaximizeTimeline(p, WithMaxIterations(200))
	if err != nil {
		t.Fatal(err)
	}
	if res.PerEpochH < res.Joint.H-1e-9 {
		t.Errorf("per-epoch blend %v below joint %v: per-epoch must dominate", res.PerEpochH, res.Joint.H)
	}
	// The joint H reported by the ascent is the evaluator's blend; the
	// engine-side blend must agree (the weight decomposition is exact up
	// to alpha clamping).
	got, err := EvaluateTimeline(p, res.Joint.Dist)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-res.Joint.H) > 1e-9 {
		t.Errorf("EvaluateTimeline(joint) = %v, Joint.H = %v", got, res.Joint.H)
	}
	// Each epoch's reported H is the epoch-local value of its own optimum.
	for i := range p.Epochs {
		he, err := p.Epochs[i].Engine.AnonymityDegree(res.PerEpoch[i].Dist)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(he-res.PerEpoch[i].H) > 1e-9 {
			t.Errorf("epoch %d: engine H %v vs result %v", i, he, res.PerEpoch[i].H)
		}
		// Warm-started epochs track the joint solution's per-epoch value
		// or better. The ascent is local (two starts per warm epoch), so
		// allow milli-bit wiggle — what must never happen is the warm
		// chain losing whole fractions of a bit.
		hj, err := p.Epochs[i].Engine.AnonymityDegree(res.Joint.Dist)
		if err != nil {
			t.Fatal(err)
		}
		if res.PerEpoch[i].H < hj-1e-3 {
			t.Errorf("epoch %d: per-epoch H %v below joint's epoch value %v", i, res.PerEpoch[i].H, hj)
		}
	}
}

// TestMaximizeTimelineValidation exercises the error paths.
func TestMaximizeTimelineValidation(t *testing.T) {
	e, err := events.New(20, 2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []TimelineProblem{
		{},
		{Epochs: []EpochProblem{{Engine: nil}}, Lo: 0, Hi: 10},
		{Epochs: []EpochProblem{{Engine: e, Weight: -1}}, Lo: 0, Hi: 10},
		{Epochs: []EpochProblem{{Engine: e}}, Lo: 0, Hi: 25},
		{Epochs: []EpochProblem{{Engine: e}}, Lo: 0, Hi: 10, Mean: 15},
	}
	for i, p := range cases {
		if p.Mean == 0 {
			p.Mean = UnconstrainedMean()
		}
		if _, err := MaximizeTimeline(p); err == nil {
			t.Errorf("case %d: want error, got nil", i)
		}
		if _, err := EvaluateTimeline(p, nil); err == nil {
			t.Errorf("case %d: EvaluateTimeline want error, got nil", i)
		}
	}
}
