package adversary

// The accumulation attack of Wright, Adler, Levine and Shields (NDSS
// 2002), cited as [23] by Guan et al.: when one initiator talks to one
// receiver over many rounds, each round's rerouting path leaks a little,
// and the adversary multiplies the per-round posteriors. The Accumulator
// below is the engine-exact version of that attack; the scenario layer
// drives it from every backend (the exact engine replays synthesized
// traces, the Monte-Carlo estimator folds sampled sessions, the testbed
// feeds it collected tuple streams), and package degrade re-exports it for
// compatibility.

import (
	"errors"
	"fmt"
	"math"

	"anonmix/internal/entropy"
	"anonmix/internal/trace"
)

// ErrNoObservations reports a query on an accumulator that has seen
// nothing yet.
var ErrNoObservations = errors.New("adversary: no observations accumulated")

// Accumulator combines per-message sender posteriors across rounds.
// It is not safe for concurrent use.
type Accumulator struct {
	analyst *Analyst
	logPost []float64
	rounds  int
}

// NewAccumulator returns an accumulator over the analyst's system.
func NewAccumulator(a *Analyst) (*Accumulator, error) {
	if a == nil {
		return nil, fmt.Errorf("%w: nil analyst", ErrBadConfig)
	}
	n := a.Engine().N()
	return &Accumulator{analyst: a, logPost: make([]float64, n)}, nil
}

// Observe folds one message trace into the running posterior. Because the
// per-round prior is uniform, multiplying round posteriors (adding logs)
// yields the correct joint posterior up to normalization.
func (acc *Accumulator) Observe(mt *trace.MessageTrace) error {
	post, err := acc.analyst.Posterior(mt)
	if err != nil {
		return err
	}
	for i, p := range post.P {
		if p <= 0 {
			acc.logPost[i] = math.Inf(-1)
			continue
		}
		acc.logPost[i] += math.Log(p)
	}
	acc.rounds++
	return nil
}

// FoldPosterior folds an externally computed sender posterior into the
// running joint — the entry point for partial-information evidence that
// does not come from this accumulator's own analyst, such as the
// uncompromised-receiver analysis of a failed delivery attempt or a
// retransmission prefix (the reliability layer's retry-degraded H). The
// vector must span the analyst's N nodes and is folded exactly like an
// Observe posterior: zero mass eliminates a candidate outright.
func (acc *Accumulator) FoldPosterior(post []float64) error {
	if len(post) != len(acc.logPost) {
		return fmt.Errorf("%w: posterior over %d nodes, accumulator over %d",
			ErrBadConfig, len(post), len(acc.logPost))
	}
	for i, p := range post {
		if p <= 0 {
			acc.logPost[i] = math.Inf(-1)
			continue
		}
		acc.logPost[i] += math.Log(p)
	}
	acc.rounds++
	return nil
}

// Rounds returns the number of observations folded in.
func (acc *Accumulator) Rounds() int { return acc.rounds }

// Posterior returns the normalized joint posterior over the N nodes.
func (acc *Accumulator) Posterior() ([]float64, error) {
	if acc.rounds == 0 {
		return nil, ErrNoObservations
	}
	out := make([]float64, len(acc.logPost))
	if err := acc.posteriorInto(out); err != nil {
		return nil, err
	}
	return out, nil
}

// posteriorInto normalizes the joint posterior into the caller's buffer.
func (acc *Accumulator) posteriorInto(out []float64) error {
	return normalizeLog(acc.logPost, out)
}

// normalizeLog exponentiates and normalizes a log-posterior into out
// (max-subtracted for stability). Shared by the static and the phased
// accumulator.
func normalizeLog(logPost, out []float64) error {
	maxLog := math.Inf(-1)
	for _, lp := range logPost {
		if lp > maxLog {
			maxLog = lp
		}
	}
	if math.IsInf(maxLog, -1) {
		return fmt.Errorf("%w: joint posterior vanished (inconsistent observations)", ErrCorruptTrace)
	}
	var sum float64
	for i, lp := range logPost {
		out[i] = math.Exp(lp - maxLog)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return nil
}

// Entropy returns the Shannon entropy (bits) of the joint posterior —
// the sender's remaining anonymity after Rounds messages.
func (acc *Accumulator) Entropy() (float64, error) {
	p, err := acc.Posterior()
	if err != nil {
		return 0, err
	}
	return entropy.Bits(p), nil
}

// Top returns the argmax node of the joint posterior and its probability.
func (acc *Accumulator) Top() (trace.NodeID, float64, error) {
	p, err := acc.Posterior()
	if err != nil {
		return 0, 0, err
	}
	best, arg := -1.0, 0
	for i, v := range p {
		if v > best {
			best, arg = v, i
		}
	}
	return trace.NodeID(arg), best, nil
}

// Snapshot returns the joint posterior's entropy, argmax node, and argmax
// mass in one pass — the per-round query of a degradation session, which
// would otherwise normalize the posterior twice (Entropy + Top).
func (acc *Accumulator) Snapshot() (h float64, top trace.NodeID, mass float64, err error) {
	p, err := acc.Posterior()
	if err != nil {
		return 0, 0, 0, err
	}
	best, arg := -1.0, 0
	for i, v := range p {
		if v > best {
			best, arg = v, i
		}
	}
	return entropy.Bits(p), trace.NodeID(arg), best, nil
}
