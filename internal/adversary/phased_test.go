package adversary_test

import (
	"errors"
	"math"
	"testing"

	"anonmix/internal/adversary"
	"anonmix/internal/dist"
	"anonmix/internal/events"
	"anonmix/internal/trace"
)

// synthesize builds the trace of a concrete path (a local copy of
// montecarlo.Synthesize, which would import-cycle through scenario).
func synthesize(msg trace.MessageID, sender trace.NodeID, path []trace.NodeID,
	compromised func(trace.NodeID) bool) *trace.MessageTrace {
	mt := &trace.MessageTrace{Msg: msg, ReceiverSeen: true}
	prev := sender
	for i, hop := range path {
		if compromised(hop) {
			succ := trace.Receiver
			if i+1 < len(path) {
				succ = path[i+1]
			}
			mt.Reports = append(mt.Reports, trace.Tuple{
				Time: uint64(i + 1), Observer: hop, Msg: msg, Pred: prev, Succ: succ,
			})
		}
		prev = hop
	}
	mt.ReceiverPred = prev
	return mt
}

// TestPhasedMatchesStatic: with a static population (the identity phase
// mapping every round), the phased accumulator must reproduce the static
// Accumulator bit for bit.
func TestPhasedMatchesStatic(t *testing.T) {
	const n = 12
	comp := []trace.NodeID{2, 7}
	e, err := events.New(n, len(comp))
	if err != nil {
		t.Fatal(err)
	}
	d, err := dist.NewUniform(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	analyst, err := adversary.NewAnalyst(e, d, comp)
	if err != nil {
		t.Fatal(err)
	}
	static, err := adversary.NewAccumulator(analyst)
	if err != nil {
		t.Fatal(err)
	}
	phased, err := adversary.NewPhasedAccumulator(n)
	if err != nil {
		t.Fatal(err)
	}
	identity := make([]trace.NodeID, n)
	for i := range identity {
		identity[i] = trace.NodeID(i)
	}
	paths := [][]trace.NodeID{{3, 2, 8}, {7, 1}, {4}, {2, 9, 7, 6}}
	for r, path := range paths {
		mt := synthesize(trace.MessageID(r+1), 5, path, analyst.Compromised)
		if err := static.Observe(mt); err != nil {
			t.Fatal(err)
		}
		if err := phased.Observe(analyst, mt, identity); err != nil {
			t.Fatal(err)
		}
		hs, err := static.Entropy()
		if err != nil {
			t.Fatal(err)
		}
		hp, topP, massP, err := phased.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		topS, massS, err := static.Top()
		if err != nil {
			t.Fatal(err)
		}
		if hs != hp {
			t.Errorf("round %d: static H = %v, phased H = %v", r+1, hs, hp)
		}
		if topS != topP || massS != massP {
			t.Errorf("round %d: static top (%v, %v), phased top (%v, %v)", r+1, topS, massS, topP, massP)
		}
	}
	if phased.Rounds() != len(paths) {
		t.Errorf("rounds = %d", phased.Rounds())
	}
}

// TestPhasedEliminatesAbsentMembers: a union member absent during an
// observed round cannot be the sender; the joint posterior must drop it
// even if every present round left it plausible.
func TestPhasedEliminatesAbsentMembers(t *testing.T) {
	// Union space of 6: phase A = {0..4}, phase B = {0,1,2,3,5} (node 4
	// left, node 5 joined).
	e5, err := events.New(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dist.NewFixed(2)
	if err != nil {
		t.Fatal(err)
	}
	liveA := []trace.NodeID{0, 1, 2, 3, 4}
	liveB := []trace.NodeID{0, 1, 2, 3, 5}
	analystA, err := adversary.NewAnalyst(e5, d, []trace.NodeID{1})
	if err != nil {
		t.Fatal(err)
	}
	analystB := analystA // same dense structure in both phases

	pa, err := adversary.NewPhasedAccumulator(6)
	if err != nil {
		t.Fatal(err)
	}
	// Round 1 in phase A: dense sender 0, path through honest nodes only.
	if err := pa.Observe(analystA, synthesize(1, 0, []trace.NodeID{2, 3}, analystA.Compromised), liveA); err != nil {
		t.Fatal(err)
	}
	post, err := pa.Posterior()
	if err != nil {
		t.Fatal(err)
	}
	if post[5] != 0 {
		t.Errorf("joiner (absent in phase A) has mass %v after round 1", post[5])
	}
	// Round 2 in phase B eliminates union node 4 (left) in turn.
	if err := pa.Observe(analystB, synthesize(2, 0, []trace.NodeID{2, 3}, analystB.Compromised), liveB); err != nil {
		t.Fatal(err)
	}
	post, err = pa.Posterior()
	if err != nil {
		t.Fatal(err)
	}
	if post[4] != 0 || post[5] != 0 {
		t.Errorf("transient members kept mass: p[4]=%v p[5]=%v", post[4], post[5])
	}
	var sum float64
	for _, p := range post {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("posterior mass = %v", sum)
	}
}

// TestPhasedValidation pins the accumulator's input checks.
func TestPhasedValidation(t *testing.T) {
	if _, err := adversary.NewPhasedAccumulator(0); !errors.Is(err, adversary.ErrBadConfig) {
		t.Errorf("size 0 err = %v", err)
	}
	e, err := events.New(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dist.NewFixed(1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := adversary.NewAnalyst(e, d, []trace.NodeID{1})
	if err != nil {
		t.Fatal(err)
	}
	pa, err := adversary.NewPhasedAccumulator(6)
	if err != nil {
		t.Fatal(err)
	}
	mt := synthesize(1, 0, []trace.NodeID{2}, a.Compromised)
	if err := pa.Observe(nil, mt, nil); !errors.Is(err, adversary.ErrBadConfig) {
		t.Errorf("nil analyst err = %v", err)
	}
	if err := pa.Observe(a, mt, []trace.NodeID{0, 1}); !errors.Is(err, adversary.ErrBadConfig) {
		t.Errorf("short live err = %v", err)
	}
	if err := pa.Observe(a, mt, []trace.NodeID{0, 1, 2, 3, 9}); !errors.Is(err, adversary.ErrBadConfig) {
		t.Errorf("out-of-space identity err = %v", err)
	}
	if err := pa.Observe(a, mt, []trace.NodeID{0, 1, 2, 3, 3}); !errors.Is(err, adversary.ErrBadConfig) {
		t.Errorf("duplicate identity err = %v", err)
	}
	if _, err := pa.Posterior(); !errors.Is(err, adversary.ErrNoObservations) {
		t.Errorf("empty posterior err = %v", err)
	}
}
