//go:build !race

package adversary_test

const raceEnabled = false
