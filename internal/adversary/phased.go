package adversary

// The accumulation attack over a dynamic population. When membership and
// compromise change between rounds (node churn, time-phased compromise),
// each round's posterior lives over that phase's population, and the
// phases generally disagree about who exists. The PhasedAccumulator folds
// such rounds over a *union* identity space: every node that ever exists
// gets one stable union identity, each phase supplies the mapping from its
// analyst's dense node space to those identities, and a union member
// absent during an observed round is eliminated outright — the adversary
// knows the session's sender was a live member whenever it sent. With a
// static population (the phase mapping is the identity) it reduces exactly
// to Accumulator.

import (
	"fmt"
	"math"

	"anonmix/internal/entropy"
	"anonmix/internal/trace"
)

// PhasedAccumulator combines per-round sender posteriors across population
// phases. It is not safe for concurrent use.
type PhasedAccumulator struct {
	logPost []float64 // joint log-posterior over the union space
	mark    []bool    // scratch: union members live in the current round
	rounds  int
}

// NewPhasedAccumulator returns an accumulator over a union identity space
// of the given size (every node that exists in any phase).
func NewPhasedAccumulator(total int) (*PhasedAccumulator, error) {
	if total < 1 {
		return nil, fmt.Errorf("%w: union space of %d nodes", ErrBadConfig, total)
	}
	return &PhasedAccumulator{
		logPost: make([]float64, total),
		mark:    make([]bool, total),
	}, nil
}

// Observe folds one message trace recorded during a phase whose live
// population is live: live[i] is the union identity of the analyst's node
// i, so len(live) must equal the analyst's N. Live members multiply in
// their per-round posterior; union members absent this phase are
// eliminated (−∞ log-posterior).
func (pa *PhasedAccumulator) Observe(a *Analyst, mt *trace.MessageTrace, live []trace.NodeID) error {
	if a == nil {
		return fmt.Errorf("%w: nil analyst", ErrBadConfig)
	}
	if len(live) != a.Engine().N() {
		return fmt.Errorf("%w: %d live identities for an analyst over %d nodes",
			ErrBadConfig, len(live), a.Engine().N())
	}
	post, err := a.Posterior(mt)
	if err != nil {
		return err
	}
	for i := range pa.mark {
		pa.mark[i] = false
	}
	for i, g := range live {
		if int(g) < 0 || int(g) >= len(pa.logPost) {
			return fmt.Errorf("%w: live identity %v outside union space of %d",
				ErrBadConfig, g, len(pa.logPost))
		}
		if pa.mark[g] {
			return fmt.Errorf("%w: union identity %v mapped twice", ErrBadConfig, g)
		}
		pa.mark[g] = true
		if p := post.P[i]; p > 0 {
			pa.logPost[g] += math.Log(p)
		} else {
			pa.logPost[g] = math.Inf(-1)
		}
	}
	for g := range pa.logPost {
		if !pa.mark[g] {
			pa.logPost[g] = math.Inf(-1)
		}
	}
	pa.rounds++
	return nil
}

// Rounds returns the number of observations folded in.
func (pa *PhasedAccumulator) Rounds() int { return pa.rounds }

// Posterior returns the normalized joint posterior over the union space.
func (pa *PhasedAccumulator) Posterior() ([]float64, error) {
	if pa.rounds == 0 {
		return nil, ErrNoObservations
	}
	out := make([]float64, len(pa.logPost))
	if err := normalizeLog(pa.logPost, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Snapshot returns the joint posterior's entropy (bits), argmax union
// identity, and argmax mass in one pass — the per-round query of a
// dynamic-population degradation session.
func (pa *PhasedAccumulator) Snapshot() (h float64, top trace.NodeID, mass float64, err error) {
	p, err := pa.Posterior()
	if err != nil {
		return 0, 0, 0, err
	}
	best, arg := -1.0, 0
	for i, v := range p {
		if v > best {
			best, arg = v, i
		}
	}
	return entropy.Bits(p), trace.NodeID(arg), best, nil
}
