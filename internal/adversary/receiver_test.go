package adversary_test

// Tests of the uncompromised-receiver adversary and the O(1) Entropy fast
// path: classification must ignore receiver fields, collapse tails into
// TailUnobserved, and Entropy must agree with the full Posterior.

import (
	"math"
	"testing"

	"anonmix/internal/adversary"
	"anonmix/internal/events"
	"anonmix/internal/trace"
)

func uncompAnalyst(t *testing.T, n int, compromised []trace.NodeID) *adversary.Analyst {
	t.Helper()
	e, err := events.New(n, len(compromised), events.WithUncompromisedReceiver())
	if err != nil {
		t.Fatal(err)
	}
	a, err := adversary.NewAnalyst(e, uniform(t, 0, 5), compromised)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestUncompromisedReceiverEmptyTrace(t *testing.T) {
	const n = 12
	comp := []trace.NodeID{0, 1}
	a := uncompAnalyst(t, n, comp)
	// No reports at all, and no receiver report either: the adversary sees
	// nothing; the posterior is uniform over the n−c uncompromised nodes.
	post, err := a.Posterior(&trace.MessageTrace{})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log2(float64(n - len(comp)))
	if math.Abs(post.H-want) > 1e-12 {
		t.Errorf("H = %v, want log2(%d) = %v", post.H, n-len(comp), want)
	}
	for id, p := range post.P {
		isComp := id < len(comp)
		if isComp && p != 0 {
			t.Errorf("compromised node %d has mass %v", id, p)
		}
		if !isComp && math.Abs(p-1/float64(n-len(comp))) > 1e-12 {
			t.Errorf("node %d mass %v", id, p)
		}
	}
	h, err := a.Entropy(&trace.MessageTrace{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-post.H) > 1e-12 {
		t.Errorf("Entropy = %v, Posterior.H = %v", h, post.H)
	}
}

func TestUncompromisedReceiverTailCollapse(t *testing.T) {
	comp := []trace.NodeID{0, 1}
	a := uncompAnalyst(t, 12, comp)

	// Path 5 → 0 → 7 → R: node 0 reports (pred 5, succ 7); the receiver
	// stays silent, so the tail is unobservable (could be one hop or many).
	mt := synth(5, []trace.NodeID{0, 7}, comp...)
	mt.ReceiverSeen = false // the network's receiver tap is not available
	obs, err := a.Classify(mt)
	if err != nil {
		t.Fatal(err)
	}
	if obs.Class.Tail != events.TailUnobserved {
		t.Errorf("tail = %v, want TailUnobserved", obs.Class.Tail)
	}
	if !obs.Witnessed[7] || !obs.Witnessed[5] {
		t.Errorf("witnessed = %v, want {5, 7}", obs.Witnessed)
	}

	// Path 5 → 0 → R: the run's successor IS the receiver — observable.
	mt = synth(2, []trace.NodeID{0}, comp...)
	mt.ReceiverSeen = false
	obs, err = a.Classify(mt)
	if err != nil {
		t.Fatal(err)
	}
	if obs.Class.Tail != events.TailZero {
		t.Errorf("tail = %v, want TailZero", obs.Class.Tail)
	}
}

// TestUncompromisedReceiverIgnoresReceiverFields: the same trace with and
// without receiver fields must classify identically — the adversary does
// not have the receiver's report even when the testbed recorded one.
func TestUncompromisedReceiverIgnoresReceiverFields(t *testing.T) {
	comp := []trace.NodeID{0, 1}
	a := uncompAnalyst(t, 12, comp)
	with := synth(5, []trace.NodeID{0, 7, 9}, comp...) // ReceiverSeen = true
	without := synth(5, []trace.NodeID{0, 7, 9}, comp...)
	without.ReceiverSeen = false
	without.ReceiverPred = 0

	o1, err := a.Classify(with)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := a.Classify(without)
	if err != nil {
		t.Fatal(err)
	}
	if o1.Class.String() != o2.Class.String() || o1.Candidate != o2.Candidate {
		t.Errorf("classifications diverge: %+v vs %+v", o1, o2)
	}
	h1, err := a.Entropy(with)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a.Posterior(without)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h1-p2.H) > 1e-12 {
		t.Errorf("Entropy %v != Posterior.H %v", h1, p2.H)
	}
}

// TestEntropyMatchesPosterior sweeps concrete paths under the default
// (compromised-receiver) model and checks the fast path against the full
// posterior computation.
func TestEntropyMatchesPosterior(t *testing.T) {
	comp := []trace.NodeID{2, 7}
	a := analyst(t, 14, comp, uniform(t, 0, 5))
	paths := [][]trace.NodeID{
		nil,
		{3},
		{2},
		{2, 7},
		{2, 3, 7},
		{5, 2, 7, 9},
		{9, 10, 11},
		{2, 7, 9, 5},
	}
	for _, p := range paths {
		mt := synth(4, p, comp...)
		post, err := a.Posterior(mt)
		if err != nil {
			t.Fatalf("path %v: %v", p, err)
		}
		h, err := a.Entropy(mt)
		if err != nil {
			t.Fatalf("path %v: %v", p, err)
		}
		if math.Abs(h-post.H) > 1e-9 {
			t.Errorf("path %v: Entropy %v, Posterior.H %v", p, h, post.H)
		}
	}
}
