package adversary

// The zero-allocation analysis fast path. Classify/Posterior/Observe
// allocate a map, two class slices, and an N-vector per message — fine for
// one-off queries, ruinous inside the estimators' trial loops, which fold
// tens of thousands of rounds per benchmark op. The Scratch arena plus the
// *Scratch methods below compute the same classification, the same
// log-posterior fold, and the same snapshot quantities into reusable
// buffers. Each worker goroutine owns one Scratch; none of this is safe
// for concurrent use.

import (
	"fmt"
	"math"

	"anonmix/internal/events"
	"anonmix/internal/trace"
)

// Scratch holds the reusable buffers of one worker's analysis loop.
type Scratch struct {
	witnessed []trace.NodeID
	runs      []int
	gaps      []events.GapFlag
	observers []trace.NodeID
}

// ObservationView is the scratch-backed equivalent of Observation: the
// Witnessed set is a deduplicated slice and, like the Class slices, points
// into the Scratch — valid only until the next *Scratch call.
type ObservationView struct {
	// Class is the structural signature fed to the Bayesian engine.
	Class events.Class
	// Candidate is the node carrying the posterior spike.
	Candidate trace.NodeID
	// Witnessed lists the distinct observed uncompromised identities
	// (candidate included), matching the key set of Observation.Witnessed.
	Witnessed []trace.NodeID
	// Identified marks outright deanonymization.
	Identified bool
}

// witnessedHas reports membership in the deduplicated witnessed slice; the
// set is at most a few entries (junction and tail witnesses), so a linear
// scan beats any hashed structure.
func (sc *Scratch) witnessedHas(id trace.NodeID) bool {
	for _, w := range sc.witnessed {
		if w == id {
			return true
		}
	}
	return false
}

func (sc *Scratch) addWitness(id trace.NodeID) {
	if !sc.witnessedHas(id) {
		sc.witnessed = append(sc.witnessed, id)
	}
}

// ClassifyScratch is Classify without allocation: same validation, same
// class reconstruction, same witness set (as a slice), into sc's buffers.
func (a *Analyst) ClassifyScratch(mt *trace.MessageTrace, sc *Scratch) (ObservationView, error) {
	if mt == nil {
		return ObservationView{}, fmt.Errorf("%w: nil trace", ErrCorruptTrace)
	}
	receiver := a.engine.ReceiverCompromised()
	if receiver && !mt.ReceiverSeen {
		return ObservationView{}, trace.ErrNoReceiverReport
	}
	sc.witnessed = sc.witnessed[:0]
	sc.runs = sc.runs[:0]
	sc.gaps = sc.gaps[:0]
	sc.observers = sc.observers[:0]
	var obs ObservationView
	if len(mt.Reports) == 0 {
		if !receiver {
			obs.Candidate = trace.Receiver
			return obs, nil
		}
		obs.Candidate = mt.ReceiverPred
		sc.addWitness(mt.ReceiverPred)
		obs.Witnessed = sc.witnessed
		obs.Identified = a.compromised[mt.ReceiverPred]
		return obs, nil
	}

	for i := range mt.Reports {
		r := &mt.Reports[i]
		if !a.compromised[r.Observer] {
			return ObservationView{}, fmt.Errorf("%w: report from unknown agent %v", ErrCorruptTrace, r.Observer)
		}
		for _, o := range sc.observers {
			if o == r.Observer {
				return ObservationView{}, fmt.Errorf("%w: node %v observed twice (cyclic route?)", ErrModelMismatch, r.Observer)
			}
		}
		sc.observers = append(sc.observers, r.Observer)
		if i == 0 {
			obs.Candidate = r.Pred
			sc.runs = append(sc.runs, 1)
			continue
		}
		prev := &mt.Reports[i-1]
		switch {
		case prev.Succ == r.Observer:
			if r.Pred != prev.Observer {
				return ObservationView{}, fmt.Errorf("%w: run linkage broken between %v and %v",
					ErrCorruptTrace, prev.Observer, r.Observer)
			}
			sc.runs[len(sc.runs)-1]++
		case prev.Succ == r.Pred:
			sc.runs = append(sc.runs, 1)
			sc.gaps = append(sc.gaps, events.GapOne)
			sc.addWitness(r.Pred)
		default:
			sc.runs = append(sc.runs, 1)
			sc.gaps = append(sc.gaps, events.GapWide)
			sc.addWitness(prev.Succ)
			sc.addWitness(r.Pred)
		}
	}
	last := &mt.Reports[len(mt.Reports)-1]
	var tail events.TailFlag
	switch {
	case last.Succ == trace.Receiver:
		tail = events.TailZero
	case !receiver:
		tail = events.TailUnobserved
		sc.addWitness(last.Succ)
	case last.Succ == mt.ReceiverPred:
		tail = events.TailOne
		sc.addWitness(last.Succ)
	default:
		tail = events.TailWide
		sc.addWitness(last.Succ)
		sc.addWitness(mt.ReceiverPred)
	}
	sc.addWitness(obs.Candidate)
	obs.Witnessed = sc.witnessed
	obs.Class = events.Class{Runs: sc.runs, Gaps: sc.gaps, Tail: tail}
	obs.Identified = a.compromised[obs.Candidate]
	return obs, nil
}

// EntropyScratch is Entropy without allocation: the O(reports) single-shot
// entropy of one message trace, via sc's buffers.
func (a *Analyst) EntropyScratch(mt *trace.MessageTrace, sc *Scratch) (float64, error) {
	obs, err := a.ClassifyScratch(mt, sc)
	if err != nil {
		return 0, err
	}
	if obs.Identified {
		return 0, nil
	}
	st, err := a.engine.StatsFor(obs.Class, a.length)
	if err != nil {
		return 0, err
	}
	if rest := a.engine.N() - a.engine.C() - a.honestWitnessed(obs.Witnessed); rest != st.Rest {
		return 0, fmt.Errorf("%w: %d slab candidates reconstructed, engine expects %d",
			ErrCorruptTrace, rest, st.Rest)
	}
	return st.H, nil
}

// honestWitnessed counts the witnessed identities outside the compromised
// set — the ones that shrink the slab beyond the adversary's own nodes. A
// complete trace never witnesses a compromised node (it would have filed a
// report), but a partial trace's lost-link target can be compromised: the
// transmitter names the node it was sending toward when the message was
// dropped. Posterior's set-difference slab construction handles the overlap
// implicitly; the arithmetic cross-checks must discount it explicitly.
func (a *Analyst) honestWitnessed(witnessed []trace.NodeID) int {
	w := 0
	for _, id := range witnessed {
		if !a.compromised[id] {
			w++
		}
	}
	return w
}

// Reset rewinds the accumulator to the uniform prior so session loops can
// reuse one allocation across sessions.
func (acc *Accumulator) Reset() {
	for i := range acc.logPost {
		acc.logPost[i] = 0
	}
	acc.rounds = 0
}

// ObserveScratch folds one message trace into the running posterior
// without materializing the intermediate Posterior vector. The fold is
// term-for-term the one Observe applies: the spike candidate accumulates
// log α, slab members log((1−α)/rest), and compromised, witnessed, and
// zero-mass nodes are eliminated. On error the accumulator is unchanged.
func (acc *Accumulator) ObserveScratch(mt *trace.MessageTrace, sc *Scratch) error {
	return acc.foldObservation(acc.analyst, mt, sc)
}

// FoldObservation folds the posterior a second analyst derives from mt —
// the scratch counterpart of FoldPosterior(a.Posterior(mt).P), used by the
// reliability layer to fold the uncompromised-receiver analysis of failed
// delivery attempts. The analyst must span the accumulator's N nodes.
func (acc *Accumulator) FoldObservation(a *Analyst, mt *trace.MessageTrace, sc *Scratch) error {
	if a == nil {
		return fmt.Errorf("%w: nil analyst", ErrBadConfig)
	}
	if a.engine.N() != len(acc.logPost) {
		return fmt.Errorf("%w: analyst over %d nodes, accumulator over %d",
			ErrBadConfig, a.engine.N(), len(acc.logPost))
	}
	return acc.foldObservation(a, mt, sc)
}

// foldObservation classifies mt under analyst a and folds the resulting
// spike/slab posterior into the joint log-posterior.
func (acc *Accumulator) foldObservation(a *Analyst, mt *trace.MessageTrace, sc *Scratch) error {
	obs, err := a.ClassifyScratch(mt, sc)
	if err != nil {
		return err
	}
	n := a.engine.N()
	lp := acc.logPost
	if obs.Identified {
		for i := range lp {
			if trace.NodeID(i) != obs.Candidate {
				lp[i] = math.Inf(-1)
			}
		}
		acc.rounds++
		return nil
	}
	st, err := a.engine.StatsFor(obs.Class, a.length)
	if err != nil {
		return err
	}
	if rest := n - a.engine.C() - a.honestWitnessed(obs.Witnessed); rest != st.Rest {
		return fmt.Errorf("%w: %d slab candidates reconstructed, engine expects %d",
			ErrCorruptTrace, rest, st.Rest)
	}
	candInRange := int(obs.Candidate) >= 0 && int(obs.Candidate) < n
	var candOld float64
	if candInRange {
		candOld = lp[obs.Candidate]
	}
	logShare := math.Inf(-1)
	if st.Rest > 0 {
		if share := (1 - st.Alpha) / float64(st.Rest); share > 0 {
			logShare = math.Log(share)
		}
	}
	// Default every node to the slab fold, then carve out the exceptions;
	// overwriting with −∞ is order-independent, so the map sweep over the
	// compromised set needs no fixed iteration order.
	if math.IsInf(logShare, -1) {
		for i := range lp {
			lp[i] = math.Inf(-1)
		}
	} else {
		for i := range lp {
			lp[i] += logShare
		}
	}
	for id := range a.compromised {
		lp[id] = math.Inf(-1)
	}
	for _, w := range obs.Witnessed {
		if w != obs.Candidate && int(w) >= 0 && int(w) < n {
			lp[w] = math.Inf(-1)
		}
	}
	if candInRange {
		if st.Alpha > 0 {
			lp[obs.Candidate] = candOld + math.Log(st.Alpha)
		} else {
			lp[obs.Candidate] = math.Inf(-1)
		}
	}
	acc.rounds++
	return nil
}

// SnapshotFast returns the joint posterior's entropy (bits), argmax node,
// and argmax mass without materializing the normalized vector. With
// m = max log-posterior, S = Σ exp(lᵢ−m), and W = Σ exp(lᵢ−m)·(lᵢ−m), the
// entropy is (ln S − W/S)/ln 2 and the argmax mass is 1/S. Values agree
// with Snapshot up to floating-point association order.
func (acc *Accumulator) SnapshotFast() (h float64, top trace.NodeID, mass float64, err error) {
	if acc.rounds == 0 {
		return 0, 0, 0, ErrNoObservations
	}
	return snapshotLog(acc.logPost)
}

// snapshotLog computes the entropy/argmax snapshot of an unnormalized
// log-posterior in two passes and zero allocations.
func snapshotLog(logPost []float64) (h float64, top trace.NodeID, mass float64, err error) {
	maxLog := math.Inf(-1)
	arg := 0
	for i, lp := range logPost {
		if lp > maxLog {
			maxLog, arg = lp, i
		}
	}
	if math.IsInf(maxLog, -1) {
		return 0, 0, 0, fmt.Errorf("%w: joint posterior vanished (inconsistent observations)", ErrCorruptTrace)
	}
	var sum, wsum float64
	for _, lp := range logPost {
		if math.IsInf(lp, -1) {
			continue // exp(−∞)·(−∞) would be 0·−∞ = NaN
		}
		e := math.Exp(lp - maxLog)
		sum += e
		wsum += e * (lp - maxLog)
	}
	h = (math.Log(sum) - wsum/sum) / math.Ln2
	if h < 0 {
		h = 0 // rounding can push a point mass a few ulps negative
	}
	return h, trace.NodeID(arg), 1 / sum, nil
}

// Reset rewinds the phased accumulator to the uniform prior over the union
// space.
func (pa *PhasedAccumulator) Reset() {
	for i := range pa.logPost {
		pa.logPost[i] = 0
	}
	pa.rounds = 0
}

// ObserveScratch is Observe without the intermediate Posterior allocation:
// it validates the live mapping first (so errors leave the accumulator
// unchanged), then applies the same spike/slab fold as the static
// ObserveScratch through the dense→union mapping, and eliminates union
// members absent this phase.
func (pa *PhasedAccumulator) ObserveScratch(a *Analyst, mt *trace.MessageTrace, live []trace.NodeID, sc *Scratch) error {
	if a == nil {
		return fmt.Errorf("%w: nil analyst", ErrBadConfig)
	}
	n := a.Engine().N()
	if len(live) != n {
		return fmt.Errorf("%w: %d live identities for an analyst over %d nodes",
			ErrBadConfig, len(live), n)
	}
	obs, err := a.ClassifyScratch(mt, sc)
	if err != nil {
		return err
	}
	lp := pa.logPost
	for i := range pa.mark {
		pa.mark[i] = false
	}
	for _, g := range live {
		if int(g) < 0 || int(g) >= len(lp) {
			return fmt.Errorf("%w: live identity %v outside union space of %d",
				ErrBadConfig, g, len(lp))
		}
		if pa.mark[g] {
			return fmt.Errorf("%w: union identity %v mapped twice", ErrBadConfig, g)
		}
		pa.mark[g] = true
	}
	candInRange := int(obs.Candidate) >= 0 && int(obs.Candidate) < n
	if obs.Identified {
		cand := live[obs.Candidate]
		for g := range lp {
			if trace.NodeID(g) != cand {
				lp[g] = math.Inf(-1)
			}
		}
		pa.rounds++
		return nil
	}
	st, err := a.Engine().StatsFor(obs.Class, a.length)
	if err != nil {
		return err
	}
	if rest := n - a.Engine().C() - a.honestWitnessed(obs.Witnessed); rest != st.Rest {
		return fmt.Errorf("%w: %d slab candidates reconstructed, engine expects %d",
			ErrCorruptTrace, rest, st.Rest)
	}
	var candOld float64
	if candInRange {
		candOld = lp[live[obs.Candidate]]
	}
	logShare := math.Inf(-1)
	if st.Rest > 0 {
		if share := (1 - st.Alpha) / float64(st.Rest); share > 0 {
			logShare = math.Log(share)
		}
	}
	if math.IsInf(logShare, -1) {
		for _, g := range live {
			lp[g] = math.Inf(-1)
		}
	} else {
		for _, g := range live {
			lp[g] += logShare
		}
	}
	for id := range a.compromised {
		lp[live[id]] = math.Inf(-1)
	}
	for _, w := range obs.Witnessed {
		if w != obs.Candidate && int(w) >= 0 && int(w) < n {
			lp[live[w]] = math.Inf(-1)
		}
	}
	if candInRange {
		if st.Alpha > 0 {
			lp[live[obs.Candidate]] = candOld + math.Log(st.Alpha)
		} else {
			lp[live[obs.Candidate]] = math.Inf(-1)
		}
	}
	for g := range lp {
		if !pa.mark[g] {
			lp[g] = math.Inf(-1)
		}
	}
	pa.rounds++
	return nil
}

// SnapshotFast is Snapshot without materializing the normalized posterior.
func (pa *PhasedAccumulator) SnapshotFast() (h float64, top trace.NodeID, mass float64, err error) {
	if pa.rounds == 0 {
		return 0, 0, 0, ErrNoObservations
	}
	return snapshotLog(pa.logPost)
}
