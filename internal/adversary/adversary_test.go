package adversary_test

import (
	"errors"
	"math"
	"testing"

	"anonmix/internal/adversary"
	"anonmix/internal/dist"
	"anonmix/internal/events"
	"anonmix/internal/montecarlo"
	"anonmix/internal/trace"
)

func analyst(t *testing.T, n int, compromised []trace.NodeID, d dist.Length) *adversary.Analyst {
	t.Helper()
	e, err := events.New(n, len(compromised))
	if err != nil {
		t.Fatal(err)
	}
	a, err := adversary.NewAnalyst(e, d, compromised)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func uniform(t *testing.T, a, b int) dist.Length {
	t.Helper()
	u, err := dist.NewUniform(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// synth builds the trace for a concrete path using the shared synthesizer.
func synth(sender trace.NodeID, path []trace.NodeID, compromised ...trace.NodeID) *trace.MessageTrace {
	set := make(map[trace.NodeID]bool, len(compromised))
	for _, c := range compromised {
		set[c] = true
	}
	return montecarlo.Synthesize(1, sender, path, func(id trace.NodeID) bool { return set[id] })
}

func TestNewAnalystValidation(t *testing.T) {
	e, err := events.New(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	d := uniform(t, 0, 5)
	cases := []struct {
		name string
		e    *events.Engine
		d    dist.Length
		comp []trace.NodeID
	}{
		{"nil engine", nil, d, []trace.NodeID{0, 1}},
		{"nil dist", e, nil, []trace.NodeID{0, 1}},
		{"wrong count", e, d, []trace.NodeID{0}},
		{"out of range", e, d, []trace.NodeID{0, 10}},
		{"duplicate", e, d, []trace.NodeID{3, 3}},
	}
	for _, c := range cases {
		if _, err := adversary.NewAnalyst(c.e, c.d, c.comp); !errors.Is(err, adversary.ErrBadConfig) {
			t.Errorf("%s: err = %v", c.name, err)
		}
	}
}

func TestClassifyStructures(t *testing.T) {
	// System of 12 nodes, compromised {0,1,2}. Sender 5.
	a := analyst(t, 12, []trace.NodeID{0, 1, 2}, uniform(t, 0, 9))
	cases := []struct {
		name      string
		path      []trace.NodeID
		wantClass string
		wantCand  trace.NodeID
	}{
		{"empty", []trace.NodeID{7, 8}, "[none]", 8},
		{"direct send", nil, "[none]", 5},
		{"tail zero", []trace.NodeID{7, 0}, "[1]-t0", 7},
		{"tail one", []trace.NodeID{0, 7}, "[1]-t1", 5},
		{"tail wide", []trace.NodeID{0, 7, 8}, "[1]-t2+", 5},
		{"run of two", []trace.NodeID{7, 0, 1, 8}, "[2]-t1", 7},
		{"gap one", []trace.NodeID{0, 7, 1, 8}, "[1]-1-[1]-t1", 5},
		{"gap wide", []trace.NodeID{0, 7, 8, 1}, "[1]-2+-[1]-t0", 5},
		{"all three", []trace.NodeID{0, 1, 2}, "[3]-t0", 5},
		{"full structure", []trace.NodeID{6, 0, 7, 1, 2, 8, 9}, "[1]-1-[2]-t2+", 6},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			obs, err := a.Classify(synth(5, c.path, 0, 1, 2))
			if err != nil {
				t.Fatal(err)
			}
			if got := obs.Class.String(); got != c.wantClass {
				t.Errorf("class = %s, want %s (path %v)", got, c.wantClass, c.path)
			}
			if obs.Candidate != c.wantCand {
				t.Errorf("candidate = %v, want %v", obs.Candidate, c.wantCand)
			}
		})
	}
}

func TestClassifyErrors(t *testing.T) {
	a := analyst(t, 12, []trace.NodeID{0, 1}, uniform(t, 0, 9))
	if _, err := a.Classify(nil); !errors.Is(err, adversary.ErrCorruptTrace) {
		t.Errorf("nil trace err = %v", err)
	}
	if _, err := a.Classify(&trace.MessageTrace{}); !errors.Is(err, trace.ErrNoReceiverReport) {
		t.Errorf("no receiver err = %v", err)
	}
	// Report from a node the analyst does not control.
	mt := &trace.MessageTrace{ReceiverSeen: true, ReceiverPred: 5,
		Reports: []trace.Tuple{{Time: 1, Observer: 9, Pred: 3, Succ: 5}}}
	if _, err := a.Classify(mt); !errors.Is(err, adversary.ErrCorruptTrace) {
		t.Errorf("foreign agent err = %v", err)
	}
	// Cyclic route: same observer twice.
	mt = &trace.MessageTrace{ReceiverSeen: true, ReceiverPred: 5, Reports: []trace.Tuple{
		{Time: 1, Observer: 0, Pred: 3, Succ: 4},
		{Time: 2, Observer: 0, Pred: 4, Succ: 5},
	}}
	if _, err := a.Classify(mt); !errors.Is(err, adversary.ErrModelMismatch) {
		t.Errorf("cycle err = %v", err)
	}
	// Broken run linkage: succ says adjacent but pred disagrees.
	mt = &trace.MessageTrace{ReceiverSeen: true, ReceiverPred: 5, Reports: []trace.Tuple{
		{Time: 1, Observer: 0, Pred: 3, Succ: 1},
		{Time: 2, Observer: 1, Pred: 4, Succ: 5},
	}}
	if _, err := a.Classify(mt); !errors.Is(err, adversary.ErrCorruptTrace) {
		t.Errorf("broken linkage err = %v", err)
	}
}

// TestIdentifiedObservations: a compromised node that originates a message
// betrays itself — either the receiver's predecessor is a silent
// compromised node (direct send) or the first run's predecessor is one of
// the adversary's own nodes.
func TestIdentifiedObservations(t *testing.T) {
	a := analyst(t, 12, []trace.NodeID{0, 1}, uniform(t, 0, 6))
	// Direct send by compromised node 0: receiver reports pred 0, no
	// relay reports.
	mt := &trace.MessageTrace{ReceiverSeen: true, ReceiverPred: 0}
	obs, err := a.Classify(mt)
	if err != nil {
		t.Fatal(err)
	}
	if !obs.Identified || obs.Candidate != 0 {
		t.Errorf("direct compromised send: %+v", obs)
	}
	post, err := a.Posterior(mt)
	if err != nil {
		t.Fatal(err)
	}
	if post.P[0] != 1 || post.H != 0 || post.Alpha != 1 {
		t.Errorf("posterior = %+v", post)
	}
	// Compromised node 0 sends via compromised first hop 1: node 1's
	// report names 0 as predecessor, but 0 filed no relay report.
	mt2 := montecarlo.Synthesize(2, 0, []trace.NodeID{1, 7}, a.Compromised)
	obs2, err := a.Classify(mt2)
	if err != nil {
		t.Fatal(err)
	}
	if !obs2.Identified || obs2.Candidate != 0 {
		t.Errorf("compromised origin via compromised hop: %+v", obs2)
	}
	post2, err := a.Posterior(mt2)
	if err != nil {
		t.Fatal(err)
	}
	if post2.P[0] != 1 || post2.H != 0 {
		t.Errorf("posterior = %+v", post2)
	}
	// Honest traces must never be marked identified.
	mt3 := montecarlo.Synthesize(3, 5, []trace.NodeID{1, 7}, a.Compromised)
	obs3, err := a.Classify(mt3)
	if err != nil {
		t.Fatal(err)
	}
	if obs3.Identified {
		t.Errorf("honest trace marked identified: %+v", obs3)
	}
}

func TestPosteriorIsDistribution(t *testing.T) {
	a := analyst(t, 12, []trace.NodeID{0, 1, 2}, uniform(t, 0, 9))
	paths := [][]trace.NodeID{
		{7, 8}, nil, {7, 0}, {0, 7}, {0, 7, 8}, {7, 0, 1, 8},
		{0, 7, 1, 8}, {0, 7, 8, 1}, {6, 0, 7, 1, 2, 8, 9},
	}
	for _, path := range paths {
		post, err := a.Posterior(synth(5, path, 0, 1, 2))
		if err != nil {
			t.Fatalf("path %v: %v", path, err)
		}
		var sum float64
		for v, p := range post.P {
			if p < 0 || p > 1 {
				t.Errorf("path %v: P[%d] = %v", path, v, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("path %v: posterior sums to %v", path, sum)
		}
		// Compromised nodes can never carry posterior mass here.
		for _, c := range []int{0, 1, 2} {
			if post.P[c] != 0 {
				t.Errorf("path %v: compromised node %d has mass %v", path, c, post.P[c])
			}
		}
		if post.P[post.Candidate] != post.Alpha {
			t.Errorf("path %v: candidate mass %v ≠ alpha %v",
				path, post.P[post.Candidate], post.Alpha)
		}
	}
}

// TestPosteriorNeverExcludesTrueSender: the true sender must always carry
// positive posterior mass (soundness of the inference).
func TestPosteriorNeverExcludesTrueSender(t *testing.T) {
	a := analyst(t, 12, []trace.NodeID{0, 1, 2}, uniform(t, 0, 9))
	paths := [][]trace.NodeID{
		{7, 8}, {7, 0}, {0, 7}, {0, 7, 8}, {7, 0, 1, 8}, {6, 0, 7, 1, 2, 8, 9},
	}
	for _, path := range paths {
		post, err := a.Posterior(synth(5, path, 0, 1, 2))
		if err != nil {
			t.Fatal(err)
		}
		if post.P[5] <= 0 {
			t.Errorf("path %v: true sender has zero posterior", path)
		}
	}
}

// TestPosteriorCertainIdentification: with a length-1 fixed strategy, a
// compromised first intermediate identifies the sender with certainty.
func TestPosteriorCertainIdentification(t *testing.T) {
	f, err := dist.NewFixed(1)
	if err != nil {
		t.Fatal(err)
	}
	a := analyst(t, 12, []trace.NodeID{0}, f)
	post, err := a.Posterior(synth(5, []trace.NodeID{0}, 0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(post.P[5]-1) > 1e-12 || post.H > 1e-12 {
		t.Errorf("sender not identified: P[5]=%v H=%v", post.P[5], post.H)
	}
}

func TestAnalyzeAll(t *testing.T) {
	a := analyst(t, 12, []trace.NodeID{0, 1}, uniform(t, 0, 6))
	// Build tuple streams for three messages: two complete, one missing
	// its receiver report.
	var tuples []trace.Tuple
	mt1 := synth(5, []trace.NodeID{0, 7}, 0, 1)
	mt1.Msg = 1
	for i := range mt1.Reports {
		mt1.Reports[i].Msg = 1
	}
	tuples = append(tuples, mt1.Reports...)
	tuples = append(tuples, trace.Tuple{Time: 99, Observer: trace.Receiver, Msg: 1, Pred: mt1.ReceiverPred})

	mt2 := synth(6, []trace.NodeID{9, 1, 4}, 0, 1)
	for i := range mt2.Reports {
		mt2.Reports[i].Msg = 2
	}
	tuples = append(tuples, mt2.Reports...)
	tuples = append(tuples, trace.Tuple{Time: 120, Observer: trace.Receiver, Msg: 2, Pred: mt2.ReceiverPred})

	tuples = append(tuples, trace.Tuple{Time: 130, Observer: 0, Msg: 3, Pred: 8, Succ: 9}) // in flight

	posts, incomplete, err := a.AnalyzeAll(tuples)
	if err != nil {
		t.Fatal(err)
	}
	if len(posts) != 2 {
		t.Fatalf("%d posteriors", len(posts))
	}
	if len(incomplete) != 1 || incomplete[0] != 3 {
		t.Errorf("incomplete = %v", incomplete)
	}
	if p, ok := posts[1]; !ok || p.P[5] <= 0 {
		t.Errorf("message 1 posterior: %+v", p)
	}
	if p, ok := posts[2]; !ok || p.P[6] <= 0 {
		t.Errorf("message 2 posterior: %+v", p)
	}
	// Corrupt stream: report from a foreign agent must surface an error.
	bad := []trace.Tuple{
		{Time: 1, Observer: 7, Msg: 9, Pred: 3, Succ: 5},
		{Time: 2, Observer: trace.Receiver, Msg: 9, Pred: 5},
	}
	if _, _, err := a.AnalyzeAll(bad); !errors.Is(err, adversary.ErrCorruptTrace) {
		t.Errorf("corrupt stream err = %v", err)
	}
}

func TestCompromisedAndEngineAccessors(t *testing.T) {
	a := analyst(t, 12, []trace.NodeID{3, 4}, uniform(t, 0, 5))
	if !a.Compromised(3) || a.Compromised(5) {
		t.Error("Compromised accessor wrong")
	}
	if a.Engine() == nil || a.Engine().N() != 12 {
		t.Error("Engine accessor wrong")
	}
}
