package adversary_test

import (
	"math"
	"testing"

	"anonmix/internal/adversary"
	"anonmix/internal/dist"
	"anonmix/internal/events"
	"anonmix/internal/montecarlo"
	"anonmix/internal/pathsel"
	"anonmix/internal/stats"
	"anonmix/internal/trace"
)

// scratchFixture draws random traces for the equivalence tests: an
// analyst over n nodes with the given compromised set, plus a stream of
// synthesized message traces from random senders over random paths.
type scratchFixture struct {
	analyst *adversary.Analyst
	sampler *pathsel.Sampler
	rng     stats.Stream
	n       int
}

func newScratchFixture(t *testing.T, n int, compromised []trace.NodeID, seed int64) *scratchFixture {
	t.Helper()
	e, err := events.New(n, len(compromised))
	if err != nil {
		t.Fatal(err)
	}
	strat, err := pathsel.UniformLength(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	a, err := adversary.NewAnalyst(e, strat.Length, compromised)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := pathsel.NewSelector(n, strat)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sel.NewSampler()
	if err != nil {
		t.Fatal(err)
	}
	return &scratchFixture{analyst: a, sampler: sp, rng: stats.NewStream(seed, 0), n: n}
}

// nextTrace synthesizes one random honest-sender trace.
func (f *scratchFixture) nextTrace(t *testing.T, msg trace.MessageID) (*trace.MessageTrace, trace.NodeID) {
	t.Helper()
	sender := trace.NodeID(f.rng.Intn(f.n))
	for f.analyst.Compromised(sender) {
		sender = trace.NodeID(f.rng.Intn(f.n))
	}
	path, err := f.sampler.SelectPath(&f.rng, sender)
	if err != nil {
		t.Fatal(err)
	}
	return montecarlo.Synthesize(msg, sender, path, f.analyst.Compromised), sender
}

// TestClassifyScratchEquivalence: over hundreds of random traces the
// scratch classifier reproduces Classify field for field — class
// signature, candidate, witnessed set, identification flag.
func TestClassifyScratchEquivalence(t *testing.T) {
	f := newScratchFixture(t, 14, []trace.NodeID{0, 1, 5}, 31)
	var sc adversary.Scratch
	for i := 0; i < 500; i++ {
		mt, _ := f.nextTrace(t, trace.MessageID(i+1))
		want, err := f.analyst.Classify(mt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.analyst.ClassifyScratch(mt, &sc)
		if err != nil {
			t.Fatal(err)
		}
		if got.Class.String() != want.Class.String() {
			t.Fatalf("trace %d: class %q vs %q", i, got.Class, want.Class)
		}
		if got.Candidate != want.Candidate || got.Identified != want.Identified {
			t.Fatalf("trace %d: candidate/identified (%v,%v) vs (%v,%v)",
				i, got.Candidate, got.Identified, want.Candidate, want.Identified)
		}
		if len(got.Witnessed) != len(want.Witnessed) {
			t.Fatalf("trace %d: witnessed %v vs %v", i, got.Witnessed, want.Witnessed)
		}
		for _, w := range got.Witnessed {
			if !want.Witnessed[w] {
				t.Fatalf("trace %d: scratch witnessed %v, map did not", i, w)
			}
		}
	}
}

// TestEntropyScratchEquivalence: the scratch single-shot entropy matches
// Entropy exactly (both read the same memoized engine statistics).
func TestEntropyScratchEquivalence(t *testing.T) {
	f := newScratchFixture(t, 14, []trace.NodeID{0, 1, 5}, 32)
	var sc adversary.Scratch
	for i := 0; i < 300; i++ {
		mt, _ := f.nextTrace(t, trace.MessageID(i+1))
		want, err := f.analyst.Entropy(mt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.analyst.EntropyScratch(mt, &sc)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trace %d: entropy %v vs %v", i, got, want)
		}
	}
}

// TestObserveScratchEquivalence folds the same sessions through the
// classic Observe/Snapshot pair and the scratch fold, comparing every
// round's snapshot. The folds associate differently (vector multiply vs
// in-place add), so agreement is to tolerance, not bit-exact.
func TestObserveScratchEquivalence(t *testing.T) {
	f := newScratchFixture(t, 14, []trace.NodeID{0, 1, 5}, 33)
	accA, err := adversary.NewAccumulator(f.analyst)
	if err != nil {
		t.Fatal(err)
	}
	accB, err := adversary.NewAccumulator(f.analyst)
	if err != nil {
		t.Fatal(err)
	}
	var sc adversary.Scratch
	for session := 0; session < 30; session++ {
		accA.Reset()
		accB.Reset()
		for r := 0; r < 8; r++ {
			mt, _ := f.nextTrace(t, trace.MessageID(r+1))
			if err := accA.Observe(mt); err != nil {
				t.Fatal(err)
			}
			if err := accB.ObserveScratch(mt, &sc); err != nil {
				t.Fatal(err)
			}
			hA, topA, massA, errA := accA.Snapshot()
			hB, topB, massB, errB := accB.SnapshotFast()
			if errA != nil || errB != nil {
				t.Fatalf("session %d round %d: %v / %v", session, r, errA, errB)
			}
			if math.Abs(hA-hB) > 1e-9 || topA != topB || math.Abs(massA-massB) > 1e-9 {
				t.Fatalf("session %d round %d: (%v,%v,%v) vs (%v,%v,%v)",
					session, r, hA, topA, massA, hB, topB, massB)
			}
		}
	}
}

// TestAccumulatorResetEquivalence: a reset accumulator behaves like a
// fresh one — ErrNoObservations until the next fold, then identical
// snapshots.
func TestAccumulatorResetEquivalence(t *testing.T) {
	f := newScratchFixture(t, 12, []trace.NodeID{2, 7}, 34)
	acc, err := adversary.NewAccumulator(f.analyst)
	if err != nil {
		t.Fatal(err)
	}
	var sc adversary.Scratch
	mt, _ := f.nextTrace(t, 1)
	if err := acc.ObserveScratch(mt, &sc); err != nil {
		t.Fatal(err)
	}
	acc.Reset()
	if _, _, _, err := acc.SnapshotFast(); err == nil {
		t.Fatal("snapshot after reset did not report empty accumulator")
	}
	fresh, err := adversary.NewAccumulator(f.analyst)
	if err != nil {
		t.Fatal(err)
	}
	mt2, _ := f.nextTrace(t, 2)
	if err := acc.ObserveScratch(mt2, &sc); err != nil {
		t.Fatal(err)
	}
	if err := fresh.ObserveScratch(mt2, &sc); err != nil {
		t.Fatal(err)
	}
	hA, _, _, _ := acc.SnapshotFast()
	hB, _, _, _ := fresh.SnapshotFast()
	if hA != hB {
		t.Fatalf("reset accumulator diverged from fresh: %v vs %v", hA, hB)
	}
}

// TestFoldObservationEquivalence: folding a second analyst's view through
// FoldObservation matches the FoldPosterior(Posterior(mt).P) composition
// it replaces — the reliability layer's degraded-evidence path.
func TestFoldObservationEquivalence(t *testing.T) {
	const n = 14
	compromised := []trace.NodeID{0, 1, 5}
	f := newScratchFixture(t, n, compromised, 35)
	eU, err := events.New(n, len(compromised), events.WithUncompromisedReceiver())
	if err != nil {
		t.Fatal(err)
	}
	u, err := dist.NewUniform(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	analystU, err := adversary.NewAnalyst(eU, u, compromised)
	if err != nil {
		t.Fatal(err)
	}
	accA, err := adversary.NewAccumulator(f.analyst)
	if err != nil {
		t.Fatal(err)
	}
	accB, err := adversary.NewAccumulator(f.analyst)
	if err != nil {
		t.Fatal(err)
	}
	var sc adversary.Scratch
	for i := 0; i < 100; i++ {
		accA.Reset()
		accB.Reset()
		sender := trace.NodeID(f.rng.Intn(n))
		for f.analyst.Compromised(sender) {
			sender = trace.NodeID(f.rng.Intn(n))
		}
		path, err := f.sampler.SelectPath(&f.rng, sender)
		if err != nil {
			t.Fatal(err)
		}
		mt := montecarlo.Synthesize(1, sender, path, f.analyst.Compromised)
		if err := accA.Observe(mt); err != nil {
			t.Fatal(err)
		}
		if err := accB.ObserveScratch(mt, &sc); err != nil {
			t.Fatal(err)
		}
		// A failed attempt that reached part-way down the same path.
		upto := 1 + f.rng.Intn(len(path))
		pmt := montecarlo.SynthesizePartial(1, sender, path, upto, f.analyst.Compromised)
		post, errP := analystU.Posterior(pmt)
		errF := accB.FoldObservation(analystU, pmt, &sc)
		if errP != nil {
			// The classic path skips unclassifiable partials; the scratch
			// fold must refuse them too and leave the accumulator usable.
			if errF == nil {
				t.Fatalf("case %d: Posterior failed (%v) but FoldObservation accepted", i, errP)
			}
		} else {
			if err := accA.FoldPosterior(post.P); err != nil {
				t.Fatal(err)
			}
			if errF != nil {
				t.Fatalf("case %d: FoldObservation failed: %v", i, errF)
			}
		}
		hA, topA, _, errA := accA.Snapshot()
		hB, topB, _, errB := accB.SnapshotFast()
		if (errA == nil) != (errB == nil) {
			t.Fatalf("case %d: snapshot errors %v vs %v", i, errA, errB)
		}
		if errA == nil && (math.Abs(hA-hB) > 1e-9 || topA != topB) {
			t.Fatalf("case %d: (%v,%v) vs (%v,%v)", i, hA, topA, hB, topB)
		}
	}
}

// TestPhasedObserveScratchEquivalence: the phased scratch fold matches
// Observe/Snapshot across a two-phase live mapping with churn.
func TestPhasedObserveScratchEquivalence(t *testing.T) {
	const total = 16
	phases := []struct {
		n           int
		compromised []trace.NodeID
		live        []trace.NodeID
	}{
		{12, []trace.NodeID{0, 1}, []trace.NodeID{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}},
		{12, []trace.NodeID{0, 1, 2}, []trace.NodeID{0, 1, 2, 3, 4, 5, 6, 7, 12, 13, 14, 15}},
	}
	paA, err := adversary.NewPhasedAccumulator(total)
	if err != nil {
		t.Fatal(err)
	}
	paB, err := adversary.NewPhasedAccumulator(total)
	if err != nil {
		t.Fatal(err)
	}
	var sc adversary.Scratch
	rng := stats.NewStream(36, 0)
	for _, ph := range phases {
		f := newScratchFixture(t, ph.n, ph.compromised, 37)
		f.rng = stats.NewStream(int64(rng.Intn(1<<30)), 0)
		for r := 0; r < 6; r++ {
			mt, _ := f.nextTrace(t, trace.MessageID(r+1))
			if err := paA.Observe(f.analyst, mt, ph.live); err != nil {
				t.Fatal(err)
			}
			if err := paB.ObserveScratch(f.analyst, mt, ph.live, &sc); err != nil {
				t.Fatal(err)
			}
			hA, topA, massA, errA := paA.Snapshot()
			hB, topB, massB, errB := paB.SnapshotFast()
			if errA != nil || errB != nil {
				t.Fatalf("round %d: %v / %v", r, errA, errB)
			}
			if math.Abs(hA-hB) > 1e-9 || topA != topB || math.Abs(massA-massB) > 1e-9 {
				t.Fatalf("round %d: (%v,%v,%v) vs (%v,%v,%v)",
					r, hA, topA, massA, hB, topB, massB)
			}
		}
	}
	paB.Reset()
	if _, _, _, err := paB.SnapshotFast(); err == nil {
		t.Fatal("phased snapshot after reset did not report empty accumulator")
	}
}

// TestScratchZeroAllocSteadyState is the per-message allocation budget at
// the adversary layer: once the engine's class-statistics cache is warm,
// classify + fold + snapshot allocates nothing.
func TestScratchZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation inflates allocation counts")
	}
	f := newScratchFixture(t, 14, []trace.NodeID{0, 1, 5}, 38)
	acc, err := adversary.NewAccumulator(f.analyst)
	if err != nil {
		t.Fatal(err)
	}
	var sc adversary.Scratch
	// Warm the engine's memoized class statistics over the trace mix.
	traces := make([]*trace.MessageTrace, 64)
	for i := range traces {
		traces[i], _ = f.nextTrace(t, trace.MessageID(i+1))
		if _, err := f.analyst.EntropyScratch(traces[i], &sc); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		mt := traces[i%len(traces)]
		i++
		if _, err := f.analyst.EntropyScratch(mt, &sc); err != nil {
			t.Fatal(err)
		}
		acc.Reset()
		if err := acc.ObserveScratch(mt, &sc); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := acc.SnapshotFast(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state analysis allocates %v per message, want 0", allocs)
	}
}
