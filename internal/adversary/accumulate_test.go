package adversary_test

import (
	"errors"
	"math"
	"testing"

	"anonmix/internal/adversary"
	"anonmix/internal/dist"
	"anonmix/internal/events"
	"anonmix/internal/montecarlo"
	"anonmix/internal/pathsel"
	"anonmix/internal/stats"
	"anonmix/internal/trace"
)

func accumAnalyst(t *testing.T, n int, compromised []trace.NodeID, d dist.Length) *adversary.Analyst {
	t.Helper()
	e, err := events.New(n, len(compromised))
	if err != nil {
		t.Fatal(err)
	}
	a, err := adversary.NewAnalyst(e, d, compromised)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAccumulatorEmpty(t *testing.T) {
	if _, err := adversary.NewAccumulator(nil); !errors.Is(err, adversary.ErrBadConfig) {
		t.Errorf("nil analyst err = %v", err)
	}
	u, err := dist.NewUniform(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := adversary.NewAccumulator(accumAnalyst(t, 10, []trace.NodeID{0}, u))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := acc.Posterior(); !errors.Is(err, adversary.ErrNoObservations) {
		t.Errorf("empty posterior err = %v", err)
	}
	if _, _, _, err := acc.Snapshot(); !errors.Is(err, adversary.ErrNoObservations) {
		t.Errorf("empty snapshot err = %v", err)
	}
}

// TestSnapshotMatchesEntropyAndTop: Snapshot is the fused fast path of
// Entropy + Top and must return exactly their values.
func TestSnapshotMatchesEntropyAndTop(t *testing.T) {
	const n = 12
	compromised := []trace.NodeID{1, 5}
	u, err := dist.NewUniform(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	a := accumAnalyst(t, n, compromised, u)
	acc, err := adversary.NewAccumulator(a)
	if err != nil {
		t.Fatal(err)
	}
	strat := pathsel.Strategy{Name: "u", Length: u, Kind: pathsel.Simple}
	sel, err := pathsel.NewSelector(n, strat)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(9)
	sender := trace.NodeID(7)
	for r := 0; r < 25; r++ {
		path, err := sel.SelectPath(rng, sender)
		if err != nil {
			t.Fatal(err)
		}
		mt := montecarlo.Synthesize(trace.MessageID(r+1), sender, path, a.Compromised)
		if err := acc.Observe(mt); err != nil {
			t.Fatal(err)
		}
		h, top, mass, err := acc.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		wantH, err := acc.Entropy()
		if err != nil {
			t.Fatal(err)
		}
		wantTop, wantMass, err := acc.Top()
		if err != nil {
			t.Fatal(err)
		}
		if h != wantH || top != wantTop || mass != wantMass {
			t.Fatalf("round %d: snapshot (%v, %v, %v) != (%v, %v, %v)",
				r+1, h, top, mass, wantH, wantTop, wantMass)
		}
		if math.IsNaN(h) || h < 0 {
			t.Fatalf("round %d: bad entropy %v", r+1, h)
		}
	}
	if acc.Rounds() != 25 {
		t.Errorf("rounds = %d", acc.Rounds())
	}
}

// TestFoldPosterior: folding a uniform posterior leaves the accumulated
// entropy unchanged (uninformative evidence), folding a delta identifies
// the sender, and a posterior over the wrong population is rejected.
func TestFoldPosterior(t *testing.T) {
	const n = 10
	u, err := dist.NewUniform(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := accumAnalyst(t, n, []trace.NodeID{2}, u)
	acc, err := adversary.NewAccumulator(a)
	if err != nil {
		t.Fatal(err)
	}
	strat := pathsel.Strategy{Name: "u", Length: u, Kind: pathsel.Simple}
	sel, err := pathsel.NewSelector(n, strat)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(3)
	sender := trace.NodeID(6)
	path, err := sel.SelectPath(rng, sender)
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Observe(montecarlo.Synthesize(1, sender, path, a.Compromised)); err != nil {
		t.Fatal(err)
	}
	h0, err := acc.Entropy()
	if err != nil {
		t.Fatal(err)
	}

	uniform := make([]float64, n)
	for i := range uniform {
		uniform[i] = 1.0 / n
	}
	if err := acc.FoldPosterior(uniform); err != nil {
		t.Fatal(err)
	}
	h1, err := acc.Entropy()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h1-h0) > 1e-12 {
		t.Errorf("uniform fold moved entropy: %v -> %v", h0, h1)
	}
	if acc.Rounds() != 2 {
		t.Errorf("rounds = %d after one observation and one fold", acc.Rounds())
	}

	delta := make([]float64, n)
	delta[sender] = 1
	if err := acc.FoldPosterior(delta); err != nil {
		t.Fatal(err)
	}
	h2, err := acc.Entropy()
	if err != nil {
		t.Fatal(err)
	}
	if h2 != 0 {
		t.Errorf("delta fold entropy = %v, want 0", h2)
	}

	if err := acc.FoldPosterior(make([]float64, n+1)); !errors.Is(err, adversary.ErrBadConfig) {
		t.Errorf("mismatched fold err = %v, want ErrBadConfig", err)
	}
}
