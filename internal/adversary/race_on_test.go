//go:build race

package adversary_test

// raceEnabled reports whether the race detector instruments this build;
// allocation budgets are meaningless under its shadow-memory overhead.
const raceEnabled = true
