// Package adversary implements the passive global adversary of the paper's
// threat model (§4). It consumes the tuple reports collected from
// compromised nodes (package trace), reconstructs the observable structure
// of each message's rerouting path — runs of adjacent compromised nodes,
// one-node junctions, and the tail gap to the receiver — and applies the
// exact Bayesian engine (package events) to produce the posterior
// probability that each node is the true sender (the paper's Formula 3).
package adversary

import (
	"errors"
	"fmt"
	"sort"

	"anonmix/internal/dist"
	"anonmix/internal/entropy"
	"anonmix/internal/events"
	"anonmix/internal/trace"
)

// Errors returned by the analyst.
var (
	// ErrBadConfig reports an inconsistent analyst configuration.
	ErrBadConfig = errors.New("adversary: invalid configuration")
	// ErrCorruptTrace reports tuple sequences that no simple rerouting
	// path can produce (e.g. a gap in the middle of what should be a run).
	ErrCorruptTrace = errors.New("adversary: inconsistent message trace")
	// ErrModelMismatch reports an observation outside the simple-path
	// model, e.g. a node observed twice because the route had cycles.
	ErrModelMismatch = errors.New("adversary: observation outside the simple-path model")
)

// Analyst turns collected traces into sender posteriors. It owns the static
// (off-line) information of §4: the system size, the identities of the
// compromised nodes, and the path-length distribution of the strategy in
// use.
type Analyst struct {
	engine      *events.Engine
	length      dist.Length
	compromised map[trace.NodeID]bool
}

// NewAnalyst returns an analyst for the given exact engine, strategy
// length distribution, and compromised node set. The compromised set size
// must match the engine's C.
func NewAnalyst(e *events.Engine, d dist.Length, compromised []trace.NodeID) (*Analyst, error) {
	if e == nil {
		return nil, fmt.Errorf("%w: nil engine", ErrBadConfig)
	}
	if e.Mode() != events.InferenceStandard {
		// Classify reconstructs the standard flag-based classes; pairing
		// it with a stronger-inference engine would understate what that
		// adversary knows.
		return nil, fmt.Errorf("%w: analyst requires the standard inference mode, engine uses %v",
			ErrBadConfig, e.Mode())
	}
	if d == nil {
		return nil, fmt.Errorf("%w: nil length distribution", ErrBadConfig)
	}
	if len(compromised) != e.C() {
		return nil, fmt.Errorf("%w: %d compromised nodes, engine expects %d",
			ErrBadConfig, len(compromised), e.C())
	}
	set := make(map[trace.NodeID]bool, len(compromised))
	for _, id := range compromised {
		if int(id) < 0 || int(id) >= e.N() {
			return nil, fmt.Errorf("%w: compromised node %v outside system", ErrBadConfig, id)
		}
		if set[id] {
			return nil, fmt.Errorf("%w: duplicate compromised node %v", ErrBadConfig, id)
		}
		set[id] = true
	}
	return &Analyst{engine: e, length: d, compromised: set}, nil
}

// Observation is the adversary's reconstructed view of one message.
type Observation struct {
	// Class is the structural signature fed to the Bayesian engine.
	Class events.Class
	// Candidate is the node carrying the posterior spike: the predecessor
	// of the first observed run, or the receiver's predecessor when no
	// compromised node was on the path.
	Candidate trace.NodeID
	// Witnessed is the set of uncompromised nodes whose identities the
	// adversary observed (junction and tail witnesses, the receiver's
	// predecessor) — excluded from the slab, except the Candidate itself.
	Witnessed map[trace.NodeID]bool
	// Identified marks outright deanonymization: the first observed
	// predecessor is one of the adversary's own nodes that filed no relay
	// report for this message, so it must be the originator (on a simple
	// path a compromised *relay* would have reported). This is how the
	// paper's local-eavesdropper case surfaces in the trace stream.
	Identified bool
}

// Classify reconstructs the observable class of a message trace. With a
// compromised receiver (the paper's default) traces missing the receiver
// report are rejected; with an uncompromised-receiver engine the receiver
// fields of the trace are ignored — the adversary does not have them — and
// the tail is classified from run-successor adjacency alone
// (events.TailUnobserved).
func (a *Analyst) Classify(mt *trace.MessageTrace) (Observation, error) {
	if mt == nil {
		return Observation{}, fmt.Errorf("%w: nil trace", ErrCorruptTrace)
	}
	receiver := a.engine.ReceiverCompromised()
	if receiver && !mt.ReceiverSeen {
		return Observation{}, trace.ErrNoReceiverReport
	}
	obs := Observation{Witnessed: make(map[trace.NodeID]bool)}
	if len(mt.Reports) == 0 {
		if !receiver {
			// No compromised node on the path and no receiver report: the
			// adversary observes nothing. The posterior is uniform over
			// the uncompromised nodes (the empty class of the
			// uncompromised-receiver engine); there is no candidate.
			obs.Candidate = trace.Receiver
			return obs, nil
		}
		obs.Candidate = mt.ReceiverPred
		obs.Witnessed[mt.ReceiverPred] = true
		if a.compromised[mt.ReceiverPred] {
			// A compromised relay would have reported; a silent
			// compromised predecessor must be the sender (direct send by
			// one of the adversary's own nodes).
			obs.Identified = true
		}
		return obs, nil
	}

	seen := make(map[trace.NodeID]bool, len(mt.Reports))
	var runs []int
	var gaps []events.GapFlag
	for i, r := range mt.Reports {
		if !a.compromised[r.Observer] {
			return Observation{}, fmt.Errorf("%w: report from unknown agent %v", ErrCorruptTrace, r.Observer)
		}
		if seen[r.Observer] {
			return Observation{}, fmt.Errorf("%w: node %v observed twice (cyclic route?)", ErrModelMismatch, r.Observer)
		}
		seen[r.Observer] = true
		if i == 0 {
			obs.Candidate = r.Pred
			runs = append(runs, 1)
			continue
		}
		prev := mt.Reports[i-1]
		switch {
		case prev.Succ == r.Observer:
			// Adjacent compromised nodes: the run continues. Cross-check
			// the complementary pointer.
			if r.Pred != prev.Observer {
				return Observation{}, fmt.Errorf("%w: run linkage broken between %v and %v",
					ErrCorruptTrace, prev.Observer, r.Observer)
			}
			runs[len(runs)-1]++
		case prev.Succ == r.Pred:
			// One uncompromised witness bridges the runs.
			runs = append(runs, 1)
			gaps = append(gaps, events.GapOne)
			obs.Witnessed[r.Pred] = true
		default:
			// At least two hidden nodes: both endpoints witnessed.
			runs = append(runs, 1)
			gaps = append(gaps, events.GapWide)
			obs.Witnessed[prev.Succ] = true
			obs.Witnessed[r.Pred] = true
		}
	}
	last := mt.Reports[len(mt.Reports)-1]
	var tail events.TailFlag
	switch {
	case last.Succ == trace.Receiver:
		tail = events.TailZero
	case !receiver:
		// Without the receiver's report only "last run forwarded straight
		// to the receiver" (TailZero above) is distinguishable; any other
		// tail collapses into TailUnobserved, with the run's successor as
		// its single witnessed identity.
		tail = events.TailUnobserved
		obs.Witnessed[last.Succ] = true
	case last.Succ == mt.ReceiverPred:
		tail = events.TailOne
		obs.Witnessed[last.Succ] = true
	default:
		tail = events.TailWide
		obs.Witnessed[last.Succ] = true
		obs.Witnessed[mt.ReceiverPred] = true
	}
	obs.Witnessed[obs.Candidate] = true
	obs.Class = events.Class{Runs: runs, Gaps: gaps, Tail: tail}
	if a.compromised[obs.Candidate] {
		// The predecessor of the first run is one of the adversary's own
		// nodes yet it filed no relay report for this message: it must be
		// the originator (local-eavesdropper case).
		obs.Identified = true
	}
	return obs, nil
}

// Posterior is the adversary's belief about the sender of one message.
type Posterior struct {
	// P maps each node (by index) to its posterior sender probability —
	// the paper's P(a0 = i | E = e).
	P []float64
	// H is the Shannon entropy of P in bits (Formula 4).
	H float64
	// Alpha is the spike mass on Candidate.
	Alpha float64
	// Candidate is the spike carrier.
	Candidate trace.NodeID
	// Class is the structural signature used for inference.
	Class events.Class
}

// Posterior runs the full inference pipeline for one message trace.
func (a *Analyst) Posterior(mt *trace.MessageTrace) (Posterior, error) {
	obs, err := a.Classify(mt)
	if err != nil {
		return Posterior{}, err
	}
	n := a.engine.N()
	if obs.Identified {
		post := Posterior{
			P:         make([]float64, n),
			Alpha:     1,
			Candidate: obs.Candidate,
			Class:     obs.Class,
		}
		post.P[obs.Candidate] = 1
		return post, nil
	}
	st, err := a.engine.StatsFor(obs.Class, a.length)
	if err != nil {
		return Posterior{}, err
	}
	// Slab candidates: nodes that are neither compromised, nor witnessed,
	// nor the spike candidate.
	var slab []trace.NodeID
	for v := 0; v < n; v++ {
		id := trace.NodeID(v)
		if a.compromised[id] || obs.Witnessed[id] || id == obs.Candidate {
			continue
		}
		slab = append(slab, id)
	}
	if len(slab) != st.Rest {
		return Posterior{}, fmt.Errorf("%w: %d slab candidates reconstructed, engine expects %d",
			ErrCorruptTrace, len(slab), st.Rest)
	}
	post := Posterior{
		P:         make([]float64, n),
		Alpha:     st.Alpha,
		Candidate: obs.Candidate,
		Class:     obs.Class,
	}
	if int(obs.Candidate) >= 0 && int(obs.Candidate) < n {
		post.P[obs.Candidate] = st.Alpha
	}
	if len(slab) > 0 {
		share := (1 - st.Alpha) / float64(len(slab))
		for _, id := range slab {
			post.P[id] = share
		}
	}
	post.H = entropy.Bits(post.P)
	return post, nil
}

// Entropy returns the posterior entropy (bits) of one message trace
// without materializing the N-entry posterior vector: it classifies the
// trace, looks up the class statistics, and cross-checks the slab count
// arithmetically. Cost is O(reports) rather than O(N), which is what makes
// adversarial analysis of million-node testbed runs affordable. The value
// equals Posterior(mt).H up to floating-point association order.
func (a *Analyst) Entropy(mt *trace.MessageTrace) (float64, error) {
	obs, err := a.Classify(mt)
	if err != nil {
		return 0, err
	}
	if obs.Identified {
		return 0, nil
	}
	st, err := a.engine.StatsFor(obs.Class, a.length)
	if err != nil {
		return 0, err
	}
	// Witnessed holds the observed identities (the candidate included),
	// which together with the compromised set are exactly the nodes
	// Posterior excludes from the slab — so the expected slab size follows
	// by counting. A partial trace's lost-link target can itself be
	// compromised, so only honest witnesses shrink the slab further.
	w := 0
	for id := range obs.Witnessed {
		if !a.compromised[id] {
			w++
		}
	}
	if rest := a.engine.N() - a.engine.C() - w; rest != st.Rest {
		return 0, fmt.Errorf("%w: %d slab candidates reconstructed, engine expects %d",
			ErrCorruptTrace, rest, st.Rest)
	}
	return st.H, nil
}

// AnalyzeAll collates a raw tuple stream (as collected from a live network
// or the testbed) and returns the sender posterior for every message whose
// trace is complete. Messages without a receiver report (still in flight,
// or dropped) are skipped and listed in the second return value.
func (a *Analyst) AnalyzeAll(tuples []trace.Tuple) (map[trace.MessageID]Posterior, []trace.MessageID, error) {
	// Analyze in message-ID order: the incomplete list's order and which
	// corrupt trace surfaces its error first must not depend on map
	// iteration order.
	collated := trace.Collate(tuples)
	ids := make([]trace.MessageID, 0, len(collated))
	for id := range collated {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make(map[trace.MessageID]Posterior)
	var incomplete []trace.MessageID
	for _, id := range ids {
		mt := collated[id]
		if !mt.ReceiverSeen {
			incomplete = append(incomplete, id)
			continue
		}
		post, err := a.Posterior(mt)
		if err != nil {
			return nil, nil, fmt.Errorf("adversary: message %d: %w", id, err)
		}
		out[id] = post
	}
	return out, incomplete, nil
}

// Compromised reports whether the analyst controls the given node.
func (a *Analyst) Compromised(id trace.NodeID) bool { return a.compromised[id] }

// Engine exposes the underlying exact engine (read-only use).
func (a *Analyst) Engine() *events.Engine { return a.engine }
