package errcontract_test

import (
	"testing"

	"anonmix/internal/analysis/analysistest"
	"anonmix/internal/analysis/errcontract"
)

func TestErrcontract(t *testing.T) {
	analysistest.Run(t, "testdata/src", errcontract.Analyzer, "errcontract")
}
