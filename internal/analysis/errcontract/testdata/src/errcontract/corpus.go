// Package corpus exercises the errcontract analyzer: error identities
// created inside Validate/normalize/Parse* functions must stay
// errors.Is-matchable against a package sentinel.
package corpus

import (
	"errors"
	"fmt"
)

// Package-level sentinel declarations are exactly how sentinels are
// born; they are exempt even though errors.New appears.
var ErrBadThing = errors.New("corpus: bad thing")

type Thing struct {
	N int
}

func (t *Thing) Validate() error {
	if t.N < 0 {
		return errors.New("negative n") // want `errors.New inside Validate creates an unmatchable error identity`
	}
	if t.N > 100 {
		return fmt.Errorf("n too large: %d", t.N) // want `fmt.Errorf without %w inside Validate drops the sentinel identity`
	}
	if t.N == 13 {
		return fmt.Errorf("%w: unlucky n %d", ErrBadThing, t.N)
	}
	return nil
}

func normalizeThing(t *Thing) error {
	if t == nil {
		return fmt.Errorf("%w: nil thing", ErrBadThing)
	}
	if t.N%2 == 1 {
		return errors.Join(ErrBadThing, fmt.Errorf("%w: odd n", ErrBadThing))
	}
	return ErrBadThing
}

func ParseThing(s string) (*Thing, error) {
	if s == "" {
		return nil, fmt.Errorf("empty input") // want `fmt.Errorf without %w inside ParseThing`
	}
	if s == "?" {
		return nil, errors.New("unparseable") // want `errors.New inside ParseThing`
	}
	return &Thing{N: len(s)}, nil
}

// Functions outside the contract may mint ad-hoc errors freely.
func Load(s string) error {
	if s == "" {
		return errors.New("load failed")
	}
	return fmt.Errorf("no loader for %q", s)
}

func validateAllowed(t *Thing) error {
	if t.N == 7 {
		return errors.New("deliberate one-off") //anonlint:allow errcontract(corpus: this path is unreachable from normalize)
	}
	return nil
}
