// Package errcontract implements the anonlint analyzer that pins the
// configuration-error contract: every error produced inside a
// Validate/normalize/Parse* function must stay errors.Is-matchable
// against a package sentinel (scenario.ErrBadConfig, the capability
// sentinels, dist.ErrInvalid, ...). The differential harness asserts
// that all backends reject a bad Config with the *same* sentinel, and
// the fuzz targets assert that nothing but ErrBadConfig or a capability
// error ever escapes normalize — one ad-hoc errors.New in a validation
// path breaks both.
//
// Concretely, inside any function whose name matches Validate/validate*,
// normalize*/Normalize*, or Parse*/parse*, the analyzer flags:
//
//   - errors.New(...): a fresh, unmatchable error identity. Wrap a
//     sentinel instead: fmt.Errorf("%w: ...", ErrBadConfig, ...).
//     (Package-level sentinel *declarations* are exempt: `var ErrX =
//     errors.New(...)` is how sentinels are born.)
//
//   - fmt.Errorf with a constant format string that contains no %w verb:
//     the arguments' error identities are flattened into text.
//
// Returning a sentinel directly, propagating an err value, errors.Join,
// and %w-wrapping are all accepted.
package errcontract

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"anonmix/internal/analysis/anonlint"
)

// Analyzer is the errcontract check.
var Analyzer = &anonlint.Analyzer{
	Name: "errcontract",
	Doc:  "Validate/normalize/Parse* errors must wrap a shared sentinel (%w) so errors.Is keeps working",
	Run:  run,
}

// matchedFunc reports whether a function name is part of the
// configuration-error contract.
func matchedFunc(name string) bool {
	switch {
	case name == "Validate" || name == "validate":
		return true
	case strings.HasPrefix(name, "Validate") || strings.HasPrefix(name, "validate"):
		return true
	case strings.HasPrefix(name, "normalize") || strings.HasPrefix(name, "Normalize"):
		return true
	case strings.HasPrefix(name, "Parse") || strings.HasPrefix(name, "parse"):
		return true
	}
	return false
}

func run(pass *anonlint.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !matchedFunc(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := callee(pass, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				switch {
				case fn.Pkg().Path() == "errors" && fn.Name() == "New":
					pass.Reportf(call.Pos(),
						"errors.New inside %s creates an unmatchable error identity: wrap a package sentinel with fmt.Errorf(\"%%w: ...\", ...) instead",
						fd.Name.Name)
				case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
					if format, ok := constString(pass, call.Args); ok && !strings.Contains(format, "%w") {
						pass.Reportf(call.Pos(),
							"fmt.Errorf without %%w inside %s drops the sentinel identity the differential harness matches with errors.Is",
							fd.Name.Name)
					}
				}
				return true
			})
		}
	}
	return nil
}

// constString returns the constant value of the call's first argument
// when it is an untyped or string constant.
func constString(pass *anonlint.Pass, args []ast.Expr) (string, bool) {
	if len(args) == 0 {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func callee(pass *anonlint.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
