package allow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"anonmix/internal/analysis/allow"
)

func TestParse(t *testing.T) {
	cases := []struct {
		text        string
		analyzer    string
		reason      string
		ok          bool
		isDirective bool
	}{
		{"//anonlint:allow detrand(timing probe)", "detrand", "timing probe", true, true},
		{"//anonlint:allow seedpurity( padded reason )", "seedpurity", "padded reason", true, true},
		{"//anonlint:allow floatcmp(nested (parens) survive)", "floatcmp", "nested (parens) survive", true, true},
		// Not directives at all.
		{"// ordinary prose", "", "", false, false},
		{"//nolint:gosec", "", "", false, false},
		{"", "", "", false, false},
		// Malformed directives: recognized, never honored.
		{"// anonlint:allow detrand(x)", "", "", false, true}, // spaced
		{"//anonlint:allowed detrand(x)", "", "", false, true},
		{"//anonlint:deny detrand(x)", "", "", false, true},
		{"//anonlint:allow detrand", "", "", false, true},   // no parens
		{"//anonlint:allow detrand()", "", "", false, true}, // empty reason
		{"//anonlint:allow (reason)", "", "", false, true},  // no analyzer
		{"//anonlint:allow DetRand(x)", "", "", false, true},
		{"//anonlint:allow detrand(x", "", "", false, true}, // unclosed
	}
	for _, c := range cases {
		analyzer, reason, ok, isDirective, detail := allow.Parse(c.text)
		if analyzer != c.analyzer || reason != c.reason || ok != c.ok || isDirective != c.isDirective {
			t.Errorf("Parse(%q) = (%q, %q, %v, %v), want (%q, %q, %v, %v)",
				c.text, analyzer, reason, ok, isDirective, c.analyzer, c.reason, c.ok, c.isDirective)
		}
		if isDirective && !ok && detail == "" {
			t.Errorf("Parse(%q): malformed directive must carry a detail", c.text)
		}
	}
}

// TestCollectCoverage pins the suppression span: an annotation covers its
// own line and the next one, for the named analyzer only, and malformed
// directives are collected without suppressing anything.
func TestCollectCoverage(t *testing.T) {
	const src = `package p

func f() {
	_ = 1 //anonlint:allow detrand(same line)
	_ = 2
	_ = 3
	//anonlint:allow floatcmp(next line)
	_ = 4
	//anonlint:allow bogus
	_ = 5
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	set := allow.Collect(fset, []*ast.File{f})

	pos := func(line int) token.Pos {
		return fset.File(f.Pos()).LineStart(line)
	}
	checks := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{4, "detrand", true},  // annotation's own line
		{5, "detrand", true},  // line below
		{6, "detrand", false}, // two below: out of range
		{4, "floatcmp", false},
		{7, "floatcmp", true},
		{8, "floatcmp", true},
		{8, "detrand", false},
		{10, "bogus", false}, // malformed: suppresses nothing
	}
	for _, c := range checks {
		if got := set.Allows(pos(c.line), c.analyzer); got != c.want {
			t.Errorf("Allows(line %d, %q) = %v, want %v", c.line, c.analyzer, got, c.want)
		}
	}
	mal := set.Malformed()
	if len(mal) != 1 {
		t.Fatalf("Malformed() returned %d entries, want 1", len(mal))
	}
	if got := fset.Position(mal[0].Pos).Line; got != 9 {
		t.Errorf("malformed directive reported at line %d, want 9", got)
	}
	if mal[0].Detail == "" {
		t.Error("malformed directive has empty detail")
	}
}

func TestNilSet(t *testing.T) {
	var s *allow.Set
	if s.Allows(token.NoPos, "detrand") {
		t.Error("nil set must not allow anything")
	}
	if s.Malformed() != nil {
		t.Error("nil set must have no malformed entries")
	}
}
