package allow_test

import (
	"strings"
	"testing"

	"anonmix/internal/analysis/allow"
)

// FuzzParseAllow feeds arbitrary comment text to the annotation parser.
// The contract under fuzz: Parse never panics, a malformed directive
// degrades to "no suppression" (ok=false) rather than silently
// suppressing, and every accepted annotation has a well-formed analyzer
// name and a non-empty reason.
func FuzzParseAllow(f *testing.F) {
	seeds := []string{
		"//anonlint:allow detrand(wall-clock metrics only)",
		"//anonlint:allow seedpurity(fixed demo seed)",
		"//anonlint:allow detrand()",
		"//anonlint:allow detrand",
		"//anonlint:allow (no name)",
		"//anonlint:allow detrand(unclosed",
		"//anonlint:allowed detrand(typo verb)",
		"// anonlint:allow detrand(spaced)",
		"//anonlint:",
		"//anonlint:allow",
		"//anonlint:allow \x00\xff(\n)",
		"//go:generate echo hi",
		"plain text, not even a comment",
		"//anonlint:allow detrand((nested))",
		"//anonlint:allow detrand(a)extra",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		analyzer, reason, ok, isDirective, detail := allow.Parse(text)
		if ok {
			if !isDirective {
				t.Fatalf("Parse(%q): ok without isDirective", text)
			}
			if analyzer == "" {
				t.Fatalf("Parse(%q): accepted with empty analyzer", text)
			}
			for i := 0; i < len(analyzer); i++ {
				c := analyzer[i]
				if (c < 'a' || c > 'z') && (c < '0' || c > '9') {
					t.Fatalf("Parse(%q): accepted analyzer %q with invalid byte %q", text, analyzer, c)
				}
			}
			if strings.TrimSpace(reason) == "" {
				t.Fatalf("Parse(%q): accepted with empty reason", text)
			}
		} else {
			if analyzer != "" || reason != "" {
				t.Fatalf("Parse(%q): rejected but returned analyzer=%q reason=%q", text, analyzer, reason)
			}
			if isDirective && detail == "" {
				t.Fatalf("Parse(%q): malformed directive without detail", text)
			}
		}
	})
}
