// Package allow implements the anonlint suppression syntax: a comment of
// the form
//
//	//anonlint:allow <analyzer>(<reason>)
//
// suppresses diagnostics of the named analyzer on the annotated line and
// on the line immediately below it (so both end-of-line annotations and
// standalone annotations above the offending statement work). The reason
// is mandatory and non-empty by construction, which keeps every
// suppression in the tree grepable and justified:
//
//	grep -rn 'anonlint:allow' --include='*.go'
//
// Malformed annotations — any comment starting with "anonlint:" that does
// not parse as a well-formed allow with a non-empty reason — never
// suppress anything. They are collected and reported as diagnostics by
// the anonlint runner, so a typo surfaces as a lint failure instead of
// silently disabling (or failing to disable) a check.
package allow

import (
	"go/ast"
	"go/token"
	"strings"
)

// Prefix is the comment prefix that marks an anonlint control comment.
// Like //go: directives there is no space after //.
const Prefix = "anonlint:"

// Suppression is one parsed allow annotation.
type Suppression struct {
	// Analyzer is the analyzer name the annotation suppresses.
	Analyzer string
	// Reason is the justification inside the parentheses (non-empty).
	Reason string
	// Pos is the position of the annotation comment.
	Pos token.Pos
}

// Malformed is a comment that claims the anonlint: prefix but does not
// parse as a valid suppression. It suppresses nothing.
type Malformed struct {
	// Pos is the position of the broken comment.
	Pos token.Pos
	// Text is the raw comment text (including the // marker).
	Text string
	// Detail says what is wrong with it.
	Detail string
}

// Parse parses a single comment's text (with or without the leading //).
// It returns the analyzer name and reason when the comment is a
// well-formed allow annotation. isDirective reports whether the comment
// claims the anonlint: prefix at all — when isDirective is true and ok is
// false the comment is malformed and must be reported, never honored.
// detail explains the malformation. Parse never panics, whatever the
// input: a malformed directive degrades to "no suppression".
func Parse(text string) (analyzer, reason string, ok, isDirective bool, detail string) {
	body := strings.TrimPrefix(text, "//")
	// A directive-style comment has no space between // and the prefix;
	// tolerate (but still recognize and flag) the spaced variant so
	// "// anonlint:allow ..." is reported as malformed rather than
	// silently ignored as prose.
	spaced := false
	if trimmed := strings.TrimLeft(body, " \t"); trimmed != body {
		spaced = true
		body = trimmed
	}
	if !strings.HasPrefix(body, Prefix) {
		return "", "", false, false, ""
	}
	rest := body[len(Prefix):]
	if spaced {
		return "", "", false, true, "anonlint: directives must start at //, with no space (//anonlint:allow ...)"
	}
	verb, args, _ := strings.Cut(rest, " ")
	// The verb must be exactly "allow": anonlint:allowed etc. is a typo.
	if verb != "allow" {
		return "", "", false, true, "unknown anonlint directive " + quote(verb) + " (only allow is defined)"
	}
	args = strings.TrimSpace(args)
	open := strings.IndexByte(args, '(')
	if open < 0 || !strings.HasSuffix(args, ")") {
		return "", "", false, true, "allow needs the form analyzer(reason)"
	}
	name := strings.TrimSpace(args[:open])
	why := strings.TrimSpace(args[open+1 : len(args)-1])
	if !validName(name) {
		return "", "", false, true, "allow needs an analyzer name before the parenthesis"
	}
	if why == "" {
		return "", "", false, true, "allow reason must not be empty"
	}
	return name, why, true, true, ""
}

// quote renders a possibly hostile string for a diagnostic (control and
// non-ASCII bytes become '?', long strings are truncated).
func quote(s string) string {
	const max = 40
	b := []byte{'"'}
	for i := 0; i < len(s) && i < max; i++ {
		c := s[i]
		if c < 32 || c >= 127 {
			c = '?'
		}
		b = append(b, c)
	}
	if len(s) > max {
		b = append(b, "..."...)
	}
	return string(append(b, '"'))
}

// validName reports whether s is a plausible analyzer name: a non-empty
// run of lowercase letters and digits starting with a letter.
func validName(s string) bool {
	if s == "" || s[0] < 'a' || s[0] > 'z' {
		return false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// Set holds every suppression of one package, keyed by file and line.
type Set struct {
	// byLine maps filename -> line -> analyzer -> suppression for the
	// lines each annotation covers.
	byLine map[string]map[int]map[string]Suppression
	// malformed lists the broken anonlint: comments, in file order.
	malformed []Malformed
	fset      *token.FileSet
}

// Collect parses every comment of the given files and returns the
// package's suppression set.
func Collect(fset *token.FileSet, files []*ast.File) *Set {
	s := &Set{byLine: make(map[string]map[int]map[string]Suppression), fset: fset}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, reason, ok, isDirective, detail := Parse(c.Text)
				if !isDirective {
					continue
				}
				if !ok {
					s.malformed = append(s.malformed, Malformed{Pos: c.Pos(), Text: c.Text, Detail: detail})
					continue
				}
				pos := fset.Position(c.Pos())
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]Suppression)
					s.byLine[pos.Filename] = lines
				}
				// The annotation covers its own line (end-of-line form)
				// and the next line (standalone form above the site).
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					m := lines[ln]
					if m == nil {
						m = make(map[string]Suppression)
						lines[ln] = m
					}
					m[name] = Suppression{Analyzer: name, Reason: reason, Pos: c.Pos()}
				}
			}
		}
	}
	return s
}

// Allows reports whether a diagnostic of the named analyzer at pos is
// suppressed by an annotation.
func (s *Set) Allows(pos token.Pos, analyzer string) bool {
	if s == nil || s.fset == nil {
		return false
	}
	p := s.fset.Position(pos)
	m := s.byLine[p.Filename]
	if m == nil {
		return false
	}
	_, ok := m[p.Line][analyzer]
	return ok
}

// Malformed returns the broken anonlint: comments found during Collect,
// for the runner to report as diagnostics.
func (s *Set) Malformed() []Malformed {
	if s == nil {
		return nil
	}
	return s.malformed
}
