// Package analysistest runs anonlint analyzers over testdata corpora and
// checks their diagnostics against // want annotations, in the spirit of
// golang.org/x/tools/go/analysis/analysistest (which is not vendored
// here; the toolchain is the only dependency).
//
// A corpus is a directory under the test's testdata/src tree. Each
// corpus package is type-checked against the real repository packages
// and the standard library, so corpora may import e.g.
// anonmix/internal/stats to exercise cross-package fact propagation.
//
// Expectations are written on the line they refer to:
//
//	rng := rand.New(rand.NewSource(42)) // want `literal seed`
//
// Several patterns may follow one want; each is an anchored-nowhere
// regexp that must match one diagnostic message reported on that line.
// Lines without a want comment must produce no diagnostics.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"anonmix/internal/analysis/anonlint"
)

// wantRe matches the expectation marker inside a comment. The first
// pattern must start immediately with its quote so prose that merely
// mentions the word want is not mistaken for an expectation.
var wantRe = regexp.MustCompile("// want ([\"`].*)$")

// Run loads the corpus packages named by paths (directories below
// srcRoot, usually "testdata/src"), runs the analyzer over them, and
// reports any mismatch between diagnostics and // want annotations as
// test failures. Later corpus packages may import earlier ones by their
// path, which is how cross-package fact propagation is tested.
func Run(t *testing.T, srcRoot string, a *anonlint.Analyzer, paths ...string) {
	t.Helper()
	RunSuite(t, srcRoot, []anonlint.Configured{{Analyzer: a}}, paths...)
}

// RunSuite is Run for several configured analyzers at once, matching
// how cmd/anonlint composes them. Malformed //anonlint: directives in
// the corpus surface as diagnostics of the pseudo-analyzer "allow" and
// can be asserted with want annotations like any other.
func RunSuite(t *testing.T, srcRoot string, suite []anonlint.Configured, paths ...string) {
	t.Helper()
	moduleRoot, err := filepath.Abs(findModuleRoot(t))
	if err != nil {
		t.Fatalf("resolving module root: %v", err)
	}
	prog, err := anonlint.LoadCorpus(moduleRoot, srcRoot, paths...)
	if err != nil {
		t.Fatalf("loading corpus: %v", err)
	}
	diags, err := prog.Run(suite)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	wants := collectWants(t, prog, paths)
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		key := lineKey{file: pos.Filename, line: pos.Line}
		if !wants.match(key, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s: %s", pos, d.Analyzer, d.Message)
		}
	}
	wants.reportUnmatched(t)
}

type lineKey struct {
	file string
	line int
}

type expectation struct {
	key     lineKey
	pattern *regexp.Regexp
	matched bool
}

type wantSet struct{ byLine map[lineKey][]*expectation }

// match consumes the first unmatched expectation on the line whose
// pattern matches message; it reports whether one was found.
func (w *wantSet) match(key lineKey, message string) bool {
	for _, e := range w.byLine[key] {
		if !e.matched && e.pattern.MatchString(message) {
			e.matched = true
			return true
		}
	}
	return false
}

func (w *wantSet) reportUnmatched(t *testing.T) {
	t.Helper()
	for _, es := range w.byLine {
		for _, e := range es {
			if !e.matched {
				t.Errorf("%s:%d: no diagnostic matched want %q", e.key.file, e.key.line, e.pattern)
			}
		}
	}
}

// collectWants scans the corpus packages' comments for want markers.
func collectWants(t *testing.T, prog *anonlint.Program, paths []string) *wantSet {
	t.Helper()
	target := make(map[string]bool, len(paths))
	for _, p := range paths {
		target[p] = true
	}
	w := &wantSet{byLine: make(map[lineKey][]*expectation)}
	for _, pkg := range prog.Packages {
		if !target[pkg.Path] {
			continue
		}
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					w.add(t, prog.Fset, c)
				}
			}
		}
	}
	return w
}

func (w *wantSet) add(t *testing.T, fset *token.FileSet, c *ast.Comment) {
	t.Helper()
	m := wantRe.FindStringSubmatch(c.Text)
	if m == nil {
		return
	}
	pos := fset.Position(c.Pos())
	key := lineKey{file: pos.Filename, line: pos.Line}
	rest := strings.TrimSpace(m[1])
	n := 0
	for rest != "" {
		lit, tail, err := nextString(rest)
		if err != nil {
			t.Fatalf("%s: malformed want comment: %v", pos, err)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			t.Fatalf("%s: bad want pattern %q: %v", pos, lit, err)
		}
		w.byLine[key] = append(w.byLine[key], &expectation{key: key, pattern: re})
		rest = strings.TrimSpace(tail)
		n++
	}
	if n == 0 {
		t.Fatalf("%s: want comment has no patterns", pos)
	}
}

// nextString splits one leading Go string literal (quoted or backquoted)
// off s and returns its value plus the remainder.
func nextString(s string) (lit, rest string, err error) {
	switch s[0] {
	case '`':
		end := strings.IndexByte(s[1:], '`')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated backquoted pattern in %q", s)
		}
		return s[1 : 1+end], s[2+end:], nil
	case '"':
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				v, err := strconv.Unquote(s[:i+1])
				if err != nil {
					return "", "", fmt.Errorf("bad pattern %s: %v", s[:i+1], err)
				}
				return v, s[i+1:], nil
			}
		}
		return "", "", fmt.Errorf("unterminated quoted pattern in %q", s)
	default:
		return "", "", fmt.Errorf("expected quoted pattern, found %q", s)
	}
}

// findModuleRoot walks up from the test's working directory (the package
// directory under go test) to the directory containing go.mod.
func findModuleRoot(t *testing.T) string {
	t.Helper()
	dir := "."
	for i := 0; i < 10; i++ {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		dir = filepath.Join("..", dir)
	}
	t.Fatal("go.mod not found above test directory")
	return ""
}
