// Package suite binds the anonlint analyzers to the repository's
// packages: which analyzer runs where is policy, and this package is the
// single place that policy lives — cmd/anonlint and the self-check test
// both consume it, so the CI gate and the local command cannot drift.
package suite

import (
	"strings"

	"anonmix/internal/analysis/anonlint"
	"anonmix/internal/analysis/detrand"
	"anonmix/internal/analysis/errcontract"
	"anonmix/internal/analysis/floatcmp"
	"anonmix/internal/analysis/seedpurity"
)

// contract lists the determinism-contract packages: the ones whose
// outputs are pinned per seed by the differential harness, the
// golden-file figures, and the cross-backend agreement suites. detrand
// applies only here (CLIs and figures may read the clock; the packages
// that compute results may not).
var contract = map[string]bool{
	"anonmix/internal/simnet":     true,
	"anonmix/internal/montecarlo": true,
	"anonmix/internal/events":     true,
	"anonmix/internal/faults":     true,
	"anonmix/internal/adversary":  true,
	"anonmix/internal/scenario":   true,
	"anonmix/internal/optimize":   true,
	// Not named by the original contract list but equally result-bearing:
	// path selection draws and the RNG toolkit itself.
	"anonmix/internal/pathsel": true,
	"anonmix/internal/stats":   true,
}

// internalNonAnalysis matches the library packages under internal/ that
// carry the shared error-sentinel contract (the analysis suite itself is
// exempt: its Parse helpers report positional lint diagnostics, not
// config errors).
func internalNonAnalysis(path string) bool {
	return strings.HasPrefix(path, "anonmix/internal/") &&
		!strings.HasPrefix(path, "anonmix/internal/analysis")
}

// Analyzers returns the configured suite in a fixed order.
func Analyzers() []anonlint.Configured {
	return []anonlint.Configured{
		{Analyzer: detrand.Analyzer, Match: func(p string) bool { return contract[p] }},
		{Analyzer: seedpurity.Analyzer},
		{Analyzer: errcontract.Analyzer, Match: internalNonAnalysis},
		{Analyzer: floatcmp.Analyzer, Match: internalNonAnalysis},
	}
}
