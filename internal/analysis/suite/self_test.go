package suite_test

import (
	"os"
	"path/filepath"
	"testing"

	"anonmix/internal/analysis/anonlint"
	"anonmix/internal/analysis/suite"
)

// TestRepoIsAnonlintClean runs the full configured suite over the whole
// module, exactly as `make lint` and the CI gate do, and fails on any
// finding. The tree must stay clean: fix the finding, or annotate the
// site with //anonlint:allow <analyzer>(<reason>) when it is deliberate.
func TestRepoIsAnonlintClean(t *testing.T) {
	prog, err := anonlint.Load(moduleRoot(t), "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := prog.Run(suite.Analyzers())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s: %s", prog.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		t.Errorf("%d anonlint finding(s); run `go run ./cmd/anonlint ./...` at the module root to reproduce", len(diags))
	}
}

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir := "."
	for i := 0; i < 10; i++ {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		dir = filepath.Join("..", dir)
	}
	t.Fatal("go.mod not found above test directory")
	return ""
}
