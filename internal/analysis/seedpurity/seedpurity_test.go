package seedpurity_test

import (
	"testing"

	"anonmix/internal/analysis/analysistest"
	"anonmix/internal/analysis/seedpurity"
)

// TestSeedpurity loads package a (roots, in-package facts) and then
// package b, which imports a — the b expectations only hold if the
// SeedConsumer facts derived in a survive the package boundary.
func TestSeedpurity(t *testing.T) {
	analysistest.Run(t, "testdata/src", seedpurity.Analyzer, "seedpurity/a", "seedpurity/b")
}
