// Package seedpurity implements the anonlint analyzer that pins the
// repository's seed-provenance invariant: every RNG is constructed from
// an explicit seed that arrived as a parameter or configuration field —
// never from a package-level variable, a hard-coded literal, or the wall
// clock. The invariant is what makes every randomized result a pure
// function of its Config.Seed, which the differential harness and the
// golden files depend on.
//
// The root constructors are math/rand.NewSource and the internal/stats
// toolkit (NewRand, Fork, ForkSeed, NewStream), each taking its seed as
// the first parameter. Seed-consuming helpers propagate: a function that
// passes one of its own parameters as the seed of a known constructor is
// itself recorded (as an object fact) as a constructor, so call sites in
// other packages are checked against the same rule — the cross-package
// fact propagation the rest of the suite piggybacks on.
//
// A seed argument is flagged only when it is provably impure: a constant
// expression, an expression reading a package-level variable, a
// time.Now()-derived value, or a local variable whose every assignment
// is one of those. Anything the analyzer cannot prove (function results,
// struct fields, channel reads) is accepted — the check is precise, not
// paranoid.
package seedpurity

import (
	"go/ast"
	"go/types"

	"anonmix/internal/analysis/anonlint"
)

// Analyzer is the seedpurity check.
var Analyzer = &anonlint.Analyzer{
	Name: "seedpurity",
	Doc:  "RNG seeds must come from explicit parameters or fields, never package state, literals, or the clock",
	Run:  run,
}

// SeedConsumer is the object fact recorded for a function that feeds one
// of its own parameters into an RNG constructor: Params lists the indices
// of those seed parameters.
type SeedConsumer struct {
	Params []int
}

// AFact marks SeedConsumer as an anonlint fact.
func (*SeedConsumer) AFact() {}

// roots maps import path -> function name -> seed parameter indices for
// the known RNG constructors.
var roots = map[string]map[string][]int{
	"math/rand": {
		"NewSource": {0},
	},
	"math/rand/v2": {
		"NewPCG":         {0, 1},
		"NewChaCha8":     {0},
		"NewZipf":        {0},
		"New":            nil, // takes a Source, handled via NewPCG etc.
		"NewExpFloat64":  nil,
		"NewNormFloat64": nil,
	},
	"anonmix/internal/stats": {
		"NewRand":   {0},
		"Fork":      {0},
		"ForkSeed":  {0},
		"NewStream": {0},
	},
}

func run(pass *anonlint.Pass) error {
	// Phase 1: derive facts for this package's own seed-consuming
	// helpers, to a fixpoint so helper chains within the package resolve
	// regardless of declaration order.
	fns := packageFuncs(pass)
	for changed := true; changed; {
		changed = false
		for _, fd := range fns {
			if deriveFact(pass, fd) {
				changed = true
			}
		}
	}

	// Phase 2: check every constructor call site.
	for _, file := range pass.Files {
		var enclosing []*ast.FuncDecl
		var visit func(ast.Node) bool
		visit = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				enclosing = append(enclosing, n)
				if n.Body != nil {
					ast.Inspect(n.Body, visit)
				}
				enclosing = enclosing[:len(enclosing)-1]
				return false
			case *ast.CallExpr:
				var outer *ast.FuncDecl
				if len(enclosing) > 0 {
					outer = enclosing[len(enclosing)-1]
				}
				checkCall(pass, n, outer)
			}
			return true
		}
		ast.Inspect(file, visit)
	}
	return nil
}

// packageFuncs returns every function declaration of the package.
func packageFuncs(pass *anonlint.Pass) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// seedParams returns the seed parameter indices of the called function,
// or nil/false when the callee is not an RNG constructor.
func seedParams(pass *anonlint.Pass, call *ast.CallExpr) ([]int, bool) {
	fn := callee(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return nil, false
	}
	if byName, ok := roots[fn.Pkg().Path()]; ok {
		if idx, ok := byName[fn.Name()]; ok {
			return idx, len(idx) > 0
		}
	}
	var fact SeedConsumer
	if pass.ImportObjectFact(fn, &fact) {
		return fact.Params, len(fact.Params) > 0
	}
	return nil, false
}

// deriveFact records fd as a seed consumer when it passes one of its own
// parameters as a constructor seed. It reports whether the fact set grew.
func deriveFact(pass *anonlint.Pass, fd *ast.FuncDecl) bool {
	fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return false
	}
	var have SeedConsumer
	pass.ImportObjectFact(fn, &have)
	params := paramObjects(pass, fd)
	found := map[int]bool{}
	for _, i := range have.Params {
		found[i] = true
	}
	grew := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		idx, ok := seedParams(pass, call)
		if !ok {
			return true
		}
		for _, i := range idx {
			if i >= len(call.Args) {
				continue
			}
			obj := identUse(pass, call.Args[i])
			if obj == nil {
				continue
			}
			for pi, p := range params {
				if obj == p && !found[pi] {
					found[pi] = true
					grew = true
				}
			}
		}
		return true
	})
	if grew {
		fact := &SeedConsumer{}
		for i := range params {
			if found[i] {
				fact.Params = append(fact.Params, i)
			}
		}
		pass.ExportObjectFact(fn, fact)
	}
	return grew
}

// paramObjects returns the parameter objects of fd in declaration order
// (the receiver is not a seed candidate).
func paramObjects(pass *anonlint.Pass, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			out = append(out, pass.TypesInfo.Defs[name])
		}
	}
	return out
}

// checkCall flags impure seed arguments at constructor call sites.
func checkCall(pass *anonlint.Pass, call *ast.CallExpr, outer *ast.FuncDecl) {
	idx, ok := seedParams(pass, call)
	if !ok {
		return
	}
	for _, i := range idx {
		if i >= len(call.Args) {
			continue
		}
		arg := call.Args[i]
		if reason := impure(pass, arg, outer, 3); reason != "" {
			pass.Reportf(arg.Pos(),
				"RNG seed must derive from an explicit parameter or field, not %s", reason)
		}
	}
}

// impure reports why e is a provably impure seed source, or "" when the
// analyzer cannot prove impurity. depth bounds local-variable tracing.
func impure(pass *anonlint.Pass, e ast.Expr, outer *ast.FuncDecl, depth int) string {
	e = ast.Unparen(e)
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		return "the constant " + tv.Value.String()
	}
	// A conversion wraps its operand: int64(x) is as pure as x.
	if call, ok := e.(*ast.CallExpr); ok {
		if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
			return impure(pass, call.Args[0], outer, depth)
		}
		if fn := callee(pass, call); fn != nil && fn.Pkg() != nil {
			if fn.Pkg().Path() == "time" && fn.Name() == "Now" {
				return "the wall clock (time.Now)"
			}
			// A method call inherits its receiver's impurity:
			// time.Now().UnixNano() is still the wall clock.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					if r := impure(pass, sel.X, outer, depth); r != "" {
						return r
					}
				}
			}
		}
		// Calls to the stats derivation helpers are as pure as their own
		// seed argument.
		if idx, ok := seedParams(pass, call); ok {
			for _, i := range idx {
				if i < len(call.Args) {
					if r := impure(pass, call.Args[i], outer, depth); r != "" {
						return r
					}
				}
			}
			return ""
		}
		return "" // other call results: unknown, accepted
	}
	if sel, ok := e.(*ast.SelectorExpr); ok {
		// pkg.Var reads package state; obj.Field is a field read and fine.
		if obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var); ok && isPackageLevel(obj) {
			return "the package-level variable " + obj.Pkg().Name() + "." + obj.Name()
		}
		return ""
	}
	if id, ok := e.(*ast.Ident); ok {
		obj, _ := pass.TypesInfo.Uses[id].(*types.Var)
		if obj == nil {
			return ""
		}
		if isPackageLevel(obj) {
			return "the package-level variable " + obj.Name()
		}
		if depth <= 0 || outer == nil {
			return ""
		}
		// A local: impure only if it has assignments and every one is
		// provably impure.
		rhs := localAssignments(pass, outer, obj)
		if len(rhs) == 0 {
			return ""
		}
		first := ""
		for _, r := range rhs {
			reason := impure(pass, r, outer, depth-1)
			if reason == "" {
				return ""
			}
			if first == "" {
				first = reason
			}
		}
		return first
	}
	if be, ok := e.(*ast.BinaryExpr); ok {
		// Arithmetic over impure operands is impure only when *every*
		// operand is; mixing in a parameter launders nothing but is not
		// provably bad.
		rx := impure(pass, be.X, outer, depth)
		ry := impure(pass, be.Y, outer, depth)
		if rx != "" && ry != "" {
			return rx
		}
		return ""
	}
	return ""
}

// localAssignments collects the RHS expressions assigned to obj within
// fn's body (including its declaration).
func localAssignments(pass *anonlint.Pass, fn *ast.FuncDecl, obj types.Object) []ast.Expr {
	var out []ast.Expr
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				target := pass.TypesInfo.Defs[id]
				if target == nil {
					target = pass.TypesInfo.Uses[id]
				}
				if target == obj {
					out = append(out, n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if pass.TypesInfo.Defs[name] == obj && i < len(n.Values) {
					out = append(out, n.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// isPackageLevel reports whether v is a package-level variable.
func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func callee(pass *anonlint.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func identUse(pass *anonlint.Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.TypesInfo.Uses[id]
}
