// Package a exercises the seedpurity analyzer at root-constructor call
// sites and defines seed-consuming helpers whose facts package b checks.
package a

import (
	"math/rand"
	"time"

	"anonmix/internal/stats"
)

// defaultSeed is package state: seeding from it hides the provenance.
var defaultSeed int64 = 1

type Config struct {
	Seed int64
}

// --- impure roots ---

func literalSeed() rand.Source {
	return rand.NewSource(42) // want `RNG seed must derive from an explicit parameter or field, not the constant 42`
}

func packageVarSeed() rand.Source {
	return rand.NewSource(defaultSeed) // want `not the package-level variable defaultSeed`
}

func clockSeed() rand.Source {
	return rand.NewSource(time.Now().UnixNano()) // want `not the wall clock \(time.Now\)`
}

func tracedLocalSeed() rand.Source {
	s := int64(7)
	return rand.NewSource(s) // want `not the constant 7`
}

func statsLiteralSeed() *rand.Rand {
	return stats.NewRand(1234) // want `not the constant 1234`
}

// --- pure roots ---

func paramSeed(seed int64) rand.Source {
	return rand.NewSource(seed)
}

func fieldSeed(cfg Config) rand.Source {
	return rand.NewSource(cfg.Seed)
}

func derivedParamSeed(seed int64) rand.Source {
	return rand.NewSource(seed ^ 0x9e3779b9)
}

func annotatedSeed() rand.Source {
	return rand.NewSource(99) //anonlint:allow seedpurity(corpus: fixed demo seed)
}

// --- helpers that should acquire SeedConsumer facts ---

// NewThing passes its own parameter into a root constructor, making it a
// seed consumer for cross-package call sites.
func NewThing(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// NewChained propagates through NewThing, one fact hop away.
func NewChained(seed int64, n int) *rand.Rand {
	r := NewThing(seed)
	for i := 0; i < n; i++ {
		r.Int63()
	}
	return r
}

// inPackageLiteral checks that locally derived facts already apply to
// same-package call sites.
func inPackageLiteral() *rand.Rand {
	return NewThing(2002) // want `not the constant 2002`
}
