// Package b imports package a and checks that the SeedConsumer facts
// derived there propagate across the package boundary: a.NewThing and
// a.NewChained are constructors here too.
package b

import (
	"seedpurity/a"
)

var ambient int64 = 3

func literalThroughFact() {
	a.NewThing(99) // want `RNG seed must derive from an explicit parameter or field, not the constant 99`
}

func packageVarThroughFact() {
	a.NewChained(ambient, 4) // want `not the package-level variable ambient`
}

func paramThroughFact(seed int64) {
	a.NewThing(seed)
	a.NewChained(seed+1, 2)
}

func fieldThroughFact(cfg a.Config) {
	a.NewThing(cfg.Seed)
}
