package detrand_test

import (
	"testing"

	"anonmix/internal/analysis/analysistest"
	"anonmix/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, "testdata/src", detrand.Analyzer, "detrand")
}
