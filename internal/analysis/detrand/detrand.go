// Package detrand implements the anonlint analyzer that keeps ambient
// nondeterminism out of the determinism-contract packages: the packages
// whose outputs are pinned bit-for-bit per seed by the differential
// harness and the golden-file tests (simnet, montecarlo, events, faults,
// adversary, scenario, optimize).
//
// Three sources of silent nondeterminism are flagged:
//
//  1. Wall clock: any call to time.Now. Timing probes that never flow
//     into a Result are legitimate, but each such site must say so with
//     an //anonlint:allow detrand(reason) annotation.
//
//  2. Ambient entropy: the global math/rand top-level functions (Intn,
//     Float64, Perm, Shuffle, ...), whose shared source is seeded from
//     runtime state and contended across goroutines. Every random draw
//     in the contract packages must come from an explicitly seeded
//     *rand.Rand or stats.Stream.
//
//  3. Map iteration order: a `for ... range m` over a map whose body
//     does something order-sensitive — appends to a slice, sends on a
//     channel, writes an outer variable, returns or breaks early, or
//     calls a function that may observe the order (any call not known to
//     be order-safe). Writes keyed by the loop key (out[k] = v,
//     delete(m, k)) and commutative integer accumulation (n++, n += ...)
//     are recognized as order-independent, as is the key-collection
//     idiom `for k := range m { keys = append(keys, k) }` provided keys
//     is passed to a sort in the same function.
package detrand

import (
	"go/ast"
	"go/token"
	"go/types"

	"anonmix/internal/analysis/anonlint"
)

// Analyzer is the detrand check.
var Analyzer = &anonlint.Analyzer{
	Name: "detrand",
	Doc: "forbid wall-clock reads, global math/rand draws, and order-sensitive map iteration " +
		"in determinism-contract packages",
	Run: run,
}

// globalRandFuncs are the math/rand top-level functions that draw from
// the shared, runtime-seeded global source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

func run(pass *anonlint.Pass) error {
	for _, file := range pass.Files {
		// funcs is the stack of enclosing function bodies, innermost
		// last; the key-collection idiom needs the enclosing body to
		// look for the later sort call.
		var funcs []*ast.BlockStmt
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					funcs = append(funcs, n.Body)
					ast.Inspect(n.Body, visit)
					funcs = funcs[:len(funcs)-1]
				}
				return false
			case *ast.FuncLit:
				funcs = append(funcs, n.Body)
				ast.Inspect(n.Body, visit)
				funcs = funcs[:len(funcs)-1]
				return false
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				var body *ast.BlockStmt
				if len(funcs) > 0 {
					body = funcs[len(funcs)-1]
				}
				checkMapRange(pass, n, body)
			}
			return true
		}
		ast.Inspect(file, visit)
	}
	return nil
}

// checkCall flags time.Now and global math/rand draws.
func checkCall(pass *anonlint.Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" {
			pass.Reportf(call.Pos(),
				"time.Now in determinism-contract package %s: wall clock must not flow into results (annotate timing probes with //anonlint:allow detrand(reason))",
				pass.Pkg.Name())
		}
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[fn.Name()] && fn.Type().(*types.Signature).Recv() == nil {
			pass.Reportf(call.Pos(),
				"global math/rand.%s draws from the runtime-seeded shared source: use an explicitly seeded generator (stats.NewRand, stats.Stream)",
				fn.Name())
		}
	}
}

// calleeFunc resolves the called package-level function, or nil.
func calleeFunc(pass *anonlint.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// checkMapRange analyzes one range statement; enclosing is the innermost
// surrounding function body (for the key-collection idiom), possibly nil.
func checkMapRange(pass *anonlint.Pass, rng *ast.RangeStmt, enclosing *ast.BlockStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	key := rangeVar(pass, rng.Key)
	value := rangeVar(pass, rng.Value)

	// The collect-and-sort idiom: the body only appends the key (or the
	// value) to a slice, and that slice is sorted later in the same
	// function, which re-establishes a deterministic order.
	if target, ok := collectTarget(pass, rng, key, value); ok {
		if enclosing != nil && sortedAfter(pass, enclosing, rng, target) {
			return
		}
		pass.Reportf(rng.Pos(),
			"map entries collected into %s but never sorted in this function: iteration order leaks into the slice",
			target.Name())
		return
	}

	c := &bodyChecker{pass: pass, rng: rng, key: key, value: value, written: writtenObjects(pass, rng.Body)}
	c.block(rng.Body)
	if c.badPos != token.NoPos {
		// Report at the loop, not the inner statement: the annotation
		// granularity is the whole range statement.
		pass.Reportf(rng.Pos(),
			"range over map %s is order-sensitive: %s at line %d (sort the keys first, or annotate with //anonlint:allow detrand(reason))",
			types.ExprString(rng.X), c.badWhat, pass.Fset.Position(c.badPos).Line)
	}
}

// rangeVar resolves a range clause variable to its object (nil for _ or
// absent variables).
func rangeVar(pass *anonlint.Pass, e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	v, _ := pass.TypesInfo.Defs[id].(*types.Var)
	if v == nil {
		v, _ = pass.TypesInfo.Uses[id].(*types.Var)
	}
	return v
}

// collectTarget matches a body of exactly `target = append(target, k)`
// (or appending the loop value) and returns the target slice variable.
func collectTarget(pass *anonlint.Pass, rng *ast.RangeStmt, key, value *types.Var) (*types.Var, bool) {
	if (key == nil && value == nil) || len(rng.Body.List) != 1 {
		return nil, false
	}
	as, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
		return nil, false
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, false
	}
	target, _ := pass.TypesInfo.Uses[lhs].(*types.Var)
	if target == nil {
		target, _ = pass.TypesInfo.Defs[lhs].(*types.Var)
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || target == nil || !isBuiltin(pass, call.Fun, "append") || len(call.Args) != 2 || call.Ellipsis != token.NoPos {
		return nil, false
	}
	if obj := identObj(pass, call.Args[0]); obj != target {
		return nil, false
	}
	appended := identObj(pass, call.Args[1])
	if appended == nil || ((key == nil || appended != key) && (value == nil || appended != value)) {
		return nil, false
	}
	return target, true
}

// sortedAfter reports whether, somewhere after the range statement in the
// enclosing body, target is passed as the first argument to a sort.* or
// slices.Sort* call.
func sortedAfter(pass *anonlint.Pass, body *ast.BlockStmt, rng *ast.RangeStmt, target *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || found || len(call.Args) == 0 {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		if identObj(pass, call.Args[0]) == target {
			found = true
		}
		return true
	})
	return found
}

// identObj resolves a plain identifier expression to its object.
func identObj(pass *anonlint.Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.TypesInfo.Uses[id]
}

func isBuiltin(pass *anonlint.Pass, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// writtenObjects collects every object assigned, incremented, or
// address-taken anywhere in the body — the variables whose value may
// differ between iterations.
func writtenObjects(pass *anonlint.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	add := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				add(lhs)
			}
		case *ast.IncDecStmt:
			add(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				add(n.X)
			}
		}
		return true
	})
	return out
}

// bodyChecker walks a map-range body and records the first
// order-sensitive statement.
type bodyChecker struct {
	pass    *anonlint.Pass
	rng     *ast.RangeStmt
	key     *types.Var
	value   *types.Var
	written map[types.Object]bool
	badPos  token.Pos
	badWhat string
}

func (c *bodyChecker) bad(pos token.Pos, what string) {
	if c.badPos == token.NoPos {
		c.badPos, c.badWhat = pos, what
	}
}

func (c *bodyChecker) block(b *ast.BlockStmt) {
	for _, s := range b.List {
		c.stmt(s)
	}
}

func (c *bodyChecker) stmt(s ast.Stmt) {
	if c.badPos != token.NoPos {
		return
	}
	switch s := s.(type) {
	case *ast.AssignStmt:
		c.assign(s)
	case *ast.IncDecStmt:
		// n++ / n-- on integers is commutative across iterations.
		if !c.isIntExpr(s.X) {
			c.bad(s.Pos(), "increment of non-integer "+types.ExprString(s.X))
		} else {
			c.exprs(s.X)
		}
	case *ast.ExprStmt:
		c.exprs(s.X)
	case *ast.SendStmt:
		c.bad(s.Pos(), "channel send")
	case *ast.ReturnStmt:
		c.bad(s.Pos(), "return inside map iteration (which element returns first depends on order)")
	case *ast.BranchStmt:
		// break/goto leave the loop early: the processed subset depends
		// on order. continue merely skips an element and is fine.
		if s.Tok == token.BREAK || s.Tok == token.GOTO {
			c.bad(s.Pos(), s.Tok.String()+" inside map iteration (the processed subset depends on order)")
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		c.exprs(s.Cond)
		c.block(s.Body)
		if s.Else != nil {
			c.stmt(s.Else)
		}
	case *ast.BlockStmt:
		c.block(s)
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		if s.Cond != nil {
			c.exprs(s.Cond)
		}
		if s.Post != nil {
			c.stmt(s.Post)
		}
		c.block(s.Body)
	case *ast.RangeStmt:
		c.exprs(s.X)
		c.block(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		if s.Tag != nil {
			c.exprs(s.Tag)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.exprs(cl.List...)
				for _, st := range cl.Body {
					c.stmt(st)
				}
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					c.exprs(vs.Values...)
				}
			}
		}
	case *ast.DeferStmt:
		c.bad(s.Pos(), "defer inside map iteration (deferred calls run in iteration order)")
	case *ast.GoStmt:
		c.bad(s.Pos(), "goroutine launch inside map iteration")
	case *ast.LabeledStmt:
		c.stmt(s.Stmt)
	case *ast.EmptyStmt:
	default:
		c.bad(s.Pos(), "statement the analyzer cannot prove order-independent")
	}
}

// assign classifies an assignment inside the loop body.
func (c *bodyChecker) assign(s *ast.AssignStmt) {
	for _, rhs := range s.Rhs {
		c.exprs(rhs)
	}
	for _, lhs := range s.Lhs {
		c.assignTarget(s, lhs)
	}
}

func (c *bodyChecker) assignTarget(s *ast.AssignStmt, lhs ast.Expr) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		obj := c.pass.TypesInfo.Defs[lhs]
		if obj == nil {
			obj = c.pass.TypesInfo.Uses[lhs]
		}
		if c.isLoopLocal(obj) {
			return
		}
		// Writes to outer variables: commutative integer accumulation
		// (n += x and friends) is order-independent; anything else —
		// plain assignment (last writer wins), float accumulation (IEEE
		// addition is not associative), append — depends on order.
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.MUL_ASSIGN:
			if c.isIntExpr(lhs) {
				return
			}
			c.bad(s.Pos(), "accumulation into outer non-integer variable "+lhs.Name+" (IEEE float reduction is order-dependent)")
		default:
			c.bad(s.Pos(), "write to variable "+lhs.Name+" declared outside the loop")
		}
	case *ast.IndexExpr:
		// container[k] = v keyed by the loop key hits a distinct cell
		// each iteration, so plain and compound writes are both safe.
		if c.key != nil && identUse(c.pass, lhs.Index) == c.key {
			c.exprs(lhs.X)
			return
		}
		// container[f(k)] = <loop-invariant>: every iteration stores the
		// same value, so even colliding indices commute
		// (lp[live[id]] = math.Inf(-1) and friends).
		if s.Tok == token.ASSIGN && len(s.Lhs) == 1 && len(s.Rhs) == 1 && c.invariant(s.Rhs[0]) {
			c.exprs(lhs.X, lhs.Index)
			return
		}
		c.bad(s.Pos(), "indexed write not keyed by the loop key")
	case *ast.SelectorExpr:
		// value.Field = x through the loop value (a pointer element)
		// mutates each element independently.
		if c.value != nil && identUse(c.pass, lhs.X) == c.value {
			return
		}
		c.bad(s.Pos(), "write to field "+types.ExprString(lhs)+" outside the loop element")
	case *ast.StarExpr:
		c.bad(s.Pos(), "write through pointer "+types.ExprString(lhs))
	default:
		c.bad(s.Pos(), "write to "+types.ExprString(lhs))
	}
}

// exprs scans expressions for order-observing operations: calls that are
// not provably order-safe, and channel receives.
func (c *bodyChecker) exprs(list ...ast.Expr) {
	for _, e := range list {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if c.badPos != token.NoPos {
				return false
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				if !c.safeCall(n) {
					c.bad(n.Pos(), "call to "+types.ExprString(n.Fun)+" (not provably order-independent)")
					return false
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					c.bad(n.Pos(), "channel receive")
					return false
				}
			case *ast.FuncLit:
				// A function literal defined (not called) in the body is
				// inert by itself.
				return false
			}
			return true
		})
	}
}

// invariant reports whether e provably evaluates to the same value on
// every iteration: it references neither loop variable nor any variable
// written in the body, and contains only order-safe calls.
func (c *bodyChecker) invariant(e ast.Expr) bool {
	ok := true
	ast.Inspect(e, func(n ast.Node) bool {
		if !ok {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			obj := c.pass.TypesInfo.Uses[n]
			if obj == nil {
				return true
			}
			if (c.key != nil && obj == c.key) || (c.value != nil && obj == c.value) || c.written[obj] {
				ok = false
			}
		case *ast.CallExpr:
			if !c.safeCall(n) {
				ok = false
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				ok = false
			}
		}
		return ok
	})
	return ok
}

// safeCall reports whether a call inside the body cannot observe
// iteration order: builtins without side effects, delete keyed by the
// loop key, conversions, and pure math.
func (c *bodyChecker) safeCall(call *ast.CallExpr) bool {
	// Type conversions are pure.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch id.Name {
			case "len", "cap", "min", "max", "make", "new", "real", "imag", "complex":
				return true
			case "append":
				// append flows through assignTarget; the call itself is
				// safe, the assignment decides.
				return true
			case "delete":
				return len(call.Args) == 2 && c.key != nil && identUse(c.pass, call.Args[1]) == c.key
			default:
				return false
			}
		}
	}
	fn := calleeFunc(c.pass, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "math" {
		return true
	}
	return false
}

// isLoopLocal reports whether obj is declared inside the range statement
// (the loop variables or body-local declarations).
func (c *bodyChecker) isLoopLocal(obj types.Object) bool {
	if obj == nil {
		return false // unresolved: be conservative, treat as outer
	}
	return obj.Pos() >= c.rng.Pos() && obj.Pos() < c.rng.End()
}

// isIntExpr reports whether e has integer type.
func (c *bodyChecker) isIntExpr(e ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func identUse(pass *anonlint.Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.TypesInfo.Uses[id]
}
