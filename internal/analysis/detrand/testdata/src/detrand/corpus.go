// Package corpus exercises the detrand analyzer. Each want comment
// asserts a diagnostic on its line; lines without one must stay silent.
package corpus

import (
	"math/rand"
	"sort"
	"time"
)

// --- wall clock ---

func clock() time.Time {
	return time.Now() // want `time.Now in determinism-contract package corpus`
}

func clockAnnotated() time.Time {
	return time.Now() //anonlint:allow detrand(corpus: timing probe that never flows into a result)
}

func clockAnnotatedAbove() time.Time {
	//anonlint:allow detrand(corpus: standalone annotation covers the next line)
	return time.Now()
}

// Arithmetic on a stored time is fine; only the Now call is ambient.
func later(t0 time.Time) time.Time {
	return t0.Add(time.Second)
}

// --- ambient entropy ---

func globalDraw() int {
	return rand.Intn(10) // want `global math/rand.Intn draws from the runtime-seeded shared source`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand.Shuffle`
}

func seededDraw(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10) // a method on an explicit generator is not ambient
}

// --- map iteration order ---

func orderedCopy(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m { // writes keyed by the loop key commute
		out[k] = v
	}
	return out
}

func count(m map[string]int) int {
	n := 0
	for _, v := range m { // integer accumulation commutes
		n += v
	}
	return n
}

func drain(m map[string]int) {
	for k := range m { // delete keyed by the loop key is safe
		delete(m, k)
	}
}

func keysSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // collect-and-sort re-establishes an order
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func keysUnsorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want `map entries collected into keys but never sorted`
		keys = append(keys, k)
	}
	return keys
}

func firstKey(m map[int]int) int {
	for k := range m { // want `range over map m is order-sensitive: return inside map iteration`
		return k
	}
	return -1
}

func sendAll(m map[int]int, ch chan<- int) {
	for k := range m { // want `range over map m is order-sensitive: channel send`
		ch <- k
	}
}

func sumFloats(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `IEEE float reduction is order-dependent`
		total += v
	}
	return total
}

func sumFloatsAllowed(m map[string]float64) float64 {
	total := 0.0
	//anonlint:allow detrand(corpus: reduction error is tolerated here)
	for _, v := range m {
		total += v
	}
	return total
}

func callOut(m map[string]int, f func(int)) {
	for _, v := range m { // want `call to f \(not provably order-independent\)`
		f(v)
	}
}

func invariantWrite(m map[int]bool, marks map[int]string, names []int) {
	for k := range m { // storing a loop-invariant value commutes even on collision
		marks[names[k%len(names)]] = "seen"
	}
}

// --- malformed annotations are reported and suppress nothing ---

func malformed() time.Time {
	//anonlint:allow detrand(} // want `malformed anonlint comment \(suppresses nothing\)`
	return time.Now() // want `time.Now in determinism-contract package`
}
