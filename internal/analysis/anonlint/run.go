package anonlint

import (
	"sort"

	"anonmix/internal/analysis/allow"
)

// Configured binds an analyzer to the packages it applies to.
type Configured struct {
	// Analyzer is the check.
	Analyzer *Analyzer
	// Match reports whether the analyzer applies to the package with the
	// given import path. A nil Match applies it to every package.
	Match func(importPath string) bool
}

// Run applies the suite to every package of the program in dependency
// order (so facts exported by a dependency are visible to its importers)
// and returns the diagnostics for target packages, sorted by position.
// Malformed //anonlint: comments in target packages are reported as
// diagnostics of the pseudo-analyzer "allow"; they cannot themselves be
// suppressed.
func (prog *Program) Run(suite []Configured) ([]Diagnostic, error) {
	facts := make(factStore)
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		set := allow.Collect(prog.Fset, pkg.Files)
		if pkg.Target {
			for _, m := range set.Malformed() {
				diags = append(diags, Diagnostic{
					Pos:      m.Pos,
					Analyzer: "allow",
					Message:  "malformed anonlint comment (suppresses nothing): " + m.Detail,
				})
			}
		}
		for _, c := range suite {
			if c.Match != nil && !c.Match(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer:  c.Analyzer,
				Fset:      prog.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Allow:     set,
				facts:     facts,
				report: func(d Diagnostic) {
					if pkg.Target {
						diags = append(diags, d)
					}
				},
			}
			if err := c.Analyzer.Run(pass); err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := prog.Fset.Position(diags[i].Pos), prog.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
