// Package anonlint is the repository's static-analysis framework: a
// small, dependency-free re-implementation of the golang.org/x/tools
// go/analysis vocabulary (Analyzer, Pass, diagnostics, object facts) on
// top of the standard library's go/ast and go/types.
//
// The usual driver stack (x/tools analysis + go/packages) is not
// available in the build environment, so anonlint loads packages itself:
// `go list -json -deps -export` enumerates the module's packages in
// dependency order, module packages are type-checked from source, and
// standard-library imports are satisfied from the compiler's export data
// (the files `go list -export` points at). Because every module package
// shares one type-checking universe, an object fact exported while
// analyzing internal/stats is visible by object identity when analyzing
// a package that imports it — the same cross-package propagation model
// as go/analysis facts, held in memory for the one run.
//
// The analyzers themselves live in sibling packages (detrand,
// seedpurity, errcontract, floatcmp); the suite that binds them to the
// repository's packages is internal/analysis/suite, and cmd/anonlint is
// the command-line driver.
package anonlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"

	"anonmix/internal/analysis/allow"
)

// An Analyzer is one static check. Run inspects a package via the Pass
// and reports findings with Pass.Reportf; returning an error aborts the
// whole anonlint run (reserved for internal failures, not findings).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //anonlint:allow annotations. Lowercase letters and digits.
	Name string
	// Doc is the one-paragraph description printed by cmd/anonlint.
	Doc string
	// Run performs the check on one package.
	Run func(*Pass) error
}

// A Fact is a serializable-in-spirit claim about a types.Object, exported
// while analyzing the object's defining package and importable from any
// later pass that can see the object. Facts must be pointer types.
type Fact interface {
	// AFact marks the type as a fact (mirrors go/analysis).
	AFact()
}

// A Diagnostic is one finding, positioned in the shared FileSet.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Pos
	// Analyzer names the analyzer that produced it.
	Analyzer string
	// Message describes the finding.
	Message string
}

// factKey identifies a fact by subject object and concrete fact type.
type factKey struct {
	obj types.Object
	typ reflect.Type
}

// factStore holds every exported fact of a run, across packages.
type factStore map[factKey]Fact

// A Pass presents one package to one analyzer.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset is the run-wide file set (shared by all packages).
	Fset *token.FileSet
	// Files are the package's parsed source files (no _test.go files:
	// anonlint checks production code; test files are exempt from the
	// invariants by design).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo carries the type-checker's expression and identifier
	// tables for Files.
	TypesInfo *types.Info
	// Allow is the package's parsed //anonlint:allow suppression set.
	Allow *allow.Set

	facts  factStore
	report func(Diagnostic)
}

// Reportf records a finding at pos unless an //anonlint:allow annotation
// for this analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Allow.Allows(pos, p.Analyzer.Name) {
		return
	}
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// ExportObjectFact attaches fact to obj for the rest of the run. fact
// must be a pointer; obj must not be nil.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil || fact == nil {
		return
	}
	p.facts[factKey{obj, reflect.TypeOf(fact)}] = fact
}

// ImportObjectFact copies into fact the fact of fact's own concrete type
// previously exported for obj, reporting whether one was found. fact
// must be a non-nil pointer of the same type as the exported fact.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil || fact == nil {
		return false
	}
	got, ok := p.facts[factKey{obj, reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}
