package anonlint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one loaded, type-checked module package.
type Package struct {
	// Path is the import path.
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Files are the parsed non-test source files.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info is the type-checker's table for Files.
	Info *types.Info
	// Target marks packages named by the load patterns (as opposed to
	// packages pulled in only as dependencies). Analyzers run on every
	// module package so facts propagate, but diagnostics are reported
	// only for targets.
	Target bool
}

// A Program is a load result: every module package reachable from the
// patterns, in dependency order (imports before importers), sharing one
// FileSet and one type universe.
type Program struct {
	// Fset is the shared file set.
	Fset *token.FileSet
	// Packages lists the module packages in dependency order.
	Packages []*Package
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (resolved relative to
// dir, typically the module root) with the go tool, type-checks every
// module package from source in dependency order, and satisfies
// standard-library imports from compiler export data. Test files are not
// loaded; see Pass.Files.
func Load(dir string, patterns ...string) (*Program, error) {
	prog, _, err := load(dir, patterns)
	return prog, err
}

// load is the shared implementation behind Load and LoadCorpus; it also
// returns the loader so further packages can be checked into the same
// type universe.
func load(dir string, patterns []string) (*Program, *loader, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json", "-deps", "-export", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("anonlint: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string) // stdlib import path -> export data file
	var listed []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("anonlint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("anonlint: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Standard {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
			continue
		}
		listed = append(listed, p)
	}

	fset := token.NewFileSet()
	checked := make(map[string]*types.Package)
	ld := &loader{fset: fset, checked: checked, imp: newImporter(fset, exports, checked)}

	prog := &Program{Fset: fset}
	for _, p := range listed {
		if len(p.CgoFiles) > 0 {
			return nil, nil, fmt.Errorf("anonlint: %s uses cgo, which the loader does not support", p.ImportPath)
		}
		var names []string
		for _, name := range p.GoFiles {
			names = append(names, filepath.Join(p.Dir, name))
		}
		pkg, err := ld.check(p.ImportPath, p.Dir, names, !p.DepOnly)
		if err != nil {
			return nil, nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	return prog, ld, nil
}

// LoadCorpus loads the module's packages (as non-target dependencies)
// and then the given corpus packages from srcRoot, in order: each path p
// is the directory srcRoot/p, type-checked with import path p, so a
// later corpus package may import an earlier one by that path — the
// analysistest harness uses this to exercise cross-package fact
// propagation. Corpus packages may import the module's packages and any
// standard-library package in the module's dependency closure.
func LoadCorpus(moduleDir, srcRoot string, paths ...string) (*Program, error) {
	prog, ld, err := load(moduleDir, []string{"./..."})
	if err != nil {
		return nil, err
	}
	for _, p := range prog.Packages {
		p.Target = false
	}
	for _, p := range paths {
		dir := filepath.Join(srcRoot, filepath.FromSlash(p))
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("anonlint: corpus %s: %v", p, err)
		}
		var names []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				names = append(names, filepath.Join(dir, e.Name()))
			}
		}
		if len(names) == 0 {
			return nil, fmt.Errorf("anonlint: corpus %s: no .go files in %s", p, dir)
		}
		pkg, err := ld.check(p, dir, names, true)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	return prog, nil
}

// loader type-checks additional packages into a shared universe.
type loader struct {
	fset    *token.FileSet
	checked map[string]*types.Package
	imp     *mixedImporter
}

// check parses and type-checks one package from explicit file paths.
func (ld *loader) check(importPath, dir string, files []string, target bool) (*Package, error) {
	var parsed []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(ld.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("anonlint: %v", err)
		}
		parsed = append(parsed, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: ld.imp}
	tp, err := conf.Check(importPath, ld.fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("anonlint: type-checking %s: %v", importPath, err)
	}
	ld.checked[importPath] = tp
	return &Package{
		Path:   importPath,
		Dir:    dir,
		Files:  parsed,
		Types:  tp,
		Info:   info,
		Target: target,
	}, nil
}

// NewInfo returns a types.Info with every table an analyzer may consult
// allocated. Exported for the analysistest harness, which type-checks
// corpus packages itself.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// mixedImporter resolves module packages from the run's own source-checked
// results and everything else (the standard library) from gc export data.
type mixedImporter struct {
	checked map[string]*types.Package
	gc      types.Importer
}

// NewImporter returns a types.Importer that prefers the source-checked
// packages in checked and falls back to gc export data files (import
// path -> file, as produced by `go list -export`). The analysistest
// harness uses it to type-check corpora against the real repository
// packages.
func NewImporter(fset *token.FileSet, exports map[string]string, checked map[string]*types.Package) types.Importer {
	return newImporter(fset, exports, checked)
}

func newImporter(fset *token.FileSet, exports map[string]string, checked map[string]*types.Package) *mixedImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("anonlint: no export data for %q", path)
		}
		return os.Open(f)
	}
	return &mixedImporter{
		checked: checked,
		gc:      importer.ForCompiler(fset, "gc", lookup),
	}
}

// Import implements types.Importer.
func (m *mixedImporter) Import(path string) (*types.Package, error) {
	if p := m.checked[path]; p != nil {
		return p, nil
	}
	return m.gc.Import(path)
}
