package floatcmp_test

import (
	"testing"

	"anonmix/internal/analysis/analysistest"
	"anonmix/internal/analysis/floatcmp"
)

func TestFloatcmp(t *testing.T) {
	analysistest.Run(t, "testdata/src", floatcmp.Analyzer, "floatcmp")
}
