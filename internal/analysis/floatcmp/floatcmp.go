// Package floatcmp implements the anonlint analyzer that flags exact
// equality between computed floating-point values. The repository's
// agreement contracts are all tolerance-based — exact results match to
// ulps, backends match within confidence intervals — so a raw == between
// two computed float64s is almost always a latent bug: it encodes "these
// two IEEE expressions round identically", which survives only until a
// compiler, an architecture, or an evaluation-order change breaks it.
//
// Flagged: x == y and x != y where both operands have floating-point (or
// complex) type and neither is a constant expression. Comparisons
// against constants (x == 0 guarding a division, ratio != 1 checking a
// sentinel value) are deliberate exactness checks and stay legal, as
// does the NaN self-test x != x. Test files are outside anonlint's scope
// entirely (ulps assertions live there), and a tolerance helper that
// genuinely needs bit equality can carry an
// //anonlint:allow floatcmp(reason) annotation.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"anonmix/internal/analysis/anonlint"
)

// Analyzer is the floatcmp check.
var Analyzer = &anonlint.Analyzer{
	Name: "floatcmp",
	Doc:  "no exact ==/!= between computed floating-point values outside tolerance helpers and tests",
	Run:  run,
}

func run(pass *anonlint.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass, be.X) || !isFloat(pass, be.Y) {
				return true
			}
			if isConst(pass, be.X) || isConst(pass, be.Y) {
				return true
			}
			// x != x (also on field chains like p.LinkLoss) is the
			// portable NaN test.
			if be.Op == token.NEQ && sameRef(pass, be.X, be.Y) {
				return true
			}
			pass.Reportf(be.OpPos,
				"exact %s between computed floats %s and %s: compare against a tolerance (or annotate a deliberate bit-equality check)",
				be.Op, types.ExprString(be.X), types.ExprString(be.Y))
			return true
		})
	}
	return nil
}

func isFloat(pass *anonlint.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

func isConst(pass *anonlint.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// sameRef reports whether both operands are the same side-effect-free
// reference chain: the same variable, or the same field selected from
// the same chain (p.LinkLoss != p.LinkLoss).
func sameRef(pass *anonlint.Pass, x, y ast.Expr) bool {
	x, y = ast.Unparen(x), ast.Unparen(y)
	switch x := x.(type) {
	case *ast.Ident:
		iy, ok := y.(*ast.Ident)
		if !ok {
			return false
		}
		ox, oy := pass.TypesInfo.Uses[x], pass.TypesInfo.Uses[iy]
		return ox != nil && ox == oy
	case *ast.SelectorExpr:
		sy, ok := y.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		ox, oy := pass.TypesInfo.Uses[x.Sel], pass.TypesInfo.Uses[sy.Sel]
		return ox != nil && ox == oy && sameRef(pass, x.X, sy.X)
	}
	return false
}
