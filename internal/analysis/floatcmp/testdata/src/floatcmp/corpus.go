// Package corpus exercises the floatcmp analyzer: exact ==/!= between
// computed floating-point values is flagged; comparisons against
// constants and the NaN self-test are not.
package corpus

import "math"

type Params struct {
	LinkLoss float64
}

func exactEqual(a, b float64) bool {
	return a == b // want `exact == between computed floats a and b`
}

func exactNotEqual(a, b float64) bool {
	return a != b // want `exact != between computed floats a and b`
}

func computedBoth(xs []float64) bool {
	return sum(xs) == math.Sqrt(2) // want `exact == between computed floats`
}

func sum(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}

// Comparing against a constant is a deliberate exactness check.
func zeroGuard(x float64) bool {
	return x == 0
}

func sentinelGuard(ratio float64) bool {
	return ratio != 1.0
}

// The portable NaN self-tests.
func isNaN(x float64) bool {
	return x != x
}

func fieldNaN(p *Params) bool {
	return p.LinkLoss != p.LinkLoss
}

// Integer comparisons are out of scope.
func intEqual(a, b int) bool {
	return a == b
}

// A tolerance helper that genuinely needs bit equality can say so.
func bitIdentical(a, b float64) bool {
	return a == b //anonlint:allow floatcmp(corpus: deliberate bit-identity check)
}
