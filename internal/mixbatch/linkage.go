package mixbatch

import (
	"fmt"
	"math"
	"sort"

	"anonmix/internal/entropy"
	"anonmix/internal/stats"
	"anonmix/internal/trace"
)

// This file quantifies the unlinkability a batching mix adds: how much
// uncertainty an observer of the mix's input and output wires has when
// trying to match departures to arrivals. It complements the
// path-selection analysis of Guan et al.: batching protects against
// traffic correlation on a single node, path selection against route
// tracing across nodes.

// ThresholdLinkageEntropy returns the entropy (bits) of the adversary's
// posterior matching one departure of a threshold mix to its arrivals.
// A uniform shuffle makes every input equally likely for every output
// slot, so the entropy is exactly log2(batch).
func ThresholdLinkageEntropy(batch int) (float64, error) {
	if batch < 1 {
		return 0, fmt.Errorf("%w: batch %d", ErrBadParam, batch)
	}
	return math.Log2(float64(batch)), nil
}

// PoolLinkage summarizes the departure-round behavior of a pool mix.
type PoolLinkage struct {
	// DepartureRoundEntropy is the average entropy (bits) of the
	// distribution of a message's departure round relative to its arrival
	// round. A threshold mix (pool 0) always departs in the arrival round,
	// giving 0; retention spreads departures over later rounds.
	DepartureRoundEntropy float64
	// MeanDelayRounds is the average number of rounds a message is
	// retained beyond its arrival round.
	MeanDelayRounds float64
	// MaxObservedDelay is the largest retention seen in the simulation.
	MaxObservedDelay int
}

// SimulatePoolLinkage measures, by simulation, how a pool mix decorrelates
// departure rounds from arrival rounds: `rounds` batches of `threshold−pool`
// fresh messages are pushed through a pool mix per trial, and the
// departure-round offset of every message is recorded.
func SimulatePoolLinkage(threshold, pool, rounds, trials int, seed int64) (PoolLinkage, error) {
	if rounds < 1 || trials < 1 {
		return PoolLinkage{}, fmt.Errorf("%w: rounds %d, trials %d", ErrBadParam, rounds, trials)
	}
	if threshold < 1 || pool < 0 || pool >= threshold {
		return PoolLinkage{}, fmt.Errorf("%w: threshold %d, pool %d", ErrBadParam, threshold, pool)
	}
	perRound := threshold - pool
	offsets := make(map[int]int) // departure−arrival round → count
	var total, delaySum, maxDelay int
	for tr := 0; tr < trials; tr++ {
		m, err := NewPool(threshold, pool, stats.Fork(seed, int64(tr)).Int63())
		if err != nil {
			return PoolLinkage{}, err
		}
		arrival := make(map[trace.MessageID]int)
		next := 0
		for r := 0; r < rounds; r++ {
			var out []Item
			for i := 0; i < perRound; i++ {
				id := trace.MessageID(next)
				next++
				arrival[id] = r
				batch, err := m.Add(Item{Msg: id})
				if err != nil {
					return PoolLinkage{}, err
				}
				out = append(out, batch...)
			}
			for _, it := range out {
				d := r - arrival[it.Msg]
				offsets[d]++
				total++
				delaySum += d
				if d > maxDelay {
					maxDelay = d
				}
			}
		}
		// Messages still pooled at the end are censored (not counted);
		// they would only lengthen the tail.
		m.Drain()
	}
	if total == 0 {
		return PoolLinkage{}, fmt.Errorf("%w: no departures observed", ErrBadParam)
	}
	// Iterate offsets in sorted order so the floating-point summation in
	// the entropy is deterministic across runs (map order is not).
	keys := make([]int, 0, len(offsets))
	for d := range offsets {
		keys = append(keys, d)
	}
	sort.Ints(keys)
	probs := make([]float64, 0, len(keys))
	for _, d := range keys {
		probs = append(probs, float64(offsets[d])/float64(total))
	}
	return PoolLinkage{
		DepartureRoundEntropy: entropy.Bits(probs),
		MeanDelayRounds:       float64(delaySum) / float64(total),
		MaxObservedDelay:      maxDelay,
	}, nil
}
