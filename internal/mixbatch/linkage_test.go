package mixbatch

import (
	"errors"
	"math"
	"testing"
)

func TestThresholdLinkageEntropy(t *testing.T) {
	if _, err := ThresholdLinkageEntropy(0); !errors.Is(err, ErrBadParam) {
		t.Error("batch=0 accepted")
	}
	for _, c := range []struct {
		batch int
		want  float64
	}{{1, 0}, {2, 1}, {8, 3}, {64, 6}} {
		got, err := ThresholdLinkageEntropy(c.batch)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("batch %d: %v, want %v", c.batch, got, c.want)
		}
	}
}

func TestSimulatePoolLinkageValidation(t *testing.T) {
	if _, err := SimulatePoolLinkage(4, 1, 0, 10, 1); !errors.Is(err, ErrBadParam) {
		t.Error("rounds=0 accepted")
	}
	if _, err := SimulatePoolLinkage(4, 4, 10, 10, 1); !errors.Is(err, ErrBadParam) {
		t.Error("pool=threshold accepted")
	}
	if _, err := SimulatePoolLinkage(0, 0, 10, 10, 1); !errors.Is(err, ErrBadParam) {
		t.Error("threshold=0 accepted")
	}
}

// TestPoolZeroIsThreshold: without retention every message departs in its
// arrival round — zero departure-round entropy and delay.
func TestPoolZeroIsThreshold(t *testing.T) {
	res, err := SimulatePoolLinkage(5, 0, 50, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.DepartureRoundEntropy != 0 {
		t.Errorf("entropy = %v, want 0", res.DepartureRoundEntropy)
	}
	if res.MeanDelayRounds != 0 || res.MaxObservedDelay != 0 {
		t.Errorf("delay = %v / %d, want 0", res.MeanDelayRounds, res.MaxObservedDelay)
	}
}

// TestPoolRetentionAddsUnlinkability: a retained pool spreads departures
// over rounds, and a deeper pool spreads them further.
func TestPoolRetentionAddsUnlinkability(t *testing.T) {
	shallow, err := SimulatePoolLinkage(6, 1, 80, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	deep, err := SimulatePoolLinkage(6, 4, 80, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !(shallow.DepartureRoundEntropy > 0) {
		t.Errorf("shallow pool entropy = %v, want > 0", shallow.DepartureRoundEntropy)
	}
	if !(deep.DepartureRoundEntropy > shallow.DepartureRoundEntropy) {
		t.Errorf("deeper pool should spread more: %v vs %v",
			deep.DepartureRoundEntropy, shallow.DepartureRoundEntropy)
	}
	if !(deep.MeanDelayRounds > shallow.MeanDelayRounds) {
		t.Errorf("deeper pool should delay more: %v vs %v",
			deep.MeanDelayRounds, shallow.MeanDelayRounds)
	}
	if deep.MaxObservedDelay <= shallow.MaxObservedDelay {
		t.Errorf("deeper pool max delay %d vs shallow %d",
			deep.MaxObservedDelay, shallow.MaxObservedDelay)
	}
}

// TestPoolLinkageDeterministic: same seed, same result.
func TestPoolLinkageDeterministic(t *testing.T) {
	a, err := SimulatePoolLinkage(5, 2, 40, 10, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulatePoolLinkage(5, 2, 40, 10, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}
