package mixbatch

import (
	"errors"
	"math"
	"testing"

	"anonmix/internal/trace"
)

func item(id int) Item {
	return Item{Msg: trace.MessageID(id), Next: trace.NodeID(id % 5)}
}

func TestThresholdValidation(t *testing.T) {
	if _, err := NewThreshold(0, 1); !errors.Is(err, ErrBadParam) {
		t.Errorf("b=0 err = %v", err)
	}
}

func TestThresholdFlushSemantics(t *testing.T) {
	m, err := NewThreshold(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		out, err := m.Add(item(i))
		if err != nil {
			t.Fatal(err)
		}
		if out != nil {
			t.Fatalf("flushed early at %d", i)
		}
	}
	if m.Pending() != 2 {
		t.Errorf("pending = %d", m.Pending())
	}
	out, err := m.Add(item(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("batch size = %d", len(out))
	}
	if m.Pending() != 0 {
		t.Errorf("pending after flush = %d", m.Pending())
	}
	// All three messages present exactly once.
	seen := map[trace.MessageID]bool{}
	for _, it := range out {
		if seen[it.Msg] {
			t.Errorf("duplicate %d in batch", it.Msg)
		}
		seen[it.Msg] = true
	}
	for i := 1; i <= 3; i++ {
		if !seen[trace.MessageID(i)] {
			t.Errorf("message %d missing from batch", i)
		}
	}
}

func TestThresholdDuplicateDiscard(t *testing.T) {
	m, err := NewThreshold(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Add(item(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Add(item(7)); !errors.Is(err, ErrDuplicate) {
		t.Errorf("replay err = %v", err)
	}
	if m.Pending() != 1 {
		t.Errorf("pending = %d after replay", m.Pending())
	}
	// Replay detection persists across flushes (Chaum: discard repeats).
	m2, err := NewThreshold(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Add(item(9)); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Add(item(9)); !errors.Is(err, ErrDuplicate) {
		t.Errorf("post-flush replay err = %v", err)
	}
}

func TestThresholdForceFlush(t *testing.T) {
	m, err := NewThreshold(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := m.Add(item(i)); err != nil {
			t.Fatal(err)
		}
	}
	out := m.Flush()
	if len(out) != 4 || m.Pending() != 0 {
		t.Errorf("force flush: %d items, %d pending", len(out), m.Pending())
	}
	if m.Flush() != nil {
		t.Error("flush of empty mix should be nil")
	}
}

// TestThresholdShuffleUniform: over many batches, each message should land
// in each output slot with roughly equal frequency (the mix's whole point:
// output order unpredictable from input order).
func TestThresholdShuffleUniform(t *testing.T) {
	const batch = 4
	const rounds = 20000
	counts := [batch][batch]int{} // counts[inputPos][outputPos]
	m, err := NewThreshold(batch, 42)
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	for r := 0; r < rounds; r++ {
		var out []Item
		base := next
		for i := 0; i < batch; i++ {
			var err error
			out, err = m.Add(item(next))
			if err != nil {
				t.Fatal(err)
			}
			next++
		}
		for pos, it := range out {
			counts[int(it.Msg)-base][pos]++
		}
	}
	want := float64(rounds) / batch
	for in := 0; in < batch; in++ {
		for outPos := 0; outPos < batch; outPos++ {
			got := float64(counts[in][outPos])
			if math.Abs(got-want) > 6*math.Sqrt(want) {
				t.Errorf("input %d → slot %d: %v times, want ≈%v", in, outPos, got, want)
			}
		}
	}
}

func TestPoolValidation(t *testing.T) {
	for _, c := range []struct{ th, pool int }{{0, 0}, {3, 3}, {3, 4}, {2, -1}} {
		if _, err := NewPool(c.th, c.pool, 1); !errors.Is(err, ErrBadParam) {
			t.Errorf("threshold=%d pool=%d err = %v", c.th, c.pool, err)
		}
	}
}

func TestPoolRetains(t *testing.T) {
	m, err := NewPool(4, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	var out []Item
	for i := 0; i < 4; i++ {
		out, err = m.Add(item(i))
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(out) != 3 {
		t.Fatalf("pool mix emitted %d, want 3", len(out))
	}
	if m.Pending() != 1 {
		t.Errorf("pool retains %d, want 1", m.Pending())
	}
	if _, err := m.Add(item(1)); !errors.Is(err, ErrDuplicate) {
		t.Errorf("pool replay err = %v", err)
	}
	drained := m.Drain()
	if len(drained) != 1 || m.Pending() != 0 {
		t.Errorf("drain: %d items, %d pending", len(drained), m.Pending())
	}
}

// TestPoolEventuallyEmitsEverything: with retention, a message may linger,
// but over many rounds every message must eventually leave.
func TestPoolEventuallyEmitsEverything(t *testing.T) {
	m, err := NewPool(3, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	emitted := map[trace.MessageID]bool{}
	id := 0
	for r := 0; r < 300; r++ {
		for {
			out, err := m.Add(item(id))
			id++
			if err != nil {
				t.Fatal(err)
			}
			if out != nil {
				for _, it := range out {
					if emitted[it.Msg] {
						t.Fatalf("message %d emitted twice", it.Msg)
					}
					emitted[it.Msg] = true
				}
				break
			}
		}
	}
	for _, it := range m.Drain() {
		emitted[it.Msg] = true
	}
	for i := 0; i < id; i++ {
		if !emitted[trace.MessageID(i)] {
			t.Errorf("message %d never emitted", i)
		}
	}
}
