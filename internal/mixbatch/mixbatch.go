// Package mixbatch implements the store-and-forward batching behavior of a
// Chaum mix as described in §2 of Guan et al.: a mix "accepts a number of
// fixed-length messages from different sources, discards repeats, performs
// a cryptographic transformation, and outputs the messages in an order not
// predictable from the order of inputs".
//
// Two flushing disciplines are provided: the threshold mix (flush all when
// B messages have accumulated) and the pool mix (flush all but a retained
// random pool). Both shuffle uniformly with a seeded generator.
package mixbatch

import (
	"errors"
	"fmt"
	"math/rand"

	"anonmix/internal/stats"
	"anonmix/internal/trace"
)

// Errors returned by mixes.
var (
	// ErrBadParam reports an invalid mix parameter.
	ErrBadParam = errors.New("mixbatch: invalid parameter")
	// ErrDuplicate reports a replayed message, which a Chaum mix discards
	// to defeat replay attacks.
	ErrDuplicate = errors.New("mixbatch: duplicate message discarded")
)

// Item is one message held by a mix.
type Item struct {
	// Msg identifies the message (used for duplicate discard).
	Msg trace.MessageID
	// Next is the onward destination once flushed.
	Next trace.NodeID
	// Payload is the (fixed-length, already re-encrypted) body.
	Payload []byte
}

// Threshold is a threshold mix: it buffers items and flushes the whole
// batch, uniformly shuffled, as soon as the threshold is reached.
// Not safe for concurrent use; wrap with a mutex or confine to one
// goroutine (the testbed confines each node to its own goroutine).
type Threshold struct {
	threshold int
	rng       *rand.Rand
	buf       []Item
	seen      map[trace.MessageID]bool
}

// NewThreshold returns a threshold mix flushing every b ≥ 1 messages.
func NewThreshold(b int, seed int64) (*Threshold, error) {
	if b < 1 {
		return nil, fmt.Errorf("%w: threshold %d", ErrBadParam, b)
	}
	return &Threshold{
		threshold: b,
		rng:       stats.NewRand(seed),
		seen:      make(map[trace.MessageID]bool),
	}, nil
}

// Add accepts a message. When the threshold is reached it returns the
// shuffled batch (and retains nothing); otherwise it returns nil.
// Replayed message IDs are rejected with ErrDuplicate.
func (m *Threshold) Add(it Item) ([]Item, error) {
	if m.seen[it.Msg] {
		return nil, fmt.Errorf("%w: %d", ErrDuplicate, it.Msg)
	}
	m.seen[it.Msg] = true
	m.buf = append(m.buf, it)
	if len(m.buf) < m.threshold {
		return nil, nil
	}
	return m.flush(len(m.buf)), nil
}

// Pending returns the number of buffered messages.
func (m *Threshold) Pending() int { return len(m.buf) }

// Flush forces out everything currently buffered, shuffled.
func (m *Threshold) Flush() []Item {
	return m.flush(len(m.buf))
}

// flush removes and returns n items, uniformly shuffled.
func (m *Threshold) flush(n int) []Item {
	if n == 0 {
		return nil
	}
	m.rng.Shuffle(len(m.buf), func(i, j int) {
		m.buf[i], m.buf[j] = m.buf[j], m.buf[i]
	})
	out := append([]Item(nil), m.buf[:n]...)
	m.buf = m.buf[:copy(m.buf, m.buf[n:])]
	return out
}

// Pool is a pool mix: on every flush trigger it keeps a uniformly random
// retained pool of the configured size and emits the rest, shuffled.
// Retention decorrelates arrival and departure batches across rounds.
type Pool struct {
	threshold int
	pool      int
	rng       *rand.Rand
	buf       []Item
	seen      map[trace.MessageID]bool
}

// NewPool returns a pool mix that triggers when threshold messages are
// buffered and always retains pool of them (pool < threshold).
func NewPool(threshold, pool int, seed int64) (*Pool, error) {
	if threshold < 1 || pool < 0 || pool >= threshold {
		return nil, fmt.Errorf("%w: threshold %d, pool %d", ErrBadParam, threshold, pool)
	}
	return &Pool{
		threshold: threshold,
		pool:      pool,
		rng:       stats.NewRand(seed),
		seen:      make(map[trace.MessageID]bool),
	}, nil
}

// Add accepts a message; when the buffer reaches the threshold it emits
// the batch minus a random retained pool.
func (m *Pool) Add(it Item) ([]Item, error) {
	if m.seen[it.Msg] {
		return nil, fmt.Errorf("%w: %d", ErrDuplicate, it.Msg)
	}
	m.seen[it.Msg] = true
	m.buf = append(m.buf, it)
	if len(m.buf) < m.threshold {
		return nil, nil
	}
	// Shuffle, keep the first `pool` items, emit the rest.
	m.rng.Shuffle(len(m.buf), func(i, j int) {
		m.buf[i], m.buf[j] = m.buf[j], m.buf[i]
	})
	out := append([]Item(nil), m.buf[m.pool:]...)
	m.buf = m.buf[:m.pool]
	return out, nil
}

// Pending returns the number of buffered messages (including the pool).
func (m *Pool) Pending() int { return len(m.buf) }

// Drain empties the mix completely (end of session), shuffled.
func (m *Pool) Drain() []Item {
	m.rng.Shuffle(len(m.buf), func(i, j int) {
		m.buf[i], m.buf[j] = m.buf[j], m.buf[i]
	})
	out := append([]Item(nil), m.buf...)
	m.buf = m.buf[:0]
	return out
}
