// Package pool provides the process-wide bounded worker pool used by every
// fan-out loop in the analysis stack: class-statistics enumeration in
// events, per-point series generation in figures, restart batches in
// optimize, and sampling workers in montecarlo.
//
// The pool is deliberately minimal: ForEach runs n indexed tasks, the
// calling goroutine always participates (so a fully busy pool degrades to
// inline serial execution instead of deadlocking, even for nested
// ForEach calls), and at most Workers()-1 helper goroutines are recruited
// process-wide from a shared semaphore. Results are deterministic as long
// as task i writes only to slot i of its output — every call site in this
// repository follows that discipline, which is what makes the parallel
// figure generators byte-identical to their serial versions.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

var (
	mu      sync.Mutex
	workers = runtime.GOMAXPROCS(0)
	// helpers is the shared recruitment semaphore: capacity workers-1, so
	// the total number of goroutines executing tasks (helpers + all
	// participating callers) stays near the configured width.
	helpers = make(chan struct{}, max(0, workers-1))
)

// Workers returns the configured pool width (the target number of
// concurrently executing tasks).
func Workers() int {
	mu.Lock()
	defer mu.Unlock()
	return workers
}

// SetWorkers sets the pool width and returns the previous value. Width 1
// makes every ForEach run inline on the caller (the serial reference
// path); values below 1 are clamped to 1. Tests use this to compare
// parallel and serial outputs and to force concurrency on small machines.
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	mu.Lock()
	defer mu.Unlock()
	prev := workers
	workers = n
	helpers = make(chan struct{}, n-1)
	return prev
}

// ForEach runs fn(0), ..., fn(n-1), recruiting up to Workers()-1 helper
// goroutines from the shared pool; the caller always participates. It
// returns when every task has finished. A panic in any task is re-raised
// on the calling goroutine after the remaining tasks drain.
func ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	mu.Lock()
	sem := helpers
	mu.Unlock()
	var next atomic.Int64
	var panicked atomic.Value
	work := func() {
		defer func() {
			if r := recover(); r != nil {
				panicked.CompareAndSwap(nil, r)
				// Drain the remaining indices so sibling workers and the
				// caller are not left waiting on work that will never
				// finish; they observe the panic flag and stop.
				next.Store(int64(n))
			}
		}()
		for panicked.Load() == nil {
			i := int(next.Add(1) - 1)
			if i >= n {
				return
			}
			fn(i)
		}
	}

	var wg sync.WaitGroup
recruit:
	for spawned := 1; spawned < n; spawned++ {
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() { <-sem; wg.Done() }()
				work()
			}()
		default:
			break recruit // pool saturated: the caller works alone from here
		}
	}
	work()
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(r)
	}
}

// Map runs fn over n indices and collects the results in order. It is the
// deterministic fan-out primitive used by the figure generators: out[i]
// depends only on i, never on scheduling.
func Map[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, func(i int) { out[i] = fn(i) })
	return out
}

// MapErr runs fn over n indices, collecting results in order. If any task
// fails it returns the error with the lowest index, matching the error a
// serial loop would have hit first.
func MapErr[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForEach(n, func(i int) { out[i], errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
