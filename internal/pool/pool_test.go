package pool

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		prev := SetWorkers(workers)
		for _, n := range []int{0, 1, 5, 100, 1000} {
			hits := make([]atomic.Int32, n)
			ForEach(n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
		SetWorkers(prev)
	}
}

func TestSetWorkersClampsAndRestores(t *testing.T) {
	prev := SetWorkers(3)
	if Workers() != 3 {
		t.Errorf("Workers = %d, want 3", Workers())
	}
	if got := SetWorkers(-5); got != 3 {
		t.Errorf("SetWorkers returned %d, want 3", got)
	}
	if Workers() != 1 {
		t.Errorf("negative width not clamped: %d", Workers())
	}
	SetWorkers(prev)
}

func TestMapOrdering(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	out := Map(257, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	errA := errors.New("a")
	errB := errors.New("b")
	_, err := MapErr(100, func(i int) (int, error) {
		switch i {
		case 7:
			return 0, errB
		case 3:
			return 0, errA
		}
		return i, nil
	})
	if !errors.Is(err, errA) {
		t.Errorf("err = %v, want the lowest-index error %v", err, errA)
	}
	out, err := MapErr(10, func(i int) (int, error) { return i, nil })
	if err != nil || len(out) != 10 {
		t.Errorf("clean MapErr: %v, %v", out, err)
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	defer func() {
		if r := recover(); r != "boom" {
			t.Errorf("recovered %v, want boom", r)
		}
	}()
	ForEach(64, func(i int) {
		if i == 10 {
			panic("boom")
		}
	})
	t.Error("ForEach returned after a task panicked")
}

// TestNestedForEach verifies that a saturated pool degrades to inline
// execution instead of deadlocking when tasks fan out again.
func TestNestedForEach(t *testing.T) {
	prev := SetWorkers(2)
	defer SetWorkers(prev)
	var total atomic.Int64
	ForEach(8, func(i int) {
		ForEach(8, func(j int) {
			total.Add(1)
		})
	})
	if total.Load() != 64 {
		t.Errorf("nested tasks ran %d times, want 64", total.Load())
	}
}
