package anond

// Per-client token-bucket rate limiting. Each client (keyed by remote
// host) owns a bucket of Burst tokens refilled at Rate tokens/second;
// a compute request spends one token, and an empty bucket answers 429
// with a Retry-After hint. The clock is injectable so tests control
// refill deterministically.

import (
	"math"
	"sync"
	"time"
)

// bucket is one client's token balance at its last refill instant.
type bucket struct {
	tokens float64
	last   time.Time
}

// limiter is a per-client token bucket. A nil limiter allows everything.
type limiter struct {
	rate  float64 // tokens per second
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

func newLimiter(rate, burst float64, now func() time.Time) *limiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	if now == nil {
		now = time.Now
	}
	return &limiter{rate: rate, burst: burst, now: now, buckets: map[string]*bucket{}}
}

// allow spends one token from client's bucket. When the bucket is empty
// it reports false together with the wait until the next token accrues.
func (l *limiter) allow(client string) (ok bool, retryAfter time.Duration) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	t := l.now()
	b := l.buckets[client]
	if b == nil {
		l.prune()
		b = &bucket{tokens: l.burst, last: t}
		l.buckets[client] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+t.Sub(b.last).Seconds()*l.rate)
		b.last = t
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// prune caps the map's footprint against client-address churn by
// dropping buckets that have refilled to full — forgetting one of those
// is observationally identical to a fresh client.
func (l *limiter) prune() {
	const maxClients = 4096
	if len(l.buckets) < maxClients {
		return
	}
	t := l.now()
	for client, b := range l.buckets {
		if math.Min(l.burst, b.tokens+t.Sub(b.last).Seconds()*l.rate) >= l.burst {
			delete(l.buckets, client)
		}
	}
}
