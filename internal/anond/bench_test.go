package anond

// Daemon throughput over a real socket: requests per second at 1, 8, and
// 64 concurrent clients, for a cache-hit exact scenario (measures the
// HTTP + coalescing overhead floor) and a real Monte-Carlo run (measures
// how sampling work shares the machine). Deliberately NOT in the
// Makefile SMOKE set — socket benchmarks on shared CI runners are noise;
// run them locally via `go test ./internal/anond -bench ServeScenario`.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

const (
	benchExactBody = `{"n":100,"compromised":1,"strategy":"uniform:1,5"}`
	benchMCBody    = `{"n":100,"compromised":5,"backend":"mc","strategy":"uniform:1,5","messages":20000,"seed":7}`
)

func benchServe(b *testing.B, body string, clients int) {
	b.Helper()
	srv := New(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	do := func() error {
		resp, err := http.Post(ts.URL+"/v1/scenario", "application/json", strings.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}
	// Warm the engine cache and the connection pool so the loop measures
	// steady-state service, not first-build cost.
	if err := do(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for range clients {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next.Add(1) <= int64(b.N) {
				if err := do(); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

func BenchmarkServeScenarioExactCached(b *testing.B) {
	for _, clients := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			benchServe(b, benchExactBody, clients)
		})
	}
}

func BenchmarkServeScenarioMC(b *testing.B) {
	for _, clients := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			benchServe(b, benchMCBody, clients)
		})
	}
}
