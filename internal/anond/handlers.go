package anond

// Endpoint handlers. Compute endpoints share one shape: decode strictly,
// materialize the domain config (failures answer 400 through the shared
// classifier), fingerprint, and run through the single-flight group under
// the request's context. ?stream=1 switches /v1/scenario and
// /v1/degradation to NDJSON: progress lines while the backend runs, then
// one terminal result or error line.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"anonmix/internal/scenario"
)

// decodeRequest strictly decodes a JSON body into v. Unknown fields and
// malformed JSON wrap scenario.ErrBadConfig: a body the daemon cannot
// interpret can never succeed as written.
func decodeRequest(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: request body: %w", scenario.ErrBadConfig, err)
	}
	return nil
}

// answer writes a computed (value, error) pair and reports the status
// for metrics.
func answer(w http.ResponseWriter, val any, err error) int {
	if err != nil {
		status := statusFor(err)
		if status == statusClientClosedRequest {
			// The client is gone; the write below is best-effort and the
			// status feeds only the daemon's own accounting.
			return status
		}
		writeError(w, status, errorBody(err))
		return status
	}
	writeJSON(w, http.StatusOK, val)
	return http.StatusOK
}

// runScenario executes a scenario request through the coalescing group
// (or streams it), shared by the scenario and degradation endpoints.
func (s *Server) runScenario(w http.ResponseWriter, r *http.Request, endpoint string, req *ScenarioRequest) (int, bool) {
	cfg, err := req.config()
	if err != nil {
		return answer(w, nil, err), false
	}
	if r.URL.Query().Get("stream") == "1" {
		return s.streamScenario(w, r, cfg), false
	}
	key, err := flightKey(endpoint, req)
	if err != nil {
		return answer(w, nil, err), false
	}
	val, err, shared := s.group.do(r.Context(), key, func(ctx context.Context) (any, error) {
		res, err := scenario.RunContext(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return scenarioResponse(res), nil
	})
	if err == nil && shared {
		resp := *val.(*ScenarioResponse)
		resp.Coalesced = true
		return answer(w, &resp, nil), true
	}
	return answer(w, val, err), shared
}

func (s *Server) handleScenario(w http.ResponseWriter, r *http.Request) (int, bool) {
	var req ScenarioRequest
	if err := decodeRequest(r, &req); err != nil {
		return answer(w, nil, err), false
	}
	return s.runScenario(w, r, "scenario", &req)
}

// handleDegradation serves the repeated-communication analysis: the same
// wire form as /v1/scenario, but the workload must actually degrade
// (rounds > 1 or confidence tracking) so the endpoint's contract — a
// response carrying the H_1..H_k curve — holds.
func (s *Server) handleDegradation(w http.ResponseWriter, r *http.Request) (int, bool) {
	var req ScenarioRequest
	if err := decodeRequest(r, &req); err != nil {
		return answer(w, nil, err), false
	}
	if req.Rounds <= 1 && req.Confidence <= 0 && !timelineRounds(req.Timeline) {
		err := fmt.Errorf("%w: /v1/degradation requires rounds > 1, confidence > 0, or a rounds timeline (use /v1/scenario for single-shot runs)", scenario.ErrBadConfig)
		return answer(w, nil, err), false
	}
	return s.runScenario(w, r, "degradation", &req)
}

// timelineRounds reports whether a timeline spec declares per-epoch
// rounds (a degradation timeline). Parse failures answer false here and
// surface properly from config().
func timelineRounds(spec string) bool {
	if spec == "" {
		return false
	}
	timeline, err := scenario.ParseTimeline(spec)
	if err != nil {
		return false
	}
	for _, ep := range timeline {
		if ep.Rounds > 0 {
			return true
		}
	}
	return false
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) (int, bool) {
	var req OptimizeRequest
	if err := decodeRequest(r, &req); err != nil {
		return answer(w, nil, err), false
	}
	key, err := flightKey("optimize", &req)
	if err != nil {
		return answer(w, nil, err), false
	}
	// The solvers are not context-aware; the flight still detaches them
	// from any single client so a disconnect never aborts a solve another
	// waiter shares.
	val, err, shared := s.group.do(r.Context(), key, func(context.Context) (any, error) {
		return req.solve()
	})
	if err == nil && shared {
		resp := *val.(*OptimizeResponse)
		resp.Coalesced = true
		return answer(w, &resp, nil), true
	}
	return answer(w, val, err), shared
}

// streamLine is one NDJSON line of a streaming response: exactly one of
// the fields is set, and the stream ends with a result or error line.
type streamLine struct {
	Progress *ProgressLine     `json:"progress,omitempty"`
	Result   *ScenarioResponse `json:"result,omitempty"`
	Error    *ErrorBody        `json:"error,omitempty"`
}

// ProgressLine is a coarse progress report: completed work units out of
// the total, plus the finished epoch's partial result on timeline phase
// boundaries.
type ProgressLine struct {
	Done  int            `json:"done"`
	Total int            `json:"total"`
	Epoch *EpochResponse `json:"epoch,omitempty"`
}

// streamScenario runs cfg with progress streaming. Streaming requests
// bypass the coalescing group — every stream needs its own feed — and
// report HTTP 200 at the first byte; failures after that arrive in-band
// as a terminal error line.
func (s *Server) streamScenario(w http.ResponseWriter, r *http.Request, cfg scenario.Config) int {
	flusher, ok := w.(http.Flusher)
	if !ok {
		err := fmt.Errorf("anond: response writer cannot stream")
		writeError(w, http.StatusInternalServerError, errorBody(err))
		return http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	enc := json.NewEncoder(w)

	// The backend invokes Progress from worker goroutines and requires it
	// to return quickly; the callback therefore only posts into a buffered
	// channel (dropping when the writer lags — progress is coarse and
	// cumulative, so a dropped line costs nothing) and this handler
	// goroutine owns the connection.
	progress := make(chan scenario.Progress, 64)
	cfg.Progress = func(p scenario.Progress) {
		select {
		case progress <- p:
		default:
		}
	}
	type outcome struct {
		res scenario.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := scenario.RunContext(r.Context(), cfg)
		done <- outcome{res, err}
	}()
	for {
		select {
		case p := <-progress:
			if err := enc.Encode(progressLine(p)); err != nil {
				// Client gone; the backend aborts via r.Context().
				<-done
				return statusClientClosedRequest
			}
			flusher.Flush()
		case out := <-done:
			// Every Progress callback happened before RunContext returned;
			// drain what is still buffered so fast runs (e.g. exact
			// timelines) don't lose their phase lines to the select race.
			for drained := false; !drained; {
				select {
				case p := <-progress:
					if err := enc.Encode(progressLine(p)); err != nil {
						return statusClientClosedRequest
					}
				default:
					drained = true
				}
			}
			status := http.StatusOK
			if out.err != nil {
				status = statusFor(out.err)
				if status == statusClientClosedRequest {
					return status
				}
				body := errorBody(out.err)
				_ = enc.Encode(streamLine{Error: &body})
			} else {
				_ = enc.Encode(streamLine{Result: scenarioResponse(out.res)})
			}
			flusher.Flush()
			return status
		}
	}
}

// progressLine converts a backend progress callback to its stream line.
func progressLine(p scenario.Progress) streamLine {
	line := streamLine{Progress: &ProgressLine{Done: p.Done, Total: p.Total}}
	if p.Epoch != nil {
		line.Progress.Epoch = &EpochResponse{
			Index: p.Epoch.Index, N: p.Epoch.N, C: p.Epoch.C,
			Messages: p.Epoch.Messages, Rounds: p.Epoch.Rounds, H: p.Epoch.H,
		}
	}
	return line
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.snapshot())
}

// HealthResponse is the /v1/health document.
type HealthResponse struct {
	Status string `json:"status"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, HealthResponse{Status: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok"})
}
