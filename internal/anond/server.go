package anond

// The daemon's HTTP surface: routing, the compute-request middleware
// (drain gate → rate limit → in-flight accounting), and graceful drain.
// Compute handlers run the scenario/optimizer layers under the request's
// context, so a disconnected client cancels its run at the backends'
// next checkpoint; Drain lets the process finish what it accepted.

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Options configures a Server. The zero value serves unthrottled with a
// 1 MiB body cap.
type Options struct {
	// RatePerSecond is each client's sustained compute-request budget;
	// 0 disables rate limiting.
	RatePerSecond float64
	// Burst is the bucket depth (instantaneous overdraft); values < 1
	// are raised to 1.
	Burst float64
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// Now injects a clock for tests (default time.Now).
	Now func() time.Time
}

// Server is the anonymity-as-a-service daemon. It implements
// http.Handler; cmd/anond mounts it on an http.Server, tests mount it on
// httptest.
type Server struct {
	opts    Options
	mux     *http.ServeMux
	group   *group
	limiter *limiter
	metrics *metrics

	// drainMu guards the accept/in-flight handshake: a request is either
	// rejected as draining or counted before Drain starts waiting.
	drainMu  sync.Mutex
	draining bool
	inFlight int
	idle     chan struct{}
}

// New builds a Server with its routes registered.
func New(opts Options) *Server {
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 1 << 20
	}
	s := &Server{
		opts:    opts,
		mux:     http.NewServeMux(),
		group:   newGroup(),
		limiter: newLimiter(opts.RatePerSecond, opts.Burst, opts.Now),
		metrics: newMetrics(opts.Now),
	}
	s.mux.HandleFunc("POST /v1/scenario", s.compute("scenario", s.handleScenario))
	s.mux.HandleFunc("POST /v1/degradation", s.compute("degradation", s.handleDegradation))
	s.mux.HandleFunc("POST /v1/optimize", s.compute("optimize", s.handleOptimize))
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/health", s.handleHealth)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Metrics snapshots the daemon counters (the same document /v1/metrics
// serves); cmd/anond flushes it on shutdown.
func (s *Server) Metrics() MetricsResponse { return s.metrics.snapshot() }

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	return s.draining
}

// Drain stops accepting compute requests (they answer 503, and health
// flips to draining) and blocks until every in-flight request completes
// or ctx fires. It is the handler-level half of graceful shutdown; the
// socket-level half is http.Server.Shutdown.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining = true
	if s.inFlight == 0 {
		s.drainMu.Unlock()
		return nil
	}
	if s.idle == nil {
		s.idle = make(chan struct{})
	}
	idle := s.idle
	s.drainMu.Unlock()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// enter admits one compute request unless the server is draining.
func (s *Server) enter() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining {
		return false
	}
	s.inFlight++
	return true
}

func (s *Server) exit() {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	s.inFlight--
	if s.inFlight == 0 && s.idle != nil {
		close(s.idle)
		s.idle = nil
	}
}

// computeHandler is an endpoint handler that reports the status it
// answered and whether the response joined a coalesced flight.
type computeHandler func(w http.ResponseWriter, r *http.Request) (status int, coalesced bool)

// compute wraps a handler with the daemon middleware: drain gate, per-
// client token bucket, body cap, and metrics accounting.
func (s *Server) compute(endpoint string, h computeHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.request(endpoint)
		if !s.enter() {
			writeError(w, http.StatusServiceUnavailable, ErrorBody{
				Error: "anond: draining, not accepting new work", Class: "draining",
			})
			s.metrics.response(http.StatusServiceUnavailable, false)
			return
		}
		defer s.exit()
		if ok, retry := s.limiter.allow(clientKey(r)); !ok {
			w.Header().Set("Retry-After", strconv.Itoa(int(retry.Seconds()+1)))
			writeError(w, http.StatusTooManyRequests, ErrorBody{
				Error: "anond: client request rate exceeded", Class: "rate_limited",
			})
			s.metrics.response(http.StatusTooManyRequests, false)
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
		status, coalesced := h(w, r)
		s.metrics.response(status, coalesced)
	}
}

// clientKey identifies a client for rate limiting: the remote host
// without the ephemeral port.
func clientKey(r *http.Request) string {
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// writeJSON answers status with a JSON document.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the client is gone if this fails; nothing to do
}

func writeError(w http.ResponseWriter, status int, body ErrorBody) {
	writeJSON(w, status, body)
}
