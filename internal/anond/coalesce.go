package anond

// Single-flight request coalescing. N clients POSTing byte-identical
// configurations concurrently should cost one backend run, not N: the
// first request becomes the flight's leader, later ones join as waiters,
// and all of them receive the one result. The computation runs on a
// context detached from any single client — it is canceled only when the
// *last* waiter disconnects, so one impatient client cannot abort work
// another client is still waiting for.
//
// Coalescing is deduplication of in-flight work only; completed flights
// are forgotten immediately (result caching is the engine LRU's job, and
// sampled results are deterministic in the seed anyway). Streaming
// requests bypass the group entirely — each needs its own progress feed.

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sync"
)

// flightKey fingerprints a request: the endpoint name plus the canonical
// re-marshaled form of the decoded request struct. Marshaling the typed
// struct (not the raw body) normalizes field order, whitespace, and
// default values, so two syntactically different bodies describing the
// same configuration coalesce.
func flightKey(endpoint string, req any) ([sha256.Size]byte, error) {
	canonical, err := json.Marshal(req)
	if err != nil {
		return [sha256.Size]byte{}, fmt.Errorf("canonicalize %s request: %w", endpoint, err)
	}
	h := sha256.New()
	h.Write([]byte(endpoint))
	h.Write([]byte{0})
	h.Write(canonical)
	var key [sha256.Size]byte
	copy(key[:], h.Sum(nil))
	return key, nil
}

// flight is one in-flight computation with its waiter refcount.
type flight struct {
	done   chan struct{}
	cancel context.CancelFunc
	refs   int
	val    any
	err    error
}

// group coalesces concurrent calls by key.
type group struct {
	mu      sync.Mutex
	flights map[[sha256.Size]byte]*flight
}

func newGroup() *group {
	return &group{flights: map[[sha256.Size]byte]*flight{}}
}

// do returns fn's result for key, starting fn only if no identical call
// is already in flight. fn receives a context that outlives any single
// caller and is canceled when every waiter has abandoned the flight.
// shared reports whether this caller joined an existing flight. A caller
// whose ctx fires before the flight completes gets ctx.Err().
func (g *group) do(ctx context.Context, key [sha256.Size]byte, fn func(context.Context) (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if f, ok := g.flights[key]; ok {
		f.refs++
		g.mu.Unlock()
		v, e := g.wait(ctx, f)
		return v, e, true
	}
	runCtx, cancel := context.WithCancel(context.Background())
	f := &flight{done: make(chan struct{}), cancel: cancel, refs: 1}
	g.flights[key] = f
	g.mu.Unlock()
	go func() {
		f.val, f.err = fn(runCtx)
		g.mu.Lock()
		// Forget the flight before publishing: a request arriving after
		// this point starts fresh rather than receiving a stale result.
		delete(g.flights, key)
		g.mu.Unlock()
		close(f.done)
		cancel()
	}()
	v, e := g.wait(ctx, f)
	return v, e, false
}

// wait blocks until the flight completes or the caller's context fires.
// A departing caller decrements the refcount; the last one out cancels
// the computation.
func (g *group) wait(ctx context.Context, f *flight) (any, error) {
	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		g.mu.Lock()
		f.refs--
		abandoned := f.refs == 0
		g.mu.Unlock()
		if abandoned {
			f.cancel()
		}
		return nil, ctx.Err()
	}
}
