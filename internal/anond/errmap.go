package anond

// HTTP status mapping. The daemon reuses the CLIs' error classification
// (scenario.Classify) so "what kind of failure is this" is decided in
// exactly one place; the only daemon-local extension is the optimizer's
// problem sentinels, which — like anonopt's exit code 2 — are
// configuration errors: the problem was assembled verbatim from the
// request body.

import (
	"errors"
	"net/http"

	"anonmix/internal/optimize"
	"anonmix/internal/scenario"
)

// statusClientClosedRequest is the de-facto (nginx) status for a request
// whose client disconnected before the answer existed. The response is
// never seen; the status only feeds the daemon's own metrics and logs.
const statusClientClosedRequest = 499

// statusFor maps a handler failure to its HTTP status: 400 for
// configurations that can never succeed as written, 422 for well-formed
// scenarios this backend cannot express (switch backends and retry), 499
// for canceled runs, 500 for everything else.
func statusFor(err error) int {
	if errors.Is(err, optimize.ErrBadProblem) || errors.Is(err, optimize.ErrInfeasible) {
		return http.StatusBadRequest
	}
	switch scenario.Classify(err) {
	case scenario.ClassBadConfig:
		return http.StatusBadRequest
	case scenario.ClassCapability:
		return http.StatusUnprocessableEntity
	case scenario.ClassCanceled:
		return statusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}
