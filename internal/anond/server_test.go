package anond

// End-to-end tests over httptest: every /v1 endpoint's success and
// failure statuses, request coalescing against the engine cache, client
// disconnection, and graceful drain. The tests share the process-wide
// engine cache, so none of them run in parallel.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"anonmix/internal/scenario"
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(opts)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// post sends a JSON body and decodes the JSON answer into out.
func post(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp.StatusCode
}

func TestScenarioEndpointGolden(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name string
		body string
		cfg  scenario.Config
	}{
		{
			name: "exact",
			body: `{"n":60,"compromised":4,"strategy":"uniform:1,5"}`,
			cfg: scenario.Config{N: 60, StrategySpec: "uniform:1,5",
				Adversary: scenario.Adversary{Count: 4}},
		},
		{
			name: "montecarlo",
			body: `{"n":60,"compromised":4,"backend":"mc","strategy":"uniform:1,5","messages":5000,"seed":9}`,
			cfg: scenario.Config{N: 60, Backend: scenario.BackendMonteCarlo,
				StrategySpec: "uniform:1,5", Adversary: scenario.Adversary{Count: 4},
				Workload: scenario.Workload{Messages: 5000, Seed: 9}},
		},
		{
			name: "testbed",
			body: `{"n":60,"compromised":4,"backend":"testbed","strategy":"uniform:1,5","messages":2000,"seed":9}`,
			cfg: scenario.Config{N: 60, Backend: scenario.BackendTestbed,
				StrategySpec: "uniform:1,5", Adversary: scenario.Adversary{Count: 4},
				Workload: scenario.Workload{Messages: 2000, Seed: 9}},
		},
		{
			name: "timeline",
			body: `{"n":40,"compromised":3,"strategy":"uniform:1,5","timeline":"msgs=1000;msgs=1000,comp=2"}`,
			cfg: scenario.Config{N: 40, StrategySpec: "uniform:1,5",
				Adversary: scenario.Adversary{Count: 3},
				Timeline:  []scenario.Epoch{{Messages: 1000}, {Messages: 1000, Compromise: 2}}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := scenario.Run(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			var got ScenarioResponse
			if status := post(t, ts.URL+"/v1/scenario", tc.body, &got); status != http.StatusOK {
				t.Fatalf("status %d, want 200", status)
			}
			// The daemon is a transport: its answer must be bit-identical
			// to a direct library call with the same configuration.
			if got.H != want.H || got.StdErr != want.StdErr || got.Trials != want.Trials {
				t.Errorf("response (H=%v StdErr=%v Trials=%d) != direct run (H=%v StdErr=%v Trials=%d)",
					got.H, got.StdErr, got.Trials, want.H, want.StdErr, want.Trials)
			}
			if got.Backend != string(want.Backend) {
				t.Errorf("backend %q, want %q", got.Backend, want.Backend)
			}
			if len(got.Epochs) != len(want.Epochs) {
				t.Errorf("epochs %d, want %d", len(got.Epochs), len(want.Epochs))
			}
		})
	}
}

func TestScenarioEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name   string
		body   string
		status int
		class  string
	}{
		{"malformed json", `{"n":`, 400, "bad_config"},
		{"unknown field", `{"n":30,"compromised":2,"nodes":9}`, 400, "bad_config"},
		{"adversary larger than system", `{"n":5,"compromised":9}`, 400, "bad_config"},
		{"bad strategy spec", `{"n":30,"compromised":2,"strategy":"nope:1"}`, 400, "bad_config"},
		{"bad backend name", `{"n":30,"compromised":2,"backend":"quantum"}`, 400, "bad_config"},
		{"bad timeline", `{"n":30,"compromised":2,"strategy":"fixed:3","timeline":"bogus"}`, 400, "bad_config"},
		{"capability refusal", `{"n":30,"compromised":2,"backend":"exact","strategy":"crowds:0.7"}`, 422, "capability"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body ErrorBody
			if status := post(t, ts.URL+"/v1/scenario", tc.body, &body); status != tc.status {
				t.Fatalf("status %d, want %d", status, tc.status)
			}
			if body.Class != tc.class {
				t.Errorf("class %q, want %q (error: %s)", body.Class, tc.class, body.Error)
			}
			if body.Error == "" {
				t.Error("empty error text")
			}
		})
	}
}

func TestDegradationEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var got ScenarioResponse
	body := `{"n":30,"compromised":3,"strategy":"uniform:1,6","rounds":5,"messages":400,"seed":1}`
	if status := post(t, ts.URL+"/v1/degradation", body, &got); status != http.StatusOK {
		t.Fatalf("status %d, want 200", status)
	}
	if len(got.HRounds) != 5 {
		t.Errorf("h_rounds has %d entries, want 5", len(got.HRounds))
	}
	if got.Rounds != 5 {
		t.Errorf("rounds %d, want 5", got.Rounds)
	}

	// A single-shot workload has no degradation curve to serve.
	var errBody ErrorBody
	single := `{"n":30,"compromised":3,"strategy":"uniform:1,6","messages":400}`
	if status := post(t, ts.URL+"/v1/degradation", single, &errBody); status != http.StatusBadRequest {
		t.Fatalf("single-shot status %d, want 400", status)
	}
	if errBody.Class != "bad_config" {
		t.Errorf("class %q, want bad_config", errBody.Class)
	}

	// A rounds timeline qualifies without a top-level rounds field.
	var tl ScenarioResponse
	tlBody := `{"n":30,"compromised":3,"strategy":"uniform:1,6","messages":200,"seed":1,"timeline":"rounds=2;rounds=2,comp=3"}`
	if status := post(t, ts.URL+"/v1/degradation", tlBody, &tl); status != http.StatusOK {
		t.Fatalf("timeline status %d, want 200", status)
	}
	if len(tl.HRounds) != 4 || len(tl.Epochs) != 2 {
		t.Errorf("timeline response has %d rounds / %d epochs, want 4 / 2", len(tl.HRounds), len(tl.Epochs))
	}
}

func TestOptimizeEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var got OptimizeResponse
	if status := post(t, ts.URL+"/v1/optimize", `{"n":30,"c":2,"mean":5}`, &got); status != http.StatusOK {
		t.Fatalf("status %d, want 200", status)
	}
	if len(got.Dist) == 0 {
		t.Fatal("empty optimized distribution")
	}
	if got.MeanLength < 4.99 || got.MeanLength > 5.01 {
		t.Errorf("mean_length %v, want ≈5", got.MeanLength)
	}
	if got.H <= 0 || got.Normalized <= 0 || got.Normalized > 1 {
		t.Errorf("implausible solution: H=%v normalized=%v", got.H, got.Normalized)
	}

	// Infeasible and malformed problems are configuration errors.
	for name, body := range map[string]string{
		"infeasible mean": `{"n":30,"c":2,"mean":200}`,
		"bad support":     `{"n":30,"c":2,"hi":99}`,
	} {
		var errBody ErrorBody
		if status := post(t, ts.URL+"/v1/optimize", body, &errBody); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, status)
		}
	}

	// The epoch-aware path: per-epoch curve plus the blended scores.
	var tl OptimizeResponse
	tlBody := `{"n":24,"c":2,"epochs":"msgs=1000;msgs=1000,comp=2;msgs=1000,comp=2","hi":8}`
	if status := post(t, ts.URL+"/v1/optimize", tlBody, &tl); status != http.StatusOK {
		t.Fatalf("timeline status %d, want 200", status)
	}
	if len(tl.PerEpoch) != 3 {
		t.Fatalf("per_epoch has %d entries, want 3", len(tl.PerEpoch))
	}
	if tl.PerEpochH < tl.H-1e-9 {
		t.Errorf("per-epoch blend %v below joint %v — re-optimizing every epoch cannot lose", tl.PerEpochH, tl.H)
	}
	if tl.StaticH > tl.PerEpochH+1e-9 {
		t.Errorf("static blend %v above per-epoch %v", tl.StaticH, tl.PerEpochH)
	}
}

func TestRateLimit(t *testing.T) {
	clock := newFakeClock()
	_, ts := newTestServer(t, Options{RatePerSecond: 1, Burst: 2, Now: clock.Now})
	body := `{"n":20,"compromised":1,"strategy":"fixed:3"}`
	for i := range 2 {
		if status := post(t, ts.URL+"/v1/scenario", body, nil); status != http.StatusOK {
			t.Fatalf("burst request %d: status %d, want 200", i, status)
		}
	}
	var errBody ErrorBody
	resp, err := http.Post(ts.URL+"/v1/scenario", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}
	if err := json.NewDecoder(resp.Body).Decode(&errBody); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if errBody.Class != "rate_limited" {
		t.Errorf("class %q, want rate_limited", errBody.Class)
	}
	// Health and metrics stay reachable for a throttled client.
	if resp, err := http.Get(ts.URL + "/v1/health"); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("health during throttling: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
	clock.Advance(time.Second)
	if status := post(t, ts.URL+"/v1/scenario", body, nil); status != http.StatusOK {
		t.Errorf("post-refill status %d, want 200", status)
	}
}

// slowBody is a degradation run long enough (~0.5 s) that concurrently
// fired requests reliably overlap in flight.
const slowBody = `{"n":97,"compromised":6,"strategy":"uniform:1,9","rounds":40,"messages":8000,"seed":11}`

// TestCoalescing fires identical concurrent requests and checks the
// ISSUE's acceptance signal: the whole burst costs exactly one engine
// build, every answer is identical, and the daemon accounts the joins.
func TestCoalescing(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	scenario.ResetEngines()
	scenario.ResetCacheStats()
	t.Cleanup(func() { scenario.ResetCacheStats() })

	const clients = 6
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		responses []ScenarioResponse
	)
	for range clients {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var got ScenarioResponse
			if status := post(t, ts.URL+"/v1/scenario", slowBody, &got); status != http.StatusOK {
				t.Errorf("status %d, want 200", status)
				return
			}
			mu.Lock()
			responses = append(responses, got)
			mu.Unlock()
		}()
	}
	wg.Wait()
	if len(responses) != clients {
		t.Fatalf("%d responses, want %d", len(responses), clients)
	}
	for _, r := range responses[1:] {
		if r.H != responses[0].H || len(r.HRounds) != len(responses[0].HRounds) {
			t.Errorf("coalesced responses disagree: %v vs %v", r.H, responses[0].H)
		}
	}
	if st := scenario.CacheStats(); st.Misses != 1 {
		t.Errorf("%d engine-cache misses for %d identical concurrent requests, want exactly 1", st.Misses, clients)
	}
	coalesced := 0
	for _, r := range responses {
		if r.Coalesced {
			coalesced++
		}
	}
	if coalesced == 0 {
		t.Error("no response joined the shared flight")
	}
	if m := srv.Metrics(); m.Coalesced != int64(coalesced) {
		t.Errorf("metrics count %d coalesced responses, responses carry %d", m.Coalesced, coalesced)
	}
}

// TestClientDisconnectCancels pins the 499 path: a client abandoning its
// request surfaces as a canceled run in the daemon's accounting, not as
// an error answer.
func TestClientDisconnectCancels(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/scenario", strings.NewReader(slowBody))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	// Wait for the request to be in flight, then walk away.
	waitFor(t, "request in flight", func() bool { return srv.Metrics().InFlight == 1 })
	cancel()
	if err := <-errc; err == nil {
		t.Error("canceled client saw a response")
	}
	waitFor(t, "cancellation accounted", func() bool {
		m := srv.Metrics()
		return m.Canceled == 1 && m.InFlight == 0
	})
}

// TestDrain pins graceful shutdown: Drain waits for the in-flight run,
// which still completes successfully, while new work and health answer
// 503.
func TestDrain(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	type outcome struct {
		status int
		h      float64
	}
	done := make(chan outcome, 1)
	go func() {
		var got ScenarioResponse
		status := post(t, ts.URL+"/v1/degradation", slowBody, &got)
		done <- outcome{status, got.H}
	}()
	waitFor(t, "request in flight", func() bool { return srv.Metrics().InFlight == 1 })

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(context.Background()) }()
	waitFor(t, "draining visible", srv.Draining)

	// New compute work is refused while the old run finishes.
	var errBody ErrorBody
	if status := post(t, ts.URL+"/v1/scenario", `{"n":20,"compromised":1,"strategy":"fixed:3"}`, &errBody); status != http.StatusServiceUnavailable {
		t.Errorf("compute during drain: status %d, want 503", status)
	}
	if errBody.Class != "draining" {
		t.Errorf("class %q, want draining", errBody.Class)
	}
	resp, err := http.Get(ts.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("health during drain: status %d, want 503", resp.StatusCode)
	}

	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	out := <-done
	if out.status != http.StatusOK || out.h == 0 {
		t.Errorf("in-flight request during drain got status %d (h=%v), want a complete 200", out.status, out.h)
	}
	if m := srv.Metrics(); m.InFlight != 0 {
		t.Errorf("in_flight %d after drain, want 0", m.InFlight)
	}
}

func TestStreamScenario(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cfg := scenario.Config{N: 60, Backend: scenario.BackendMonteCarlo,
		StrategySpec: "uniform:1,5", Adversary: scenario.Adversary{Count: 4},
		Workload: scenario.Workload{Messages: 20000, Seed: 9}}
	want, err := scenario.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	body := `{"n":60,"compromised":4,"backend":"mc","strategy":"uniform:1,5","messages":20000,"seed":9}`
	resp, err := http.Post(ts.URL+"/v1/scenario?stream=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q, want application/x-ndjson", ct)
	}
	var (
		progressLines int
		result        *ScenarioResponse
		sc            = bufio.NewScanner(resp.Body)
	)
	for sc.Scan() {
		var line streamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Progress != nil:
			if result != nil {
				t.Error("progress line after the terminal result")
			}
			if line.Progress.Total != 20000 || line.Progress.Done <= 0 || line.Progress.Done > 20000 {
				t.Errorf("implausible progress %d/%d", line.Progress.Done, line.Progress.Total)
			}
			progressLines++
		case line.Result != nil:
			result = line.Result
		case line.Error != nil:
			t.Fatalf("stream ended in error: %s", line.Error.Error)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if progressLines == 0 {
		t.Error("stream carried no progress lines")
	}
	if result == nil {
		t.Fatal("stream carried no terminal result")
	}
	if result.H != want.H {
		t.Errorf("streamed H %v != direct run %v", result.H, want.H)
	}
}

// TestStreamTimelineEpochs checks that exact-timeline streams attach the
// completed epochs' partial results to their progress lines.
func TestStreamTimelineEpochs(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body := `{"n":40,"compromised":3,"strategy":"uniform:1,5","timeline":"msgs=1000;msgs=1000,comp=2"}`
	resp, err := http.Post(ts.URL+"/v1/scenario?stream=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var epochs int
	for _, text := range bytes.Split(bytes.TrimSpace(raw), []byte("\n")) {
		var line streamLine
		if err := json.Unmarshal(text, &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", text, err)
		}
		if line.Progress != nil && line.Progress.Epoch != nil {
			epochs++
		}
	}
	if epochs != 2 {
		t.Errorf("%d epoch-carrying progress lines, want 2", epochs)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/scenario")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/scenario: status %d, want 405", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	post(t, ts.URL+"/v1/scenario", `{"n":20,"compromised":1,"strategy":"fixed:3"}`, nil)
	post(t, ts.URL+"/v1/scenario", `{"n":5,"compromised":9}`, nil)
	var m MetricsResponse
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Requests["scenario"] != 2 {
		t.Errorf("scenario requests %d, want 2", m.Requests["scenario"])
	}
	if m.Statuses["200"] != 1 || m.Statuses["400"] != 1 {
		t.Errorf("statuses %v, want one 200 and one 400", m.Statuses)
	}
	if m.InFlight != 0 {
		t.Errorf("in_flight %d, want 0", m.InFlight)
	}
}

// waitFor polls cond every millisecond for up to 10 s — the test-side
// synchronization for states the daemon reaches asynchronously.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
