package anond

// Deterministic single-flight tests: the group's concurrency is driven
// by channels, not sleeps, so every interleaving below is forced.

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func testKey(t *testing.T, endpoint string) [32]byte {
	t.Helper()
	key, err := flightKey(endpoint, &ScenarioRequest{N: 10, Compromised: 1})
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// waitRefs blocks until key's flight has accumulated want waiters —
// spawning a joiner goroutine does not mean it has joined yet.
func waitRefs(g *group, key [32]byte, want int) {
	for {
		g.mu.Lock()
		refs := 0
		if f := g.flights[key]; f != nil {
			refs = f.refs
		}
		g.mu.Unlock()
		if refs >= want {
			return
		}
		runtime.Gosched()
	}
}

// TestGroupCoalesces forces one leader and several joiners onto one
// flight: fn runs once, everyone gets its value, and only the joiners
// report shared.
func TestGroupCoalesces(t *testing.T) {
	g := newGroup()
	key := testKey(t, "scenario")
	var (
		runs    atomic.Int64
		started = make(chan struct{})
		release = make(chan struct{})
	)
	fn := func(context.Context) (any, error) {
		runs.Add(1)
		close(started)
		<-release
		return "value", nil
	}
	type res struct {
		val    any
		err    error
		shared bool
	}
	leader := make(chan res, 1)
	go func() {
		v, e, s := g.do(context.Background(), key, fn)
		leader <- res{v, e, s}
	}()
	<-started // the flight is now registered and blocked

	const joiners = 4
	var wg sync.WaitGroup
	joined := make(chan res, joiners)
	for range joiners {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, e, s := g.do(context.Background(), key, func(context.Context) (any, error) {
				t.Error("joiner started a second computation")
				return nil, nil
			})
			joined <- res{v, e, s}
		}()
	}
	// Only release the leader once every joiner is actually on the
	// flight; otherwise the flight could complete and be forgotten before
	// a late joiner looks it up (and correctly compute afresh).
	waitRefs(g, key, 1+joiners)
	close(release)
	wg.Wait()
	r := <-leader
	if r.err != nil || r.val != "value" || r.shared {
		t.Errorf("leader got (%v, %v, shared=%v)", r.val, r.err, r.shared)
	}
	for range joiners {
		r := <-joined
		if r.err != nil || r.val != "value" || !r.shared {
			t.Errorf("joiner got (%v, %v, shared=%v)", r.val, r.err, r.shared)
		}
	}
	if n := runs.Load(); n != 1 {
		t.Errorf("fn ran %d times, want 1", n)
	}
}

// TestGroupLastWaiterCancels pins the refcount contract: the
// computation's context survives the first departure and is canceled
// exactly when the last waiter leaves.
func TestGroupLastWaiterCancels(t *testing.T) {
	g := newGroup()
	key := testKey(t, "scenario")
	started := make(chan struct{})
	canceled := make(chan struct{})
	fn := func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		close(canceled)
		return nil, ctx.Err()
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	ctx2, cancel2 := context.WithCancel(context.Background())
	errs := make(chan error, 2)
	go func() {
		_, err, _ := g.do(ctx1, key, fn)
		errs <- err
	}()
	<-started
	go func() {
		_, err, _ := g.do(ctx2, key, func(context.Context) (any, error) {
			t.Error("joiner started a second computation")
			return nil, nil
		})
		errs <- err
	}()
	waitRefs(g, key, 2)

	// First waiter leaves: the flight must keep running for the second.
	cancel1()
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Errorf("departed waiter got %v, want context.Canceled", err)
	}
	select {
	case <-canceled:
		t.Fatal("flight canceled while a waiter remained")
	default:
	}
	// Last waiter leaves: now the computation must be torn down.
	cancel2()
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Errorf("last waiter got %v, want context.Canceled", err)
	}
	<-canceled // deadlocks (and times the test out) if cancel never propagates
}

// TestGroupForgetsCompletedFlights pins that coalescing dedups in-flight
// work only: a request arriving after completion computes afresh.
func TestGroupForgetsCompletedFlights(t *testing.T) {
	g := newGroup()
	key := testKey(t, "scenario")
	var runs atomic.Int64
	fn := func(context.Context) (any, error) { return runs.Add(1), nil }
	v1, err, _ := g.do(context.Background(), key, fn)
	if err != nil {
		t.Fatal(err)
	}
	v2, err, shared := g.do(context.Background(), key, fn)
	if err != nil {
		t.Fatal(err)
	}
	if shared || v1 == v2 {
		t.Errorf("second call reused the completed flight (v1=%v v2=%v shared=%v)", v1, v2, shared)
	}
}

// TestFlightKeyNormalizes pins that the fingerprint sees the decoded
// configuration, not the body bytes, and separates endpoints.
func TestFlightKeyNormalizes(t *testing.T) {
	a, err := flightKey("scenario", &ScenarioRequest{N: 10, Compromised: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := flightKey("scenario", &ScenarioRequest{Compromised: 1, N: 10})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical configs fingerprint differently")
	}
	c, err := flightKey("degradation", &ScenarioRequest{N: 10, Compromised: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different endpoints share a fingerprint")
	}
	d, err := flightKey("scenario", &ScenarioRequest{N: 11, Compromised: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a == d {
		t.Error("different configs share a fingerprint")
	}
}
