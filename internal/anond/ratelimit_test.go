package anond

// Token-bucket tests on an injected clock: refill arithmetic is checked
// at exact instants, no sleeps.

import (
	"strconv"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock safe for concurrent reads.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestLimiterBurstAndRefill(t *testing.T) {
	clock := newFakeClock()
	l := newLimiter(2, 3, clock.Now) // 2 tokens/s, bucket of 3
	for i := range 3 {
		if ok, _ := l.allow("a"); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, retry := l.allow("a")
	if ok {
		t.Fatal("4th immediate request allowed past the burst")
	}
	if retry <= 0 || retry > time.Second {
		t.Errorf("retry hint %v outside (0, 1s] at 2 tokens/s", retry)
	}
	// Other clients own their own buckets.
	if ok, _ := l.allow("b"); !ok {
		t.Error("fresh client denied by another client's empty bucket")
	}
	// Half a second accrues one token at 2/s.
	clock.Advance(500 * time.Millisecond)
	if ok, _ := l.allow("a"); !ok {
		t.Error("request denied after refill")
	}
	if ok, _ := l.allow("a"); ok {
		t.Error("second request allowed on a single refilled token")
	}
	// Refill caps at the burst.
	clock.Advance(time.Hour)
	for i := range 3 {
		if ok, _ := l.allow("a"); !ok {
			t.Fatalf("post-idle request %d denied", i)
		}
	}
	if ok, _ := l.allow("a"); ok {
		t.Error("idle refill exceeded the burst cap")
	}
}

func TestLimiterDisabled(t *testing.T) {
	if l := newLimiter(0, 5, nil); l != nil {
		t.Fatal("rate 0 should disable the limiter")
	}
	var l *limiter
	if ok, _ := l.allow("anyone"); !ok {
		t.Error("nil limiter denied a request")
	}
}

func TestLimiterPrune(t *testing.T) {
	clock := newFakeClock()
	l := newLimiter(1, 1, clock.Now)
	for i := 0; i < 5000; i++ {
		l.allow(strconv.Itoa(i))
		clock.Advance(2 * time.Second) // every earlier bucket refills
	}
	l.mu.Lock()
	n := len(l.buckets)
	l.mu.Unlock()
	if n > 4096 {
		t.Errorf("bucket map grew to %d entries despite pruning", n)
	}
}
