// Package anond implements the anonymity-as-a-service daemon: an HTTP
// JSON API fronting the scenario layer's three backends and the §5.4
// optimizer. One process serves concurrent clients off the process-wide
// engine cache; identical in-flight requests are coalesced into one
// computation; long Monte-Carlo runs can stream per-phase partial results
// as NDJSON; a token bucket bounds each client's request rate; and a
// disconnected client cancels its computation through the context plumbed
// into the backend loops.
//
// Endpoints (all JSON):
//
//	POST /v1/scenario     run one scenario (any backend); ?stream=1 for NDJSON progress
//	POST /v1/degradation  repeated-communication run (rounds > 1 or confidence tracking)
//	POST /v1/optimize     path-length-distribution design (static or epoch-aware)
//	GET  /v1/metrics      daemon counters + engine-cache statistics
//	GET  /v1/health       liveness; 503 once draining
//
// Failures map through scenario.Classify exactly as the CLIs' exit codes
// do: bad configurations answer 400, capability refusals 422, rate
// limiting 429, everything else 500. A canceled run (client gone) is
// logged, not answered.
package anond

import (
	"fmt"
	"math"

	"anonmix/internal/entropy"
	"anonmix/internal/faults"
	"anonmix/internal/optimize"
	"anonmix/internal/scenario"
	"anonmix/internal/trace"
)

// ScenarioRequest is the wire form of a scenario.Config. Zero-valued
// fields take the same defaults as the scenario layer (exact backend,
// plain protocol); the strategy spec, timeline, and fault plan reuse the
// CLIs' compact string syntaxes so a curl invocation stays one line.
type ScenarioRequest struct {
	N           int     `json:"n"`
	Backend     string  `json:"backend,omitempty"`
	Strategy    string  `json:"strategy,omitempty"`
	Protocol    string  `json:"protocol,omitempty"`
	CrowdsPf    float64 `json:"crowds_pf,omitempty"`
	Compromised int     `json:"compromised"`
	// UncompromisedReceiver and NoSenderSelfReport are the paper's two
	// adversary ablations.
	UncompromisedReceiver bool `json:"uncompromised_receiver,omitempty"`
	NoSenderSelfReport    bool `json:"no_sender_self_report,omitempty"`
	// Messages is trials (Monte-Carlo), messages (testbed), or sessions
	// (degradation runs).
	Messages    int     `json:"messages,omitempty"`
	Rounds      int     `json:"rounds,omitempty"`
	Confidence  float64 `json:"confidence,omitempty"`
	FixedSender bool    `json:"fixed_sender,omitempty"`
	Sender      int     `json:"sender,omitempty"`
	Seed        int64   `json:"seed,omitempty"`
	Workers     int     `json:"workers,omitempty"`
	// Timeline is the CLIs' epoch syntax, e.g.
	// "msgs=1000;msgs=1000,comp=2" (see scenario.ParseTimeline).
	Timeline string `json:"timeline,omitempty"`
	// Faults is a fault-plan spec, e.g. "loss=0.05" (see
	// faults.ParseFaults); Policy and MaxAttempts select the reaction.
	Faults      string `json:"faults,omitempty"`
	Policy      string `json:"policy,omitempty"`
	MaxAttempts int    `json:"max_attempts,omitempty"`
}

// config materializes the request as a scenario.Config. Every failure
// wraps a bad-config sentinel from the layer that rejected the field, so
// statusFor answers 400 without string matching.
func (req *ScenarioRequest) config() (scenario.Config, error) {
	cfg := scenario.Config{
		N:            req.N,
		StrategySpec: req.Strategy,
		CrowdsPf:     req.CrowdsPf,
		Adversary: scenario.Adversary{
			Count:                 req.Compromised,
			UncompromisedReceiver: req.UncompromisedReceiver,
			NoSenderSelfReport:    req.NoSenderSelfReport,
		},
		Workload: scenario.Workload{
			Messages:    req.Messages,
			Rounds:      req.Rounds,
			Confidence:  req.Confidence,
			FixedSender: req.FixedSender,
			Sender:      trace.NodeID(req.Sender),
			Seed:        req.Seed,
			Workers:     req.Workers,
		},
	}
	if req.Backend != "" {
		kind, err := scenario.ParseBackend(req.Backend)
		if err != nil {
			return scenario.Config{}, err
		}
		cfg.Backend = kind
	}
	if req.Protocol != "" {
		proto, err := scenario.ParseProtocol(req.Protocol)
		if err != nil {
			return scenario.Config{}, err
		}
		cfg.Protocol = proto
	}
	if req.Timeline != "" {
		timeline, err := scenario.ParseTimeline(req.Timeline)
		if err != nil {
			return scenario.Config{}, err
		}
		cfg.Timeline = timeline
	}
	if req.Faults != "" {
		plan, err := faults.ParseFaults(req.Faults)
		if err != nil {
			return scenario.Config{}, err
		}
		cfg.Faults = plan
	}
	if req.Policy != "" {
		pol, err := faults.ParsePolicy(req.Policy)
		if err != nil {
			return scenario.Config{}, err
		}
		cfg.Reliability = faults.Reliability{Policy: pol, MaxAttempts: req.MaxAttempts}
	}
	return cfg, nil
}

// EpochResponse is the wire form of one scenario.EpochResult.
type EpochResponse struct {
	Index    int     `json:"index"`
	N        int     `json:"n"`
	C        int     `json:"c"`
	Messages int     `json:"messages,omitempty"`
	Rounds   int     `json:"rounds,omitempty"`
	H        float64 `json:"h"`
}

// ScenarioResponse is the wire form of a scenario.Result.
type ScenarioResponse struct {
	Backend                string          `json:"backend"`
	H                      float64         `json:"h"`
	StdErr                 float64         `json:"std_err,omitempty"`
	CI95                   float64         `json:"ci95,omitempty"`
	Estimated              bool            `json:"estimated,omitempty"`
	Trials                 int             `json:"trials,omitempty"`
	MaxH                   float64         `json:"max_h"`
	Normalized             float64         `json:"normalized"`
	CompromisedSenderShare float64         `json:"compromised_sender_share,omitempty"`
	Deanonymized           int             `json:"deanonymized,omitempty"`
	Rounds                 int             `json:"rounds,omitempty"`
	HRounds                []float64       `json:"h_rounds,omitempty"`
	IdentifiedShare        float64         `json:"identified_share,omitempty"`
	MeanRoundsToIdentify   float64         `json:"mean_rounds_to_identify,omitempty"`
	Epochs                 []EpochResponse `json:"epochs,omitempty"`
	DeliveryRate           float64         `json:"delivery_rate,omitempty"`
	MeanAttempts           float64         `json:"mean_attempts,omitempty"`
	HDegraded              float64         `json:"h_degraded,omitempty"`
	ElapsedMS              float64         `json:"elapsed_ms"`
	// Coalesced marks a response served by joining another client's
	// identical in-flight computation.
	Coalesced bool `json:"coalesced,omitempty"`
}

// scenarioResponse converts a backend result to its wire form.
func scenarioResponse(res scenario.Result) *ScenarioResponse {
	out := &ScenarioResponse{
		Backend:                string(res.Backend),
		H:                      res.H,
		StdErr:                 res.StdErr,
		CI95:                   res.CI95,
		Estimated:              res.Estimated,
		Trials:                 res.Trials,
		MaxH:                   res.MaxH,
		Normalized:             res.Normalized,
		CompromisedSenderShare: res.CompromisedSenderShare,
		Deanonymized:           res.Deanonymized,
		Rounds:                 res.Rounds,
		HRounds:                res.HRounds,
		IdentifiedShare:        res.IdentifiedShare,
		MeanRoundsToIdentify:   res.MeanRoundsToIdentify,
		DeliveryRate:           res.DeliveryRate,
		MeanAttempts:           res.MeanAttempts,
		HDegraded:              res.HDegraded,
		ElapsedMS:              float64(res.Elapsed.Microseconds()) / 1e3,
	}
	for _, ep := range res.Epochs {
		out.Epochs = append(out.Epochs, EpochResponse{
			Index: ep.Index, N: ep.N, C: ep.C,
			Messages: ep.Messages, Rounds: ep.Rounds, H: ep.H,
		})
	}
	return out
}

// OptimizeRequest is the wire form of an optimize.Problem (static) or
// optimize.TimelineProblem (when Epochs is set).
type OptimizeRequest struct {
	N int `json:"n"`
	C int `json:"c"`
	// Mean constrains the expected path length; omit for unconstrained.
	Mean *float64 `json:"mean,omitempty"`
	Lo   int      `json:"lo,omitempty"`
	// Hi bounds the support; 0 defaults to N-1 (static) or min_e N_e-1
	// (timeline).
	Hi int `json:"hi,omitempty"`
	// Epochs is the CLIs' timeline syntax; setting it switches to the
	// epoch-aware solver.
	Epochs        string `json:"epochs,omitempty"`
	MaxIterations int    `json:"max_iterations,omitempty"`
	Restarts      int    `json:"restarts,omitempty"`
}

// Atom is one support point of an optimized distribution.
type Atom struct {
	L int     `json:"l"`
	P float64 `json:"p"`
}

// EpochOptimum is one epoch's re-optimized solution in a timeline run.
type EpochOptimum struct {
	Index      int     `json:"index"`
	N          int     `json:"n"`
	C          int     `json:"c"`
	Weight     float64 `json:"weight"`
	H          float64 `json:"h"`
	Iterations int     `json:"iterations"`
	MeanLength float64 `json:"mean_length"`
}

// OptimizeResponse is the solver outcome. Static problems fill the
// top-level fields only; timeline problems additionally carry the
// per-epoch curve and the blended scores (the top-level distribution is
// then the joint single-distribution optimum).
type OptimizeResponse struct {
	H          float64 `json:"h"`
	Normalized float64 `json:"normalized"`
	MeanLength float64 `json:"mean_length"`
	Iterations int     `json:"iterations"`
	Converged  bool    `json:"converged"`
	Dist       []Atom  `json:"dist"`
	// Timeline mode: blended traffic-weighted anonymity of the three
	// deployment policies (static epoch-0 optimum, joint, per-epoch).
	PerEpoch  []EpochOptimum `json:"per_epoch,omitempty"`
	PerEpochH float64        `json:"per_epoch_h,omitempty"`
	StaticH   float64        `json:"static_h,omitempty"`
	Coalesced bool           `json:"coalesced,omitempty"`
}

// atoms extracts the support points carrying mass above the CLI's
// printing threshold.
func atoms(r optimize.Result) []Atom {
	lo, hi := r.Dist.Support()
	var out []Atom
	for l := lo; l <= hi; l++ {
		if p := r.Dist.PMF(l); p > 1e-6 {
			out = append(out, Atom{L: l, P: p})
		}
	}
	return out
}

// solve runs the solver the request describes. It mirrors anonopt: the
// same defaults, the same engine cache, the same epoch-aware path.
func (req *OptimizeRequest) solve() (*OptimizeResponse, error) {
	mean := optimize.UnconstrainedMean()
	if req.Mean != nil {
		mean = *req.Mean
	}
	var opts []optimize.Option
	if req.MaxIterations > 0 {
		opts = append(opts, optimize.WithMaxIterations(req.MaxIterations))
	}
	if req.Restarts > 0 {
		opts = append(opts, optimize.WithRestarts(req.Restarts))
	}
	if req.Epochs != "" {
		return req.solveTimeline(mean, opts)
	}
	engine, err := scenario.Engine(req.N, req.C)
	if err != nil {
		return nil, err
	}
	hi := req.Hi
	if hi <= 0 {
		hi = req.N - 1
	}
	res, err := optimize.Maximize(optimize.Problem{
		Engine: engine, Lo: req.Lo, Hi: hi, Mean: mean,
	}, opts...)
	if err != nil {
		return nil, err
	}
	return &OptimizeResponse{
		H:          res.H,
		Normalized: entropy.Normalized(res.H, req.N),
		MeanLength: res.Dist.Mean(),
		Iterations: res.Iterations,
		Converged:  res.Converged,
		Dist:       atoms(res),
	}, nil
}

// solveTimeline is the epoch-aware path: per-epoch re-optimization with
// delta-derived engines, the joint single-distribution solve, and the
// static epoch-0 baseline under the traffic-weighted blend.
func (req *OptimizeRequest) solveTimeline(mean float64, opts []optimize.Option) (*OptimizeResponse, error) {
	timeline, err := scenario.ParseTimeline(req.Epochs)
	if err != nil {
		return nil, err
	}
	states, err := scenario.TimelineStates(req.N, req.C, timeline)
	if err != nil {
		return nil, err
	}
	minN := states[0].N
	for _, st := range states {
		minN = min(minN, st.N)
	}
	hi := req.Hi
	if hi <= 0 {
		hi = minN - 1
	}
	tp := optimize.TimelineProblem{Lo: req.Lo, Hi: hi, Mean: mean}
	for _, st := range states {
		e, err := scenario.Engine(st.N, st.C)
		if err != nil {
			return nil, err
		}
		tp.Epochs = append(tp.Epochs, optimize.EpochProblem{Engine: e, Weight: st.Weight})
	}
	res, err := optimize.MaximizeTimeline(tp, opts...)
	if err != nil {
		return nil, err
	}
	staticH, err := optimize.EvaluateTimeline(tp, res.PerEpoch[0].Dist)
	if err != nil {
		return nil, err
	}
	out := &OptimizeResponse{
		H:          res.Joint.H,
		Normalized: res.Joint.H / math.Log2(float64(req.N)),
		MeanLength: res.Joint.Dist.Mean(),
		Iterations: res.Joint.Iterations,
		Converged:  res.Joint.Converged,
		Dist:       atoms(res.Joint),
		PerEpochH:  res.PerEpochH,
		StaticH:    staticH,
	}
	for i, st := range states {
		r := res.PerEpoch[i]
		out.PerEpoch = append(out.PerEpoch, EpochOptimum{
			Index: st.Index, N: st.N, C: st.C, Weight: st.Weight,
			H: r.H, Iterations: r.Iterations, MeanLength: r.Dist.Mean(),
		})
	}
	return out, nil
}

// ErrorBody is the JSON error envelope of every non-2xx answer.
type ErrorBody struct {
	// Error is the full wrapped sentinel chain, the same text the CLIs
	// print to stderr.
	Error string `json:"error"`
	// Class is the scenario.ErrorClass name ("bad_config", "capability",
	// "runtime", ...) plus the daemon's own "rate_limited" and
	// "draining".
	Class string `json:"class"`
}

// errorBody renders an error through the shared classifier.
func errorBody(err error) ErrorBody {
	return ErrorBody{Error: fmt.Sprintf("%v", err), Class: scenario.Classify(err).String()}
}
