package anond

// Daemon counters. One mutex-guarded block keeps every counter update
// and every snapshot internally consistent (a snapshot never shows a
// response without its request); the engine-cache statistics ride along
// from the scenario layer's own atomic snapshot.

import (
	"strconv"
	"sync"
	"time"

	"anonmix/internal/scenario"
)

type metrics struct {
	start time.Time
	now   func() time.Time

	mu          sync.Mutex
	requests    map[string]int64
	statuses    map[int]int64
	coalesced   int64
	rateLimited int64
	canceled    int64
	inFlight    int64
}

func newMetrics(now func() time.Time) *metrics {
	if now == nil {
		now = time.Now
	}
	return &metrics{
		start:    now(),
		now:      now,
		requests: map[string]int64{},
		statuses: map[int]int64{},
	}
}

func (m *metrics) request(endpoint string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[endpoint]++
	m.inFlight++
}

func (m *metrics) response(status int, coalesced bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.statuses[status]++
	m.inFlight--
	if coalesced {
		m.coalesced++
	}
	switch status {
	case statusClientClosedRequest:
		m.canceled++
	case 429:
		m.rateLimited++
	}
}

// MetricsResponse is the /v1/metrics document.
type MetricsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Requests counts received requests per endpoint; Statuses counts
	// answered statuses (stringified codes, plus "499" for canceled
	// runs whose answer nobody read).
	Requests map[string]int64 `json:"requests"`
	Statuses map[string]int64 `json:"statuses"`
	// Coalesced counts responses served by joining another client's
	// in-flight identical computation.
	Coalesced   int64 `json:"coalesced"`
	RateLimited int64 `json:"rate_limited"`
	Canceled    int64 `json:"canceled"`
	InFlight    int64 `json:"in_flight"`
	// EngineCache is the process-wide exact-engine LRU (cumulative since
	// process start or the last ResetCacheStats).
	EngineCache CacheStatsResponse `json:"engine_cache"`
}

// CacheStatsResponse is the wire form of scenario.EngineCacheStats.
type CacheStatsResponse struct {
	Hits         uint64 `json:"hits"`
	Misses       uint64 `json:"misses"`
	Evictions    uint64 `json:"evictions"`
	DeltaDerived uint64 `json:"delta_derived"`
	Size         int    `json:"size"`
	Capacity     int    `json:"capacity"`
}

func cacheStatsResponse(st scenario.EngineCacheStats) CacheStatsResponse {
	return CacheStatsResponse{
		Hits: st.Hits, Misses: st.Misses, Evictions: st.Evictions,
		DeltaDerived: st.DeltaDerived, Size: st.Size, Capacity: st.Capacity,
	}
}

func (m *metrics) snapshot() MetricsResponse {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := MetricsResponse{
		UptimeSeconds: m.now().Sub(m.start).Seconds(),
		Requests:      make(map[string]int64, len(m.requests)),
		Statuses:      make(map[string]int64, len(m.statuses)),
		Coalesced:     m.coalesced,
		RateLimited:   m.rateLimited,
		Canceled:      m.canceled,
		InFlight:      m.inFlight,
		EngineCache:   cacheStatsResponse(scenario.CacheStats()),
	}
	for ep, n := range m.requests {
		out.Requests[ep] = n
	}
	for code, n := range m.statuses {
		out.Statuses[strconv.Itoa(code)] = n
	}
	return out
}
