package dist

import (
	"errors"
	"math"
	"testing"
)

func mustValidate(t *testing.T, d Length) {
	t.Helper()
	if err := Validate(d); err != nil {
		t.Fatalf("%s: %v", d, err)
	}
}

func TestFixed(t *testing.T) {
	f, err := NewFixed(5)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, f)
	if lo, hi := f.Support(); lo != 5 || hi != 5 {
		t.Errorf("support [%d,%d]", lo, hi)
	}
	if f.PMF(5) != 1 || f.PMF(4) != 0 || f.Mean() != 5 {
		t.Errorf("F(5): PMF(5)=%v PMF(4)=%v mean=%v", f.PMF(5), f.PMF(4), f.Mean())
	}
	if f.String() != "F(5)" {
		t.Errorf("String = %q", f.String())
	}
	if _, err := NewFixed(-1); !errors.Is(err, ErrInvalid) {
		t.Error("negative length accepted")
	}
}

func TestUniform(t *testing.T) {
	u, err := NewUniform(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, u)
	if u.PMF(2) != 0.25 || u.PMF(6) != 0 || u.PMF(1) != 0 {
		t.Errorf("PMF: %v %v %v", u.PMF(2), u.PMF(6), u.PMF(1))
	}
	if u.Mean() != 3.5 {
		t.Errorf("mean %v", u.Mean())
	}
	if _, err := NewUniform(3, 2); !errors.Is(err, ErrInvalid) {
		t.Error("inverted bounds accepted")
	}
	if _, err := NewUniform(-1, 2); !errors.Is(err, ErrInvalid) {
		t.Error("negative bound accepted")
	}
	// Degenerate single-atom uniform.
	one, err := NewUniform(4, 4)
	if err != nil || one.PMF(4) != 1 {
		t.Errorf("U(4,4): %v %v", one, err)
	}
}

func TestGeometric(t *testing.T) {
	g, err := NewGeometric(0.5, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, g)
	// Untruncated mean is 1/(1-pf) = 2; the tail mass beyond 40 is ~2^-40.
	if math.Abs(g.Mean()-2) > 1e-9 {
		t.Errorf("mean %v, want ~2", g.Mean())
	}
	if math.Abs(g.PMF(1)-0.5/(1-math.Pow(0.5, 40))) > 1e-15 {
		t.Errorf("PMF(1) = %v", g.PMF(1))
	}
	// pf = 0 degenerates to a point mass at Min.
	g0, err := NewGeometric(0, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, g0)
	if g0.PMF(1) != 1 || g0.Mean() != 1 {
		t.Errorf("pf=0: PMF(1)=%v mean=%v", g0.PMF(1), g0.Mean())
	}
	for _, pf := range []float64{-0.1, 1, 1.5, math.NaN()} {
		if _, err := NewGeometric(pf, 1, 10); !errors.Is(err, ErrInvalid) {
			t.Errorf("pf=%v accepted", pf)
		}
	}
	if _, err := NewGeometric(0.5, 5, 4); !errors.Is(err, ErrInvalid) {
		t.Error("inverted bounds accepted")
	}
}

func TestTwoPoint(t *testing.T) {
	tp, err := NewTwoPoint(2, 8, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, tp)
	if tp.PMF(2) != 0.25 || tp.PMF(8) != 0.75 || tp.PMF(5) != 0 {
		t.Errorf("PMF: %v %v %v", tp.PMF(2), tp.PMF(8), tp.PMF(5))
	}
	if tp.Mean() != 0.25*2+0.75*8 {
		t.Errorf("mean %v", tp.Mean())
	}
	// Merged atoms.
	pt, err := NewTwoPoint(3, 3, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, pt)
	if pt.PMF(3) != 1 || pt.Mean() != 3 {
		t.Errorf("merged: PMF(3)=%v mean=%v", pt.PMF(3), pt.Mean())
	}
	if _, err := NewTwoPoint(5, 2, 0.5); !errors.Is(err, ErrInvalid) {
		t.Error("inverted atoms accepted")
	}
	if _, err := NewTwoPoint(1, 2, 1.5); !errors.Is(err, ErrInvalid) {
		t.Error("mass > 1 accepted")
	}
}

func TestPoisson(t *testing.T) {
	p, err := NewPoisson(9, 1, 63)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, p)
	// Far from the truncation bounds the mean is close to lambda.
	if math.Abs(p.Mean()-9) > 0.01 {
		t.Errorf("mean %v, want ~9", p.Mean())
	}
	// The PMF ratio matches the Poisson recurrence P(l)/P(l-1) = λ/l.
	for l := 2; l <= 20; l++ {
		got := p.PMF(l) / p.PMF(l-1)
		want := 9.0 / float64(l)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("ratio at %d: %v, want %v", l, got, want)
		}
	}
	if _, err := NewPoisson(0, 1, 10); !errors.Is(err, ErrInvalid) {
		t.Error("lambda=0 accepted")
	}
	if _, err := NewPoisson(math.NaN(), 1, 10); !errors.Is(err, ErrInvalid) {
		t.Error("NaN lambda accepted")
	}
}

func TestPMF(t *testing.T) {
	p, err := NewPMF(2, []float64{0.5, 0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, p)
	if lo, hi := p.Support(); lo != 2 || hi != 4 {
		t.Errorf("support [%d,%d]", lo, hi)
	}
	if p.Mean() != 3 {
		t.Errorf("mean %v", p.Mean())
	}
	if p.PMF(1) != 0 || p.PMF(5) != 0 {
		t.Error("mass outside support")
	}
	// The constructor copies its input.
	mass := []float64{1}
	q, err := NewPMF(0, mass)
	if err != nil {
		t.Fatal(err)
	}
	mass[0] = 0.3
	if q.PMF(0) != 1 {
		t.Error("NewPMF aliased the caller's slice")
	}
	if _, err := NewPMF(0, nil); !errors.Is(err, ErrInvalid) {
		t.Error("empty mass accepted")
	}
	if _, err := NewPMF(-1, []float64{1}); !errors.Is(err, ErrInvalid) {
		t.Error("negative lo accepted")
	}
	if _, err := NewPMF(0, []float64{0.5, 0.4}); !errors.Is(err, ErrInvalid) {
		t.Error("non-normalized mass accepted")
	}
	if _, err := NewPMF(0, []float64{1.5, -0.5}); !errors.Is(err, ErrInvalid) {
		t.Error("negative atom accepted")
	}
}

func TestValidateNil(t *testing.T) {
	if err := Validate(nil); !errors.Is(err, ErrInvalid) {
		t.Error("nil distribution accepted")
	}
}

func TestStrings(t *testing.T) {
	g, _ := NewGeometric(0.5, 1, 40)
	tp, _ := NewTwoPoint(1, 4, 0.3)
	po, _ := NewPoisson(9, 1, 63)
	pm, _ := NewPMF(2, []float64{0.5, 0.5})
	u, _ := NewUniform(0, 9)
	for _, tc := range []struct {
		d    Length
		want string
	}{
		{g, "Geom(pf=0.5,1..40)"},
		{tp, "TwoPoint(1:0.3,4:0.7)"},
		{po, "Poisson(9,1..63)"},
		{pm, "PMF(2..3)"},
		{u, "U(0,9)"},
	} {
		if tc.d.String() != tc.want {
			t.Errorf("String = %q, want %q", tc.d.String(), tc.want)
		}
	}
}
