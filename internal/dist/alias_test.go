package dist

import (
	"math"
	"testing"

	"anonmix/internal/stats"
)

// aliasFamilies is the cross-family fixture shared by the alias property
// tests: one representative of every distribution kind the selectors
// consume, including a PMF with interior zero atoms.
func aliasFamilies(t *testing.T) map[string]Length {
	t.Helper()
	fixed, err := NewFixed(5)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := NewUniform(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	geo, err := NewGeometric(0.75, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	two, err := NewTwoPoint(2, 9, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	poi, err := NewPoisson(3.5, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	pmf, err := NewPMF(1, []float64{0.4, 0, 0.1, 0, 0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Length{
		"fixed": fixed, "uniform": uni, "geometric": geo,
		"twopoint": two, "poisson": poi, "pmf": pmf,
	}
}

// TestAliasEffectivePMF pins the tentpole's exactness property: for every
// family, the distribution the table actually samples agrees with the
// source PMF atom for atom within 1e-12.
func TestAliasEffectivePMF(t *testing.T) {
	for name, d := range aliasFamilies(t) {
		a, err := NewAlias(d)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lo, hi := d.Support()
		if a.Lo() != lo || a.K() != hi-lo+1 {
			t.Fatalf("%s: table covers %v, support [%d,%d]", name, a, lo, hi)
		}
		eff := a.EffectivePMF()
		for l := lo; l <= hi; l++ {
			if diff := math.Abs(eff[l-lo] - d.PMF(l)); diff > 1e-12 {
				t.Errorf("%s: P(%d) effective %v vs source %v (diff %v)",
					name, l, eff[l-lo], d.PMF(l), diff)
			}
		}
	}
}

// TestAliasNeverDrawsZeroAtoms: a value with zero mass must be unreachable
// for any (col, u) input, not just unlikely.
func TestAliasNeverDrawsZeroAtoms(t *testing.T) {
	pmf, err := NewPMF(2, []float64{0.5, 0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAlias(pmf)
	if err != nil {
		t.Fatal(err)
	}
	for col := 0; col < a.K(); col++ {
		for _, u := range []float64{0, 1e-16, 0.25, 0.5, 0.999999, math.Nextafter(1, 0)} {
			if v := a.Draw(col, u); pmf.PMF(v) == 0 {
				t.Fatalf("Draw(%d, %v) = %d, a zero-mass atom", col, u, v)
			}
		}
	}
}

// TestAliasDrawAgreement is satellite (c)'s chi-square check: stream-driven
// table draws agree with the source PMF across every family. With K-1
// degrees of freedom the 1e-3 quantile stays below 2.7·(K-1)+20 for the
// supports used here, a bound loose enough to keep the test deterministic
// (the seed is fixed) yet tight enough to catch an off-by-one column or a
// biased threshold.
func TestAliasDrawAgreement(t *testing.T) {
	const draws = 200000
	for name, d := range aliasFamilies(t) {
		a, err := NewAlias(d)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rng := stats.NewStream(1234, 0)
		lo, hi := d.Support()
		counts := make([]int, hi-lo+1)
		for i := 0; i < draws; i++ {
			counts[a.Draw(rng.Intn(a.K()), rng.Float64())-lo]++
		}
		var chi2 float64
		dof := -1
		for l := lo; l <= hi; l++ {
			p := d.PMF(l)
			if p == 0 {
				if counts[l-lo] != 0 {
					t.Errorf("%s: drew zero-mass atom %d (%d times)", name, l, counts[l-lo])
				}
				continue
			}
			dof++
			exp := p * draws
			diff := float64(counts[l-lo]) - exp
			chi2 += diff * diff / exp
		}
		if limit := 2.7*float64(dof) + 20; chi2 > limit {
			t.Errorf("%s: chi-square %v over %d dof (limit %v)", name, chi2, dof, limit)
		}
	}
}

// TestAliasRejectsInvalid: construction validates the source distribution.
func TestAliasRejectsInvalid(t *testing.T) {
	if _, err := NewAlias(nil); err == nil {
		t.Error("nil distribution accepted")
	}
	if _, err := NewAlias(PMF{}); err == nil {
		t.Error("zero-mass PMF accepted")
	}
}
