package dist

import "fmt"

// Alias is a Vose alias table over a Length distribution's support: an O(K)
// preprocessing of the PMF (K = support width) that turns every subsequent
// draw into O(1) work — one uniform column index plus one uniform threshold
// comparison — with no allocation. It is the sampling counterpart of the
// exact engine's bucketed enumeration: pay once per distribution, then each
// of the millions of Monte-Carlo trials costs two random numbers.
//
// Column i holds prob[i]/K of the mass for value lo+i and (1-prob[i])/K for
// value lo+alias[i]; EffectivePMF reconstructs the distribution the table
// actually samples, which property tests pin to the source PMF within 1e-12.
type Alias struct {
	lo    int
	prob  []float64
	alias []int32
}

// NewAlias builds the alias table for d. The distribution is validated
// first; construction is O(K) in the support width.
func NewAlias(d Length) (*Alias, error) {
	if err := Validate(d); err != nil {
		return nil, err
	}
	lo, hi := d.Support()
	k := hi - lo + 1
	a := &Alias{lo: lo, prob: make([]float64, k), alias: make([]int32, k)}

	// Scale each atom to p[i]·K/sum so the average column weight is exactly
	// 1; dividing by the observed sum (rather than assuming 1) keeps the
	// table exact even when the source PMF carries ~1e-16 normalization
	// error, which is what lets EffectivePMF match within 1e-12.
	scaled := make([]float64, k)
	var sum float64
	for i := 0; i < k; i++ {
		scaled[i] = d.PMF(lo + i)
		sum += scaled[i]
	}
	fk := float64(k)
	for i := range scaled {
		scaled[i] *= fk / sum
	}

	// Vose's two-worklist construction: underfull columns (weight < 1) are
	// topped up from overfull ones. Zero-mass atoms land on the small list
	// with prob 0 and are never drawn (u >= 0 is never < 0).
	small := make([]int32, 0, k)
	large := make([]int32, 0, k)
	for i := k - 1; i >= 0; i-- {
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Leftovers are exactly-full columns up to rounding; aliasing them to
	// themselves makes the threshold irrelevant.
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a, nil
}

// K returns the number of columns (the support width).
func (a *Alias) K() int { return len(a.prob) }

// Lo returns the value of column 0 (the support's lower bound).
func (a *Alias) Lo() int { return a.lo }

// Draw maps a uniform column col in [0, K()) and a uniform threshold u in
// [0, 1) to a sample from the distribution. It is pure: the same inputs
// always give the same value.
func (a *Alias) Draw(col int, u float64) int {
	if u < a.prob[col] {
		return a.lo + col
	}
	return a.lo + int(a.alias[col])
}

// EffectivePMF returns the exact distribution the table samples when col
// and u are ideal uniforms: out[l-lo] accumulates prob[i]/K from each
// column's primary value and (1-prob[i])/K from its alias.
func (a *Alias) EffectivePMF() []float64 {
	k := len(a.prob)
	out := make([]float64, k)
	inv := 1 / float64(k)
	for i := 0; i < k; i++ {
		out[i] += a.prob[i] * inv
		out[int(a.alias[i])] += (1 - a.prob[i]) * inv
	}
	return out
}

// String renders the support for diagnostics.
func (a *Alias) String() string {
	return fmt.Sprintf("Alias(%d..%d)", a.lo, a.lo+len(a.prob)-1)
}
