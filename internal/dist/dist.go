// Package dist defines the discrete path-length distributions of Guan et
// al. (ICDCS 2002): the fixed-length strategy F(l), the uniform strategy
// U(a,b) (Formula 11), the coin-flip geometric strategy of Crowds and
// Onion Routing II (Formula 12), two-point mixtures (the extreme points of
// the mean-constrained simplex used by the optimizer cross-checks),
// truncated Poisson lengths, and arbitrary finite mass functions (the
// optimizer's output format).
//
// Every distribution is an immutable value implementing Length; the exact
// engine, the path selector, the optimizer, and the estimator all consume
// that interface. Support bounds are inclusive and PMF values outside the
// support are zero, so callers may iterate l in [lo, hi] and skip zero
// atoms.
package dist

import (
	"errors"
	"fmt"
	"math"

	"anonmix/internal/combin"
)

// ErrInvalid reports an out-of-domain distribution parameter or a mass
// function that does not form a probability distribution.
var ErrInvalid = errors.New("dist: invalid distribution")

// sumTolerance is the absolute tolerance used when checking that a mass
// function sums to one.
const sumTolerance = 1e-9

// Length is a discrete probability distribution over non-negative path
// lengths with finite support.
type Length interface {
	// Support returns the inclusive bounds [lo, hi] outside of which the
	// PMF is zero. 0 <= lo <= hi.
	Support() (lo, hi int)
	// PMF returns P(length = l); zero outside the support.
	PMF(l int) float64
	// Mean returns the expected path length.
	Mean() float64
	// String renders the distribution in the paper's notation.
	String() string
}

// Validate checks that d is a well-formed distribution: non-nil, with
// sane support bounds, non-negative finite atoms, and total mass 1 within
// tolerance.
func Validate(d Length) error {
	if d == nil {
		return fmt.Errorf("%w: nil distribution", ErrInvalid)
	}
	lo, hi := d.Support()
	if lo < 0 || hi < lo {
		return fmt.Errorf("%w: support [%d,%d]", ErrInvalid, lo, hi)
	}
	var sum float64
	for l := lo; l <= hi; l++ {
		p := d.PMF(l)
		if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			return fmt.Errorf("%w: P(%d) = %v", ErrInvalid, l, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > sumTolerance {
		return fmt.Errorf("%w: mass sums to %v, want 1", ErrInvalid, sum)
	}
	return nil
}

// Fixed is the paper's fixed-length strategy F(l): every rerouting path has
// exactly L intermediate nodes.
type Fixed struct {
	// L is the path length.
	L int
}

// NewFixed returns the point-mass distribution at length l >= 0.
func NewFixed(l int) (Fixed, error) {
	if l < 0 {
		return Fixed{}, fmt.Errorf("%w: fixed length %d", ErrInvalid, l)
	}
	return Fixed{L: l}, nil
}

// Support returns [L, L].
func (f Fixed) Support() (int, int) { return f.L, f.L }

// PMF returns 1 at L, 0 elsewhere.
func (f Fixed) PMF(l int) float64 {
	if l == f.L {
		return 1
	}
	return 0
}

// Mean returns L.
func (f Fixed) Mean() float64 { return float64(f.L) }

// String renders the paper's F(l) notation.
func (f Fixed) String() string { return fmt.Sprintf("F(%d)", f.L) }

// Uniform is the paper's variable-length strategy U(a,b) (Formula 11):
// the length is equiprobable over the integers in [A, B].
type Uniform struct {
	// A and B are the inclusive support bounds.
	A, B int
}

// NewUniform returns the uniform distribution on [a, b], 0 <= a <= b.
func NewUniform(a, b int) (Uniform, error) {
	if a < 0 || b < a {
		return Uniform{}, fmt.Errorf("%w: uniform bounds [%d,%d]", ErrInvalid, a, b)
	}
	return Uniform{A: a, B: b}, nil
}

// Support returns [A, B].
func (u Uniform) Support() (int, int) { return u.A, u.B }

// PMF returns 1/(B-A+1) inside the support.
func (u Uniform) PMF(l int) float64 {
	if l < u.A || l > u.B {
		return 0
	}
	return 1 / float64(u.B-u.A+1)
}

// Mean returns (A+B)/2.
func (u Uniform) Mean() float64 { return float64(u.A+u.B) / 2 }

// String renders the paper's U(a,b) notation.
func (u Uniform) String() string { return fmt.Sprintf("U(%d,%d)", u.A, u.B) }

// Geometric is the coin-flip length distribution of Crowds / Onion Routing
// II (the paper's Formula 12): after Min mandatory hops each further hop is
// taken with probability Pf, truncated at Max and renormalized so the mass
// on [Min, Max] sums to one.
type Geometric struct {
	// Pf is the forwarding probability in [0, 1).
	Pf float64
	// Min and Max bound the support.
	Min, Max int

	norm float64 // 1 - Pf^(Max-Min+1), the truncated total mass
	mean float64
}

// NewGeometric returns the truncated geometric distribution
// P(l) ∝ pf^(l-min)·(1-pf) on [min, max], with pf in [0, 1).
func NewGeometric(pf float64, min, max int) (Geometric, error) {
	if pf < 0 || pf >= 1 || math.IsNaN(pf) {
		return Geometric{}, fmt.Errorf("%w: forwarding probability %v", ErrInvalid, pf)
	}
	if min < 0 || max < min {
		return Geometric{}, fmt.Errorf("%w: geometric bounds [%d,%d]", ErrInvalid, min, max)
	}
	g := Geometric{Pf: pf, Min: min, Max: max}
	g.norm = 1 - math.Pow(pf, float64(max-min+1))
	var mean float64
	for l := min; l <= max; l++ {
		mean += float64(l) * g.PMF(l)
	}
	g.mean = mean
	return g, nil
}

// Support returns [Min, Max].
func (g Geometric) Support() (int, int) { return g.Min, g.Max }

// PMF returns the truncated, renormalized geometric mass at l.
func (g Geometric) PMF(l int) float64 {
	if l < g.Min || l > g.Max {
		return 0
	}
	norm := g.norm
	if norm == 0 {
		// Zero-valued struct or pf so close to 0 that the power underflowed;
		// recompute the safe default (point mass cases keep norm = 1-pf > 0).
		norm = 1
	}
	return math.Pow(g.Pf, float64(l-g.Min)) * (1 - g.Pf) / norm
}

// Mean returns the truncated expectation (≈ Min + Pf/(1-Pf) when Max is
// far in the tail).
func (g Geometric) Mean() float64 { return g.mean }

// String renders the forwarding probability and support.
func (g Geometric) String() string {
	return fmt.Sprintf("Geom(pf=%g,%d..%d)", g.Pf, g.Min, g.Max)
}

// TwoPoint is a two-atom mixture: length L1 with probability P1, length L2
// with probability 1-P1. The extreme points of the mean-constrained
// simplex are two-point distributions, which makes this family the
// optimizer's exhaustive cross-check.
type TwoPoint struct {
	// L1 and L2 are the two support atoms, L1 <= L2.
	L1, L2 int
	// P1 is the mass on L1.
	P1 float64
}

// NewTwoPoint returns the two-atom distribution {l1: p1, l2: 1-p1} with
// 0 <= l1 <= l2 and p1 in [0, 1]. When l1 == l2 the atoms merge.
func NewTwoPoint(l1, l2 int, p1 float64) (TwoPoint, error) {
	if l1 < 0 || l2 < l1 {
		return TwoPoint{}, fmt.Errorf("%w: two-point atoms (%d,%d)", ErrInvalid, l1, l2)
	}
	if p1 < 0 || p1 > 1 || math.IsNaN(p1) {
		return TwoPoint{}, fmt.Errorf("%w: two-point mass %v", ErrInvalid, p1)
	}
	return TwoPoint{L1: l1, L2: l2, P1: p1}, nil
}

// Support returns [L1, L2].
func (t TwoPoint) Support() (int, int) { return t.L1, t.L2 }

// PMF returns the atom masses (merged when L1 == L2).
func (t TwoPoint) PMF(l int) float64 {
	if t.L1 == t.L2 {
		if l == t.L1 {
			return 1
		}
		return 0
	}
	switch l {
	case t.L1:
		return t.P1
	case t.L2:
		return 1 - t.P1
	default:
		return 0
	}
}

// Mean returns P1·L1 + (1-P1)·L2.
func (t TwoPoint) Mean() float64 {
	if t.L1 == t.L2 {
		return float64(t.L1)
	}
	return t.P1*float64(t.L1) + (1-t.P1)*float64(t.L2)
}

// String renders both atoms with their masses.
func (t TwoPoint) String() string {
	return fmt.Sprintf("TwoPoint(%d:%.4g,%d:%.4g)", t.L1, t.P1, t.L2, 1-t.P1)
}

// Poisson is a Poisson(λ) length distribution truncated to [Min, Max] and
// renormalized — a smooth unimodal family used to exercise the engine away
// from the paper's parametric strategies.
type Poisson struct {
	// Lambda is the rate parameter.
	Lambda float64
	// Min and Max bound the support.
	Min, Max int

	mass []float64 // normalized masses, indexed by l-Min
	mean float64
}

// NewPoisson returns the truncated Poisson distribution with rate lambda on
// [min, max].
func NewPoisson(lambda float64, min, max int) (Poisson, error) {
	if lambda <= 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return Poisson{}, fmt.Errorf("%w: Poisson rate %v", ErrInvalid, lambda)
	}
	if min < 0 || max < min {
		return Poisson{}, fmt.Errorf("%w: Poisson bounds [%d,%d]", ErrInvalid, min, max)
	}
	p := Poisson{Lambda: lambda, Min: min, Max: max, mass: make([]float64, max-min+1)}
	logLambda := math.Log(lambda)
	var sum float64
	for l := min; l <= max; l++ {
		// log P(l) = l·ln λ − λ − ln l!, via the shared log-factorial table.
		p.mass[l-min] = math.Exp(float64(l)*logLambda - lambda - combin.LogFactorial(l))
		sum += p.mass[l-min]
	}
	if sum <= 0 {
		return Poisson{}, fmt.Errorf("%w: Poisson(%v) has no mass on [%d,%d]", ErrInvalid, lambda, min, max)
	}
	var mean float64
	for i := range p.mass {
		p.mass[i] /= sum
		mean += float64(min+i) * p.mass[i]
	}
	p.mean = mean
	return p, nil
}

// Support returns [Min, Max].
func (p Poisson) Support() (int, int) { return p.Min, p.Max }

// PMF returns the truncated, renormalized Poisson mass at l.
func (p Poisson) PMF(l int) float64 {
	if l < p.Min || l > p.Max || p.mass == nil {
		return 0
	}
	return p.mass[l-p.Min]
}

// Mean returns the truncated expectation.
func (p Poisson) Mean() float64 { return p.mean }

// String renders the rate and support.
func (p Poisson) String() string {
	return fmt.Sprintf("Poisson(%g,%d..%d)", p.Lambda, p.Min, p.Max)
}

// PMF is an arbitrary finite mass function: Mass[i] is the probability of
// length Lo+i. It is the output format of the optimizer and the input
// format for hand-built or randomly generated distributions. The struct
// may be constructed literally for internal plumbing; NewPMF validates.
type PMF struct {
	// Lo is the length of the first atom.
	Lo int
	// Mass holds one probability per consecutive length.
	Mass []float64
}

// NewPMF returns a validated mass function on [lo, lo+len(mass)-1]. The
// mass slice is copied.
func NewPMF(lo int, mass []float64) (PMF, error) {
	if lo < 0 || len(mass) == 0 {
		return PMF{}, fmt.Errorf("%w: PMF lo=%d with %d atoms", ErrInvalid, lo, len(mass))
	}
	p := PMF{Lo: lo, Mass: append([]float64(nil), mass...)}
	if err := Validate(p); err != nil {
		return PMF{}, err
	}
	return p, nil
}

// Support returns [Lo, Lo+len(Mass)-1].
func (p PMF) Support() (int, int) { return p.Lo, p.Lo + len(p.Mass) - 1 }

// PMF returns Mass[l-Lo], or zero outside the support.
func (p PMF) PMF(l int) float64 {
	i := l - p.Lo
	if i < 0 || i >= len(p.Mass) {
		return 0
	}
	return p.Mass[i]
}

// Mean returns the expectation of the mass function.
func (p PMF) Mean() float64 {
	var m float64
	for i, v := range p.Mass {
		m += float64(p.Lo+i) * v
	}
	return m
}

// String renders the support bounds.
func (p PMF) String() string {
	lo, hi := p.Support()
	return fmt.Sprintf("PMF(%d..%d)", lo, hi)
}

// Interface compliance.
var (
	_ Length = Fixed{}
	_ Length = Uniform{}
	_ Length = Geometric{}
	_ Length = TwoPoint{}
	_ Length = Poisson{}
	_ Length = PMF{}
)
