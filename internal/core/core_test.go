package core_test

import (
	"errors"
	"math"
	"testing"

	"anonmix/internal/core"
	"anonmix/internal/dist"
	"anonmix/internal/events"
	"anonmix/internal/pathsel"
	"anonmix/internal/theory"
	"anonmix/internal/trace"
)

func system(t *testing.T, n, c int) *core.System {
	t.Helper()
	s, err := core.NewSystem(n, c)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := core.NewSystem(1, 0); !errors.Is(err, events.ErrInvalidSystem) {
		t.Errorf("n=1 err = %v", err)
	}
	s := system(t, 100, 1)
	if s.N() != 100 || s.C() != 1 || s.Engine() == nil {
		t.Errorf("accessors: %d %d", s.N(), s.C())
	}
	if math.Abs(s.MaxAnonymity()-math.Log2(100)) > 1e-12 {
		t.Errorf("MaxAnonymity = %v", s.MaxAnonymity())
	}
}

func TestAnonymityDegreeMatchesTheory(t *testing.T) {
	s := system(t, 100, 1)
	h, err := s.AnonymityDegree(pathsel.OnionRoutingI())
	if err != nil {
		t.Fatal(err)
	}
	want, err := theory.FixedSimpleC1(100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-want) > 1e-12 {
		t.Errorf("OR-I H* = %v, want %v", h, want)
	}
	norm, err := s.NormalizedDegree(pathsel.OnionRoutingI())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(norm-h/math.Log2(100)) > 1e-12 {
		t.Errorf("normalized = %v", norm)
	}
}

func TestAnonymityDegreeRejectsComplicated(t *testing.T) {
	s := system(t, 100, 1)
	cr, err := pathsel.Crowds(0.7, 99)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AnonymityDegree(cr); !errors.Is(err, core.ErrComplicated) {
		t.Errorf("err = %v, want ErrComplicated", err)
	}
	bad := pathsel.Strategy{}
	if _, err := s.AnonymityDegree(bad); !errors.Is(err, pathsel.ErrBadStrategy) {
		t.Errorf("err = %v, want ErrBadStrategy", err)
	}
}

func TestAnonymityDegreeOf(t *testing.T) {
	s := system(t, 100, 1)
	u, err := dist.NewUniform(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.AnonymityDegreeOf(u)
	if err != nil {
		t.Fatal(err)
	}
	want, err := theory.C1(100, u)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-want) > 1e-10 {
		t.Errorf("H* = %v, want %v", h, want)
	}
}

func TestOptimalStrategy(t *testing.T) {
	s := system(t, 60, 1)
	strat, h, err := s.OptimalStrategy(8)
	if err != nil {
		t.Fatal(err)
	}
	if strat.Kind != pathsel.Simple {
		t.Errorf("kind = %v", strat.Kind)
	}
	if m := strat.Length.Mean(); math.Abs(m-8) > 1e-6 {
		t.Errorf("optimal mean = %v", m)
	}
	// Optimal must beat the fixed strategy at the same mean.
	f, err := pathsel.FixedLength(8)
	if err != nil {
		t.Fatal(err)
	}
	hf, err := s.AnonymityDegree(f)
	if err != nil {
		t.Fatal(err)
	}
	if !(h > hf) {
		t.Errorf("optimal %v not above fixed %v", h, hf)
	}
	// And the strategy itself must evaluate to the reported H.
	again, err := s.AnonymityDegree(strat)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(again-h) > 1e-9 {
		t.Errorf("re-evaluated %v, reported %v", again, h)
	}
}

func TestGloballyOptimalStrategy(t *testing.T) {
	s := system(t, 50, 1)
	_, h, err := s.GloballyOptimalStrategy()
	if err != nil {
		t.Fatal(err)
	}
	// Must beat the best fixed length.
	best := math.Inf(-1)
	for l := 0; l <= 49; l++ {
		f, err := pathsel.FixedLength(l)
		if err != nil {
			t.Fatal(err)
		}
		hf, err := s.AnonymityDegree(f)
		if err != nil {
			t.Fatal(err)
		}
		if hf > best {
			best = hf
		}
	}
	if h < best-1e-9 {
		t.Errorf("global optimum %v below best fixed %v", h, best)
	}
	if h > s.MaxAnonymity() {
		t.Errorf("H %v above log2 N", h)
	}
}

// TestCompareStrategiesSurvey reproduces the qualitative §2 comparison:
// with one compromised node among 100, the single-proxy systems
// (Anonymizer/LPWA) and the short fixed routes are ranked by the engine.
func TestCompareStrategiesSurvey(t *testing.T) {
	s := system(t, 100, 1)
	strats := []pathsel.Strategy{
		pathsel.Anonymizer(),
		pathsel.Freedom(),
		pathsel.OnionRoutingI(),
		pathsel.PipeNet(),
	}
	rows, err := s.CompareStrategies(strats, nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(strats) {
		t.Fatalf("%d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1].H < rows[i].H {
			t.Errorf("rows not sorted: %v before %v", rows[i-1].H, rows[i].H)
		}
	}
	// With N=100, C=1, Onion Routing I (5 hops) beats Freedom (3 hops),
	// which beats the single-proxy Anonymizer — matching Figure 3's rise
	// over short lengths... except F(1)=F(2) > F(3) (short-path effect),
	// so Anonymizer actually beats Freedom. Verify the exact order.
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Strategy.Name] = r.H
	}
	if !(byName["Onion Routing I"] > byName["Anonymizer"]) {
		t.Errorf("OR-I (%v) should beat Anonymizer (%v)", byName["Onion Routing I"], byName["Anonymizer"])
	}
	if !(byName["Anonymizer"] > byName["Freedom"]) {
		t.Errorf("short-path effect: Anonymizer (%v) should beat Freedom (%v)",
			byName["Anonymizer"], byName["Freedom"])
	}
	if !(byName["PipeNet"] > byName["Freedom"]) {
		t.Errorf("PipeNet (%v) should beat Freedom (%v)", byName["PipeNet"], byName["Freedom"])
	}
}

func TestCompareStrategiesEstimatesComplicated(t *testing.T) {
	s := system(t, 30, 2)
	cr, err := pathsel.Crowds(0.6, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Without trials: rejected.
	if _, err := s.CompareStrategies([]pathsel.Strategy{cr}, nil, 0, 0); !errors.Is(err, core.ErrComplicated) {
		t.Errorf("err = %v", err)
	}
	// With trials but wrong compromised count: rejected.
	if _, err := s.CompareStrategies([]pathsel.Strategy{cr}, []trace.NodeID{1}, 1000, 7); err == nil {
		t.Error("wrong compromised count accepted")
	}
	rows, err := s.CompareStrategies([]pathsel.Strategy{cr, pathsel.Freedom()},
		[]trace.NodeID{3, 9}, 4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, r := range rows {
		if r.Strategy.Name == "Crowds" {
			found = true
			if !r.Estimated || r.CI95 <= 0 {
				t.Errorf("Crowds row not estimated: %+v", r)
			}
		}
		if r.Strategy.Name == "Freedom" && r.Estimated {
			t.Error("Freedom row should be exact")
		}
	}
	if !found {
		t.Error("Crowds row missing")
	}
}
