// Package core is the public face of the library: it ties the exact
// anonymity-degree engine, the path-selection strategy catalog, the
// optimizer, and the Monte-Carlo estimator together behind one System
// type, mirroring the workflow of Guan et al. (ICDCS 2002):
//
//	sys, _ := core.NewSystem(100, 1)             // N nodes, C compromised
//	h, _ := sys.AnonymityDegree(pathsel.Freedom()) // H*(S) of a strategy
//	best, _ := sys.OptimalStrategy(10)            // §5.4 optimal distribution
//
// All computations are exact unless explicitly labeled as estimates.
package core

import (
	"fmt"
	"sort"

	"anonmix/internal/dist"
	"anonmix/internal/entropy"
	"anonmix/internal/events"
	"anonmix/internal/optimize"
	"anonmix/internal/pathsel"
	"anonmix/internal/scenario"
	"anonmix/internal/scenario/capability"
	"anonmix/internal/trace"
)

// ErrComplicated reports a request for exact analysis of a cyclic-route
// strategy; exact analysis covers simple paths (use package crowds for the
// predecessor analysis of cyclic routes, or the testbed backend).
//
// It is an alias of the scenario layer's canonical capability sentinel, so
// errors.Is(err, core.ErrComplicated),
// errors.Is(err, montecarlo.ErrComplicatedPaths), and
// errors.Is(err, capability.ErrComplicatedPaths) are interchangeable.
var ErrComplicated = capability.ErrComplicatedPaths

// System models an anonymous communication system of N nodes, C of which
// are compromised, plus a compromised receiver — the paper's default
// threat model (options can relax it).
type System struct {
	engine *events.Engine
}

// NewSystem builds a system with the given node and compromised counts.
// Engine options (inference mode, receiver assumptions) are forwarded.
// Engines come from the scenario layer's process-wide cache, so every
// System, figure generator, and CLI sharing a configuration shares one
// memoizing engine.
func NewSystem(n, c int, opts ...events.Option) (*System, error) {
	e, err := scenario.Engine(n, c, opts...)
	if err != nil {
		return nil, err
	}
	return &System{engine: e}, nil
}

// N returns the number of nodes.
func (s *System) N() int { return s.engine.N() }

// C returns the number of compromised nodes.
func (s *System) C() int { return s.engine.C() }

// Engine exposes the underlying exact engine for advanced use.
func (s *System) Engine() *events.Engine { return s.engine }

// MaxAnonymity returns log2(N), the paper's upper bound (conclusion 4).
func (s *System) MaxAnonymity() float64 { return s.engine.MaxAnonymity() }

// AnonymityDegree returns the exact H*(S) for a strategy on simple paths.
func (s *System) AnonymityDegree(strat pathsel.Strategy) (float64, error) {
	if err := strat.Validate(s.N()); err != nil {
		return 0, err
	}
	if strat.Kind != pathsel.Simple {
		return 0, fmt.Errorf("%w: %s", ErrComplicated, strat.Name)
	}
	return s.engine.AnonymityDegree(strat.Length)
}

// AnonymityDegreeOf returns the exact H*(S) for a raw length distribution
// (simple paths).
func (s *System) AnonymityDegreeOf(d dist.Length) (float64, error) {
	return s.engine.AnonymityDegree(d)
}

// NormalizedDegree returns H*(S)/log2(N) ∈ [0,1].
func (s *System) NormalizedDegree(strat pathsel.Strategy) (float64, error) {
	h, err := s.AnonymityDegree(strat)
	if err != nil {
		return 0, err
	}
	return entropy.Normalized(h, s.N()), nil
}

// OptimalStrategy solves the paper's optimization problem (§5.4) for a
// target expected path length: it returns the strategy whose length
// distribution maximizes H*(S) among all distributions on [0, N−1] with
// that mean, together with the achieved anonymity degree.
func (s *System) OptimalStrategy(mean float64) (pathsel.Strategy, float64, error) {
	res, err := optimize.Maximize(optimize.Problem{
		Engine: s.engine,
		Lo:     0,
		Hi:     s.N() - 1,
		Mean:   mean,
	})
	if err != nil {
		return pathsel.Strategy{}, 0, err
	}
	strat, err := pathsel.WithLength(fmt.Sprintf("Optimal(mean=%g)", mean), res.Dist)
	if err != nil {
		return pathsel.Strategy{}, 0, err
	}
	return strat, res.H, nil
}

// GloballyOptimalStrategy solves the unconstrained problem: the best
// distribution on [0, N−1] regardless of expected path length (and hence
// of latency/bandwidth cost).
func (s *System) GloballyOptimalStrategy() (pathsel.Strategy, float64, error) {
	res, err := optimize.Maximize(optimize.Problem{
		Engine: s.engine,
		Lo:     0,
		Hi:     s.N() - 1,
		Mean:   optimize.UnconstrainedMean(),
	})
	if err != nil {
		return pathsel.Strategy{}, 0, err
	}
	strat, err := pathsel.WithLength("Optimal(unconstrained)", res.Dist)
	if err != nil {
		return pathsel.Strategy{}, 0, err
	}
	return strat, res.H, nil
}

// Comparison is one row of a strategy comparison.
type Comparison struct {
	// Strategy is the compared strategy.
	Strategy pathsel.Strategy
	// H is the exact anonymity degree (simple-path strategies) or the
	// Monte-Carlo estimate (complicated-path strategies, Estimated=true).
	H float64
	// Normalized is H/log2(N).
	Normalized float64
	// MeanLength is the strategy's expected path length (its latency and
	// bandwidth cost proxy).
	MeanLength float64
	// Estimated marks Monte-Carlo rows (±CI95).
	Estimated bool
	// CI95 is the 95% confidence half-width for estimated rows.
	CI95 float64
}

// CompareStrategies evaluates strategies side by side, sorted by
// descending anonymity degree. Simple-path strategies are computed
// exactly. Complicated-path strategies (Crowds, Onion Routing II) are
// approximated by running the Monte-Carlo estimator on the simple-path
// strategy sharing their length distribution — pass trials > 0 and the
// compromised node IDs to enable this; otherwise they are rejected with
// ErrComplicated. The cycles-vs-no-cycles substitution is documented in
// DESIGN.md §5; package crowds provides the dedicated cyclic-route
// predecessor analysis.
func (s *System) CompareStrategies(strats []pathsel.Strategy, compromised []trace.NodeID, trials int, seed int64) ([]Comparison, error) {
	out := make([]Comparison, 0, len(strats))
	for _, st := range strats {
		cmp := Comparison{Strategy: st, MeanLength: 0}
		if st.Length != nil {
			cmp.MeanLength = st.Length.Mean()
		}
		switch {
		case st.Kind == pathsel.Simple:
			h, err := s.AnonymityDegree(st)
			if err != nil {
				return nil, fmt.Errorf("core: comparing %s: %w", st.Name, err)
			}
			cmp.H = h
		case trials > 0:
			if len(compromised) != s.C() {
				return nil, fmt.Errorf("core: comparing %s: need %d compromised node IDs for estimation",
					st.Name, s.C())
			}
			// Complicated-path strategies are estimated with the
			// simple-path strategy that shares their length distribution;
			// the difference (cycles) is documented in DESIGN.md §5.
			approx := pathsel.Strategy{Name: st.Name, Length: st.Length, Kind: pathsel.Simple}
			res, err := scenario.Run(scenario.Config{
				N:         s.N(),
				Backend:   scenario.BackendMonteCarlo,
				Strategy:  approx,
				Adversary: scenario.Adversary{Compromised: compromised},
				Workload: scenario.Workload{
					Messages: trials,
					Seed:     seed,
					// The estimate is a pure function of (Seed, Trials,
					// Workers); pin the width so a caller-supplied seed
					// means the same numbers on every machine.
					Workers: 4,
				},
			})
			if err != nil {
				return nil, fmt.Errorf("core: estimating %s: %w", st.Name, err)
			}
			cmp.H = res.H
			cmp.Estimated = true
			cmp.CI95 = res.CI95
		default:
			return nil, fmt.Errorf("core: comparing %s: %w",
				st.Name, capability.Unsupported("exact", ErrComplicated, "pass trials > 0 to estimate"))
		}
		cmp.Normalized = entropy.Normalized(cmp.H, s.N())
		out = append(out, cmp)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].H > out[j].H })
	return out, nil
}
