// Package montecarlo estimates the anonymity degree by sampling: it draws
// rerouting paths from a strategy, synthesizes the observations the
// adversary would collect, runs the exact posterior inference on each, and
// averages the posterior entropies. Because each sampled event's entropy is
// computed exactly (only the event itself is sampled), the estimator is
// unbiased with low variance; it exists to validate the closed-form engine
// and to extend the analysis to configurations the exact enumeration does
// not cover (for example more compromised nodes than the class space
// allows).
//
// The trial loops run on a zero-allocation fast path: every trial derives
// its own counter-based RNG stream (stats.NewStream(Seed, trial)), draws
// paths through a per-worker alias-table sampler (pathsel.Sampler), and
// analyzes them through per-worker scratch arenas (adversary.Scratch plus
// reusable accumulators). Trials are scheduled in fixed batches whose
// partial Welford summaries merge in batch order, so the estimate is a
// pure function of (Seed, Trials) — the worker count only sets the
// parallelism.
package montecarlo

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"anonmix/internal/adversary"
	"anonmix/internal/dist"
	"anonmix/internal/events"
	"anonmix/internal/faults"
	"anonmix/internal/pathsel"
	"anonmix/internal/pool"
	"anonmix/internal/scenario/capability"
	"anonmix/internal/stats"
	"anonmix/internal/trace"
)

// Errors returned by the estimator.
var (
	// ErrBadConfig reports an inconsistent estimator configuration.
	ErrBadConfig = errors.New("montecarlo: invalid configuration")
	// ErrComplicatedPaths reports a strategy with cyclic routes, which the
	// simple-path posterior model does not cover; use package crowds for
	// the predecessor analysis of cyclic routes, or the testbed backend.
	//
	// It is an alias of the scenario layer's canonical capability sentinel
	// (see internal/scenario/capability), so errors.Is treats it, core's
	// ErrComplicated, and capability.ErrComplicatedPaths as one error.
	ErrComplicatedPaths = capability.ErrComplicatedPaths
)

// trialBatchSize is the work-stealing granule of the estimators: trials
// [b·64, (b+1)·64) form batch b. Each batch's partial statistics are
// computed from that batch's per-trial streams alone and merged in batch
// order, so results are invariant to how batches land on workers.
const trialBatchSize = 64

// Config parameterizes an estimation run.
type Config struct {
	// N is the number of system nodes.
	N int
	// Compromised lists the adversary's nodes (the receiver is always
	// compromised in addition).
	Compromised []trace.NodeID
	// Strategy is the path-selection policy to evaluate (simple paths).
	Strategy pathsel.Strategy
	// Trials is the number of sampled messages (Rounds ≤ 1) or sampled
	// repeated-communication sessions (Rounds > 1).
	Trials int
	// Rounds is the number of messages each sampled session sends from one
	// fixed sender (the repeated-communication attack of Wright et al.).
	// Zero or one means the classical single-shot estimate; larger values
	// fold every session's per-round posteriors through an
	// adversary.Accumulator and report the degradation curve H_1..H_k.
	Rounds int
	// Confidence, when in (0,1), tracks identification: a session counts as
	// identified at the first round where the accumulated posterior's top
	// node is the true sender with at least this mass.
	Confidence float64
	// FixedSender pins every trial's (or session's) initiator to Sender
	// instead of drawing senders uniformly.
	FixedSender bool
	// Sender is the pinned initiator when FixedSender is set.
	Sender trace.NodeID
	// Seed makes the run reproducible.
	Seed int64
	// Workers sets the number of sampling goroutines; it defaults to the
	// shared pool width (pool.Workers()) so sampling saturates the machine.
	// Every trial draws from its own counter-based stream, so the estimate
	// is a pure function of (Seed, Trials) alone — Workers only controls
	// how fast it is computed.
	Workers int
	// EngineOptions are forwarded to the exact engine (inference mode,
	// receiver assumptions).
	EngineOptions []events.Option
	// Engine, when non-nil, is used instead of constructing a fresh
	// engine; the scenario layer passes its process-shared engine here so
	// estimator runs hit warm posterior caches. It must match N,
	// len(Compromised), and EngineOptions.
	Engine *events.Engine
	// LinkLoss is the per-link, per-attempt transmission loss probability
	// of the sampled delivery process. Positive loss (or a retry Policy)
	// switches the estimator to loss-aware sampling: each trial simulates
	// the delivery process, H averages over delivered trials only, and the
	// Result carries DeliveryRate, MeanAttempts, and the retry-degraded
	// HDegraded. Loss-aware sampling is single-shot (Rounds ≤ 1, no
	// Confidence tracking).
	LinkLoss float64
	// Policy is the delivery-reliability reaction to a lost transmission:
	// drop (faults.PolicyNone, default), per-link retransmission
	// (PolicyRetransmit), or end-to-end rerouting over fresh paths
	// (PolicyReroute).
	Policy faults.Policy
	// MaxAttempts bounds transmissions per link (PolicyRetransmit) or path
	// attempts per message (PolicyReroute); 0 means
	// faults.DefaultMaxAttempts.
	MaxAttempts int
	// Cancel, when non-nil, aborts the run early: workers poll the channel
	// between trial batches, and once it fires the estimator returns an
	// error wrapping context.Canceled instead of a partial result. A nil
	// channel never fires (the default: runs are not cancelable). Because
	// the check sits on batch boundaries, cancellation never perturbs the
	// per-trial streams — a run that completes is bit-identical whether or
	// not a cancel channel was armed.
	Cancel <-chan struct{}
	// Progress, when non-nil, is called after every completed trial batch
	// with the cumulative completed-trial count and the total budget. It
	// may be called concurrently from worker goroutines (cumulative counts
	// can therefore arrive out of order) and must return quickly.
	Progress func(done, total int)
}

// Result summarizes an estimation run.
type Result struct {
	// H is the estimated anonymity degree (mean posterior entropy).
	H float64
	// StdErr is the standard error of H.
	StdErr float64
	// CI95 is the 95% confidence half-width.
	CI95 float64
	// Trials is the number of samples taken.
	Trials int
	// CompromisedSenderShare is the fraction of trials whose sender was a
	// compromised node (those contribute zero entropy, the C/N branch).
	CompromisedSenderShare float64
	// HRounds is the degradation curve of a multi-round run: HRounds[r] is
	// the mean accumulated posterior entropy after round r+1, averaged over
	// sessions (nil for single-shot runs). H, StdErr, and CI95 describe the
	// final round.
	HRounds []float64
	// IdentifiedShare is the fraction of sessions identified within Rounds
	// at the configured Confidence (0 when Confidence is unset).
	IdentifiedShare float64
	// MeanRoundsToIdentify is the mean identification round among
	// identified sessions (0 when none were identified).
	MeanRoundsToIdentify float64
	// DeliveryRate is the fraction of trials delivered end to end (1 for
	// lossless runs). H, StdErr, and CI95 describe delivered trials only.
	DeliveryRate float64
	// MeanAttempts is the mean number of transmission attempts per trial:
	// 1 under PolicyNone, 1 plus the mean retransmission count under
	// PolicyRetransmit, the mean path-attempt count under PolicyReroute.
	MeanAttempts float64
	// HDegraded is the retry-degraded anonymity degree: the mean entropy
	// after the adversary folds the partial-trace evidence leaked by
	// retransmissions and failed rerouting attempts into each delivered
	// trial's posterior. Equal to H for lossless runs.
	HDegraded float64
}

// numBatches returns the batch count for a trial budget.
func numBatches(trials int) int {
	return (trials + trialBatchSize - 1) / trialBatchSize
}

// batchBounds returns the half-open trial range of batch b.
func batchBounds(b, trials int) (lo, hi int) {
	lo = b * trialBatchSize
	hi = lo + trialBatchSize
	if hi > trials {
		hi = trials
	}
	return lo, hi
}

// canceled polls a cancellation channel without blocking; a nil channel
// never fires.
func canceled(ch <-chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// errCanceled is the estimators' cancellation error: it wraps
// context.Canceled so callers classify it with errors.Is rather than by
// message.
func errCanceled(done, total int) error {
	return fmt.Errorf("montecarlo: canceled after %d of %d trials: %w", done, total, context.Canceled)
}

// EstimateH runs the sampled estimation of H*(S).
func EstimateH(cfg Config) (Result, error) {
	if cfg.Trials <= 0 {
		return Result{}, fmt.Errorf("%w: trials = %d", ErrBadConfig, cfg.Trials)
	}
	if cfg.Rounds < 0 {
		return Result{}, fmt.Errorf("%w: rounds = %d", ErrBadConfig, cfg.Rounds)
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 1
	}
	if cfg.Confidence < 0 || cfg.Confidence >= 1 {
		return Result{}, fmt.Errorf("%w: confidence = %v", ErrBadConfig, cfg.Confidence)
	}
	if cfg.FixedSender && (int(cfg.Sender) < 0 || int(cfg.Sender) >= cfg.N) {
		return Result{}, fmt.Errorf("%w: fixed sender %v outside [0,%d)", ErrBadConfig, cfg.Sender, cfg.N)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = pool.Workers()
	}
	if cfg.Strategy.Kind == pathsel.Complicated {
		return Result{}, capability.Unsupported("montecarlo", ErrComplicatedPaths, cfg.Strategy.Name)
	}
	if cfg.LinkLoss < 0 || cfg.LinkLoss > 1 || cfg.LinkLoss != cfg.LinkLoss {
		return Result{}, fmt.Errorf("%w: link loss %v outside [0,1]", ErrBadConfig, cfg.LinkLoss)
	}
	if cfg.Policy > faults.PolicyReroute {
		return Result{}, fmt.Errorf("%w: reliability policy %v", ErrBadConfig, cfg.Policy)
	}
	if cfg.MaxAttempts < 0 {
		return Result{}, fmt.Errorf("%w: MaxAttempts %d", ErrBadConfig, cfg.MaxAttempts)
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = faults.DefaultMaxAttempts
	}
	lossy := cfg.LinkLoss > 0 || cfg.Policy != faults.PolicyNone
	if lossy && (cfg.Rounds > 1 || cfg.Confidence > 0) {
		return Result{}, fmt.Errorf("%w: loss-aware sampling is single-shot (Rounds=%d, Confidence=%v)",
			ErrBadConfig, cfg.Rounds, cfg.Confidence)
	}
	// The reference engine the configuration describes. When the caller
	// injects a shared engine it must match the reference on every axis —
	// N, C, inference mode, receiver assumption, self-report — or the
	// estimate would silently run under a different adversary model.
	ref, err := events.New(cfg.N, len(cfg.Compromised), cfg.EngineOptions...)
	if err != nil {
		return Result{}, err
	}
	engine := cfg.Engine
	if engine == nil {
		engine = ref
	} else if engine.N() != ref.N() || engine.C() != ref.C() || engine.Mode() != ref.Mode() ||
		engine.ReceiverCompromised() != ref.ReceiverCompromised() ||
		engine.SenderSelfReport() != ref.SenderSelfReport() {
		return Result{}, fmt.Errorf("%w: supplied engine (N=%d, C=%d, %v, receiver=%v, selfReport=%v) does not match config (N=%d, C=%d, %v, receiver=%v, selfReport=%v)",
			ErrBadConfig,
			engine.N(), engine.C(), engine.Mode(), engine.ReceiverCompromised(), engine.SenderSelfReport(),
			ref.N(), ref.C(), ref.Mode(), ref.ReceiverCompromised(), ref.SenderSelfReport())
	}
	if !engine.SenderSelfReport() {
		// The sampling loop hardcodes the local-eavesdropper branch
		// (compromised senders contribute zero entropy); the
		// no-self-report ablation is exact-engine-only.
		return Result{}, capability.Unsupported("montecarlo", capability.ErrInference,
			"no-sender-self-report ablation is exact-only")
	}
	if err := dist.Validate(cfg.Strategy.Length); err != nil {
		return Result{}, err
	}
	selector, err := pathsel.NewSelector(cfg.N, cfg.Strategy)
	if err != nil {
		return Result{}, err
	}
	analyst, err := adversary.NewAnalyst(engine, cfg.Strategy.Length, cfg.Compromised)
	if err != nil {
		return Result{}, err
	}
	if cfg.Rounds > 1 || cfg.Confidence > 0 {
		return estimateRounds(cfg, analyst, selector)
	}
	if lossy {
		return estimateLossy(cfg, analyst, selector)
	}

	type arena struct {
		sampler *pathsel.Sampler
		sc      adversary.Scratch
		mt      trace.MessageTrace
	}
	type part struct {
		sum        stats.Summary
		compSender int
		err        error
	}
	batches := numBatches(cfg.Trials)
	parts := make([]part, batches)
	compromised := analyst.Compromised

	// Workers steal whole batches from a shared counter; each batch's
	// partial summary depends only on its own trials' streams, and the
	// batch-ordered merge below makes the result scheduling-independent.
	var nextBatch, done atomic.Int64
	var aborted atomic.Bool
	workers := cfg.Workers
	if workers > batches {
		workers = batches
	}
	pool.ForEach(workers, func(int) {
		sp, err := selector.NewSampler()
		if err != nil {
			if b := int(nextBatch.Add(1)) - 1; b < batches {
				parts[b].err = err
			}
			return
		}
		ar := &arena{sampler: sp}
		for {
			if canceled(cfg.Cancel) {
				aborted.Store(true)
				return
			}
			b := int(nextBatch.Add(1)) - 1
			if b >= batches {
				return
			}
			p := &parts[b]
			lo, hi := batchBounds(b, cfg.Trials)
			for t := lo; t < hi; t++ {
				rng := stats.NewStream(cfg.Seed, int64(t))
				sender := cfg.Sender
				if !cfg.FixedSender {
					sender = trace.NodeID(rng.Intn(cfg.N))
				}
				if compromised(sender) {
					// Local-eavesdropper branch: sender identified.
					p.sum.Add(0)
					p.compSender++
					continue
				}
				path, err := ar.sampler.SelectPath(&rng, sender)
				if err != nil {
					p.err = err
					return
				}
				SynthesizeInto(&ar.mt, 1, sender, path, compromised)
				// EntropyScratch is the O(reports) fast path: it skips the
				// N-entry posterior vector, which is what keeps million-node
				// estimation linear in the path length rather than in N.
				h, err := analyst.EntropyScratch(&ar.mt, &ar.sc)
				if err != nil {
					p.err = err
					return
				}
				p.sum.Add(h)
			}
			if d := int(done.Add(int64(hi - lo))); cfg.Progress != nil {
				cfg.Progress(d, cfg.Trials)
			}
		}
	})

	if aborted.Load() {
		return Result{}, errCanceled(int(done.Load()), cfg.Trials)
	}
	var total stats.Summary
	var compSenders int
	for i := range parts {
		if parts[i].err != nil {
			return Result{}, parts[i].err
		}
		total.Merge(parts[i].sum)
		compSenders += parts[i].compSender
	}
	return Result{
		H:                      total.Mean(),
		StdErr:                 total.StdErr(),
		CI95:                   total.CI95(),
		Trials:                 total.N(),
		CompromisedSenderShare: float64(compSenders) / float64(total.N()),
		DeliveryRate:           1,
		MeanAttempts:           1,
		HDegraded:              total.Mean(),
	}, nil
}

// SessionArena holds the reusable state of repeated-communication
// sessions: the path sampler, the classification scratch, the synthesized
// trace, the posterior accumulator, and the per-round entropy buffer. One
// arena serves any number of sequential sessions; it is not safe for
// concurrent use.
type SessionArena struct {
	analyst   *adversary.Analyst
	sampler   *pathsel.Sampler
	acc       *adversary.Accumulator
	sc        adversary.Scratch
	mt        trace.MessageTrace
	entropies []float64
}

// NewSessionArena builds a session arena for `rounds`-message sessions
// analyzed by the analyst over paths from the selector.
func NewSessionArena(analyst *adversary.Analyst, sel *pathsel.Selector, rounds int) (*SessionArena, error) {
	if rounds < 1 {
		return nil, fmt.Errorf("%w: rounds = %d", ErrBadConfig, rounds)
	}
	sp, err := sel.NewSampler()
	if err != nil {
		return nil, err
	}
	acc, err := adversary.NewAccumulator(analyst)
	if err != nil {
		return nil, err
	}
	return &SessionArena{
		analyst:   analyst,
		sampler:   sp,
		acc:       acc,
		entropies: make([]float64, rounds),
	}, nil
}

// Session runs one repeated-communication session: the fixed sender sends
// the arena's round count of messages over fresh paths, each synthesized
// trace is folded into the accumulator, and the accumulated posterior
// entropy after every round is returned (the slice is the arena's buffer,
// valid until the next call). When confidence ∈ (0,1), identifiedAt is the
// first round (1-based) at which the accumulated posterior put at least
// that mass on the true sender (0 when the threshold was never reached or
// tracking is off). The exact and Monte-Carlo scenario backends both fold
// their sessions through this method, so the two sampled degradation
// estimates share one definition of a round.
func (ar *SessionArena) Session(rng *stats.Stream, sender trace.NodeID, confidence float64) (entropies []float64, identifiedAt int, err error) {
	ar.acc.Reset()
	for r := range ar.entropies {
		path, err := ar.sampler.SelectPath(rng, sender)
		if err != nil {
			return nil, 0, err
		}
		SynthesizeInto(&ar.mt, trace.MessageID(r+1), sender, path, ar.analyst.Compromised)
		if err := ar.acc.ObserveScratch(&ar.mt, &ar.sc); err != nil {
			return nil, 0, err
		}
		h, top, mass, err := ar.acc.SnapshotFast()
		if err != nil {
			return nil, 0, err
		}
		ar.entropies[r] = h
		if identifiedAt == 0 && confidence > 0 && top == sender && mass >= confidence {
			identifiedAt = r + 1
		}
	}
	return ar.entropies, identifiedAt, nil
}

// estimateRounds is the multi-round estimation path: each trial is one
// repeated-communication session, and the merged result carries the
// degradation curve next to the final-round summary. Like the single-shot
// path it is a pure function of (Seed, Trials).
func estimateRounds(cfg Config, analyst *adversary.Analyst, selector *pathsel.Selector) (Result, error) {
	type part struct {
		sum         stats.Summary
		entropySums []float64
		compSender  int
		identified  int
		roundsSum   int
		err         error
	}
	batches := numBatches(cfg.Trials)
	parts := make([]part, batches)

	var nextBatch, done atomic.Int64
	var aborted atomic.Bool
	workers := cfg.Workers
	if workers > batches {
		workers = batches
	}
	pool.ForEach(workers, func(int) {
		ar, err := NewSessionArena(analyst, selector, cfg.Rounds)
		if err != nil {
			if b := int(nextBatch.Add(1)) - 1; b < batches {
				parts[b].err = err
			}
			return
		}
		for {
			if canceled(cfg.Cancel) {
				aborted.Store(true)
				return
			}
			b := int(nextBatch.Add(1)) - 1
			if b >= batches {
				return
			}
			p := &parts[b]
			p.entropySums = make([]float64, cfg.Rounds)
			lo, hi := batchBounds(b, cfg.Trials)
			for t := lo; t < hi; t++ {
				rng := stats.NewStream(cfg.Seed, int64(t))
				sender := cfg.Sender
				if !cfg.FixedSender {
					sender = trace.NodeID(rng.Intn(cfg.N))
				}
				if analyst.Compromised(sender) {
					// Local-eavesdropper branch: the session is identified at
					// its first message and contributes zero entropy throughout.
					p.sum.Add(0)
					p.compSender++
					if cfg.Confidence > 0 {
						p.identified++
						p.roundsSum++
					}
					continue
				}
				entropies, identifiedAt, err := ar.Session(&rng, sender, cfg.Confidence)
				if err != nil {
					p.err = err
					return
				}
				for r, h := range entropies {
					p.entropySums[r] += h
				}
				p.sum.Add(entropies[cfg.Rounds-1])
				if identifiedAt > 0 {
					p.identified++
					p.roundsSum += identifiedAt
				}
			}
			if d := int(done.Add(int64(hi - lo))); cfg.Progress != nil {
				cfg.Progress(d, cfg.Trials)
			}
		}
	})

	if aborted.Load() {
		return Result{}, errCanceled(int(done.Load()), cfg.Trials)
	}
	var total stats.Summary
	var compSenders, identified, roundsSum int
	hRounds := make([]float64, cfg.Rounds)
	for i := range parts {
		if parts[i].err != nil {
			return Result{}, parts[i].err
		}
		total.Merge(parts[i].sum)
		compSenders += parts[i].compSender
		identified += parts[i].identified
		roundsSum += parts[i].roundsSum
		for r, s := range parts[i].entropySums {
			hRounds[r] += s
		}
	}
	for r := range hRounds {
		hRounds[r] /= float64(cfg.Trials)
	}
	res := Result{
		H:                      total.Mean(),
		StdErr:                 total.StdErr(),
		CI95:                   total.CI95(),
		Trials:                 total.N(),
		CompromisedSenderShare: float64(compSenders) / float64(total.N()),
		HRounds:                hRounds,
		IdentifiedShare:        float64(identified) / float64(total.N()),
		DeliveryRate:           1,
		MeanAttempts:           1,
		HDegraded:              total.Mean(),
	}
	if identified > 0 {
		res.MeanRoundsToIdentify = float64(roundsSum) / float64(identified)
	}
	return res, nil
}

// Synthesize constructs the message trace the adversary would collect for a
// concrete rerouting path, without running the network: one tuple per
// compromised intermediate (with logical times increasing along the path)
// plus the receiver's report. It is also used by tests to feed the analyst
// hand-built paths.
func Synthesize(msg trace.MessageID, sender trace.NodeID, path []trace.NodeID,
	compromised func(trace.NodeID) bool) *trace.MessageTrace {
	mt := &trace.MessageTrace{}
	SynthesizeInto(mt, msg, sender, path, compromised)
	return mt
}

// SynthesizeInto is Synthesize into a caller-owned trace, reusing its
// Reports buffer — the trial loops' zero-allocation entry point. Every
// field of mt is overwritten.
func SynthesizeInto(mt *trace.MessageTrace, msg trace.MessageID, sender trace.NodeID,
	path []trace.NodeID, compromised func(trace.NodeID) bool) {
	mt.Msg = msg
	mt.ReceiverSeen = true
	mt.Reports = mt.Reports[:0]
	prev := sender
	for i, hop := range path {
		if compromised(hop) {
			succ := trace.Receiver
			if i+1 < len(path) {
				succ = path[i+1]
			}
			mt.Reports = append(mt.Reports, trace.Tuple{
				Time:     uint64(i + 1),
				Observer: hop,
				Msg:      msg,
				Pred:     prev,
				Succ:     succ,
			})
		}
		prev = hop
	}
	mt.ReceiverPred = prev
}
