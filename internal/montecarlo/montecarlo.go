// Package montecarlo estimates the anonymity degree by sampling: it draws
// rerouting paths from a strategy, synthesizes the observations the
// adversary would collect, runs the exact posterior inference on each, and
// averages the posterior entropies. Because each sampled event's entropy is
// computed exactly (only the event itself is sampled), the estimator is
// unbiased with low variance; it exists to validate the closed-form engine
// and to extend the analysis to configurations the exact enumeration does
// not cover (for example more compromised nodes than the class space
// allows).
package montecarlo

import (
	"errors"
	"fmt"

	"anonmix/internal/adversary"
	"anonmix/internal/dist"
	"anonmix/internal/events"
	"anonmix/internal/pathsel"
	"anonmix/internal/pool"
	"anonmix/internal/scenario/capability"
	"anonmix/internal/stats"
	"anonmix/internal/trace"
)

// Errors returned by the estimator.
var (
	// ErrBadConfig reports an inconsistent estimator configuration.
	ErrBadConfig = errors.New("montecarlo: invalid configuration")
	// ErrComplicatedPaths reports a strategy with cyclic routes, which the
	// simple-path posterior model does not cover; use package crowds for
	// the predecessor analysis of cyclic routes, or the testbed backend.
	//
	// It is an alias of the scenario layer's canonical capability sentinel
	// (see internal/scenario/capability), so errors.Is treats it, core's
	// ErrComplicated, and capability.ErrComplicatedPaths as one error.
	ErrComplicatedPaths = capability.ErrComplicatedPaths
)

// Config parameterizes an estimation run.
type Config struct {
	// N is the number of system nodes.
	N int
	// Compromised lists the adversary's nodes (the receiver is always
	// compromised in addition).
	Compromised []trace.NodeID
	// Strategy is the path-selection policy to evaluate (simple paths).
	Strategy pathsel.Strategy
	// Trials is the number of sampled messages.
	Trials int
	// Seed makes the run reproducible.
	Seed int64
	// Workers sets the number of sampling goroutines; it defaults to the
	// shared pool width (pool.Workers()) so sampling saturates the
	// machine. The estimate is a pure function of (Seed, Trials, Workers),
	// so pin Workers explicitly when runs must reproduce across machines.
	Workers int
	// EngineOptions are forwarded to the exact engine (inference mode,
	// receiver assumptions).
	EngineOptions []events.Option
	// Engine, when non-nil, is used instead of constructing a fresh
	// engine; the scenario layer passes its process-shared engine here so
	// estimator runs hit warm posterior caches. It must match N,
	// len(Compromised), and EngineOptions.
	Engine *events.Engine
}

// Result summarizes an estimation run.
type Result struct {
	// H is the estimated anonymity degree (mean posterior entropy).
	H float64
	// StdErr is the standard error of H.
	StdErr float64
	// CI95 is the 95% confidence half-width.
	CI95 float64
	// Trials is the number of samples taken.
	Trials int
	// CompromisedSenderShare is the fraction of trials whose sender was a
	// compromised node (those contribute zero entropy, the C/N branch).
	CompromisedSenderShare float64
}

// EstimateH runs the sampled estimation of H*(S).
func EstimateH(cfg Config) (Result, error) {
	if cfg.Trials <= 0 {
		return Result{}, fmt.Errorf("%w: trials = %d", ErrBadConfig, cfg.Trials)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = pool.Workers()
	}
	if cfg.Strategy.Kind == pathsel.Complicated {
		return Result{}, capability.Unsupported("montecarlo", ErrComplicatedPaths, cfg.Strategy.Name)
	}
	// The reference engine the configuration describes. When the caller
	// injects a shared engine it must match the reference on every axis —
	// N, C, inference mode, receiver assumption, self-report — or the
	// estimate would silently run under a different adversary model.
	ref, err := events.New(cfg.N, len(cfg.Compromised), cfg.EngineOptions...)
	if err != nil {
		return Result{}, err
	}
	engine := cfg.Engine
	if engine == nil {
		engine = ref
	} else if engine.N() != ref.N() || engine.C() != ref.C() || engine.Mode() != ref.Mode() ||
		engine.ReceiverCompromised() != ref.ReceiverCompromised() ||
		engine.SenderSelfReport() != ref.SenderSelfReport() {
		return Result{}, fmt.Errorf("%w: supplied engine (N=%d, C=%d, %v, receiver=%v, selfReport=%v) does not match config (N=%d, C=%d, %v, receiver=%v, selfReport=%v)",
			ErrBadConfig,
			engine.N(), engine.C(), engine.Mode(), engine.ReceiverCompromised(), engine.SenderSelfReport(),
			ref.N(), ref.C(), ref.Mode(), ref.ReceiverCompromised(), ref.SenderSelfReport())
	}
	if !engine.SenderSelfReport() {
		// The sampling loop hardcodes the local-eavesdropper branch
		// (compromised senders contribute zero entropy); the
		// no-self-report ablation is exact-engine-only.
		return Result{}, capability.Unsupported("montecarlo", capability.ErrInference,
			"no-sender-self-report ablation is exact-only")
	}
	if err := dist.Validate(cfg.Strategy.Length); err != nil {
		return Result{}, err
	}
	selector, err := pathsel.NewSelector(cfg.N, cfg.Strategy)
	if err != nil {
		return Result{}, err
	}
	analyst, err := adversary.NewAnalyst(engine, cfg.Strategy.Length, cfg.Compromised)
	if err != nil {
		return Result{}, err
	}

	type part struct {
		sum        stats.Summary
		compSender int
		err        error
	}
	parts := make([]part, cfg.Workers)
	per := cfg.Trials / cfg.Workers
	extra := cfg.Trials % cfg.Workers

	// Each stream owns a forked RNG and a private accumulator, and the
	// streams are merged in index order below, so the estimate is a pure
	// function of (Seed, Trials, Workers) regardless of how the shared pool
	// schedules them.
	pool.ForEach(cfg.Workers, func(w int) {
		trials := per
		if w < extra {
			trials++
		}
		if trials == 0 {
			return
		}
		rng := stats.Fork(cfg.Seed, int64(w))
		p := &parts[w]
		for t := 0; t < trials; t++ {
			sender := trace.NodeID(rng.Intn(cfg.N))
			if analyst.Compromised(sender) {
				// Local-eavesdropper branch: sender identified.
				p.sum.Add(0)
				p.compSender++
				continue
			}
			path, err := selector.SelectPath(rng, sender)
			if err != nil {
				p.err = err
				return
			}
			mt := Synthesize(1, sender, path, analyst.Compromised)
			// Entropy is the O(reports) fast path: it skips the N-entry
			// posterior vector, which is what keeps million-node
			// estimation linear in the path length rather than in N.
			h, err := analyst.Entropy(mt)
			if err != nil {
				p.err = err
				return
			}
			p.sum.Add(h)
		}
	})

	var total stats.Summary
	var compSenders int
	for i := range parts {
		if parts[i].err != nil {
			return Result{}, parts[i].err
		}
		total.Merge(parts[i].sum)
		compSenders += parts[i].compSender
	}
	return Result{
		H:                      total.Mean(),
		StdErr:                 total.StdErr(),
		CI95:                   total.CI95(),
		Trials:                 total.N(),
		CompromisedSenderShare: float64(compSenders) / float64(total.N()),
	}, nil
}

// Synthesize constructs the message trace the adversary would collect for a
// concrete rerouting path, without running the network: one tuple per
// compromised intermediate (with logical times increasing along the path)
// plus the receiver's report. It is also used by tests to feed the analyst
// hand-built paths.
func Synthesize(msg trace.MessageID, sender trace.NodeID, path []trace.NodeID,
	compromised func(trace.NodeID) bool) *trace.MessageTrace {
	mt := &trace.MessageTrace{Msg: msg, ReceiverSeen: true}
	prev := sender
	for i, hop := range path {
		if compromised(hop) {
			succ := trace.Receiver
			if i+1 < len(path) {
				succ = path[i+1]
			}
			mt.Reports = append(mt.Reports, trace.Tuple{
				Time:     uint64(i + 1),
				Observer: hop,
				Msg:      msg,
				Pred:     prev,
				Succ:     succ,
			})
		}
		prev = hop
	}
	mt.ReceiverPred = prev
	return mt
}
