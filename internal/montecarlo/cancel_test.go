package montecarlo_test

// Cancellation and progress contracts of the estimator: a fired Cancel
// channel aborts between batches with a context.Canceled-wrapping error,
// an armed-but-silent one changes nothing, and Progress accounts for
// every trial exactly once.

import (
	"context"
	"errors"
	"sync"
	"testing"

	"anonmix/internal/montecarlo"
	"anonmix/internal/pathsel"
	"anonmix/internal/trace"
)

func cancelConfig(t *testing.T, rounds int) montecarlo.Config {
	t.Helper()
	strat, err := pathsel.UniformLength(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	return montecarlo.Config{
		N:           30,
		Compromised: []trace.NodeID{0, 1, 2},
		Strategy:    strat,
		Trials:      1000,
		Rounds:      rounds,
		Seed:        7,
		Workers:     2,
	}
}

func TestEstimateCanceled(t *testing.T) {
	closed := make(chan struct{})
	close(closed)
	for _, rounds := range []int{1, 3} {
		cfg := cancelConfig(t, rounds)
		cfg.Cancel = closed
		_, err := montecarlo.EstimateH(cfg)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("rounds=%d: closed Cancel returned %v, want context.Canceled in the chain", rounds, err)
		}
	}
	// The lossy path shares the contract.
	cfg := cancelConfig(t, 1)
	cfg.LinkLoss = 0.1
	cfg.Cancel = closed
	if _, err := montecarlo.EstimateH(cfg); !errors.Is(err, context.Canceled) {
		t.Errorf("lossy: closed Cancel returned %v, want context.Canceled in the chain", err)
	}
}

// TestEstimateCancelArmedIsInert pins that merely arming a cancel channel
// does not perturb the result: the checks sit on batch boundaries, off
// the per-trial streams.
func TestEstimateCancelArmedIsInert(t *testing.T) {
	base := cancelConfig(t, 1)
	plain, err := montecarlo.EstimateH(base)
	if err != nil {
		t.Fatal(err)
	}
	armed := base
	armed.Cancel = make(chan struct{}) // never fires
	got, err := montecarlo.EstimateH(armed)
	if err != nil {
		t.Fatal(err)
	}
	if got.H != plain.H || got.StdErr != plain.StdErr || got.Trials != plain.Trials { //anonlint:allow floatcmp(bit-identity is the contract under test)
		t.Errorf("armed cancel changed the result: %+v vs %+v", got, plain)
	}
}

func TestEstimateProgress(t *testing.T) {
	cfg := cancelConfig(t, 1)
	var (
		mu     sync.Mutex
		calls  int
		last   int
		maxSum int
	)
	cfg.Progress = func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if total != cfg.Trials {
			t.Errorf("Progress total = %d, want %d", total, cfg.Trials)
		}
		if done <= 0 || done > total {
			t.Errorf("Progress done = %d outside (0, %d]", done, total)
		}
		if done > maxSum {
			maxSum = done
		}
		last = done
	}
	if _, err := montecarlo.EstimateH(cfg); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls == 0 {
		t.Fatal("Progress was never called")
	}
	// Cumulative counts may arrive out of order across workers, but every
	// trial is accounted for: the maximum equals the full budget.
	if maxSum != cfg.Trials {
		t.Errorf("max cumulative progress %d, want %d (last seen %d)", maxSum, cfg.Trials, last)
	}
}
