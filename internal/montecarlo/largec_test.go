package montecarlo_test

// Cross-validation of the sampling estimator against the counted-bucket
// exact engine in the high-compromise regime (constant corrupted
// fractions, C = 20–40) that the old Θ(3^C) enumeration could never
// reach. The two paths are fully independent — the estimator samples
// concrete paths and reconstructs per-event posteriors via StatsFor, the
// engine sums closed-form bucket multiplicities — so agreement here pins
// both.

import (
	"math"
	"testing"

	"anonmix/internal/events"
	"anonmix/internal/montecarlo"
	"anonmix/internal/pathsel"
	"anonmix/internal/trace"
)

func TestEstimateMatchesBucketedEngineLargeC(t *testing.T) {
	cases := []struct {
		name   string
		n, c   int
		a, b   int // uniform length bounds
		trials int
	}{
		{"N=60 C=20 U(2,12)", 60, 20, 2, 12, 40000},
		{"N=100 C=30 U(1,15)", 100, 30, 1, 15, 40000},
		{"N=100 C=40 U(2,12)", 100, 40, 2, 12, 40000},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			compromised := make([]trace.NodeID, tc.c)
			for i := range compromised {
				// Spread the compromised IDs over the node range.
				compromised[i] = trace.NodeID(i * tc.n / tc.c)
			}
			strat, err := pathsel.UniformLength(tc.a, tc.b)
			if err != nil {
				t.Fatal(err)
			}
			res, err := montecarlo.EstimateH(montecarlo.Config{
				N:           tc.n,
				Compromised: compromised,
				Strategy:    strat,
				Trials:      tc.trials,
				Seed:        20260730,
				Workers:     4,
			})
			if err != nil {
				t.Fatal(err)
			}
			engine, err := events.New(tc.n, tc.c)
			if err != nil {
				t.Fatal(err)
			}
			want, err := engine.AnonymityDegree(strat.Length)
			if err != nil {
				t.Fatal(err)
			}
			// 4σ plus a small absolute floor, matching the small-C
			// integration test.
			tol := 4*res.StdErr + 1e-3
			if math.Abs(res.H-want) > tol {
				t.Errorf("MC H = %v ± %v, bucketed exact H* = %v (Δ=%v)",
					res.H, res.StdErr, want, res.H-want)
			}
			wantShare := float64(tc.c) / float64(tc.n)
			if math.Abs(res.CompromisedSenderShare-wantShare) > 0.02 {
				t.Errorf("compromised-sender share %v, want ≈%v", res.CompromisedSenderShare, wantShare)
			}
		})
	}
}
