package montecarlo_test

import (
	"reflect"
	"runtime"
	"testing"

	"anonmix/internal/adversary"
	"anonmix/internal/events"
	"anonmix/internal/faults"
	"anonmix/internal/montecarlo"
	"anonmix/internal/pathsel"
	"anonmix/internal/stats"
	"anonmix/internal/trace"
)

// TestWorkerCountIndependence pins the tentpole's determinism contract:
// because every trial draws from its own counter-based stream and batch
// results merge in batch order, the full Result is a pure function of the
// config — Workers only changes wall clock, never a single bit of output.
func TestWorkerCountIndependence(t *testing.T) {
	strat, err := pathsel.UniformLength(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	base := montecarlo.Config{
		N:           16,
		Compromised: []trace.NodeID{3, 11},
		Strategy:    strat,
		Trials:      700,
		Seed:        7,
	}
	for name, mut := range map[string]func(*montecarlo.Config){
		"single-shot": func(c *montecarlo.Config) {},
		"rounds": func(c *montecarlo.Config) {
			c.Rounds = 8
			c.Confidence = 0.9
		},
		"lossy-reroute": func(c *montecarlo.Config) {
			c.LinkLoss = 0.2
			c.Policy = faults.PolicyReroute
		},
		"lossy-retransmit": func(c *montecarlo.Config) {
			c.LinkLoss = 0.15
			c.Policy = faults.PolicyRetransmit
		},
	} {
		t.Run(name, func(t *testing.T) {
			cfg := base
			mut(&cfg)
			cfg.Workers = 1
			serial, err := montecarlo.EstimateH(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Workers = 7
			wide, err := montecarlo.EstimateH(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, wide) {
				t.Errorf("result depends on worker count:\n 1 worker: %+v\n 7 workers: %+v", serial, wide)
			}
		})
	}
}

// TestSessionZeroAllocSteadyState asserts the hot loop's budget at the
// session level: once the arena and the engine's class cache are warm, a
// full multi-round session — path draws, trace synthesis, posterior folds,
// snapshots — performs zero heap allocations.
func TestSessionZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation inflates allocation counts")
	}
	const n = 16
	compromised := []trace.NodeID{3, 11}
	e, err := events.New(n, len(compromised))
	if err != nil {
		t.Fatal(err)
	}
	strat, err := pathsel.UniformLength(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	analyst, err := adversary.NewAnalyst(e, strat.Length, compromised)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := pathsel.NewSelector(n, strat)
	if err != nil {
		t.Fatal(err)
	}
	arena, err := montecarlo.NewSessionArena(analyst, sel, 8)
	if err != nil {
		t.Fatal(err)
	}
	var honest []trace.NodeID
	for v := 0; v < n; v++ {
		if id := trace.NodeID(v); !analyst.Compromised(id) {
			honest = append(honest, id)
		}
	}
	// Warm the arena buffers and the engine's memoized class statistics
	// across the trace mix this configuration can produce.
	for s := 0; s < 200; s++ {
		rng := stats.NewStream(7, int64(s))
		if _, _, err := arena.Session(&rng, honest[s%len(honest)], 0.9); err != nil {
			t.Fatal(err)
		}
	}
	s := 0
	allocs := testing.AllocsPerRun(100, func() {
		rng := stats.NewStream(7, int64(s%200))
		s++
		if _, _, err := arena.Session(&rng, honest[s%len(honest)], 0.9); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state session allocates %v per session of 8 rounds, want 0", allocs)
	}
}

// TestTrialAllocBudget bounds the marginal allocation cost of one trial
// end to end through EstimateH, lossy estimation included: doubling the
// trial count may add only per-batch bookkeeping, not per-trial heap
// traffic. The seed repo spent hundreds of allocations per trial here.
func TestTrialAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation inflates allocation counts")
	}
	strat, err := pathsel.UniformLength(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	run := func(cfg montecarlo.Config, trials int) uint64 {
		cfg.Trials = trials
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		if _, err := montecarlo.EstimateH(cfg); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		return after.Mallocs - before.Mallocs
	}
	for name, cfg := range map[string]montecarlo.Config{
		"rounds": {
			N:           16,
			Compromised: []trace.NodeID{3, 11},
			Strategy:    strat,
			Rounds:      8,
			Seed:        7,
			Workers:     1,
		},
		"lossy": {
			N:           16,
			Compromised: []trace.NodeID{3, 11},
			Strategy:    strat,
			LinkLoss:    0.2,
			Policy:      faults.PolicyRetransmit,
			Seed:        7,
			Workers:     1,
		},
	} {
		t.Run(name, func(t *testing.T) {
			run(cfg, 400) // warm engine caches and arenas outside the measurement
			small := run(cfg, 400)
			large := run(cfg, 1200)
			marginal := float64(large) - float64(small)
			perTrial := marginal / 800
			if perTrial > 3 {
				t.Errorf("marginal cost %.2f allocs per trial (400→1200 trials: %d→%d mallocs), want ≤ 3",
					perTrial, small, large)
			}
		})
	}
}
