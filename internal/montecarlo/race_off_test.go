//go:build !race

package montecarlo_test

const raceEnabled = false
