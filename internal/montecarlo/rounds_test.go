package montecarlo_test

import (
	"errors"
	"math"
	"testing"

	"anonmix/internal/adversary"
	"anonmix/internal/events"
	"anonmix/internal/montecarlo"
	"anonmix/internal/pathsel"
	"anonmix/internal/stats"
	"anonmix/internal/trace"
)

func roundsConfig() montecarlo.Config {
	strat, _ := pathsel.UniformLength(1, 5)
	return montecarlo.Config{
		N:           16,
		Compromised: []trace.NodeID{3, 11},
		Strategy:    strat,
		Trials:      1200,
		Rounds:      8,
		Seed:        7,
		Workers:     4,
	}
}

func TestEstimateHRounds(t *testing.T) {
	res, err := montecarlo.EstimateH(roundsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HRounds) != 8 {
		t.Fatalf("HRounds length %d", len(res.HRounds))
	}
	// The final summary and the last curve point are two computations of
	// the same mean (Welford merge vs plain sum).
	if d := math.Abs(res.H - res.HRounds[7]); d > 1e-9 {
		t.Errorf("H = %v, HRounds[7] = %v", res.H, res.HRounds[7])
	}
	for r := 1; r < len(res.HRounds); r++ {
		if res.HRounds[r] > res.HRounds[r-1]+0.05 {
			t.Errorf("H_%d = %v > H_%d = %v", r+1, res.HRounds[r], r, res.HRounds[r-1])
		}
	}
	if !(res.HRounds[7] < res.HRounds[0]) {
		t.Errorf("no degradation over 8 rounds: %v", res.HRounds)
	}
	if res.Trials != 1200 || res.StdErr <= 0 {
		t.Errorf("result: %+v", res)
	}
	// Without a confidence threshold no identification is tracked.
	if res.IdentifiedShare != 0 || res.MeanRoundsToIdentify != 0 {
		t.Errorf("identification tracked without confidence: %+v", res)
	}
}

func TestEstimateHRoundsDeterministic(t *testing.T) {
	cfg := roundsConfig()
	a, err := montecarlo.EstimateH(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := montecarlo.EstimateH(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.H != b.H || a.StdErr != b.StdErr {
		t.Errorf("not bit-identical: %v±%v vs %v±%v", a.H, a.StdErr, b.H, b.StdErr)
	}
	for r := range a.HRounds {
		if a.HRounds[r] != b.HRounds[r] {
			t.Errorf("HRounds[%d]: %v vs %v", r, a.HRounds[r], b.HRounds[r])
		}
	}
}

func TestEstimateHRoundsIdentification(t *testing.T) {
	cfg := roundsConfig()
	cfg.Rounds = 150
	cfg.Trials = 60
	cfg.Confidence = 0.9
	cfg.FixedSender = true
	cfg.Sender = 5
	res, err := montecarlo.EstimateH(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.IdentifiedShare < 0.9 {
		t.Errorf("identified share %v, want ≥ 0.9", res.IdentifiedShare)
	}
	if res.MeanRoundsToIdentify <= 1 || res.MeanRoundsToIdentify > 150 {
		t.Errorf("mean rounds %v", res.MeanRoundsToIdentify)
	}
	if res.CompromisedSenderShare != 0 {
		t.Errorf("fixed honest sender flagged compromised")
	}
}

func TestEstimateHRoundsValidation(t *testing.T) {
	for name, mut := range map[string]func(*montecarlo.Config){
		"negative rounds":     func(c *montecarlo.Config) { c.Rounds = -1 },
		"confidence too high": func(c *montecarlo.Config) { c.Confidence = 1 },
		"confidence negative": func(c *montecarlo.Config) { c.Confidence = -0.5 },
		"fixed sender range":  func(c *montecarlo.Config) { c.FixedSender = true; c.Sender = 99 },
	} {
		cfg := roundsConfig()
		mut(&cfg)
		if _, err := montecarlo.EstimateH(cfg); !errors.Is(err, montecarlo.ErrBadConfig) {
			t.Errorf("%s: err = %v", name, err)
		}
	}
}

// TestSessionAccumulates drives a SessionArena directly: entropies are
// non-negative, and an honest sender in a small system is identified
// within a generous horizon.
func TestSessionAccumulates(t *testing.T) {
	const n = 12
	compromised := []trace.NodeID{1, 5}
	e, err := events.New(n, len(compromised))
	if err != nil {
		t.Fatal(err)
	}
	strat, err := pathsel.UniformLength(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	analyst, err := adversary.NewAnalyst(e, strat.Length, compromised)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := pathsel.NewSelector(n, strat)
	if err != nil {
		t.Fatal(err)
	}
	arena, err := montecarlo.NewSessionArena(analyst, sel, 200)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewStream(3, 0)
	entropies, identifiedAt, err := arena.Session(&rng, 8, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(entropies) != 200 {
		t.Fatalf("entropies length %d", len(entropies))
	}
	for r, h := range entropies {
		if h < 0 || math.IsNaN(h) {
			t.Fatalf("round %d: entropy %v", r+1, h)
		}
	}
	if identifiedAt < 1 || identifiedAt > 200 {
		t.Errorf("identifiedAt = %d", identifiedAt)
	}
	if entropies[199] > entropies[0] {
		t.Errorf("no accumulation: first %v, last %v", entropies[0], entropies[199])
	}
}
