//go:build race

package montecarlo_test

// raceEnabled reports whether the race detector instruments this build;
// allocation budgets are meaningless under its shadow-memory overhead.
const raceEnabled = true
