package montecarlo_test

import (
	"errors"
	"math"
	"testing"

	"anonmix/internal/events"
	"anonmix/internal/montecarlo"
	"anonmix/internal/pathsel"
	"anonmix/internal/trace"
)

func TestEstimateValidation(t *testing.T) {
	strat, err := pathsel.FixedLength(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := montecarlo.EstimateH(montecarlo.Config{
		N: 10, Strategy: strat, Trials: 0,
	}); !errors.Is(err, montecarlo.ErrBadConfig) {
		t.Errorf("zero trials err = %v", err)
	}
	crowds, err := pathsel.Crowds(0.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := montecarlo.EstimateH(montecarlo.Config{
		N: 10, Strategy: crowds, Trials: 100,
	}); !errors.Is(err, montecarlo.ErrComplicatedPaths) {
		t.Errorf("complicated paths err = %v", err)
	}
}

// TestEstimateMatchesEngine is the key integration test of the sampling
// pipeline: sampled paths → synthesized adversary traces → class
// reconstruction → exact posterior must average to the engine's exact
// H*(S) within the confidence interval.
func TestEstimateMatchesEngine(t *testing.T) {
	cases := []struct {
		name        string
		n           int
		compromised []trace.NodeID
		mk          func() (pathsel.Strategy, error)
	}{
		{"N=20 C=1 F(5)", 20, []trace.NodeID{4},
			func() (pathsel.Strategy, error) { return pathsel.FixedLength(5) }},
		{"N=20 C=3 U(0,10)", 20, []trace.NodeID{1, 7, 13},
			func() (pathsel.Strategy, error) { return pathsel.UniformLength(0, 10) }},
		{"N=15 C=2 U(2,9)", 15, []trace.NodeID{0, 14},
			func() (pathsel.Strategy, error) { return pathsel.UniformLength(2, 9) }},
		{"N=30 C=4 PipeNet", 30, []trace.NodeID{3, 9, 21, 27},
			func() (pathsel.Strategy, error) { return pathsel.PipeNet(), nil }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			strat, err := c.mk()
			if err != nil {
				t.Fatal(err)
			}
			res, err := montecarlo.EstimateH(montecarlo.Config{
				N:           c.n,
				Compromised: c.compromised,
				Strategy:    strat,
				Trials:      60000,
				Seed:        42,
				Workers:     4,
			})
			if err != nil {
				t.Fatal(err)
			}
			engine, err := events.New(c.n, len(c.compromised))
			if err != nil {
				t.Fatal(err)
			}
			want, err := engine.AnonymityDegree(strat.Length)
			if err != nil {
				t.Fatal(err)
			}
			// 4σ plus a small absolute floor for the CI approximation.
			tol := 4*res.StdErr + 1e-3
			if math.Abs(res.H-want) > tol {
				t.Errorf("MC H = %v ± %v, engine H* = %v (Δ=%v)",
					res.H, res.StdErr, want, res.H-want)
			}
			wantShare := float64(len(c.compromised)) / float64(c.n)
			if math.Abs(res.CompromisedSenderShare-wantShare) > 0.02 {
				t.Errorf("compromised-sender share %v, want ≈%v",
					res.CompromisedSenderShare, wantShare)
			}
			if res.Trials != 60000 {
				t.Errorf("trials = %d", res.Trials)
			}
		})
	}
}

// TestEstimateDeterministic: same seed, same estimate.
func TestEstimateDeterministic(t *testing.T) {
	strat, err := pathsel.UniformLength(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := montecarlo.Config{
		N: 12, Compromised: []trace.NodeID{2, 5}, Strategy: strat,
		Trials: 5000, Seed: 99, Workers: 3,
	}
	a, err := montecarlo.EstimateH(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := montecarlo.EstimateH(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.H != b.H || a.StdErr != b.StdErr {
		t.Errorf("non-deterministic: %v vs %v", a, b)
	}
}

func TestSynthesize(t *testing.T) {
	comp := func(id trace.NodeID) bool { return id == 2 || id == 4 }
	mt := montecarlo.Synthesize(7, 9, []trace.NodeID{1, 2, 4, 3}, comp)
	if mt.Msg != 7 || !mt.ReceiverSeen || mt.ReceiverPred != 3 {
		t.Errorf("trace header: %+v", mt)
	}
	if len(mt.Reports) != 2 {
		t.Fatalf("%d reports", len(mt.Reports))
	}
	r0, r1 := mt.Reports[0], mt.Reports[1]
	if r0.Observer != 2 || r0.Pred != 1 || r0.Succ != 4 {
		t.Errorf("report 0: %+v", r0)
	}
	if r1.Observer != 4 || r1.Pred != 2 || r1.Succ != 3 {
		t.Errorf("report 1: %+v", r1)
	}
	if !(r0.Time < r1.Time) {
		t.Errorf("times not increasing: %d %d", r0.Time, r1.Time)
	}
	// Last hop compromised: successor must be the receiver marker.
	mt = montecarlo.Synthesize(1, 0, []trace.NodeID{5, 2}, comp)
	if mt.Reports[0].Succ != trace.Receiver {
		t.Errorf("tail succ = %v, want Receiver", mt.Reports[0].Succ)
	}
	// Direct send: no reports, receiver sees the sender.
	mt = montecarlo.Synthesize(1, 3, nil, comp)
	if len(mt.Reports) != 0 || mt.ReceiverPred != 3 {
		t.Errorf("direct send trace: %+v", mt)
	}
}

// TestEngineInjectionValidation: a supplied shared engine must match the
// configuration on every adversary-model axis, not just N and C.
func TestEngineInjectionValidation(t *testing.T) {
	strat, err := pathsel.UniformLength(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	mismatched, err := events.New(10, 2, events.WithUncompromisedReceiver())
	if err != nil {
		t.Fatal(err)
	}
	_, err = montecarlo.EstimateH(montecarlo.Config{
		N: 10, Compromised: []trace.NodeID{0, 1}, Strategy: strat,
		Trials: 10, Seed: 1, Workers: 1, Engine: mismatched,
	})
	if !errors.Is(err, montecarlo.ErrBadConfig) {
		t.Errorf("mismatched engine err = %v", err)
	}
	matching, err := events.New(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := montecarlo.EstimateH(montecarlo.Config{
		N: 10, Compromised: []trace.NodeID{0, 1}, Strategy: strat,
		Trials: 100, Seed: 1, Workers: 1, Engine: matching,
	}); err != nil {
		t.Errorf("matching engine rejected: %v", err)
	}
}
