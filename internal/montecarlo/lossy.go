package montecarlo

// Loss-aware sampling: each trial simulates the delivery process — link
// losses, retransmissions, rerouting — alongside the path draw, so the
// estimator reproduces both faces of a faulted run. The lossless face is
// H over delivered trials (the quantity the exact backend computes in
// closed form via the effective-delivery length distribution); the
// degraded face folds the partial-trace evidence every retry leaks into
// the delivered trial's posterior, mirroring the testbed's
// retry-observation accounting draw for draw in distribution.

import (
	"sync/atomic"

	"anonmix/internal/adversary"
	"anonmix/internal/events"
	"anonmix/internal/faults"
	"anonmix/internal/pathsel"
	"anonmix/internal/pool"
	"anonmix/internal/stats"
	"anonmix/internal/trace"
)

// partialAttempt records one failed or retried traversal: the path it
// rode and how many hops the packet reached before the loss (upto hops
// means nodes path[0..upto-1] processed it, and the transmitter of the
// lost link knew its target).
type partialAttempt struct {
	path []trace.NodeID
	upto int
}

// SynthesizePartial constructs the message trace the adversary holds for
// an incomplete traversal: the packet reached the first upto intermediates
// of path and was lost on the next link, so every compromised node among
// them reports its (pred, succ) tuple — the transmitter of the lost link
// included, since it knew the target it was sending to — and the receiver
// never reports. It is the failed-attempt counterpart of Synthesize.
func SynthesizePartial(msg trace.MessageID, sender trace.NodeID, path []trace.NodeID,
	upto int, compromised func(trace.NodeID) bool) *trace.MessageTrace {
	mt := &trace.MessageTrace{}
	SynthesizePartialInto(mt, msg, sender, path, upto, compromised)
	return mt
}

// SynthesizePartialInto is SynthesizePartial into a caller-owned trace,
// reusing its Reports buffer. Every field of mt is overwritten.
func SynthesizePartialInto(mt *trace.MessageTrace, msg trace.MessageID, sender trace.NodeID,
	path []trace.NodeID, upto int, compromised func(trace.NodeID) bool) {
	if upto > len(path) {
		upto = len(path)
	}
	mt.Msg = msg
	mt.ReceiverSeen = false
	mt.ReceiverPred = 0
	mt.Reports = mt.Reports[:0]
	prev := sender
	for i := 0; i < upto; i++ {
		hop := path[i]
		if compromised(hop) {
			succ := trace.Receiver
			if i+1 < len(path) {
				succ = path[i+1]
			}
			mt.Reports = append(mt.Reports, trace.Tuple{
				Time:     uint64(i + 1),
				Observer: hop,
				Msg:      msg,
				Pred:     prev,
				Succ:     succ,
			})
		}
		prev = hop
	}
}

// lossyTrial is the outcome of one simulated delivery.
type lossyTrial struct {
	delivered bool
	path      []trace.NodeID   // the delivering path (when delivered)
	attempts  uint64           // transmissions (retransmit) or path draws (reroute)
	partials  []partialAttempt // retry/failure evidence leaked to the adversary
}

// pathArena is a pool of reusable path snapshots for the reroute policy,
// where up to maxAttempts failed paths must stay alive at once while the
// sampler's own buffer is redrawn.
type pathArena struct {
	bufs [][]trace.NodeID
	used int
}

// clone snapshots p into the next reusable buffer.
func (pa *pathArena) clone(p []trace.NodeID) []trace.NodeID {
	if pa.used == len(pa.bufs) {
		pa.bufs = append(pa.bufs, nil)
	}
	b := append(pa.bufs[pa.used][:0], p...)
	pa.bufs[pa.used] = b
	pa.used++
	return b
}

func (pa *pathArena) reset() { pa.used = 0 }

// lossyArena is the per-worker scratch of the loss-aware trial loop.
type lossyArena struct {
	sampler  *pathsel.Sampler
	sc       adversary.Scratch
	mt       trace.MessageTrace
	pmt      trace.MessageTrace
	acc      *adversary.Accumulator
	paths    pathArena
	partials []partialAttempt
}

// simulateDelivery runs one message through the sampled loss process. A
// path of l intermediates crosses l+1 links; link k's transmitter is the
// sender for k = 0, path[k-1] otherwise. The partials returned match what
// the testbed kernel's adversary accounting collects: under retransmit,
// one prefix per non-terminal lost attempt whose transmitter is a
// compromised intermediate (an honest or injecting transmitter leaks
// nothing); under reroute, every failed end-to-end attempt truncated at
// its first lost link. Returned paths and partials live in the arena and
// are valid until its sampler or path buffers are reused.
func simulateDelivery(rng *stats.Stream, ar *lossyArena, sender trace.NodeID,
	q float64, policy faults.Policy, maxAttempts int,
	compromised func(trace.NodeID) bool) (lossyTrial, error) {
	ar.paths.reset()
	ar.partials = ar.partials[:0]
	switch policy {
	case faults.PolicyRetransmit:
		// One path per trial: the partial prefixes can reference the
		// sampler's buffer directly, it is not redrawn before analysis.
		path, err := ar.sampler.SelectPath(rng, sender)
		if err != nil {
			return lossyTrial{}, err
		}
		out := lossyTrial{delivered: true, path: path, attempts: 1}
		for k := 0; k <= len(path); k++ {
			for a := 0; ; a++ {
				if rng.Float64() >= q {
					break // transmitted
				}
				if a+1 >= maxAttempts {
					out.delivered = false
					break
				}
				out.attempts++
				if k >= 1 && compromised(path[k-1]) {
					ar.partials = append(ar.partials, partialAttempt{path: path, upto: k})
				}
			}
			if !out.delivered {
				break
			}
		}
		out.partials = ar.partials
		return out, nil
	case faults.PolicyReroute:
		var out lossyTrial
		for a := 0; a < maxAttempts && !out.delivered; a++ {
			path, err := ar.sampler.SelectPath(rng, sender)
			if err != nil {
				return lossyTrial{}, err
			}
			out.attempts++
			lostAt := -1
			for k := 0; k <= len(path); k++ {
				if rng.Float64() < q {
					lostAt = k
					break
				}
			}
			if lostAt < 0 {
				out.delivered = true
				out.path = path
			} else {
				// The sampler buffer is redrawn on the next attempt, so a
				// failed path is snapshotted into the arena.
				ar.partials = append(ar.partials, partialAttempt{path: ar.paths.clone(path), upto: lostAt})
			}
		}
		out.partials = ar.partials
		return out, nil
	default: // PolicyNone: drop on first loss
		path, err := ar.sampler.SelectPath(rng, sender)
		if err != nil {
			return lossyTrial{}, err
		}
		out := lossyTrial{delivered: true, path: path, attempts: 1}
		for k := 0; k <= len(path); k++ {
			if rng.Float64() < q {
				out.delivered = false
				break
			}
		}
		return out, nil
	}
}

// degradedEntropy folds a delivered trial's full posterior together with
// the partial-trace evidence its retries leaked, under the
// uncompromised-receiver analysis (a failed attempt never produced a
// receiver report). Partial traces the analyst cannot classify are
// skipped — the conservative adversary discards evidence it cannot fit
// to its model rather than guessing.
func degradedEntropy(ar *lossyArena, analystU *adversary.Analyst,
	sender trace.NodeID, path []trace.NodeID, partials []partialAttempt,
	compromised func(trace.NodeID) bool) (float64, error) {
	ar.acc.Reset()
	if err := ar.acc.ObserveScratch(&ar.mt, &ar.sc); err != nil {
		return 0, err
	}
	for _, pa := range partials {
		p := pa.path
		if p == nil {
			p = path
		}
		SynthesizePartialInto(&ar.pmt, ar.mt.Msg, sender, p, pa.upto, compromised)
		if err := ar.acc.FoldObservation(analystU, &ar.pmt, &ar.sc); err != nil {
			continue
		}
	}
	h, _, _, err := ar.acc.SnapshotFast()
	return h, err
}

// estimateLossy is the single-shot loss-aware estimation path. H averages
// over delivered trials only (matching the exact backend's
// effective-delivery conditioning), HDegraded additionally folds retry
// evidence, and the delivery statistics aggregate over every trial. Like
// the lossless paths it is a pure function of (Seed, Trials).
func estimateLossy(cfg Config, analyst *adversary.Analyst, selector *pathsel.Selector) (Result, error) {
	uOpts := append(append([]events.Option{}, cfg.EngineOptions...), events.WithUncompromisedReceiver())
	engineU, err := events.New(cfg.N, len(cfg.Compromised), uOpts...)
	if err != nil {
		return Result{}, err
	}
	analystU, err := adversary.NewAnalyst(engineU, cfg.Strategy.Length, cfg.Compromised)
	if err != nil {
		return Result{}, err
	}

	newArena := func() (*lossyArena, error) {
		sp, err := selector.NewSampler()
		if err != nil {
			return nil, err
		}
		acc, err := adversary.NewAccumulator(analyst)
		if err != nil {
			return nil, err
		}
		return &lossyArena{sampler: sp, acc: acc}, nil
	}

	type part struct {
		sum, sumDeg stats.Summary
		compSender  int
		attempts    uint64
		injected    int
		err         error
	}
	batches := numBatches(cfg.Trials)
	parts := make([]part, batches)
	compromised := analyst.Compromised

	var nextBatch, done atomic.Int64
	var aborted atomic.Bool
	workers := cfg.Workers
	if workers > batches {
		workers = batches
	}
	pool.ForEach(workers, func(int) {
		ar, err := newArena()
		if err != nil {
			if b := int(nextBatch.Add(1)) - 1; b < batches {
				parts[b].err = err
			}
			return
		}
		for {
			if canceled(cfg.Cancel) {
				aborted.Store(true)
				return
			}
			b := int(nextBatch.Add(1)) - 1
			if b >= batches {
				return
			}
			p := &parts[b]
			lo, hi := batchBounds(b, cfg.Trials)
			for t := lo; t < hi; t++ {
				rng := stats.NewStream(cfg.Seed, int64(t))
				sender := cfg.Sender
				if !cfg.FixedSender {
					sender = trace.NodeID(rng.Intn(cfg.N))
				}
				trial, err := simulateDelivery(&rng, ar, sender, cfg.LinkLoss, cfg.Policy, cfg.MaxAttempts, compromised)
				if err != nil {
					p.err = err
					return
				}
				p.injected++
				p.attempts += trial.attempts
				if !trial.delivered {
					// Undelivered messages carry no receiver-side event; they
					// enter the delivery statistics but not the H average.
					continue
				}
				if compromised(sender) {
					// Local-eavesdropper branch: identified outright, retries
					// add nothing.
					p.sum.Add(0)
					p.sumDeg.Add(0)
					p.compSender++
					continue
				}
				SynthesizeInto(&ar.mt, 1, sender, trial.path, compromised)
				h, err := analyst.EntropyScratch(&ar.mt, &ar.sc)
				if err != nil {
					p.err = err
					return
				}
				p.sum.Add(h)
				if len(trial.partials) == 0 {
					p.sumDeg.Add(h)
					continue
				}
				hd, err := degradedEntropy(ar, analystU, sender, trial.path, trial.partials, compromised)
				if err != nil {
					p.err = err
					return
				}
				p.sumDeg.Add(hd)
			}
			if d := int(done.Add(int64(hi - lo))); cfg.Progress != nil {
				cfg.Progress(d, cfg.Trials)
			}
		}
	})

	if aborted.Load() {
		return Result{}, errCanceled(int(done.Load()), cfg.Trials)
	}
	var sum, sumDeg stats.Summary
	var compSenders, injected int
	var attempts uint64
	for i := range parts {
		if parts[i].err != nil {
			return Result{}, parts[i].err
		}
		sum.Merge(parts[i].sum)
		sumDeg.Merge(parts[i].sumDeg)
		compSenders += parts[i].compSender
		injected += parts[i].injected
		attempts += parts[i].attempts
	}
	res := Result{
		Trials:       sum.N(),
		DeliveryRate: float64(sum.N()) / float64(injected),
		MeanAttempts: float64(attempts) / float64(injected),
	}
	if sum.N() > 0 {
		res.H = sum.Mean()
		res.StdErr = sum.StdErr()
		res.CI95 = sum.CI95()
		res.HDegraded = sumDeg.Mean()
		res.CompromisedSenderShare = float64(compSenders) / float64(sum.N())
	}
	return res, nil
}
