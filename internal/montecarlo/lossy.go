package montecarlo

// Loss-aware sampling: each trial simulates the delivery process — link
// losses, retransmissions, rerouting — alongside the path draw, so the
// estimator reproduces both faces of a faulted run. The lossless face is
// H over delivered trials (the quantity the exact backend computes in
// closed form via the effective-delivery length distribution); the
// degraded face folds the partial-trace evidence every retry leaks into
// the delivered trial's posterior, mirroring the testbed's
// retry-observation accounting draw for draw in distribution.

import (
	"math/rand"

	"anonmix/internal/adversary"
	"anonmix/internal/events"
	"anonmix/internal/faults"
	"anonmix/internal/pathsel"
	"anonmix/internal/pool"
	"anonmix/internal/stats"
	"anonmix/internal/trace"
)

// partialAttempt records one failed or retried traversal: the path it
// rode and how many hops the packet reached before the loss (upto hops
// means nodes path[0..upto-1] processed it, and the transmitter of the
// lost link knew its target).
type partialAttempt struct {
	path []trace.NodeID
	upto int
}

// SynthesizePartial constructs the message trace the adversary holds for
// an incomplete traversal: the packet reached the first upto intermediates
// of path and was lost on the next link, so every compromised node among
// them reports its (pred, succ) tuple — the transmitter of the lost link
// included, since it knew the target it was sending to — and the receiver
// never reports. It is the failed-attempt counterpart of Synthesize.
func SynthesizePartial(msg trace.MessageID, sender trace.NodeID, path []trace.NodeID,
	upto int, compromised func(trace.NodeID) bool) *trace.MessageTrace {
	if upto > len(path) {
		upto = len(path)
	}
	mt := &trace.MessageTrace{Msg: msg}
	prev := sender
	for i := 0; i < upto; i++ {
		hop := path[i]
		if compromised(hop) {
			succ := trace.Receiver
			if i+1 < len(path) {
				succ = path[i+1]
			}
			mt.Reports = append(mt.Reports, trace.Tuple{
				Time:     uint64(i + 1),
				Observer: hop,
				Msg:      msg,
				Pred:     prev,
				Succ:     succ,
			})
		}
		prev = hop
	}
	return mt
}

// lossyTrial is the outcome of one simulated delivery.
type lossyTrial struct {
	delivered bool
	path      []trace.NodeID   // the delivering path (when delivered)
	attempts  uint64           // transmissions (retransmit) or path draws (reroute)
	partials  []partialAttempt // retry/failure evidence leaked to the adversary
}

// simulateDelivery runs one message through the sampled loss process. A
// path of l intermediates crosses l+1 links; link k's transmitter is the
// sender for k = 0, path[k-1] otherwise. The partials returned match what
// the testbed kernel's adversary accounting collects: under retransmit,
// one prefix per non-terminal lost attempt whose transmitter is a
// compromised intermediate (an honest or injecting transmitter leaks
// nothing); under reroute, every failed end-to-end attempt truncated at
// its first lost link.
func simulateDelivery(rng *rand.Rand, sel func() ([]trace.NodeID, error),
	q float64, policy faults.Policy, maxAttempts int,
	compromised func(trace.NodeID) bool) (lossyTrial, error) {
	switch policy {
	case faults.PolicyRetransmit:
		path, err := sel()
		if err != nil {
			return lossyTrial{}, err
		}
		out := lossyTrial{delivered: true, path: path, attempts: 1}
		for k := 0; k <= len(path); k++ {
			for a := 0; ; a++ {
				if rng.Float64() >= q {
					break // transmitted
				}
				if a+1 >= maxAttempts {
					out.delivered = false
					break
				}
				out.attempts++
				if k >= 1 && compromised(path[k-1]) {
					out.partials = append(out.partials, partialAttempt{path: path, upto: k})
				}
			}
			if !out.delivered {
				break
			}
		}
		return out, nil
	case faults.PolicyReroute:
		var out lossyTrial
		for a := 0; a < maxAttempts && !out.delivered; a++ {
			path, err := sel()
			if err != nil {
				return lossyTrial{}, err
			}
			out.attempts++
			lostAt := -1
			for k := 0; k <= len(path); k++ {
				if rng.Float64() < q {
					lostAt = k
					break
				}
			}
			if lostAt < 0 {
				out.delivered = true
				out.path = path
			} else {
				out.partials = append(out.partials, partialAttempt{path: path, upto: lostAt})
			}
		}
		return out, nil
	default: // PolicyNone: drop on first loss
		path, err := sel()
		if err != nil {
			return lossyTrial{}, err
		}
		out := lossyTrial{delivered: true, path: path, attempts: 1}
		for k := 0; k <= len(path); k++ {
			if rng.Float64() < q {
				out.delivered = false
				break
			}
		}
		return out, nil
	}
}

// degradedEntropy folds a delivered trial's full posterior together with
// the partial-trace evidence its retries leaked, under the
// uncompromised-receiver analysis (a failed attempt never produced a
// receiver report). Partial traces the analyst cannot classify are
// skipped — the conservative adversary discards evidence it cannot fit
// to its model rather than guessing.
func degradedEntropy(analyst, analystU *adversary.Analyst, mt *trace.MessageTrace,
	sender trace.NodeID, path []trace.NodeID, partials []partialAttempt) (float64, error) {
	acc, err := adversary.NewAccumulator(analyst)
	if err != nil {
		return 0, err
	}
	if err := acc.Observe(mt); err != nil {
		return 0, err
	}
	for _, pa := range partials {
		p := pa.path
		if p == nil {
			p = path
		}
		pmt := SynthesizePartial(mt.Msg, sender, p, pa.upto, analyst.Compromised)
		post, err := analystU.Posterior(pmt)
		if err != nil {
			continue
		}
		if err := acc.FoldPosterior(post.P); err != nil {
			return 0, err
		}
	}
	return acc.Entropy()
}

// estimateLossy is the single-shot loss-aware estimation path. H averages
// over delivered trials only (matching the exact backend's
// effective-delivery conditioning), HDegraded additionally folds retry
// evidence, and the delivery statistics aggregate over every trial. Like
// the lossless paths it is a pure function of (Seed, Trials, Workers).
func estimateLossy(cfg Config, analyst *adversary.Analyst, selector *pathsel.Selector) (Result, error) {
	uOpts := append(append([]events.Option{}, cfg.EngineOptions...), events.WithUncompromisedReceiver())
	engineU, err := events.New(cfg.N, len(cfg.Compromised), uOpts...)
	if err != nil {
		return Result{}, err
	}
	analystU, err := adversary.NewAnalyst(engineU, cfg.Strategy.Length, cfg.Compromised)
	if err != nil {
		return Result{}, err
	}

	type part struct {
		sum, sumDeg stats.Summary
		compSender  int
		attempts    uint64
		injected    int
		err         error
	}
	parts := make([]part, cfg.Workers)
	per := cfg.Trials / cfg.Workers
	extra := cfg.Trials % cfg.Workers

	pool.ForEach(cfg.Workers, func(w int) {
		trials := per
		if w < extra {
			trials++
		}
		if trials == 0 {
			return
		}
		rng := stats.Fork(cfg.Seed, int64(w))
		p := &parts[w]
		for t := 0; t < trials; t++ {
			sender := cfg.Sender
			if !cfg.FixedSender {
				sender = trace.NodeID(rng.Intn(cfg.N))
			}
			sel := func() ([]trace.NodeID, error) { return selector.SelectPath(rng, sender) }
			trial, err := simulateDelivery(rng, sel, cfg.LinkLoss, cfg.Policy, cfg.MaxAttempts, analyst.Compromised)
			if err != nil {
				p.err = err
				return
			}
			p.injected++
			p.attempts += trial.attempts
			if !trial.delivered {
				// Undelivered messages carry no receiver-side event; they
				// enter the delivery statistics but not the H average.
				continue
			}
			if analyst.Compromised(sender) {
				// Local-eavesdropper branch: identified outright, retries
				// add nothing.
				p.sum.Add(0)
				p.sumDeg.Add(0)
				p.compSender++
				continue
			}
			mt := Synthesize(1, sender, trial.path, analyst.Compromised)
			h, err := analyst.Entropy(mt)
			if err != nil {
				p.err = err
				return
			}
			p.sum.Add(h)
			if len(trial.partials) == 0 {
				p.sumDeg.Add(h)
				continue
			}
			hd, err := degradedEntropy(analyst, analystU, mt, sender, trial.path, trial.partials)
			if err != nil {
				p.err = err
				return
			}
			p.sumDeg.Add(hd)
		}
	})

	var sum, sumDeg stats.Summary
	var compSenders, injected int
	var attempts uint64
	for i := range parts {
		if parts[i].err != nil {
			return Result{}, parts[i].err
		}
		sum.Merge(parts[i].sum)
		sumDeg.Merge(parts[i].sumDeg)
		compSenders += parts[i].compSender
		injected += parts[i].injected
		attempts += parts[i].attempts
	}
	res := Result{
		Trials:       sum.N(),
		DeliveryRate: float64(sum.N()) / float64(injected),
		MeanAttempts: float64(attempts) / float64(injected),
	}
	if sum.N() > 0 {
		res.H = sum.Mean()
		res.StdErr = sum.StdErr()
		res.CI95 = sum.CI95()
		res.HDegraded = sumDeg.Mean()
		res.CompromisedSenderShare = float64(compSenders) / float64(sum.N())
	}
	return res, nil
}
