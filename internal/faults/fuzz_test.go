package faults

import (
	"errors"
	"testing"
)

// FuzzParseFaults drives the CLI fault-plan syntax with arbitrary input:
// the parser must never panic, and the only error that may escape is
// ErrBadPlan. Whatever parses must survive check-level re-validation via
// the String round trip.
func FuzzParseFaults(f *testing.F) {
	seeds := []string{
		"",
		"loss=0.05",
		"loss=0.05,jitter=3,crash=3@100-200,crash=7@150",
		"crash=0@0",
		"loss=1,crash=2@5-9",
		"loss=2",
		"crash=3@10-5",
		"jitter=999999",
		"loss=0.1,loss=0.2",
		"volume=11",
		"crash=-1@5",
		"loss=NaN",
		"loss=1e309",
		"crash=3@18446744073709551615",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		plan, err := ParseFaults(s)
		if err != nil {
			if !errors.Is(err, ErrBadPlan) {
				t.Fatalf("ParseFaults(%q): non-plan error %v", s, err)
			}
			return
		}
		// A parsed plan re-parses from its own rendering.
		again, err := ParseFaults(plan.String())
		if err != nil {
			t.Fatalf("round trip of %q (-> %q) failed: %v", s, plan.String(), err)
		}
		if again.LinkLoss != plan.LinkLoss || again.Jitter != plan.Jitter ||
			len(again.Crashes) != len(plan.Crashes) {
			t.Fatalf("round trip of %q changed the plan: %+v vs %+v", s, plan, again)
		}
	})
}
