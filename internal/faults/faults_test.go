package faults

import (
	"errors"
	"math"
	"testing"
	"time"

	"anonmix/internal/dist"
	"anonmix/internal/trace"
)

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
		ok   bool
	}{
		{"", PolicyNone, true},
		{"none", PolicyNone, true},
		{"Retransmit", PolicyRetransmit, true},
		{"retry", PolicyRetransmit, true},
		{" reroute ", PolicyReroute, true},
		{"bogus", 0, false},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if c.ok != (err == nil) {
			t.Fatalf("ParsePolicy(%q): err = %v, want ok=%v", c.in, err, c.ok)
		}
		if err == nil && got != c.want {
			t.Errorf("ParsePolicy(%q) = %v, want %v", c.in, got, c.want)
		}
		if err != nil && !errors.Is(err, ErrBadPlan) {
			t.Errorf("ParsePolicy(%q) error %v not ErrBadPlan", c.in, err)
		}
	}
	if PolicyReroute.String() != "reroute" || Policy(77).String() == "" {
		t.Errorf("Policy.String misbehaves: %v %v", PolicyReroute, Policy(77))
	}
}

func TestParseFaults(t *testing.T) {
	plan, err := ParseFaults("loss=0.05, jitter=3, crash=3@100-200, crash=7@150")
	if err != nil {
		t.Fatalf("ParseFaults: %v", err)
	}
	if plan.LinkLoss != 0.05 || plan.Jitter != 3 {
		t.Errorf("plan = %+v", plan)
	}
	want := []Crash{{Node: 3, At: 100, Recover: 200}, {Node: 7, At: 150}}
	if len(plan.Crashes) != 2 || plan.Crashes[0] != want[0] || plan.Crashes[1] != want[1] {
		t.Errorf("crashes = %+v, want %+v", plan.Crashes, want)
	}
	if !plan.Active() {
		t.Error("plan should be active")
	}
	// Round trip through String.
	again, err := ParseFaults(plan.String())
	if err != nil || again.LinkLoss != plan.LinkLoss || len(again.Crashes) != 2 {
		t.Errorf("round trip %q: %+v, %v", plan.String(), again, err)
	}

	bad := []string{
		"loss",              // not key=value
		"loss=x",            // unparsable float
		"loss=2",            // outside [0,1] (check-level)
		"loss=0.1,loss=0.2", // duplicate
		"jitter=-1",         // negative
		"jitter=1,jitter=2", // duplicate
		"crash=3",           // missing @time
		"crash=x@5",         // bad node
		"crash=-1@5",        // negative node
		"crash=3@x",         // bad time
		"crash=3@5-x",       // bad recover
		"crash=3@10-5",      // recover before crash
		"crash=3@10,crash=3@20",     // overlap: first never recovers
		"crash=3@10-50,crash=3@20",  // overlapping windows
		"volume=11",         // unknown key
	}
	for _, s := range bad {
		if _, err := ParseFaults(s); !errors.Is(err, ErrBadPlan) {
			t.Errorf("ParseFaults(%q) = %v, want ErrBadPlan", s, err)
		}
	}

	// Empty plan parses (injects nothing).
	empty, err := ParseFaults("")
	if err != nil || empty.Active() {
		t.Errorf("empty plan: %+v, %v", empty, err)
	}
}

func TestPlanValidate(t *testing.T) {
	plan := &Plan{LinkLoss: 0.1, Crashes: []Crash{{Node: 9, At: 5}}}
	if err := plan.Validate(10); err != nil {
		t.Fatalf("Validate(10): %v", err)
	}
	if err := plan.Validate(9); !errors.Is(err, ErrBadPlan) {
		t.Errorf("Validate(9) = %v, want ErrBadPlan (node out of range)", err)
	}
	var nilPlan *Plan
	if nilPlan.Active() {
		t.Error("nil plan is active")
	}
	if err := nilPlan.Validate(10); !errors.Is(err, ErrBadPlan) {
		t.Errorf("nil Validate = %v, want ErrBadPlan", err)
	}
	if err := (&Plan{LinkLoss: math.NaN()}).Validate(10); !errors.Is(err, ErrBadPlan) {
		t.Errorf("NaN loss accepted")
	}
	if err := (&Plan{Jitter: -time.Nanosecond}).Validate(10); !errors.Is(err, ErrBadPlan) {
		t.Errorf("negative jitter accepted")
	}
	// Adjacent windows (recover == next crash) are fine.
	seq := &Plan{Crashes: []Crash{{Node: 1, At: 10, Recover: 20}, {Node: 1, At: 20, Recover: 30}}}
	if err := seq.Validate(5); err != nil {
		t.Errorf("adjacent windows rejected: %v", err)
	}
}

func TestBackoff(t *testing.T) {
	if got := Backoff(4, 0); got != 4 {
		t.Errorf("Backoff(4,0) = %d", got)
	}
	if got := Backoff(4, 3); got != 32 {
		t.Errorf("Backoff(4,3) = %d", got)
	}
	// The cap freezes growth.
	if Backoff(4, BackoffCap) != Backoff(4, BackoffCap+10) {
		t.Error("backoff not capped")
	}
	want := uint64(4 + 8 + 16)
	if got := BackoffBudget(4, 4); got != want {
		t.Errorf("BackoffBudget(4,4) = %d, want %d", got, want)
	}
	if BackoffBudget(4, 1) != 0 || BackoffBudget(4, 0) != 0 {
		t.Error("budget of a single attempt must be zero")
	}
}

func TestLostDeterministicAndCalibrated(t *testing.T) {
	// Pure function: identical arguments, identical outcome.
	for i := 0; i < 100; i++ {
		msg, hop, att := trace.MessageID(i*7), uint64(i%5), uint64(i%3)
		if Lost(42, msg, hop, att, 0.3) != Lost(42, msg, hop, att, 0.3) {
			t.Fatal("Lost is not deterministic")
		}
	}
	if Lost(1, 2, 3, 4, 0) || !Lost(1, 2, 3, 4, 1) {
		t.Error("degenerate probabilities mishandled")
	}
	// Empirical rate within a loose tolerance of p.
	const p, trials = 0.2, 200000
	lost := 0
	for i := 0; i < trials; i++ {
		if Lost(7, trace.MessageID(i), 1, 0, p) {
			lost++
		}
	}
	rate := float64(lost) / trials
	if math.Abs(rate-p) > 0.01 {
		t.Errorf("empirical loss rate %.4f, want ~%.2f", rate, p)
	}
	// Attempt index decorrelates draws of the same (msg, hop).
	same := 0
	for i := 0; i < trials; i++ {
		if Lost(7, trace.MessageID(i), 1, 0, 0.5) == Lost(7, trace.MessageID(i), 1, 1, 0.5) {
			same++
		}
	}
	if f := float64(same) / trials; math.Abs(f-0.5) > 0.01 {
		t.Errorf("attempt draws correlated: agreement %.4f", f)
	}
}

func TestEffectiveLength(t *testing.T) {
	base, err := dist.NewUniform(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// q = 0 is the identity.
	eff, rate, err := EffectiveLength(base, 0)
	if err != nil || rate != 1 || eff != dist.Length(base) {
		t.Fatalf("q=0: %v %v %v", eff, rate, err)
	}
	const q = 0.1
	eff, rate, err = EffectiveLength(base, q)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-computed: rate = mean over l∈{1,2,3} of (1-q)^(l+1).
	want := (math.Pow(0.9, 2) + math.Pow(0.9, 3) + math.Pow(0.9, 4)) / 3
	if math.Abs(rate-want) > 1e-12 {
		t.Errorf("rate = %v, want %v", rate, want)
	}
	if err := dist.Validate(eff); err != nil {
		t.Errorf("effective dist invalid: %v", err)
	}
	// Shorter paths survive more often: the effective mean shrinks.
	if eff.Mean() >= base.Mean() {
		t.Errorf("effective mean %v not below base mean %v", eff.Mean(), base.Mean())
	}
	// Total loss: no delivery, nil distribution.
	eff, rate, err = EffectiveLength(base, 1)
	if err != nil || eff != nil || rate != 0 {
		t.Errorf("q=1: %v %v %v", eff, rate, err)
	}
	if _, _, err := EffectiveLength(nil, 0.5); err == nil {
		t.Error("nil distribution accepted")
	}
	if _, _, err := EffectiveLength(base, 1.5); !errors.Is(err, ErrBadPlan) {
		t.Error("out-of-range q accepted")
	}
}
