// Package faults declares the fault-injection model of the reliability
// layer: per-link loss probability, per-node crash/recover schedules at
// virtual timestamps, and extra latency jitter. A Plan is purely
// declarative — the simnet kernel and the Monte-Carlo estimator interpret
// it, drawing every loss deterministically from the scenario seed so that
// a faulty run is exactly as reproducible as a fault-free one.
//
// The paper's H*(S) framework treats a message as a single observed
// rerouting event; unreliable networks break that abstraction, because a
// retransmission or a rerouted retry hands the adversary a fresh
// observation of the same logical message (cf. Ando–Lysyanskaya–Upfal on
// repeated appearances over unreliable channels). The Policy constants
// name the delivery-reliability strategies whose anonymity cost the
// scenario layer measures.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"anonmix/internal/dist"
	"anonmix/internal/trace"
)

// ErrBadPlan reports an invalid fault plan or an unparsable plan string.
var ErrBadPlan = errors.New("faults: invalid fault plan")

// Policy selects how the delivery layer reacts to a lost transmission or
// a crashed next hop.
type Policy uint8

// The delivery-reliability policies.
const (
	// PolicyNone drops the packet on the first fault (today's semantics).
	PolicyNone Policy = iota
	// PolicyRetransmit retries the failed link over the same path with a
	// per-hop timeout and capped exponential backoff, up to MaxAttempts
	// transmissions per link. Every retry observed by a compromised
	// link sender is a duplicate observation for the adversary.
	PolicyRetransmit
	// PolicyReroute abandons the packet on the first fault and hands the
	// logical message back to the driver, which retries end-to-end with a
	// fresh path over the live membership, up to MaxAttempts injections.
	// Every failed attempt leaks an independent partial path.
	PolicyReroute
)

// String names the policy (the inverse of ParsePolicy).
func (p Policy) String() string {
	switch p {
	case PolicyNone:
		return "none"
	case PolicyRetransmit:
		return "retransmit"
	case PolicyReroute:
		return "reroute"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// ParsePolicy parses a policy name as written on a CLI.
func ParsePolicy(s string) (Policy, error) {
	switch strings.TrimSpace(strings.ToLower(s)) {
	case "", "none":
		return PolicyNone, nil
	case "retransmit", "retry":
		return PolicyRetransmit, nil
	case "reroute":
		return PolicyReroute, nil
	default:
		return 0, fmt.Errorf("%w: unknown policy %q (none, retransmit, reroute)", ErrBadPlan, s)
	}
}

// Defaults of the reliability configuration.
const (
	// DefaultMaxAttempts bounds transmissions per link (retransmit) and
	// end-to-end injections per message (reroute).
	DefaultMaxAttempts = 8
	// DefaultRetryBackoff is the base retransmission timeout in logical
	// ticks; attempt k waits DefaultRetryBackoff << min(k, backoffCap).
	DefaultRetryBackoff = 4 * time.Nanosecond
	// BackoffCap bounds the exponential backoff shift, so the worst-case
	// per-link delay is finite and virtual-time phase windows stay
	// computable.
	BackoffCap = 6
)

// Reliability configures the delivery policy applied under a fault plan.
// The zero value means PolicyNone with the defaults filled in by the
// consumer.
type Reliability struct {
	// Policy is the delivery-reliability policy.
	Policy Policy
	// MaxAttempts bounds attempts per link (retransmit) or per message
	// (reroute); 0 means DefaultMaxAttempts. It is what guarantees
	// termination under 100% loss.
	MaxAttempts int
	// RetryBackoff is the base retransmission timeout in
	// nanoseconds-as-ticks; 0 means DefaultRetryBackoff.
	RetryBackoff time.Duration
}

// Backoff returns the logical-tick delay before retry attempt k (0-based)
// for the given base: base << min(k, BackoffCap).
func Backoff(base uint64, attempt uint64) uint64 {
	if attempt > BackoffCap {
		attempt = BackoffCap
	}
	return base << attempt
}

// BackoffBudget returns the worst-case total backoff delay a single link
// can accumulate: the sum of Backoff(base, k) over MaxAttempts-1 retries.
// Phase-window arithmetic uses it to keep faulty traffic inside its
// virtual-time window.
func BackoffBudget(base uint64, maxAttempts int) uint64 {
	var total uint64
	for k := 0; k+1 < maxAttempts; k++ {
		total += Backoff(base, uint64(k))
	}
	return total
}

// Crash schedules one fault-injection outage: Node is unreachable from
// virtual time At until Recover (exclusive); Recover == 0 means the node
// never comes back. A crash is orthogonal to membership churn — the node
// remains a member (selectors may still route through it), it just fails
// to process traffic, which is exactly what exercises the reliability
// policies.
type Crash struct {
	// Node is the crashing node.
	Node trace.NodeID
	// At is the virtual time the outage starts.
	At uint64
	// Recover is the virtual time the node comes back (0 = never).
	Recover uint64
}

// Plan is a declarative fault-injection plan. The zero value (or nil)
// injects nothing.
type Plan struct {
	// LinkLoss is the per-link, per-attempt transmission loss probability
	// in [0, 1]. Losses are drawn deterministically from the scenario
	// seed (see Lost), so runs are reproducible under any shard count.
	LinkLoss float64
	// Jitter adds up to this many nanoseconds-as-ticks of extra latency
	// per hop, on top of the workload's MaxHopDelay.
	Jitter time.Duration
	// Crashes lists the scheduled outages.
	Crashes []Crash
}

// Active reports whether the plan injects any fault at all.
func (p *Plan) Active() bool {
	return p != nil && (p.LinkLoss > 0 || p.Jitter > 0 || len(p.Crashes) > 0)
}

// check validates the system-size-independent invariants.
func (p *Plan) check() error {
	if p == nil {
		return fmt.Errorf("%w: nil plan", ErrBadPlan)
	}
	if p.LinkLoss < 0 || p.LinkLoss > 1 || p.LinkLoss != p.LinkLoss {
		return fmt.Errorf("%w: link loss %v outside [0,1]", ErrBadPlan, p.LinkLoss)
	}
	if p.Jitter < 0 {
		return fmt.Errorf("%w: negative jitter %v", ErrBadPlan, p.Jitter)
	}
	for _, c := range p.Crashes {
		if c.Recover != 0 && c.Recover <= c.At {
			return fmt.Errorf("%w: crash of %v recovers at t=%d, not after t=%d",
				ErrBadPlan, c.Node, c.Recover, c.At)
		}
	}
	// Per-node windows must not overlap: a node cannot crash while
	// crashed, and a never-recovering node cannot crash again.
	sorted := append([]Crash(nil), p.Crashes...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Node != sorted[j].Node {
			return sorted[i].Node < sorted[j].Node
		}
		return sorted[i].At < sorted[j].At
	})
	for i := 1; i < len(sorted); i++ {
		prev, cur := sorted[i-1], sorted[i]
		if prev.Node != cur.Node {
			continue
		}
		if prev.Recover == 0 || cur.At < prev.Recover {
			return fmt.Errorf("%w: overlapping crash windows for node %v (t=%d and t=%d)",
				ErrBadPlan, cur.Node, prev.At, cur.At)
		}
	}
	return nil
}

// Validate checks the plan against a system of n nodes: loss in [0, 1],
// non-negative jitter, crash node IDs inside [0, n), and per-node crash
// windows that are well-formed and non-overlapping.
func (p *Plan) Validate(n int) error {
	if err := p.check(); err != nil {
		return err
	}
	for _, c := range p.Crashes {
		if int(c.Node) < 0 || int(c.Node) >= n {
			return fmt.Errorf("%w: crash of node %v outside [0,%d)", ErrBadPlan, c.Node, n)
		}
	}
	return nil
}

// ParseFaults parses the CLI fault-plan syntax: comma-separated key=value
// fields, e.g.
//
//	loss=0.05,jitter=3,crash=3@100-200,crash=7@150
//
// loss is the per-link loss probability, jitter the per-hop extra latency
// bound in ticks, and each crash field schedules node@at[-recover] (no
// recover time means the node stays down). The returned plan passes
// check-level validation; Validate against the system size still applies.
func ParseFaults(s string) (*Plan, error) {
	plan := &Plan{}
	seen := map[string]bool{}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("%w: field %q is not key=value", ErrBadPlan, field)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "loss":
			if seen[key] {
				return nil, fmt.Errorf("%w: duplicate field %q", ErrBadPlan, key)
			}
			seen[key] = true
			q, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: loss %q: %v", ErrBadPlan, val, err)
			}
			plan.LinkLoss = q
		case "jitter":
			if seen[key] {
				return nil, fmt.Errorf("%w: duplicate field %q", ErrBadPlan, key)
			}
			seen[key] = true
			ticks, err := strconv.ParseUint(val, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("%w: jitter %q: %v", ErrBadPlan, val, err)
			}
			plan.Jitter = time.Duration(ticks)
		case "crash":
			c, err := parseCrash(val)
			if err != nil {
				return nil, err
			}
			plan.Crashes = append(plan.Crashes, c)
		default:
			return nil, fmt.Errorf("%w: unknown field %q (loss, jitter, crash)", ErrBadPlan, key)
		}
	}
	if err := plan.check(); err != nil {
		return nil, err
	}
	return plan, nil
}

// parseCrash parses node@at[-recover].
func parseCrash(val string) (Crash, error) {
	nodeStr, times, ok := strings.Cut(val, "@")
	if !ok {
		return Crash{}, fmt.Errorf("%w: crash %q is not node@at[-recover]", ErrBadPlan, val)
	}
	node, err := strconv.ParseInt(strings.TrimSpace(nodeStr), 10, 32)
	if err != nil || node < 0 {
		return Crash{}, fmt.Errorf("%w: crash node %q", ErrBadPlan, nodeStr)
	}
	atStr, recStr, hasRec := strings.Cut(times, "-")
	at, err := strconv.ParseUint(strings.TrimSpace(atStr), 10, 64)
	if err != nil {
		return Crash{}, fmt.Errorf("%w: crash time %q: %v", ErrBadPlan, atStr, err)
	}
	c := Crash{Node: trace.NodeID(node), At: at}
	if hasRec {
		rec, err := strconv.ParseUint(strings.TrimSpace(recStr), 10, 64)
		if err != nil {
			return Crash{}, fmt.Errorf("%w: crash recover time %q: %v", ErrBadPlan, recStr, err)
		}
		c.Recover = rec
	}
	return c, nil
}

// String renders the plan in the ParseFaults syntax.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var parts []string
	if p.LinkLoss > 0 {
		parts = append(parts, fmt.Sprintf("loss=%g", p.LinkLoss))
	}
	if p.Jitter > 0 {
		parts = append(parts, fmt.Sprintf("jitter=%d", uint64(p.Jitter)))
	}
	for _, c := range p.Crashes {
		if c.Recover != 0 {
			parts = append(parts, fmt.Sprintf("crash=%d@%d-%d", int(c.Node), c.At, c.Recover))
		} else {
			parts = append(parts, fmt.Sprintf("crash=%d@%d", int(c.Node), c.At))
		}
	}
	return strings.Join(parts, ",")
}

// Lost draws the deterministic loss outcome for transmission attempt
// `attempt` of hop `hop` of message `msg`: a SplitMix64 hash of the seed
// and the triple, reduced to [0, 1) and compared against the loss
// probability. Being a pure function of its arguments, the draw is
// reproducible under any shard count or worker interleaving — the same
// property the testbed's per-hop jitter stream has.
func Lost(seed int64, msg trace.MessageID, hop, attempt uint64, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	z := uint64(seed) + uint64(msg)*0x9E3779B97F4A7C15 + hop*0xD1B54A32D192ED03 + (attempt+1)*0xD6E8FEB86659FD93
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11)/(1<<53) < p
}

// EffectiveLength returns the path-length distribution conditioned on
// delivery under independent per-link loss q with PolicyNone, plus the
// overall delivery rate: a path with l intermediate nodes crosses l+1
// links, so P'(l) ∝ P(l)·(1−q)^(l+1) and the normalizer is the delivery
// rate Σ_l P(l)·(1−q)^(l+1). This is the closed form the exact backend
// uses to model loss without sampling. A zero delivery rate (q = 1)
// returns a nil distribution.
func EffectiveLength(d dist.Length, q float64) (dist.Length, float64, error) {
	if err := dist.Validate(d); err != nil {
		return nil, 0, err
	}
	if q < 0 || q > 1 {
		return nil, 0, fmt.Errorf("%w: link loss %v outside [0,1]", ErrBadPlan, q)
	}
	if q == 0 {
		return d, 1, nil
	}
	lo, hi := d.Support()
	mass := make([]float64, hi-lo+1)
	survive := 1 - q
	var rate float64
	for l := lo; l <= hi; l++ {
		w := d.PMF(l)
		for k := 0; k <= l; k++ {
			w *= survive
		}
		mass[l-lo] = w
		rate += w
	}
	if rate == 0 {
		return nil, 0, nil
	}
	for i := range mass {
		mass[i] /= rate
	}
	eff, err := dist.NewPMF(lo, mass)
	if err != nil {
		return nil, 0, err
	}
	return eff, rate, nil
}
