// Package cliutil holds the exit-code contract shared by the anonmix
// command-line tools: exit 2 for configuration/usage errors (the
// invocation can never succeed as written — flag-parse failures,
// ErrBadConfig and the other invalid-configuration sentinels), exit 1
// for runtime failures, capability refusals, and cancellations. The
// anond daemon maps the same scenario.Classify classes to HTTP statuses,
// so a scenario rejected with exit 2 here is exactly the one rejected
// with 400 there.
package cliutil

import (
	"errors"
	"flag"

	"anonmix/internal/scenario"
)

// usageError marks a flag-parse failure so Code can treat it as a usage
// error alongside the bad-config sentinels.
type usageError struct{ err error }

func (e *usageError) Error() string { return e.err.Error() }
func (e *usageError) Unwrap() error { return e.err }

// Usage wraps a flag-parse failure as a usage error (exit 2).
// flag.ErrHelp passes through unwrapped: -h is not a failure, but it
// still exits 2 like any other "nothing was computed" invocation.
func Usage(err error) error {
	if err == nil || errors.Is(err, flag.ErrHelp) {
		return err
	}
	return &usageError{err}
}

// Code maps an error to the shared CLI exit code: 0 for nil, 2 for
// usage/configuration errors, 1 for everything else.
func Code(err error) int {
	if err == nil {
		return 0
	}
	var ue *usageError
	if errors.As(err, &ue) || errors.Is(err, flag.ErrHelp) {
		return 2
	}
	return scenario.ExitCode(err)
}

// Silent reports whether the error should exit without printing: the
// flag package has already printed usage for -h.
func Silent(err error) bool { return errors.Is(err, flag.ErrHelp) }
