package cliutil

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"testing"

	"anonmix/internal/scenario"
	"anonmix/internal/scenario/capability"
)

// TestCode pins the shared exit-code contract: 0 success, 2 for
// usage/configuration errors (flag-parse failures included), 1 for
// runtime failures and capability refusals.
func TestCode(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, 0},
		{"bad config", fmt.Errorf("%w: n = 1", scenario.ErrBadConfig), 2},
		{"unknown backend", fmt.Errorf("%w: %q", scenario.ErrUnknownBackend, "x"), 2},
		{"flag error", Usage(errors.New("flag provided but not defined: -x")), 2},
		{"help", flag.ErrHelp, 2},
		{"capability", capability.Unsupported("exact", capability.ErrProtocol, "crowds"), 1},
		{"runtime", errors.New("kernel fault"), 1},
	}
	for _, tc := range cases {
		if got := Code(tc.err); got != tc.want {
			t.Errorf("%s: Code(%v) = %d, want %d", tc.name, tc.err, got, tc.want)
		}
	}
}

// TestUsagePreservesChain asserts that wrapping keeps the original error
// visible to errors.Is and in the printed message.
func TestUsagePreservesChain(t *testing.T) {
	base := fmt.Errorf("%w: bad spec", scenario.ErrBadConfig)
	wrapped := Usage(base)
	if !errors.Is(wrapped, scenario.ErrBadConfig) {
		t.Error("Usage broke the sentinel chain")
	}
	if wrapped.Error() != base.Error() {
		t.Errorf("Usage changed the message: %q != %q", wrapped.Error(), base.Error())
	}
	if Usage(nil) != nil {
		t.Error("Usage(nil) != nil")
	}
	if !errors.Is(Usage(flag.ErrHelp), flag.ErrHelp) || !Silent(Usage(flag.ErrHelp)) {
		t.Error("Usage must pass flag.ErrHelp through as a silent exit")
	}
}

// TestRealFlagSet exercises the intended call pattern against a real
// FlagSet parse failure.
func TestRealFlagSet(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.Int("n", 1, "")
	err := Usage(fs.Parse([]string{"-n", "notanumber"}))
	if err == nil {
		t.Fatal("expected parse error")
	}
	if Code(err) != 2 {
		t.Errorf("flag parse failure: Code = %d, want 2", Code(err))
	}
}
