package combin

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*math.Max(scale, 1)
}

func TestLogFactorialSmall(t *testing.T) {
	want := []float64{1, 1, 2, 6, 24, 120, 720, 5040}
	for n, w := range want {
		got := math.Exp(LogFactorial(n))
		if !almostEqual(got, w, 1e-12) {
			t.Errorf("exp(LogFactorial(%d)) = %v, want %v", n, got, w)
		}
	}
	if !math.IsInf(LogFactorial(-1), -1) {
		t.Errorf("LogFactorial(-1) = %v, want -Inf", LogFactorial(-1))
	}
}

func TestChooseMatchesBig(t *testing.T) {
	for n := 0; n <= 120; n += 7 {
		for k := 0; k <= n; k += 3 {
			want := ChooseBig(n, k)
			got := Choose(n, k)
			wantF, _ := new(big.Float).SetInt(want).Float64()
			if !almostEqual(got, wantF, 1e-10) {
				t.Errorf("Choose(%d,%d) = %v, want %v", n, k, got, wantF)
			}
			gotLog := LogChoose(n, k)
			if want.Sign() > 0 {
				wantLog := logBig(want)
				if !almostEqual(gotLog, wantLog, 1e-10) {
					t.Errorf("LogChoose(%d,%d) = %v, want %v", n, k, gotLog, wantLog)
				}
			}
		}
	}
}

func TestChooseOutOfRange(t *testing.T) {
	cases := []struct{ n, k int }{{5, 6}, {5, -1}, {-2, 1}, {-2, -3}}
	for _, c := range cases {
		if got := Choose(c.n, c.k); got != 0 {
			t.Errorf("Choose(%d,%d) = %v, want 0", c.n, c.k, got)
		}
		if got := LogChoose(c.n, c.k); !math.IsInf(got, -1) {
			t.Errorf("LogChoose(%d,%d) = %v, want -Inf", c.n, c.k, got)
		}
	}
}

func TestLogFallingFactorialMatchesBig(t *testing.T) {
	for n := 0; n <= 150; n += 11 {
		for k := 0; k <= n; k += 5 {
			want := FallingFactorialBig(n, k)
			got := LogFallingFactorial(n, k)
			if want.Sign() == 0 {
				if !math.IsInf(got, -1) {
					t.Errorf("LogFallingFactorial(%d,%d) = %v, want -Inf", n, k, got)
				}
				continue
			}
			if !almostEqual(got, logBig(want), 1e-10) {
				t.Errorf("LogFallingFactorial(%d,%d) = %v, want %v", n, k, got, logBig(want))
			}
		}
	}
	if got := LogFallingFactorial(3, 5); !math.IsInf(got, -1) {
		t.Errorf("LogFallingFactorial(3,5) = %v, want -Inf", got)
	}
}

// logBig returns ln of a positive big.Int accurately enough for test
// comparisons.
func logBig(x *big.Int) float64 {
	f := new(big.Float).SetInt(x)
	mant := new(big.Float)
	exp := f.MantExp(mant)
	m, _ := mant.Float64()
	return math.Log(m) + float64(exp)*math.Ln2
}

func TestStarsAndBarsSmall(t *testing.T) {
	cases := []struct {
		slack, vars int
		want        float64
	}{
		{0, 0, 1},
		{1, 0, 0},
		{0, 1, 1},
		{5, 1, 1},
		{5, 2, 6},    // C(6,1)
		{3, 3, 10},   // C(5,2)
		{10, 4, 286}, /* C(13,3) */
		{-1, 2, 0},
		{2, -1, 0},
	}
	for _, c := range cases {
		got := LogStarsAndBars(c.slack, c.vars)
		if c.want == 0 {
			if !math.IsInf(got, -1) {
				t.Errorf("LogStarsAndBars(%d,%d) = %v, want -Inf", c.slack, c.vars, got)
			}
			continue
		}
		if !almostEqual(math.Exp(got), c.want, 1e-10) {
			t.Errorf("exp(LogStarsAndBars(%d,%d)) = %v, want %v", c.slack, c.vars, math.Exp(got), c.want)
		}
	}
}

// TestStarsAndBarsCountsCompositions verifies the stars-and-bars closed form
// against explicit enumeration of compositions.
func TestStarsAndBarsCountsCompositions(t *testing.T) {
	for slack := 0; slack <= 8; slack++ {
		for vars := 1; vars <= 4; vars++ {
			var count int
			var rec func(rem, left int)
			rec = func(rem, left int) {
				if left == 1 {
					count++
					return
				}
				for v := 0; v <= rem; v++ {
					rec(rem-v, left-1)
				}
			}
			rec(slack, vars)
			got := math.Exp(LogStarsAndBars(slack, vars))
			if !almostEqual(got, float64(count), 1e-10) {
				t.Errorf("LogStarsAndBars(%d,%d): got %v compositions, enumerated %d", slack, vars, got, count)
			}
		}
	}
}

func TestLogSumExp(t *testing.T) {
	if got := LogSumExp(nil); !math.IsInf(got, -1) {
		t.Errorf("LogSumExp(nil) = %v, want -Inf", got)
	}
	got := LogSumExp([]float64{math.Log(1), math.Log(2), math.Log(3)})
	if !almostEqual(math.Exp(got), 6, 1e-12) {
		t.Errorf("exp(LogSumExp(ln1,ln2,ln3)) = %v, want 6", math.Exp(got))
	}
	inf := math.Inf(-1)
	got = LogSumExp([]float64{inf, math.Log(5), inf})
	if !almostEqual(math.Exp(got), 5, 1e-12) {
		t.Errorf("LogSumExp with -Inf entries: exp = %v, want 5", math.Exp(got))
	}
}

func TestLogAddCommutativeAndMatchesSum(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := float64(a)+1, float64(b)+1
		la, lb := math.Log(x), math.Log(y)
		s := LogAdd(la, lb)
		return almostEqual(math.Exp(s), x+y, 1e-10) && almostEqual(s, LogAdd(lb, la), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogAddWithNegInf(t *testing.T) {
	inf := math.Inf(-1)
	if got := LogAdd(inf, math.Log(7)); !almostEqual(math.Exp(got), 7, 1e-12) {
		t.Errorf("LogAdd(-Inf, ln7) = %v", got)
	}
	if got := LogAdd(math.Log(7), inf); !almostEqual(math.Exp(got), 7, 1e-12) {
		t.Errorf("LogAdd(ln7, -Inf) = %v", got)
	}
	if got := LogAdd(inf, inf); !math.IsInf(got, -1) {
		t.Errorf("LogAdd(-Inf,-Inf) = %v, want -Inf", got)
	}
}

// TestPathWeightIdentity checks the engine's key identity: summing
// W(l,k)·C(l,k) over k equals 1, i.e. position-set probabilities are a
// partition of unity. This exercises the exact combinatorial quantities the
// events engine relies on.
func TestPathWeightIdentity(t *testing.T) {
	for _, tc := range []struct{ n, c, l int }{
		{10, 1, 5}, {10, 3, 7}, {50, 5, 30}, {100, 1, 99}, {100, 10, 60},
	} {
		var sum float64
		for k := 0; k <= tc.c && k <= tc.l; k++ {
			lw := LogFallingFactorial(tc.c, k) +
				LogFallingFactorial(tc.n-1-tc.c, tc.l-k) -
				LogFallingFactorial(tc.n-1, tc.l)
			sum += math.Exp(lw) * Choose(tc.l, k)
		}
		if !almostEqual(sum, 1, 1e-9) {
			t.Errorf("n=%d c=%d l=%d: Σ W(l,k)·C(l,k) = %v, want 1", tc.n, tc.c, tc.l, sum)
		}
	}
}
