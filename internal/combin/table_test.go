package combin

import (
	"math"
	"math/big"
	"sync"
	"testing"
)

// TestLogFactorialTableMatchesLgamma checks that table-served values are
// bit-identical to direct Lgamma evaluation, across growth boundaries.
func TestLogFactorialTableMatchesLgamma(t *testing.T) {
	for _, n := range []int{0, 1, 2, 17, 255, 256, 257, 1000, 5000} {
		want, _ := math.Lgamma(float64(n) + 1)
		if got := LogFactorial(n); got != want {
			t.Errorf("LogFactorial(%d) = %v, want %v (bit-identical)", n, got, want)
		}
	}
	if !math.IsInf(LogFactorial(-1), -1) {
		t.Error("LogFactorial(-1) should be -Inf")
	}
}

// TestStarsAndBarsTableExact cross-checks the cached linear-space counts
// against exact big-integer binomials, across growth boundaries.
func TestStarsAndBarsTableExact(t *testing.T) {
	for vars := 0; vars <= 6; vars++ {
		for _, slack := range []int{0, 1, 2, 50, 127, 128, 129, 300} {
			got := StarsAndBars(slack, vars)
			var want float64
			if vars == 0 {
				if slack == 0 {
					want = 1
				}
			} else {
				bi := ChooseBig(slack+vars-1, vars-1)
				want, _ = new(big.Float).SetInt(bi).Float64()
			}
			if got != want {
				t.Errorf("StarsAndBars(%d,%d) = %v, want %v", slack, vars, got, want)
			}
		}
	}
	if StarsAndBars(-1, 2) != 0 || StarsAndBars(3, -1) != 0 {
		t.Error("negative arguments should count zero arrangements")
	}
	// The vars >= sbMaxVars fallback bypasses the table but must agree
	// with the direct binomial.
	if got, want := StarsAndBars(5, sbMaxVars), Choose(5+sbMaxVars-1, sbMaxVars-1); got != want {
		t.Errorf("fallback StarsAndBars = %v, want %v", got, want)
	}
}

// TestTablesConcurrent hammers both shared tables from many goroutines
// while they grow, for the -race detector, and verifies every result.
func TestTablesConcurrent(t *testing.T) {
	const goroutines = 16
	const perG = 2000
	var wg sync.WaitGroup
	errs := make([]string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Walk n upward so every goroutine keeps hitting the growth
				// edge of the log-factorial table.
				n := (i*7+g*13)%3000 + 1
				want, _ := math.Lgamma(float64(n) + 1)
				if got := LogFactorial(n); got != want {
					errs[g] = "LogFactorial mismatch"
					return
				}
				vars := i%8 + 1
				slack := (i * 3) % 400
				if got, want := StarsAndBars(slack, vars), Choose(slack+vars-1, vars-1); got != want {
					errs[g] = "StarsAndBars mismatch"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, e := range errs {
		if e != "" {
			t.Errorf("goroutine %d: %s", g, e)
		}
	}
}
