// Package combin provides log-space combinatorial primitives used by the
// exact anonymity-degree engine: factorials, falling factorials, binomial
// coefficients, and stars-and-bars composition counts.
//
// All quantities are computed in natural-log space via math.Lgamma so that
// expressions such as P(C,k)·P(N−1−C, l−k)/P(N−1,l) remain representable for
// systems with hundreds of nodes and paths spanning the whole clique. Exact
// big-integer variants are provided for cross-validation in tests.
package combin

import (
	"math"
	"math/big"
	"sync"
	"sync/atomic"
)

// NegInf is the log-space representation of an impossible count (zero ways).
var negInf = math.Inf(-1)

// The process-wide log-factorial table. Every figure regeneration,
// optimizer restart, and Monte-Carlo batch evaluates the same small set of
// ln(n!) values thousands of times, so they are computed once and shared.
// Reads are lock-free (atomic pointer load); growth is serialized by a
// mutex and monotone — a stored table is never shrunk or mutated, only
// replaced by a longer copy, so concurrent readers always see a fully
// initialized prefix. Entry n is computed directly by math.Lgamma, never
// incrementally, so every value is bit-identical regardless of the order
// in which goroutines grow the table.
var (
	lfMu  sync.Mutex
	lfTab atomic.Pointer[[]float64]
)

const lfInitialSize = 256

// LogFactorial returns ln(n!). It returns -Inf for n < 0, matching the
// convention that an impossible arrangement has zero weight. Values are
// served from a grow-on-demand process-wide table and safe for concurrent
// use.
func LogFactorial(n int) float64 {
	if n < 0 {
		return negInf
	}
	if t := lfTab.Load(); t != nil && n < len(*t) {
		return (*t)[n]
	}
	return growLogFactorial(n)
}

// growLogFactorial extends the shared table to cover n and returns ln(n!).
func growLogFactorial(n int) float64 {
	lfMu.Lock()
	defer lfMu.Unlock()
	var old []float64
	if t := lfTab.Load(); t != nil {
		old = *t
		if n < len(old) {
			return old[n]
		}
	}
	size := 2 * len(old)
	if size < lfInitialSize {
		size = lfInitialSize
	}
	if size <= n {
		size = n + 1
	}
	next := make([]float64, size)
	copy(next, old)
	for k := len(old); k < size; k++ {
		next[k], _ = math.Lgamma(float64(k) + 1)
	}
	lfTab.Store(&next)
	return next[n]
}

// LogFallingFactorial returns ln(n·(n−1)···(n−k+1)) = ln(n!/(n−k)!).
// It returns -Inf when the product is empty in the impossible sense
// (k > n or negative arguments); ln(1) = 0 when k == 0.
func LogFallingFactorial(n, k int) float64 {
	switch {
	case k == 0:
		return 0
	case n < 0 || k < 0 || k > n:
		return negInf
	default:
		return LogFactorial(n) - LogFactorial(n-k)
	}
}

// LogChoose returns ln(C(n,k)), or -Inf when C(n,k) == 0.
func LogChoose(n, k int) float64 {
	if k < 0 || n < 0 || k > n {
		return negInf
	}
	return LogFactorial(n) - LogFactorial(k) - LogFactorial(n-k)
}

// Choose returns C(n,k) as a float64. Small cases are computed exactly by
// iteration; large cases via LogChoose. Returns 0 when C(n,k) == 0.
func Choose(n, k int) float64 {
	if k < 0 || n < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	if k == 0 {
		return 1
	}
	// The iterative product is far more accurate than exp(LogChoose) and
	// cheap for small k (the engine's hot path has k ≤ C+2). Round only
	// when the result is exactly representable.
	if k <= 40 {
		res := 1.0
		for i := 1; i <= k; i++ {
			res = res * float64(n-k+i) / float64(i)
		}
		if res < 1e15 {
			return math.Round(res)
		}
		return res
	}
	return math.Exp(LogChoose(n, k))
}

// The stars-and-bars cache: StarsAndBars(slack, vars) is the innermost
// call of the exact engine's length loop, evaluated for every (class,
// length) pair of every posterior computation. vars is tiny (at most
// C+2 free gap variables) and slack is bounded by the path length, so a
// small 2-D table indexed [vars][slack] captures the whole workload.
// Same discipline as the log-factorial table: lock-free reads of an
// immutable snapshot, mutex-serialized copy-and-replace growth, and every
// entry computed by the same Choose call a cache miss would have made, so
// cached and uncached results are bit-identical.
const sbMaxVars = 40

var (
	sbMu  sync.Mutex
	sbTab atomic.Pointer[[][]float64]
)

// StarsAndBars returns the number of ways to write slack as an ordered sum
// of vars non-negative integers, C(slack+vars−1, vars−1), as a float64.
// With vars == 0 the count is 1 iff slack == 0. Results for small vars are
// served from a grow-on-demand process-wide table, safe for concurrent use.
func StarsAndBars(slack, vars int) float64 {
	if slack < 0 || vars < 0 {
		return 0
	}
	if vars == 0 {
		if slack == 0 {
			return 1
		}
		return 0
	}
	if vars >= sbMaxVars {
		return Choose(slack+vars-1, vars-1)
	}
	if t := sbTab.Load(); t != nil {
		if rows := *t; vars < len(rows) && slack < len(rows[vars]) {
			return rows[vars][slack]
		}
	}
	return growStarsAndBars(slack, vars)
}

// growStarsAndBars extends the shared table to cover (slack, vars).
func growStarsAndBars(slack, vars int) float64 {
	sbMu.Lock()
	defer sbMu.Unlock()
	var old [][]float64
	if t := sbTab.Load(); t != nil {
		old = *t
		if vars < len(old) && slack < len(old[vars]) {
			return old[vars][slack]
		}
	}
	nRows := len(old)
	if nRows <= vars {
		nRows = vars + 1
	}
	next := make([][]float64, nRows)
	copy(next, old)
	row := next[vars]
	size := 2 * len(row)
	if size < 128 {
		size = 128
	}
	if size <= slack {
		size = slack + 1
	}
	grown := make([]float64, size)
	copy(grown, row)
	for s := len(row); s < size; s++ {
		grown[s] = Choose(s+vars-1, vars-1)
	}
	next[vars] = grown
	sbTab.Store(&next)
	return grown[slack]
}

// LogStarsAndBars returns ln of the number of ways to write slack as an
// ordered sum of vars non-negative integers, i.e. ln(C(slack+vars−1, vars−1)).
// With vars == 0 the count is 1 iff slack == 0.
func LogStarsAndBars(slack, vars int) float64 {
	if slack < 0 || vars < 0 {
		return negInf
	}
	if vars == 0 {
		if slack == 0 {
			return 0
		}
		return negInf
	}
	return LogChoose(slack+vars-1, vars-1)
}

// ChooseBig returns C(n,k) exactly as a big.Int (0 when out of range).
// Intended for test cross-validation of the float64 paths.
func ChooseBig(n, k int) *big.Int {
	if k < 0 || n < 0 || k > n {
		return big.NewInt(0)
	}
	return new(big.Int).Binomial(int64(n), int64(k))
}

// FallingFactorialBig returns n·(n−1)···(n−k+1) exactly (1 when k == 0,
// 0 when k > n or arguments are negative).
func FallingFactorialBig(n, k int) *big.Int {
	if k == 0 {
		return big.NewInt(1)
	}
	if n < 0 || k < 0 || k > n {
		return big.NewInt(0)
	}
	res := big.NewInt(1)
	for i := 0; i < k; i++ {
		res.Mul(res, big.NewInt(int64(n-i)))
	}
	return res
}

// LogSumExp returns ln(Σ exp(xs[i])) computed stably. An empty input or an
// input of all -Inf yields -Inf (the log of zero).
func LogSumExp(xs []float64) float64 {
	maxV := negInf
	for _, x := range xs {
		if x > maxV {
			maxV = x
		}
	}
	if math.IsInf(maxV, -1) {
		return negInf
	}
	var sum float64
	for _, x := range xs {
		sum += math.Exp(x - maxV)
	}
	return maxV + math.Log(sum)
}

// LogAdd returns ln(exp(a) + exp(b)) computed stably.
func LogAdd(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}
