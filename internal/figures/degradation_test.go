package figures_test

import (
	"strings"
	"testing"

	"anonmix/internal/figures"
)

// TestDegradationRoundsSweep checks the degradation figure's shape: one
// series per strategy × receiver mode, X = 1..rounds, and every curve
// non-increasing (within sampling slack).
func TestDegradationRoundsSweep(t *testing.T) {
	specs := []string{"freedom", "uniform:1,7"}
	fig, err := figures.DegradationRoundsSweep(24, 2, 600, 6, 3, specs)
	if err != nil {
		t.Fatal(err)
	}
	if fig.Name != "degradation-rounds" {
		t.Errorf("name = %q", fig.Name)
	}
	if len(fig.Series) != 2*len(specs) {
		t.Fatalf("series count %d, want %d", len(fig.Series), 2*len(specs))
	}
	var honestLabels int
	for _, s := range fig.Series {
		if len(s.X) != 6 || len(s.Y) != 6 {
			t.Fatalf("series %s: %d points", s.Label, len(s.X))
		}
		if s.X[0] != 1 || s.X[5] != 6 {
			t.Errorf("series %s: X = %v", s.Label, s.X)
		}
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] > s.Y[i-1]+0.05 {
				t.Errorf("series %s: H_%d = %v > H_%d = %v", s.Label, i+1, s.Y[i], i, s.Y[i-1])
			}
		}
		if strings.Contains(s.Label, "recv honest") {
			honestLabels++
		}
	}
	if honestLabels != len(specs) {
		t.Errorf("receiver-honest series count %d", honestLabels)
	}
}

func TestDegradationRoundsSweepValidation(t *testing.T) {
	if _, err := figures.DegradationRoundsSweep(24, 2, 100, 1, 1, nil); err == nil {
		t.Error("rounds=1 accepted")
	}
	if _, err := figures.DegradationRoundsSweep(24, 2, 100, 4, 1, []string{"warp:9"}); err == nil {
		t.Error("unknown spec accepted")
	}
	if _, err := figures.ByName("degradation-rounds"); err != nil {
		// The registry entry runs the full default figure; just ensure the
		// name resolves — the sweep above covers the shape.
		t.Errorf("ByName: %v", err)
	}
	found := false
	for _, name := range figures.Names() {
		if name == "degradation-rounds" {
			found = true
		}
	}
	if !found {
		t.Error("degradation-rounds missing from Names()")
	}
}
