package figures_test

import (
	"strings"
	"testing"

	"anonmix/internal/figures"
	"anonmix/internal/scenario"
)

// TestEpochOptimizerSweep: nine curves (three policies × three dynamics),
// per-epoch re-optimization dominates the static and joint policies at
// every epoch (all three are scored by the same epoch engines, and
// per-epoch maximizes each one), and the engines behind the sweep ride the
// delta cache.
func TestEpochOptimizerSweep(t *testing.T) {
	scenario.ResetEngines()
	defer scenario.ResetEngines()
	fig, err := figures.EpochOptimizerSweep(30, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if fig.Name != "epoch-optimizer" {
		t.Errorf("name = %q", fig.Name)
	}
	if len(fig.Series) != 9 {
		t.Fatalf("series = %d, want 9 (3 policies x 3 dynamics)", len(fig.Series))
	}
	byLabel := map[string][]float64{}
	for _, s := range fig.Series {
		if len(s.Y) != 3 {
			t.Errorf("series %q has %d points, want 3 epochs", s.Label, len(s.Y))
		}
		byLabel[s.Label] = s.Y
	}
	for _, dyn := range []string{"grow", "shrink", "creep"} {
		per, static, joint := byLabel["per-epoch/"+dyn], byLabel["static/"+dyn], byLabel["joint/"+dyn]
		if per == nil || static == nil || joint == nil {
			t.Fatalf("missing curves for %s: %v", dyn, byLabel)
		}
		for e := range per {
			// Per-epoch maximizes each epoch; the other two policies
			// evaluate fixed distributions on the same engine. The warm
			// ascent is local (two starts), so allow milli-bit wiggle —
			// what must never happen is the warm chain losing whole
			// fractions of a bit to a policy with less freedom.
			if per[e] < static[e]-1e-3 || per[e] < joint[e]-1e-3 {
				t.Errorf("%s epoch %d: per-epoch %v below static %v or joint %v",
					dyn, e, per[e], static[e], joint[e])
			}
		}
		// At epoch 0 the system is the static design point, so the static
		// policy is epoch-optimal there.
		if per[0]-static[0] > 1e-6 {
			t.Errorf("%s epoch 0: static %v should match per-epoch %v at the design point",
				dyn, static[0], per[0])
		}
	}
	// The three dynamics share engine states ((30,3) appears in all of
	// them), so the sweep must have exercised the cache.
	st := scenario.CacheStats()
	if st.Hits == 0 || st.DeltaDerived == 0 {
		t.Errorf("sweep did not exercise the delta cache: %+v", st)
	}
}

// TestEpochOptimizerReproducible: the sweep is a pure function of its
// parameters (solver restarts fold deterministically at any pool width).
func TestEpochOptimizerReproducible(t *testing.T) {
	gen := func() string {
		fig, err := figures.EpochOptimizerSweep(24, 2, 8)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := fig.WriteTSV(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if a, b := gen(), gen(); a != b {
		t.Errorf("epoch-optimizer sweep not reproducible:\n%s\nvs\n%s", a, b)
	}
}
