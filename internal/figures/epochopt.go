package figures

// The epoch-optimizer figure: what re-optimizing the path-length
// distribution buys under a drifting population. For each canonical
// dynamic — grow (joins), shrink (leaves), creep (time-phased compromise)
// — a three-epoch Messages timeline is materialized, and three defender
// policies are compared per epoch:
//
//   - static: the optimal distribution for the base (N, C), designed
//     before the timeline starts and never changed;
//   - per-epoch: re-optimized at every epoch (warm-started — the
//     MaximizeTimeline fast path);
//   - joint: one distribution maximizing the traffic-weighted blend of
//     per-epoch H*.
//
// Every Y value is the epoch engine's exact H* of the policy's
// distribution, so the three curves share one scale. The gaps are the
// figure: static decays as the population drifts away from its design
// point (fastest under creep), joint sits between, and per-epoch is the
// upper envelope. The epoch engines come from the scenario cache, so
// consecutive epochs are delta-derived family members.

import (
	"fmt"

	"anonmix/internal/optimize"
	"anonmix/internal/scenario"
)

// epochOptMessages is the per-epoch traffic budget of the canonical
// timelines (equal budgets: the blend weights epochs equally).
const epochOptMessages = 1000

// epochOptTimelines are the three canonical dynamics as single-shot
// Messages timelines, parameterized by the base population and adversary.
func epochOptTimelines(n, c int) []struct {
	name     string
	timeline []scenario.Epoch
} {
	return []struct {
		name     string
		timeline []scenario.Epoch
	}{
		{"grow", []scenario.Epoch{
			{Messages: epochOptMessages},
			{Messages: epochOptMessages, Join: n / 4},
			{Messages: epochOptMessages, Join: n / 4},
		}},
		{"shrink", []scenario.Epoch{
			{Messages: epochOptMessages},
			{Messages: epochOptMessages, Leave: n / 5},
			{Messages: epochOptMessages, Leave: n / 5},
		}},
		{"creep", []scenario.Epoch{
			{Messages: epochOptMessages},
			{Messages: epochOptMessages, Compromise: c},
			{Messages: epochOptMessages, Compromise: c},
		}},
	}
}

// EpochOptimizerSweep regenerates the epoch-optimizer figure: per-epoch
// H* of the static, per-epoch-optimal, and joint-optimal length
// distributions (support [0, hi], free mean) under the grow, shrink, and
// creep dynamics over a base (n, c) system. The output is deterministic at
// any pool width (the solver folds restarts in start order).
func EpochOptimizerSweep(n, c, hi int) (Figure, error) {
	if hi < 1 {
		return Figure{}, fmt.Errorf("figures: epoch-optimizer support max %d < 1", hi)
	}
	fig := Figure{
		Name: "epoch-optimizer",
		Title: fmt.Sprintf(
			"Static vs per-epoch vs joint optimal path length distributions (N=%d, C=%d, support [0,%d])", n, c, hi),
		XLabel: "epoch",
	}
	// The static baseline: designed once for the base system.
	base, err := scenario.Engine(n, c)
	if err != nil {
		return Figure{}, err
	}
	static, err := optimize.Maximize(optimize.Problem{
		Engine: base, Lo: 0, Hi: hi, Mean: optimize.UnconstrainedMean(),
	}, optimize.WithMaxIterations(300))
	if err != nil {
		return Figure{}, fmt.Errorf("figures: epoch-optimizer static solve: %w", err)
	}
	for _, dyn := range epochOptTimelines(n, c) {
		states, err := scenario.TimelineStates(n, c, dyn.timeline)
		if err != nil {
			return Figure{}, fmt.Errorf("figures: epoch-optimizer %s: %w", dyn.name, err)
		}
		tp := optimize.TimelineProblem{Lo: 0, Hi: hi, Mean: optimize.UnconstrainedMean()}
		for _, st := range states {
			e, err := scenario.Engine(st.N, st.C)
			if err != nil {
				return Figure{}, err
			}
			tp.Epochs = append(tp.Epochs, optimize.EpochProblem{Engine: e, Weight: st.Weight})
		}
		res, err := optimize.MaximizeTimeline(tp, optimize.WithMaxIterations(300))
		if err != nil {
			return Figure{}, fmt.Errorf("figures: epoch-optimizer %s: %w", dyn.name, err)
		}
		policies := []struct {
			label string
			h     func(e int) (float64, error)
		}{
			{"static", func(e int) (float64, error) {
				return tp.Epochs[e].Engine.AnonymityDegree(static.Dist)
			}},
			{"per-epoch", func(e int) (float64, error) {
				return tp.Epochs[e].Engine.AnonymityDegree(res.PerEpoch[e].Dist)
			}},
			{"joint", func(e int) (float64, error) {
				return tp.Epochs[e].Engine.AnonymityDegree(res.Joint.Dist)
			}},
		}
		for _, pol := range policies {
			s := Series{Label: pol.label + "/" + dyn.name}
			for e := range tp.Epochs {
				h, err := pol.h(e)
				if err != nil {
					return Figure{}, fmt.Errorf("figures: epoch-optimizer %s/%s: %w", pol.label, dyn.name, err)
				}
				s.X = append(s.X, float64(e))
				s.Y = append(s.Y, h)
			}
			fig.Series = append(fig.Series, s)
		}
	}
	return fig, nil
}

// EpochOptimizer regenerates the epoch-optimizer figure with the default
// configuration: a 40-node base system with 4 compromised nodes and
// support [0, 12] — small enough to solve nine optimizations exactly in
// well under a second, large enough that the three dynamics separate.
func EpochOptimizer() (Figure, error) {
	return EpochOptimizerSweep(40, 4, 12)
}
