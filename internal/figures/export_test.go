package figures

import "sync"

// ResetEnginesForTest drops the process-wide shared engines so a test can
// force cold caches on both sides of a parallel-vs-serial comparison.
func ResetEnginesForTest() { engines = sync.Map{} }
