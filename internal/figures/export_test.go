package figures

import "anonmix/internal/scenario"

// ResetEnginesForTest drops the process-wide shared engines (now owned by
// the scenario layer) so a test can force cold caches on both sides of a
// parallel-vs-serial comparison.
func ResetEnginesForTest() { scenario.ResetEngines() }
