package figures_test

import (
	"strings"
	"testing"

	"anonmix/internal/figures"
)

// TestChurnSweep: the churn figure carries one curve per spec × dynamic,
// every curve spans the full 12-round horizon, and the dynamics order as
// the theory demands at the horizon — creeping compromise degrades
// anonymity at least as fast as a growing population.
func TestChurnSweep(t *testing.T) {
	fig, err := figures.ChurnSweep(20, 2, 400, 1, 2, []string{"fixed:3"})
	if err != nil {
		t.Fatal(err)
	}
	if fig.Name != "churn-sweep" {
		t.Errorf("name = %q", fig.Name)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d, want 3 (grow, shrink, creep)", len(fig.Series))
	}
	byLabel := map[string][]float64{}
	for _, s := range fig.Series {
		if len(s.Y) != 12 {
			t.Errorf("series %q has %d points, want 12", s.Label, len(s.Y))
		}
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] > s.Y[i-1]+0.02 {
				t.Errorf("series %q not non-increasing at %d: %v", s.Label, i, s.Y)
			}
		}
		byLabel[s.Label] = s.Y
	}
	grow, creep := byLabel["fixed:3/grow"], byLabel["fixed:3/creep"]
	if grow == nil || creep == nil {
		t.Fatalf("labels = %v", byLabel)
	}
	if last := len(grow) - 1; creep[last] >= grow[last] {
		t.Errorf("creeping compromise should end below growth: creep %v, grow %v", creep[last], grow[last])
	}
}

// TestChurnSweepReproducible: pinned workers make the sweep a pure
// function of its parameters.
func TestChurnSweepReproducible(t *testing.T) {
	gen := func() string {
		fig, err := figures.ChurnSweep(15, 2, 100, 4, 2, []string{"fixed:3"})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := fig.WriteTSV(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if a, b := gen(), gen(); a != b {
		t.Errorf("churn sweep not reproducible:\n%s\nvs\n%s", a, b)
	}
}
