package figures

// The degradation figure: anonymity under repeated communication. For
// each strategy and receiver mode, one multi-round scenario run yields the
// whole curve H_k vs k — the mean accumulated posterior entropy after the
// session's k-th message (Wright et al.'s attack family, [23] in Guan et
// al.). The Monte-Carlo backend samples the sessions; its per-round
// inference is exact, so the k = 1 column reproduces the single-shot
// figures and the curve's decay rate is the strategy's real-world message
// budget.

import (
	"fmt"

	"anonmix/internal/scenario"
)

// DefaultDegradationSpecs are the strategies of the degradation figure:
// two §2 presets and a parametric family with distinct single-shot
// anonymity degrees, so the figure shows whether single-shot ranking is
// preserved under accumulation.
func DefaultDegradationSpecs() []string {
	return []string{"freedom", "onionrouting1", "uniform:1,9"}
}

// DegradationRoundsSweep regenerates the degradation figure: H_k vs k for
// every spec × receiver mode, k = 1..rounds, estimated from the given
// number of sessions per scenario on the Monte-Carlo backend.
func DegradationRoundsSweep(n, c, sessions, rounds int, seed int64, specs []string) (Figure, error) {
	if len(specs) == 0 {
		specs = DefaultDegradationSpecs()
	}
	if rounds < 2 {
		return Figure{}, fmt.Errorf("figures: degradation needs rounds ≥ 2, got %d", rounds)
	}
	fig := Figure{
		Name:   "degradation-rounds",
		Title:  fmt.Sprintf("Anonymity degradation under repeated communication (%d sessions)", sessions),
		XLabel: "rounds k",
	}
	for _, mode := range []struct {
		suffix        string
		uncompromised bool
	}{
		{"", false},
		{" (recv honest)", true},
	} {
		for _, spec := range specs {
			res, err := scenario.Run(scenario.Config{
				N:            n,
				Backend:      scenario.BackendMonteCarlo,
				StrategySpec: spec,
				Adversary: scenario.Adversary{
					Count:                 c,
					UncompromisedReceiver: mode.uncompromised,
				},
				Workload: scenario.Workload{
					Messages: sessions,
					Rounds:   rounds,
					Seed:     seed,
					// Pinned parallelism keeps the figure a pure function of
					// its parameters on any machine (the estimate depends on
					// (Seed, Trials, Workers)); the golden-file test relies
					// on it.
					Workers: 4,
				},
			})
			if err != nil {
				return Figure{}, fmt.Errorf("figures: degradation %s: %w", spec, err)
			}
			s := Series{Label: spec + mode.suffix}
			for k, h := range res.HRounds {
				s.X = append(s.X, float64(k+1))
				s.Y = append(s.Y, h)
			}
			fig.Series = append(fig.Series, s)
		}
	}
	return fig, nil
}

// DegradationRounds regenerates the degradation figure with the paper
// system scaled to a threat model where accumulation bites (C = 3) and a
// 16-round horizon.
func DegradationRounds() (Figure, error) {
	return DegradationRoundsSweep(PaperN, 3, 2000, 16, 1, nil)
}
