package figures

// The backend-ablation figure: the same scenarios evaluated on all three
// backends of the scenario layer. The exact, Monte-Carlo, and testbed
// curves must coincide within sampling error — this figure is the visual
// counterpart of the cross-backend agreement test in internal/scenario,
// and the template for future multi-backend comparison figures.

import (
	"fmt"

	"anonmix/internal/scenario"
)

// DefaultBackendSpecs are the strategies of the backend ablation: §2
// presets plus parametric families, chosen with distinct mean path lengths
// so each is one column of the figure.
func DefaultBackendSpecs() []string {
	return []string{"anonymizer", "freedom", "pipenet", "onionrouting1", "uniform:2,12", "fixed:9"}
}

// AblationBackendsSweep regenerates the backend comparison for the given
// system, message budget, and strategy specs (resolved through the pathsel
// registry). X is the strategy's mean path length; one series per backend.
func AblationBackendsSweep(n, c, messages int, seed int64, specs []string) (Figure, error) {
	if len(specs) == 0 {
		specs = DefaultBackendSpecs()
	}
	exact := Series{Label: "exact"}
	mc := Series{Label: fmt.Sprintf("mc(%d)", messages)}
	tb := Series{Label: fmt.Sprintf("testbed(%d)", messages)}
	seen := make(map[float64]string, len(specs))
	for _, spec := range specs {
		base := scenario.Config{
			N:            n,
			StrategySpec: spec,
			Adversary:    scenario.Adversary{Count: c},
		}
		ex := base
		ex.Backend = scenario.BackendExact
		exRes, err := scenario.Run(ex)
		if err != nil {
			return Figure{}, fmt.Errorf("figures: backends %s: %w", spec, err)
		}
		x := exRes.Strategy.Length.Mean()
		// The TSV is keyed by mean path length; a second spec at the same
		// mean would silently overwrite the first's row.
		if prev, dup := seen[x]; dup {
			return Figure{}, fmt.Errorf("figures: backends: specs %q and %q share mean path length %g; pick specs with distinct means",
				prev, spec, x)
		}
		seen[x] = spec

		mcCfg := base
		mcCfg.Backend = scenario.BackendMonteCarlo
		mcCfg.Workload = scenario.Workload{Messages: messages, Seed: seed, Workers: 4}
		mcRes, err := scenario.Run(mcCfg)
		if err != nil {
			return Figure{}, fmt.Errorf("figures: backends %s: %w", spec, err)
		}

		tbCfg := base
		tbCfg.Backend = scenario.BackendTestbed
		tbCfg.Workload = scenario.Workload{Messages: messages, Seed: seed + 1}
		tbRes, err := scenario.Run(tbCfg)
		if err != nil {
			return Figure{}, fmt.Errorf("figures: backends %s: %w", spec, err)
		}

		exact.X = append(exact.X, x)
		exact.Y = append(exact.Y, exRes.H)
		mc.X = append(mc.X, x)
		mc.Y = append(mc.Y, mcRes.H)
		tb.X = append(tb.X, x)
		tb.Y = append(tb.Y, tbRes.H)
	}
	return Figure{
		Name:   "ablation-backends",
		Title:  "Anonymity degree by backend (exact vs Monte-Carlo vs testbed)",
		XLabel: "mean path length",
		Series: []Series{exact, mc, tb},
	}, nil
}

// AblationBackends regenerates the backend comparison with the paper
// configuration and the default strategy set.
func AblationBackends() (Figure, error) {
	return AblationBackendsSweep(PaperN, PaperC, 4000, 1, nil)
}
