package figures

// The churn-sweep figure: anonymity degradation across a dynamic
// population. Each curve is one strategy under one canonical population
// dynamic — grow (joins), shrink (leaves), or creep (time-phased
// compromise) — executed as a three-epoch Rounds timeline on the
// Monte-Carlo backend, so the H_k trajectory shows how the accumulation
// attack interacts with membership and adversary change: joins slow the
// decay (per-round observations leak less in a larger population, while
// the joiners themselves are eliminated as candidates — they were not
// members when the session started), leaves both concentrate the
// per-round posteriors and shrink the persistent sender pool, and
// creeping compromise collapses the curve fastest — every session whose
// sender the adversary swallows drops to zero outright.

import (
	"fmt"

	"anonmix/internal/scenario"
)

// DefaultChurnSpecs are the strategies of the churn sweep: a fixed-length
// preset and a parametric family with distinct single-shot degrees.
func DefaultChurnSpecs() []string {
	return []string{"freedom", "uniform:1,9"}
}

// churnRounds is the per-epoch round budget of the canonical timelines.
const churnRounds = 4

// churnTimelines are the three canonical dynamics, parameterized by the
// base population and adversary size.
func churnTimelines(n, c int) []struct {
	name     string
	timeline []scenario.Epoch
} {
	return []struct {
		name     string
		timeline []scenario.Epoch
	}{
		{"grow", []scenario.Epoch{
			{Rounds: churnRounds},
			{Rounds: churnRounds, Join: n / 2},
			{Rounds: churnRounds, Join: n / 2},
		}},
		{"shrink", []scenario.Epoch{
			{Rounds: churnRounds},
			{Rounds: churnRounds, Leave: n / 5},
			{Rounds: churnRounds, Leave: n / 5},
		}},
		{"creep", []scenario.Epoch{
			{Rounds: churnRounds},
			{Rounds: churnRounds, Compromise: c},
			{Rounds: churnRounds, Compromise: c},
		}},
	}
}

// ChurnSweep regenerates the churn figure: H_k vs round k for every spec ×
// dynamic, estimated from the given number of sessions per scenario on the
// Monte-Carlo backend. workers pins the sampling parallelism (0 = shared
// pool width); pin it for machine-independent, bit-reproducible output.
func ChurnSweep(n, c, sessions int, seed int64, workers int, specs []string) (Figure, error) {
	if len(specs) == 0 {
		specs = DefaultChurnSpecs()
	}
	fig := Figure{
		Name:   "churn-sweep",
		Title:  fmt.Sprintf("Anonymity degradation under churn and time-phased compromise (%d sessions)", sessions),
		XLabel: "rounds k",
	}
	for _, dyn := range churnTimelines(n, c) {
		for _, spec := range specs {
			res, err := scenario.Run(scenario.Config{
				N:            n,
				Backend:      scenario.BackendMonteCarlo,
				StrategySpec: spec,
				Adversary:    scenario.Adversary{Count: c},
				Timeline:     dyn.timeline,
				Workload: scenario.Workload{
					Messages: sessions,
					Seed:     seed,
					Workers:  workers,
				},
			})
			if err != nil {
				return Figure{}, fmt.Errorf("figures: churn %s/%s: %w", dyn.name, spec, err)
			}
			s := Series{Label: spec + "/" + dyn.name}
			for k, h := range res.HRounds {
				s.X = append(s.X, float64(k+1))
				s.Y = append(s.Y, h)
			}
			fig.Series = append(fig.Series, s)
		}
	}
	return fig, nil
}

// Churn regenerates the churn figure with the default dynamic-population
// configuration: a 30-node system, 3 base compromised nodes, and pinned
// sampling parallelism so the committed reference output reproduces on any
// machine.
func Churn() (Figure, error) {
	return ChurnSweep(30, 3, 2000, 1, 4, nil)
}
