package figures

// Ablation figures beyond the paper's §6: how the anonymity degree responds
// to the number of compromised nodes, the system size, the adversary's
// inference strength, and the Crowds forwarding probability. These back
// the BenchmarkAblation* targets and the extended identifiers of
// cmd/anonbench.

import (
	"fmt"
	"math"

	"anonmix/internal/dist"
	"anonmix/internal/events"
	"anonmix/internal/pool"
	"anonmix/internal/theory"
)

// AblationCSweep plots H*(S) versus fixed path length for several
// compromised-node counts (the paper fixes C = 1; this shows the threat
// scaling of §4).
func AblationCSweep() (Figure, error) {
	fig := Figure{
		Name:   "ablation-c",
		Title:  "Anonymity degree vs. path length for growing compromise",
		XLabel: "path length l",
	}
	for _, c := range []int{1, 2, 4, 8} {
		e, err := sharedEngine(PaperN, c, events.InferenceStandard)
		if err != nil {
			return Figure{}, err
		}
		s, err := seriesOver(fmt.Sprintf("C=%d", c), intRange(1, PaperN-1, 2),
			func(l int) (float64, error) { return fixedDegree(e, l) })
		if err != nil {
			return Figure{}, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// AblationNSweep plots the location and height of the fixed-length peak as
// the system grows, normalizing H* by log2(N).
func AblationNSweep() (Figure, error) {
	fig := Figure{
		Name:   "ablation-n",
		Title:  "Fixed-length peak vs. system size (C = 1)",
		XLabel: "N",
	}
	peakL := Series{Label: "peak location l*"}
	peakFrac := Series{Label: "peak H*/log2(N)"}
	// One independent fixed-length sweep per system size; each sweep in
	// turn fans its lengths out when pool slots are free.
	ns := []int{20, 40, 60, 80, 100, 150, 200, 300}
	type peak struct {
		l    int
		frac float64
	}
	peaks, err := pool.MapErr(len(ns), func(i int) (peak, error) {
		n := ns[i]
		e, err := sharedEngine(n, 1, events.InferenceStandard)
		if err != nil {
			return peak{}, err
		}
		hs, err := pool.MapErr(n-1, func(j int) (float64, error) {
			return fixedDegree(e, j+1)
		})
		if err != nil {
			return peak{}, err
		}
		bestL, bestH := 0, -1.0
		for j, h := range hs {
			if h > bestH {
				bestH, bestL = h, j+1
			}
		}
		return peak{l: bestL, frac: bestH / e.MaxAnonymity()}, nil
	})
	if err != nil {
		return Figure{}, err
	}
	for i, n := range ns {
		peakL.X = append(peakL.X, float64(n))
		peakL.Y = append(peakL.Y, float64(peaks[i].l))
		peakFrac.X = append(peakFrac.X, float64(n))
		peakFrac.Y = append(peakFrac.Y, peaks[i].frac)
	}
	fig.Series = []Series{peakL, peakFrac}
	return fig, nil
}

// AblationInference plots fixed F(m) and variable U(1, 2m−1) strategies
// versus the mean path length m under the three adversary inference modes
// (DESIGN.md §2's inference axis). Under the standard passive adversary
// the two strategies are close; under hop-count timing the fixed strategy
// collapses to the full-position oracle while the variable strategy keeps
// its sender-side uncertainty — the strongest form of the paper's
// "variable beats fixed" conclusion.
func AblationInference() (Figure, error) {
	fig := Figure{
		Name:   "ablation-inference",
		Title:  "Adversary inference strength: fixed vs variable lengths (C = 1)",
		XLabel: "mean path length m",
	}
	modes := []struct {
		label string
		mode  events.InferenceMode
	}{
		{"standard", events.InferenceStandard},
		{"hop-count", events.InferenceHopCount},
		{"full-position", events.InferenceFullPosition},
	}
	for _, m := range modes {
		e, err := sharedEngine(PaperN, PaperC, m.mode)
		if err != nil {
			return Figure{}, err
		}
		fixed, err := seriesOver("F(m) "+m.label, intRange(1, 49, 2),
			func(mean int) (float64, error) { return fixedDegree(e, mean) })
		if err != nil {
			return Figure{}, err
		}
		vari, err := seriesOver("U(1,2m-1) "+m.label, intRange(1, 49, 2),
			func(mean int) (float64, error) { return uniformDegree(e, 1, 2*mean-1) })
		if err != nil {
			return Figure{}, err
		}
		fig.Series = append(fig.Series, fixed, vari)
	}
	return fig, nil
}

// AblationLargeC regenerates the default large-C sweep: anonymity degree
// (normalized by log2 N) versus the compromised fraction c/N up to 0.5 at
// N ∈ {100, 1000} — the constant-corrupted-fraction regime of Ando et
// al.'s complexity analysis, reachable only through the counted-bucket
// engine (the Θ(3^C) enumeration capped out at C = 12).
func AblationLargeC() (Figure, error) {
	return AblationLargeCSweep([]int{100, 1000}, 0.5, 10)
}

// AblationLargeCSweep plots H*(S)/log2(N) for a U(2,20) strategy at each
// system size in ns, at points+1 evenly spaced compromised fractions from
// 0 to maxFrac. Every point is an exact bucketed-engine evaluation.
func AblationLargeCSweep(ns []int, maxFrac float64, points int) (Figure, error) {
	if len(ns) == 0 || points < 1 || maxFrac <= 0 || maxFrac > 1 {
		return Figure{}, fmt.Errorf("figures: large-C sweep needs sizes, frac in (0,1], points ≥ 1; have sizes=%v frac=%v points=%d",
			ns, maxFrac, points)
	}
	fig := Figure{
		Name:   "ablation-largec",
		Title:  "Anonymity degree vs. compromised fraction (bucketed exact engine, U(2,20))",
		XLabel: "c/N",
	}
	for _, n := range ns {
		if n < 22 {
			return Figure{}, fmt.Errorf("figures: large-C sweep needs N ≥ 22 for U(2,20), have %d", n)
		}
		u, err := dist.NewUniform(2, 20)
		if err != nil {
			return Figure{}, err
		}
		norm := math.Log2(float64(n))
		s := Series{Label: fmt.Sprintf("N=%d (H*/log2 N)", n)}
		// One exact evaluation per fraction; the points of a curve fan out
		// over the shared pool like every other series in this package.
		fracs := make([]float64, points+1)
		cs := make([]int, points+1)
		for i := range fracs {
			fracs[i] = maxFrac * float64(i) / float64(points)
			cs[i] = int(math.Round(fracs[i] * float64(n)))
		}
		ys, err := pool.MapErr(len(cs), func(i int) (float64, error) {
			e, err := sharedEngine(n, cs[i], events.InferenceStandard)
			if err != nil {
				return 0, err
			}
			h, err := e.AnonymityDegree(u)
			if err != nil {
				return 0, err
			}
			return h / norm, nil
		})
		if err != nil {
			return Figure{}, err
		}
		s.X = fracs
		s.Y = ys
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// AblationCrowdsPf plots Theorem 2 (geometric lengths) against the
// forwarding probability, in both the truncated-summation and loop-free
// closed forms.
func AblationCrowdsPf() (Figure, error) {
	fig := Figure{
		Name:   "ablation-crowds",
		Title:  "Coin-flip strategies: anonymity vs. forwarding probability",
		XLabel: "pf",
	}
	sum := Series{Label: "Geom (truncated, exact)"}
	closed := Series{Label: "Geom (closed form)"}
	for pf := 0.0; pf <= 0.951; pf += 0.05 {
		hs, err := theory.GeometricC1(PaperN, pf, 1, PaperN-1)
		if err != nil {
			return Figure{}, err
		}
		hc, err := theory.GeometricClosedFormC1(PaperN, pf)
		if err != nil {
			return Figure{}, err
		}
		sum.X = append(sum.X, pf)
		sum.Y = append(sum.Y, hs)
		closed.X = append(closed.X, pf)
		closed.Y = append(closed.Y, hc)
	}
	fig.Series = []Series{sum, closed}
	return fig, nil
}
