// Package figures regenerates every figure of the evaluation section (§6)
// of Guan et al. (ICDCS 2002). Each generator returns labeled data series
// (and can render them as TSV) with the paper's exact parameters:
// N = 100 nodes, C = 1 compromised node. The benchmark harness in the
// repository root and the anonbench command both drive these generators;
// EXPERIMENTS.md records the paper-vs-measured comparison for each.
package figures

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"anonmix/internal/dist"
	"anonmix/internal/events"
	"anonmix/internal/optimize"
	"anonmix/internal/pool"
	"anonmix/internal/scenario"
)

// Errors returned by generators.
var (
	// ErrUnknownFigure reports an unrecognized figure name.
	ErrUnknownFigure = errors.New("figures: unknown figure")
)

// PaperN and PaperC are the system parameters used throughout §6.
const (
	PaperN = 100
	PaperC = 1
)

// Series is one labeled curve: Y[i] = H*(S) at X[i].
type Series struct {
	// Label is the curve's legend entry, in the paper's notation.
	Label string
	// X holds the abscissa values (path length or L parameter).
	X []float64
	// Y holds the anonymity degrees.
	Y []float64
}

// Figure is a regenerated figure: a set of curves plus axis metadata.
type Figure struct {
	// Name is the paper's figure identifier, e.g. "3a".
	Name string
	// Title describes the experiment.
	Title string
	// XLabel names the abscissa.
	XLabel string
	// Series holds the curves.
	Series []Series
}

// WriteTSV renders the figure as a tab-separated table with one X column
// and one column per series (empty cells where a series has no sample).
func (f Figure) WriteTSV(w io.Writer) error {
	cols := make([]map[float64]float64, len(f.Series))
	xsSet := make(map[float64]bool)
	for i, s := range f.Series {
		cols[i] = make(map[float64]float64, len(s.X))
		for j, x := range s.X {
			cols[i][x] = s.Y[j]
			xsSet[x] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	var b strings.Builder
	b.WriteString(f.XLabel)
	for _, s := range f.Series {
		b.WriteByte('\t')
		b.WriteString(s.Label)
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%g", x)
		for i := range f.Series {
			b.WriteByte('\t')
			if y, ok := cols[i][x]; ok {
				fmt.Fprintf(&b, "%.6f", y)
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Peak returns the (x, y) of the maximum of the named series.
func (f Figure) Peak(label string) (x, y float64, err error) {
	for _, s := range f.Series {
		if s.Label != label {
			continue
		}
		best := math.Inf(-1)
		var arg float64
		for i, v := range s.Y {
			if v > best {
				best, arg = v, s.X[i]
			}
		}
		return arg, best, nil
	}
	return 0, 0, fmt.Errorf("%w: series %q", ErrUnknownFigure, label)
}

// sharedEngine returns the process-wide engine for the configuration from
// the scenario layer's cache. Engines are safe for concurrent use and
// memoize their per-class posteriors, so sharing them is what turns a
// repeated figure build (benchmark iterations, anonbench sweeps over many
// figures with common configurations) into cache hits — and the cache now
// being scenario's, those hits are shared with every CLI and the library
// facade too.
func sharedEngine(n, c int, mode events.InferenceMode) (*events.Engine, error) {
	return scenario.Engine(n, c, events.WithInference(mode))
}

// engine builds the paper-configuration engine.
func engine() (*events.Engine, error) {
	return sharedEngine(PaperN, PaperC, events.InferenceStandard)
}

// seriesOver evaluates h at every x in xs on the shared worker pool and
// assembles the labeled curve. Each point is an independent posterior
// computation, so the parallel output is bit-identical to a serial sweep.
func seriesOver(label string, xs []int, h func(x int) (float64, error)) (Series, error) {
	ys, err := pool.MapErr(len(xs), func(i int) (float64, error) { return h(xs[i]) })
	if err != nil {
		return Series{}, err
	}
	s := Series{Label: label, X: make([]float64, len(xs)), Y: ys}
	for i, x := range xs {
		s.X[i] = float64(x)
	}
	return s, nil
}

// intRange returns lo, lo+step, ..., capped at hi (inclusive).
func intRange(lo, hi, step int) []int {
	var xs []int
	for x := lo; x <= hi; x += step {
		xs = append(xs, x)
	}
	return xs
}

// fixedDegree evaluates H*(F(l)) on the given engine.
func fixedDegree(e *events.Engine, l int) (float64, error) {
	f, err := dist.NewFixed(l)
	if err != nil {
		return 0, err
	}
	return e.AnonymityDegree(f)
}

// uniformDegree evaluates H*(U(a,b)) on the given engine.
func uniformDegree(e *events.Engine, a, b int) (float64, error) {
	u, err := dist.NewUniform(a, b)
	if err != nil {
		return 0, err
	}
	return e.AnonymityDegree(u)
}

// Fig3a regenerates Figure 3(a): H*(S) versus fixed path length l for
// l = 1..N−1 (the paper plots to 100; simple paths cap at N−1 = 99).
func Fig3a() (Figure, error) {
	e, err := engine()
	if err != nil {
		return Figure{}, err
	}
	s, err := seriesOver("F(l)", intRange(1, PaperN-1, 1), func(l int) (float64, error) {
		return fixedDegree(e, l)
	})
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		Name:   "3a",
		Title:  "Anonymity degree vs. fixed path length (long path effect)",
		XLabel: "path length l",
		Series: []Series{s},
	}, nil
}

// Fig3b regenerates Figure 3(b): the short-path zoom, l = 0..4.
func Fig3b() (Figure, error) {
	e, err := engine()
	if err != nil {
		return Figure{}, err
	}
	s, err := seriesOver("F(l)", intRange(0, 4, 1), func(l int) (float64, error) {
		return fixedDegree(e, l)
	})
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		Name:   "3b",
		Title:  "Anonymity degree vs. short fixed path lengths (short path effect)",
		XLabel: "path length l",
		Series: []Series{s},
	}, nil
}

// uniformFamily builds one H* vs L curve for U(a, a+L), L = 0..maxL.
func uniformFamily(e *events.Engine, a, maxL, step int) (Series, error) {
	var xs []int
	for l := 0; l <= maxL; l += step {
		if a+l > PaperN-1 {
			break
		}
		xs = append(xs, l)
	}
	return seriesOver(fmt.Sprintf("U(%d,%d+L)", a, a), xs, func(l int) (float64, error) {
		return uniformDegree(e, a, a+l)
	})
}

// fig4 regenerates one panel of Figure 4: anonymity degree versus the
// spread L of U(a, a+L) for several lower bounds a (same variance axis,
// different expectations).
func fig4(name string, lowers []int, maxL int) (Figure, error) {
	e, err := engine()
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{
		Name:   name,
		Title:  "Anonymity degree vs. expectation of path length (same variance)",
		XLabel: "L",
	}
	for _, a := range lowers {
		s, err := uniformFamily(e, a, maxL, 2)
		if err != nil {
			return Figure{}, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig4a regenerates Figure 4(a): small lower bounds a ∈ {4, 6, 10}.
func Fig4a() (Figure, error) { return fig4("4a", []int{4, 6, 10}, 89) }

// Fig4b regenerates Figure 4(b): intermediate lower bounds a ∈ {25, 40}.
func Fig4b() (Figure, error) { return fig4("4b", []int{25, 40}, 59) }

// Fig4c regenerates Figure 4(c): large lower bounds a ∈ {51, 60, 70}
// (the long-path-effect regime where more spread hurts).
func Fig4c() (Figure, error) { return fig4("4c", []int{51, 60, 70}, 48) }

// Fig4d regenerates Figure 4(d): the short-path-effect regime
// a ∈ {0, 1, 6}.
func Fig4d() (Figure, error) { return fig4("4d", []int{0, 1, 6}, 93) }

// fig5 regenerates one panel of Figure 5: fixed F(L) against uniforms
// U(a, 2L−a) sharing the same mean L (same expectation, varying variance).
func fig5(name string, lowers []int, maxL int) (Figure, error) {
	e, err := engine()
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{
		Name:   name,
		Title:  "Anonymity degree vs. variance of path length (same expectation)",
		XLabel: "L",
	}
	fs, err := seriesOver("F(L)", intRange(1, maxL, 1), func(l int) (float64, error) {
		return fixedDegree(e, l)
	})
	if err != nil {
		return Figure{}, err
	}
	fig.Series = append(fig.Series, fs)
	for _, a := range lowers {
		var xs []int
		for l := a; l <= maxL; l++ {
			if 2*l-a > PaperN-1 {
				break
			}
			xs = append(xs, l)
		}
		s, err := seriesOver(fmt.Sprintf("U(%d,2L-%d)", a, a), xs, func(l int) (float64, error) {
			return uniformDegree(e, a, 2*l-a)
		})
		if err != nil {
			return Figure{}, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig5a regenerates Figure 5(a): a ∈ {4, 6, 10} (curves overlay F(L) —
// Theorem 3's mean-only dependence).
func Fig5a() (Figure, error) { return fig5("5a", []int{4, 6, 10}, 50) }

// Fig5b regenerates Figure 5(b): a ∈ {25, 40}.
func Fig5b() (Figure, error) { return fig5("5b", []int{25, 40}, 70) }

// Fig5c regenerates Figure 5(c): a ∈ {51, 70}.
func Fig5c() (Figure, error) { return fig5("5c", []int{51, 70}, 85) }

// Fig5d regenerates Figure 5(d): a ∈ {1, 2, 6} — the regime of
// inequality (18) where variance helps and variable-length beats fixed.
func Fig5d() (Figure, error) { return fig5("5d", []int{1, 2, 6}, 50) }

// Fig6 regenerates Figure 6: for each target mean L, the fixed strategy
// F(L), the uniform U(2, 2L−2), the best mean-constrained uniform
// (Formula 19), and the general optimal distribution from the simplex
// solver (Formula 15).
func Fig6(maxL int) (Figure, error) {
	e, err := engine()
	if err != nil {
		return Figure{}, err
	}
	if maxL <= 2 || maxL > (PaperN-1)/2 {
		return Figure{}, fmt.Errorf("figures: Fig6 maxL %d outside (2, %d]", maxL, (PaperN-1)/2)
	}
	fig := Figure{
		Name:   "6",
		Title:  "Anonymity degree of the optimal path length distribution",
		XLabel: "L",
	}
	// Each mean L is one independent column of the figure: the fixed and
	// uniform baselines, the parametric best uniform, and a full simplex
	// solve. Columns fan out over the worker pool; the solver's restarts
	// fan out beneath them when slots are free.
	type column struct{ hf, hu, hb, hopt float64 }
	ls := intRange(2, maxL, 1)
	cols, err := pool.MapErr(len(ls), func(i int) (column, error) {
		l := ls[i]
		var col column
		var err error
		if col.hf, err = fixedDegree(e, l); err != nil {
			return column{}, err
		}
		if col.hu, err = uniformDegree(e, 2, 2*l-2); err != nil {
			return column{}, err
		}
		if _, col.hb, err = optimize.BestUniform(e, l, 0, PaperN-1); err != nil {
			return column{}, err
		}
		res, err := optimize.Maximize(optimize.Problem{
			Engine: e, Lo: 0, Hi: PaperN - 1, Mean: float64(l),
		}, optimize.WithMaxIterations(200), optimize.WithRestarts(3))
		if err != nil {
			return column{}, err
		}
		col.hopt = res.H
		return col, nil
	})
	if err != nil {
		return Figure{}, err
	}
	fixed := Series{Label: "F(L)"}
	u2 := Series{Label: "U(2,2L-2)"}
	bestU := Series{Label: "BestUniform(L)"}
	opt := Series{Label: "Optimization"}
	for i, l := range ls {
		x := float64(l)
		fixed.X = append(fixed.X, x)
		fixed.Y = append(fixed.Y, cols[i].hf)
		u2.X = append(u2.X, x)
		u2.Y = append(u2.Y, cols[i].hu)
		bestU.X = append(bestU.X, x)
		bestU.Y = append(bestU.Y, cols[i].hb)
		opt.X = append(opt.X, x)
		opt.Y = append(opt.Y, cols[i].hopt)
	}
	fig.Series = []Series{fixed, u2, bestU, opt}
	return fig, nil
}

// All regenerates every figure (Fig6 with the standard range).
func All() ([]Figure, error) {
	gens := []func() (Figure, error){
		Fig3a, Fig3b, Fig4a, Fig4b, Fig4c, Fig4d,
		Fig5a, Fig5b, Fig5c, Fig5d,
		func() (Figure, error) { return Fig6(25) },
	}
	out := make([]Figure, 0, len(gens))
	for _, g := range gens {
		f, err := g()
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// ByName regenerates one figure by its paper identifier
// ("3a", "3b", "4a".."4d", "5a".."5d", "6").
func ByName(name string) (Figure, error) {
	switch name {
	case "3a":
		return Fig3a()
	case "3b":
		return Fig3b()
	case "4a":
		return Fig4a()
	case "4b":
		return Fig4b()
	case "4c":
		return Fig4c()
	case "4d":
		return Fig4d()
	case "5a":
		return Fig5a()
	case "5b":
		return Fig5b()
	case "5c":
		return Fig5c()
	case "5d":
		return Fig5d()
	case "6":
		return Fig6(25)
	case "ablation-c":
		return AblationCSweep()
	case "ablation-n":
		return AblationNSweep()
	case "ablation-inference":
		return AblationInference()
	case "ablation-crowds":
		return AblationCrowdsPf()
	case "ablation-largec":
		return AblationLargeC()
	case "ablation-backends":
		return AblationBackends()
	case "degradation-rounds":
		return DegradationRounds()
	case "churn-sweep":
		return Churn()
	case "reliability-sweep":
		return Reliability()
	case "epoch-optimizer":
		return EpochOptimizer()
	default:
		return Figure{}, fmt.Errorf("%w: %q", ErrUnknownFigure, name)
	}
}

// Names lists the available figure identifiers: the paper's figures in
// paper order, then this repository's ablation extensions.
func Names() []string {
	return []string{
		"3a", "3b", "4a", "4b", "4c", "4d", "5a", "5b", "5c", "5d", "6",
		"ablation-c", "ablation-n", "ablation-inference", "ablation-crowds",
		"ablation-largec", "ablation-backends", "degradation-rounds",
		"churn-sweep", "epoch-optimizer", "reliability-sweep",
	}
}
