package figures_test

import (
	"strings"
	"testing"

	"anonmix/internal/figures"
)

// TestReliabilitySweep: the reliability figure carries three curves per
// spec × policy, the delivery curves order as the policies demand
// (reroute ≥ retransmit ≥ none under loss), and the retry-degraded curve
// sits at or below the lossless one with the gap widening in the loss
// rate.
func TestReliabilitySweep(t *testing.T) {
	losses := []float64{0, 0.05, 0.2}
	fig, err := figures.ReliabilitySweep(14, 3, 1500, 1, losses, []string{"uniform:1,4"})
	if err != nil {
		t.Fatal(err)
	}
	if fig.Name != "reliability-sweep" {
		t.Errorf("name = %q", fig.Name)
	}
	if len(fig.Series) != 9 {
		t.Fatalf("series = %d, want 9 (3 policies × H, Hdeg, delivery)", len(fig.Series))
	}
	byLabel := map[string][]float64{}
	for _, s := range fig.Series {
		if len(s.Y) != len(losses) {
			t.Errorf("series %q has %d points, want %d", s.Label, len(s.Y), len(losses))
		}
		byLabel[s.Label] = s.Y
	}
	last := len(losses) - 1

	// Delivery ordering at the highest loss rate: retries recover what
	// dropping loses.
	dNone := byLabel["uniform:1,4/none/delivery"]
	dRetr := byLabel["uniform:1,4/retransmit/delivery"]
	dRoute := byLabel["uniform:1,4/reroute/delivery"]
	if dNone == nil || dRetr == nil || dRoute == nil {
		t.Fatalf("labels = %v", byLabel)
	}
	if dNone[0] != 1 || dRetr[0] != 1 || dRoute[0] != 1 {
		t.Errorf("lossless delivery not 1: %v %v %v", dNone[0], dRetr[0], dRoute[0])
	}
	if dNone[last] >= dRetr[last]-0.01 {
		t.Errorf("delivery at q=0.2: none %v not below retransmit %v", dNone[last], dRetr[last])
	}
	if dRoute[last] < 0.95 {
		t.Errorf("reroute delivery at q=0.2 = %v, want ≥ 0.95", dRoute[last])
	}

	// Retry-anonymity cost: Hdeg ≤ H, gap growing in q, for both retry
	// policies.
	for _, pol := range []string{"retransmit", "reroute"} {
		h := byLabel["uniform:1,4/"+pol+"/H"]
		hd := byLabel["uniform:1,4/"+pol+"/Hdeg"]
		prevGap := -1e-9
		for i := range losses {
			gap := h[i] - hd[i]
			if gap < -1e-9 {
				t.Errorf("%s q=%v: Hdeg %v above H %v", pol, losses[i], hd[i], h[i])
			}
			if gap < prevGap-0.02 {
				t.Errorf("%s retry-anonymity cost shrank at q=%v: %v after %v", pol, losses[i], gap, prevGap)
			}
			prevGap = gap
		}
		if final := h[last] - hd[last]; final <= 0 {
			t.Errorf("%s q=0.2: no retry-anonymity cost (H %v, Hdeg %v)", pol, h[last], hd[last])
		}
	}
}

// TestReliabilitySweepReproducible: the sweep is a pure function of its
// parameters (hash-derived loss draws, sorted retry folds).
func TestReliabilitySweepReproducible(t *testing.T) {
	gen := func() string {
		fig, err := figures.ReliabilitySweep(12, 2, 400, 7, []float64{0.1}, []string{"fixed:3"})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := fig.WriteTSV(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if a, b := gen(), gen(); a != b {
		t.Errorf("reliability sweep not reproducible:\n%s\nvs\n%s", a, b)
	}
}
