package figures_test

import (
	"errors"
	"math"
	"strings"
	"testing"

	"anonmix/internal/figures"
	"anonmix/internal/theory"
)

func TestByNameAndNames(t *testing.T) {
	for _, name := range figures.Names() {
		if name == "3a" || name == "6" || strings.HasPrefix(name, "ablation") {
			continue // exercised separately (slower / different axes)
		}
		fig, err := figures.ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fig.Name != name || len(fig.Series) == 0 {
			t.Errorf("%s: %+v", name, fig)
		}
		for _, s := range fig.Series {
			if len(s.X) != len(s.Y) || len(s.X) == 0 {
				t.Errorf("%s/%s: %d x, %d y", name, s.Label, len(s.X), len(s.Y))
			}
			for _, y := range s.Y {
				if y < 0 || y > math.Log2(figures.PaperN) {
					t.Errorf("%s/%s: H* = %v out of range", name, s.Label, y)
				}
			}
		}
	}
	if _, err := figures.ByName("nope"); !errors.Is(err, figures.ErrUnknownFigure) {
		t.Errorf("unknown figure err = %v", err)
	}
}

func TestFig3aShape(t *testing.T) {
	fig, err := figures.Fig3a()
	if err != nil {
		t.Fatal(err)
	}
	x, y, err := fig.Peak("F(l)")
	if err != nil {
		t.Fatal(err)
	}
	// Long-path effect: interior peak, decline at the right edge.
	if x <= 4 || x >= 98 {
		t.Errorf("peak at l=%v; want interior", x)
	}
	s := fig.Series[0]
	if s.Y[len(s.Y)-1] >= y {
		t.Errorf("no decline after peak: end %v, peak %v", s.Y[len(s.Y)-1], y)
	}
	// Pin the series against the closed form at a few lengths.
	for _, i := range []int{0, 9, 49, 97} {
		want, err := theory.FixedSimpleC1(figures.PaperN, int(s.X[i]))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(s.Y[i]-want) > 1e-9 {
			t.Errorf("l=%v: %v, want %v", s.X[i], s.Y[i], want)
		}
	}
}

func TestFig3bShortPathShape(t *testing.T) {
	fig, err := figures.Fig3b()
	if err != nil {
		t.Fatal(err)
	}
	y := fig.Series[0].Y
	// H(0)=0, H(1)=H(2), H(3)<H(2), H(4)>H(3) — the paper's observations.
	if y[0] != 0 {
		t.Errorf("H(0) = %v", y[0])
	}
	if math.Abs(y[1]-y[2]) > 1e-12 {
		t.Errorf("H(1) %v ≠ H(2) %v", y[1], y[2])
	}
	if !(y[3] < y[2] && y[4] > y[3]) {
		t.Errorf("short-path shape broken: %v", y)
	}
}

// TestFig5aOverlay: Theorem 3 — all a ≥ 3 uniform curves overlay F(L)
// where defined.
func TestFig5aOverlay(t *testing.T) {
	fig, err := figures.Fig5a()
	if err != nil {
		t.Fatal(err)
	}
	ref := map[float64]float64{}
	for i, x := range fig.Series[0].X { // F(L)
		ref[x] = fig.Series[0].Y[i]
	}
	for _, s := range fig.Series[1:] {
		for i, x := range s.X {
			want, ok := ref[x]
			if !ok {
				continue
			}
			if math.Abs(s.Y[i]-want) > 1e-10 {
				t.Errorf("%s at L=%v: %v vs F(L) %v (should overlay)", s.Label, x, s.Y[i], want)
			}
		}
	}
}

// TestFig5dOrdering: inequality (18) — smaller lower bounds win at equal
// means.
func TestFig5dOrdering(t *testing.T) {
	fig, err := figures.Fig5d()
	if err != nil {
		t.Fatal(err)
	}
	at := func(label string, x float64) (float64, bool) {
		for _, s := range fig.Series {
			if s.Label != label {
				continue
			}
			for i, xv := range s.X {
				if xv == x {
					return s.Y[i], true
				}
			}
		}
		return 0, false
	}
	for _, L := range []float64{10, 20, 40} {
		u1, ok1 := at("U(1,2L-1)", L)
		u2, ok2 := at("U(2,2L-2)", L)
		u6, ok6 := at("U(6,2L-6)", L)
		f, okf := at("F(L)", L)
		if !ok1 || !ok2 || !ok6 || !okf {
			t.Fatalf("missing samples at L=%v", L)
		}
		if !(u1 > u2 && u2 > u6) {
			t.Errorf("L=%v: want U(1)>U(2)>U(6): %v %v %v", L, u1, u2, u6)
		}
		if math.Abs(u6-f) > 1e-10 {
			t.Errorf("L=%v: U(6,2L-6) %v should equal F(L) %v", L, u6, f)
		}
	}
}

// TestFig6Dominance: the optimized distribution dominates every baseline
// at every mean.
func TestFig6Dominance(t *testing.T) {
	fig, err := figures.Fig6(12)
	if err != nil {
		t.Fatal(err)
	}
	series := map[string][]float64{}
	for _, s := range fig.Series {
		series[s.Label] = s.Y
	}
	opt := series["Optimization"]
	for i := range opt {
		for _, base := range []string{"F(L)", "U(2,2L-2)", "BestUniform(L)"} {
			if opt[i] < series[base][i]-1e-7 {
				t.Errorf("mean %v: optimization %v below %s %v",
					fig.Series[0].X[i], opt[i], base, series[base][i])
			}
		}
		// BestUniform dominates the specific U(2,2L−2) member by
		// construction.
		if series["BestUniform(L)"][i] < series["U(2,2L-2)"][i]-1e-10 {
			t.Errorf("best uniform below U(2,2L-2) at index %d", i)
		}
	}
	if _, err := figures.Fig6(1); err == nil {
		t.Error("Fig6(1) accepted")
	}
	if _, err := figures.Fig6(90); err == nil {
		t.Error("Fig6(90) accepted")
	}
}

func TestWriteTSV(t *testing.T) {
	fig, err := figures.Fig3b()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := fig.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // header + l = 0..4
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "path length l\tF(l)") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0\t0.000000") {
		t.Errorf("first row = %q", lines[1])
	}
}

func TestAblationCSweep(t *testing.T) {
	fig, err := figures.AblationCSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("%d series", len(fig.Series))
	}
	// At every length, more compromised nodes means less anonymity.
	for i := range fig.Series[0].X {
		for j := 1; j < len(fig.Series); j++ {
			if fig.Series[j].Y[i] > fig.Series[j-1].Y[i]+1e-12 {
				t.Errorf("l=%v: %s (%v) above %s (%v)", fig.Series[0].X[i],
					fig.Series[j].Label, fig.Series[j].Y[i],
					fig.Series[j-1].Label, fig.Series[j-1].Y[i])
			}
		}
	}
}

func TestAblationNSweep(t *testing.T) {
	fig, err := figures.AblationNSweep()
	if err != nil {
		t.Fatal(err)
	}
	var peakL, peakFrac *figures.Series
	for i := range fig.Series {
		switch fig.Series[i].Label {
		case "peak location l*":
			peakL = &fig.Series[i]
		case "peak H*/log2(N)":
			peakFrac = &fig.Series[i]
		}
	}
	if peakL == nil || peakFrac == nil {
		t.Fatal("missing series")
	}
	// Peak location grows with N; normalized peak stays in (0.9, 1).
	for i := 1; i < len(peakL.Y); i++ {
		if peakL.Y[i] < peakL.Y[i-1] {
			t.Errorf("peak location not nondecreasing: %v", peakL.Y)
		}
	}
	for i, f := range peakFrac.Y {
		if f <= 0.9 || f >= 1 {
			t.Errorf("N=%v: normalized peak %v outside (0.9, 1)", peakFrac.X[i], f)
		}
	}
	// The N = 100 entry must agree with the main Figure 3(a) peak.
	for i, n := range peakL.X {
		if n == 100 && peakL.Y[i] != 51 {
			t.Errorf("N=100 peak at %v, want 51", peakL.Y[i])
		}
	}
}

func TestAblationInference(t *testing.T) {
	fig, err := figures.AblationInference()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 6 {
		t.Fatalf("%d series", len(fig.Series))
	}
	at := func(label string) []float64 {
		for _, s := range fig.Series {
			if s.Label == label {
				return s.Y
			}
		}
		t.Fatalf("missing series %q", label)
		return nil
	}
	fStd, fHop := at("F(m) standard"), at("F(m) hop-count")
	fPos := at("F(m) full-position")
	uStd, uHop := at("U(1,2m-1) standard"), at("U(1,2m-1) hop-count")
	uPos := at("U(1,2m-1) full-position")
	for i := range fStd {
		// Stronger inference is pointwise no better for the defender.
		if fHop[i] > fStd[i]+1e-12 || fPos[i] > fHop[i]+1e-12 {
			t.Errorf("fixed: inference ordering broken at index %d", i)
		}
		if uHop[i] > uStd[i]+1e-12 || uPos[i] > uHop[i]+1e-12 {
			t.Errorf("variable: inference ordering broken at index %d", i)
		}
		// Fixed lengths collapse to the position oracle under hop count.
		if math.Abs(fHop[i]-fPos[i]) > 1e-12 {
			t.Errorf("fixed hop-count should equal full-position at index %d", i)
		}
	}
	// Variable lengths keep a material advantage under hop-count timing
	// at moderate means (m = 11 is index 5).
	if !(uHop[5] > fHop[5]+0.01) {
		t.Errorf("hop-count at m=11: U %v should clearly beat F %v", uHop[5], fHop[5])
	}
}

func TestAblationCrowdsPf(t *testing.T) {
	fig, err := figures.AblationCrowdsPf()
	if err != nil {
		t.Fatal(err)
	}
	sum, closed := fig.Series[0], fig.Series[1]
	for i := range sum.X {
		// The loop-free form ignores the l ≤ N−1 truncation; its error
		// scales as pf^(N−1).
		tol := 1e-9 + 10*math.Pow(sum.X[i], float64(figures.PaperN-1))
		if math.Abs(sum.Y[i]-closed.Y[i]) > tol {
			t.Errorf("pf=%v: truncated %v vs closed %v (tol %v)", sum.X[i], sum.Y[i], closed.Y[i], tol)
		}
	}
	if !(sum.Y[len(sum.Y)-1] > sum.Y[0]) {
		t.Error("higher pf should raise anonymity in this regime")
	}
}

func TestPeakUnknownSeries(t *testing.T) {
	fig, err := figures.Fig3b()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fig.Peak("nope"); !errors.Is(err, figures.ErrUnknownFigure) {
		t.Errorf("err = %v", err)
	}
}
