package figures

// The reliability-sweep figure: the anonymity/reliability trade-off of
// the fault-injection layer. For each strategy × reliability policy the
// sweep runs the testbed kernel across a range of link-loss rates and
// plots three curves — H over delivered messages, the retry-degraded
// H (every retransmission or failed attempt a compromised node observes
// is folded into the posterior as a fresh observation), and the delivery
// rate. The spread between the H and Hdeg curves is the retry-anonymity
// cost; comparing policies at a fixed loss rate exposes the
// reroute-vs-retransmit gap — rerouting buys delivery by burning fresh
// paths, and every burned path is another trace prefix for the adversary,
// while retransmission re-crosses one link and leaks only the prefix the
// retrying node already sat on.

import (
	"fmt"

	"anonmix/internal/faults"
	"anonmix/internal/scenario"
)

// DefaultReliabilityLosses are the link-loss rates of the sweep.
func DefaultReliabilityLosses() []float64 {
	return []float64{0, 0.01, 0.05, 0.20}
}

// DefaultReliabilitySpecs are the strategies of the reliability sweep.
func DefaultReliabilitySpecs() []string {
	return []string{"freedom", "uniform:1,9"}
}

// reliabilityPolicies are the three delivery policies, in severity order.
var reliabilityPolicies = []faults.Policy{
	faults.PolicyNone, faults.PolicyRetransmit, faults.PolicyReroute,
}

// ReliabilitySweep regenerates the reliability figure: H, retry-degraded
// H, and delivery rate vs link-loss rate for every spec × policy,
// measured on the testbed kernel with messages injected per point. The
// output is a pure function of (n, c, messages, seed, losses, specs).
func ReliabilitySweep(n, c, messages int, seed int64, losses []float64, specs []string) (Figure, error) {
	if len(losses) == 0 {
		losses = DefaultReliabilityLosses()
	}
	if len(specs) == 0 {
		specs = DefaultReliabilitySpecs()
	}
	fig := Figure{
		Name:   "reliability-sweep",
		Title:  fmt.Sprintf("Anonymity and delivery vs link loss under fault injection (%d messages)", messages),
		XLabel: "link loss rate q",
	}
	for _, spec := range specs {
		for _, pol := range reliabilityPolicies {
			h := Series{Label: fmt.Sprintf("%s/%s/H", spec, pol)}
			hDeg := Series{Label: fmt.Sprintf("%s/%s/Hdeg", spec, pol)}
			del := Series{Label: fmt.Sprintf("%s/%s/delivery", spec, pol)}
			for _, q := range losses {
				res, err := scenario.Run(scenario.Config{
					N:            n,
					Backend:      scenario.BackendTestbed,
					StrategySpec: spec,
					Adversary:    scenario.Adversary{Count: c},
					Faults:       &faults.Plan{LinkLoss: q},
					Reliability:  faults.Reliability{Policy: pol},
					Workload: scenario.Workload{
						Messages: messages,
						Seed:     seed,
					},
				})
				if err != nil {
					return Figure{}, fmt.Errorf("figures: reliability %s/%s q=%v: %w", spec, pol, q, err)
				}
				h.X = append(h.X, q)
				h.Y = append(h.Y, res.H)
				hDeg.X = append(hDeg.X, q)
				hDeg.Y = append(hDeg.Y, res.HDegraded)
				del.X = append(del.X, q)
				del.Y = append(del.Y, res.DeliveryRate)
			}
			fig.Series = append(fig.Series, h, hDeg, del)
		}
	}
	return fig, nil
}

// Reliability regenerates the reliability figure with the default
// configuration: a 30-node system with 3 compromised nodes, sized so the
// committed reference output reproduces on any machine.
func Reliability() (Figure, error) {
	return ReliabilitySweep(30, 3, 4000, 1, nil, nil)
}
