package events_test

// Randomized cross-validation: the engine must match the brute-force
// oracle for arbitrary path-length mass functions, not just the structured
// families used in the main oracle test. Distributions are generated from
// a seeded source so failures reproduce.

import (
	"fmt"
	"math"
	"testing"

	"anonmix/internal/dist"
	"anonmix/internal/events"
	"anonmix/internal/stats"
)

// randomPMF draws a random mass function on [0, hi] with occasional zero
// atoms and spiky shapes.
func randomPMF(rng interface{ Float64() float64 }, hi int) (dist.PMF, error) {
	mass := make([]float64, hi+1)
	var sum float64
	for i := range mass {
		v := rng.Float64()
		switch {
		case v < 0.25:
			mass[i] = 0 // sparse support
		case v < 0.35:
			mass[i] = v * 10 // occasional spike
		default:
			mass[i] = v
		}
		sum += mass[i]
	}
	if sum == 0 {
		mass[0] = 1
		sum = 1
	}
	for i := range mass {
		mass[i] /= sum
	}
	return dist.NewPMF(0, mass)
}

func TestEngineMatchesBruteForceRandomDists(t *testing.T) {
	cfgs := []oracleConfig{
		{n: 7, c: 1, receiverCompromised: true},
		{n: 7, c: 2, receiverCompromised: true},
		{n: 8, c: 3, receiverCompromised: true},
		{n: 7, c: 2, receiverCompromised: false},
		{n: 7, c: 2, receiverCompromised: true, positionOracle: true},
	}
	rng := stats.NewRand(20240610)
	for _, cfg := range cfgs {
		cfg := cfg
		for trial := 0; trial < 6; trial++ {
			d, err := randomPMF(rng, 4)
			if err != nil {
				t.Fatal(err)
			}
			name := fmt.Sprintf("n=%d c=%d recv=%v pos=%v trial=%d",
				cfg.n, cfg.c, cfg.receiverCompromised, cfg.positionOracle, trial)
			t.Run(name, func(t *testing.T) {
				e := engineFor(t, cfg)
				got, err := e.AnonymityDegree(d)
				if err != nil {
					t.Fatal(err)
				}
				want := bruteForceH(t, cfg, d)
				if math.Abs(got-want) > 1e-9 {
					t.Errorf("dist %s: engine %.12f, oracle %.12f", d, got, want)
				}
			})
		}
	}
}

// TestWeightsConsistentWithAnonymityDegree: the linear-fractional weight
// decomposition exposed for the optimizer must reproduce AnonymityDegree
// exactly for random distributions.
func TestWeightsConsistentWithAnonymityDegree(t *testing.T) {
	rng := stats.NewRand(77)
	for _, c := range []int{1, 2, 4} {
		e, err := events.New(30, c)
		if err != nil {
			t.Fatal(err)
		}
		weights, err := e.Weights(0, 20)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 10; trial++ {
			d, err := randomPMF(rng, 20)
			if err != nil {
				t.Fatal(err)
			}
			want, err := e.AnonymityDegree(d)
			if err != nil {
				t.Fatal(err)
			}
			var h float64
			for _, cw := range weights {
				var sp, sp0 float64
				for l := 0; l <= 20; l++ {
					p := d.PMF(l)
					sp += cw.W[l] * p
					sp0 += cw.W0[l] * p
				}
				if sp <= 0 {
					continue
				}
				alpha := sp0 / sp
				var f float64
				switch {
				case cw.UniformOverAll:
					f = math.Log2(float64(cw.Rest))
				case cw.Rest <= 0:
					f = 0
				case cw.FullPosition:
					f = (1 - alpha) * math.Log2(float64(cw.Rest))
				case alpha <= 0:
					f = math.Log2(float64(cw.Rest))
				case alpha >= 1:
					f = 0
				default:
					q := 1 - alpha
					f = -alpha*math.Log2(alpha) - q*math.Log2(q/float64(cw.Rest))
				}
				h += cw.Count * sp * f
			}
			h *= float64(30-c) / 30
			if math.Abs(h-want) > 1e-9 {
				t.Errorf("c=%d trial %d: weights-based %v, engine %v", c, trial, h, want)
			}
		}
	}
}

func TestWeightsValidation(t *testing.T) {
	e, err := events.New(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Weights(-1, 5); err == nil {
		t.Error("negative lo accepted")
	}
	if _, err := e.Weights(3, 2); err == nil {
		t.Error("hi < lo accepted")
	}
	if _, err := e.Weights(0, 10); err == nil {
		t.Error("hi = N accepted")
	}
}
