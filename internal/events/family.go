package events

// The delta evaluation path for drifting (N, C): engine families.
//
// A timeline of epochs asks for engines at (N±1, C±1) neighbors of each
// other, and the from-scratch bucket aggregation recomputes, per epoch, a
// table whose dominant cost has nothing to do with N or C. The per-bucket
// Bayes mixture factors exactly:
//
//	count·P_bucket = Σ_l [count·p(l)·A(l−base, free)] · W(l, k)
//
// where the bracketed factor — multiplicity, length mass, stars-and-bars
// arrangement count — depends only on the distribution and the bucket
// shape, and W(l, k) = FF(C,k)·FF(N−1−C, l−k)/FF(N−1, l) is the only place
// N and C enter. A family shares the bracketed vectors across every engine
// derived by Engine.Neighbor: evaluating a neighbor costs one O(kMax·hi)
// W-table plus a dot product per shape group, instead of rebuilding every
// bucket's length loop.
//
// Shape groups compress further than buckets: every non-empty bucket
// satisfies nObs = 1 + base − k, so (k, base, free) alone determines the
// posterior (alpha, Rest, H) and buckets sharing that triple merge into one
// group with summed multiplicity — typically ~3x fewer entropy evaluations
// than buckets. Groups whose folded multiplicity would overflow the linear
// path (path lengths beyond ~1000) stay unmerged and are evaluated by the
// log-space bucketStatsFor fallback.
//
// The family path is a reordering of the same floating-point products the
// fresh path computes — not an iterative update — so derived engines agree
// with fresh ones to a few ulps regardless of how long a Neighbor chain
// produced them (pinned to ≤ 1e-12 by the property tests).

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"anonmix/internal/dist"
	"anonmix/internal/entropy"
)

// family is the shared state of a set of Neighbor-related engines: one
// shape-group table per length distribution. Tables depend on the receiver
// flag (it changes the tail-flag alphabet) but not on N, C, or the
// inference mode, so one family serves every (N, C) the walk visits.
type family struct {
	receiver bool

	mu     sync.RWMutex
	shapes map[string]*shapeTable // distKey → table
}

// shapeGroup is one merged equivalence class of shape buckets: every bucket
// with the same (k, base, free) — and therefore the same posterior — with
// the multiplicities summed and folded into the length vectors.
type shapeGroup struct {
	k    int // compromised intermediates
	base int // minimum producible path length
	free int // free gap variables, head gap included
	nObs int // observed uncompromised witnesses (1 + base − k; special-cased for k = 0)

	// V and V0 are indexed by l−base over [base, hi]:
	// V[l−base] = count·p(l)·A(l−base, free), V0 the g0 = 0 restriction
	// (free−1 variables). Multiplying by W(l, k) and summing yields the
	// group's total probability mass and its spike restriction.
	V, V0 []float64
}

// shapeTable holds the groups of one distribution, k-major so evaluation
// can stop at the engine's own kMax = min(C, hi).
type shapeTable struct {
	hi   int
	kMax int // groups cover k ≤ kMax; extended lazily as larger C arrives
	// groups is append-only and sorted by (k, base, free); readers hold a
	// snapshot slice header taken under the family lock.
	groups []shapeGroup
	// slow lists buckets whose folded multiplicity overflows the linear
	// vectors; they are evaluated per bucket via the log-space fallback.
	slow []Bucket
}

// ensureFamily returns the engine's family, creating and attaching one on
// first use.
func (e *Engine) ensureFamily() *family {
	if f := e.fam.Load(); f != nil {
		return f
	}
	f := &family{receiver: e.receiver, shapes: make(map[string]*shapeTable)}
	if e.fam.CompareAndSwap(nil, f) {
		return f
	}
	return e.fam.Load()
}

// Neighbor returns the engine for the (N+dn, C+dc) system with the same
// inference mode and adversary flags, sharing this engine's family so
// aggregate queries reuse the per-distribution shape tables instead of
// rebuilding them. Any (dn, dc) reaching a valid system is accepted — ±1
// steps, longer jumps, even (0, 0) — and derived engines can derive further
// neighbors, so a drifting timeline pays the table cost once. Results are
// exact: a derived engine's AnonymityDegree agrees with a fresh one to
// floating-point reordering (≤ 1e-12).
func (e *Engine) Neighbor(dn, dc int) (*Engine, error) {
	n, c := e.n+dn, e.c+dc
	if n < 2 {
		return nil, fmt.Errorf("%w: need at least 2 nodes, have %d", ErrInvalidSystem, n)
	}
	if c < 0 || c > n {
		return nil, fmt.Errorf("%w: %d compromised of %d nodes", ErrInvalidSystem, c, n)
	}
	if e.mode == InferenceHopCount && c > 1 {
		return nil, fmt.Errorf("%w: hop-count inference supports c ≤ 1, have %d", ErrTooManyClasses, c)
	}
	ne := &Engine{n: n, c: c, mode: e.mode, receiver: e.receiver, selfReport: e.selfReport}
	ne.fam.Store(e.ensureFamily())
	return ne, nil
}

// groups returns a consistent snapshot of the distribution's shape groups
// and slow buckets, building or extending the table as needed. Extension
// only appends (k-major), so snapshots taken under the read lock stay valid
// while other engines extend the same table.
func (f *family) groups(e *Engine, key string, d dist.Length, hi, kMax int) ([]shapeGroup, []Bucket) {
	f.mu.RLock()
	if t, ok := f.shapes[key]; ok && t.kMax >= kMax {
		g, s := t.groups, t.slow
		f.mu.RUnlock()
		return g, s
	}
	f.mu.RUnlock()
	f.mu.Lock()
	defer f.mu.Unlock()
	t, ok := f.shapes[key]
	if !ok {
		if len(f.shapes) >= maxMemoEntries {
			f.shapes = make(map[string]*shapeTable)
		}
		t = &shapeTable{hi: hi, kMax: -1}
		f.shapes[key] = t
	}
	if t.kMax < kMax {
		e.extendTable(t, d, kMax)
	}
	return t.groups, t.slow
}

// extendTable appends the groups for k in (t.kMax, kTo] — the same
// (k, m, j₂, tail) space as bucketSet, merged by (base, free) with counts
// summed. The emission order is deterministic (k-major, then base, then
// free), so every engine sees the same fold order regardless of which
// family member built which k range.
func (e *Engine) extendTable(t *shapeTable, d dist.Length, kTo int) {
	tails := []TailFlag{TailZero, TailOne, TailWide}
	if !e.receiver {
		tails = []TailFlag{TailZero, TailUnobserved}
	}
	type gk struct{ base, free int }
	for k := t.kMax + 1; k <= kTo; k++ {
		if k == 0 {
			// The empty bucket: its own group, with the receiver flag (not
			// the nObs = 1 + base − k rule) deciding the witness count.
			nObs := 0
			if e.receiver {
				nObs = 1
			}
			t.groups = append(t.groups, e.buildGroup(0, 0, 1, nObs, 1, d, t.hi))
			continue
		}
		byKey := make(map[gk][]Bucket)
		var order []gk
		for m := 1; m <= k && k+m-1 <= t.hi; m++ {
			for j2 := 0; j2 < m && k+m-1+j2 <= t.hi; j2++ {
				for _, tail := range tails {
					b := Bucket{K: k, Runs: m, Wide: j2, Tail: tail}
					base, free, _ := e.bucketShape(b)
					if base > t.hi {
						continue // unreachable at this support
					}
					key := gk{base, free}
					if byKey[key] == nil {
						order = append(order, key)
					}
					byKey[key] = append(byKey[key], b)
				}
			}
		}
		sort.Slice(order, func(i, j int) bool {
			if order[i].base != order[j].base {
				return order[i].base < order[j].base
			}
			return order[i].free < order[j].free
		})
		for _, key := range order {
			var count float64
			for _, b := range byKey[key] {
				count += b.Count()
			}
			// The group vectors fold the multiplicity in before the tiny
			// W(l, k) factor can tame it; demote astronomical groups to the
			// per-bucket log-space path rather than overflow.
			if math.IsInf(count*starsAndBars(t.hi-key.base, key.free), 1) {
				t.slow = append(t.slow, byKey[key]...)
				continue
			}
			t.groups = append(t.groups, e.buildGroup(k, key.base, key.free, 1+key.base-k, count, d, t.hi))
		}
	}
	t.kMax = kTo
}

// buildGroup fills one group's length vectors.
func (e *Engine) buildGroup(k, base, free, nObs int, count float64, d dist.Length, hi int) shapeGroup {
	g := shapeGroup{
		k: k, base: base, free: free, nObs: nObs,
		V:  make([]float64, hi-base+1),
		V0: make([]float64, hi-base+1),
	}
	for l := base; l <= hi; l++ {
		p := d.PMF(l)
		if p == 0 {
			continue
		}
		slack := l - base
		g.V[slack] = count * p * starsAndBars(slack, free)
		g.V0[slack] = count * p * starsAndBars(slack, free-1)
	}
	return g
}

// wTable returns W(l, k) = FF(c,k)·FF(n−1−c, l−k)/FF(n−1, l) for
// k ≤ kMax, l ≤ hi (zero where the path cannot exist), via the same
// multiplicative recurrence as statsFor. O(kMax·hi) — the only per-(N, C)
// work on the family path.
func wTable(n, c, kMax, hi int) [][]float64 {
	W := make([][]float64, kMax+1)
	for k := 0; k <= kMax; k++ {
		row := make([]float64, hi+1)
		w := 1.0
		for i := 0; i < k; i++ {
			w *= float64(c-i) / float64(n-1-i)
		}
		for l := k; l <= hi; l++ {
			if l > k {
				num := float64(n - 1 - c - (l - 1 - k))
				if num <= 0 {
					break // more uncompromised slots than uncompromised nodes
				}
				w *= num / float64(n-1-(l-1))
			}
			row[l] = w
		}
		W[k] = row
	}
	return W
}

// familyDegree computes Σ_buckets P·H (the sender-honest branch of
// AnonymityDegree, before the (N−C)/N factor) from the family's shared
// shape tables: one W-table plus one dot product and one entropy per group.
// The same bucket-accounting tripwire as the fresh path guards the result.
func (e *Engine) familyDegree(f *family, key string, d dist.Length) (float64, error) {
	_, hi := d.Support()
	if hi > e.n-1 {
		hi = e.n - 1
	}
	kMax := e.c
	if kMax > hi {
		kMax = hi
	}
	groups, slow := f.groups(e, key, d, hi, kMax)
	W := wTable(e.n, e.c, kMax, hi)
	var total, h float64
	for i := range groups {
		g := &groups[i]
		if g.k > kMax {
			break // k-major order: every later group is out of range too
		}
		row := W[g.k]
		var sumP, sumP0 float64
		for j := range g.V {
			if w := row[g.base+j]; w != 0 {
				sumP += g.V[j] * w
				sumP0 += g.V0[j] * w
			}
		}
		if sumP <= 0 {
			continue // group unreachable under this distribution
		}
		total += sumP
		alpha := sumP0 / sumP
		if alpha > 1 {
			alpha = 1 // guard against rounding
		}
		var gh float64
		switch {
		case g.k == 0 && !e.receiver:
			// No observation at all: uniform over every honest node.
			gh = entropy.Max(e.n - e.c)
		case e.mode == InferenceFullPosition && g.k > 0:
			gh = (1 - alpha) * entropy.Max(e.n-e.c-g.nObs)
		default:
			gh = entropy.SpikeAndSlab(alpha, e.n-e.c-g.nObs)
		}
		h += sumP * gh
	}
	for _, b := range slow {
		if b.K > kMax {
			continue
		}
		st := e.bucketStatsFor(b, d)
		total += st.P
		h += st.P * st.H
	}
	if math.Abs(total-1) > 1e-6 {
		return 0, fmt.Errorf("events: delta-path bucket probabilities sum to %v, want 1 (internal accounting bug)", total)
	}
	return h, nil
}
