package events

// Memoization layer for the exact engine. Every figure, optimizer restart,
// and Monte-Carlo trial funnels through ClassStats / StatsFor / Weights
// with a small set of distinct (class, distribution) inputs, so the engine
// keeps per-instance memo tables keyed by the distribution's exact mass
// fingerprint. All cached computations are pure functions of the engine
// configuration and the key, which makes cache hits bit-identical to
// recomputation and the tables safe to share across goroutines.

import (
	"encoding/binary"
	"math"
	"sync"

	"anonmix/internal/dist"
)

// maxMemoEntries bounds each memo table; beyond it the table is reset
// wholesale. The workloads in this repository cycle through a few hundred
// distributions, so eviction is a safety valve, not a steady state.
const maxMemoEntries = 1 << 14

// distKey returns an exact fingerprint of a validated distribution: the
// support bounds and the raw IEEE-754 bits of every atom. Two
// distributions with equal keys are indistinguishable to the engine, so
// memoized results are exact, not approximate.
func distKey(d dist.Length) string {
	lo, hi := d.Support()
	buf := make([]byte, 0, 16+8*(hi-lo+1))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(lo))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(hi))
	for l := lo; l <= hi; l++ {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d.PMF(l)))
	}
	return string(buf)
}

// appendClassKey appends an injective binary encoding of a valid class
// signature: run count, run lengths, gap flags, tail flag, exact tail.
// Unlike Class.String() it allocates nothing when buf has capacity, which
// keeps the StatsFor hot path allocation-free on cache hits.
func appendClassKey(buf []byte, cl Class) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(cl.Runs)))
	for _, r := range cl.Runs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r))
	}
	for _, g := range cl.Gaps {
		buf = append(buf, byte(g))
	}
	buf = append(buf, byte(cl.Tail))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(cl.ExactTail))
	return buf
}

// appendDistKey appends distKey's fingerprint without the string copy.
func appendDistKey(buf []byte, d dist.Length) []byte {
	lo, hi := d.Support()
	buf = binary.LittleEndian.AppendUint64(buf, uint64(lo))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(hi))
	for l := lo; l <= hi; l++ {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d.PMF(l)))
	}
	return buf
}

// statsKeyPool recycles the key buffers StatsFor encodes into, so the
// per-trial lookups stay off the heap.
var statsKeyPool = sync.Pool{New: func() any { return new([]byte) }}

// weightKey identifies one Weights support range.
type weightKey struct{ lo, hi int }

// engineMemo holds the per-engine caches. The zero value is ready to use.
type engineMemo struct {
	mu          sync.RWMutex
	classStats  map[string][]Stats
	bucketStats map[string][]BucketStats
	degrees     map[string]float64
	single      map[string]Stats
	weights     map[weightKey][]ClassWeights
}

func (m *engineMemo) loadClassStats(key string) ([]Stats, bool) {
	m.mu.RLock()
	s, ok := m.classStats[key]
	m.mu.RUnlock()
	return s, ok
}

func (m *engineMemo) storeClassStats(key string, s []Stats) {
	m.mu.Lock()
	if m.classStats == nil || len(m.classStats) >= maxMemoEntries {
		m.classStats = make(map[string][]Stats)
	}
	m.classStats[key] = s
	m.mu.Unlock()
}

func (m *engineMemo) loadBucketStats(key string) ([]BucketStats, bool) {
	m.mu.RLock()
	s, ok := m.bucketStats[key]
	m.mu.RUnlock()
	return s, ok
}

func (m *engineMemo) storeBucketStats(key string, s []BucketStats) {
	m.mu.Lock()
	if m.bucketStats == nil || len(m.bucketStats) >= maxMemoEntries {
		m.bucketStats = make(map[string][]BucketStats)
	}
	m.bucketStats[key] = s
	m.mu.Unlock()
}

func (m *engineMemo) loadDegree(key string) (float64, bool) {
	m.mu.RLock()
	h, ok := m.degrees[key]
	m.mu.RUnlock()
	return h, ok
}

func (m *engineMemo) storeDegree(key string, h float64) {
	m.mu.Lock()
	if m.degrees == nil || len(m.degrees) >= maxMemoEntries {
		m.degrees = make(map[string]float64)
	}
	m.degrees[key] = h
	m.mu.Unlock()
}

// loadSingle looks up a (class, distribution) binary key. The direct
// m.single[string(key)] index lets the compiler elide the string copy.
func (m *engineMemo) loadSingle(key []byte) (Stats, bool) {
	m.mu.RLock()
	st, ok := m.single[string(key)]
	m.mu.RUnlock()
	return st, ok
}

func (m *engineMemo) storeSingle(key []byte, st Stats) {
	m.mu.Lock()
	if m.single == nil || len(m.single) >= maxMemoEntries {
		m.single = make(map[string]Stats)
	}
	m.single[string(key)] = st
	m.mu.Unlock()
}

func (m *engineMemo) loadWeights(key weightKey) ([]ClassWeights, bool) {
	m.mu.RLock()
	w, ok := m.weights[key]
	m.mu.RUnlock()
	return w, ok
}

func (m *engineMemo) storeWeights(key weightKey, w []ClassWeights) {
	m.mu.Lock()
	if m.weights == nil || len(m.weights) >= maxMemoEntries {
		m.weights = make(map[weightKey][]ClassWeights)
	}
	m.weights[key] = w
	m.mu.Unlock()
}

// enumKey identifies one cached class enumeration.
type enumKey struct {
	c        int
	receiver bool
}

// enumCache shares class enumerations process-wide: the class set depends
// only on (C, receiver-compromised), and the engine treats the returned
// slice as immutable.
var enumCache sync.Map // enumKey → []Class

// enumerateShared returns the cached class set for (c, receiver),
// computing it at most once per process.
func enumerateShared(c int, receiverCompromised bool) []Class {
	key := enumKey{c, receiverCompromised}
	if v, ok := enumCache.Load(key); ok {
		return v.([]Class)
	}
	v, _ := enumCache.LoadOrStore(key, Enumerate(c, receiverCompromised))
	return v.([]Class)
}
