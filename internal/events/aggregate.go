package events

// Counted-bucket aggregation: the polynomial replacement for the Θ(3^C)
// class enumeration.
//
// Every per-class statistic the engine computes (statsFor, the Weights
// vectors) depends on a class only through its *shape* — the tuple
// (k compromised, m runs, j₂ wide junctions, tail flag). The run-length
// composition and the order of the junction flags never enter the math:
// base, free, and nObs are sums over the runs and gaps, and the length-loop
// recurrence uses only k. The class space therefore collapses into
// O(min(C, L)³) shape buckets, each carrying a closed-form multiplicity
//
//	count(k, m, j₂) = C(k−1, m−1) · C(m−1, j₂)
//
// (compositions of k into m ordered runs, times choices of which of the
// m−1 junctions are wide). Summing count·P over buckets is exactly the sum
// of P over concrete classes, so AnonymityDegree and the optimizer's
// weight decomposition become exact in O(min(C, L)³·L) for any C ≤ N−1 —
// the regime of constant corrupted fractions that the exponential
// enumeration could never reach.

import (
	"fmt"
	"math"

	"anonmix/internal/combin"
	"anonmix/internal/dist"
	"anonmix/internal/entropy"
	"anonmix/internal/pool"
)

// Bucket is one equivalence class of observation-class shapes: every
// concrete Class with K compromised intermediates arranged in Runs maximal
// runs, Wide of whose junctions have a gap of at least two nodes, and the
// given tail flag. The zero value is the empty bucket (no compromised node
// on the path).
type Bucket struct {
	// K is the number of compromised intermediates on the path.
	K int
	// Runs is the number of maximal compromised runs (0 only for the
	// empty bucket).
	Runs int
	// Wide is the number of junctions with a gap of ≥ 2 nodes; the other
	// Runs−1−Wide junctions are one-node gaps.
	Wide int
	// Tail is the tail flag shared by every class in the bucket. Unused
	// (zero) for the empty bucket.
	Tail TailFlag
}

// Empty reports whether the bucket is the no-compromised-observation one.
func (b Bucket) Empty() bool { return b.Runs == 0 }

// Count returns the number of concrete observation classes in the bucket,
// C(K−1, Runs−1)·C(Runs−1, Wide), as a float64. The product can overflow
// to +Inf for buckets with K in the several hundreds (path lengths no real
// configuration reaches); callers detect that and fall back to LogCount,
// which stays exact.
func (b Bucket) Count() float64 {
	if b.Empty() {
		return 1
	}
	return combin.Choose(b.K-1, b.Runs-1) * combin.Choose(b.Runs-1, b.Wide)
}

// LogCount returns ln of Count, computed in log space.
func (b Bucket) LogCount() float64 {
	if b.Empty() {
		return 0
	}
	return combin.LogChoose(b.K-1, b.Runs-1) + combin.LogChoose(b.Runs-1, b.Wide)
}

// Class returns a canonical representative class of the bucket: a first
// run absorbing the excess length, Runs−1 single-node runs, the Wide wide
// junctions first. Its shape (and therefore all its statistics) is shared
// by every class in the bucket.
func (b Bucket) Class() Class {
	if b.Empty() {
		return Class{}
	}
	runs := make([]int, b.Runs)
	runs[0] = b.K - (b.Runs - 1)
	for i := 1; i < b.Runs; i++ {
		runs[i] = 1
	}
	gaps := make([]GapFlag, b.Runs-1)
	for i := range gaps {
		if i < b.Wide {
			gaps[i] = GapWide
		} else {
			gaps[i] = GapOne
		}
	}
	return Class{Runs: runs, Gaps: gaps, Tail: b.Tail}
}

// String renders the bucket compactly, e.g. "k=3 m=2 wide=1 t2+".
func (b Bucket) String() string {
	if b.Empty() {
		return "k=0"
	}
	return fmt.Sprintf("k=%d m=%d wide=%d t%s", b.K, b.Runs, b.Wide, b.Tail)
}

// bucketShape mirrors shape for a whole bucket: minimum producible path
// length, free gap-variable count (head gap included), and observed
// uncompromised witnesses. See shape for the per-flag accounting.
func (e *Engine) bucketShape(b Bucket) (base, free, nObs int) {
	if b.Empty() {
		if e.receiver {
			return 0, 1, 1
		}
		return 0, 1, 0
	}
	j1 := b.Runs - 1 - b.Wide
	base = b.K + j1 + 2*b.Wide
	free = 1 + b.Wide
	nObs = 1 + j1 + 2*b.Wide
	switch b.Tail {
	case TailZero:
	case TailOne:
		base++
		nObs++
	case TailWide:
		base += 2
		free++
		nObs += 2
	case TailUnobserved:
		base++
		free++
		nObs++
	}
	return base, free, nObs
}

// bucketSet returns every shape bucket that can occur on a path of length
// at most hi: the empty bucket plus (k, m, j₂, tail) with k ≤ min(C, hi)
// and minimal base length k+m−1+j₂ ≤ hi. The order is deterministic
// (k-major), which keeps the parallel aggregation paths bit-identical to a
// serial fold.
func (e *Engine) bucketSet(hi int) []Bucket {
	tails := []TailFlag{TailZero, TailOne, TailWide}
	if !e.receiver {
		tails = []TailFlag{TailZero, TailUnobserved}
	}
	kMax := e.c
	if kMax > hi {
		kMax = hi
	}
	out := []Bucket{{}}
	for k := 1; k <= kMax; k++ {
		for m := 1; m <= k && k+m-1 <= hi; m++ {
			for j2 := 0; j2 < m && k+m-1+j2 <= hi; j2++ {
				for _, t := range tails {
					out = append(out, Bucket{K: k, Runs: m, Wide: j2, Tail: t})
				}
			}
		}
	}
	return out
}

// BucketStats aggregates one whole bucket of observation classes under a
// path-length distribution: the per-class posterior (identical for every
// member) and the bucket's total probability mass.
type BucketStats struct {
	// Bucket is the shape signature.
	Bucket Bucket
	// Count is the number of concrete classes in the bucket (+Inf when
	// not float64-representable; see Bucket.Count).
	Count float64
	// P is the total probability that the adversary's observation falls
	// in this bucket (Count × the per-class probability), conditioned on
	// the sender not being compromised. Σ P over a BucketStats slice is 1.
	P float64
	// Alpha is the per-class posterior spike P(g0 = 0 | class), shared by
	// every class in the bucket.
	Alpha float64
	// Rest is the slab candidate count shared by the bucket.
	Rest int
	// H is the per-class posterior entropy in bits.
	H float64
}

// bucketStatsFor computes the aggregate Bayes mixture for one bucket. It
// runs the same W(l,k) recurrence as statsFor with the bucket multiplicity
// folded into the starting weight; because every recurrence factor is ≤ 1
// and the folded weight satisfies count·W(l,k) ≤ 1 for l ≥ base, the
// linear path neither overflows nor loses the bucket's mass. Buckets whose
// multiplicity exceeds float64 range (possible only for path lengths
// beyond ~1000) fall back to a fully log-space evaluation.
func (e *Engine) bucketStatsFor(b Bucket, d dist.Length) BucketStats {
	lo, hi := d.Support()
	if hi > e.n-1 {
		hi = e.n - 1
	}
	k := b.K
	base, free, nObs := e.bucketShape(b)
	count := b.Count()

	var sumP, sumP0 float64
	if !math.IsInf(count, 1) {
		w := count
		for i := 0; i < k; i++ {
			w *= float64(e.c-i) / float64(e.n-1-i)
		}
		for l := k; l <= hi; l++ {
			if l > k {
				num := float64(e.n - 1 - e.c - (l - 1 - k))
				if num <= 0 {
					break
				}
				w *= num / float64(e.n-1-(l-1))
			}
			if l < lo || l < base {
				continue
			}
			p := d.PMF(l)
			if p == 0 {
				continue
			}
			slack := l - base
			sumP += p * w * starsAndBars(slack, free)
			sumP0 += p * w * starsAndBars(slack, free-1)
		}
	} else {
		// Astronomical multiplicity: aggregate in log space. Each term
		// count·W(l,k)·A is a probability (≤ 1), so the exponentials are
		// safe to accumulate linearly.
		lp := b.LogCount() + combin.LogFallingFactorial(e.c, k)
		for l := base; l <= hi; l++ {
			if l < lo {
				continue
			}
			p := d.PMF(l)
			if p == 0 {
				continue
			}
			lw := lp + combin.LogFallingFactorial(e.n-1-e.c, l-k) -
				combin.LogFallingFactorial(e.n-1, l)
			slack := l - base
			sumP += p * math.Exp(lw+combin.LogStarsAndBars(slack, free))
			sumP0 += p * math.Exp(lw+combin.LogStarsAndBars(slack, free-1))
		}
	}

	st := BucketStats{Bucket: b, Count: count, Rest: e.n - e.c - nObs}
	if sumP <= 0 {
		// Bucket unreachable under this distribution.
		return st
	}
	st.P = sumP
	st.Alpha = sumP0 / sumP
	if st.Alpha > 1 {
		st.Alpha = 1 // guard against rounding
	}
	if b.Empty() && !e.receiver {
		st.Alpha = 0
		st.Rest = e.n - e.c
		st.H = entropy.Max(st.Rest)
		return st
	}
	switch {
	case e.mode == InferenceFullPosition && !b.Empty():
		st.H = (1 - st.Alpha) * entropy.Max(st.Rest)
	default:
		st.H = entropy.SpikeAndSlab(st.Alpha, st.Rest)
	}
	return st
}

// BucketStats returns the aggregate statistics of every shape bucket under
// d. It is the polynomial counterpart of ClassStats: the returned total
// probabilities sum to 1 over the sender-not-compromised branch (verified,
// as in ClassStats), and unlike the enumeration it works for any C ≤ N−1.
// Hop-count inference has no shape buckets (its classes carry exact tail
// gaps) and is rejected.
func (e *Engine) BucketStats(d dist.Length) ([]BucketStats, error) {
	if err := e.checkDist(d); err != nil {
		return nil, err
	}
	if e.mode == InferenceHopCount {
		return nil, fmt.Errorf("%w: hop-count inference has no shape buckets; use ClassStats", ErrInvalidSystem)
	}
	return e.bucketStatsKeyed(distKey(d), d)
}

// bucketStatsKeyed is BucketStats after validation, with the memo key
// already computed (AnonymityDegree reuses its own key here).
func (e *Engine) bucketStatsKeyed(key string, d dist.Length) ([]BucketStats, error) {
	if s, ok := e.memo.loadBucketStats(key); ok {
		return append([]BucketStats(nil), s...), nil
	}
	_, hi := d.Support()
	if hi > e.n-1 {
		hi = e.n - 1
	}
	buckets := e.bucketSet(hi)
	out := make([]BucketStats, len(buckets))
	// Same fan-out discipline as ClassStats: each task writes only its own
	// slot and the verification fold below runs in bucket order, so the
	// parallel path is bit-identical to the serial one.
	if len(buckets) >= parallelClassThreshold {
		pool.ForEach(len(buckets), func(i int) {
			out[i] = e.bucketStatsFor(buckets[i], d)
		})
	} else {
		for i, b := range buckets {
			out[i] = e.bucketStatsFor(b, d)
		}
	}
	var total float64
	for i := range out {
		total += out[i].P
	}
	if math.Abs(total-1) > 1e-6 {
		return nil, fmt.Errorf("events: bucket probabilities sum to %v, want 1 (internal accounting bug)", total)
	}
	e.memo.storeBucketStats(key, out)
	return append([]BucketStats(nil), out...), nil
}

// bucketWeights builds the optimizer's weight decomposition from shape
// buckets: one ClassWeights entry per bucket with per-class W/W0 vectors
// (the same recurrence the enumerated path used) and the bucket
// multiplicity in Count. The objective is then Σ_σ Count_σ·P_σ·f(α_σ) —
// identical to the per-class sum, at O(min(C, hi)³) entries instead of
// Θ(3^C).
func (e *Engine) bucketWeights(lo, hi int) []ClassWeights {
	buckets := e.bucketSet(hi)
	out := make([]ClassWeights, len(buckets))
	build := func(i int) {
		b := buckets[i]
		base, free, nObs := e.bucketShape(b)
		out[i] = e.buildWeights(b.Class(), b.Count(), b.K, base, free, nObs, lo, hi)
	}
	if len(buckets) >= parallelClassThreshold {
		pool.ForEach(len(buckets), build)
	} else {
		for i := range buckets {
			build(i)
		}
	}
	return out
}
