package events_test

// This file implements an independent brute-force oracle for the anonymity
// degree: it enumerates every concrete path outcome (sender, length,
// ordered intermediate sequence), renders the literal observation the
// adversary would collect (tuples with real node identities), groups
// outcomes by observation, and applies Bayes' rule directly. It shares no
// combinatorial reasoning with the class-enumeration engine, so agreement
// between the two validates the run/gap/stars-and-bars derivation end to
// end.

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"anonmix/internal/dist"
	"anonmix/internal/entropy"
	"anonmix/internal/events"
)

// oracleConfig selects the adversary model for the brute-force computation.
type oracleConfig struct {
	n, c                int
	receiverCompromised bool
	positionOracle      bool
	hopCountOracle      bool
}

// bruteForceH computes H*(S) exactly by outcome enumeration. Compromised
// nodes are 0..c−1; the sender is uniform over all n nodes; a compromised
// sender contributes zero entropy (self-report).
func bruteForceH(t *testing.T, cfg oracleConfig, d dist.Length) float64 {
	t.Helper()
	lo, hi := d.Support()
	if hi > cfg.n-1 {
		t.Fatalf("support %d exceeds n-1=%d", hi, cfg.n-1)
	}

	// weight[obs][sender] accumulates outcome probability.
	weight := make(map[string]map[int]float64)
	add := func(obs string, sender int, w float64) {
		m, ok := weight[obs]
		if !ok {
			m = make(map[int]float64)
			weight[obs] = m
		}
		m[sender] += w
	}

	for s := cfg.c; s < cfg.n; s++ { // uncompromised senders only
		for l := lo; l <= hi; l++ {
			p := d.PMF(l)
			if p == 0 {
				continue
			}
			// Enumerate ordered sequences of l distinct intermediates from
			// the n−1 nodes other than s.
			nSeq := 1.0
			for i := 0; i < l; i++ {
				nSeq *= float64(cfg.n - 1 - i)
			}
			w := p / (float64(cfg.n) * nSeq)
			path := make([]int, 0, l)
			used := make([]bool, cfg.n)
			used[s] = true
			var rec func()
			rec = func() {
				if len(path) == l {
					add(observe(cfg, s, path), s, w)
					return
				}
				for v := 0; v < cfg.n; v++ {
					if used[v] {
						continue
					}
					used[v] = true
					path = append(path, v)
					rec()
					path = path[:len(path)-1]
					used[v] = false
				}
			}
			rec()
		}
	}

	var h float64
	for _, senders := range weight {
		var total float64
		for _, w := range senders {
			total += w
		}
		var hObs float64
		for _, w := range senders {
			q := w / total
			if q > 0 {
				hObs -= q * math.Log2(q)
			}
		}
		h += total * hObs
	}
	// The compromised-sender branch contributes (c/n)·0.
	return h
}

// observe renders the adversary's view of one concrete outcome: the ordered
// reports of compromised on-path nodes (with real predecessor/successor
// identities), optionally their exact positions, and the receiver's report.
func observe(cfg oracleConfig, sender int, path []int) string {
	var b strings.Builder
	l := len(path)
	for i, x := range path {
		if x >= cfg.c {
			continue // not compromised
		}
		pred := sender
		if i > 0 {
			pred = path[i-1]
		}
		succ := "R"
		if i < l-1 {
			succ = fmt.Sprint(path[i+1])
		}
		switch {
		case cfg.positionOracle:
			fmt.Fprintf(&b, "[pos=%d x=%d pred=%d succ=%s]", i+1, x, pred, succ)
		case cfg.hopCountOracle:
			// Timing reveals the distance to the receiver, not to the
			// sender.
			fmt.Fprintf(&b, "[toR=%d x=%d pred=%d succ=%s]", l-1-i, x, pred, succ)
		default:
			fmt.Fprintf(&b, "[x=%d pred=%d succ=%s]", x, pred, succ)
		}
	}
	if cfg.receiverCompromised {
		pr := sender
		if l > 0 {
			pr = path[l-1]
		}
		fmt.Fprintf(&b, "[R pred=%d]", pr)
	}
	if b.Len() == 0 {
		return "∅"
	}
	return b.String()
}

// engineFor builds the engine matching an oracle configuration.
func engineFor(t *testing.T, cfg oracleConfig) *events.Engine {
	t.Helper()
	opts := []events.Option{}
	if !cfg.receiverCompromised {
		opts = append(opts, events.WithUncompromisedReceiver())
	}
	if cfg.positionOracle {
		opts = append(opts, events.WithInference(events.InferenceFullPosition))
	}
	if cfg.hopCountOracle {
		opts = append(opts, events.WithInference(events.InferenceHopCount))
	}
	e, err := events.New(cfg.n, cfg.c, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineMatchesBruteForce(t *testing.T) {
	mk := func(d dist.Length, err error) dist.Length {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	dists := map[string]dist.Length{
		"F(0)":        mk(dist.NewFixed(0)),
		"F(1)":        mk(dist.NewFixed(1)),
		"F(3)":        mk(dist.NewFixed(3)),
		"F(4)":        mk(dist.NewFixed(4)),
		"F(5)":        mk(dist.NewFixed(5)),
		"U(0,4)":      mk(dist.NewUniform(0, 4)),
		"U(1,5)":      mk(dist.NewUniform(1, 5)),
		"U(2,4)":      mk(dist.NewUniform(2, 4)),
		"Geom":        mk(dist.NewGeometric(0.5, 1, 5)),
		"TwoPoint":    mk(dist.NewTwoPoint(1, 4, 0.3)),
		"PMF(ragged)": mk(dist.NewPMF(0, []float64{0.1, 0, 0.4, 0.2, 0.3})),
	}
	cases := []oracleConfig{
		{n: 7, c: 0, receiverCompromised: true},
		{n: 7, c: 1, receiverCompromised: true},
		{n: 7, c: 2, receiverCompromised: true},
		{n: 8, c: 3, receiverCompromised: true},
		{n: 7, c: 2, receiverCompromised: false},
		{n: 7, c: 1, receiverCompromised: false},
		{n: 7, c: 2, receiverCompromised: true, positionOracle: true},
		{n: 8, c: 3, receiverCompromised: true, positionOracle: true},
		{n: 7, c: 1, receiverCompromised: true, hopCountOracle: true},
		{n: 7, c: 0, receiverCompromised: true, hopCountOracle: true},
	}
	for _, cfg := range cases {
		cfg := cfg
		for name, d := range dists {
			label := fmt.Sprintf("n=%d c=%d recv=%v pos=%v %s",
				cfg.n, cfg.c, cfg.receiverCompromised, cfg.positionOracle, name)
			t.Run(label, func(t *testing.T) {
				e := engineFor(t, cfg)
				got, err := e.AnonymityDegree(d)
				if err != nil {
					t.Fatal(err)
				}
				want := bruteForceH(t, cfg, d)
				if math.Abs(got-want) > 1e-9 {
					t.Errorf("engine H* = %.12f, brute force = %.12f (Δ=%.3g)",
						got, want, got-want)
				}
				if got < -1e-12 || got > entropy.Max(cfg.n)+1e-12 {
					t.Errorf("H* = %v outside [0, log2 %d]", got, cfg.n)
				}
			})
		}
	}
}

// TestBruteForcePosteriorShape verifies the engine's structural claim that
// every posterior is a spike plus a uniform slab: within each brute-force
// observation group, the non-top posterior values are all equal.
func TestBruteForcePosteriorShape(t *testing.T) {
	cfg := oracleConfig{n: 7, c: 2, receiverCompromised: true}
	d, err := dist.NewUniform(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := d.Support()
	weight := make(map[string]map[int]float64)
	for s := cfg.c; s < cfg.n; s++ {
		for l := lo; l <= hi; l++ {
			p := d.PMF(l)
			if p == 0 {
				continue
			}
			nSeq := 1.0
			for i := 0; i < l; i++ {
				nSeq *= float64(cfg.n - 1 - i)
			}
			w := p / (float64(cfg.n) * nSeq)
			var rec func(path []int, used map[int]bool)
			rec = func(path []int, used map[int]bool) {
				if len(path) == l {
					obs := observe(cfg, s, path)
					if weight[obs] == nil {
						weight[obs] = make(map[int]float64)
					}
					weight[obs][s] += w
					return
				}
				for v := 0; v < cfg.n; v++ {
					if v == s || used[v] {
						continue
					}
					used[v] = true
					rec(append(path, v), used)
					used[v] = false
				}
			}
			rec(nil, map[int]bool{})
		}
	}
	for obs, senders := range weight {
		var vals []float64
		for _, w := range senders {
			vals = append(vals, w)
		}
		// Group the weights into at most two distinct values (spike+slab).
		distinct := map[string]int{}
		for _, v := range vals {
			distinct[fmt.Sprintf("%.12g", v)]++
		}
		if len(distinct) > 2 {
			t.Errorf("observation %q: %d distinct posterior levels, want ≤ 2 (spike+slab): %v",
				obs, len(distinct), distinct)
		}
	}
}
