package events_test

// Concurrency and memo-consistency tests for the engine's cache layer:
// many goroutines hammer one shared Engine (for the -race detector) and
// every answer is compared bit-for-bit against a fresh, unshared engine
// computing the same quantity cold.

import (
	"sync"
	"testing"

	"anonmix/internal/dist"
	"anonmix/internal/events"
)

// referenceDegrees computes each distribution's anonymity degree on its own
// cold engine.
func referenceDegrees(t *testing.T, n, c int, ds []dist.Length) []float64 {
	t.Helper()
	out := make([]float64, len(ds))
	for i, d := range ds {
		e := mustEngine(t, n, c)
		h, err := e.AnonymityDegree(d)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = h
	}
	return out
}

func TestEngineConcurrentAnonymityDegree(t *testing.T) {
	const n, c = 40, 3
	ds := []dist.Length{
		mustFixed(t, 0), mustFixed(t, 5), mustFixed(t, 20),
		mustUniform(t, 0, 10), mustUniform(t, 2, 30), mustUniform(t, 7, 7),
	}
	want := referenceDegrees(t, n, c, ds)

	shared := mustEngine(t, n, c)
	const goroutines = 12
	const rounds = 40
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g + r) % len(ds)
				h, err := shared.AnonymityDegree(ds[i])
				if err != nil {
					errCh <- err
					return
				}
				if h != want[i] {
					t.Errorf("%s: shared engine %v, cold engine %v (must be bit-identical)", ds[i], h, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func TestEngineConcurrentMixedQueries(t *testing.T) {
	const n, c = 30, 4
	shared := mustEngine(t, n, c)
	d := mustUniform(t, 0, 15)

	cold := mustEngine(t, n, c)
	wantStats, err := cold.ClassStats(d)
	if err != nil {
		t.Fatal(err)
	}
	wantWeights, err := cold.Weights(0, 20)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 25; r++ {
				switch (g + r) % 3 {
				case 0:
					got, err := shared.ClassStats(d)
					if err != nil {
						t.Error(err)
						return
					}
					for i := range got {
						if got[i].P != wantStats[i].P || got[i].Alpha != wantStats[i].Alpha ||
							got[i].H != wantStats[i].H || got[i].Rest != wantStats[i].Rest ||
							got[i].Class.String() != wantStats[i].Class.String() {
							t.Errorf("class %s: %+v != %+v", got[i].Class, got[i], wantStats[i])
							return
						}
					}
				case 1:
					got, err := shared.Weights(0, 20)
					if err != nil {
						t.Error(err)
						return
					}
					for i := range got {
						for l := range got[i].W {
							if got[i].W[l] != wantWeights[i].W[l] || got[i].W0[l] != wantWeights[i].W0[l] {
								t.Errorf("class %s at l=%d: weight drift", got[i].Class, l)
								return
							}
						}
					}
				default:
					cl := events.Class{Runs: []int{1}, Tail: events.TailOne}
					if _, err := shared.StatsFor(cl, d); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestStatsForMemoMatchesCold: memoized single-class queries return exactly
// what a cold engine computes, across many (class, distribution) pairs.
func TestStatsForMemoMatchesCold(t *testing.T) {
	shared := mustEngine(t, 25, 3)
	ds := []dist.Length{mustUniform(t, 0, 12), mustFixed(t, 6)}
	for _, d := range ds {
		all, err := shared.ClassStats(d)
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range all {
			// Query twice through the shared engine (second hit is memoized)
			// and once cold.
			first, err := shared.StatsFor(st.Class, d)
			if err != nil {
				t.Fatal(err)
			}
			second, err := shared.StatsFor(st.Class, d)
			if err != nil {
				t.Fatal(err)
			}
			cold := mustEngine(t, 25, 3)
			want, err := cold.StatsFor(st.Class, d)
			if err != nil {
				t.Fatal(err)
			}
			for _, got := range []events.Stats{first, second} {
				if got.P != want.P || got.Alpha != want.Alpha || got.H != want.H || got.Rest != want.Rest {
					t.Errorf("%s class %s: memo %+v, cold %+v", d, st.Class, got, want)
				}
			}
		}
	}
}
