// Package events implements the exact anonymity-degree engine of Guan et al.
// (ICDCS 2002): it enumerates the equivalence classes of observations a
// passive adversary can make on rerouting paths, applies Bayes' rule over
// the unknown path length and head gap (the paper's Formulas 7–8), and
// computes the anonymity degree H*(S) = Σ_e H(e)·P(e) (Formulas 4–6).
//
// # Observation classes
//
// A rerouting path a0 → a1 → … → al → R with sender a0 and compromised node
// set K induces an observation: every compromised intermediate reports its
// (predecessor, successor), the compromised receiver reports its
// predecessor, and off-path compromised nodes report silence. Because
// intermediate nodes of a simple path are an exchangeable uniform sample,
// the posterior entropy depends on the outcome only through a small
// *class* signature:
//
//   - the ordered lengths of maximal runs of compromised positions,
//   - for each junction between consecutive runs, whether the gap is exactly
//     one node (the reports name the same witness) or at least two,
//   - the tail gap between the last run and the receiver (0, 1, or ≥2), and
//   - the unobservable head gap g0 between the sender and the first run —
//     whose posterior P(g0 = 0 | class) is exactly the adversary's
//     confidence that the first observed predecessor is the sender.
//
// For each class, stars-and-bars counts give the number of position
// arrangements with and without g0 = 0, and a Bayes mixture over the path
// length distribution yields the spike-and-slab sender posterior whose
// entropy is H(e). Everything is exact (log-space combinatorics); no
// sampling is involved.
//
// # Counted buckets
//
// The class space grows as Θ(3^C), but every statistic above depends on a
// class only through its shape (k compromised, m runs, j₂ wide junctions,
// tail flag), so aggregate queries — AnonymityDegree, BucketStats, and the
// optimizer's Weights — collapse the enumeration into O(min(C, L)³) shape
// buckets with closed-form multiplicities C(k−1,m−1)·C(m−1,j₂) (see
// aggregate.go). Those paths are exact for any C ≤ N−1; only the per-class
// APIs (ClassStats, Enumerate) keep the enumeration and its C ≤ 12 bound.
package events

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"anonmix/internal/combin"
	"anonmix/internal/dist"
	"anonmix/internal/entropy"
	"anonmix/internal/pool"
)

// Errors returned by the engine.
var (
	// ErrInvalidSystem reports inconsistent N/C parameters.
	ErrInvalidSystem = errors.New("events: invalid system parameters")
	// ErrSupportTooLong reports a path-length distribution whose support
	// exceeds N−1, the longest simple path in an N-node clique.
	ErrSupportTooLong = errors.New("events: path length support exceeds N-1 (simple paths)")
	// ErrTooManyClasses reports a compromised-node count whose class space
	// is too large to enumerate class-by-class. The bucketed aggregates
	// (AnonymityDegree, BucketStats, Weights) and single-class StatsFor
	// have no such limit.
	ErrTooManyClasses = errors.New("events: class space too large for exact enumeration")
	// ErrClassMismatch reports a class signature inconsistent with the
	// engine's system parameters.
	ErrClassMismatch = errors.New("events: class signature inconsistent with system")
)

// maxCompromisedEnumerate bounds the per-class enumeration (ClassStats and
// the hop-count paths): the concrete class space grows as Θ(3^C). The
// bucketed aggregates in aggregate.go are polynomial and unbounded.
const maxCompromisedEnumerate = 12

// GapFlag classifies the observable size of the gap between two consecutive
// compromised runs on a path.
type GapFlag uint8

// Gap flag values.
const (
	// GapOne marks a junction bridged by exactly one uncompromised node:
	// the successor reported by one run equals the predecessor reported by
	// the next.
	GapOne GapFlag = iota + 1
	// GapWide marks a junction with at least two uncompromised nodes.
	GapWide
)

// String returns a compact rendering of the flag.
func (g GapFlag) String() string {
	switch g {
	case GapOne:
		return "1"
	case GapWide:
		return "2+"
	default:
		return fmt.Sprintf("GapFlag(%d)", uint8(g))
	}
}

// TailFlag classifies the observable gap between the last compromised run
// and the receiver.
type TailFlag uint8

// Tail flag values.
const (
	// TailZero marks a path whose last intermediate node is compromised
	// (its reported successor is the receiver).
	TailZero TailFlag = iota + 1
	// TailOne marks exactly one uncompromised node before the receiver:
	// the last run's successor equals the receiver's predecessor.
	TailOne
	// TailWide marks at least two uncompromised nodes before the receiver.
	TailWide
	// TailUnobserved is used when the receiver is not compromised: only
	// adjacency to the receiver (successor == R) remains observable, so
	// TailOne and TailWide collapse into this flag.
	TailUnobserved
)

// String returns a compact rendering of the flag.
func (t TailFlag) String() string {
	switch t {
	case TailZero:
		return "0"
	case TailOne:
		return "1"
	case TailWide:
		return "2+"
	case TailUnobserved:
		return "?"
	default:
		return fmt.Sprintf("TailFlag(%d)", uint8(t))
	}
}

// Class is the observable equivalence class of a path outcome. The zero
// value (no runs) is the class in which no compromised node lies on the
// path and the adversary sees only the receiver's report (if any).
type Class struct {
	// Runs holds the ordered lengths of maximal consecutive groups of
	// compromised intermediate positions. Empty means no compromised node
	// on the path.
	Runs []int
	// Gaps holds one flag per junction between consecutive runs
	// (len(Gaps) == len(Runs)−1 when len(Runs) > 0).
	Gaps []GapFlag
	// Tail classifies the gap between the last run and the receiver.
	// Unused when Runs is empty.
	Tail TailFlag
	// ExactTail carries the exact tail gap under InferenceHopCount
	// (timing reveals the hop distance from the last run to the
	// receiver), encoded as gap+1 so the zero value means "unobserved"
	// (the standard model). Use ExactTailGap / NewHopCountClass rather
	// than touching the encoding directly.
	ExactTail int
}

// ExactTailGap returns the exact tail gap and whether it is observed.
func (c Class) ExactTailGap() (int, bool) {
	if c.ExactTail <= 0 {
		return 0, false
	}
	return c.ExactTail - 1, true
}

// NewHopCountClass returns the C = 1 hop-count-adversary class: one
// compromised node observed exactly t hops before the receiver.
func NewHopCountClass(t int) (Class, error) {
	if t < 0 {
		return Class{}, fmt.Errorf("%w: tail gap %d", ErrClassMismatch, t)
	}
	tail := TailWide
	switch t {
	case 0:
		tail = TailZero
	case 1:
		tail = TailOne
	}
	return Class{Runs: []int{1}, Tail: tail, ExactTail: t + 1}, nil
}

// K returns the number of compromised intermediate nodes in the class.
func (c Class) K() int {
	var k int
	for _, r := range c.Runs {
		k += r
	}
	return k
}

// Empty reports whether no compromised node lies on the path.
func (c Class) Empty() bool { return len(c.Runs) == 0 }

// String renders the class in a compact run/gap notation, e.g.
// "[2]-1-[1]-t2+" for a 2-run, a one-node gap, a 1-run, and a wide tail;
// exact hop-count tails render as "-t=3".
func (c Class) String() string {
	if c.Empty() {
		return "[none]"
	}
	s := ""
	for i, r := range c.Runs {
		if i > 0 {
			s += fmt.Sprintf("-%s-", c.Gaps[i-1])
		}
		s += fmt.Sprintf("[%d]", r)
	}
	if t, ok := c.ExactTailGap(); ok {
		return s + fmt.Sprintf("-t=%d", t)
	}
	return s + "-t" + c.Tail.String()
}

// validate checks structural consistency of the signature.
func (c Class) validate() error {
	if c.Empty() {
		if len(c.Gaps) != 0 {
			return fmt.Errorf("%w: gaps without runs", ErrClassMismatch)
		}
		if _, ok := c.ExactTailGap(); ok {
			return fmt.Errorf("%w: exact tail without runs", ErrClassMismatch)
		}
		return nil
	}
	if t, ok := c.ExactTailGap(); ok {
		if len(c.Runs) != 1 || c.Runs[0] != 1 {
			return fmt.Errorf("%w: exact tail needs a single length-1 run", ErrClassMismatch)
		}
		want := TailWide
		switch t {
		case 0:
			want = TailZero
		case 1:
			want = TailOne
		}
		if c.Tail != want {
			return fmt.Errorf("%w: exact tail %d inconsistent with flag %v", ErrClassMismatch, t, c.Tail)
		}
	}
	if len(c.Gaps) != len(c.Runs)-1 {
		return fmt.Errorf("%w: %d runs need %d gap flags, have %d",
			ErrClassMismatch, len(c.Runs), len(c.Runs)-1, len(c.Gaps))
	}
	for _, r := range c.Runs {
		if r < 1 {
			return fmt.Errorf("%w: run length %d", ErrClassMismatch, r)
		}
	}
	for _, g := range c.Gaps {
		if g != GapOne && g != GapWide {
			return fmt.Errorf("%w: gap flag %v", ErrClassMismatch, g)
		}
	}
	switch c.Tail {
	case TailZero, TailOne, TailWide, TailUnobserved:
		return nil
	default:
		return fmt.Errorf("%w: tail flag %v", ErrClassMismatch, c.Tail)
	}
}

// InferenceMode selects how much information the adversary extracts from
// its observations. The default, InferenceStandard, grants everything the
// paper's threat model (§4) makes available to a passive adversary with
// store-and-forward timing: report ordering and node-identity correlation
// across reports. InferenceFullPosition additionally grants the exact
// position of every compromised node on the path (a hop-count/timing
// oracle), which is strictly stronger; it is provided for ablation studies
// of how inference strength moves the long-path-effect peak.
type InferenceMode uint8

// Inference modes.
const (
	// InferenceStandard is the paper-faithful passive adversary.
	InferenceStandard InferenceMode = iota + 1
	// InferenceFullPosition reveals exact on-path positions (ablation).
	InferenceFullPosition
	// InferenceHopCount reveals, via timing, the exact hop distance from
	// each observation point to the receiver — but not the distance from
	// the hidden sender. For fixed-length strategies this equals
	// InferenceFullPosition (the length is known, so positions follow);
	// for variable-length strategies the sender-side gap stays uncertain,
	// which is exactly why variable lengths are more robust (paper
	// conclusion 4). Supported for C ≤ 1 (the exact-gap class space for
	// larger C grows with the support size; use the estimator there).
	InferenceHopCount
)

// String names the mode.
func (m InferenceMode) String() string {
	switch m {
	case InferenceStandard:
		return "standard"
	case InferenceFullPosition:
		return "full-position"
	case InferenceHopCount:
		return "hop-count"
	default:
		return fmt.Sprintf("InferenceMode(%d)", uint8(m))
	}
}

// Engine computes exact anonymity degrees for a rerouting-based anonymous
// communication system with n nodes of which c are compromised.
//
// The engine memoizes every per-class posterior it computes, keyed by the
// exact mass fingerprint of the length distribution, so repeated queries
// (figure sweeps, optimizer restarts, Monte-Carlo trials) never recompute
// a class. It is safe for concurrent use; cached results are bit-identical
// to fresh computation.
type Engine struct {
	n, c       int
	mode       InferenceMode
	receiver   bool // receiver compromised (paper default: true)
	selfReport bool // compromised sender identifies itself (paper default: true)

	// fam, when set, shares per-distribution shape tables with every
	// engine this one was Neighbor-derived from or to (see family.go).
	fam atomic.Pointer[family]

	memo engineMemo
}

// Option configures an Engine.
type Option func(*Engine)

// WithInference selects the adversary inference mode.
func WithInference(m InferenceMode) Option {
	return func(e *Engine) { e.mode = m }
}

// WithUncompromisedReceiver models a receiver outside the adversary's
// control: the receiver's predecessor report disappears, so the tail gap is
// observable only through run-successor == receiver adjacency. The paper
// assumes the receiver is compromised; this option exists to reproduce the
// log2(N) upper-bound case of §5.1 and for ablations.
func WithUncompromisedReceiver() Option {
	return func(e *Engine) { e.receiver = false }
}

// WithoutSenderSelfReport models compromised nodes that cannot recognize
// messages originating at themselves (contrary to the paper's local-
// eavesdropper case). Provided for ablations.
func WithoutSenderSelfReport() Option {
	return func(e *Engine) { e.selfReport = false }
}

// New returns an exact engine for an n-node system with c compromised
// nodes. The receiver is compromised in addition to the c nodes, matching
// the paper's threat model. Any c ≤ n is accepted: the aggregate queries
// run on the counted-bucket engine, which is polynomial in c; only the
// per-class ClassStats enumeration keeps a small-c bound. At c = n the
// degenerate system has H* = 0 (AnonymityDegree short-circuits), but the
// per-class partition, which conditions on an uncompromised sender, is
// undefined and ClassStats/BucketStats report an accounting error.
func New(n, c int, opts ...Option) (*Engine, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: need at least 2 nodes, have %d", ErrInvalidSystem, n)
	}
	if c < 0 || c > n {
		return nil, fmt.Errorf("%w: %d compromised of %d nodes", ErrInvalidSystem, c, n)
	}
	e := &Engine{n: n, c: c, mode: InferenceStandard, receiver: true, selfReport: true}
	for _, o := range opts {
		o(e)
	}
	if e.mode == InferenceHopCount && c > 1 {
		return nil, fmt.Errorf("%w: hop-count inference supports c ≤ 1, have %d", ErrTooManyClasses, c)
	}
	return e, nil
}

// N returns the number of nodes in the system.
func (e *Engine) N() int { return e.n }

// C returns the number of compromised nodes.
func (e *Engine) C() int { return e.c }

// Mode returns the adversary inference mode.
func (e *Engine) Mode() InferenceMode { return e.mode }

// ReceiverCompromised reports whether the receiver is part of the
// adversary (the paper's default; see WithUncompromisedReceiver).
func (e *Engine) ReceiverCompromised() bool { return e.receiver }

// SenderSelfReport reports whether a compromised sender identifies itself
// (the paper's local-eavesdropper default; see WithoutSenderSelfReport).
func (e *Engine) SenderSelfReport() bool { return e.selfReport }

// MaxAnonymity returns the upper bound log2(N) on the anonymity degree
// (paper §5.1 and conclusion 4).
func (e *Engine) MaxAnonymity() float64 { return entropy.Max(e.n) }

// Stats aggregates everything the engine knows about one observation class
// under a given path-length distribution.
type Stats struct {
	// Class is the observation signature.
	Class Class
	// P is the probability of observing the class, conditioned on the
	// sender not being compromised.
	P float64
	// Alpha is the posterior probability that the predecessor of the first
	// observed entity (first run, or the receiver when no run exists) is
	// the true sender — P(g0 = 0 | class) via the paper's Formulas (7)–(8).
	Alpha float64
	// Rest is the number of unobserved, uncompromised nodes that share the
	// remaining 1−Alpha posterior mass uniformly.
	Rest int
	// H is the Shannon entropy (bits) of the sender posterior for this
	// class under the engine's inference mode.
	H float64
}

// checkDist validates a distribution against the engine's system size.
func (e *Engine) checkDist(d dist.Length) error {
	if d == nil {
		return fmt.Errorf("%w: nil distribution", ErrInvalidSystem)
	}
	if err := dist.Validate(d); err != nil {
		return err
	}
	_, hi := d.Support()
	if hi > e.n-1 {
		return fmt.Errorf("%w: support max %d, N-1 = %d", ErrSupportTooLong, hi, e.n-1)
	}
	return nil
}

// ClassStats enumerates every observation class and returns its statistics
// under the path-length distribution d. The returned probabilities sum to 1
// (over the sender-not-compromised branch); this invariant is verified and
// an error is returned if it fails, since it would indicate a combinatorial
// accounting bug. The concrete class space grows as Θ(3^C), so ClassStats
// returns ErrTooManyClasses beyond C = 12; use BucketStats for the
// polynomial aggregate view at any C.
func (e *Engine) ClassStats(d dist.Length) ([]Stats, error) {
	if err := e.checkDist(d); err != nil {
		return nil, err
	}
	return e.classStatsKeyed(distKey(d), d)
}

// classStatsKeyed is ClassStats after validation, with the memo key already
// computed (AnonymityDegree reuses its own key here).
func (e *Engine) classStatsKeyed(key string, d dist.Length) ([]Stats, error) {
	if s, ok := e.memo.loadClassStats(key); ok {
		return append([]Stats(nil), s...), nil
	}
	_, hi := d.Support()
	classes, err := e.enumerate(hi)
	if err != nil {
		return nil, err
	}
	out := make([]Stats, len(classes))
	errs := make([]error, len(classes))
	// Fan the per-class posteriors out over the shared worker pool. Each
	// task writes only its own slot, and the verification sum below runs
	// over the slots in class order, so the parallel path is bit-identical
	// to the serial one. Small class spaces (C = 1 has four classes) are
	// not worth the dispatch overhead.
	if len(classes) >= parallelClassThreshold {
		pool.ForEach(len(classes), func(i int) {
			out[i], errs[i] = e.statsFor(classes[i], d)
		})
	} else {
		for i, cl := range classes {
			out[i], errs[i] = e.statsFor(cl, d)
		}
	}
	var total float64
	for i := range out {
		if errs[i] != nil {
			return nil, errs[i]
		}
		total += out[i].P
	}
	if math.Abs(total-1) > 1e-6 {
		return nil, fmt.Errorf("events: class probabilities sum to %v, want 1 (internal accounting bug)", total)
	}
	e.memo.storeClassStats(key, out)
	return append([]Stats(nil), out...), nil
}

// parallelClassThreshold is the class-space size below which ClassStats
// and Weights stay serial (pool dispatch would cost more than the work).
const parallelClassThreshold = 64

// StatsFor returns the statistics of a single observation class under d.
// It is the entry point used by the simulation adversary, which reconstructs
// a Class from concrete tuple reports and needs the posterior spike Alpha
// and candidate count Rest to build the full sender posterior.
func (e *Engine) StatsFor(cl Class, d dist.Length) (Stats, error) {
	if err := e.checkDist(d); err != nil {
		return Stats{}, err
	}
	if err := cl.validate(); err != nil {
		return Stats{}, err
	}
	if cl.K() > e.c {
		return Stats{}, fmt.Errorf("%w: class has %d compromised, system has %d", ErrClassMismatch, cl.K(), e.c)
	}
	kp := statsKeyPool.Get().(*[]byte)
	key := appendDistKey(appendClassKey((*kp)[:0], cl), d)
	st, ok := e.memo.loadSingle(key)
	if !ok {
		var err error
		if st, err = e.statsFor(cl, d); err != nil {
			*kp = key
			statsKeyPool.Put(kp)
			return Stats{}, err
		}
		e.memo.storeSingle(key, st)
	}
	*kp = key
	statsKeyPool.Put(kp)
	return st, nil
}

// statsFor computes the Bayes mixture for one class. See the package
// comment for the derivation.
//
// The position-set weight W(l,k) = P(C,k)·P(N−1−C, l−k)/P(N−1,l) is carried
// through the length loop by the multiplicative recurrence
//
//	W(k,k)   = Π_{i<k} (C−i)/(N−1−i)
//	W(l,k)   = W(l−1,k) · (N−1−C−(l−1−k)) / (N−1−(l−1))
//
// which stays in [0,1] for any system size (no overflow, no log/exp in the
// hot path). The arrangement counts are small binomials (the number of free
// gap variables is at most C+2).
func (e *Engine) statsFor(cl Class, d dist.Length) (Stats, error) {
	lo, hi := d.Support()
	if hi > e.n-1 {
		hi = e.n - 1
	}
	k := cl.K()
	base, free, nObs := e.shape(cl)

	w := 1.0
	for i := 0; i < k; i++ {
		w *= float64(e.c-i) / float64(e.n-1-i)
	}
	var sumP, sumP0 float64 // Σ_l p(l)·W(l,k)·A(l) and the g0=0 restriction
	for l := k; l <= hi; l++ {
		if l > k {
			num := float64(e.n - 1 - e.c - (l - 1 - k))
			if num <= 0 {
				break // more uncompromised slots than uncompromised nodes
			}
			w *= num / float64(e.n-1-(l-1))
		}
		if l < lo || l < base {
			continue
		}
		p := d.PMF(l)
		if p == 0 {
			continue
		}
		slack := l - base
		sumP += p * w * starsAndBars(slack, free)
		sumP0 += p * w * starsAndBars(slack, free-1)
	}

	st := Stats{Class: cl, Rest: e.n - e.c - nObs}
	if sumP <= 0 {
		// Class unreachable under this distribution.
		return st, nil
	}
	st.P = sumP
	st.Alpha = sumP0 / sumP
	if st.Alpha > 1 {
		st.Alpha = 1 // guard against rounding
	}
	// The empty class with an uncompromised receiver observes nothing: the
	// posterior is uniform over all non-compromised nodes (the adversary's
	// own nodes know they did not send).
	if cl.Empty() && !e.receiver {
		st.Alpha = 0
		st.Rest = e.n - e.c
		st.H = entropy.Max(st.Rest)
		return st, nil
	}
	switch {
	case e.mode == InferenceFullPosition && !cl.Empty():
		// Positions of the compromised reports are known exactly, so the
		// head gap g0 is known: with probability Alpha the sender is
		// identified (g0 = 0), otherwise it is uniform over Rest nodes.
		// With no compromised node on the path there is no report to
		// position, so the empty class falls through to the standard
		// spike-and-slab posterior.
		st.H = (1 - st.Alpha) * entropy.Max(st.Rest)
	default:
		st.H = entropy.SpikeAndSlab(st.Alpha, st.Rest)
	}
	return st, nil
}

// shape returns, for a class, the minimum path length that can produce it
// (base), the number of free non-negative gap variables including the head
// gap g0 (free ≥ 1), and the number of observed uncompromised witness nodes
// other than the head predecessor (nObs counts the head predecessor too —
// see below).
//
// nObs counts every uncompromised node whose identity the adversary has
// seen: the predecessor of the first run (the sender candidate), junction
// witnesses (one for GapOne, two for GapWide), and tail witnesses (none for
// TailZero, one for TailOne/TailUnobserved, two for TailWide). For the
// empty class it is 1 when the receiver reports a predecessor, 0 otherwise.
func (e *Engine) shape(cl Class) (base, free, nObs int) {
	if cl.Empty() {
		if e.receiver {
			return 0, 1, 1
		}
		return 0, 1, 0
	}
	if t, ok := cl.ExactTailGap(); ok {
		// Hop-count class: one compromised node exactly t hops before the
		// receiver. Only the head gap g0 is free; the identity witnesses
		// are the predecessor, plus the successor when t ≥ 1, plus the
		// receiver's (distinct) predecessor when t ≥ 2.
		nObs = 1
		if t >= 1 {
			nObs++
		}
		if t >= 2 {
			nObs++
		}
		return 1 + t, 1, nObs
	}
	base = 0
	for _, r := range cl.Runs {
		base += r
	}
	free = 1 // head gap g0
	nObs = 1 // predecessor of the first run
	for _, g := range cl.Gaps {
		switch g {
		case GapOne:
			base++
			nObs++
		case GapWide:
			base += 2
			free++
			nObs += 2
		}
	}
	switch cl.Tail {
	case TailZero:
		// Last intermediate is compromised; receiver's predecessor is it.
	case TailOne:
		base++
		nObs++
	case TailWide:
		base += 2
		free++
		nObs += 2
	case TailUnobserved:
		// Uncompromised receiver: gap known only to be ≥ 1; its single
		// closest witness (the run's successor) is observed.
		base++
		free++
		nObs++
	}
	return base, free, nObs
}

// starsAndBars returns the number of ways to write slack as an ordered sum
// of vars non-negative integers, in linear space (the engine's free-variable
// counts are tiny, so the binomial is exact in a float64). It is served
// from the process-wide table in internal/combin.
func starsAndBars(slack, vars int) float64 {
	return combin.StarsAndBars(slack, vars)
}

// ClassWeights holds, for one observation class, the linear weight vectors
// that make the anonymity degree a sum of linear-fractional terms in the
// path-length mass function p:
//
//	P_σ(p)  = Σ_l W[l−lo]·p(l)        (class probability)
//	P0_σ(p) = Σ_l W0[l−lo]·p(l)       (g0 = 0 restriction)
//	α_σ     = P0_σ/P_σ
//	H*(p)   = (N−C)/N · Σ_σ P_σ·f(α_σ, Rest)
//
// with f the spike-and-slab entropy (or its full-position variant). The
// optimizer uses this decomposition for exact analytic gradients.
//
// One entry covers a whole shape bucket of Count classes sharing the same
// per-class vectors, so the objective and its gradient must weight each
// entry's contribution by Count (the hop-count path enumerates concrete
// classes, with Count == 1).
type ClassWeights struct {
	// Class is the observation signature (a canonical bucket
	// representative on the bucketed path).
	Class Class
	// Count is the bucket multiplicity: the number of concrete classes
	// sharing these vectors. Always ≥ 1.
	Count float64
	// Rest is the slab candidate count for the class.
	Rest int
	// FullPosition selects the (1−α)·log2(Rest) entropy form.
	FullPosition bool
	// UniformOverAll marks the no-observation case (empty class with an
	// uncompromised receiver): entropy is the constant log2(N−C).
	UniformOverAll bool
	// W and W0 are indexed by l−Lo.
	W, W0 []float64
	// Lo is the first length the weight vectors cover.
	Lo int
}

// Weights returns the weight vectors for path lengths in [lo, hi]. hi must
// not exceed N−1. Under the standard and full-position modes the entries
// are shape buckets (one per bucket, with the multiplicity in Count),
// which keeps the decomposition polynomial for any C; hop-count inference
// enumerates its concrete classes with Count == 1.
// The returned weight vectors are shared with the engine's cache and must
// be treated as read-only.
func (e *Engine) Weights(lo, hi int) ([]ClassWeights, error) {
	if lo < 0 || hi < lo || hi > e.n-1 {
		return nil, fmt.Errorf("%w: weight range [%d,%d] with N=%d", ErrInvalidSystem, lo, hi, e.n)
	}
	key := weightKey{lo, hi}
	if w, ok := e.memo.loadWeights(key); ok {
		return append([]ClassWeights(nil), w...), nil
	}
	if e.mode != InferenceHopCount {
		out := e.bucketWeights(lo, hi)
		e.memo.storeWeights(key, out)
		return append([]ClassWeights(nil), out...), nil
	}
	classes, err := e.enumerate(hi)
	if err != nil {
		return nil, err
	}
	out := make([]ClassWeights, len(classes))
	build := func(i int) {
		cl := classes[i]
		base, free, nObs := e.shape(cl)
		out[i] = e.buildWeights(cl, 1, cl.K(), base, free, nObs, lo, hi)
	}
	if len(classes) >= parallelClassThreshold {
		pool.ForEach(len(classes), build)
	} else {
		for i := range classes {
			build(i)
		}
	}
	e.memo.storeWeights(key, out)
	return append([]ClassWeights(nil), out...), nil
}

// buildWeights constructs one weight entry from a class (or bucket
// representative), its multiplicity, and its precomputed shape. Both
// Weights paths funnel through it so the length-loop recurrence can never
// diverge between the enumerated and bucketed decompositions.
func (e *Engine) buildWeights(cl Class, count float64, k, base, free, nObs, lo, hi int) ClassWeights {
	cw := ClassWeights{
		Class:        cl,
		Count:        count,
		Rest:         e.n - e.c - nObs,
		FullPosition: e.mode == InferenceFullPosition && !cl.Empty(),
		Lo:           lo,
		W:            make([]float64, hi-lo+1),
		W0:           make([]float64, hi-lo+1),
	}
	if cl.Empty() && !e.receiver {
		cw.UniformOverAll = true
		cw.Rest = e.n - e.c
	}
	w := 1.0
	for i := 0; i < k; i++ {
		w *= float64(e.c-i) / float64(e.n-1-i)
	}
	for l := k; l <= hi; l++ {
		if l > k {
			num := float64(e.n - 1 - e.c - (l - 1 - k))
			if num <= 0 {
				break
			}
			w *= num / float64(e.n-1-(l-1))
		}
		if l < lo || l < base {
			continue
		}
		slack := l - base
		cw.W[l-lo] = w * starsAndBars(slack, free)
		cw.W0[l-lo] = w * starsAndBars(slack, free-1)
	}
	return cw
}

// AnonymityDegree returns H*(S) (Formula 5): the expected posterior entropy
// over all observation classes, including the C/N branch in which the
// sender itself is compromised and immediately identified. It runs on the
// counted-bucket engine (O(min(C, L)³·L), exact for any C ≤ N−1); only
// hop-count inference still enumerates its concrete classes.
func (e *Engine) AnonymityDegree(d dist.Length) (float64, error) {
	if err := e.checkDist(d); err != nil {
		return 0, err
	}
	if e.c == e.n {
		// Every node (the sender included) is compromised: the
		// sender-not-compromised branch is empty and H*(S) = 0. The
		// per-class partition below conditions on that empty branch, so
		// short-circuit rather than divide by zero mass.
		return 0, nil
	}
	key := distKey(d)
	if h, ok := e.memo.loadDegree(key); ok {
		return h, nil
	}
	var h float64
	if e.mode == InferenceHopCount {
		stats, err := e.classStatsKeyed(key, d)
		if err != nil {
			return 0, err
		}
		for _, st := range stats {
			h += st.P * st.H
		}
	} else if f := e.fam.Load(); f != nil {
		// Family member (Neighbor-derived, or the root of a derivation):
		// evaluate through the shared shape tables instead of rebuilding
		// the per-bucket length loops. See family.go.
		var err error
		if h, err = e.familyDegree(f, key, d); err != nil {
			return 0, err
		}
	} else {
		buckets, err := e.bucketStatsKeyed(key, d)
		if err != nil {
			return 0, err
		}
		for _, st := range buckets {
			h += st.P * st.H
		}
	}
	frac := float64(e.n-e.c) / float64(e.n)
	if !e.selfReport {
		// Ablation: a compromised sender is *not* self-identified; it
		// behaves like an uncompromised one. The honest-sender analysis
		// then applies to all N senders.
		//
		// This is an approximation used only for ablation: the compromised
		// sender's first-hop report changes the observation slightly; the
		// Monte-Carlo estimator handles it exactly.
		frac = 1
	}
	h *= frac
	e.memo.storeDegree(key, h)
	return h, nil
}

// enumerate returns the mode-appropriate class set for distributions whose
// support ends at hi.
func (e *Engine) enumerate(hi int) ([]Class, error) {
	if e.mode != InferenceHopCount {
		if e.c > maxCompromisedEnumerate {
			return nil, fmt.Errorf("%w: c = %d > %d (per-class enumeration; BucketStats and Weights aggregate any c)",
				ErrTooManyClasses, e.c, maxCompromisedEnumerate)
		}
		return enumerateShared(e.c, e.receiver), nil
	}
	if !e.receiver {
		return nil, fmt.Errorf("%w: hop-count inference requires a compromised receiver (timing baseline)", ErrInvalidSystem)
	}
	out := []Class{{}}
	if e.c == 0 {
		return out, nil
	}
	for t := 0; t < hi; t++ {
		cl, err := NewHopCountClass(t)
		if err != nil {
			return nil, err
		}
		out = append(out, cl)
	}
	return out, nil
}

// Enumerate returns every observation class for c compromised nodes:
// the empty class plus, for each k = 1..c, each ordered composition of k
// into runs, each assignment of junction flags, and each tail flag. With a
// compromised receiver the tail flags are {0, 1, 2+}; otherwise {0, ≥1}.
func Enumerate(c int, receiverCompromised bool) []Class {
	tails := []TailFlag{TailZero, TailOne, TailWide}
	if !receiverCompromised {
		tails = []TailFlag{TailZero, TailUnobserved}
	}
	out := []Class{{}} // the empty class
	var rec func(remaining int, runs []int, gaps []GapFlag)
	rec = func(remaining int, runs []int, gaps []GapFlag) {
		if len(runs) > 0 {
			for _, t := range tails {
				cl := Class{
					Runs: append([]int(nil), runs...),
					Gaps: append([]GapFlag(nil), gaps...),
					Tail: t,
				}
				out = append(out, cl)
			}
		}
		if remaining == 0 {
			return
		}
		for r := 1; r <= remaining; r++ {
			extRuns := append(append([]int(nil), runs...), r)
			if len(runs) == 0 {
				rec(remaining-r, extRuns, gaps)
				continue
			}
			for _, g := range []GapFlag{GapOne, GapWide} {
				rec(remaining-r, extRuns, append(append([]GapFlag(nil), gaps...), g))
			}
		}
	}
	rec(c, nil, nil)
	return out
}
