package events

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"anonmix/internal/dist"
)

// familyGridDists returns the distribution families the delta property
// tests sweep, sized to fit the smallest engine the walks visit.
func familyGridDists(t *testing.T) []dist.Length {
	t.Helper()
	u, err := dist.NewUniform(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	g, err := dist.NewGeometric(0.5, 1, 12)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := dist.NewTwoPoint(3, 9, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := dist.NewPoisson(5, 0, 14)
	if err != nil {
		t.Fatal(err)
	}
	f, err := dist.NewFixed(6)
	if err != nil {
		t.Fatal(err)
	}
	return []dist.Length{f, u, g, tp, p}
}

// requireClose fails unless every aggregate statistic of the derived engine
// matches the fresh engine within 1e-12 (the delta path reorders the same
// products; it must not drift).
func requireClose(t *testing.T, derived, fresh *Engine, d dist.Length) {
	t.Helper()
	const tol = 1e-12
	hd, err := derived.AnonymityDegree(d)
	if err != nil {
		t.Fatalf("derived (%d,%d) AnonymityDegree: %v", derived.N(), derived.C(), err)
	}
	hf, err := fresh.AnonymityDegree(d)
	if err != nil {
		t.Fatalf("fresh (%d,%d) AnonymityDegree: %v", fresh.N(), fresh.C(), err)
	}
	if math.Abs(hd-hf) > tol {
		t.Errorf("(%d,%d) %v: delta H %.17g vs fresh %.17g (diff %g)",
			derived.N(), derived.C(), d, hd, hf, hd-hf)
	}
	bd, err := derived.BucketStats(d)
	if err != nil {
		t.Fatalf("derived BucketStats: %v", err)
	}
	bf, err := fresh.BucketStats(d)
	if err != nil {
		t.Fatalf("fresh BucketStats: %v", err)
	}
	if len(bd) != len(bf) {
		t.Fatalf("(%d,%d): %d delta buckets vs %d fresh", derived.N(), derived.C(), len(bd), len(bf))
	}
	for i := range bd {
		if math.Abs(bd[i].P-bf[i].P) > tol || math.Abs(bd[i].H-bf[i].H) > tol ||
			math.Abs(bd[i].Alpha-bf[i].Alpha) > tol {
			t.Errorf("(%d,%d) bucket %v: delta (P %g, α %g, H %g) vs fresh (P %g, α %g, H %g)",
				derived.N(), derived.C(), bd[i].Bucket,
				bd[i].P, bd[i].Alpha, bd[i].H, bf[i].P, bf[i].Alpha, bf[i].H)
		}
	}
	lo, hi := d.Support()
	wd, err := derived.Weights(lo, hi)
	if err != nil {
		t.Fatalf("derived Weights: %v", err)
	}
	wf, err := fresh.Weights(lo, hi)
	if err != nil {
		t.Fatalf("fresh Weights: %v", err)
	}
	if len(wd) != len(wf) {
		t.Fatalf("(%d,%d): %d delta weight entries vs %d fresh", derived.N(), derived.C(), len(wd), len(wf))
	}
	for i := range wd {
		for l := range wd[i].W {
			if math.Abs(wd[i].W[l]-wf[i].W[l]) > tol || math.Abs(wd[i].W0[l]-wf[i].W0[l]) > tol {
				t.Errorf("(%d,%d) weights[%d][%d]: delta (%g, %g) vs fresh (%g, %g)",
					derived.N(), derived.C(), i, l, wd[i].W[l], wd[i].W0[l], wf[i].W[l], wf[i].W0[l])
			}
		}
	}
}

// TestNeighborMatchesFresh sweeps (N, C, dist family, receiver mode,
// inference mode) and checks every ±1 neighbor of every grid point against
// a from-scratch engine.
func TestNeighborMatchesFresh(t *testing.T) {
	t.Parallel()
	dists := familyGridDists(t)
	steps := [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}, {1, 1}, {-1, -1}, {1, -1}, {-1, 1}}
	for _, nc := range [][2]int{{20, 1}, {40, 8}, {300, 120}} {
		for _, opts := range [][]Option{
			nil,
			{WithUncompromisedReceiver()},
			{WithInference(InferenceFullPosition)},
			{WithoutSenderSelfReport()},
		} {
			root, err := New(nc[0], nc[1], opts...)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range steps {
				nb, err := root.Neighbor(s[0], s[1])
				if err != nil {
					t.Fatal(err)
				}
				fresh, err := New(nb.N(), nb.C(), opts...)
				if err != nil {
					t.Fatal(err)
				}
				for _, d := range dists {
					requireClose(t, nb, fresh, d)
				}
			}
		}
	}
}

// TestNeighborWalkMatchesFresh chains ±1 and ±k Neighbor steps and checks
// that accuracy does not degrade with walk length (the delta path is table
// reuse, not iterative accumulation).
func TestNeighborWalkMatchesFresh(t *testing.T) {
	t.Parallel()
	dists := familyGridDists(t)
	e, err := New(60, 5)
	if err != nil {
		t.Fatal(err)
	}
	walk := [][2]int{{1, 1}, {1, 1}, {1, 1}, {-1, 0}, {-1, 0}, {0, -1}, {5, 3}, {-3, -6}, {40, 10}, {1, 1}}
	for _, s := range walk {
		if e, err = e.Neighbor(s[0], s[1]); err != nil {
			t.Fatal(err)
		}
		fresh, err := New(e.N(), e.C())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range dists {
			requireClose(t, e, fresh, d)
		}
	}
}

// TestNeighborRootUsesFamily pins that the derivation root itself switches
// to the shared tables (its later queries must agree with its pre-family
// memo and with a fresh engine).
func TestNeighborRootUsesFamily(t *testing.T) {
	t.Parallel()
	u, err := dist.NewUniform(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	root, err := New(50, 6)
	if err != nil {
		t.Fatal(err)
	}
	before, err := root.AnonymityDegree(u)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := root.Neighbor(1, 0); err != nil {
		t.Fatal(err)
	}
	after, err := root.AnonymityDegree(u)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Errorf("root H changed after Neighbor: %v vs %v (memo must win)", before, after)
	}
	g, err := dist.NewGeometric(0.4, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := New(50, 6)
	if err != nil {
		t.Fatal(err)
	}
	requireClose(t, root, fresh, g)
}

// TestNeighborValidation exercises the error paths.
func TestNeighborValidation(t *testing.T) {
	t.Parallel()
	e, err := New(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range [][2]int{{-9, 0}, {0, 8}, {-8, 2}} {
		if _, err := e.Neighbor(s[0], s[1]); err == nil {
			t.Errorf("Neighbor(%d,%d): want error, got nil", s[0], s[1])
		}
	}
	hc, err := New(10, 1, WithInference(InferenceHopCount))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hc.Neighbor(0, 1); err == nil {
		t.Error("hop-count Neighbor to c=2: want error, got nil")
	}
	nb, err := hc.Neighbor(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Hop-count inference never consults the family tables; the derived
	// engine must still agree with a fresh one.
	u, err := dist.NewUniform(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := New(11, 1, WithInference(InferenceHopCount))
	if err != nil {
		t.Fatal(err)
	}
	hd, err := nb.AnonymityDegree(u)
	if err != nil {
		t.Fatal(err)
	}
	hf, err := fresh.AnonymityDegree(u)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hd-hf) > 1e-12 {
		t.Errorf("hop-count neighbor: %v vs fresh %v", hd, hf)
	}
}

// TestNeighborConcurrent hammers one family from many goroutines — derive,
// extend (growing C forces lazy k-range extension), and query concurrently.
// Run with -race; it also cross-checks every result against fresh engines.
func TestNeighborConcurrent(t *testing.T) {
	t.Parallel()
	dists := familyGridDists(t)
	root, err := New(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 16
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker walks to its own (N, C) so table extension and
			// evaluation interleave across the shared family.
			nb, err := root.Neighbor(w, (w*7)%40)
			if err != nil {
				errs[w] = err
				return
			}
			for _, d := range dists {
				hd, err := nb.AnonymityDegree(d)
				if err != nil {
					errs[w] = err
					return
				}
				fresh, err := New(nb.N(), nb.C())
				if err != nil {
					errs[w] = err
					return
				}
				hf, err := fresh.AnonymityDegree(d)
				if err != nil {
					errs[w] = err
					return
				}
				if math.Abs(hd-hf) > 1e-12 {
					errs[w] = fmt.Errorf("worker %d (%d,%d): delta %v vs fresh %v", w, nb.N(), nb.C(), hd, hf)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}
