package events_test

// Equivalence tests for the counted-bucket engine: everything the bucketed
// aggregation path computes must match the Θ(3^C) per-class enumeration
// wherever the enumeration is still feasible (C ≤ 12), across distribution
// families, receiver assumptions, and inference modes.

import (
	"errors"
	"math"
	"testing"
	"time"

	"anonmix/internal/dist"
	"anonmix/internal/events"
	"anonmix/internal/pool"
	"anonmix/internal/stats"
)

// equivalenceDists is the distribution-family grid of the equivalence
// sweep. Supports stay ≤ 12 so the c = 10..12 class spaces (up to ~800k
// concrete classes) remain enumerable in test time.
func equivalenceDists(t *testing.T) []dist.Length {
	t.Helper()
	geom, err := dist.NewGeometric(0.75, 1, 12)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := dist.NewTwoPoint(3, 11, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	poi, err := dist.NewPoisson(5, 0, 12)
	if err != nil {
		t.Fatal(err)
	}
	return []dist.Length{
		mustFixed(t, 7),
		mustUniform(t, 2, 12),
		geom,
		tp,
		poi,
	}
}

// enumeratedDegree recomputes H*(S) from the per-class enumeration — the
// pre-bucketing reference implementation of AnonymityDegree.
func enumeratedDegree(t *testing.T, e *events.Engine, d dist.Length) float64 {
	t.Helper()
	all, err := e.ClassStats(d)
	if err != nil {
		t.Fatal(err)
	}
	var h float64
	for _, st := range all {
		h += st.P * st.H
	}
	return h * float64(e.N()-e.C()) / float64(e.N())
}

// TestBucketedMatchesEnumeratedDegree sweeps every C the enumeration can
// still reach across the distribution-family grid, both receiver options,
// and both aggregate inference modes, asserting the bucketed
// AnonymityDegree agrees with the enumerated sum to ≤ 1e-12.
func TestBucketedMatchesEnumeratedDegree(t *testing.T) {
	ds := equivalenceDists(t)
	modes := []events.InferenceMode{events.InferenceStandard, events.InferenceFullPosition}
	for c := 0; c <= 10; c++ {
		for _, recv := range []bool{true, false} {
			for _, mode := range modes {
				opts := []events.Option{events.WithInference(mode)}
				if !recv {
					opts = append(opts, events.WithUncompromisedReceiver())
				}
				e := mustEngine(t, 40, c, opts...)
				for _, d := range ds {
					got, err := e.AnonymityDegree(d)
					if err != nil {
						t.Fatal(err)
					}
					want := enumeratedDegree(t, e, d)
					if math.Abs(got-want) > 1e-12 {
						t.Errorf("c=%d recv=%v mode=%v %s: bucketed %.15f, enumerated %.15f (Δ=%.3g)",
							c, recv, mode, d, got, want, got-want)
					}
				}
			}
		}
	}
	// The top of the enumerable range (c = 11, 12 ≈ 265k / 797k concrete
	// classes) gets one configuration per c to bound test time.
	for _, c := range []int{11, 12} {
		for _, mode := range modes {
			e := mustEngine(t, 40, c, events.WithInference(mode))
			d := mustUniform(t, 2, 10)
			got, err := e.AnonymityDegree(d)
			if err != nil {
				t.Fatal(err)
			}
			want := enumeratedDegree(t, e, d)
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("c=%d mode=%v: bucketed %.15f, enumerated %.15f", c, mode, got, want)
			}
		}
	}
}

// bucketOf maps a concrete class to its shape bucket.
func bucketOf(cl events.Class) events.Bucket {
	if cl.Empty() {
		return events.Bucket{}
	}
	b := events.Bucket{K: cl.K(), Runs: len(cl.Runs), Tail: cl.Tail}
	for _, g := range cl.Gaps {
		if g == events.GapWide {
			b.Wide++
		}
	}
	return b
}

// TestBucketStatsMatchGroupedClassStats groups the enumerated per-class
// statistics by shape bucket and checks, bucket by bucket, the closed-form
// multiplicity, the aggregated probability mass, and the shared per-class
// posterior (Alpha, Rest, H).
func TestBucketStatsMatchGroupedClassStats(t *testing.T) {
	for _, tc := range []struct {
		c    int
		recv bool
		mode events.InferenceMode
	}{
		{3, true, events.InferenceStandard},
		{6, true, events.InferenceStandard},
		{6, false, events.InferenceStandard},
		{5, true, events.InferenceFullPosition},
	} {
		opts := []events.Option{events.WithInference(tc.mode)}
		if !tc.recv {
			opts = append(opts, events.WithUncompromisedReceiver())
		}
		e := mustEngine(t, 30, tc.c, opts...)
		d := mustUniform(t, 0, 14)
		classes, err := e.ClassStats(d)
		if err != nil {
			t.Fatal(err)
		}
		type group struct {
			p     float64
			n     int
			first events.Stats
		}
		groups := make(map[events.Bucket]*group)
		for _, st := range classes {
			b := bucketOf(st.Class)
			g, ok := groups[b]
			if !ok {
				groups[b] = &group{p: st.P, n: 1, first: st}
				continue
			}
			g.p += st.P
			g.n++
			// Every member of a bucket must carry the identical posterior.
			if st.Rest != g.first.Rest || math.Abs(st.Alpha-g.first.Alpha) > 1e-12 ||
				math.Abs(st.H-g.first.H) > 1e-12 {
				t.Errorf("c=%d: classes %s and %s share bucket %s but differ: %+v vs %+v",
					tc.c, st.Class, g.first.Class, b, st, g.first)
			}
		}
		buckets, err := e.BucketStats(d)
		if err != nil {
			t.Fatal(err)
		}
		seen := 0
		for _, bs := range buckets {
			g, ok := groups[bs.Bucket]
			if !ok {
				if bs.P != 0 {
					t.Errorf("c=%d: bucket %s has mass %v but no enumerated classes", tc.c, bs.Bucket, bs.P)
				}
				continue
			}
			seen++
			if float64(g.n) != bs.Count {
				t.Errorf("c=%d bucket %s: %d enumerated classes, Count = %v", tc.c, bs.Bucket, g.n, bs.Count)
			}
			if math.Abs(bs.P-g.p) > 1e-12 {
				t.Errorf("c=%d bucket %s: aggregated P %v, enumerated Σ %v", tc.c, bs.Bucket, bs.P, g.p)
			}
			if g.p > 0 {
				if bs.Rest != g.first.Rest || math.Abs(bs.Alpha-g.first.Alpha) > 1e-12 ||
					math.Abs(bs.H-g.first.H) > 1e-12 {
					t.Errorf("c=%d bucket %s: posterior %+v, per-class %+v", tc.c, bs.Bucket, bs, g.first)
				}
			}
		}
		// Buckets with k ≤ support-hi must all be present (the enumeration
		// also lists k beyond the support with zero mass; those have no
		// bucket counterpart and carry no information).
		if seen == 0 {
			t.Fatalf("c=%d: no buckets matched", tc.c)
		}
	}
}

// TestBucketedWeightsMatchEnumeratedDegree drives the Count-weighted
// objective reconstruction from Weights across random mass functions and
// checks it against the enumerated reference, tying the optimizer's
// decomposition to the pre-bucketing ground truth.
func TestBucketedWeightsMatchEnumeratedDegree(t *testing.T) {
	rng := stats.NewRand(20260730)
	for _, c := range []int{2, 5, 9} {
		e := mustEngine(t, 35, c)
		weights, err := e.Weights(0, 16)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 6; trial++ {
			d, err := randomPMF(rng, 16)
			if err != nil {
				t.Fatal(err)
			}
			var h float64
			for _, cw := range weights {
				var sp, sp0 float64
				for l := 0; l <= 16; l++ {
					p := d.PMF(l)
					sp += cw.W[l] * p
					sp0 += cw.W0[l] * p
				}
				if sp <= 0 {
					continue
				}
				alpha := sp0 / sp
				var f float64
				switch {
				case cw.UniformOverAll:
					f = math.Log2(float64(cw.Rest))
				case cw.Rest <= 0:
					f = 0
				case alpha >= 1:
					f = 0
				case alpha <= 0:
					f = math.Log2(float64(cw.Rest))
				default:
					q := 1 - alpha
					f = -alpha*math.Log2(alpha) - q*math.Log2(q/float64(cw.Rest))
				}
				h += cw.Count * sp * f
			}
			h *= float64(35-c) / 35
			want := enumeratedDegree(t, e, d)
			if math.Abs(h-want) > 1e-12 {
				t.Errorf("c=%d trial %d: weights objective %.15f, enumerated %.15f", c, trial, h, want)
			}
		}
	}
}

// TestBucketCountsSumToClassCount pins the multiplicity algebra: summing
// C(k−1,m−1)·C(m−1,j₂) over all buckets with k ≤ C (times the tail-flag
// count) must reproduce the exact enumeration size.
func TestBucketCountsSumToClassCount(t *testing.T) {
	for c := 0; c <= 9; c++ {
		for _, recv := range []bool{true, false} {
			e := mustEngine(t, 50, c)
			if !recv {
				e = mustEngine(t, 50, c, events.WithUncompromisedReceiver())
			}
			d := mustUniform(t, 0, 49) // support covers every k ≤ c
			buckets, err := e.BucketStats(d)
			if err != nil {
				t.Fatal(err)
			}
			var total float64
			for _, bs := range buckets {
				total += bs.Count
			}
			want := float64(len(events.Enumerate(c, recv)))
			if total != want {
				t.Errorf("c=%d recv=%v: Σ Count = %v, Enumerate size %v", c, recv, total, want)
			}
		}
	}
}

// TestBucketStatsRejectsHopCount: the hop-count classes carry exact tail
// gaps and have no shape buckets.
func TestBucketStatsRejectsHopCount(t *testing.T) {
	e := mustEngine(t, 50, 1, events.WithInference(events.InferenceHopCount))
	if _, err := e.BucketStats(mustFixed(t, 5)); !errors.Is(err, events.ErrInvalidSystem) {
		t.Errorf("BucketStats under hop-count err = %v, want ErrInvalidSystem", err)
	}
}

// TestLargeCDegreeFast is the acceptance gate of the bucketed engine: the
// configuration the exponential path could never touch (N = 1000, C = 400,
// 40% corruption) must evaluate exactly, agree with the partition-of-unity
// check, and complete in well under a second on a single worker.
func TestLargeCDegreeFast(t *testing.T) {
	prev := pool.SetWorkers(1)
	defer pool.SetWorkers(prev)
	start := time.Now()
	e := mustEngine(t, 1000, 400)
	d := mustUniform(t, 2, 20)
	h, err := e.AnonymityDegree(d)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("large-C degree took %v, want < 1s single-core", elapsed)
	}
	if h <= 0 || h >= e.MaxAnonymity() {
		t.Errorf("H* = %v outside (0, log2 N)", h)
	}
	// 40% corruption must cost anonymity relative to a C = 40 system.
	small := mustEngine(t, 1000, 40)
	hs, err := small.AnonymityDegree(d)
	if err != nil {
		t.Fatal(err)
	}
	if !(h < hs) {
		t.Errorf("H*(C=400) = %v should be below H*(C=40) = %v", h, hs)
	}
}

// TestBucketedDegreeMonotoneInC extends the more-compromised-is-worse
// invariant far beyond the old C ≤ 12 cap.
func TestBucketedDegreeMonotoneInC(t *testing.T) {
	d := mustUniform(t, 2, 20)
	prev := math.Inf(1)
	for _, c := range []int{0, 5, 12, 13, 20, 40, 80, 160, 320, 640, 999, 1000} {
		e := mustEngine(t, 1000, c)
		h, err := e.AnonymityDegree(d)
		if err != nil {
			t.Fatal(err)
		}
		if h > prev+1e-12 {
			t.Errorf("c=%d: H* = %v > previous %v; more compromised nodes should not help", c, h, prev)
		}
		prev = h
	}
	// The fully compromised system is degenerate but well-defined: every
	// sender is the adversary's, so H* short-circuits to exactly 0.
	if prev != 0 {
		t.Errorf("H*(C=N) = %v, want exactly 0", prev)
	}
}
