package events_test

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"anonmix/internal/dist"
	"anonmix/internal/entropy"
	"anonmix/internal/events"
	"anonmix/internal/stats"
	"anonmix/internal/theory"
)

func mustEngine(t *testing.T, n, c int, opts ...events.Option) *events.Engine {
	t.Helper()
	e, err := events.New(n, c, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func mustFixed(t *testing.T, l int) dist.Fixed {
	t.Helper()
	f, err := dist.NewFixed(l)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func mustUniform(t *testing.T, a, b int) dist.Uniform {
	t.Helper()
	u, err := dist.NewUniform(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		n, c int
		want error
	}{
		{1, 0, events.ErrInvalidSystem},
		{0, 0, events.ErrInvalidSystem},
		{10, -1, events.ErrInvalidSystem},
		{10, 11, events.ErrInvalidSystem},
	}
	for _, c := range cases {
		if _, err := events.New(c.n, c.c); !errors.Is(err, c.want) {
			t.Errorf("New(%d,%d) err = %v, want %v", c.n, c.c, err, c.want)
		}
	}
	if _, err := events.New(100, 1); err != nil {
		t.Errorf("New(100,1) err = %v", err)
	}
	// The old Θ(3^C) engine refused c > 12 outright; the counted-bucket
	// engine accepts any c ≤ n and only the per-class enumeration keeps
	// the bound.
	e, err := events.New(100, 13)
	if err != nil {
		t.Fatalf("New(100,13) err = %v; bucketed engine must accept large c", err)
	}
	if _, err := e.AnonymityDegree(mustUniform(t, 2, 20)); err != nil {
		t.Errorf("AnonymityDegree at c=13 err = %v", err)
	}
	if _, err := e.ClassStats(mustUniform(t, 2, 20)); !errors.Is(err, events.ErrTooManyClasses) {
		t.Errorf("ClassStats at c=13 err = %v, want ErrTooManyClasses", err)
	}
	if _, err := events.New(1000, 400); err != nil {
		t.Errorf("New(1000,400) err = %v", err)
	}
}

func TestSupportTooLong(t *testing.T) {
	e := mustEngine(t, 10, 1)
	if _, err := e.AnonymityDegree(mustFixed(t, 10)); !errors.Is(err, events.ErrSupportTooLong) {
		t.Errorf("err = %v, want ErrSupportTooLong", err)
	}
	if _, err := e.AnonymityDegree(mustFixed(t, 9)); err != nil {
		t.Errorf("F(9) on n=10 should be valid: %v", err)
	}
}

func TestEnumerateCounts(t *testing.T) {
	// 1 empty class + Σ_{k=1..c} 3^(k−1) compositions·gap-flag combos × 3 tails.
	for c := 0; c <= 6; c++ {
		want := 1
		for k := 1; k <= c; k++ {
			p := 1
			for i := 1; i < k; i++ {
				p *= 3
			}
			want += 3 * p
		}
		got := events.Enumerate(c, true)
		if len(got) != want {
			t.Errorf("Enumerate(%d, true): %d classes, want %d", c, len(got), want)
		}
		seen := make(map[string]bool, len(got))
		for _, cl := range got {
			s := cl.String()
			if seen[s] {
				t.Errorf("Enumerate(%d): duplicate class %s", c, s)
			}
			seen[s] = true
		}
	}
	// Uncompromised receiver: 2 tail flags instead of 3.
	got := events.Enumerate(2, false)
	want := 1 + 2 + 2*2 // empty + [1]×2 tails + ([2] and [1,1]×2 gaps)×2 tails
	want = 1 + 1*2 + (1+2)*2
	if len(got) != want {
		t.Errorf("Enumerate(2,false): %d classes, want %d", len(got), want)
	}
}

func TestClassString(t *testing.T) {
	cl := events.Class{
		Runs: []int{2, 1},
		Gaps: []events.GapFlag{events.GapOne},
		Tail: events.TailWide,
	}
	if got := cl.String(); got != "[2]-1-[1]-t2+" {
		t.Errorf("String = %q", got)
	}
	if got := (events.Class{}).String(); got != "[none]" {
		t.Errorf("empty String = %q", got)
	}
}

func TestClassStatsSumToOne(t *testing.T) {
	for _, c := range []int{0, 1, 2, 3, 5} {
		e := mustEngine(t, 40, c)
		for _, d := range []dist.Length{mustFixed(t, 7), mustUniform(t, 0, 20), mustUniform(t, 3, 30)} {
			stats, err := e.ClassStats(d)
			if err != nil {
				t.Fatalf("c=%d %s: %v", c, d, err)
			}
			var sum float64
			for _, st := range stats {
				if st.P < 0 || st.P > 1+1e-12 {
					t.Errorf("c=%d %s: class %s has P=%v", c, d, st.Class, st.P)
				}
				if st.Alpha < 0 || st.Alpha > 1+1e-12 {
					t.Errorf("c=%d %s: class %s has Alpha=%v", c, d, st.Class, st.Alpha)
				}
				sum += st.P
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("c=%d %s: ΣP = %v", c, d, sum)
			}
		}
	}
}

// TestMatchesTheoremOne cross-validates the engine against the independent
// closed-form re-derivation of Theorem 1 across the full length range.
func TestMatchesTheoremOne(t *testing.T) {
	for _, n := range []int{10, 50, 100, 250} {
		e := mustEngine(t, n, 1)
		for l := 0; l <= n-1; l += 1 + n/40 {
			want, err := theory.FixedSimpleC1(n, l)
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.AnonymityDegree(mustFixed(t, l))
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("n=%d l=%d: engine %.12f, theorem %.12f", n, l, got, want)
			}
		}
	}
}

// TestMatchesC1ClosedForm cross-validates the engine against the direct
// five-event-group formula for arbitrary C=1 distributions.
func TestMatchesC1ClosedForm(t *testing.T) {
	n := 64
	e := mustEngine(t, n, 1)
	geom, err := dist.NewGeometric(0.8, 1, n-1)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := dist.NewTwoPoint(2, 40, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	poi, err := dist.NewPoisson(9, 1, n-1)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []dist.Length{
		mustUniform(t, 0, 10), mustUniform(t, 1, 1), mustUniform(t, 4, 60),
		geom, tp, poi,
	} {
		want, err := theory.C1(n, d)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.AnonymityDegree(d)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: engine %.12f, closed form %.12f", d, got, want)
		}
	}
}

// TestShortPathEffect reproduces the paper's Figure 3(b) structure:
// H*(F(1)) = H*(F(2)), a dip at l = 3, and a rise at l = 4.
func TestShortPathEffect(t *testing.T) {
	e := mustEngine(t, 100, 1)
	h := make([]float64, 6)
	for l := 0; l <= 5; l++ {
		var err error
		h[l], err = e.AnonymityDegree(mustFixed(t, l))
		if err != nil {
			t.Fatal(err)
		}
	}
	if h[0] != 0 {
		t.Errorf("H*(F(0)) = %v, want 0 (sender exposed)", h[0])
	}
	if math.Abs(h[1]-h[2]) > 1e-12 {
		t.Errorf("H*(F(1)) = %v ≠ H*(F(2)) = %v; paper: identical", h[1], h[2])
	}
	if !(h[3] < h[2]) {
		t.Errorf("want H*(F(3)) < H*(F(2)): %v vs %v", h[3], h[2])
	}
	if !(h[4] > h[3] && h[4] > h[2]) {
		t.Errorf("want H*(F(4)) > F(3), F(2): %v %v %v", h[4], h[3], h[2])
	}
}

// TestLongPathEffect reproduces Figure 3(a): the anonymity degree rises,
// peaks at an interior length, then decreases as the path covers the clique.
func TestLongPathEffect(t *testing.T) {
	e := mustEngine(t, 100, 1)
	var hMax float64
	var argMax int
	h := make(map[int]float64)
	for l := 3; l <= 99; l++ {
		v, err := e.AnonymityDegree(mustFixed(t, l))
		if err != nil {
			t.Fatal(err)
		}
		h[l] = v
		if v > hMax {
			hMax, argMax = v, l
		}
	}
	if argMax <= 10 || argMax >= 95 {
		t.Errorf("peak at l=%d; want an interior peak (long-path effect)", argMax)
	}
	if !(h[99] < hMax-1e-6) {
		t.Errorf("H*(F(99)) = %v should be below peak %v", h[99], hMax)
	}
	// The curve should be unimodal: nonincreasing after the peak.
	for l := argMax; l < 99; l++ {
		if h[l+1] > h[l]+1e-12 {
			t.Errorf("not unimodal after peak: H(%d)=%v < H(%d)=%v", l, h[l], l+1, h[l+1])
		}
	}
}

// TestMeanOnlyTheorem reproduces Theorem 3 / conclusion 2: for uniform
// lower bound ≥ 3 the anonymity degree depends only on the mean, and equals
// the fixed-length strategy at the same mean.
func TestMeanOnlyTheorem(t *testing.T) {
	e := mustEngine(t, 100, 1)
	for _, tc := range []struct{ a1, b1, a2, b2 int }{
		{4, 36, 10, 30}, // both mean 20
		{3, 5, 4, 4},    // both mean 4
		{5, 95, 25, 75}, // both mean 50
		{6, 14, 3, 17},  // both mean 10
	} {
		u1 := mustUniform(t, tc.a1, tc.b1)
		u2 := mustUniform(t, tc.a2, tc.b2)
		h1, err := e.AnonymityDegree(u1)
		if err != nil {
			t.Fatal(err)
		}
		h2, err := e.AnonymityDegree(u2)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(h1-h2) > 1e-10 {
			t.Errorf("%s vs %s: %v ≠ %v (same mean should match)", u1, u2, h1, h2)
		}
		f := mustFixed(t, int(u1.Mean()))
		hf, err := e.AnonymityDegree(f)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(h1-hf) > 1e-10 {
			t.Errorf("%s vs %s: %v ≠ %v (uniform should equal fixed at same mean)", u1, f, h1, hf)
		}
		want, err := theory.MeanOnlyC1(100, u1.Mean())
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(h1-want) > 1e-10 {
			t.Errorf("%s: engine %v, MeanOnlyC1 %v", u1, h1, want)
		}
	}
}

// TestInequality18: with lower bound < 3 the mean-only equality breaks and
// variable-length strategies beat the fixed-length strategy at the same
// mean — the paper's Figure 5(d) and inequality (18):
//
//	H*_{U(1,2L−1)} ≥ H*_{U(2,2L−2)} ≥ H*_{U(6,2L−6)} = H*_{F(L)}.
func TestInequality18(t *testing.T) {
	e := mustEngine(t, 100, 1)
	for _, mean := range []int{6, 10, 20} {
		h := func(a int) float64 {
			u := mustUniform(t, a, 2*mean-a)
			v, err := e.AnonymityDegree(u)
			if err != nil {
				t.Fatal(err)
			}
			return v
		}
		hf, err := e.AnonymityDegree(mustFixed(t, mean))
		if err != nil {
			t.Fatal(err)
		}
		h1, h2, h6 := h(1), h(2), h(6)
		if !(h1 > h2) {
			t.Errorf("mean %d: want H*(U(1,·)) > H*(U(2,·)): %v vs %v", mean, h1, h2)
		}
		if !(h2 > h6) {
			t.Errorf("mean %d: want H*(U(2,·)) > H*(U(6,·)): %v vs %v", mean, h2, h6)
		}
		if math.Abs(h6-hf) > 1e-10 {
			t.Errorf("mean %d: want H*(U(6,·)) = H*(F): %v vs %v", mean, h6, hf)
		}
	}
}

// TestUpperBound verifies conclusion 4: H*(S) ≤ log2 N for every strategy,
// with equality approached only without compromised infrastructure.
func TestUpperBound(t *testing.T) {
	for _, n := range []int{10, 64, 100} {
		for _, c := range []int{0, 1, 2, 4} {
			e := mustEngine(t, n, c)
			for _, d := range []dist.Length{mustFixed(t, 5), mustUniform(t, 0, n/2)} {
				h, err := e.AnonymityDegree(d)
				if err != nil {
					t.Fatal(err)
				}
				if h < 0 || h > entropy.Max(n)+1e-12 {
					t.Errorf("n=%d c=%d %s: H* = %v outside [0, %v]", n, c, d, h, entropy.Max(n))
				}
			}
		}
	}
	// No compromised nodes, uncompromised receiver: exactly log2 N.
	e := mustEngine(t, 128, 0, events.WithUncompromisedReceiver())
	h, err := e.AnonymityDegree(mustFixed(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-7) > 1e-12 {
		t.Errorf("pristine system: H* = %v, want 7 = log2 128", h)
	}
	// No compromised nodes but compromised receiver: log2(N−1) for l ≥ 1.
	e2 := mustEngine(t, 128, 0)
	h2, err := e2.AnonymityDegree(mustFixed(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h2-math.Log2(127)) > 1e-12 {
		t.Errorf("receiver-only adversary: H* = %v, want log2 127", h2)
	}
}

// TestMoreCompromisedIsWorse: H* decreases as C grows, for fixed strategy.
func TestMoreCompromisedIsWorse(t *testing.T) {
	d := mustUniform(t, 3, 15)
	prev := math.Inf(1)
	for c := 0; c <= 6; c++ {
		e := mustEngine(t, 60, c)
		h, err := e.AnonymityDegree(d)
		if err != nil {
			t.Fatal(err)
		}
		if h > prev+1e-12 {
			t.Errorf("c=%d: H* = %v > previous %v; more compromised nodes should not help", c, h, prev)
		}
		prev = h
	}
}

// TestFullPositionWeaklyWorse: granting the adversary a position oracle can
// only reduce the anonymity degree.
func TestFullPositionWeaklyWorse(t *testing.T) {
	for _, c := range []int{1, 2, 3} {
		std := mustEngine(t, 50, c)
		pos := mustEngine(t, 50, c, events.WithInference(events.InferenceFullPosition))
		for _, d := range []dist.Length{mustFixed(t, 8), mustUniform(t, 2, 20)} {
			hs, err := std.AnonymityDegree(d)
			if err != nil {
				t.Fatal(err)
			}
			hp, err := pos.AnonymityDegree(d)
			if err != nil {
				t.Fatal(err)
			}
			if hp > hs+1e-12 {
				t.Errorf("c=%d %s: full-position H* %v > standard %v", c, d, hp, hs)
			}
		}
	}
}

// TestHopCountBetweenStandardAndFullPosition: for every distribution the
// hop-count adversary is at least as strong as the standard one and at
// most as strong as the position oracle; for fixed lengths hop-count and
// full-position coincide.
func TestHopCountBetweenStandardAndFullPosition(t *testing.T) {
	std := mustEngine(t, 100, 1)
	hop := mustEngine(t, 100, 1, events.WithInference(events.InferenceHopCount))
	pos := mustEngine(t, 100, 1, events.WithInference(events.InferenceFullPosition))
	geom, err := dist.NewGeometric(0.7, 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []dist.Length{
		mustFixed(t, 1), mustFixed(t, 5), mustFixed(t, 30),
		mustUniform(t, 0, 10), mustUniform(t, 1, 19), mustUniform(t, 5, 45),
		geom,
	} {
		hs, err := std.AnonymityDegree(d)
		if err != nil {
			t.Fatal(err)
		}
		hh, err := hop.AnonymityDegree(d)
		if err != nil {
			t.Fatal(err)
		}
		hp, err := pos.AnonymityDegree(d)
		if err != nil {
			t.Fatal(err)
		}
		if hh > hs+1e-12 {
			t.Errorf("%s: hop-count %v above standard %v", d, hh, hs)
		}
		if hp > hh+1e-12 {
			t.Errorf("%s: full-position %v above hop-count %v", d, hp, hh)
		}
		if _, isFixed := d.(dist.Fixed); isFixed && math.Abs(hh-hp) > 1e-12 {
			t.Errorf("%s: fixed-length hop-count %v should equal full-position %v", d, hh, hp)
		}
	}
	// Variable lengths must retain a strict advantage under hop-count:
	// U(1,19) keeps strictly more anonymity than F(10) there.
	u := mustUniform(t, 1, 19)
	f := mustFixed(t, 10)
	hu, err := hop.AnonymityDegree(u)
	if err != nil {
		t.Fatal(err)
	}
	hf, err := hop.AnonymityDegree(f)
	if err != nil {
		t.Fatal(err)
	}
	if !(hu > hf+1e-6) {
		t.Errorf("hop-count: U(1,19) = %v should clearly beat F(10) = %v (variable-length robustness)", hu, hf)
	}
}

func TestHopCountRestrictions(t *testing.T) {
	if _, err := events.New(50, 2, events.WithInference(events.InferenceHopCount)); !errors.Is(err, events.ErrTooManyClasses) {
		t.Errorf("c=2 hop-count err = %v", err)
	}
	e := mustEngine(t, 50, 1, events.WithInference(events.InferenceHopCount), events.WithUncompromisedReceiver())
	if _, err := e.AnonymityDegree(mustFixed(t, 5)); !errors.Is(err, events.ErrInvalidSystem) {
		t.Errorf("hop-count without receiver err = %v", err)
	}
}

func TestNewHopCountClass(t *testing.T) {
	if _, err := events.NewHopCountClass(-1); !errors.Is(err, events.ErrClassMismatch) {
		t.Error("negative gap accepted")
	}
	for t0, wantTail := range map[int]events.TailFlag{
		0: events.TailZero, 1: events.TailOne, 2: events.TailWide, 7: events.TailWide,
	} {
		cl, err := events.NewHopCountClass(t0)
		if err != nil {
			t.Fatal(err)
		}
		if cl.Tail != wantTail {
			t.Errorf("t=%d: tail %v, want %v", t0, cl.Tail, wantTail)
		}
		if got, ok := cl.ExactTailGap(); !ok || got != t0 {
			t.Errorf("t=%d: ExactTailGap = %d,%v", t0, got, ok)
		}
		if want := fmt.Sprintf("[1]-t=%d", t0); cl.String() != want {
			t.Errorf("String = %q, want %q", cl.String(), want)
		}
	}
	// A standard class reports no exact gap.
	if _, ok := (events.Class{Runs: []int{1}, Tail: events.TailZero}).ExactTailGap(); ok {
		t.Error("standard class claims an exact gap")
	}
}

func TestStatsForRejectsBadClasses(t *testing.T) {
	e := mustEngine(t, 30, 2)
	d := mustUniform(t, 0, 10)
	bad := []events.Class{
		{Runs: []int{3}, Tail: events.TailZero},                                // k > C
		{Runs: []int{1, 1}, Tail: events.TailZero},                             // missing gap flag
		{Runs: []int{0}, Tail: events.TailZero},                                // zero-length run
		{Runs: []int{1}, Tail: events.TailFlag(99)},                            // bad tail
		{Runs: []int{1, 1}, Gaps: []events.GapFlag{99}, Tail: events.TailZero}, // bad gap
	}
	for _, cl := range bad {
		if _, err := e.StatsFor(cl, d); !errors.Is(err, events.ErrClassMismatch) {
			t.Errorf("class %+v: err = %v, want ErrClassMismatch", cl, err)
		}
	}
	good := events.Class{Runs: []int{1}, Tail: events.TailOne}
	if _, err := e.StatsFor(good, d); err != nil {
		t.Errorf("valid class rejected: %v", err)
	}
}

// TestStatsForMatchesClassStats: querying a class individually returns the
// same numbers as bulk enumeration.
func TestStatsForMatchesClassStats(t *testing.T) {
	e := mustEngine(t, 40, 3)
	d := mustUniform(t, 0, 20)
	all, err := e.ClassStats(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range all {
		got, err := e.StatsFor(st.Class, d)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.P-st.P) > 1e-12 || math.Abs(got.Alpha-st.Alpha) > 1e-12 ||
			got.Rest != st.Rest || math.Abs(got.H-st.H) > 1e-12 {
			t.Errorf("class %s: StatsFor %+v, ClassStats %+v", st.Class, got, st)
		}
	}
}

func TestModeAndAccessors(t *testing.T) {
	e := mustEngine(t, 100, 2)
	if e.N() != 100 || e.C() != 2 {
		t.Errorf("accessors: N=%d C=%d", e.N(), e.C())
	}
	if e.Mode() != events.InferenceStandard {
		t.Errorf("default mode = %v", e.Mode())
	}
	if math.Abs(e.MaxAnonymity()-math.Log2(100)) > 1e-12 {
		t.Errorf("MaxAnonymity = %v", e.MaxAnonymity())
	}
	for _, m := range []events.InferenceMode{events.InferenceStandard, events.InferenceFullPosition, events.InferenceMode(9)} {
		_ = m.String()
	}
	for _, g := range []events.GapFlag{events.GapOne, events.GapWide, events.GapFlag(9)} {
		_ = g.String()
	}
	for _, tf := range []events.TailFlag{events.TailZero, events.TailOne, events.TailWide, events.TailUnobserved, events.TailFlag(9)} {
		_ = tf.String()
	}
}

// TestPaperConfiguration pins the headline numbers for the paper's N=100,
// C=1 configuration so regressions in the engine are caught immediately.
// The l = 1,2 value (N−2)/N·log2(N−2) ≈ 6.48242 matches Figure 3(b)'s
// y-axis; see EXPERIMENTS.md for the full comparison.
func TestPaperConfiguration(t *testing.T) {
	e := mustEngine(t, 100, 1)
	h1, err := e.AnonymityDegree(mustFixed(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	want := 98.0 / 100 * math.Log2(98)
	if math.Abs(h1-want) > 1e-12 {
		t.Errorf("H*(F(1)) = %.10f, want %.10f", h1, want)
	}
	if h1 < 6.48 || h1 > 6.49 {
		t.Errorf("H*(F(1)) = %v outside the paper's Figure 3(b) band", h1)
	}
}

// TestRandomConfigurationsBounded: quick-check the entropy bounds and the
// partition-of-unity invariant across random systems and distributions.
func TestRandomConfigurationsBounded(t *testing.T) {
	rng := stats.NewRand(4242)
	for trial := 0; trial < 60; trial++ {
		n := 6 + rng.Intn(80)
		c := rng.Intn(5)
		if c > n-2 {
			c = n - 2
		}
		e := mustEngine(t, n, c)
		a := rng.Intn(n - 1)
		b := a + rng.Intn(n-a)
		if b > n-1 {
			b = n - 1
		}
		u := mustUniform(t, a, b)
		stats, err := e.ClassStats(u)
		if err != nil {
			t.Fatalf("n=%d c=%d %s: %v", n, c, u, err)
		}
		var sum float64
		for _, st := range stats {
			sum += st.P
			if st.H < -1e-12 || st.H > entropy.Max(n)+1e-12 {
				t.Fatalf("n=%d c=%d %s class %s: H=%v", n, c, u, st.Class, st.H)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("n=%d c=%d %s: ΣP=%v", n, c, u, sum)
		}
		h, err := e.AnonymityDegree(u)
		if err != nil {
			t.Fatal(err)
		}
		if h < 0 || h > entropy.Max(n) {
			t.Fatalf("n=%d c=%d %s: H*=%v", n, c, u, h)
		}
	}
}

func ExampleEngine_AnonymityDegree() {
	e, err := events.New(100, 1)
	if err != nil {
		panic(err)
	}
	f, err := dist.NewFixed(5)
	if err != nil {
		panic(err)
	}
	h, err := e.AnonymityDegree(f)
	if err != nil {
		panic(err)
	}
	fmt.Printf("H*(F(5)) with N=100, C=1: %.4f bits (max %.4f)\n", h, e.MaxAnonymity())
	// Output: H*(F(5)) with N=100, C=1: 6.5092 bits (max 6.6439)
}
