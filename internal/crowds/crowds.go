// Package crowds implements the Crowds protocol of Reiter and Rubin (1998)
// as surveyed in §2 of Guan et al.: each jondo, upon receiving a request,
// forwards it to a uniformly random jondo with probability pf and submits
// it to the receiver otherwise, producing the geometric path-length
// distribution of the paper's Formula (12) with cycles allowed.
//
// The package also provides the classical predecessor analysis: the
// probability that the node a collaborator first sees is the true
// initiator, the probable-innocence condition, and the entropy of the
// resulting posterior — the baseline against which the paper's exact
// simple-path analysis is compared.
package crowds

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"anonmix/internal/combin"
	"anonmix/internal/entropy"
	"anonmix/internal/simnet"
	"anonmix/internal/stats"
	"anonmix/internal/trace"
)

// ErrBadParam reports an out-of-domain protocol parameter.
var ErrBadParam = errors.New("crowds: invalid parameter")

// Forwarder implements the jondo forwarding rule on the simnet testbed.
// It is safe for concurrent use by the testbed's node goroutines.
type Forwarder struct {
	n  int
	pf float64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewForwarder returns a Crowds forwarder for n jondos with forwarding
// probability pf ∈ [0, 1).
func NewForwarder(n int, pf float64, seed int64) (*Forwarder, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: n = %d", ErrBadParam, n)
	}
	if pf < 0 || pf >= 1 || math.IsNaN(pf) {
		return nil, fmt.Errorf("%w: pf = %v", ErrBadParam, pf)
	}
	return &Forwarder{n: n, pf: pf, rng: stats.NewRand(seed)}, nil
}

// Next implements simnet.Forwarder: with probability pf the packet goes to
// a uniformly random jondo (possibly this one — Reiter–Rubin allow
// self-selection), otherwise to the receiver.
func (f *Forwarder) Next(_ trace.NodeID, _ *simnet.Packet) (trace.NodeID, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.rng.Float64() >= f.pf {
		return trace.Receiver, nil
	}
	return trace.NodeID(f.rng.Intn(f.n)), nil
}

// FirstHop draws the initiator's mandatory first forwarding choice (the
// initiator always forwards at least once; the coin applies afterwards).
// Like every hop, the choice is uniform over all jondos.
func (f *Forwarder) FirstHop(_ trace.NodeID) trace.NodeID {
	f.mu.Lock()
	defer f.mu.Unlock()
	return trace.NodeID(f.rng.Intn(f.n))
}

// PredecessorProb returns the probability that the immediate predecessor
// observed by the first collaborating jondo on a path is the true
// initiator, conditioned on at least one collaborator joining the path
// (Reiter–Rubin's P(H1 | H1+)):
//
//	P = 1 − pf·(n−c−1)/n
//
// derived for n jondos of which c collaborate and forwarding probability
// pf, with the uniform next-jondo choice over all n members.
func PredecessorProb(n, c int, pf float64) (float64, error) {
	if n < 2 || c < 0 || c >= n {
		return 0, fmt.Errorf("%w: n=%d c=%d", ErrBadParam, n, c)
	}
	if pf < 0 || pf >= 1 || math.IsNaN(pf) {
		return 0, fmt.Errorf("%w: pf=%v", ErrBadParam, pf)
	}
	return 1 - pf*float64(n-c-1)/float64(n), nil
}

// ProbableInnocence reports whether the configuration satisfies
// Reiter–Rubin probable innocence: the first collaborator's predecessor is
// the initiator with probability at most 1/2, which requires pf > 1/2 and
//
//	n ≥ pf/(pf − 1/2) · (c + 1).
func ProbableInnocence(n, c int, pf float64) (bool, error) {
	p, err := PredecessorProb(n, c, pf)
	if err != nil {
		return false, err
	}
	return p <= 0.5, nil
}

// EventEntropy returns the Shannon entropy (bits) of the sender posterior
// given the first-collaborator observation: the predecessor carries
// PredecessorProb and the remaining mass spreads over the other n−c−1
// honest jondos.
func EventEntropy(n, c int, pf float64) (float64, error) {
	p, err := PredecessorProb(n, c, pf)
	if err != nil {
		return 0, err
	}
	return entropy.SpikeAndSlab(p, n-c-1), nil
}

// OnPathProb returns the probability that at least one of c collaborators
// appears among the l distinct intermediates of a simple rerouting path
// drawn by an honest sender in an n-node system:
//
//	1 − C(n−1−c, l)/C(n−1, l)
//
// evaluated through the shared log-combinatorics table. This is the bridge
// between the Crowds predecessor analysis and the paper's simple-path
// model: it is the weight of the "adversary sees a relay report" branch
// that the class engine refines into run/gap signatures.
func OnPathProb(n, c, l int) (float64, error) {
	if n < 2 || c < 0 || c >= n {
		return 0, fmt.Errorf("%w: n=%d c=%d", ErrBadParam, n, c)
	}
	if l < 0 || l > n-1 {
		return 0, fmt.Errorf("%w: path length %d outside [0,%d]", ErrBadParam, l, n-1)
	}
	if l > n-1-c {
		return 1, nil // more intermediates than honest nodes: a hit is forced
	}
	miss := math.Exp(combin.LogChoose(n-1-c, l) - combin.LogChoose(n-1, l))
	return 1 - miss, nil
}

// SimulatePredecessor estimates P(H1 | H1+) by direct protocol simulation:
// it walks random Crowds paths and reports the fraction of paths, among
// those visiting at least one collaborator, whose first collaborator saw
// the initiator as predecessor. Collaborators are jondos 0..c−1; the
// initiator is drawn from the honest jondos.
func SimulatePredecessor(n, c int, pf float64, trials int, seed int64) (float64, error) {
	if _, err := PredecessorProb(n, c, pf); err != nil {
		return 0, err
	}
	if trials <= 0 {
		return 0, fmt.Errorf("%w: trials = %d", ErrBadParam, trials)
	}
	rng := stats.NewRand(seed)
	var hits, events int
	for t := 0; t < trials; t++ {
		initiator := trace.NodeID(c + rng.Intn(n-c))
		pred := initiator
		cur := trace.NodeID(rng.Intn(n)) // initiator's first uniform choice
		for {
			if int(cur) < c {
				events++
				if pred == initiator {
					hits++
				}
				break
			}
			if rng.Float64() >= pf {
				break // submitted to the receiver
			}
			pred = cur
			cur = trace.NodeID(rng.Intn(n))
		}
	}
	if events == 0 {
		return 0, nil
	}
	return float64(hits) / float64(events), nil
}

// Interface compliance.
var _ simnet.Forwarder = (*Forwarder)(nil)
