package crowds_test

import (
	"errors"
	"math"
	"testing"
	"time"

	"anonmix/internal/crowds"
	"anonmix/internal/entropy"
	"anonmix/internal/simnet"
	"anonmix/internal/trace"
)

func TestParamValidation(t *testing.T) {
	if _, err := crowds.NewForwarder(1, 0.5, 1); !errors.Is(err, crowds.ErrBadParam) {
		t.Errorf("n=1 err = %v", err)
	}
	for _, pf := range []float64{-0.1, 1, 1.5, math.NaN()} {
		if _, err := crowds.NewForwarder(10, pf, 1); !errors.Is(err, crowds.ErrBadParam) {
			t.Errorf("pf=%v err = %v", pf, err)
		}
		if _, err := crowds.PredecessorProb(10, 1, pf); !errors.Is(err, crowds.ErrBadParam) {
			t.Errorf("PredecessorProb pf=%v err = %v", pf, err)
		}
	}
	if _, err := crowds.PredecessorProb(10, 10, 0.6); !errors.Is(err, crowds.ErrBadParam) {
		t.Error("c=n accepted")
	}
	if _, err := crowds.SimulatePredecessor(10, 1, 0.6, 0, 1); !errors.Is(err, crowds.ErrBadParam) {
		t.Error("zero trials accepted")
	}
}

func TestPredecessorProbKnownValues(t *testing.T) {
	// pf=0: the first (mandatory) hop is the only hop, so any collaborator
	// that sees the message sees the initiator: P = 1.
	p, err := crowds.PredecessorProb(10, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Errorf("pf=0: P = %v, want 1", p)
	}
	// Reiter–Rubin form: 1 − pf(n−c−1)/n.
	p, err = crowds.PredecessorProb(20, 3, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - 0.75*16.0/20
	if math.Abs(p-want) > 1e-12 {
		t.Errorf("P = %v, want %v", p, want)
	}
}

// TestPredecessorFormulaMatchesSimulation validates the closed form against
// direct protocol simulation.
func TestPredecessorFormulaMatchesSimulation(t *testing.T) {
	cases := []struct {
		n, c int
		pf   float64
	}{
		{10, 1, 0.5}, {10, 2, 0.75}, {25, 3, 0.8}, {50, 5, 0.66}, {8, 1, 0.9},
	}
	for _, c := range cases {
		want, err := crowds.PredecessorProb(c.n, c.c, c.pf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := crowds.SimulatePredecessor(c.n, c.c, c.pf, 400000, 7)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 0.01 {
			t.Errorf("n=%d c=%d pf=%v: simulated %v, formula %v", c.n, c.c, c.pf, got, want)
		}
	}
}

func TestProbableInnocence(t *testing.T) {
	// Reiter–Rubin: probable innocence iff n ≥ pf/(pf−1/2)·(c+1).
	pf := 0.75
	for _, tc := range []struct {
		n, c int
		want bool
	}{
		{6, 1, true},   // threshold: 3·2 = 6
		{5, 1, false},  // below threshold
		{9, 2, true},   // 3·3 = 9
		{8, 2, false},  //
		{100, 1, true}, //
		{3, 1, false},  //
	} {
		got, err := crowds.ProbableInnocence(tc.n, tc.c, pf)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			p, _ := crowds.PredecessorProb(tc.n, tc.c, pf)
			t.Errorf("n=%d c=%d: probable innocence = %v (P=%v), want %v", tc.n, tc.c, got, p, tc.want)
		}
	}
	// pf ≤ 1/2 can never give probable innocence with c ≥ 1 present.
	ok, err := crowds.ProbableInnocence(1000, 1, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("probable innocence with pf=0.4 should be impossible")
	}
}

func TestEventEntropy(t *testing.T) {
	h, err := crowds.EventEntropy(20, 2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := crowds.PredecessorProb(20, 2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	want := entropy.SpikeAndSlab(p, 17)
	if math.Abs(h-want) > 1e-12 {
		t.Errorf("EventEntropy = %v, want %v", h, want)
	}
	if h < 0 || h > math.Log2(20) {
		t.Errorf("entropy %v out of range", h)
	}
}

// TestCrowdsOverTestbed runs the jondo protocol on the goroutine network
// and cross-checks the empirical first-collaborator statistics against the
// closed form.
func TestCrowdsOverTestbed(t *testing.T) {
	const (
		n      = 12
		c      = 2
		pf     = 0.7
		trials = 3000
	)
	fwd, err := crowds.NewForwarder(n, pf, 11)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := simnet.New(simnet.Config{
		N: n, Compromised: []trace.NodeID{0, 1}, Forwarder: fwd, Buffer: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	defer nw.Close()

	senders := make(map[trace.MessageID]trace.NodeID, trials)
	for i := 0; i < trials; i++ {
		sender := trace.NodeID(c + i%(n-c)) // honest initiators only
		id, err := nw.Inject(sender, fwd.FirstHop(sender), simnet.Packet{})
		if err != nil {
			t.Fatal(err)
		}
		senders[id] = sender
	}
	if err := nw.WaitSettled(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := len(nw.Deliveries()); got != trials {
		t.Fatalf("%d deliveries, want %d", got, trials)
	}

	var events, hits int
	for id, mt := range trace.Collate(nw.Tuples()) {
		if len(mt.Reports) == 0 {
			continue
		}
		events++
		if mt.Reports[0].Pred == senders[id] {
			hits++
		}
	}
	if events == 0 {
		t.Fatal("no collaborator observations at all")
	}
	got := float64(hits) / float64(events)
	want, err := crowds.PredecessorProb(n, c, pf)
	if err != nil {
		t.Fatal(err)
	}
	sigma := math.Sqrt(want * (1 - want) / float64(events))
	if math.Abs(got-want) > 5*sigma+0.01 {
		t.Errorf("testbed P(H1|H1+) = %v over %d events, formula %v", got, events, want)
	}
}

// TestOnPathProb cross-checks the log-space hypergeometric form against a
// direct rational computation and pins its boundary behavior.
func TestOnPathProb(t *testing.T) {
	for _, tc := range []struct{ n, c, l int }{
		{10, 2, 0}, {10, 2, 3}, {10, 2, 7}, {50, 5, 20}, {100, 1, 51},
	} {
		got, err := crowds.OnPathProb(tc.n, tc.c, tc.l)
		if err != nil {
			t.Fatal(err)
		}
		// Direct product: miss = Π_{i<l} (n-1-c-i)/(n-1-i).
		miss := 1.0
		for i := 0; i < tc.l; i++ {
			miss *= float64(tc.n-1-tc.c-i) / float64(tc.n-1-i)
		}
		if math.Abs(got-(1-miss)) > 1e-12 {
			t.Errorf("n=%d c=%d l=%d: %v, want %v", tc.n, tc.c, tc.l, got, 1-miss)
		}
	}
	// l = 0 never meets a collaborator; saturated paths always do.
	if p, _ := crowds.OnPathProb(10, 3, 0); p != 0 {
		t.Errorf("l=0: %v", p)
	}
	if p, _ := crowds.OnPathProb(10, 3, 7); p != 1 {
		t.Errorf("saturated: %v", p)
	}
	// c = 0 never hits.
	if p, _ := crowds.OnPathProb(10, 0, 5); p != 0 {
		t.Errorf("c=0: %v", p)
	}
	for _, tc := range []struct{ n, c, l int }{{1, 0, 0}, {10, -1, 2}, {10, 10, 2}, {10, 2, -1}, {10, 2, 10}} {
		if _, err := crowds.OnPathProb(tc.n, tc.c, tc.l); !errors.Is(err, crowds.ErrBadParam) {
			t.Errorf("n=%d c=%d l=%d accepted", tc.n, tc.c, tc.l)
		}
	}
}
