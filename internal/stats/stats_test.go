package stats

import (
	"math"
	"testing"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 || s.StdErr() != 0 {
		t.Error("zero value not neutral")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v", s.Mean())
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if math.Abs(s.Variance()-32.0/7) > 1e-12 {
		t.Errorf("variance = %v", s.Variance())
	}
	if math.Abs(s.CI95()-1.96*s.StdErr()) > 1e-15 {
		t.Errorf("CI95 = %v", s.CI95())
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	xs := []float64{1.5, -2, 3.25, 0, 8, -1, 4.5, 2, 2, 7}
	var whole Summary
	for _, x := range xs {
		whole.Add(x)
	}
	var a, b Summary
	for i, x := range xs {
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != whole.N() {
		t.Errorf("N = %d, want %d", a.N(), whole.N())
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-12 {
		t.Errorf("mean = %v, want %v", a.Mean(), whole.Mean())
	}
	if math.Abs(a.Variance()-whole.Variance()) > 1e-12 {
		t.Errorf("variance = %v, want %v", a.Variance(), whole.Variance())
	}
}

func TestSummaryMergeEdges(t *testing.T) {
	var a, b Summary
	b.Add(3)
	a.Merge(b) // empty += non-empty
	if a.N() != 1 || a.Mean() != 3 {
		t.Errorf("merge into empty: %+v", a)
	}
	var c Summary
	a.Merge(c) // non-empty += empty
	if a.N() != 1 || a.Mean() != 3 {
		t.Errorf("merge of empty changed summary: %+v", a)
	}
}

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed, different streams")
		}
	}
	c := NewRand(43)
	same := true
	for i := 0; i < 10; i++ {
		if NewRand(42).Int63() == c.Int63() {
			continue
		}
		same = false
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestForkDecorrelated(t *testing.T) {
	// Adjacent streams from the same seed must differ immediately.
	a := Fork(7, 0)
	b := Fork(7, 1)
	diff := false
	for i := 0; i < 5; i++ {
		if a.Int63() != b.Int63() {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("forked streams identical")
	}
	// Reproducibility.
	x := Fork(7, 3).Int63()
	y := Fork(7, 3).Int63()
	if x != y {
		t.Error("fork not reproducible")
	}
}
