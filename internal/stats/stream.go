package stats

// Stream is a counter-based SplitMix64 generator: a value type whose whole
// state is one word, so per-trial streams cost nothing to create and every
// draw is a pure function of (seed, stream, draw index). It is the
// trial-loop counterpart of the fault layer's per-decision loss draws
// (faults.Lost) and uses the same mixing constants as ForkSeed, which
// derives its initial state — so adjacent streams are decorrelated by the
// same argument.
//
// The sampling estimators derive one Stream per trial (stream = trial
// index), which makes their estimates independent of the worker count: any
// scheduling of trials over goroutines replays exactly the same draws.
//
// RNG-stream versioning: the draw sequence is part of the repository's
// reproducibility contract. Changing the mixing constants, the draw order
// of a consumer, or the per-trial stream derivation is a breaking change
// that must regenerate every seed-pinned golden (see doc.go, "Randomness
// and reproducibility").

import "math/bits"

// Stream is a reproducible counter-based random source. The zero value is
// a valid stream (seed 0); NewStream derives decorrelated ones. Copying a
// Stream forks it: both copies replay the same subsequent draws.
type Stream struct {
	state uint64
}

// NewStream returns the counter-based stream for (seed, stream index) —
// the same derivation as ForkSeed, so Stream n here and Fork(seed, n)
// start from the same point in seed space.
func NewStream(seed, stream int64) Stream {
	return Stream{state: uint64(ForkSeed(seed, stream))}
}

// Uint64 returns the next 64 uniformly random bits (SplitMix64).
func (s *Stream) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n) without modulo bias (Lemire's
// multiply-shift rejection). It panics when n <= 0, matching rand.Intn.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive bound")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(s.Uint64(), un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), un)
		}
	}
	return int(hi)
}
