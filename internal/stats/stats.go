// Package stats provides the small statistical toolkit used by the
// Monte-Carlo estimator and the simulation testbed: reproducible seeded
// random sources and streaming summary statistics with confidence
// intervals.
package stats

import (
	"errors"
	"math"
	"math/rand"
)

// ErrNoSamples reports a summary queried before any observation.
var ErrNoSamples = errors.New("stats: no samples")

// NewRand returns a reproducible random source for the given seed. Every
// randomized component of the repository takes an explicit seed so that
// simulations and benchmarks are deterministic.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// ForkSeed derives an independent child seed from a parent seed and a
// stream index (SplitMix64 mixing, so adjacent streams are decorrelated).
// It is the single definition of the stream-derivation arithmetic; use it
// wherever a derived deterministic seed is needed without a *rand.Rand.
func ForkSeed(seed int64, stream int64) int64 {
	z := uint64(seed) + uint64(stream)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Fork derives an independent child source from a parent seed and a stream
// index, for per-goroutine generators in parallel estimators.
func Fork(seed int64, stream int64) *rand.Rand {
	return rand.New(rand.NewSource(ForkSeed(seed, stream)))
}

// Summary accumulates streaming mean and variance (Welford's algorithm).
// The zero value is ready to use.
type Summary struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (s *Summary) Add(x float64) {
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 before any observation).
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.Variance() / float64(s.n))
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean.
func (s *Summary) CI95() float64 { return 1.96 * s.StdErr() }

// Merge folds another summary into s (parallel reduction).
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	nA, nB := float64(s.n), float64(o.n)
	d := o.mean - s.mean
	total := nA + nB
	s.mean += d * nB / total
	s.m2 += o.m2 + d*d*nA*nB/total
	s.n += o.n
}
