package stats

import (
	"sync"
	"testing"
)

// TestStreamDeterminism pins the counter-based draw contract: same (seed,
// stream) replays identically, copies fork, and distinct streams differ.
func TestStreamDeterminism(t *testing.T) {
	a := NewStream(42, 7)
	b := NewStream(42, 7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("draw %d diverged between identical streams", i)
		}
	}
	// Copy semantics: a value copy replays the same future draws.
	c := a
	if a.Uint64() != c.Uint64() {
		t.Error("copied stream diverged")
	}
	d := NewStream(42, 8)
	e := NewStream(43, 7)
	base := NewStream(42, 7)
	if base.Uint64() == d.Uint64() {
		t.Error("adjacent streams collide on first draw")
	}
	base = NewStream(42, 7)
	if base.Uint64() == e.Uint64() {
		t.Error("adjacent seeds collide on first draw")
	}
}

// TestStreamMatchesForkSeed pins the derivation: stream n of a seed starts
// from the same point of seed space as ForkSeed(seed, n), so the fault
// layer's per-decision draws and the trial streams share one lineage.
func TestStreamMatchesForkSeed(t *testing.T) {
	s := NewStream(99, 3)
	manual := Stream{state: uint64(ForkSeed(99, 3))}
	if s.Uint64() != manual.Uint64() {
		t.Error("NewStream does not match ForkSeed derivation")
	}
}

// TestStreamFloat64Range: every draw lands in [0, 1).
func TestStreamFloat64Range(t *testing.T) {
	s := NewStream(1, 0)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("draw %d: Float64 = %v", i, f)
		}
	}
}

// TestStreamIntn: draws stay in [0, n), every residue is reachable, and a
// non-positive bound panics like rand.Intn.
func TestStreamIntn(t *testing.T) {
	s := NewStream(5, 1)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 30} {
		seen := make(map[int]bool)
		for i := 0; i < 2000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d", n, v)
			}
			seen[v] = true
		}
		if n <= 7 && len(seen) != n {
			t.Errorf("Intn(%d) reached only %d residues in 2000 draws", n, len(seen))
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	s.Intn(0)
}

// TestStreamIntnUnbiased: a coarse chi-square uniformity check on Intn
// over a bound that exercises the rejection threshold (not a power of
// two). 9 degrees of freedom; the 1e-3 quantile is ~27.9.
func TestStreamIntnUnbiased(t *testing.T) {
	const n, draws = 10, 100000
	s := NewStream(17, 0)
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	exp := float64(draws) / n
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - exp
		chi2 += d * d / exp
	}
	if chi2 > 27.9 {
		t.Errorf("chi-square = %v over %v counts", chi2, counts)
	}
}

// TestStreamConcurrentIndependence: per-trial streams drawn concurrently
// (as the estimator workers do) reproduce the serial draws exactly — the
// worker-count-independence property at the RNG layer. Run under -race
// this also proves streams share no hidden state.
func TestStreamConcurrentIndependence(t *testing.T) {
	const trials, draws = 64, 32
	serial := make([][]uint64, trials)
	for tr := range serial {
		s := NewStream(7, int64(tr))
		serial[tr] = make([]uint64, draws)
		for i := range serial[tr] {
			serial[tr][i] = s.Uint64()
		}
	}
	parallel := make([][]uint64, trials)
	var wg sync.WaitGroup
	for tr := 0; tr < trials; tr++ {
		wg.Add(1)
		go func(tr int) {
			defer wg.Done()
			s := NewStream(7, int64(tr))
			parallel[tr] = make([]uint64, draws)
			for i := range parallel[tr] {
				parallel[tr][i] = s.Uint64()
			}
		}(tr)
	}
	wg.Wait()
	for tr := range serial {
		for i := range serial[tr] {
			if serial[tr][i] != parallel[tr][i] {
				t.Fatalf("trial %d draw %d: concurrent draw diverged", tr, i)
			}
		}
	}
}
