package degrade_test

import (
	"errors"
	"math"
	"testing"

	"anonmix/internal/adversary"
	"anonmix/internal/degrade"
	"anonmix/internal/dist"
	"anonmix/internal/events"
	"anonmix/internal/montecarlo"
	"anonmix/internal/pathsel"
	"anonmix/internal/stats"
	"anonmix/internal/trace"
)

func analyst(t *testing.T, n int, compromised []trace.NodeID, d dist.Length) *adversary.Analyst {
	t.Helper()
	e, err := events.New(n, len(compromised))
	if err != nil {
		t.Fatal(err)
	}
	a, err := adversary.NewAnalyst(e, d, compromised)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAccumulatorValidation(t *testing.T) {
	if _, err := degrade.NewAccumulator(nil); !errors.Is(err, degrade.ErrBadConfig) {
		t.Errorf("nil analyst err = %v", err)
	}
	u, err := dist.NewUniform(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := degrade.NewAccumulator(analyst(t, 10, []trace.NodeID{0}, u))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := acc.Posterior(); !errors.Is(err, degrade.ErrNoObservations) {
		t.Errorf("empty posterior err = %v", err)
	}
	if _, err := acc.Entropy(); !errors.Is(err, degrade.ErrNoObservations) {
		t.Errorf("empty entropy err = %v", err)
	}
	if _, _, err := acc.Top(); !errors.Is(err, degrade.ErrNoObservations) {
		t.Errorf("empty top err = %v", err)
	}
	if acc.Rounds() != 0 {
		t.Errorf("rounds = %d", acc.Rounds())
	}
}

// TestAccumulatorConcentratesOnSender: with repeated messages, the joint
// posterior must concentrate on the true sender and its entropy must fall.
func TestAccumulatorConcentratesOnSender(t *testing.T) {
	const n = 12
	compromised := []trace.NodeID{1, 5}
	u, err := dist.NewUniform(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	a := analyst(t, n, compromised, u)
	acc, err := degrade.NewAccumulator(a)
	if err != nil {
		t.Fatal(err)
	}
	strat := pathsel.Strategy{Name: "u", Length: u, Kind: pathsel.Simple}
	sel, err := pathsel.NewSelector(n, strat)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(3)
	sender := trace.NodeID(8)
	var lastH = math.Inf(1)
	var sawDrop bool
	for r := 0; r < 200; r++ {
		path, err := sel.SelectPath(rng, sender)
		if err != nil {
			t.Fatal(err)
		}
		mt := montecarlo.Synthesize(trace.MessageID(r+1), sender, path, a.Compromised)
		if err := acc.Observe(mt); err != nil {
			t.Fatal(err)
		}
		h, err := acc.Entropy()
		if err != nil {
			t.Fatal(err)
		}
		if h < lastH-1e-12 {
			sawDrop = true
		}
		lastH = h
		post, err := acc.Posterior()
		if err != nil {
			t.Fatal(err)
		}
		if post[sender] <= 0 {
			t.Fatalf("round %d: true sender excluded", r)
		}
	}
	if !sawDrop {
		t.Error("entropy never decreased over 200 rounds")
	}
	top, mass, err := acc.Top()
	if err != nil {
		t.Fatal(err)
	}
	if top != sender {
		t.Errorf("after 200 rounds, top = %v (mass %v), want %v", top, mass, sender)
	}
	if mass < 0.9 {
		t.Errorf("after 200 rounds, sender mass only %v", mass)
	}
	if acc.Rounds() != 200 {
		t.Errorf("rounds = %d", acc.Rounds())
	}
}

func TestRunValidation(t *testing.T) {
	u, err := pathsel.UniformLength(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	crowdsStrat, err := pathsel.Crowds(0.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	base := degrade.Config{
		N: 10, Compromised: []trace.NodeID{0}, Strategy: u, Sender: 5,
		Confidence: 0.9, MaxRounds: 5, Trials: 2,
	}
	cases := []struct {
		name string
		mut  func(*degrade.Config)
	}{
		{"small n", func(c *degrade.Config) { c.N = 1 }},
		{"bad sender", func(c *degrade.Config) { c.Sender = 10 }},
		{"compromised sender", func(c *degrade.Config) { c.Sender = 0 }},
		{"bad confidence", func(c *degrade.Config) { c.Confidence = 1 }},
		{"no rounds", func(c *degrade.Config) { c.MaxRounds = 0 }},
		{"no trials", func(c *degrade.Config) { c.Trials = 0 }},
		{"cyclic strategy", func(c *degrade.Config) { c.Strategy = crowdsStrat }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		if _, err := degrade.Run(cfg); !errors.Is(err, degrade.ErrBadConfig) {
			t.Errorf("%s: err = %v", tc.name, err)
		}
	}
}

// TestRunIdentifiesEventually: with enough rounds the adversary identifies
// the sender in (almost) every trial, and the mean entropy decreases in
// rounds.
func TestRunIdentifiesEventually(t *testing.T) {
	strat, err := pathsel.UniformLength(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := degrade.Run(degrade.Config{
		N:           12,
		Compromised: []trace.NodeID{2, 9},
		Strategy:    strat,
		Sender:      4,
		Confidence:  0.90,
		MaxRounds:   120,
		Trials:      40,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.IdentifiedShare < 0.9 {
		t.Errorf("identified share = %v, want ≥ 0.9", res.IdentifiedShare)
	}
	if res.MeanRounds <= 1 || res.MeanRounds > 120 {
		t.Errorf("mean rounds = %v", res.MeanRounds)
	}
	if len(res.MeanEntropyAfter) != 120 {
		t.Fatalf("entropy trajectory length %d", len(res.MeanEntropyAfter))
	}
	if !(res.MeanEntropyAfter[0] > res.MeanEntropyAfter[30]) ||
		!(res.MeanEntropyAfter[30] > res.MeanEntropyAfter[119]) {
		t.Errorf("mean entropy not decreasing: %v %v %v",
			res.MeanEntropyAfter[0], res.MeanEntropyAfter[30], res.MeanEntropyAfter[119])
	}
	if res.Trials != 40 {
		t.Errorf("trials = %d", res.Trials)
	}
}

// TestRunMoreCompromisedFaster: more compromised nodes identify the sender
// in fewer rounds on average.
func TestRunMoreCompromisedFaster(t *testing.T) {
	strat, err := pathsel.UniformLength(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	run := func(comp []trace.NodeID) float64 {
		res, err := degrade.Run(degrade.Config{
			N: 14, Compromised: comp, Strategy: strat, Sender: 6,
			Confidence: 0.9, MaxRounds: 400, Trials: 30, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.IdentifiedShare < 0.95 {
			t.Fatalf("comp %v: identified share %v", comp, res.IdentifiedShare)
		}
		return res.MeanRounds
	}
	one := run([]trace.NodeID{2})
	three := run([]trace.NodeID{2, 9, 12})
	if !(three < one) {
		t.Errorf("3 compromised (%v rounds) should identify faster than 1 (%v rounds)", three, one)
	}
}

func TestCrowdsDegradation(t *testing.T) {
	if _, err := degrade.CrowdsDegradation(10, 1, 0.7, 0, 10, 1); !errors.Is(err, degrade.ErrBadConfig) {
		t.Error("rounds=0 accepted")
	}
	if _, err := degrade.CrowdsDegradation(10, 1, 1.2, 10, 10, 1); err == nil {
		t.Error("bad pf accepted")
	}
	// Few rounds: rarely identified. Many rounds: almost always.
	few, err := degrade.CrowdsDegradation(20, 2, 0.75, 2, 400, 11)
	if err != nil {
		t.Fatal(err)
	}
	many, err := degrade.CrowdsDegradation(20, 2, 0.75, 400, 400, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !(many.IdentifiedShare > few.IdentifiedShare) {
		t.Errorf("identification should improve with rounds: %v vs %v",
			many.IdentifiedShare, few.IdentifiedShare)
	}
	if many.IdentifiedShare < 0.9 {
		t.Errorf("400 rounds: identified share %v, want ≥ 0.9", many.IdentifiedShare)
	}
	if many.MeanObservedRounds <= few.MeanObservedRounds {
		t.Errorf("observed rounds should grow: %v vs %v",
			many.MeanObservedRounds, few.MeanObservedRounds)
	}
}

// TestCrowdsRoundsBoundIsSufficient: running the simulation for the bound's
// number of rounds identifies the initiator with at least the promised
// probability.
func TestCrowdsRoundsBoundIsSufficient(t *testing.T) {
	const (
		n, c  = 20, 2
		pf    = 0.75
		delta = 0.1
	)
	bound, err := degrade.CrowdsRoundsBound(n, c, pf, delta)
	if err != nil {
		t.Fatal(err)
	}
	if bound < 1 {
		t.Fatalf("bound = %d", bound)
	}
	// The bound counts *observed* rounds; convert to total reformations
	// using the observation rate P(H1+) ≈ (c/n)/(1−pf(n−c)/n).
	r := pf * float64(n-c) / float64(n)
	obsRate := (float64(c) / float64(n)) / (1 - r)
	total := int(math.Ceil(float64(bound)/obsRate)) + 1
	res, err := degrade.CrowdsDegradation(n, c, pf, total, 300, 13)
	if err != nil {
		t.Fatal(err)
	}
	if res.IdentifiedShare < 1-delta-0.05 {
		t.Errorf("bound %d observed rounds (%d total): identified %v, want ≥ %v",
			bound, total, res.IdentifiedShare, 1-delta-0.05)
	}
}

func TestCrowdsRoundsBoundValidation(t *testing.T) {
	if _, err := degrade.CrowdsRoundsBound(20, 2, 0.75, 0); !errors.Is(err, degrade.ErrBadConfig) {
		t.Error("delta=0 accepted")
	}
	if _, err := degrade.CrowdsRoundsBound(20, 2, 1.5, 0.1); err == nil {
		t.Error("bad pf accepted")
	}
	// n−c−1 = 0: single honest jondo, trivially identified.
	b, err := degrade.CrowdsRoundsBound(3, 2, 0.6, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if b != 1 {
		t.Errorf("degenerate bound = %d, want 1", b)
	}
}
