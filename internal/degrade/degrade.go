// Package degrade quantifies the *degradation* of sender anonymity under
// repeated communication — the attack family of Wright, Adler, Levine and
// Shields (NDSS 2002), cited as [23] by Guan et al. and flagged in their
// threat-model discussion: when the same initiator talks to the same
// receiver over many rounds, each round's rerouting path leaks a little,
// and the adversary accumulates.
//
// Since the scenario layer gained Workload.Rounds, this package is a thin
// façade: Run maps a repeated-communication experiment onto the exact
// scenario backend (fixed sender, multi-round sessions, confidence
// tracking), and CrowdsDegradation maps the predecessor-counting attack
// onto the Crowds substrate of the discrete-event testbed. No analysis
// path here bypasses scenario.Run, so every experiment shares the
// process-wide engines, the backends' capability vocabulary, and the
// cross-backend agreement guarantees. The Bayesian accumulator itself
// lives in package adversary now (adversary.Accumulator); the aliases
// below keep the historical API working.
//
// CrowdsRoundsBound remains a closed form: a Chernoff-style prediction of
// how many observed rounds predecessor counting needs.
package degrade

import (
	"errors"
	"fmt"
	"math"

	"anonmix/internal/adversary"
	"anonmix/internal/crowds"
	"anonmix/internal/pathsel"
	"anonmix/internal/scenario"
	"anonmix/internal/trace"
)

// Errors returned by the degradation analyses.
var (
	// ErrBadConfig reports an invalid configuration.
	ErrBadConfig = errors.New("degrade: invalid configuration")
	// ErrNoObservations reports a query on an accumulator that has seen
	// nothing yet. It aliases adversary.ErrNoObservations.
	ErrNoObservations = adversary.ErrNoObservations
)

// Accumulator combines per-message sender posteriors across rounds. It is
// an alias of adversary.Accumulator, its home since the scenario layer
// learned to run multi-round workloads on every backend.
type Accumulator = adversary.Accumulator

// NewAccumulator returns an accumulator over the analyst's system.
func NewAccumulator(a *adversary.Analyst) (*Accumulator, error) {
	acc, err := adversary.NewAccumulator(a)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return acc, nil
}

// Config parameterizes a repeated-communication experiment: one fixed
// sender sends Rounds messages under the strategy; the adversary
// accumulates; the experiment repeats Trials times with fresh paths.
type Config struct {
	// N is the system size.
	N int
	// Compromised lists the adversary's nodes.
	Compromised []trace.NodeID
	// Strategy draws each round's path (simple paths).
	Strategy pathsel.Strategy
	// Sender is the fixed initiator (must not be compromised).
	Sender trace.NodeID
	// Confidence is the posterior mass on the true sender at which the
	// adversary declares identification (e.g. 0.95).
	Confidence float64
	// MaxRounds caps each trial.
	MaxRounds int
	// Trials is the number of independent repetitions.
	Trials int
	// Seed makes runs reproducible.
	Seed int64
	// Workers is retained for API compatibility. The exact scenario
	// backend accumulates serially (its output is a pure function of Seed
	// alone), so the field is accepted and ignored.
	Workers int
}

func (c Config) validate() error {
	if c.N < 2 {
		return fmt.Errorf("%w: n = %d", ErrBadConfig, c.N)
	}
	if int(c.Sender) < 0 || int(c.Sender) >= c.N {
		return fmt.Errorf("%w: sender %v", ErrBadConfig, c.Sender)
	}
	for _, id := range c.Compromised {
		if id == c.Sender {
			return fmt.Errorf("%w: sender %v is compromised (identified at round 0)", ErrBadConfig, id)
		}
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		return fmt.Errorf("%w: confidence %v", ErrBadConfig, c.Confidence)
	}
	if c.MaxRounds < 1 || c.Trials < 1 {
		return fmt.Errorf("%w: maxRounds %d, trials %d", ErrBadConfig, c.MaxRounds, c.Trials)
	}
	if c.Strategy.Kind != pathsel.Simple {
		return fmt.Errorf("%w: Bayesian accumulation needs simple paths (use CrowdsDegradation for cyclic routes)", ErrBadConfig)
	}
	return nil
}

// Result summarizes a repeated-communication experiment.
type Result struct {
	// IdentifiedShare is the fraction of trials in which the adversary
	// reached the confidence threshold within MaxRounds.
	IdentifiedShare float64
	// MeanRounds is the average identification round among identified
	// trials.
	MeanRounds float64
	// MeanEntropyAfter holds the average remaining anonymity (bits) after
	// each round, indexed round−1, averaged over all trials.
	MeanEntropyAfter []float64
	// Trials echoes the number of repetitions.
	Trials int
}

// Run executes the repeated-communication experiment through the scenario
// layer: the exact backend runs Trials fixed-sender sessions of MaxRounds
// messages each, accumulating exact per-round posteriors until the
// confidence threshold is reached.
func Run(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	res, err := scenario.Run(scenario.Config{
		N:         cfg.N,
		Backend:   scenario.BackendExact,
		Strategy:  cfg.Strategy,
		Adversary: scenario.Adversary{Compromised: cfg.Compromised},
		Workload: scenario.Workload{
			Messages:    cfg.Trials,
			Rounds:      cfg.MaxRounds,
			Confidence:  cfg.Confidence,
			FixedSender: true,
			Sender:      cfg.Sender,
			Seed:        cfg.Seed,
		},
	})
	if err != nil {
		return Result{}, err
	}
	return Result{
		IdentifiedShare:  res.IdentifiedShare,
		MeanRounds:       res.MeanRoundsToIdentify,
		MeanEntropyAfter: res.HRounds,
		Trials:           res.Trials,
	}, nil
}

// CrowdsResult summarizes the predecessor-counting attack on Crowds.
type CrowdsResult struct {
	// IdentifiedShare is the fraction of trials where the initiator ends
	// with the strictly highest predecessor count.
	IdentifiedShare float64
	// MeanObservedRounds is the average number of rounds in which a
	// collaborator was on the path at all.
	MeanObservedRounds float64
}

// CrowdsDegradation simulates the predecessor-counting attack across path
// reformations on the discrete-event testbed's Crowds substrate: each
// round a fresh Crowds path forms; if a collaborator is on it, the first
// collaborator's predecessor gets one count; after rounds reformations the
// adversary accuses the highest count.
func CrowdsDegradation(n, c int, pf float64, rounds, trials int, seed int64) (CrowdsResult, error) {
	if _, err := crowds.PredecessorProb(n, c, pf); err != nil {
		return CrowdsResult{}, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if rounds < 1 || trials < 1 {
		return CrowdsResult{}, fmt.Errorf("%w: rounds %d, trials %d", ErrBadConfig, rounds, trials)
	}
	res, err := scenario.Run(scenario.Config{
		N:         n,
		Backend:   scenario.BackendTestbed,
		Protocol:  scenario.ProtocolCrowds,
		CrowdsPf:  pf,
		Adversary: scenario.Adversary{Count: c},
		Workload: scenario.Workload{
			Messages: trials,
			Rounds:   rounds,
			Seed:     seed,
		},
	})
	if err != nil {
		return CrowdsResult{}, err
	}
	return CrowdsResult{
		IdentifiedShare:    res.Crowds.TopCountIdentifiedShare,
		MeanObservedRounds: res.Crowds.MeanObservedRounds,
	}, nil
}

// CrowdsRoundsBound returns a Chernoff-style upper bound on the number of
// *observed* rounds after which predecessor counting separates the
// initiator from every other honest jondo with failure probability at most
// delta. With per-observation initiator rate p1 = P(H1|H1+) and
// per-other-jondo rate q = (1−p1)/(n−c−1), the counts separate once
//
//	R ≥ 2·ln((n−c−1)/delta) / (p1 − q)²
//
// by Hoeffding's inequality applied to the count difference of each
// competing jondo, union-bounded over the n−c−1 competitors.
func CrowdsRoundsBound(n, c int, pf, delta float64) (int, error) {
	p1, err := crowds.PredecessorProb(n, c, pf)
	if err != nil {
		return 0, err
	}
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("%w: delta %v", ErrBadConfig, delta)
	}
	others := float64(n - c - 1)
	if others < 1 {
		return 1, nil
	}
	q := (1 - p1) / others
	gap := p1 - q
	if gap <= 0 {
		return 0, fmt.Errorf("%w: no identification gap (p1 = %v, q = %v)", ErrBadConfig, p1, q)
	}
	r := 2 * math.Log(others/delta) / (gap * gap)
	return int(math.Ceil(r)), nil
}
