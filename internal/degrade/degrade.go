// Package degrade quantifies the *degradation* of sender anonymity under
// repeated communication — the attack family of Wright, Adler, Levine and
// Shields (NDSS 2002), cited as [23] by Guan et al. and flagged in their
// threat-model discussion: when the same initiator talks to the same
// receiver over many rounds, each round's rerouting path leaks a little,
// and the adversary accumulates.
//
// Two accumulation attacks are implemented:
//
//   - Accumulator: exact Bayesian accumulation for simple-path strategies.
//     Round posteriors from the exact engine are combined by likelihood
//     multiplication (valid because the per-round prior is uniform and
//     paths are drawn independently); the entropy of the running posterior
//     is the sender's remaining anonymity after k messages.
//
//   - Crowds predecessor counting: across path reformations the initiator
//     appears as the first collaborator's predecessor at rate
//     P(H1|H1+) = 1 − pf(n−c−1)/n, while any other honest jondo appears at
//     the strictly smaller rate (1 − P)/(n−c−1); counting identifies the
//     initiator, and a Chernoff-style bound predicts how fast.
package degrade

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"anonmix/internal/adversary"
	"anonmix/internal/crowds"
	"anonmix/internal/entropy"
	"anonmix/internal/montecarlo"
	"anonmix/internal/pathsel"
	"anonmix/internal/scenario"
	"anonmix/internal/stats"
	"anonmix/internal/trace"
)

// Errors returned by the degradation analyses.
var (
	// ErrBadConfig reports an invalid configuration.
	ErrBadConfig = errors.New("degrade: invalid configuration")
	// ErrNoObservations reports a query on an accumulator that has seen
	// nothing yet.
	ErrNoObservations = errors.New("degrade: no observations accumulated")
)

// Accumulator combines per-message sender posteriors across rounds.
// It is not safe for concurrent use.
type Accumulator struct {
	analyst *adversary.Analyst
	logPost []float64
	rounds  int
}

// NewAccumulator returns an accumulator over the analyst's system.
func NewAccumulator(a *adversary.Analyst) (*Accumulator, error) {
	if a == nil {
		return nil, fmt.Errorf("%w: nil analyst", ErrBadConfig)
	}
	n := a.Engine().N()
	acc := &Accumulator{analyst: a, logPost: make([]float64, n)}
	return acc, nil
}

// Observe folds one message trace into the running posterior. Because the
// per-round prior is uniform, multiplying round posteriors (adding logs)
// yields the correct joint posterior up to normalization.
func (acc *Accumulator) Observe(mt *trace.MessageTrace) error {
	post, err := acc.analyst.Posterior(mt)
	if err != nil {
		return err
	}
	for i, p := range post.P {
		if p <= 0 {
			acc.logPost[i] = math.Inf(-1)
			continue
		}
		acc.logPost[i] += math.Log(p)
	}
	acc.rounds++
	return nil
}

// Rounds returns the number of observations folded in.
func (acc *Accumulator) Rounds() int { return acc.rounds }

// Posterior returns the normalized joint posterior over the N nodes.
func (acc *Accumulator) Posterior() ([]float64, error) {
	if acc.rounds == 0 {
		return nil, ErrNoObservations
	}
	out := make([]float64, len(acc.logPost))
	maxLog := math.Inf(-1)
	for _, lp := range acc.logPost {
		if lp > maxLog {
			maxLog = lp
		}
	}
	if math.IsInf(maxLog, -1) {
		return nil, fmt.Errorf("degrade: joint posterior vanished (inconsistent observations)")
	}
	var sum float64
	for i, lp := range acc.logPost {
		out[i] = math.Exp(lp - maxLog)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out, nil
}

// Entropy returns the Shannon entropy (bits) of the joint posterior —
// the sender's remaining anonymity after Rounds messages.
func (acc *Accumulator) Entropy() (float64, error) {
	p, err := acc.Posterior()
	if err != nil {
		return 0, err
	}
	return entropy.Bits(p), nil
}

// Top returns the argmax node of the joint posterior and its probability.
func (acc *Accumulator) Top() (trace.NodeID, float64, error) {
	p, err := acc.Posterior()
	if err != nil {
		return 0, 0, err
	}
	best, arg := -1.0, 0
	for i, v := range p {
		if v > best {
			best, arg = v, i
		}
	}
	return trace.NodeID(arg), best, nil
}

// Config parameterizes a repeated-communication experiment: one fixed
// sender sends Rounds messages under the strategy; the adversary
// accumulates; the experiment repeats Trials times with fresh paths.
type Config struct {
	// N is the system size.
	N int
	// Compromised lists the adversary's nodes.
	Compromised []trace.NodeID
	// Strategy draws each round's path (simple paths).
	Strategy pathsel.Strategy
	// Sender is the fixed initiator (must not be compromised).
	Sender trace.NodeID
	// Confidence is the posterior mass on the true sender at which the
	// adversary declares identification (e.g. 0.95).
	Confidence float64
	// MaxRounds caps each trial.
	MaxRounds int
	// Trials is the number of independent repetitions.
	Trials int
	// Seed makes runs reproducible.
	Seed int64
	// Workers sets sampling parallelism (default 4).
	Workers int
}

func (c Config) validate() error {
	if c.N < 2 {
		return fmt.Errorf("%w: n = %d", ErrBadConfig, c.N)
	}
	if int(c.Sender) < 0 || int(c.Sender) >= c.N {
		return fmt.Errorf("%w: sender %v", ErrBadConfig, c.Sender)
	}
	for _, id := range c.Compromised {
		if id == c.Sender {
			return fmt.Errorf("%w: sender %v is compromised (identified at round 0)", ErrBadConfig, id)
		}
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		return fmt.Errorf("%w: confidence %v", ErrBadConfig, c.Confidence)
	}
	if c.MaxRounds < 1 || c.Trials < 1 {
		return fmt.Errorf("%w: maxRounds %d, trials %d", ErrBadConfig, c.MaxRounds, c.Trials)
	}
	if c.Strategy.Kind != pathsel.Simple {
		return fmt.Errorf("%w: Bayesian accumulation needs simple paths (use CrowdsDegradation for cyclic routes)", ErrBadConfig)
	}
	return nil
}

// Result summarizes a repeated-communication experiment.
type Result struct {
	// IdentifiedShare is the fraction of trials in which the adversary
	// reached the confidence threshold within MaxRounds.
	IdentifiedShare float64
	// MeanRounds is the average identification round among identified
	// trials.
	MeanRounds float64
	// MeanEntropyAfter holds the average remaining anonymity (bits) after
	// each round, indexed round−1, averaged over all trials.
	MeanEntropyAfter []float64
	// Trials echoes the number of repetitions.
	Trials int
}

// Run executes the repeated-communication experiment: per trial, the fixed
// sender sends up to MaxRounds messages over fresh paths; the accumulated
// posterior is tracked until the confidence threshold is reached.
func Run(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	eng, err := newAnalystFactory(cfg)
	if err != nil {
		return Result{}, err
	}

	type part struct {
		identified  int
		roundsSum   int
		entropySums []float64
		counts      []int
		err         error
	}
	parts := make([]part, cfg.Workers)
	per := cfg.Trials / cfg.Workers
	extra := cfg.Trials % cfg.Workers

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		trials := per
		if w < extra {
			trials++
		}
		if trials == 0 {
			continue
		}
		wg.Add(1)
		go func(w, trials int) {
			defer wg.Done()
			p := &parts[w]
			p.entropySums = make([]float64, cfg.MaxRounds)
			p.counts = make([]int, cfg.MaxRounds)
			rng := stats.Fork(cfg.Seed, int64(w))
			for t := 0; t < trials; t++ {
				acc, sel, err := eng()
				if err != nil {
					p.err = err
					return
				}
				identified := false
				for r := 0; r < cfg.MaxRounds; r++ {
					path, err := sel.SelectPath(rng, cfg.Sender)
					if err != nil {
						p.err = err
						return
					}
					mt := montecarlo.Synthesize(trace.MessageID(r+1), cfg.Sender, path,
						func(id trace.NodeID) bool { return compromisedIn(cfg.Compromised, id) })
					if err := acc.Observe(mt); err != nil {
						p.err = err
						return
					}
					h, err := acc.Entropy()
					if err != nil {
						p.err = err
						return
					}
					p.entropySums[r] += h
					p.counts[r]++
					if identified {
						continue
					}
					top, mass, err := acc.Top()
					if err != nil {
						p.err = err
						return
					}
					if top == cfg.Sender && mass >= cfg.Confidence {
						identified = true
						p.identified++
						p.roundsSum += r + 1
					}
				}
			}
		}(w, trials)
	}
	wg.Wait()

	res := Result{Trials: cfg.Trials, MeanEntropyAfter: make([]float64, cfg.MaxRounds)}
	counts := make([]int, cfg.MaxRounds)
	var identified, roundsSum int
	for i := range parts {
		if parts[i].err != nil {
			return Result{}, parts[i].err
		}
		identified += parts[i].identified
		roundsSum += parts[i].roundsSum
		for r := range parts[i].entropySums {
			res.MeanEntropyAfter[r] += parts[i].entropySums[r]
			counts[r] += parts[i].counts[r]
		}
	}
	for r := range res.MeanEntropyAfter {
		if counts[r] > 0 {
			res.MeanEntropyAfter[r] /= float64(counts[r])
		}
	}
	res.IdentifiedShare = float64(identified) / float64(cfg.Trials)
	if identified > 0 {
		res.MeanRounds = float64(roundsSum) / float64(identified)
	}
	return res, nil
}

// newAnalystFactory pre-validates the configuration and returns a factory
// producing a fresh accumulator and selector per trial.
func newAnalystFactory(cfg Config) (func() (*Accumulator, *pathsel.Selector, error), error) {
	// Validate once up front by constructing a throwaway pair.
	mk := func() (*Accumulator, *pathsel.Selector, error) {
		analyst, err := newAnalyst(cfg)
		if err != nil {
			return nil, nil, err
		}
		acc, err := NewAccumulator(analyst)
		if err != nil {
			return nil, nil, err
		}
		sel, err := pathsel.NewSelector(cfg.N, cfg.Strategy)
		if err != nil {
			return nil, nil, err
		}
		return acc, sel, nil
	}
	if _, _, err := mk(); err != nil {
		return nil, err
	}
	return mk, nil
}

// newAnalyst builds the adversary for a configuration through the
// scenario layer, so repeated-communication experiments share the
// process-wide memoizing engine with every other consumer.
func newAnalyst(cfg Config) (*adversary.Analyst, error) {
	return scenario.NewAnalyst(scenario.Config{
		N:         cfg.N,
		Strategy:  cfg.Strategy,
		Adversary: scenario.Adversary{Compromised: cfg.Compromised},
	})
}

// compromisedIn reports membership of id in the compromised list.
func compromisedIn(list []trace.NodeID, id trace.NodeID) bool {
	for _, c := range list {
		if c == id {
			return true
		}
	}
	return false
}

// CrowdsResult summarizes the predecessor-counting attack on Crowds.
type CrowdsResult struct {
	// IdentifiedShare is the fraction of trials where the initiator ends
	// with the strictly highest predecessor count.
	IdentifiedShare float64
	// MeanObservedRounds is the average number of rounds in which a
	// collaborator was on the path at all.
	MeanObservedRounds float64
}

// CrowdsDegradation simulates the predecessor-counting attack across path
// reformations: each round a fresh Crowds path forms; if a collaborator is
// on it, the first collaborator's predecessor gets one count; after rounds
// reformations the adversary accuses the highest count.
func CrowdsDegradation(n, c int, pf float64, rounds, trials int, seed int64) (CrowdsResult, error) {
	if _, err := crowds.PredecessorProb(n, c, pf); err != nil {
		return CrowdsResult{}, err
	}
	if rounds < 1 || trials < 1 {
		return CrowdsResult{}, fmt.Errorf("%w: rounds %d, trials %d", ErrBadConfig, rounds, trials)
	}
	rng := stats.NewRand(seed)
	var identified int
	var observedSum int
	for t := 0; t < trials; t++ {
		initiator := c + rng.Intn(n-c)
		counts := make(map[int]int)
		observed := 0
		for r := 0; r < rounds; r++ {
			pred := initiator
			cur := rng.Intn(n)
			for {
				if cur < c {
					counts[pred]++
					observed++
					break
				}
				if rng.Float64() >= pf {
					break
				}
				pred = cur
				cur = rng.Intn(n)
			}
		}
		observedSum += observed
		best, bestCount, unique := -1, -1, false
		for node, k := range counts {
			switch {
			case k > bestCount:
				best, bestCount, unique = node, k, true
			case k == bestCount:
				unique = false
			}
		}
		if unique && best == initiator {
			identified++
		}
	}
	return CrowdsResult{
		IdentifiedShare:    float64(identified) / float64(trials),
		MeanObservedRounds: float64(observedSum) / float64(trials),
	}, nil
}

// CrowdsRoundsBound returns a Chernoff-style upper bound on the number of
// *observed* rounds after which predecessor counting separates the
// initiator from every other honest jondo with failure probability at most
// delta. With per-observation initiator rate p1 = P(H1|H1+) and
// per-other-jondo rate q = (1−p1)/(n−c−1), the counts separate once
//
//	R ≥ 2·ln((n−c−1)/delta) / (p1 − q)²
//
// by Hoeffding's inequality applied to the count difference of each
// competing jondo, union-bounded over the n−c−1 competitors.
func CrowdsRoundsBound(n, c int, pf, delta float64) (int, error) {
	p1, err := crowds.PredecessorProb(n, c, pf)
	if err != nil {
		return 0, err
	}
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("%w: delta %v", ErrBadConfig, delta)
	}
	others := float64(n - c - 1)
	if others < 1 {
		return 1, nil
	}
	q := (1 - p1) / others
	gap := p1 - q
	if gap <= 0 {
		return 0, fmt.Errorf("%w: no identification gap (p1 = %v, q = %v)", ErrBadConfig, p1, q)
	}
	r := 2 * math.Log(others/delta) / (gap * gap)
	return int(math.Ceil(r)), nil
}
