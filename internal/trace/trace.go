// Package trace defines the observation records of the paper's threat model
// (§4): every compromised node on a rerouting path reports the tuple
// (time, predecessor, successor) for each message it forwards, and the
// compromised receiver reports (time, predecessor). The adversary collects
// these tuples, orders them by time, and hands them to the inference layer.
package trace

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a node of the anonymous communication system.
// Values 0..N−1 are system nodes; Receiver denotes the (external) receiver.
type NodeID int

// Receiver is the pseudo-identity of the message receiver, which the paper
// does not count among the system's N nodes.
const Receiver NodeID = -1

// String renders the node or the receiver marker.
func (n NodeID) String() string {
	if n == Receiver {
		return "R"
	}
	return fmt.Sprintf("n%d", int(n))
}

// MessageID correlates reports belonging to one logical message. The paper
// assumes the adversary can correlate observations of the same message
// across compromised nodes (§4, worst-case assumption).
type MessageID uint64

// Tuple is one report from the adversary's agent at a compromised node:
// at logical time Time, node Observer relayed message Msg from Pred to
// Succ. A receiver report has Observer == Receiver and no successor.
type Tuple struct {
	// Time is a logical timestamp; the collector guarantees that
	// timestamps increase along each message's path.
	Time uint64
	// Observer is the reporting compromised node (or Receiver).
	Observer NodeID
	// Msg correlates tuples of the same message.
	Msg MessageID
	// Pred is the node the message arrived from.
	Pred NodeID
	// Succ is the node the message was forwarded to (Receiver when the
	// observer was the last intermediate; unset for receiver reports).
	Succ NodeID
}

// ErrNoReceiverReport reports a message trace without the receiver tuple in
// a model where the receiver is compromised.
var ErrNoReceiverReport = errors.New("trace: message has no receiver report")

// MessageTrace is every report collected for one message, split into the
// on-path compromised node reports (time-ordered) and the receiver report.
type MessageTrace struct {
	// Msg is the correlated message.
	Msg MessageID
	// Reports holds compromised-node tuples ordered by Time.
	Reports []Tuple
	// ReceiverSeen tells whether the receiver reported this message.
	ReceiverSeen bool
	// ReceiverPred is the receiver's reported predecessor (valid only when
	// ReceiverSeen).
	ReceiverPred NodeID
}

// Collate groups raw tuples by message and time-orders each group.
// Receiver tuples are split out. The input is not modified.
func Collate(tuples []Tuple) map[MessageID]*MessageTrace {
	out := make(map[MessageID]*MessageTrace)
	get := func(id MessageID) *MessageTrace {
		mt, ok := out[id]
		if !ok {
			mt = &MessageTrace{Msg: id}
			out[id] = mt
		}
		return mt
	}
	for _, t := range tuples {
		mt := get(t.Msg)
		if t.Observer == Receiver {
			mt.ReceiverSeen = true
			mt.ReceiverPred = t.Pred
			continue
		}
		mt.Reports = append(mt.Reports, t)
	}
	for _, mt := range out {
		sort.Slice(mt.Reports, func(i, j int) bool {
			return mt.Reports[i].Time < mt.Reports[j].Time
		})
	}
	return out
}
