package trace

import (
	"testing"
)

func TestNodeIDString(t *testing.T) {
	if got := NodeID(5).String(); got != "n5" {
		t.Errorf("String = %q", got)
	}
	if got := Receiver.String(); got != "R" {
		t.Errorf("Receiver String = %q", got)
	}
}

func TestCollateGroupsAndOrders(t *testing.T) {
	tuples := []Tuple{
		{Time: 30, Observer: 2, Msg: 1, Pred: 1, Succ: 3},
		{Time: 10, Observer: 7, Msg: 1, Pred: 0, Succ: 1},
		{Time: 40, Observer: Receiver, Msg: 1, Pred: 9},
		{Time: 5, Observer: Receiver, Msg: 2, Pred: 4},
		{Time: 1, Observer: 3, Msg: 2, Pred: 8, Succ: 4},
	}
	got := Collate(tuples)
	if len(got) != 2 {
		t.Fatalf("collated %d messages, want 2", len(got))
	}
	m1 := got[1]
	if len(m1.Reports) != 2 {
		t.Fatalf("msg 1: %d reports", len(m1.Reports))
	}
	if m1.Reports[0].Observer != 7 || m1.Reports[1].Observer != 2 {
		t.Errorf("msg 1 reports out of order: %+v", m1.Reports)
	}
	if !m1.ReceiverSeen || m1.ReceiverPred != 9 {
		t.Errorf("msg 1 receiver: seen=%v pred=%v", m1.ReceiverSeen, m1.ReceiverPred)
	}
	m2 := got[2]
	if !m2.ReceiverSeen || m2.ReceiverPred != 4 || len(m2.Reports) != 1 {
		t.Errorf("msg 2: %+v", m2)
	}
}

func TestCollateNoReceiver(t *testing.T) {
	got := Collate([]Tuple{{Time: 1, Observer: 0, Msg: 9, Pred: 1, Succ: 2}})
	mt := got[9]
	if mt.ReceiverSeen {
		t.Error("receiver marked seen without a receiver tuple")
	}
}

func TestCollateEmpty(t *testing.T) {
	if got := Collate(nil); len(got) != 0 {
		t.Errorf("Collate(nil) = %v", got)
	}
}

func TestCollateDoesNotMutateInput(t *testing.T) {
	in := []Tuple{
		{Time: 2, Observer: 1, Msg: 1, Pred: 0, Succ: 2},
		{Time: 1, Observer: 2, Msg: 1, Pred: 1, Succ: 3},
	}
	want := append([]Tuple(nil), in...)
	Collate(in)
	for i := range in {
		if in[i] != want[i] {
			t.Fatalf("input mutated at %d: %+v", i, in[i])
		}
	}
}
