package onion_test

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"

	"anonmix/internal/onion"
	"anonmix/internal/trace"
)

func TestBuildPaddedRoundTrip(t *testing.T) {
	kr := ring(t, 8)
	const cell = 256
	payloads := [][]byte{
		nil,
		[]byte("x"),
		[]byte("a moderately sized message body"),
		bytes.Repeat([]byte{0xAB}, cell), // exactly cell bytes
	}
	route := []trace.NodeID{1, 4, 6}
	for _, payload := range payloads {
		blob, err := onion.BuildPadded(kr, route, payload, cell, rand.Reader)
		if err != nil {
			t.Fatalf("payload %d bytes: %v", len(payload), err)
		}
		if want := onion.PaddedSize(len(route), cell); len(blob) != want {
			t.Errorf("payload %d bytes: onion size %d, want %d", len(payload), len(blob), want)
		}
		for i, hop := range route {
			next, inner, err := onion.Peel(kr, hop, blob)
			if err != nil {
				t.Fatalf("hop %d: %v", i, err)
			}
			wantNext := trace.Receiver
			if i+1 < len(route) {
				wantNext = route[i+1]
			}
			if next != wantNext {
				t.Fatalf("hop %d: next %v, want %v", i, next, wantNext)
			}
			blob = inner
		}
		if !bytes.Equal(blob, payload) && !(len(blob) == 0 && len(payload) == 0) {
			t.Errorf("payload %d bytes corrupted: got %d bytes back", len(payload), len(blob))
		}
	}
}

// TestBuildPaddedUniformSize: onions over equal-length routes are
// byte-identical in size regardless of payload length.
func TestBuildPaddedUniformSize(t *testing.T) {
	kr := ring(t, 8)
	const cell = 512
	route := []trace.NodeID{2, 5}
	small, err := onion.BuildPadded(kr, route, []byte("s"), cell, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	big, err := onion.BuildPadded(kr, route, bytes.Repeat([]byte{1}, 400), cell, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if len(small) != len(big) {
		t.Errorf("size leak: %d vs %d bytes", len(small), len(big))
	}
}

func TestBuildPaddedValidation(t *testing.T) {
	kr := ring(t, 4)
	if _, err := onion.BuildPadded(kr, []trace.NodeID{1}, bytes.Repeat([]byte{1}, 10), 5, rand.Reader); !errors.Is(err, onion.ErrBadRoute) {
		t.Error("oversized payload accepted")
	}
	// Direct padded send requires payload == cell (no layer to carry the
	// true length).
	if _, err := onion.BuildPadded(kr, nil, []byte("short"), 64, rand.Reader); !errors.Is(err, onion.ErrBadRoute) {
		t.Error("short direct padded send accepted")
	}
	full := bytes.Repeat([]byte{7}, 64)
	blob, err := onion.BuildPadded(kr, nil, full, 64, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, full) {
		t.Error("direct padded send should pass through")
	}
}

func TestPaddedSize(t *testing.T) {
	// Each layer adds IV (16) + HMAC (32) + header (8) = 56 bytes.
	if got := onion.PaddedSize(0, 100); got != 100 {
		t.Errorf("0 hops: %d", got)
	}
	if got := onion.PaddedSize(3, 100); got != 100+3*56 {
		t.Errorf("3 hops: %d, want %d", got, 100+3*56)
	}
}

// FuzzBuildPeel exercises the codec with arbitrary payloads and route
// shapes.
func FuzzBuildPeel(f *testing.F) {
	f.Add([]byte("seed"), uint8(3))
	f.Add([]byte{}, uint8(0))
	f.Add(bytes.Repeat([]byte{0xFF}, 1024), uint8(7))
	kr, err := onion.NewKeyRing([]byte("fuzz ring"), 8)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, payload []byte, routeLen uint8) {
		l := int(routeLen) % 8
		route := make([]trace.NodeID, l)
		for i := range route {
			route[i] = trace.NodeID((i * 3) % 8)
		}
		blob, err := onion.Build(kr, route, payload, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		for i, hop := range route {
			next, inner, err := onion.Peel(kr, hop, blob)
			if err != nil {
				t.Fatalf("hop %d: %v", i, err)
			}
			if i == len(route)-1 {
				if next != trace.Receiver {
					t.Fatalf("exit next = %v", next)
				}
			} else if next != route[i+1] {
				t.Fatalf("hop %d: next %v, want %v", i, next, route[i+1])
			}
			blob = inner
		}
		if !bytes.Equal(blob, payload) && !(len(blob) == 0 && len(payload) == 0) {
			t.Fatalf("payload mismatch: %d vs %d bytes", len(blob), len(payload))
		}
	})
}
