// Package onion implements the layered-encryption message format of
// onion-routing systems (Onion Routing I/II, Freedom, PipeNet — paper §2):
// the sender wraps the payload in one encryption layer per intermediate
// node, each layer naming only the next hop. A node peels its layer with
// its own key and learns nothing but its predecessor and successor — which
// is precisely the per-node observation granted to the adversary in the
// paper's threat model (§4).
//
// Layers use AES-256-CTR for confidentiality and HMAC-SHA256 for layer
// integrity, both from the standard library. Key management is pre-shared:
// a KeyRing derives per-node keys from a ring secret, standing in for the
// public-key infrastructure real deployments use (see DESIGN.md §5).
package onion

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"anonmix/internal/simnet"
	"anonmix/internal/trace"
)

// Errors returned by the codec.
var (
	// ErrBadRoute reports an invalid route for Build.
	ErrBadRoute = errors.New("onion: invalid route")
	// ErrAuth reports a layer whose HMAC does not verify under the
	// peeling node's key (wrong node, corrupted, or truncated onion).
	ErrAuth = errors.New("onion: layer authentication failed")
	// ErrTruncated reports a structurally short blob.
	ErrTruncated = errors.New("onion: truncated layer")
)

const (
	keySize   = 32
	macSize   = sha256.Size
	ivSize    = aes.BlockSize
	headerLen = 8 // next-hop int32 + inner length uint32
)

// KeyRing holds the symmetric key of every node, derived from a ring
// secret. The adversary's compromised nodes hold their own keys only —
// peeling someone else's layer fails authentication.
type KeyRing struct {
	keys [][]byte
}

// NewKeyRing derives n per-node keys from the given secret.
func NewKeyRing(secret []byte, n int) (*KeyRing, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: %d nodes", ErrBadRoute, n)
	}
	kr := &KeyRing{keys: make([][]byte, n)}
	for i := 0; i < n; i++ {
		mac := hmac.New(sha256.New, secret)
		var id [4]byte
		binary.BigEndian.PutUint32(id[:], uint32(i))
		mac.Write(id[:])
		kr.keys[i] = mac.Sum(nil)
	}
	return kr, nil
}

// Key returns node id's key (the caller must not modify it).
func (kr *KeyRing) Key(id trace.NodeID) ([]byte, error) {
	if int(id) < 0 || int(id) >= len(kr.keys) {
		return nil, fmt.Errorf("%w: no key for %v", ErrBadRoute, id)
	}
	return kr.keys[id], nil
}

// N returns the number of keys in the ring.
func (kr *KeyRing) N() int { return len(kr.keys) }

// Build wraps payload in one layer per route node, innermost first. The
// first element of route peels first. Random IVs are drawn from rand
// (pass a seeded reader for reproducible simulations, crypto/rand.Reader
// otherwise). The first hop is route[0]; Build returns the blob to hand to
// it.
func Build(kr *KeyRing, route []trace.NodeID, payload []byte, rand io.Reader) ([]byte, error) {
	if kr == nil {
		return nil, fmt.Errorf("%w: nil key ring", ErrBadRoute)
	}
	for _, hop := range route {
		if int(hop) < 0 || int(hop) >= kr.N() {
			return nil, fmt.Errorf("%w: hop %v", ErrBadRoute, hop)
		}
	}
	// Innermost layer: deliver to the receiver.
	blob := append([]byte(nil), payload...)
	next := trace.Receiver
	for i := len(route) - 1; i >= 0; i-- {
		key, err := kr.Key(route[i])
		if err != nil {
			return nil, err
		}
		blob, err = seal(key, next, blob, rand)
		if err != nil {
			return nil, err
		}
		next = route[i]
	}
	return blob, nil
}

// BuildPadded is Build with Chaum-style fixed-length payloads: the payload
// is padded with random bytes to exactly cell bytes inside the innermost
// layer (the true length travels inside the authenticated header, so the
// exit node recovers the exact payload). All onions over routes of equal
// length are therefore byte-identical in size regardless of payload,
// removing the payload-length side channel. Each layer still adds a
// constant 56-byte header, so the on-wire size reveals the *remaining* hop
// count; hiding that requires per-hop re-padding, which the paper's threat
// model does not demand (the adversary is granted the path-length
// distribution outright).
func BuildPadded(kr *KeyRing, route []trace.NodeID, payload []byte, cell int, rand io.Reader) ([]byte, error) {
	if cell < len(payload) {
		return nil, fmt.Errorf("%w: payload %d bytes exceeds cell %d", ErrBadRoute, len(payload), cell)
	}
	padded := make([]byte, cell)
	n := copy(padded, payload)
	if _, err := io.ReadFull(rand, padded[n:]); err != nil {
		return nil, fmt.Errorf("onion: drawing padding: %w", err)
	}
	if len(route) == 0 {
		// Direct delivery carries the padded cell; the receiver-side
		// length header is not available without a layer, so the true
		// payload must fill the cell.
		if n != cell {
			return nil, fmt.Errorf("%w: direct padded sends need payload == cell", ErrBadRoute)
		}
		return padded, nil
	}
	// Seal the exit layer with the true length, then the remaining layers.
	key, err := kr.Key(route[len(route)-1])
	if err != nil {
		return nil, err
	}
	blob, err := sealWithLen(key, trace.Receiver, padded, n, rand)
	if err != nil {
		return nil, err
	}
	next := route[len(route)-1]
	for i := len(route) - 2; i >= 0; i-- {
		key, err := kr.Key(route[i])
		if err != nil {
			return nil, err
		}
		blob, err = seal(key, next, blob, rand)
		if err != nil {
			return nil, err
		}
		next = route[i]
	}
	return blob, nil
}

// PaddedSize returns the on-wire size of a BuildPadded onion over a route
// of the given length.
func PaddedSize(routeLen, cell int) int {
	return cell + routeLen*(ivSize+macSize+headerLen)
}

// Peel removes the outermost layer with the given node's key, returning
// the next hop (trace.Receiver when this node is the exit) and the inner
// blob (the payload at the exit).
func Peel(kr *KeyRing, self trace.NodeID, blob []byte) (trace.NodeID, []byte, error) {
	key, err := kr.Key(self)
	if err != nil {
		return 0, nil, err
	}
	return open(key, blob)
}

// seal encrypts (next, inner) under key with a fresh IV and prepends
// IV ‖ HMAC(iv ‖ ciphertext).
func seal(key []byte, next trace.NodeID, inner []byte, rand io.Reader) ([]byte, error) {
	return sealWithLen(key, next, inner, len(inner), rand)
}

// sealWithLen seals a layer whose carried bytes may exceed the true inner
// length (trailing padding); open strips the padding via the length field.
func sealWithLen(key []byte, next trace.NodeID, inner []byte, trueLen int, rand io.Reader) ([]byte, error) {
	if trueLen < 0 || trueLen > len(inner) {
		return nil, fmt.Errorf("%w: inner length %d of %d", ErrBadRoute, trueLen, len(inner))
	}
	plain := make([]byte, headerLen+len(inner))
	binary.BigEndian.PutUint32(plain[0:4], uint32(int32(next)))
	binary.BigEndian.PutUint32(plain[4:8], uint32(trueLen))
	copy(plain[headerLen:], inner)

	iv := make([]byte, ivSize)
	if _, err := io.ReadFull(rand, iv); err != nil {
		return nil, fmt.Errorf("onion: drawing IV: %w", err)
	}
	block, err := aes.NewCipher(key[:keySize])
	if err != nil {
		return nil, fmt.Errorf("onion: cipher init: %w", err)
	}
	ct := make([]byte, len(plain))
	cipher.NewCTR(block, iv).XORKeyStream(ct, plain)

	mac := hmac.New(sha256.New, key)
	mac.Write(iv)
	mac.Write(ct)
	tag := mac.Sum(nil)

	out := make([]byte, 0, ivSize+macSize+len(ct))
	out = append(out, iv...)
	out = append(out, tag...)
	out = append(out, ct...)
	return out, nil
}

// open verifies and decrypts one layer.
func open(key, blob []byte) (trace.NodeID, []byte, error) {
	if len(blob) < ivSize+macSize+headerLen {
		return 0, nil, ErrTruncated
	}
	iv := blob[:ivSize]
	tag := blob[ivSize : ivSize+macSize]
	ct := blob[ivSize+macSize:]

	mac := hmac.New(sha256.New, key)
	mac.Write(iv)
	mac.Write(ct)
	if !hmac.Equal(tag, mac.Sum(nil)) {
		return 0, nil, ErrAuth
	}
	block, err := aes.NewCipher(key[:keySize])
	if err != nil {
		return 0, nil, fmt.Errorf("onion: cipher init: %w", err)
	}
	plain := make([]byte, len(ct))
	cipher.NewCTR(block, iv).XORKeyStream(plain, ct)

	next := trace.NodeID(int32(binary.BigEndian.Uint32(plain[0:4])))
	innerLen := binary.BigEndian.Uint32(plain[4:8])
	if int(innerLen) > len(plain)-headerLen {
		return 0, nil, ErrTruncated
	}
	return next, plain[headerLen : headerLen+int(innerLen)], nil
}

// Forwarder peels one onion layer per hop on the simnet testbed.
type Forwarder struct {
	ring *KeyRing
}

// NewForwarder returns a testbed forwarder over the given key ring.
func NewForwarder(kr *KeyRing) (*Forwarder, error) {
	if kr == nil {
		return nil, fmt.Errorf("%w: nil key ring", ErrBadRoute)
	}
	return &Forwarder{ring: kr}, nil
}

// Next implements simnet.Forwarder by peeling the packet's onion with this
// node's key. At the exit node the decrypted payload replaces the packet
// payload.
func (f *Forwarder) Next(self trace.NodeID, pkt *simnet.Packet) (trace.NodeID, error) {
	next, inner, err := Peel(f.ring, self, pkt.Onion)
	if err != nil {
		return 0, err
	}
	if next == trace.Receiver {
		pkt.Payload = inner
		pkt.Onion = nil
	} else {
		pkt.Onion = inner
	}
	return next, nil
}

// Interface compliance.
var _ simnet.Forwarder = (*Forwarder)(nil)
