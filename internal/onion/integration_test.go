package onion_test

// Full-stack integration: strategy-driven routes are onion-encoded, flow
// through the goroutine testbed, compromised nodes and the receiver file
// tuple reports, the adversary analyzes the whole stream in one call, and
// the empirical anonymity degree must match the exact engine. This
// exercises every layer of the repository in one test.

import (
	"crypto/rand"
	"math"
	"testing"
	"time"

	"anonmix/internal/adversary"
	"anonmix/internal/dist"
	"anonmix/internal/events"
	"anonmix/internal/onion"
	"anonmix/internal/pathsel"
	"anonmix/internal/simnet"
	"anonmix/internal/stats"
	"anonmix/internal/trace"
)

func TestOnionFullStackAnonymityDegree(t *testing.T) {
	const (
		n      = 12
		trials = 1500
	)
	compromised := []trace.NodeID{3, 8}
	u, err := dist.NewUniform(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	strat := pathsel.Strategy{Name: "U(0,5)", Length: u, Kind: pathsel.Simple}
	sel, err := pathsel.NewSelector(n, strat)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := events.New(n, len(compromised))
	if err != nil {
		t.Fatal(err)
	}
	analyst, err := adversary.NewAnalyst(engine, u, compromised)
	if err != nil {
		t.Fatal(err)
	}
	kr := ring(t, n)
	fwd, err := onion.NewForwarder(kr)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := simnet.New(simnet.Config{N: n, Compromised: compromised, Forwarder: fwd, Buffer: 4096})
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	defer nw.Close()

	rng := stats.NewRand(99)
	senders := make(map[trace.MessageID]trace.NodeID, trials)
	for i := 0; i < trials; i++ {
		sender := trace.NodeID(rng.Intn(n))
		path, err := sel.SelectPath(rng, sender)
		if err != nil {
			t.Fatal(err)
		}
		var id trace.MessageID
		if len(path) == 0 {
			id, err = nw.Inject(sender, trace.Receiver, simnet.Packet{Payload: []byte("m")})
		} else {
			var blob []byte
			blob, err = onion.Build(kr, path, []byte("m"), rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			id, err = nw.Inject(sender, path[0], simnet.Packet{Onion: blob})
		}
		if err != nil {
			t.Fatal(err)
		}
		senders[id] = sender
	}
	if err := nw.WaitSettled(time.Minute); err != nil {
		t.Fatal(err)
	}
	if drops := nw.Dropped(); len(drops) != 0 {
		t.Fatalf("drops: %v", drops)
	}
	// Every message decrypted correctly at the exit.
	for _, d := range nw.Deliveries() {
		if string(d.Payload) != "m" {
			t.Fatalf("message %d: payload %q", d.Msg, d.Payload)
		}
	}

	posts, incomplete, err := analyst.AnalyzeAll(nw.Tuples())
	if err != nil {
		t.Fatal(err)
	}
	if len(incomplete) != 0 {
		t.Fatalf("incomplete traces: %v", incomplete)
	}
	if len(posts) != trials {
		t.Fatalf("analyzed %d of %d", len(posts), trials)
	}
	var sum stats.Summary
	for id, post := range posts {
		sender := senders[id]
		if analyst.Compromised(sender) {
			sum.Add(0)
			continue
		}
		if post.P[sender] <= 0 {
			t.Fatalf("msg %d: true sender excluded", id)
		}
		sum.Add(post.H)
	}
	want, err := engine.AnonymityDegree(u)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum.Mean()-want) > 4*sum.StdErr()+2e-3 {
		t.Errorf("onion stack H = %v ± %v, engine H* = %v", sum.Mean(), sum.StdErr(), want)
	}
}
