package onion_test

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"
	"time"

	"anonmix/internal/onion"
	"anonmix/internal/simnet"
	"anonmix/internal/trace"
)

func ring(t *testing.T, n int) *onion.KeyRing {
	t.Helper()
	kr, err := onion.NewKeyRing([]byte("test ring secret"), n)
	if err != nil {
		t.Fatal(err)
	}
	return kr
}

func TestKeyRing(t *testing.T) {
	if _, err := onion.NewKeyRing(nil, 0); !errors.Is(err, onion.ErrBadRoute) {
		t.Errorf("n=0 err = %v", err)
	}
	kr := ring(t, 5)
	if kr.N() != 5 {
		t.Errorf("N = %d", kr.N())
	}
	k0, err := kr.Key(0)
	if err != nil {
		t.Fatal(err)
	}
	k1, err := kr.Key(1)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(k0, k1) {
		t.Error("distinct nodes share a key")
	}
	if _, err := kr.Key(5); !errors.Is(err, onion.ErrBadRoute) {
		t.Errorf("out-of-range key err = %v", err)
	}
	if _, err := kr.Key(trace.Receiver); !errors.Is(err, onion.ErrBadRoute) {
		t.Errorf("receiver key err = %v", err)
	}
	// Different ring secrets derive different keys.
	kr2, err := onion.NewKeyRing([]byte("other secret"), 5)
	if err != nil {
		t.Fatal(err)
	}
	o0, err := kr2.Key(0)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(k0, o0) {
		t.Error("different secrets derived the same key")
	}
}

func TestBuildPeelRoundTrip(t *testing.T) {
	kr := ring(t, 8)
	payload := []byte("the quick brown fox")
	routes := [][]trace.NodeID{
		{},
		{3},
		{1, 5},
		{7, 0, 2, 4, 6},
	}
	for _, route := range routes {
		blob, err := onion.Build(kr, route, payload, rand.Reader)
		if err != nil {
			t.Fatalf("route %v: %v", route, err)
		}
		for i, hop := range route {
			next, inner, err := onion.Peel(kr, hop, blob)
			if err != nil {
				t.Fatalf("route %v hop %d: %v", route, i, err)
			}
			wantNext := trace.Receiver
			if i+1 < len(route) {
				wantNext = route[i+1]
			}
			if next != wantNext {
				t.Fatalf("route %v hop %d: next = %v, want %v", route, i, next, wantNext)
			}
			blob = inner
		}
		if !bytes.Equal(blob, payload) {
			t.Errorf("route %v: payload corrupted: %q", route, blob)
		}
	}
}

func TestPeelWrongNodeFails(t *testing.T) {
	kr := ring(t, 6)
	blob, err := onion.Build(kr, []trace.NodeID{2, 4}, []byte("secret"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := onion.Peel(kr, 3, blob); !errors.Is(err, onion.ErrAuth) {
		t.Errorf("wrong node peel err = %v", err)
	}
	// The inner layer must not peel under the outer node's key either.
	_, inner, err := onion.Peel(kr, 2, blob)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := onion.Peel(kr, 2, inner); !errors.Is(err, onion.ErrAuth) {
		t.Errorf("replayed key peel err = %v", err)
	}
}

func TestPeelTamperDetected(t *testing.T) {
	kr := ring(t, 4)
	blob, err := onion.Build(kr, []trace.NodeID{1}, []byte("x"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0x01
	if _, _, err := onion.Peel(kr, 1, blob); !errors.Is(err, onion.ErrAuth) {
		t.Errorf("tampered peel err = %v", err)
	}
	if _, _, err := onion.Peel(kr, 1, blob[:10]); !errors.Is(err, onion.ErrTruncated) {
		t.Errorf("truncated peel err = %v", err)
	}
}

func TestBuildValidation(t *testing.T) {
	kr := ring(t, 4)
	if _, err := onion.Build(nil, nil, nil, rand.Reader); !errors.Is(err, onion.ErrBadRoute) {
		t.Errorf("nil ring err = %v", err)
	}
	if _, err := onion.Build(kr, []trace.NodeID{9}, nil, rand.Reader); !errors.Is(err, onion.ErrBadRoute) {
		t.Errorf("bad hop err = %v", err)
	}
	if _, err := onion.NewForwarder(nil); !errors.Is(err, onion.ErrBadRoute) {
		t.Errorf("nil forwarder ring err = %v", err)
	}
}

// TestLayersHideRoute: a compromised node must not learn hops beyond its
// successor — peeled layers reveal exactly one next hop, and the remaining
// blob is indistinguishable from random to that node (we verify it cannot
// be peeled again with the same key, and that two onions over the same
// route differ thanks to fresh IVs).
func TestLayersHideRoute(t *testing.T) {
	kr := ring(t, 6)
	route := []trace.NodeID{1, 2, 3}
	a, err := onion.Build(kr, route, []byte("p"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	b, err := onion.Build(kr, route, []byte("p"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Error("identical onions for identical routes: IVs not fresh")
	}
}

// TestOnionOverTestbed runs the onion stack end to end on the goroutine
// network: routes are onion-encoded, nodes peel layers, the exit delivers
// the decrypted payload, and compromised taps still see only predecessor
// and successor.
func TestOnionOverTestbed(t *testing.T) {
	const n = 10
	kr := ring(t, n)
	fwd, err := onion.NewForwarder(kr)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := simnet.New(simnet.Config{
		N: n, Compromised: []trace.NodeID{4}, Forwarder: fwd,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	defer nw.Close()

	route := []trace.NodeID{2, 4, 7}
	blob, err := onion.Build(kr, route, []byte("top secret"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	id, err := nw.Inject(0, route[0], simnet.Packet{Onion: blob})
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.WaitSettled(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	dels := nw.Deliveries()
	if len(dels) != 1 {
		t.Fatalf("%d deliveries (drops: %v)", len(dels), nw.Dropped())
	}
	if dels[0].Msg != id || string(dels[0].Payload) != "top secret" || dels[0].Pred != 7 {
		t.Errorf("delivery = %+v", dels[0])
	}
	mt := trace.Collate(nw.Tuples())[id]
	if len(mt.Reports) != 1 {
		t.Fatalf("reports = %+v", mt.Reports)
	}
	r := mt.Reports[0]
	if r.Observer != 4 || r.Pred != 2 || r.Succ != 7 {
		t.Errorf("compromised tap = %+v", r)
	}
}
