// Package entropy provides Shannon-entropy utilities used by the
// anonymity-degree metric of Guan et al. (ICDCS 2002), Formula (4):
// the entropy of the posterior sender distribution measures how much
// uncertainty the system preserves about the sender's identity.
package entropy

import (
	"errors"
	"math"
)

// ErrNotDistribution reports a probability vector that is not a distribution
// (negative mass or total not within tolerance of 1).
var ErrNotDistribution = errors.New("entropy: probabilities do not form a distribution")

// SumTolerance is the absolute tolerance used when validating that a
// probability vector sums to one.
const SumTolerance = 1e-9

// Log2 returns the base-2 logarithm of x.
func Log2(x float64) float64 { return math.Log2(x) }

// Bits returns the Shannon entropy −Σ p·log2 p of the given probability
// vector in bits. Zero entries contribute zero by the usual convention.
// The vector is not validated; use Validate first when the input is
// untrusted.
func Bits(p []float64) float64 {
	var h float64
	for _, v := range p {
		if v > 0 {
			h -= v * math.Log2(v)
		}
	}
	return h
}

// Validate checks that p is a probability distribution: every entry in
// [0,1] and the total within SumTolerance of 1.
func Validate(p []float64) error {
	var sum float64
	for _, v := range p {
		if v < 0 || v > 1+SumTolerance || math.IsNaN(v) {
			return ErrNotDistribution
		}
		sum += v
	}
	if math.Abs(sum-1) > SumTolerance {
		return ErrNotDistribution
	}
	return nil
}

// Max returns the maximum achievable entropy over n outcomes, log2 n.
// This is the paper's upper bound on the anonymity degree of an N-node
// system. Max(0) and Max of negative values return 0.
func Max(n int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Log2(float64(n))
}

// SpikeAndSlab returns the entropy in bits of the distribution that places
// mass alpha on one distinguished outcome and spreads the remaining 1−alpha
// uniformly over rest other outcomes:
//
//	H = −α·log2 α − (1−α)·log2((1−α)/rest)
//
// This is the shape of every sender posterior produced by the event-class
// engine: the predecessor of the first observed run carries mass α and the
// unobserved, uncompromised nodes share the remainder. Boundary cases follow
// the 0·log 0 = 0 convention: alpha == 1 or rest == 0 give the point-mass
// entropy, alpha == 0 gives log2(rest).
func SpikeAndSlab(alpha float64, rest int) float64 {
	switch {
	case rest <= 0 || alpha >= 1:
		// Point mass, or residual mass with nowhere to go (degenerate input).
		return 0
	case alpha <= 0:
		return math.Log2(float64(rest))
	default:
		q := 1 - alpha
		return -alpha*math.Log2(alpha) - q*math.Log2(q/float64(rest))
	}
}

// Normalized returns H/log2(n), the anonymity degree normalized to [0,1]
// (sometimes called the degree of anonymity in later literature,
// Diaz et al. 2002). n <= 1 yields 0.
func Normalized(h float64, n int) float64 {
	if n <= 1 {
		return 0
	}
	return h / math.Log2(float64(n))
}

// KL returns the Kullback–Leibler divergence D(p‖q) in bits, used by tests
// to compare empirical posteriors from the simulation testbed against the
// exact engine. It returns +Inf when p places mass where q does not.
func KL(p, q []float64) float64 {
	n := len(p)
	if len(q) < n {
		n = len(q)
	}
	var d float64
	for i := 0; i < n; i++ {
		if p[i] <= 0 {
			continue
		}
		if q[i] <= 0 {
			return math.Inf(1)
		}
		d += p[i] * math.Log2(p[i]/q[i])
	}
	return d
}
