package entropy

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBitsKnownValues(t *testing.T) {
	cases := []struct {
		name string
		p    []float64
		want float64
	}{
		{"point mass", []float64{1, 0, 0}, 0},
		{"fair coin", []float64{0.5, 0.5}, 1},
		{"uniform 4", []float64{0.25, 0.25, 0.25, 0.25}, 2},
		{"uniform 8", []float64{.125, .125, .125, .125, .125, .125, .125, .125}, 3},
		{"empty", nil, 0},
	}
	for _, c := range cases {
		if got := Bits(c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("%s: Bits = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := Validate([]float64{0.3, 0.7}); err != nil {
		t.Errorf("valid distribution rejected: %v", err)
	}
	for _, p := range [][]float64{
		{0.5, 0.6},
		{-0.1, 1.1},
		{math.NaN(), 1},
		{0.5},
	} {
		if err := Validate(p); !errors.Is(err, ErrNotDistribution) {
			t.Errorf("Validate(%v) = %v, want ErrNotDistribution", p, err)
		}
	}
}

func TestMax(t *testing.T) {
	if got := Max(100); !almostEqual(got, math.Log2(100), 1e-12) {
		t.Errorf("Max(100) = %v", got)
	}
	for _, n := range []int{1, 0, -3} {
		if got := Max(n); got != 0 {
			t.Errorf("Max(%d) = %v, want 0", n, got)
		}
	}
}

func TestSpikeAndSlabMatchesBits(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		alpha := rng.Float64()
		rest := 1 + rng.Intn(200)
		p := make([]float64, rest+1)
		p[0] = alpha
		for j := 1; j <= rest; j++ {
			p[j] = (1 - alpha) / float64(rest)
		}
		want := Bits(p)
		got := SpikeAndSlab(alpha, rest)
		if !almostEqual(got, want, 1e-10) {
			t.Fatalf("SpikeAndSlab(%v,%d) = %v, Bits = %v", alpha, rest, got, want)
		}
	}
}

func TestSpikeAndSlabBoundaries(t *testing.T) {
	if got := SpikeAndSlab(1, 50); got != 0 {
		t.Errorf("alpha=1: got %v, want 0", got)
	}
	if got := SpikeAndSlab(0, 64); !almostEqual(got, 6, 1e-12) {
		t.Errorf("alpha=0, rest=64: got %v, want 6", got)
	}
	if got := SpikeAndSlab(0.5, 0); got != 0 {
		t.Errorf("rest=0: got %v, want 0", got)
	}
	if got := SpikeAndSlab(0.25, -1); got != 0 {
		t.Errorf("rest=-1: got %v, want 0", got)
	}
}

// TestSpikeAndSlabBoundedByMax: the posterior entropy can never exceed
// log2(rest+1), the uniform entropy over all candidates.
func TestSpikeAndSlabBoundedByMax(t *testing.T) {
	f := func(a uint16, r uint8) bool {
		alpha := float64(a) / math.MaxUint16
		rest := int(r)
		h := SpikeAndSlab(alpha, rest)
		return h >= 0 && h <= Max(rest+1)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestSpikeAndSlabMaximizedAtUniform: for fixed rest, entropy is maximal at
// alpha = 1/(rest+1), where the spike equals the slab weights.
func TestSpikeAndSlabMaximizedAtUniform(t *testing.T) {
	for _, rest := range []int{1, 3, 10, 99} {
		star := 1 / float64(rest+1)
		hStar := SpikeAndSlab(star, rest)
		if !almostEqual(hStar, Max(rest+1), 1e-10) {
			t.Errorf("rest=%d: H(1/(rest+1)) = %v, want %v", rest, hStar, Max(rest+1))
		}
		for _, alpha := range []float64{star / 2, star * 1.5, 0.9} {
			if h := SpikeAndSlab(alpha, rest); h > hStar+1e-12 {
				t.Errorf("rest=%d: H(%v) = %v exceeds maximum %v", rest, alpha, h, hStar)
			}
		}
	}
}

func TestNormalized(t *testing.T) {
	if got := Normalized(3, 8); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Normalized(3,8) = %v, want 1", got)
	}
	if got := Normalized(1, 1); got != 0 {
		t.Errorf("Normalized(·,1) = %v, want 0", got)
	}
}

func TestKL(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{0.25, 0.75}
	want := 0.5*math.Log2(2) + 0.5*math.Log2(0.5/0.75)
	if got := KL(p, q); !almostEqual(got, want, 1e-12) {
		t.Errorf("KL = %v, want %v", got, want)
	}
	if got := KL(p, p); !almostEqual(got, 0, 1e-12) {
		t.Errorf("KL(p,p) = %v, want 0", got)
	}
	if got := KL([]float64{1, 0}, []float64{0, 1}); !math.IsInf(got, 1) {
		t.Errorf("KL with unsupported mass = %v, want +Inf", got)
	}
}
