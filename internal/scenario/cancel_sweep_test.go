package scenario_test

// Exhaustive checkpoint sweep: every ctx.Err() poll a backend makes is a
// site where cancellation must abort the run with the ErrCanceled
// contract. The flaky context counts Err calls, so running a config once
// uncanceled measures the full checkpoint trace, and replaying it with
// after = 1..T-1 deterministically lands the cancellation on each
// successive checkpoint — entry checks, per-phase checks, injection-loop
// and rerouting-wave polls — without any goroutine timing.

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"anonmix/internal/faults"
	"anonmix/internal/scenario"
)

func TestRunContextCheckpointSweep(t *testing.T) {
	cases := []struct {
		name string
		cfg  scenario.Config
	}{
		{"exact-timeline", scenario.Config{
			N:            16,
			Backend:      scenario.BackendExact,
			StrategySpec: "uniform:1,5",
			Adversary:    scenario.Adversary{Count: 3},
			Timeline:     []scenario.Epoch{{Messages: 100}, {Messages: 100, Compromise: 2}},
		}},
		{"mc-timeline", scenario.Config{
			N:            16,
			Backend:      scenario.BackendMonteCarlo,
			StrategySpec: "uniform:1,5",
			Adversary:    scenario.Adversary{Count: 3},
			Timeline:     []scenario.Epoch{{Messages: 200}, {Messages: 200, Join: 3}},
			Workload:     scenario.Workload{Seed: 4},
		}},
		{"testbed-timeline-messages", scenario.Config{
			N:            16,
			Backend:      scenario.BackendTestbed,
			StrategySpec: "uniform:1,5",
			Adversary:    scenario.Adversary{Count: 3},
			Timeline:     []scenario.Epoch{{Messages: 130}, {Messages: 130, Compromise: 2}},
			Workload:     scenario.Workload{Seed: 4},
		}},
		{"testbed-timeline-rounds", scenario.Config{
			N:            16,
			Backend:      scenario.BackendTestbed,
			StrategySpec: "uniform:1,5",
			Adversary:    scenario.Adversary{Count: 3},
			Timeline:     []scenario.Epoch{{Rounds: 2}, {Rounds: 2, Compromise: 2}},
			Workload:     scenario.Workload{Messages: 130, Seed: 4},
		}},
		{"testbed-crowds", scenario.Config{
			N:            16,
			Backend:      scenario.BackendTestbed,
			StrategySpec: "crowds:0.7",
			Adversary:    scenario.Adversary{Count: 3},
			Workload:     scenario.Workload{Messages: 130, Seed: 4},
		}},
		{"testbed-retransmit", scenario.Config{
			N:            16,
			Backend:      scenario.BackendTestbed,
			StrategySpec: "uniform:1,5",
			Adversary:    scenario.Adversary{Count: 3},
			Workload:     scenario.Workload{Messages: 130, Seed: 4},
			Faults:       &faults.Plan{LinkLoss: 0.2},
			Reliability:  faults.Reliability{Policy: faults.PolicyRetransmit},
		}},
		{"testbed-reroute", scenario.Config{
			N:            16,
			Backend:      scenario.BackendTestbed,
			StrategySpec: "uniform:1,5",
			Adversary:    scenario.Adversary{Count: 3},
			Workload:     scenario.Workload{Messages: 130, Seed: 4},
			Faults:       &faults.Plan{LinkLoss: 0.3},
			Reliability:  faults.Reliability{Policy: faults.PolicyReroute},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Measure the checkpoint trace: a never-firing flaky context
			// counts every Err poll of an uncanceled run.
			probe := &flakyCtx{Context: context.Background(), after: math.MaxInt64}
			if _, err := scenario.RunContext(probe, tc.cfg); err != nil {
				t.Fatalf("uncanceled probe run failed: %v", err)
			}
			total := probe.calls.Load()
			if total < 2 {
				t.Fatalf("only %d Err polls — no in-loop checkpoints to sweep", total)
			}
			// Land the cancellation on each checkpoint in turn. The run is
			// deterministic up to the first canceled poll, so checkpoint
			// after+1 of the probe trace is exactly where each replay dies.
			for after := int64(1); after < total; after++ {
				fc := &flakyCtx{Context: context.Background(), after: after}
				_, err := scenario.RunContext(fc, tc.cfg)
				if err == nil {
					t.Fatalf("after=%d of %d: run completed despite cancellation", after, total)
				}
				assertCanceled(t, err)
			}
		})
	}
}

// TestRunContextErrorPassthrough pins that an armed context does not
// reclassify unrelated failures: a capability refusal under RunContext
// keeps its class instead of being wrapped as canceled.
func TestRunContextErrorPassthrough(t *testing.T) {
	_, err := scenario.RunContext(context.Background(), scenario.Config{
		N:            16,
		Backend:      scenario.BackendExact,
		StrategySpec: "crowds:0.7",
		Adversary:    scenario.Adversary{Count: 3},
	})
	if err == nil {
		t.Fatal("exact backend accepted a crowds strategy")
	}
	if c := scenario.Classify(err); c != scenario.ClassCapability {
		t.Errorf("Classify(%v) = %v, want ClassCapability", err, c)
	}
	if errors.Is(err, scenario.ErrCanceled) {
		t.Errorf("capability error reclassified as canceled: %v", err)
	}
}

// TestRunContextPhasedRoundsCanceled cancels the analytic degradation
// timeline (persistent sessions spanning phases) from its first batch
// progress emission; the worker's next cancel poll must abort the merge.
func TestRunContextPhasedRoundsCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := scenario.RunContext(ctx, scenario.Config{
		N:            16,
		Backend:      scenario.BackendExact,
		StrategySpec: "uniform:1,5",
		Adversary:    scenario.Adversary{Count: 3},
		Timeline:     []scenario.Epoch{{Rounds: 2}, {Rounds: 2, Compromise: 2}},
		Workload:     scenario.Workload{Messages: 300, Seed: 6},
		Progress:     func(scenario.Progress) { cancel() },
	})
	if err == nil {
		t.Fatal("phased-rounds cancel returned no error")
	}
	assertCanceled(t, err)
}

// TestProgressMCTimeline checks the Monte-Carlo timeline's progress
// accounting: trials accumulate across phases against the timeline-wide
// total, traffic-free epochs still emit their EpochResult, and the
// emitted epochs match the final result.
func TestProgressMCTimeline(t *testing.T) {
	const perPhase = 300
	var (
		mu     sync.Mutex
		max    int
		epochs []scenario.EpochResult
	)
	res, err := scenario.Run(scenario.Config{
		N:            16,
		Backend:      scenario.BackendMonteCarlo,
		StrategySpec: "uniform:1,5",
		Adversary:    scenario.Adversary{Count: 3},
		Timeline: []scenario.Epoch{
			{Messages: perPhase},
			{Join: 4},
			{Messages: perPhase, Compromise: 2},
		},
		Workload: scenario.Workload{Seed: 2, Workers: 2},
		Progress: func(p scenario.Progress) {
			mu.Lock()
			defer mu.Unlock()
			if p.Total != 2*perPhase {
				t.Errorf("Progress.Total = %d, want %d", p.Total, 2*perPhase)
			}
			if p.Done > max {
				max = p.Done
			}
			if p.Epoch != nil {
				epochs = append(epochs, *p.Epoch)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if max != 2*perPhase {
		t.Errorf("max cumulative progress %d, want %d", max, 2*perPhase)
	}
	if len(epochs) != len(res.Epochs) {
		t.Fatalf("got %d epoch emissions, want %d", len(epochs), len(res.Epochs))
	}
	for i, er := range epochs {
		if er != res.Epochs[i] {
			t.Errorf("epoch %d: progress emitted %+v, result has %+v", i, er, res.Epochs[i])
		}
	}
}
