// Package capability defines the backend-capability error vocabulary of
// the scenario layer: when a backend cannot evaluate a scenario (the exact
// engine refuses cyclic routes, the testbed refuses a protocol it has no
// substrate for), it reports a *capability.Error wrapping one of the
// sentinel reasons here, instead of a per-package ad-hoc error.
//
// The package is deliberately dependency-free so that both the scenario
// layer and the analysis backends underneath it (core, montecarlo) can
// share one error identity: core.ErrComplicated and
// montecarlo.ErrComplicatedPaths are aliases of ErrComplicatedPaths, so
// errors.Is works across all three vocabularies.
package capability

import (
	"errors"
	"fmt"
)

// Sentinel reasons a backend refuses a scenario. Match with errors.Is.
var (
	// ErrComplicatedPaths reports a strategy with cyclic (complicated)
	// routes, which the exact simple-path posterior model does not cover;
	// use the testbed backend or package crowds' predecessor analysis.
	ErrComplicatedPaths = errors.New("complicated (cyclic) routes exceed the simple-path analysis")
	// ErrProtocol reports a protocol substrate the backend cannot execute
	// (analytic backends evaluate strategies, not wire protocols).
	ErrProtocol = errors.New("protocol substrate not executable on this backend")
	// ErrInference reports an engine option (inference mode, receiver
	// assumption) the backend cannot honor.
	ErrInference = errors.New("inference model not supported by this backend")
	// ErrScale reports a configuration whose size the backend cannot
	// handle (e.g. exhaustive enumeration far beyond its class-space cap).
	ErrScale = errors.New("configuration too large for this backend")
	// ErrFaults reports a fault-plan element (retry policy, crash
	// schedule) the backend cannot execute.
	ErrFaults = errors.New("fault plan not executable on this backend")
)

// Error is a backend-capability failure: Backend names the refusing
// backend, Reason is one of the sentinels above (or another error), and
// Detail narrows it to the offending scenario element.
type Error struct {
	// Backend names the backend that refused ("exact", "montecarlo",
	// "testbed").
	Backend string
	// Reason is the sentinel cause; errors.Is(err, Reason) holds.
	Reason error
	// Detail names the offending scenario element (strategy, protocol).
	Detail string
}

// Error renders backend, reason, and detail.
func (e *Error) Error() string {
	if e.Detail == "" {
		return fmt.Sprintf("scenario: %s backend: %v", e.Backend, e.Reason)
	}
	return fmt.Sprintf("scenario: %s backend: %v: %s", e.Backend, e.Reason, e.Detail)
}

// Unwrap exposes the sentinel reason to errors.Is.
func (e *Error) Unwrap() error { return e.Reason }

// Unsupported builds a capability error.
func Unsupported(backend string, reason error, detail string) *Error {
	return &Error{Backend: backend, Reason: reason, Detail: detail}
}
