package scenario

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"anonmix/internal/faults"
	"anonmix/internal/montecarlo"
	"anonmix/internal/pathsel"
	"anonmix/internal/scenario/capability"
)

// TestClassify pins the class of every error family a Run caller can
// see, including wrapped chains.
func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want ErrorClass
	}{
		{"nil", nil, ClassRuntime},
		{"bad config", fmt.Errorf("%w: n = 1", ErrBadConfig), ClassBadConfig},
		{"unknown backend", fmt.Errorf("%w: %q", ErrUnknownBackend, "x"), ClassBadConfig},
		{"montecarlo config", fmt.Errorf("%w: trials = 0", montecarlo.ErrBadConfig), ClassBadConfig},
		{"strategy", fmt.Errorf("%w: empty spec", pathsel.ErrBadStrategy), ClassBadConfig},
		{"fault plan", fmt.Errorf("%w: loss", faults.ErrBadPlan), ClassBadConfig},
		{"capability", capability.Unsupported("exact", capability.ErrProtocol, "crowds"), ClassCapability},
		{"wrapped capability", fmt.Errorf("phase 2: %w",
			capability.Unsupported("mc", capability.ErrFaults, "crash")), ClassCapability},
		{"canceled", context.Canceled, ClassCanceled},
		{"wrapped canceled", fmt.Errorf("%w: %w", ErrCanceled, context.Canceled), ClassCanceled},
		{"deadline", fmt.Errorf("slow: %w", context.DeadlineExceeded), ClassCanceled},
		{"runtime", errors.New("disk on fire"), ClassRuntime},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("%s: Classify(%v) = %v, want %v", tc.name, tc.err, got, tc.want)
		}
	}
}

// TestClassifyEndToEnd classifies errors produced by real Run calls, not
// hand-wrapped ones, so the classification tracks what the layer
// actually returns.
func TestClassifyEndToEnd(t *testing.T) {
	// Invalid configuration.
	_, err := Run(Config{N: 1})
	if Classify(err) != ClassBadConfig {
		t.Errorf("N=1: class %v, want ClassBadConfig (err: %v)", Classify(err), err)
	}
	if ExitCode(err) != 2 {
		t.Errorf("N=1: exit %d, want 2", ExitCode(err))
	}
	// Capability refusal: exact backend on the crowds substrate.
	_, err = Run(Config{
		N: 20, Backend: BackendExact, Protocol: ProtocolCrowds, CrowdsPf: 0.7,
		Adversary: Adversary{Count: 1}, Workload: Workload{Messages: 10},
	})
	if Classify(err) != ClassCapability {
		t.Errorf("exact+crowds: class %v, want ClassCapability (err: %v)", Classify(err), err)
	}
	if ExitCode(err) != 1 {
		t.Errorf("exact+crowds: exit %d, want 1", ExitCode(err))
	}
	// Success.
	_, err = Run(Config{N: 20, StrategySpec: "uniform:0,5", Adversary: Adversary{Count: 1}})
	if err != nil {
		t.Fatalf("valid config failed: %v", err)
	}
	if ExitCode(nil) != 0 {
		t.Errorf("ExitCode(nil) = %d, want 0", ExitCode(nil))
	}
}

// TestErrorClassString pins the wire names the anond API exposes.
func TestErrorClassString(t *testing.T) {
	want := map[ErrorClass]string{
		ClassRuntime:    "runtime",
		ClassBadConfig:  "bad_config",
		ClassCapability: "capability",
		ClassCanceled:   "canceled",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
}
