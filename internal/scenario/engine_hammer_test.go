package scenario

// Concurrency hammers for the process-wide engine cache. These tests are
// the teeth behind two serving-daemon contracts:
//
//   - An engine handed out by Engine() stays valid after the LRU evicts
//     its entry; eviction only drops the cache's reference.
//   - Counter snapshots are atomic: every request is attributed to
//     exactly one ResetCacheStats window, with nothing torn or lost.
//
// Run them under -race; that is where a violation actually surfaces.

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"

	"anonmix/internal/dist"
	"anonmix/internal/events"
)

// TestEngineEvictionUnderUse pins eviction-under-use: with capacity 1 and
// several goroutines cycling through distinct (N, C) keys, nearly every
// returned engine is evicted — and used as a delta-derivation source —
// while another goroutine is still computing on it. Evictees must keep
// producing correct anonymity degrees; the shared family tables and
// per-engine memo maps must stay race-free.
func TestEngineEvictionUnderUse(t *testing.T) {
	ResetEngines()
	defer func() {
		SetEngineCacheCapacity(DefaultEngineCacheCapacity)
		ResetEngines()
	}()
	SetEngineCacheCapacity(1)

	u, err := dist.NewUniform(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	keys := [][2]int{{20, 1}, {21, 2}, {22, 3}, {23, 4}}
	// Reference values from fresh engines that never touch the cache.
	want := make([]float64, len(keys))
	for i, nc := range keys {
		fresh, err := events.New(nc[0], nc[1])
		if err != nil {
			t.Fatal(err)
		}
		if want[i], err = fresh.AnonymityDegree(u); err != nil {
			t.Fatal(err)
		}
	}

	const goroutines = 8
	iters := 40
	if testing.Short() {
		iters = 8
	}
	errc := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (g + it) % len(keys)
				e, err := Engine(keys[i][0], keys[i][1])
				if err != nil {
					errc <- err
					return
				}
				// By the time this computes, another goroutine has very
				// likely evicted the entry and derived a different key's
				// engine from it.
				h, err := e.AnonymityDegree(u)
				if err != nil {
					errc <- err
					return
				}
				if math.Abs(h-want[i]) > 1e-12 {
					errc <- fmt.Errorf("(%d,%d): H = %v on possibly-evicted engine, want %v",
						keys[i][0], keys[i][1], h, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	st := CacheStats()
	if st.Size != 1 || st.Capacity != 1 {
		t.Errorf("cache occupancy after hammer: %+v, want size 1 at capacity 1", st)
	}
	if st.Evictions == 0 {
		t.Error("four keys through a capacity-1 cache evicted nothing; the hammer never hammered")
	}
	if st.Hits+st.Misses != uint64(goroutines*iters) {
		t.Errorf("hits %d + misses %d != %d requests", st.Hits, st.Misses, goroutines*iters)
	}
}

// TestCacheStatsWindowsUnderLoad carves the counters into reporting
// windows with ResetCacheStats while Engine callers are mid-flight, then
// checks conservation: the windows' hits+misses sum exactly to the
// request count. A snapshot torn across the reset, or an increment lost
// between snapshot and zeroing, breaks the equality.
func TestCacheStatsWindowsUnderLoad(t *testing.T) {
	ResetEngines()
	defer ResetEngines()

	keys := [][2]int{{20, 1}, {21, 1}, {22, 2}, {30, 3}}
	const goroutines = 8
	iters := 50
	if testing.Short() {
		iters = 10
	}

	stop := make(chan struct{})
	var windows []EngineCacheStats
	var collector sync.WaitGroup
	collector.Add(1)
	go func() {
		defer collector.Done()
		for {
			select {
			case <-stop:
				return
			default:
				windows = append(windows, ResetCacheStats())
				runtime.Gosched()
			}
		}
	}()

	errc := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				nc := keys[(g*7+it)%len(keys)]
				if _, err := Engine(nc[0], nc[1]); err != nil {
					errc <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	collector.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	// The leftover since the last mid-flight reset is the final window.
	windows = append(windows, ResetCacheStats())

	var total uint64
	for _, w := range windows {
		total += w.Hits + w.Misses
	}
	if want := uint64(goroutines * iters); total != want {
		t.Errorf("windows account for %d requests across %d windows, want %d",
			total, len(windows), want)
	}
}

// TestResetCacheStatsKeepsEngines pins the reset semantics a long-running
// server depends on: counters zero, snapshot returned, warm engines kept.
func TestResetCacheStatsKeepsEngines(t *testing.T) {
	ResetEngines()
	defer ResetEngines()

	if _, err := Engine(50, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := Engine(50, 5); err != nil {
		t.Fatal(err)
	}
	prev := ResetCacheStats()
	if prev.Hits != 1 || prev.Misses != 1 || prev.Size != 1 {
		t.Errorf("pre-reset snapshot %+v, want 1 hit / 1 miss / size 1", prev)
	}
	st := CacheStats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Errorf("counters after reset: %+v, want zeros", st)
	}
	if st.Size != 1 {
		t.Errorf("reset dropped resident engines: size %d, want 1", st.Size)
	}
	// The engine survived the reset, so this is a hit, not a rebuild.
	if _, err := Engine(50, 5); err != nil {
		t.Fatal(err)
	}
	if st = CacheStats(); st.Hits != 1 || st.Misses != 0 {
		t.Errorf("post-reset request: %+v, want 1 hit / 0 misses", st)
	}
}

// TestCacheStatsDelta pins the window arithmetic between two snapshots.
func TestCacheStatsDelta(t *testing.T) {
	ResetEngines()
	defer ResetEngines()

	if _, err := Engine(50, 5); err != nil {
		t.Fatal(err)
	}
	base := CacheStats()
	if _, err := Engine(60, 6); err != nil {
		t.Fatal(err)
	}
	if _, err := Engine(60, 6); err != nil {
		t.Fatal(err)
	}
	d := CacheStats().Delta(base)
	if d.Hits != 1 || d.Misses != 1 {
		t.Errorf("delta %+v, want 1 hit / 1 miss", d)
	}
	if d.Size != 2 || d.Capacity != DefaultEngineCacheCapacity {
		t.Errorf("delta gauges %+v, want the later snapshot's size 2 and default capacity", d)
	}
}
