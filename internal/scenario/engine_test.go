package scenario

import (
	"math"
	"testing"

	"anonmix/internal/dist"
	"anonmix/internal/events"
)

// The cache is process-global, so these tests do not run in parallel; each
// starts from a clean cache and restores the default capacity.

func TestEngineCacheHitsAndMisses(t *testing.T) {
	ResetEngines()
	defer ResetEngines()
	if _, err := Engine(50, 5); err != nil {
		t.Fatal(err)
	}
	e1, err := Engine(50, 5)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Engine(50, 5)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Error("repeated Engine(50,5) returned distinct engines")
	}
	st := CacheStats()
	if st.Hits != 2 || st.Misses != 1 || st.Size != 1 {
		t.Errorf("stats after 3 identical requests: %+v, want 2 hits / 1 miss / size 1", st)
	}
	// Different options are different cache identities.
	if _, err := Engine(50, 5, events.WithUncompromisedReceiver()); err != nil {
		t.Fatal(err)
	}
	if st = CacheStats(); st.Misses != 2 || st.Size != 2 {
		t.Errorf("stats after distinct-option request: %+v, want 2 misses / size 2", st)
	}
}

func TestEngineCacheDeltaDerivation(t *testing.T) {
	ResetEngines()
	defer ResetEngines()
	if _, err := Engine(80, 10); err != nil {
		t.Fatal(err)
	}
	// Every ±1 neighbor of a cached engine is delta-derived, and the
	// derived engines must agree with fresh ones.
	u, err := dist.NewUniform(2, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, nc := range [][2]int{{81, 10}, {79, 10}, {80, 11}, {80, 9}, {81, 11}} {
		e, err := Engine(nc[0], nc[1])
		if err != nil {
			t.Fatal(err)
		}
		hd, err := e.AnonymityDegree(u)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := events.New(nc[0], nc[1])
		if err != nil {
			t.Fatal(err)
		}
		hf, err := fresh.AnonymityDegree(u)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(hd-hf) > 1e-12 {
			t.Errorf("(%d,%d): cached-delta H %v vs fresh %v", nc[0], nc[1], hd, hf)
		}
	}
	st := CacheStats()
	if st.DeltaDerived != 5 {
		t.Errorf("DeltaDerived = %d, want 5 (every request neighbored the cache): %+v", st.DeltaDerived, st)
	}
	// Options must not cross the delta path: a different receiver flag is
	// not a neighbor of the cached engines.
	if _, err := Engine(81, 10, events.WithUncompromisedReceiver()); err != nil {
		t.Fatal(err)
	}
	if st = CacheStats(); st.DeltaDerived != 5 {
		t.Errorf("DeltaDerived grew to %d after a different-flag request", st.DeltaDerived)
	}
}

func TestEngineCacheLRUEviction(t *testing.T) {
	ResetEngines()
	defer func() {
		SetEngineCacheCapacity(DefaultEngineCacheCapacity)
		ResetEngines()
	}()
	prev := SetEngineCacheCapacity(2)
	if prev != DefaultEngineCacheCapacity {
		t.Errorf("previous capacity %d, want %d", prev, DefaultEngineCacheCapacity)
	}
	for _, n := range []int{20, 30, 40} {
		if _, err := Engine(n, 2); err != nil {
			t.Fatal(err)
		}
	}
	st := CacheStats()
	if st.Size != 2 || st.Evictions != 1 || st.Capacity != 2 {
		t.Errorf("after 3 inserts at capacity 2: %+v", st)
	}
	// (20, 2) was least recently used and must be gone; re-requesting it is
	// a miss that evicts (30, 2).
	if _, err := Engine(20, 2); err != nil {
		t.Fatal(err)
	}
	if st = CacheStats(); st.Hits != 0 || st.Misses != 4 || st.Evictions != 2 {
		t.Errorf("after re-requesting the evicted engine: %+v", st)
	}
	// Touching (40, 2) then inserting keeps it resident.
	if _, err := Engine(40, 2); err != nil {
		t.Fatal(err)
	}
	if st = CacheStats(); st.Hits != 1 {
		t.Errorf("expected (40,2) to still be cached: %+v", st)
	}
	// Shrinking capacity below occupancy evicts immediately.
	SetEngineCacheCapacity(1)
	if st = CacheStats(); st.Size != 1 || st.Capacity != 1 {
		t.Errorf("after shrinking to 1: %+v", st)
	}
}

func TestTimelineStates(t *testing.T) {
	states, err := TimelineStates(20, 4, []Epoch{
		{Messages: 100},
		{Messages: 300, Join: 5, Compromise: 2},
		{Messages: 100, Leave: 3, Recover: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []EpochState{
		{Index: 0, N: 20, C: 4, Messages: 100, Weight: 0.2},
		{Index: 1, N: 25, C: 6, Messages: 300, Weight: 0.6},
		{Index: 2, N: 22, C: 5, Messages: 100, Weight: 0.2},
	}
	if len(states) != len(want) {
		t.Fatalf("got %d states, want %d", len(states), len(want))
	}
	for i := range want {
		if states[i] != want[i] {
			t.Errorf("state %d = %+v, want %+v", i, states[i], want[i])
		}
	}
	// Zero-traffic timelines weight epochs equally.
	states, err = TimelineStates(10, 1, []Epoch{{Join: 1}, {Compromise: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if states[0].Weight != 0.5 || states[1].Weight != 0.5 {
		t.Errorf("zero-traffic weights %v, %v, want 0.5 each", states[0].Weight, states[1].Weight)
	}
	// Validation failures.
	for _, bad := range []struct {
		n, c     int
		timeline []Epoch
	}{
		{1, 0, []Epoch{{Messages: 1}}},
		{10, 10, []Epoch{{Messages: 1}}},
		{10, 1, nil},
		{10, 1, []Epoch{{Messages: -1}}},
		{10, 1, []Epoch{{Compromise: 100}}},
	} {
		if _, err := TimelineStates(bad.n, bad.c, bad.timeline); err == nil {
			t.Errorf("TimelineStates(%d, %d, %v): want error", bad.n, bad.c, bad.timeline)
		}
	}
}
