package scenario_test

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"anonmix/internal/scenario"
	"anonmix/internal/scenario/capability"
	"anonmix/internal/trace"
)

// churnKinds are the three canonical dynamics of the acceptance matrix,
// all ≥ 3 epochs.
var churnKinds = []struct {
	name     string
	timeline func(n, c int) []scenario.Epoch
}{
	{"grow", func(n, c int) []scenario.Epoch {
		return []scenario.Epoch{{}, {Join: n / 2}, {Join: n / 2}}
	}},
	{"shrink", func(n, c int) []scenario.Epoch {
		return []scenario.Epoch{{}, {Leave: n / 5}, {Leave: n / 5}}
	}},
	{"creep", func(n, c int) []scenario.Epoch {
		return []scenario.Epoch{{}, {Compromise: c}, {Compromise: c}}
	}},
}

// withMessages fills a per-epoch single-shot budget into a churn timeline.
func withMessages(tl []scenario.Epoch, m int) []scenario.Epoch {
	out := append([]scenario.Epoch(nil), tl...)
	for i := range out {
		out[i].Messages = m
	}
	return out
}

// withRounds fills a per-epoch round budget into a churn timeline.
func withRounds(tl []scenario.Epoch, r int) []scenario.Epoch {
	out := append([]scenario.Epoch(nil), tl...)
	for i := range out {
		out[i].Rounds = r
	}
	return out
}

// TestCrossBackendTimelineAgreement is the dynamic-population counterpart
// of the single-shot agreement test: for ≥ 3 epochs × {grow, shrink,
// creeping-compromise} × both receiver modes, the exact mixture, the
// stratified Monte-Carlo estimate, and the testbed's churn-driven
// empirical measurement must coincide within the sampled backends'
// confidence intervals — and the per-epoch population trajectories must be
// identical across backends.
func TestCrossBackendTimelineAgreement(t *testing.T) {
	const n, c = 15, 3
	modes := []struct {
		name string
		adv  scenario.Adversary
	}{
		{"receiver-compromised", scenario.Adversary{Count: c}},
		{"receiver-uncompromised", scenario.Adversary{Count: c, UncompromisedReceiver: true}},
	}
	for _, mode := range modes {
		for _, kind := range churnKinds {
			t.Run(mode.name+"/"+kind.name, func(t *testing.T) {
				base := scenario.Config{
					N:            n,
					StrategySpec: "uniform:1,5",
					Adversary:    mode.adv,
					Timeline:     withMessages(kind.timeline(n, c), 6000),
				}

				exCfg := base
				exCfg.Backend = scenario.BackendExact
				ex, err := scenario.Run(exCfg)
				if err != nil {
					t.Fatal(err)
				}
				if ex.Estimated || ex.CI95 != 0 {
					t.Errorf("exact mixture carries sampling error: %+v", ex)
				}
				if len(ex.Epochs) != 3 {
					t.Fatalf("exact epochs = %+v", ex.Epochs)
				}

				mcCfg := base
				mcCfg.Backend = scenario.BackendMonteCarlo
				mcCfg.Workload = scenario.Workload{Seed: 7, Workers: 4}
				mc, err := scenario.Run(mcCfg)
				if err != nil {
					t.Fatal(err)
				}
				if d := math.Abs(mc.H - ex.H); d > 4*mc.StdErr+1e-3 {
					t.Errorf("MC H = %v ± %v, exact H = %v (Δ=%v)", mc.H, mc.StdErr, ex.H, d)
				}

				tbCfg := base
				tbCfg.Backend = scenario.BackendTestbed
				tbCfg.Workload = scenario.Workload{Seed: 11}
				tb, err := scenario.Run(tbCfg)
				if err != nil {
					t.Fatal(err)
				}
				if tb.Kernel == nil || tb.Kernel.Events == 0 {
					t.Errorf("testbed result lacks kernel stats: %+v", tb.Kernel)
				}
				if kind.name != "grow" && tb.Kernel.Churn == 0 {
					t.Errorf("testbed ran a %s timeline without churn events", kind.name)
				}
				if d := math.Abs(tb.H - ex.H); d > 4*tb.StdErr+1e-3 {
					t.Errorf("testbed H = %v ± %v, exact H = %v (Δ=%v)", tb.H, tb.StdErr, ex.H, d)
				}

				// The population trajectory (N_e, C_e) must be the same
				// deterministic schedule everywhere, and every sampled
				// phase must agree with its exact counterpart.
				for i := range ex.Epochs {
					for name, res := range map[string]scenario.Result{"mc": mc, "testbed": tb} {
						e := res.Epochs[i]
						if e.N != ex.Epochs[i].N || e.C != ex.Epochs[i].C {
							t.Errorf("%s epoch %d population (%d,%d) != exact (%d,%d)",
								name, i, e.N, e.C, ex.Epochs[i].N, ex.Epochs[i].C)
						}
						if d := math.Abs(e.H - ex.Epochs[i].H); d > 4*res.StdErr*math.Sqrt(3)+2e-2 {
							t.Errorf("%s epoch %d H = %v, exact %v (Δ=%v)", name, i, e.H, ex.Epochs[i].H, d)
						}
					}
				}
			})
		}
	}
}

// TestCrossBackendTimelineRounds: degradation across phase boundaries —
// the serial exact reference, the parallel Monte-Carlo estimate, and the
// testbed's churn execution agree on the blended curve, and the curves are
// non-increasing (accumulation never loses information; churn only changes
// how fast it gains).
func TestCrossBackendTimelineRounds(t *testing.T) {
	const n, c = 15, 3
	for _, kind := range churnKinds {
		t.Run(kind.name, func(t *testing.T) {
			base := scenario.Config{
				N:            n,
				StrategySpec: "uniform:1,5",
				Adversary:    scenario.Adversary{Count: c},
				Timeline:     withRounds(kind.timeline(n, c), 3),
			}
			exCfg := base
			exCfg.Backend = scenario.BackendExact
			exCfg.Workload = scenario.Workload{Messages: 2000, Seed: 5}
			ex, err := scenario.Run(exCfg)
			if err != nil {
				t.Fatal(err)
			}
			if !ex.Estimated || ex.Rounds != 9 || len(ex.HRounds) != 9 {
				t.Fatalf("exact rounds result: rounds=%d curve=%v", ex.Rounds, ex.HRounds)
			}
			for i := 1; i < len(ex.HRounds); i++ {
				if ex.HRounds[i] > ex.HRounds[i-1]+0.02 {
					t.Errorf("exact curve not non-increasing at %d: %v", i, ex.HRounds)
				}
			}

			mcCfg := base
			mcCfg.Backend = scenario.BackendMonteCarlo
			mcCfg.Workload = scenario.Workload{Messages: 3000, Seed: 9, Workers: 4}
			mc, err := scenario.Run(mcCfg)
			if err != nil {
				t.Fatal(err)
			}
			tbCfg := base
			tbCfg.Backend = scenario.BackendTestbed
			tbCfg.Workload = scenario.Workload{Messages: 1000, Seed: 13}
			tb, err := scenario.Run(tbCfg)
			if err != nil {
				t.Fatal(err)
			}
			for name, res := range map[string]scenario.Result{"mc": mc, "testbed": tb} {
				tol := 1.96*math.Sqrt(res.StdErr*res.StdErr+ex.StdErr*ex.StdErr) + 0.02
				if d := math.Abs(res.H - ex.H); d > tol {
					t.Errorf("%s final H = %v, exact %v (Δ=%v > %v)", name, res.H, ex.H, d, tol)
				}
				if len(res.HRounds) != 9 {
					t.Fatalf("%s curve length %d", name, len(res.HRounds))
				}
				// Pointwise agreement on the blended curve, with the same
				// tolerance shape the static degradation test uses.
				for r := range res.HRounds {
					if d := math.Abs(res.HRounds[r] - ex.HRounds[r]); d > 4*(res.StdErr+ex.StdErr)+0.1 {
						t.Errorf("%s H_%d = %v, exact %v (Δ=%v)", name, r+1, res.HRounds[r], ex.HRounds[r], d)
					}
				}
			}
		})
	}
}

// TestTimelineCreepIdentifiesSwallowedSenders: under creeping compromise a
// session whose sender the adversary swallows is identified from that
// phase on — its remaining entropy is zero and, with tracking enabled, it
// counts as identified.
func TestTimelineCreepIdentifiesSwallowedSenders(t *testing.T) {
	for _, kind := range []scenario.BackendKind{
		scenario.BackendExact, scenario.BackendMonteCarlo, scenario.BackendTestbed,
	} {
		cfg := scenario.Config{
			N:            10,
			Backend:      kind,
			StrategySpec: "fixed:3",
			Adversary:    scenario.Adversary{Count: 2},
			// Epoch 2 compromises 6 of the 8 honest members: most sessions
			// lose their sender to the adversary.
			Timeline: []scenario.Epoch{{Rounds: 2}, {Rounds: 2, Compromise: 6}},
			Workload: scenario.Workload{Messages: 600, Seed: 3, Workers: 2, Confidence: 0.9},
		}
		res, err := scenario.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		// 2/10 compromised at session start, 8/10 by the second phase: at
		// least the swallowed share must be identified and fully
		// deanonymized.
		if res.IdentifiedShare < 0.7 {
			t.Errorf("%s: identified share = %v, want ≥ 0.7 (swallowed senders)", kind, res.IdentifiedShare)
		}
		if float64(res.Deanonymized)/float64(res.Trials) < 0.7 {
			t.Errorf("%s: deanonymized = %d of %d", kind, res.Deanonymized, res.Trials)
		}
		if res.HRounds[3] > res.HRounds[1] {
			t.Errorf("%s: curve rose across the compromise boundary: %v", kind, res.HRounds)
		}
	}
}

// TestTimelineSeedDeterminism: timeline runs are bit-reproducible per seed
// on every backend, in both budget modes.
func TestTimelineSeedDeterminism(t *testing.T) {
	tl := []scenario.Epoch{{Messages: 800}, {Messages: 800, Join: 5, Compromise: 1}, {Messages: 800, Leave: 3}}
	rtl := []scenario.Epoch{{Rounds: 2}, {Rounds: 2, Join: 5, Compromise: 1}, {Rounds: 2, Leave: 3}}
	cases := []struct {
		name string
		cfg  scenario.Config
	}{
		{"mc-messages", scenario.Config{
			N: 16, Backend: scenario.BackendMonteCarlo, StrategySpec: "uniform:1,5",
			Adversary: scenario.Adversary{Count: 3}, Timeline: tl,
			Workload: scenario.Workload{Seed: 5, Workers: 4},
		}},
		{"mc-rounds", scenario.Config{
			N: 16, Backend: scenario.BackendMonteCarlo, StrategySpec: "uniform:1,5",
			Adversary: scenario.Adversary{Count: 3}, Timeline: rtl,
			Workload: scenario.Workload{Messages: 400, Seed: 5, Workers: 4},
		}},
		{"testbed-messages", scenario.Config{
			N: 16, Backend: scenario.BackendTestbed, StrategySpec: "uniform:1,5",
			Adversary: scenario.Adversary{Count: 3}, Timeline: tl,
			Workload: scenario.Workload{Seed: 9},
		}},
		{"testbed-rounds", scenario.Config{
			N: 16, Backend: scenario.BackendTestbed, StrategySpec: "uniform:1,5",
			Adversary: scenario.Adversary{Count: 3}, Timeline: rtl,
			Workload: scenario.Workload{Messages: 300, Seed: 9, Confidence: 0.9},
		}},
		{"testbed-mix-rounds", scenario.Config{
			N: 16, Backend: scenario.BackendTestbed, StrategySpec: "uniform:1,5",
			Protocol:  scenario.ProtocolMix,
			Adversary: scenario.Adversary{Count: 3}, Timeline: rtl,
			Workload: scenario.Workload{Messages: 300, Seed: 9},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, err := scenario.Run(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := scenario.Run(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if a.H != b.H || a.StdErr != b.StdErr {
				t.Errorf("H not bit-identical: %v ± %v vs %v ± %v", a.H, a.StdErr, b.H, b.StdErr)
			}
			if !reflect.DeepEqual(a.HRounds, b.HRounds) {
				t.Errorf("curves differ: %v vs %v", a.HRounds, b.HRounds)
			}
			if !reflect.DeepEqual(a.Epochs, b.Epochs) {
				t.Errorf("epoch results differ: %+v vs %+v", a.Epochs, b.Epochs)
			}
		})
	}
}

// TestExactTimelineMixture: the exact backend's blended H is exactly the
// traffic-weighted mixture of the per-phase static values.
func TestExactTimelineMixture(t *testing.T) {
	static := func(n, c int) float64 {
		res, err := scenario.Run(scenario.Config{
			N: n, Backend: scenario.BackendExact, StrategySpec: "uniform:1,5",
			Adversary: scenario.Adversary{Count: c},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.H
	}
	res, err := scenario.Run(scenario.Config{
		N:            14,
		Backend:      scenario.BackendExact,
		StrategySpec: "uniform:1,5",
		Adversary:    scenario.Adversary{Count: 2},
		Timeline:     []scenario.Epoch{{Messages: 1000}, {Messages: 3000, Join: 6, Compromise: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.25*static(14, 2) + 0.75*static(20, 4)
	if math.Abs(res.H-want) > 1e-12 {
		t.Errorf("mixture H = %v, want %v", res.H, want)
	}
	wantMax := 0.25*math.Log2(14) + 0.75*math.Log2(20)
	if math.Abs(res.MaxH-wantMax) > 1e-12 {
		t.Errorf("MaxH = %v, want %v", res.MaxH, wantMax)
	}
	if res.Epochs[0].H != static(14, 2) || res.Epochs[1].H != static(20, 4) {
		t.Errorf("per-epoch H = %+v", res.Epochs)
	}
	wantComp := 0.25*(2.0/14) + 0.75*(4.0/20)
	if math.Abs(res.CompromisedSenderShare-wantComp) > 1e-12 {
		t.Errorf("compromised share = %v, want %v", res.CompromisedSenderShare, wantComp)
	}
}

// TestTimelineValidation pins the scenario layer's timeline checks: every
// malformed schedule is rejected up front with ErrBadConfig, uniformly
// across backends.
func TestTimelineValidation(t *testing.T) {
	valid := scenario.Config{
		N:            12,
		StrategySpec: "fixed:3",
		Adversary:    scenario.Adversary{Count: 2},
		Timeline:     []scenario.Epoch{{Messages: 100}, {Messages: 100, Join: 2}},
	}
	cases := []struct {
		name string
		mut  func(*scenario.Config)
	}{
		{"negative epoch field", func(c *scenario.Config) { c.Timeline[1].Leave = -1 }},
		{"mixed budgets", func(c *scenario.Config) { c.Timeline[1].Rounds = 2 }},
		{"no traffic", func(c *scenario.Config) {
			c.Timeline = []scenario.Epoch{{Join: 2}, {Leave: 2}}
		}},
		{"messages timeline with Workload.Messages", func(c *scenario.Config) { c.Workload.Messages = 50 }},
		{"messages timeline with Workload.Rounds", func(c *scenario.Config) { c.Workload.Rounds = 4 }},
		{"messages timeline with confidence", func(c *scenario.Config) { c.Workload.Confidence = 0.9 }},
		{"rounds timeline with Workload.Rounds", func(c *scenario.Config) {
			c.Timeline = []scenario.Epoch{{Rounds: 2}, {Rounds: 2}}
			c.Workload.Rounds = 4
		}},
		{"rounds timeline without sessions", func(c *scenario.Config) {
			c.Timeline = []scenario.Epoch{{Rounds: 2}, {Rounds: 2}}
		}},
		{"population collapses", func(c *scenario.Config) {
			c.Timeline = []scenario.Epoch{{Messages: 10}, {Messages: 10, Leave: 9}}
		}},
		{"leave exceeds honest members", func(c *scenario.Config) {
			c.Timeline = []scenario.Epoch{{Messages: 10}, {Messages: 10, Leave: 11}}
		}},
		{"compromise exceeds honest members", func(c *scenario.Config) {
			c.Timeline = []scenario.Epoch{{Messages: 10}, {Messages: 10, Compromise: 11}}
		}},
		{"whole population compromised", func(c *scenario.Config) {
			c.Timeline = []scenario.Epoch{{Messages: 10}, {Messages: 10, Compromise: 10}}
		}},
		{"recover without compromised", func(c *scenario.Config) {
			c.Adversary = scenario.Adversary{}
			c.Timeline = []scenario.Epoch{{Messages: 10}, {Messages: 10, Recover: 1}}
		}},
		{"strategy outgrows smallest phase", func(c *scenario.Config) {
			c.StrategySpec = "fixed:9"
			c.Timeline = []scenario.Epoch{{Messages: 10}, {Messages: 10, Leave: 4}}
		}},
		{"fixed sender compromised mid-timeline", func(c *scenario.Config) {
			c.Workload.FixedSender = true
			c.Workload.Sender = 2 // lowest honest identity: first creep target
			c.Timeline = []scenario.Epoch{{Messages: 10}, {Messages: 10, Compromise: 1}}
		}},
		{"fixed sender leaves mid-timeline", func(c *scenario.Config) {
			c.Workload.FixedSender = true
			c.Workload.Sender = 11 // highest honest identity: first leaver
			c.Timeline = []scenario.Epoch{{Messages: 10}, {Messages: 10, Leave: 1}}
		}},
		{"negative hop delay", func(c *scenario.Config) { c.Workload.MaxHopDelay = -1 }},
	}
	for _, backend := range []scenario.BackendKind{
		scenario.BackendExact, scenario.BackendMonteCarlo, scenario.BackendTestbed,
	} {
		for _, tc := range cases {
			t.Run(string(backend)+"/"+tc.name, func(t *testing.T) {
				cfg := valid
				cfg.Backend = backend
				cfg.Timeline = append([]scenario.Epoch(nil), valid.Timeline...)
				tc.mut(&cfg)
				if _, err := scenario.Run(cfg); !errors.Is(err, scenario.ErrBadConfig) {
					t.Errorf("err = %v, want ErrBadConfig", err)
				}
			})
		}
	}
	// The valid schedule runs on every backend.
	for _, backend := range []scenario.BackendKind{
		scenario.BackendExact, scenario.BackendMonteCarlo, scenario.BackendTestbed,
	} {
		cfg := valid
		cfg.Backend = backend
		if _, err := scenario.Run(cfg); err != nil {
			t.Errorf("%s rejected a valid timeline: %v", backend, err)
		}
	}
}

// TestTimelineCrowdsRefused: the jondo substrate has no dynamic-membership
// support; a crowds timeline is refused with a capability error on the
// testbed and the protocol capability error on the analytic backends.
func TestTimelineCrowdsRefused(t *testing.T) {
	for _, backend := range []scenario.BackendKind{
		scenario.BackendExact, scenario.BackendMonteCarlo, scenario.BackendTestbed,
	} {
		cfg := scenario.Config{
			N:            12,
			Backend:      backend,
			StrategySpec: "crowds:0.7",
			Adversary:    scenario.Adversary{Count: 2},
			Timeline:     []scenario.Epoch{{Messages: 100}, {Messages: 100, Join: 2}},
		}
		_, err := scenario.Run(cfg)
		var capErr *capability.Error
		if !errors.As(err, &capErr) {
			t.Errorf("%s: err = %v, want a capability error", backend, err)
		}
	}
}

// TestParseTimeline pins the CLI epoch syntax.
func TestParseTimeline(t *testing.T) {
	tl, err := scenario.ParseTimeline(" msgs=2000; m=500,join=10,comp=2 ;rounds=4,leave=3,recover=1 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []scenario.Epoch{
		{Messages: 2000},
		{Messages: 500, Join: 10, Compromise: 2},
		{Rounds: 4, Leave: 3, Recover: 1},
	}
	if !reflect.DeepEqual(tl, want) {
		t.Errorf("parsed %+v, want %+v", tl, want)
	}
	if tl, err := scenario.ParseTimeline(""); err != nil || tl != nil {
		t.Errorf("empty spec: %v, %v", tl, err)
	}
	for _, bad := range []string{"msgs", "msgs=x", "warp=3", "msgs=1,=2"} {
		if _, err := scenario.ParseTimeline(bad); !errors.Is(err, scenario.ErrBadConfig) {
			t.Errorf("ParseTimeline(%q) err = %v, want ErrBadConfig", bad, err)
		}
	}
}

// TestTimelineFixedSender: a pinned persistent sender works across
// backends when it survives the schedule, and the exact mixture applies
// the per-phase honest-conditional rescale.
func TestTimelineFixedSender(t *testing.T) {
	base := scenario.Config{
		N:            12,
		StrategySpec: "fixed:3",
		Adversary:    scenario.Adversary{Compromised: []trace.NodeID{0, 1}},
		Timeline:     []scenario.Epoch{{Messages: 2000}, {Messages: 2000, Compromise: 1}},
		Workload:     scenario.Workload{FixedSender: true, Sender: 7, Seed: 3, Workers: 2},
	}
	exCfg := base
	exCfg.Backend = scenario.BackendExact
	ex, err := scenario.Run(exCfg)
	if err != nil {
		t.Fatal(err)
	}
	if ex.CompromisedSenderShare != 0 {
		t.Errorf("pinned honest sender share = %v", ex.CompromisedSenderShare)
	}
	for _, backend := range []scenario.BackendKind{scenario.BackendMonteCarlo, scenario.BackendTestbed} {
		cfg := base
		cfg.Backend = backend
		res, err := scenario.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(res.H - ex.H); d > 4*res.StdErr+1e-3 {
			t.Errorf("%s fixed-sender H = %v ± %v, exact %v", backend, res.H, res.StdErr, ex.H)
		}
	}
}
