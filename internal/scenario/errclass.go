package scenario

// Error classification. Every consumer that must react to a scenario
// failure — the CLIs picking an exit code, the anond daemon picking an
// HTTP status — routes through Classify, so "what kind of failure is
// this" is decided exactly once. The classes follow the layer's error
// contract: configuration errors wrap a *: invalid-configuration
// sentinel, backend refusals are *capability.Error values, cancellation
// wraps the context error, and everything else is a runtime failure.

import (
	"context"
	"errors"

	"anonmix/internal/adversary"
	"anonmix/internal/dist"
	"anonmix/internal/faults"
	"anonmix/internal/montecarlo"
	"anonmix/internal/pathsel"
	"anonmix/internal/scenario/capability"
	"anonmix/internal/simnet"
)

// ErrorClass partitions scenario-layer failures for exit codes and HTTP
// statuses.
type ErrorClass int

// The failure classes, from least to most specific match order.
const (
	// ClassRuntime is every failure not claimed below: kernel faults,
	// internal accounting errors, I/O. CLIs exit 1, anond answers 500.
	ClassRuntime ErrorClass = iota
	// ClassBadConfig is an invalid configuration or usage error: the
	// request can never succeed as written. CLIs exit 2, anond answers
	// 400.
	ClassBadConfig
	// ClassCapability is a backend refusing a scenario it cannot express
	// (a *capability.Error): the configuration is well-formed but this
	// backend cannot execute it — switch backends and retry. CLIs exit 1,
	// anond answers 422.
	ClassCapability
	// ClassCanceled is a run aborted by context cancellation or deadline
	// (RunContext): not a property of the configuration at all. CLIs
	// exit 1, anond logs the disconnect without answering.
	ClassCanceled
)

// String names the class.
func (c ErrorClass) String() string {
	switch c {
	case ClassBadConfig:
		return "bad_config"
	case ClassCapability:
		return "capability"
	case ClassCanceled:
		return "canceled"
	default:
		return "runtime"
	}
}

// badConfigSentinels are the invalid-configuration sentinels of the
// scenario layer and every package a normalized config can surface
// errors from. The errcontract analyzer pins that each package's
// Validate/Parse helpers %w-wrap its sentinel, which is what makes this
// list — rather than string matching — sufficient.
var badConfigSentinels = []error{
	ErrBadConfig,
	ErrUnknownBackend,
	montecarlo.ErrBadConfig,
	adversary.ErrBadConfig,
	simnet.ErrBadConfig,
	dist.ErrInvalid,
	pathsel.ErrBadStrategy,
	faults.ErrBadPlan,
}

// Classify maps an error from Run/RunContext (or the layers it fronts)
// to its failure class. Order matters: cancellation first (a canceled
// run may surface any half-finished error underneath), then capability
// refusals, then the bad-config sentinels, with runtime as the default.
// A nil error is ClassRuntime; callers decide on err != nil first.
func Classify(err error) ErrorClass {
	if err == nil {
		return ClassRuntime
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return ClassCanceled
	}
	var capErr *capability.Error
	if errors.As(err, &capErr) {
		return ClassCapability
	}
	for _, s := range badConfigSentinels {
		if errors.Is(err, s) {
			return ClassBadConfig
		}
	}
	return ClassRuntime
}

// ExitCode is the CLI exit-code contract shared by anonsim, anonopt, and
// anonbench: 0 for nil, 2 for configuration/usage errors (the invocation
// can never succeed as written), 1 for everything else — capability
// refusals, cancellations, and runtime failures.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case Classify(err) == ClassBadConfig:
		return 2
	default:
		return 1
	}
}
