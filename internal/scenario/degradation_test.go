package scenario_test

import (
	"math"
	"testing"

	"anonmix/internal/scenario"
	"anonmix/internal/trace"
)

// TestCrossBackendDegradationAgreement mirrors the single-shot agreement
// test for the repeated-communication regime: for k ∈ {1, 4, 16} rounds,
// the exact-accumulated, Monte-Carlo-accumulated, and testbed-empirical
// degradation estimates of the same scenario must agree within the
// sampled backends' 95% confidence intervals, across three strategies and
// both receiver modes — and every backend's H_k curve must be
// monotonically non-increasing in k.
func TestCrossBackendDegradationAgreement(t *testing.T) {
	const n = 14
	adversaries := []struct {
		name string
		adv  scenario.Adversary
	}{
		{"receiver-compromised", scenario.Adversary{Compromised: []trace.NodeID{2, 7, 11}}},
		{"receiver-uncompromised", scenario.Adversary{Compromised: []trace.NodeID{2, 7, 11}, UncompromisedReceiver: true}},
	}
	specs := []string{"fixed:3", "uniform:0,6", "pipenet"}
	ks := []int{1, 4, 16}

	// agree checks |a.H − b.H| against the quadrature sum of both 95% CIs
	// (exact single-shot contributes zero) plus a small absolute slack.
	agree := func(t *testing.T, label string, a, b scenario.Result) {
		t.Helper()
		tol := 1.96*math.Sqrt(a.StdErr*a.StdErr+b.StdErr*b.StdErr) + 0.02
		if d := math.Abs(a.H - b.H); d > tol {
			t.Errorf("%s: H = %v vs %v (Δ=%v > tol %v)", label, a.H, b.H, d, tol)
		}
	}
	monotone := func(t *testing.T, label string, h []float64) {
		t.Helper()
		for i := 1; i < len(h); i++ {
			if h[i] > h[i-1]+0.02 {
				t.Errorf("%s: H_%d = %v > H_%d = %v (curve not non-increasing)",
					label, i+1, h[i], i, h[i-1])
			}
		}
	}

	for _, adv := range adversaries {
		for _, spec := range specs {
			t.Run(adv.name+"/"+spec, func(t *testing.T) {
				base := scenario.Config{
					N:            n,
					StrategySpec: spec,
					Adversary:    adv.adv,
				}
				for _, k := range ks {
					exCfg := base
					exCfg.Backend = scenario.BackendExact
					exCfg.Workload = scenario.Workload{Messages: 3000, Rounds: k, Seed: 7}
					ex, err := scenario.Run(exCfg)
					if err != nil {
						t.Fatal(err)
					}
					if k > 1 {
						if !ex.Estimated || len(ex.HRounds) != k {
							t.Fatalf("k=%d: exact rounds result %+v", k, ex)
						}
						if ex.Rounds != k {
							t.Errorf("k=%d: exact Rounds echo = %d", k, ex.Rounds)
						}
						monotone(t, "exact", ex.HRounds)
					} else if ex.Estimated || ex.CI95 != 0 {
						// The k = 1 exact result must stay the closed form.
						t.Errorf("exact single-shot carries sampling error: %+v", ex)
					}

					mcCfg := base
					mcCfg.Backend = scenario.BackendMonteCarlo
					mcCfg.Workload = scenario.Workload{Messages: 4000, Rounds: k, Seed: 11, Workers: 4}
					mc, err := scenario.Run(mcCfg)
					if err != nil {
						t.Fatal(err)
					}
					agree(t, "mc vs exact", mc, ex)
					if k > 1 {
						monotone(t, "mc", mc.HRounds)
					}

					tbCfg := base
					tbCfg.Backend = scenario.BackendTestbed
					tbCfg.Workload = scenario.Workload{Messages: 1000, Rounds: k, Seed: 13}
					tb, err := scenario.Run(tbCfg)
					if err != nil {
						t.Fatal(err)
					}
					agree(t, "testbed vs exact", tb, ex)
					if k > 1 {
						monotone(t, "testbed", tb.HRounds)
						if tb.Trials != 1000 {
							t.Errorf("k=%d: testbed sessions = %d", k, tb.Trials)
						}
					}
					if tb.Kernel == nil || tb.Kernel.Events == 0 {
						t.Errorf("k=%d: testbed result lacks kernel stats", k)
					}

					// The first round of an accumulated run estimates the
					// same quantity as the single-shot scenario.
					if k > 1 {
						single := exactReferenceH(t, base)
						for name, res := range map[string]scenario.Result{"exact": ex, "mc": mc, "testbed": tb} {
							if d := math.Abs(res.HRounds[0] - single); d > 4*res.StdErr+0.1 {
								t.Errorf("%s: H_1 = %v, single-shot exact = %v (Δ=%v)",
									name, res.HRounds[0], single, d)
							}
						}
					}
				}
			})
		}
	}
}

// exactReferenceH computes the single-shot closed-form H*(S).
func exactReferenceH(t *testing.T, base scenario.Config) float64 {
	t.Helper()
	cfg := base
	cfg.Backend = scenario.BackendExact
	cfg.Workload = scenario.Workload{}
	res, err := scenario.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res.H
}

// TestSeedDeterminism: identical Config + Workload.Seed must produce
// bit-identical Result.H (and degradation curves) on repeated runs for
// both sampled backends, single-shot and multi-round.
func TestSeedDeterminism(t *testing.T) {
	cases := []struct {
		name string
		cfg  scenario.Config
	}{
		{"mc-single", scenario.Config{
			N: 20, Backend: scenario.BackendMonteCarlo, StrategySpec: "uniform:1,5",
			Adversary: scenario.Adversary{Count: 3},
			Workload:  scenario.Workload{Messages: 2000, Seed: 5, Workers: 4},
		}},
		{"mc-rounds", scenario.Config{
			N: 20, Backend: scenario.BackendMonteCarlo, StrategySpec: "uniform:1,5",
			Adversary: scenario.Adversary{Count: 3},
			Workload:  scenario.Workload{Messages: 800, Rounds: 6, Seed: 5, Workers: 4},
		}},
		{"testbed-single", scenario.Config{
			N: 20, Backend: scenario.BackendTestbed, StrategySpec: "uniform:1,5",
			Adversary: scenario.Adversary{Count: 3},
			Workload:  scenario.Workload{Messages: 1500, Seed: 9},
		}},
		{"testbed-rounds", scenario.Config{
			N: 20, Backend: scenario.BackendTestbed, StrategySpec: "uniform:1,5",
			Adversary: scenario.Adversary{Count: 3},
			Workload:  scenario.Workload{Messages: 400, Rounds: 5, Seed: 9, Confidence: 0.9},
		}},
		{"testbed-crowds-rounds", scenario.Config{
			N: 16, Backend: scenario.BackendTestbed, StrategySpec: "crowds:0.7",
			Adversary: scenario.Adversary{Count: 2},
			Workload:  scenario.Workload{Messages: 300, Rounds: 4, Seed: 3},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, err := scenario.Run(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := scenario.Run(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if a.H != b.H || a.StdErr != b.StdErr {
				t.Errorf("H not bit-identical across runs: %v ± %v vs %v ± %v",
					a.H, a.StdErr, b.H, b.StdErr)
			}
			if len(a.HRounds) != len(b.HRounds) {
				t.Fatalf("HRounds length %d vs %d", len(a.HRounds), len(b.HRounds))
			}
			for r := range a.HRounds {
				if a.HRounds[r] != b.HRounds[r] {
					t.Errorf("HRounds[%d] not bit-identical: %v vs %v", r, a.HRounds[r], b.HRounds[r])
				}
			}
			if a.IdentifiedShare != b.IdentifiedShare || a.MeanRoundsToIdentify != b.MeanRoundsToIdentify {
				t.Errorf("identification stats differ across runs")
			}
		})
	}
}

// TestDegradationIdentification: with a fixed honest sender and a
// confidence threshold, every backend identifies the sender given enough
// rounds, and reports coherent identification statistics.
func TestDegradationIdentification(t *testing.T) {
	base := scenario.Config{
		N:            12,
		StrategySpec: "uniform:1,5",
		Adversary:    scenario.Adversary{Compromised: []trace.NodeID{2, 9}},
		Workload: scenario.Workload{
			Messages: 40, Rounds: 120, Seed: 5,
			Confidence: 0.9, FixedSender: true, Sender: 4,
		},
	}
	for _, kind := range []scenario.BackendKind{
		scenario.BackendExact, scenario.BackendMonteCarlo, scenario.BackendTestbed,
	} {
		t.Run(string(kind), func(t *testing.T) {
			cfg := base
			cfg.Backend = kind
			res, err := scenario.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.IdentifiedShare < 0.9 {
				t.Errorf("identified share = %v, want ≥ 0.9", res.IdentifiedShare)
			}
			if res.MeanRoundsToIdentify <= 1 || res.MeanRoundsToIdentify > 120 {
				t.Errorf("mean rounds to identify = %v", res.MeanRoundsToIdentify)
			}
			if res.CompromisedSenderShare != 0 {
				t.Errorf("fixed honest sender counted as compromised: %v", res.CompromisedSenderShare)
			}
			if len(res.HRounds) != 120 {
				t.Fatalf("HRounds length %d", len(res.HRounds))
			}
			if !(res.HRounds[0] > res.HRounds[30] && res.HRounds[30] > res.HRounds[119]) {
				t.Errorf("mean entropy not decreasing: %v %v %v",
					res.HRounds[0], res.HRounds[30], res.HRounds[119])
			}
		})
	}
}

// TestFixedSenderExactScaling: the exact backend's single-shot
// fixed-sender value is the honest-conditional entropy H*(S)·N/(N−C) —
// except under the no-self-report ablation, where the engine already
// conditions on the local-eavesdropper branch being absent and a pinned
// honest sender changes nothing (regression: the factor was once applied
// twice).
func TestFixedSenderExactScaling(t *testing.T) {
	base := scenario.Config{
		N:            10,
		Backend:      scenario.BackendExact,
		StrategySpec: "fixed:3",
		Adversary:    scenario.Adversary{Count: 5},
	}
	uniform, err := scenario.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	pinned := base
	pinned.Workload = scenario.Workload{FixedSender: true, Sender: 7}
	fixed, err := scenario.Run(pinned)
	if err != nil {
		t.Fatal(err)
	}
	if want := uniform.H * 2; math.Abs(fixed.H-want) > 1e-12 {
		t.Errorf("fixed-sender H = %v, want N/(N-C)·H = %v", fixed.H, want)
	}
	if fixed.CompromisedSenderShare != 0 {
		t.Errorf("pinned honest sender share = %v", fixed.CompromisedSenderShare)
	}

	ablBase := base
	ablBase.Adversary.NoSenderSelfReport = true
	ablUniform, err := scenario.Run(ablBase)
	if err != nil {
		t.Fatal(err)
	}
	ablPinned := ablBase
	ablPinned.Workload = scenario.Workload{FixedSender: true, Sender: 7}
	ablFixed, err := scenario.Run(ablPinned)
	if err != nil {
		t.Fatal(err)
	}
	if ablFixed.H != ablUniform.H {
		t.Errorf("no-self-report: fixed-sender H = %v, want unscaled %v", ablFixed.H, ablUniform.H)
	}
	if ablFixed.H > ablFixed.MaxH {
		t.Errorf("H %v exceeds MaxH %v", ablFixed.H, ablFixed.MaxH)
	}
}

// TestCrowdsDegradationRounds: multi-round sessions on the Crowds
// substrate accumulate predecessor counts — the count posterior's entropy
// decays with reformations, and with enough rounds the initiator ends
// with the top count in most sessions.
func TestCrowdsDegradationRounds(t *testing.T) {
	run := func(rounds int) scenario.Result {
		res, err := scenario.Run(scenario.Config{
			N:            20,
			Backend:      scenario.BackendTestbed,
			StrategySpec: "crowds:0.75",
			Adversary:    scenario.Adversary{Count: 2},
			Workload:     scenario.Workload{Messages: 400, Rounds: rounds, Seed: 11, Confidence: 0.9},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	many := run(200)
	cr := many.Crowds
	if cr == nil {
		t.Fatal("no crowds report")
	}
	if len(many.HRounds) != 200 {
		t.Fatalf("HRounds length %d", len(many.HRounds))
	}
	for i := 1; i < len(many.HRounds); i++ {
		if many.HRounds[i] > many.HRounds[i-1]+0.02 {
			t.Errorf("H_%d = %v > H_%d = %v", i+1, many.HRounds[i], i, many.HRounds[i-1])
		}
	}
	if cr.TopCountIdentifiedShare < 0.9 {
		t.Errorf("200 reformations: top-count identified share %v, want ≥ 0.9", cr.TopCountIdentifiedShare)
	}
	if many.IdentifiedShare < 0.5 {
		t.Errorf("200 reformations: confidence-identified share %v, want ≥ 0.5", many.IdentifiedShare)
	}
	few := run(2)
	if !(many.Crowds.TopCountIdentifiedShare > few.Crowds.TopCountIdentifiedShare) {
		t.Errorf("identification should improve with rounds: %v vs %v",
			many.Crowds.TopCountIdentifiedShare, few.Crowds.TopCountIdentifiedShare)
	}
	if many.Crowds.MeanObservedRounds <= few.Crowds.MeanObservedRounds {
		t.Errorf("observed rounds should grow: %v vs %v",
			many.Crowds.MeanObservedRounds, few.Crowds.MeanObservedRounds)
	}
	// The first-round mean entropy matches the closed-form mixture of the
	// observed event (EventEntropy) and the uninformed uniform log2(n−c).
	pObs := many.Crowds.MeanObservedRounds / 200
	want := pObs*many.Crowds.EventEntropy + (1-pObs)*math.Log2(18)
	if d := math.Abs(many.HRounds[0] - want); d > 0.15 {
		t.Errorf("H_1 = %v, closed-form mixture = %v (Δ=%v)", many.HRounds[0], want, d)
	}
}
