package scenario

// The timeline dimension: dynamic populations as piecewise-constant
// phases. This file owns everything the three backends share — the
// deterministic membership schedule derived from Config.Timeline, the
// dense-space mapping each phase hands to the analytic machinery, the
// cross-phase degradation session, and the compact CLI epoch syntax — so
// that "the same scenario on every backend" keeps meaning the same
// population trajectory everywhere.
//
// Identity rules (all deterministic, shared by every backend):
//
//   - The initial population is 0..N−1; joiners get fresh identities
//     allocated upward (N, N+1, ...). The union space therefore has
//     N + ΣJoin identities, of which each phase sees a live subset.
//   - Leaves remove the highest-identity honest members first.
//   - Compromises convert the lowest-identity honest members first (the
//     creeping-compromise counterpart of "the first Count nodes").
//   - Recoveries undo compromises LIFO (most recently compromised first).
//
// Each phase maps its live members, in ascending identity order, onto the
// dense space 0..n_e−1 the exact engine, the Monte-Carlo estimator, and
// the adversary's analyst operate on; the union identity is what threads a
// node through the phases of a degradation session.

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"anonmix/internal/adversary"
	"anonmix/internal/events"
	"anonmix/internal/montecarlo"
	"anonmix/internal/pathsel"
	workpool "anonmix/internal/pool"
	"anonmix/internal/scenario/capability"
	"anonmix/internal/stats"
	"anonmix/internal/trace"
)

// phase is the normalized state of one epoch: the epoch's budgets plus the
// materialized membership.
type phase struct {
	// epoch echoes the configured deltas and budgets.
	epoch Epoch
	// live lists the members in ascending union identity; live[i] is the
	// union identity of dense node i.
	live []trace.NodeID
	// comp lists the compromised members (union identities, ascending).
	comp []trace.NodeID
	// denseComp holds the dense images of comp (positions in live).
	denseComp []trace.NodeID
	// denseOf inverts live: union identity → dense index.
	denseOf map[trace.NodeID]int
	// compSet marks the compromised union identities.
	compSet map[trace.NodeID]bool
}

// n is the phase's live population size.
func (p *phase) n() int { return len(p.live) }

// c is the phase's compromised count.
func (p *phase) c() int { return len(p.comp) }

// normalizeTimeline validates Config.Timeline, reconciles it with the
// workload, and materializes the membership schedule into cfg.phases. A
// nil timeline leaves the config untouched (the static model).
func normalizeTimeline(cfg *Config) error {
	if len(cfg.Timeline) == 0 {
		return nil
	}
	var msgs, rounds int
	for i, e := range cfg.Timeline {
		if e.Messages < 0 || e.Rounds < 0 || e.Join < 0 || e.Leave < 0 || e.Compromise < 0 || e.Recover < 0 {
			return fmt.Errorf("%w: epoch %d has a negative field (%+v)", ErrBadConfig, i, e)
		}
		msgs += e.Messages
		rounds += e.Rounds
	}
	switch {
	case msgs > 0 && rounds > 0:
		return fmt.Errorf("%w: timeline mixes Messages and Rounds budgets (pick one axis)", ErrBadConfig)
	case msgs == 0 && rounds == 0:
		return fmt.Errorf("%w: timeline carries no traffic (every epoch has zero Messages and Rounds)", ErrBadConfig)
	case rounds > 0:
		// Degradation timeline: Workload.Messages sessions persist across
		// the phases, each sending ΣRounds rounds.
		if cfg.Workload.Rounds > 1 {
			return fmt.Errorf("%w: per-epoch Rounds replace Workload.Rounds (leave it unset)", ErrBadConfig)
		}
		if cfg.Workload.Messages <= 0 {
			return fmt.Errorf("%w: degradation timeline needs Workload.Messages sessions > 0", ErrBadConfig)
		}
		cfg.Workload.Rounds = rounds
	default:
		// Single-shot timeline: the per-epoch budgets are the traffic.
		if cfg.Workload.Messages != 0 {
			return fmt.Errorf("%w: per-epoch Messages replace Workload.Messages (leave it unset)", ErrBadConfig)
		}
		if cfg.Workload.Rounds > 1 {
			return fmt.Errorf("%w: a Messages timeline is single-shot (use per-epoch Rounds for degradation)", ErrBadConfig)
		}
		if cfg.Workload.Confidence > 0 {
			return fmt.Errorf("%w: identification tracking needs a Rounds timeline", ErrBadConfig)
		}
		cfg.Workload.Messages = msgs
	}
	phases, err := computePhases(cfg.N, cfg.Adversary.Compromised, cfg.Timeline)
	if err != nil {
		return err
	}
	if cfg.Workload.FixedSender {
		s := cfg.Workload.Sender
		for i := range phases {
			if _, ok := phases[i].denseOf[s]; !ok {
				return fmt.Errorf("%w: fixed sender %v leaves during epoch %d", ErrBadConfig, s, i)
			}
			if phases[i].compSet[s] {
				return fmt.Errorf("%w: fixed sender %v is compromised in epoch %d", ErrBadConfig, s, i)
			}
		}
	}
	if rounds > 0 && !cfg.Workload.FixedSender && len(senderPool(phases)) == 0 {
		return fmt.Errorf("%w: no node is a member through every traffic epoch (empty session sender pool)", ErrBadConfig)
	}
	if cfg.Strategy.Length != nil {
		// The strategy must fit the smallest phase: a simple path cannot be
		// longer than the live population minus the sender.
		minN := cfg.N
		for i := range phases {
			if n := phases[i].n(); n < minN {
				minN = n
			}
		}
		if err := cfg.Strategy.Validate(minN); err != nil {
			return fmt.Errorf("%w: strategy does not fit the smallest epoch population %d: %w",
				ErrBadConfig, minN, err)
		}
	}
	cfg.phases = phases
	return nil
}

// computePhases materializes the deterministic membership schedule: the
// state after applying each epoch's deltas in order (joins, leaves,
// compromises, recoveries).
func computePhases(n int, baseComp []trace.NodeID, timeline []Epoch) ([]phase, error) {
	total := n
	for _, e := range timeline {
		total += e.Join
	}
	live := make([]bool, total)
	for v := 0; v < n; v++ {
		live[v] = true
	}
	compSet := make(map[trace.NodeID]bool, len(baseComp))
	// compOrder tracks compromise order for LIFO recovery; the base set
	// counts as compromised in configuration order.
	compOrder := append([]trace.NodeID(nil), baseComp...)
	for _, id := range baseComp {
		compSet[id] = true
	}
	next := trace.NodeID(n)
	phases := make([]phase, 0, len(timeline))
	for i, e := range timeline {
		for j := 0; j < e.Join; j++ {
			live[next] = true
			next++
		}
		// Leaves take the highest-identity honest members, compromises the
		// lowest. The cursors are bounded by the allocated identity range
		// (identities ≥ next are future joiners, never live) and persist
		// across the epoch's loop, so an epoch's deltas cost one descending
		// plus one ascending walk — not a rescan per node.
		leaveCur := int(next) - 1
		for j := 0; j < e.Leave; j++ {
			for leaveCur >= 0 && !(live[leaveCur] && !compSet[trace.NodeID(leaveCur)]) {
				leaveCur--
			}
			if leaveCur < 0 {
				return nil, fmt.Errorf("%w: epoch %d: no honest member left to leave", ErrBadConfig, i)
			}
			live[leaveCur] = false
		}
		compCur := 0
		for j := 0; j < e.Compromise; j++ {
			for compCur < int(next) && !(live[compCur] && !compSet[trace.NodeID(compCur)]) {
				compCur++
			}
			if compCur >= int(next) {
				return nil, fmt.Errorf("%w: epoch %d: no honest member left to compromise", ErrBadConfig, i)
			}
			compSet[trace.NodeID(compCur)] = true
			compOrder = append(compOrder, trace.NodeID(compCur))
		}
		for j := 0; j < e.Recover; j++ {
			if len(compOrder) == 0 {
				return nil, fmt.Errorf("%w: epoch %d: no compromised node left to recover", ErrBadConfig, i)
			}
			v := compOrder[len(compOrder)-1]
			compOrder = compOrder[:len(compOrder)-1]
			delete(compSet, v)
		}
		p := phase{
			epoch:   e,
			denseOf: make(map[trace.NodeID]int),
			compSet: make(map[trace.NodeID]bool, len(compSet)),
		}
		// Snapshot over the allocated range only; identities ≥ next have
		// not joined in any phase so far.
		for g := 0; g < int(next); g++ {
			if !live[g] {
				continue
			}
			id := trace.NodeID(g)
			p.denseOf[id] = len(p.live)
			p.live = append(p.live, id)
			if compSet[id] {
				p.comp = append(p.comp, id)
				p.denseComp = append(p.denseComp, trace.NodeID(p.denseOf[id]))
				p.compSet[id] = true
			}
		}
		if p.n() < 2 {
			return nil, fmt.Errorf("%w: epoch %d leaves %d live nodes (need ≥ 2)", ErrBadConfig, i, p.n())
		}
		if p.c() >= p.n() {
			return nil, fmt.Errorf("%w: epoch %d compromises the whole population (%d of %d)",
				ErrBadConfig, i, p.c(), p.n())
		}
		phases = append(phases, p)
	}
	return phases, nil
}

// EpochState summarizes one epoch of a materialized timeline schedule: the
// live population, the compromised count, and the epoch's share of the
// timeline's traffic. It is the population-trajectory view consumers like
// the epoch-aware optimizer need, without the identity maps the execution
// backends carry.
type EpochState struct {
	// Index is the epoch's position in the timeline.
	Index int
	// N and C are the live population and compromised count after the
	// epoch's deltas.
	N, C int
	// Messages and Rounds echo the epoch's traffic budgets.
	Messages, Rounds int
	// Weight is the epoch's share of the timeline's total traffic; equal
	// shares when no epoch carries traffic (a pure population drift).
	Weight float64
}

// TimelineStates materializes the deterministic membership schedule of a
// timeline over a base population of n nodes with the first c compromised
// (the standard adversary layout), returning each epoch's (N, C) and
// traffic weight. It applies the same identity rules as the execution
// backends, so the returned trajectory is exactly the one a scenario run
// would traverse.
func TimelineStates(n, c int, timeline []Epoch) ([]EpochState, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: need at least 2 nodes, have %d", ErrBadConfig, n)
	}
	if c < 0 || c >= n {
		return nil, fmt.Errorf("%w: %d compromised of %d nodes", ErrBadConfig, c, n)
	}
	if len(timeline) == 0 {
		return nil, fmt.Errorf("%w: empty timeline", ErrBadConfig)
	}
	for i, e := range timeline {
		if e.Messages < 0 || e.Rounds < 0 || e.Join < 0 || e.Leave < 0 || e.Compromise < 0 || e.Recover < 0 {
			return nil, fmt.Errorf("%w: epoch %d has a negative field (%+v)", ErrBadConfig, i, e)
		}
	}
	comp := make([]trace.NodeID, c)
	for i := range comp {
		comp[i] = trace.NodeID(i)
	}
	phases, err := computePhases(n, comp, timeline)
	if err != nil {
		return nil, err
	}
	out := make([]EpochState, len(phases))
	var total float64
	for i := range phases {
		out[i] = EpochState{
			Index:    i,
			N:        phases[i].n(),
			C:        phases[i].c(),
			Messages: phases[i].epoch.Messages,
			Rounds:   phases[i].epoch.Rounds,
		}
		total += float64(out[i].Messages + out[i].Rounds)
	}
	for i := range out {
		if total > 0 {
			out[i].Weight = float64(out[i].Messages+out[i].Rounds) / total
		} else {
			out[i].Weight = 1 / float64(len(out))
		}
	}
	return out, nil
}

// unionSize is the size of the union identity space of a schedule.
func unionSize(n int, timeline []Epoch) int {
	total := n
	for _, e := range timeline {
		total += e.Join
	}
	return total
}

// timelineRounds reports whether the schedule is a degradation timeline
// (per-epoch Rounds) rather than a single-shot one (per-epoch Messages).
func timelineRounds(phases []phase) bool {
	for i := range phases {
		if phases[i].epoch.Rounds > 0 {
			return true
		}
	}
	return false
}

// senderPool returns the union identities eligible to carry a persistent
// session: members of every phase that sends rounds (compromised members
// included — theirs is the local-eavesdropper branch).
func senderPool(phases []phase) []trace.NodeID {
	var pool []trace.NodeID
	for _, g := range unionMembers(phases) {
		ok := true
		for i := range phases {
			if phases[i].epoch.Rounds == 0 {
				continue
			}
			if _, live := phases[i].denseOf[g]; !live {
				ok = false
				break
			}
		}
		if ok {
			pool = append(pool, g)
		}
	}
	return pool
}

// unionMembers lists every union identity live in at least one phase,
// ascending.
func unionMembers(phases []phase) []trace.NodeID {
	seen := map[trace.NodeID]bool{}
	var out []trace.NodeID
	for i := range phases {
		for _, g := range phases[i].live {
			if !seen[g] {
				seen[g] = true
				out = append(out, g)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// timelineWeights returns each phase's share of the total traffic
// (messages for single-shot timelines, rounds for degradation ones).
func timelineWeights(phases []phase) []float64 {
	w := make([]float64, len(phases))
	var total float64
	for i := range phases {
		w[i] = float64(phases[i].epoch.Messages + phases[i].epoch.Rounds)
		total += w[i]
	}
	for i := range w {
		w[i] /= total
	}
	return w
}

// timelineMaxH is the traffic-weighted upper bound Σ w_e·log2(n_e): the
// natural yardstick when the population size itself varies.
func timelineMaxH(phases []phase) float64 {
	var maxH float64
	for i, w := range timelineWeights(phases) {
		maxH += w * math.Log2(float64(phases[i].n()))
	}
	return maxH
}

// phaseSeed derives a per-phase RNG seed, so phases draw from disjoint
// deterministic streams (the shared stats.ForkSeed stream derivation).
func phaseSeed(seed int64, i int) int64 {
	return stats.ForkSeed(seed, int64(i+1))
}

// denseTrace rewrites a union-identity message trace into the phase's
// dense node space (the receiver pseudo-identity passes through).
func (p *phase) denseTrace(mt *trace.MessageTrace) (*trace.MessageTrace, error) {
	out := &trace.MessageTrace{
		Msg:          mt.Msg,
		ReceiverSeen: mt.ReceiverSeen,
	}
	toDense := func(g trace.NodeID) (trace.NodeID, error) {
		if g == trace.Receiver {
			return trace.Receiver, nil
		}
		d, ok := p.denseOf[g]
		if !ok {
			return 0, fmt.Errorf("scenario: node %v observed outside its membership phase", g)
		}
		return trace.NodeID(d), nil
	}
	var err error
	if mt.ReceiverSeen {
		if out.ReceiverPred, err = toDense(mt.ReceiverPred); err != nil {
			return nil, err
		}
	}
	if len(mt.Reports) > 0 {
		out.Reports = make([]trace.Tuple, len(mt.Reports))
		for i, r := range mt.Reports {
			d := r
			if d.Observer, err = toDense(r.Observer); err != nil {
				return nil, err
			}
			if d.Pred, err = toDense(r.Pred); err != nil {
				return nil, err
			}
			if d.Succ, err = toDense(r.Succ); err != nil {
				return nil, err
			}
			out.Reports[i] = d
		}
	}
	return out, nil
}

// phasedSession folds one persistent session through the phases of a
// degradation timeline: the caller's union-space accumulator (reset here,
// so one allocation serves every session) collects each round's trace,
// produced by draw (phase index, global round) in the phase's dense space,
// and a sender compromised during a phase is identified outright from its
// first round there on (the adversary's agent at the sender — once burned,
// always burned, recovery notwithstanding). Exact and Monte-Carlo sessions
// synthesize the draw; the testbed looks up collected traces. Entropies
// are written into the caller's buffer, indexed by global round (its
// length must be the timeline's total rounds); identifiedAt is the first
// 1-based round reaching the confidence threshold (0 = never).
func phasedSession(phases []phase, analysts []*adversary.Analyst,
	pa *adversary.PhasedAccumulator, sc *adversary.Scratch, entropies []float64,
	sender trace.NodeID, conf float64,
	draw func(pi, r int) (*trace.MessageTrace, error)) (identifiedAt int, err error) {
	pa.Reset()
	r := 0
	dead := false // sender observed as compromised: identified for good
	for pi := range phases {
		p := &phases[pi]
		if p.epoch.Rounds > 0 && p.compSet[sender] {
			dead = true
		}
		for j := 0; j < p.epoch.Rounds; j++ {
			if dead {
				entropies[r] = 0
				if identifiedAt == 0 && conf > 0 {
					identifiedAt = r + 1
				}
				r++
				continue
			}
			mt, err := draw(pi, r)
			if err != nil {
				return 0, err
			}
			if err := pa.ObserveScratch(analysts[pi], mt, p.live, sc); err != nil {
				return 0, err
			}
			h, top, mass, err := pa.SnapshotFast()
			if err != nil {
				return 0, err
			}
			entropies[r] = h
			if identifiedAt == 0 && conf > 0 && top == sender && mass >= conf {
				identifiedAt = r + 1
			}
			r++
		}
	}
	return identifiedAt, nil
}

// epochResults summarizes a degradation run's blended curve per phase: the
// mean accumulated entropy over each phase's rounds.
func epochResults(phases []phase, sessions int, hRounds []float64) []EpochResult {
	out := make([]EpochResult, len(phases))
	r := 0
	for i := range phases {
		rounds := phases[i].epoch.Rounds
		var sum float64
		for j := 0; j < rounds; j++ {
			sum += hRounds[r+j]
		}
		out[i] = EpochResult{
			Index:    i,
			N:        phases[i].n(),
			C:        phases[i].c(),
			Messages: sessions * rounds,
			Rounds:   rounds,
		}
		if rounds > 0 {
			out[i].H = sum / float64(rounds)
		}
		r += rounds
	}
	return out
}

// ParseTimeline parses the compact epoch syntax of the CLIs: epochs
// separated by ';', each a comma-separated list of key=value fields with
// keys msgs, rounds, join, leave, comp, recover. Example:
//
//	msgs=2000;msgs=2000,join=10,comp=2;msgs=2000,leave=5
//
// An empty string yields a nil timeline (the static model).
func ParseTimeline(s string) ([]Epoch, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []Epoch
	for i, part := range strings.Split(s, ";") {
		var e Epoch
		for _, field := range strings.Split(part, ",") {
			field = strings.TrimSpace(field)
			if field == "" {
				continue
			}
			key, val, ok := strings.Cut(field, "=")
			if !ok {
				return nil, fmt.Errorf("%w: epoch %d: field %q is not key=value", ErrBadConfig, i, field)
			}
			v, err := strconv.Atoi(strings.TrimSpace(val))
			if err != nil {
				return nil, fmt.Errorf("%w: epoch %d: %s=%q is not an integer", ErrBadConfig, i, key, val)
			}
			switch strings.ToLower(strings.TrimSpace(key)) {
			case "msgs", "messages", "m":
				e.Messages = v
			case "rounds", "r":
				e.Rounds = v
			case "join", "j":
				e.Join = v
			case "leave":
				e.Leave = v
			case "comp", "compromise":
				e.Compromise = v
			case "recover":
				e.Recover = v
			default:
				return nil, fmt.Errorf("%w: epoch %d: unknown field %q (known: msgs, rounds, join, leave, comp, recover)",
					ErrBadConfig, i, key)
			}
		}
		out = append(out, e)
	}
	return out, nil
}

// drawPhasePath draws one rerouting path for a session round: the sampler
// works in the phase's dense space, and the result is mapped back to union
// identities when the caller needs concrete network routes. The mapped
// copy is freshly allocated — it crosses the kernel boundary and outlives
// the sampler's reusable buffer.
func drawPhasePath(p *phase, sp *pathsel.Sampler, rng *stats.Stream, sender trace.NodeID) ([]trace.NodeID, error) {
	dense, err := sp.SelectPath(rng, trace.NodeID(p.denseOf[sender]))
	if err != nil {
		return nil, err
	}
	global := make([]trace.NodeID, len(dense))
	for i, d := range dense {
		global[i] = p.live[d]
	}
	return global, nil
}

// phasedMachinery builds the per-phase inference stack of a degradation
// timeline — shared engine-cache engines, analysts over the dense
// compromised sets, and dense-space selectors — enforcing the accumulation
// capabilities every backend needs (standard inference, sender
// self-report).
func phasedMachinery(cfg Config, backend string) ([]*adversary.Analyst, []*pathsel.Selector, error) {
	analysts := make([]*adversary.Analyst, len(cfg.phases))
	sels := make([]*pathsel.Selector, len(cfg.phases))
	for i := range cfg.phases {
		p := &cfg.phases[i]
		e, err := Engine(p.n(), p.c(), engineOptions(cfg)...)
		if err != nil {
			return nil, nil, err
		}
		if e.Mode() != events.InferenceStandard {
			return nil, nil, capability.Unsupported(backend,
				capability.ErrInference, "dynamic-population execution requires the standard inference mode")
		}
		if !e.SenderSelfReport() {
			// The per-message analysis hardcodes the local-eavesdropper
			// branch (mirroring the static sampled paths); only the exact
			// backend's closed forms support the ablation.
			return nil, nil, capability.Unsupported(backend,
				capability.ErrInference, "no-sender-self-report ablation is supported only on the exact backend's closed-form analysis")
		}
		if analysts[i], err = adversary.NewAnalyst(e, cfg.Strategy.Length, p.denseComp); err != nil {
			return nil, nil, err
		}
		if sels[i], err = pathsel.NewSelector(p.n(), cfg.Strategy); err != nil {
			return nil, nil, err
		}
	}
	return analysts, sels, nil
}

// firstTrafficPhase returns the index of the first phase that sends rounds.
func firstTrafficPhase(phases []phase) int {
	for i := range phases {
		if phases[i].epoch.Rounds > 0 {
			return i
		}
	}
	return 0
}

// sessionBatchSize is the work-stealing granule of the phased session
// loop, mirroring the static Monte-Carlo estimator's trial batching: each
// batch's partial sums are merged in batch-index order so the result is
// bit-identical for any worker count.
const sessionBatchSize = 64

// phasedArena is the per-worker scratch of a degradation-timeline run:
// per-phase samplers, a reusable union-space accumulator, classification
// scratch, one trace buffer, and the per-session entropy curve. The draw
// closure is built once per arena (capturing only the arena) so the
// session loop allocates nothing.
type phasedArena struct {
	samplers  []*pathsel.Sampler
	pa        *adversary.PhasedAccumulator
	sc        adversary.Scratch
	mt        trace.MessageTrace
	entropies []float64
	rng       stats.Stream
	sender    trace.NodeID
	draw      func(pi, r int) (*trace.MessageTrace, error)
}

// runPhasedRounds executes a degradation timeline analytically:
// Workload.Messages persistent sessions spanning the phases, each round
// synthesized in its phase's dense space and folded through a union-space
// PhasedAccumulator. Every session draws from its own counter-based
// stream, so the output is a pure function of (Seed, Messages) alone —
// workers only bounds how many sessions run concurrently (the exact
// backend passes 1 and stays the serial reference, with identical
// results).
func runPhasedRounds(cfg Config, backend string, workers int) (Result, error) {
	analysts, sels, err := phasedMachinery(cfg, backend)
	if err != nil {
		return Result{}, err
	}
	var (
		phases   = cfg.phases
		total    = unionSize(cfg.N, cfg.Timeline)
		sessions = cfg.Workload.Messages
		k        = cfg.Workload.Rounds
		conf     = cfg.Workload.Confidence
		first    = firstTrafficPhase(phases)
		pool     []trace.NodeID
	)
	if !cfg.Workload.FixedSender {
		pool = senderPool(phases)
	}
	comps := make([]func(trace.NodeID) bool, len(analysts))
	for i, a := range analysts {
		comps[i] = a.Compromised
	}
	newArena := func() (*phasedArena, error) {
		ar := &phasedArena{
			samplers:  make([]*pathsel.Sampler, len(sels)),
			entropies: make([]float64, k),
		}
		for i, sel := range sels {
			var err error
			if ar.samplers[i], err = sel.NewSampler(); err != nil {
				return nil, err
			}
		}
		var err error
		if ar.pa, err = adversary.NewPhasedAccumulator(total); err != nil {
			return nil, err
		}
		ar.draw = func(pi, r int) (*trace.MessageTrace, error) {
			ph := &phases[pi]
			ds := trace.NodeID(ph.denseOf[ar.sender])
			dense, err := ar.samplers[pi].SelectPath(&ar.rng, ds)
			if err != nil {
				return nil, err
			}
			montecarlo.SynthesizeInto(&ar.mt, trace.MessageID(r+1), ds, dense, comps[pi])
			return &ar.mt, nil
		}
		return ar, nil
	}
	type part struct {
		sum         stats.Summary
		entropySums []float64
		compSender  int
		deanon      int
		identified  int
		roundsSum   int
		err         error
	}
	batches := (sessions + sessionBatchSize - 1) / sessionBatchSize
	parts := make([]part, batches)
	var nextBatch, doneSessions atomic.Int64
	var aborted atomic.Bool
	cancel := cfg.cancelChan()
	if workers > batches {
		workers = batches
	}
	workpool.ForEach(workers, func(int) {
		ar, err := newArena()
		if err != nil {
			if b := int(nextBatch.Add(1)) - 1; b < batches {
				parts[b].err = err
			}
			return
		}
		for {
			if cancelRequested(cancel) {
				aborted.Store(true)
				return
			}
			b := int(nextBatch.Add(1)) - 1
			if b >= batches {
				return
			}
			p := &parts[b]
			p.entropySums = make([]float64, k)
			lo, hi := b*sessionBatchSize, (b+1)*sessionBatchSize
			if hi > sessions {
				hi = sessions
			}
			for s := lo; s < hi; s++ {
				ar.rng = stats.NewStream(cfg.Workload.Seed, int64(s))
				sender := cfg.Workload.Sender
				if !cfg.Workload.FixedSender {
					sender = pool[ar.rng.Intn(len(pool))]
				}
				ar.sender = sender
				identifiedAt, err := phasedSession(phases, analysts, ar.pa, &ar.sc,
					ar.entropies, sender, conf, ar.draw)
				if err != nil {
					p.err = err
					return
				}
				if phases[first].compSet[sender] {
					p.compSender++
				}
				for r, h := range ar.entropies {
					p.entropySums[r] += h
				}
				final := ar.entropies[k-1]
				p.sum.Add(final)
				if final < 1e-9 {
					p.deanon++
				}
				if identifiedAt > 0 {
					p.identified++
					p.roundsSum += identifiedAt
				}
			}
			cfg.emitProgress(int(doneSessions.Add(int64(hi-lo))), sessions, nil)
		}
	})
	if aborted.Load() {
		if err := cfg.checkCanceled(); err != nil {
			return Result{}, err
		}
		// Unreachable in practice (the cancel channel is the context's),
		// kept so an abort can never fall through to a partial merge.
		return Result{}, ErrCanceled
	}
	var (
		sum        stats.Summary
		compSender int
		deanon     int
		identified int
		roundsSum  int
		hRounds    = make([]float64, k)
	)
	for i := range parts {
		if parts[i].err != nil {
			return Result{}, parts[i].err
		}
		sum.Merge(parts[i].sum)
		compSender += parts[i].compSender
		deanon += parts[i].deanon
		identified += parts[i].identified
		roundsSum += parts[i].roundsSum
		for r, s := range parts[i].entropySums {
			hRounds[r] += s
		}
	}
	for r := range hRounds {
		hRounds[r] /= float64(sessions)
	}
	maxH := timelineMaxH(phases)
	res := Result{
		H:                      sum.Mean(),
		StdErr:                 sum.StdErr(),
		CI95:                   sum.CI95(),
		Estimated:              true,
		Trials:                 sessions,
		MaxH:                   maxH,
		Normalized:             sum.Mean() / maxH,
		CompromisedSenderShare: float64(compSender) / float64(sessions),
		Deanonymized:           deanon,
		HRounds:                hRounds,
		Epochs:                 epochResults(phases, sessions, hRounds),
	}
	if conf > 0 {
		res.IdentifiedShare = float64(identified) / float64(sessions)
		if identified > 0 {
			res.MeanRoundsToIdentify = float64(roundsSum) / float64(identified)
		}
	}
	return res, nil
}
