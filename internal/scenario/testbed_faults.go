package scenario

// Fault-injected testbed execution. The kernel does the dropping,
// retransmitting, and crash handling (simnet with a faults.Plan wired into
// its config); this file owns the driver and the analysis on top:
//
//   - PolicyReroute's wave loop: settle, drain the kernel's failure
//     handoffs (TakeFailed), re-inject each failed message from its
//     original sender over a freshly drawn path, and repeat until
//     everything delivered or the attempt budget is spent.
//   - The two-faced measurement: H over delivered messages (the quantity
//     the exact backend computes via the effective-delivery length
//     distribution) next to the retry-degraded HDegraded, which folds the
//     evidence every retransmission and failed attempt leaked to
//     compromised observers — partial traces analyzed under the
//     uncompromised-receiver model, since a failed attempt never produced
//     a receiver report.

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"
	"time"

	"anonmix/internal/adversary"
	"anonmix/internal/entropy"
	"anonmix/internal/events"
	"anonmix/internal/faults"
	"anonmix/internal/onion"
	"anonmix/internal/pathsel"
	"anonmix/internal/scenario/capability"
	"anonmix/internal/simnet"
	"anonmix/internal/stats"
	"anonmix/internal/trace"
)

// faultNetConfig applies the scenario's fault plan to a kernel config.
// The plan's jitter adds to the workload's hop delay; everything else maps
// field for field.
func faultNetConfig(nwCfg *simnet.Config, cfg *Config) {
	if cfg.Faults == nil {
		return
	}
	nwCfg.LinkLoss = cfg.Faults.LinkLoss
	nwCfg.Crashes = cfg.Faults.Crashes
	nwCfg.Policy = cfg.Reliability.Policy
	nwCfg.MaxAttempts = cfg.Reliability.MaxAttempts
	nwCfg.RetryBackoff = cfg.Reliability.RetryBackoff
	nwCfg.MaxHopDelay += cfg.Faults.Jitter
}

// checkUnexpectedDrops fails the run on drop causes fault injection does
// not explain: loss and crash drops are the configured fault process, but
// a bad hop, a forwarder error, or an absent node is a real defect that
// must not hide behind the loss statistics.
func checkUnexpectedDrops(nw *simnet.Network) error {
	ds := nw.DropStats()
	// Sweep causes in sorted order so the same defect always surfaces
	// the same error, whatever the map iteration order.
	causes := make([]string, 0, len(ds.ByCause))
	for cause := range ds.ByCause {
		causes = append(causes, cause)
	}
	sort.Strings(causes)
	for _, cause := range causes {
		if n := ds.ByCause[cause]; n > 0 && cause != simnet.DropLoss && cause != simnet.DropCrash {
			return fmt.Errorf("scenario: testbed dropped %d packets with unexpected cause %q (samples: %v)",
				n, cause, ds.Samples)
		}
	}
	return nil
}

// sortedRetryObservations groups the kernel's retransmission observations
// by message, ordered by (time, observer) within each — a deterministic
// fold order under any shard interleaving.
func sortedRetryObservations(nw *simnet.Network) map[trace.MessageID][]trace.Tuple {
	obs := nw.RetryObservations()
	sort.Slice(obs, func(i, j int) bool {
		a, b := obs[i], obs[j]
		if a.Msg != b.Msg {
			return a.Msg < b.Msg
		}
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		return a.Observer < b.Observer
	})
	out := make(map[trace.MessageID][]trace.Tuple)
	for _, t := range obs {
		out[t.Msg] = append(out[t.Msg], t)
	}
	return out
}

// truncateAtObserver returns the prefix of a delivered trace up to and
// including the named observer's report, with the receiver's report
// removed — the evidence state a retransmission at that observer leaked.
// Nil when the observer never reported (it should have: retry
// observations only come from compromised nodes that processed the
// packet).
func truncateAtObserver(mt *trace.MessageTrace, obs trace.NodeID) *trace.MessageTrace {
	for i, r := range mt.Reports {
		if r.Observer == obs {
			return &trace.MessageTrace{
				Msg:     mt.Msg,
				Reports: append([]trace.Tuple(nil), mt.Reports[:i+1]...),
			}
		}
	}
	return nil
}

// foldDegraded accumulates one delivered message's retry-degraded
// posterior into the caller's reusable accumulator (reset here): the full
// delivered trace through the accumulator's own analyst, then every
// leaked partial trace through the uncompromised-receiver analyst.
// Partials the model cannot classify (e.g. a lossy link whose target is
// itself compromised, breaking the witnessed-set arithmetic) are skipped —
// the conservative adversary discards what it cannot fit.
func foldDegraded(acc *adversary.Accumulator, analystU *adversary.Analyst,
	mt *trace.MessageTrace, partials []*trace.MessageTrace,
	sc *adversary.Scratch) (float64, error) {
	acc.Reset()
	if err := acc.ObserveScratch(mt, sc); err != nil {
		return 0, err
	}
	for _, pmt := range partials {
		if pmt == nil {
			continue
		}
		if err := acc.FoldObservation(analystU, pmt, sc); err != nil {
			continue
		}
	}
	h, _, _, err := acc.SnapshotFast()
	return h, err
}

// runRoutedFaulty executes a fault-injected single-shot scenario on the
// routed substrates (plain, onion, mix).
func runRoutedFaulty(cfg Config) (Result, error) {
	engine, err := Engine(cfg.N, len(cfg.Adversary.Compromised), engineOptions(cfg)...)
	if err != nil {
		return Result{}, err
	}
	if engine.Mode() != events.InferenceStandard {
		return Result{}, capability.Unsupported(string(BackendTestbed),
			capability.ErrInference, engine.Mode().String())
	}
	if !engine.SenderSelfReport() {
		return Result{}, capability.Unsupported(string(BackendTestbed),
			capability.ErrInference, "no-sender-self-report ablation is exact-only")
	}
	analyst, err := adversary.NewAnalyst(engine, cfg.Strategy.Length, cfg.Adversary.Compromised)
	if err != nil {
		return Result{}, err
	}
	uOpts := append(engineOptions(cfg), events.WithUncompromisedReceiver())
	engineU, err := Engine(cfg.N, len(cfg.Adversary.Compromised), uOpts...)
	if err != nil {
		return Result{}, err
	}
	analystU, err := adversary.NewAnalyst(engineU, cfg.Strategy.Length, cfg.Adversary.Compromised)
	if err != nil {
		return Result{}, err
	}
	sel, err := pathsel.NewSelector(cfg.N, cfg.Strategy)
	if err != nil {
		return Result{}, err
	}

	nwCfg := simnet.Config{
		N:           cfg.N,
		Compromised: cfg.Adversary.Compromised,
		Seed:        cfg.Workload.Seed,
		MaxHopDelay: cfg.Workload.MaxHopDelay,
	}
	faultNetConfig(&nwCfg, &cfg)
	var ring *onion.KeyRing
	if cfg.Protocol == ProtocolOnion {
		var secret [8]byte
		binary.LittleEndian.PutUint64(secret[:], uint64(cfg.Workload.Seed)+0x517cc1b727220a95)
		if ring, err = onion.NewKeyRing(secret[:], cfg.N); err != nil {
			return Result{}, err
		}
		fwd, err := onion.NewForwarder(ring)
		if err != nil {
			return Result{}, err
		}
		nwCfg.Forwarder = fwd
	}
	if cfg.Protocol == ProtocolMix {
		nwCfg.BatchThreshold = cfg.Workload.BatchThreshold
		if nwCfg.BatchThreshold < 2 {
			nwCfg.BatchThreshold = defaultMixBatch
		}
		nwCfg.Shards = 1 // bit-reproducible batch composition (see runRouted)
	}
	baseGoroutines := runtime.NumGoroutine()
	nw, err := simnet.New(nwCfg)
	if err != nil {
		return Result{}, err
	}
	nw.Start()
	defer nw.Close()

	inject := func(sender trace.NodeID, path []trace.NodeID) (trace.MessageID, error) {
		if cfg.Protocol == ProtocolOnion && len(path) > 0 {
			blob, err := onion.Build(ring, path, nil, cryptorand.Reader)
			if err != nil {
				return 0, err
			}
			return nw.Inject(sender, path[0], simnet.Packet{Onion: blob})
		}
		return nw.SendRoute(sender, path, nil)
	}

	sessions := cfg.Workload.Messages
	start := time.Now() //anonlint:allow detrand(wall-clock metrics only, never flows into Result)
	// One counter-based stream per session, so a reroute wave's redraws
	// come from the failed session's own stream — deterministic regardless
	// of which sessions fail or in what order the waves return them. The
	// sampler's path buffer is reused: SendRoute copies the route and
	// onion.Build consumes it synchronously.
	sp, err := sel.NewSampler()
	if err != nil {
		return Result{}, err
	}
	var (
		senders  = make([]trace.NodeID, sessions)
		strs     = make([]stats.Stream, sessions)
		lastID   = make([]trace.MessageID, sessions)
		attempts = make([]int, sessions)
		failed   = make([][]trace.MessageID, sessions)
		originOf = make(map[trace.MessageID]int, sessions)
	)
	for s := 0; s < sessions; s++ {
		if s%sessionBatchSize == 0 {
			if err := cfg.checkCanceled(); err != nil {
				return Result{}, err
			}
		}
		strs[s] = stats.NewStream(cfg.Workload.Seed, int64(s))
		sender := cfg.Workload.Sender
		if !cfg.Workload.FixedSender {
			sender = trace.NodeID(strs[s].Intn(cfg.N))
		}
		path, err := sp.SelectPath(&strs[s], sender)
		if err != nil {
			return Result{}, err
		}
		id, err := inject(sender, path)
		if err != nil {
			return Result{}, err
		}
		senders[s], lastID[s], attempts[s] = sender, id, 1
		originOf[id] = s
	}
	goroutines := max(runtime.NumGoroutine()-baseGoroutines, 0)
	if err := nw.Settle(settleTimeout); err != nil {
		return Result{}, err
	}

	if cfg.Reliability.Policy == faults.PolicyReroute {
		// Rerouting waves: each failed message retries end to end from its
		// original sender over a fresh path drawn from the live selector.
		// TakeFailed returns message-sorted batches, so the wave's path
		// draws — and with them the whole run — are deterministic under any
		// shard interleaving.
		for {
			// One checkpoint per rerouting wave.
			if err := cfg.checkCanceled(); err != nil {
				return Result{}, err
			}
			reinjected := false
			for _, f := range nw.TakeFailed() {
				s, ok := originOf[f.Msg]
				if !ok {
					return Result{}, fmt.Errorf("scenario: kernel handed back unknown message %d", f.Msg)
				}
				failed[s] = append(failed[s], f.Msg)
				if attempts[s] >= cfg.Reliability.MaxAttempts {
					continue // budget spent: the message stays undelivered
				}
				path, err := sp.SelectPath(&strs[s], senders[s])
				if err != nil {
					return Result{}, err
				}
				id, err := inject(senders[s], path)
				if err != nil {
					return Result{}, err
				}
				attempts[s]++
				lastID[s] = id
				originOf[id] = s
				reinjected = true
			}
			if !reinjected {
				break
			}
			if err := nw.Settle(settleTimeout); err != nil {
				return Result{}, err
			}
		}
	}
	elapsed := time.Since(start)
	if err := checkUnexpectedDrops(nw); err != nil {
		return Result{}, err
	}

	deliveredSet := make(map[trace.MessageID]bool)
	for _, d := range nw.Deliveries() {
		deliveredSet[d.Msg] = true
	}
	traces := trace.Collate(nw.Tuples())
	retryByMsg := sortedRetryObservations(nw)

	acc, err := adversary.NewAccumulator(analyst)
	if err != nil {
		return Result{}, err
	}
	var (
		sum, sumDeg stats.Summary
		comp        int
		deanon      int
		sc          adversary.Scratch
		partials    []*trace.MessageTrace
	)
	for s := 0; s < sessions; s++ {
		id := lastID[s]
		if !deliveredSet[id] {
			continue // undelivered: no receiver-side event, excluded from H
		}
		sender := senders[s]
		if analyst.Compromised(sender) {
			sum.Add(0)
			sumDeg.Add(0)
			comp++
			deanon++
			continue
		}
		mt := traces[id]
		if mt == nil {
			return Result{}, fmt.Errorf("scenario: message %d has no trace", id)
		}
		h, err := analyst.EntropyScratch(mt, &sc)
		if err != nil {
			return Result{}, fmt.Errorf("scenario: message %d: %w", id, err)
		}
		if h < 1e-9 {
			deanon++
		}
		sum.Add(h)
		partials = partials[:0]
		for _, fid := range failed[s] {
			pmt := traces[fid]
			if pmt == nil {
				// The attempt was lost on the first link: no compromised
				// node processed it, and the adversary holds an empty trace.
				pmt = &trace.MessageTrace{Msg: fid}
			}
			partials = append(partials, pmt)
		}
		for _, rt := range retryByMsg[id] {
			partials = append(partials, truncateAtObserver(mt, rt.Observer))
		}
		if len(partials) == 0 {
			sumDeg.Add(h)
			continue
		}
		hd, err := foldDegraded(acc, analystU, mt, partials, &sc)
		if err != nil {
			return Result{}, fmt.Errorf("scenario: message %d degraded fold: %w", id, err)
		}
		sumDeg.Add(hd)
	}

	res := Result{
		Estimated:    true,
		Trials:       sum.N(),
		Deanonymized: deanon,
		MaxH:         entropy.Max(cfg.N),
		DeliveryRate: float64(sum.N()) / float64(sessions),
		MeanAttempts: meanAttempts(cfg, nw, attempts, sessions),
		Kernel:       kernelStats(nw, goroutines, elapsed),
	}
	if sum.N() > 0 {
		res.H = sum.Mean()
		res.StdErr = sum.StdErr()
		res.CI95 = sum.CI95()
		res.HDegraded = sumDeg.Mean()
		res.CompromisedSenderShare = float64(comp) / float64(sum.N())
	}
	res.Normalized = entropy.Normalized(res.H, cfg.N)
	return res, nil
}

// faultAnalysis carries the kernel-side fault evidence a timeline
// analysis needs: which messages delivered, which retransmissions leaked
// to compromised observers, and the per-phase uncompromised-receiver
// analysts the degraded folds run through. Timeline faults are restricted
// to PolicyNone and PolicyRetransmit (normalizeFaults rejects reroute +
// timeline: a rerouting wave could straddle a phase boundary).
type faultAnalysis struct {
	delivered map[trace.MessageID]bool
	retries   map[trace.MessageID][]trace.Tuple
	analystsU []*adversary.Analyst
	retryN    uint64
}

// meanAttempts converts the kernel's retransmission count into the
// per-message attempt statistic (1 under PolicyNone, where retryN is 0).
func (fa *faultAnalysis) meanAttempts(injected int) float64 {
	if injected == 0 {
		return 1
	}
	return 1 + float64(fa.retryN)/float64(injected)
}

// newTimelineFaultAnalysis snapshots a settled network's fault evidence
// and builds the per-phase uncompromised-receiver analysts.
func newTimelineFaultAnalysis(cfg Config, nw *simnet.Network) (*faultAnalysis, error) {
	fa := &faultAnalysis{
		delivered: make(map[trace.MessageID]bool),
		retries:   sortedRetryObservations(nw),
		analystsU: make([]*adversary.Analyst, len(cfg.phases)),
		retryN:    nw.Metrics().Retries,
	}
	for _, d := range nw.Deliveries() {
		fa.delivered[d.Msg] = true
	}
	for i := range cfg.phases {
		p := &cfg.phases[i]
		uOpts := append(engineOptions(cfg), events.WithUncompromisedReceiver())
		e, err := Engine(p.n(), p.c(), uOpts...)
		if err != nil {
			return nil, err
		}
		if fa.analystsU[i], err = adversary.NewAnalyst(e, cfg.Strategy.Length, p.denseComp); err != nil {
			return nil, err
		}
	}
	return fa, nil
}

// meanAttempts derives the per-message attempt statistic of a faulted
// run: retransmit counts extra link transmissions, reroute counts
// end-to-end path attempts, PolicyNone always takes exactly one.
func meanAttempts(cfg Config, nw *simnet.Network, attempts []int, injected int) float64 {
	switch cfg.Reliability.Policy {
	case faults.PolicyRetransmit:
		return 1 + float64(nw.Metrics().Retries)/float64(injected)
	case faults.PolicyReroute:
		var total int
		for _, a := range attempts {
			total += a
		}
		return float64(total) / float64(injected)
	default:
		return 1
	}
}
