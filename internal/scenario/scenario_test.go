package scenario_test

import (
	"errors"
	"math"
	"testing"

	"anonmix/internal/core"
	"anonmix/internal/montecarlo"
	"anonmix/internal/scenario"
	"anonmix/internal/scenario/capability"
	"anonmix/internal/trace"
)

// TestCrossBackendAgreement is the property the scenario layer exists to
// guarantee: the same scenario produces the same anonymity degree on every
// backend that can execute it — exact == Monte-Carlo (within CI) ==
// testbed-empirical (within CI) — across strategies and both receiver
// modes.
func TestCrossBackendAgreement(t *testing.T) {
	const n = 14
	adversaries := []struct {
		name string
		adv  scenario.Adversary
	}{
		{"receiver-compromised", scenario.Adversary{Compromised: []trace.NodeID{2, 7, 11}}},
		{"receiver-uncompromised", scenario.Adversary{Compromised: []trace.NodeID{2, 7, 11}, UncompromisedReceiver: true}},
	}
	specs := []string{"fixed:3", "uniform:0,6", "pipenet", "remailer:2"}

	for _, adv := range adversaries {
		for _, spec := range specs {
			t.Run(adv.name+"/"+spec, func(t *testing.T) {
				base := scenario.Config{
					N:            n,
					StrategySpec: spec,
					Adversary:    adv.adv,
				}

				exactCfg := base
				exactCfg.Backend = scenario.BackendExact
				exact, err := scenario.Run(exactCfg)
				if err != nil {
					t.Fatal(err)
				}
				if exact.Estimated || exact.CI95 != 0 {
					t.Errorf("exact result carries sampling error: %+v", exact)
				}

				mcCfg := base
				mcCfg.Backend = scenario.BackendMonteCarlo
				mcCfg.Workload = scenario.Workload{Messages: 30000, Seed: 7, Workers: 4}
				mc, err := scenario.Run(mcCfg)
				if err != nil {
					t.Fatal(err)
				}
				if !mc.Estimated || mc.Trials != 30000 {
					t.Errorf("mc result: %+v", mc)
				}
				if d := math.Abs(mc.H - exact.H); d > 4*mc.StdErr+1e-3 {
					t.Errorf("MC H = %v ± %v, exact H = %v (Δ=%v)", mc.H, mc.StdErr, exact.H, d)
				}

				tbCfg := base
				tbCfg.Backend = scenario.BackendTestbed
				tbCfg.Workload = scenario.Workload{Messages: 4000, Seed: 11}
				tb, err := scenario.Run(tbCfg)
				if err != nil {
					t.Fatal(err)
				}
				if !tb.Estimated || tb.Kernel == nil || tb.Kernel.Events == 0 {
					t.Errorf("testbed result lacks kernel stats: %+v", tb)
				}
				if d := math.Abs(tb.H - exact.H); d > 4*tb.StdErr+1e-3 {
					t.Errorf("testbed H = %v ± %v, exact H = %v (Δ=%v)", tb.H, tb.StdErr, exact.H, d)
				}
			})
		}
	}
}

// TestProtocolSubstratesAgree: onion layering and threshold-mix batching
// change the wire format and the timing, not the observable structure — so
// the measured anonymity degree must still match the exact engine.
func TestProtocolSubstratesAgree(t *testing.T) {
	base := scenario.Config{
		N:            16,
		StrategySpec: "uniform:1,5",
		Adversary:    scenario.Adversary{Count: 3},
	}
	exactCfg := base
	exactCfg.Backend = scenario.BackendExact
	exact, err := scenario.Run(exactCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, proto := range []scenario.Protocol{scenario.ProtocolOnion, scenario.ProtocolMix} {
		t.Run(proto.String(), func(t *testing.T) {
			cfg := base
			cfg.Backend = scenario.BackendTestbed
			cfg.Protocol = proto
			cfg.Workload = scenario.Workload{Messages: 3000, Seed: 5}
			res, err := scenario.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if d := math.Abs(res.H - exact.H); d > 4*res.StdErr+1e-3 {
				t.Errorf("%s H = %v ± %v, exact H = %v", proto, res.H, res.StdErr, exact.H)
			}
			if proto == scenario.ProtocolMix && res.Kernel.BatchFlushes == 0 {
				t.Error("mix protocol ran without batch flushes")
			}
		})
	}
}

// TestCrowdsSubstrate: a cyclic-route spec on the testbed is promoted to
// the Crowds substrate and reports the Reiter–Rubin predecessor
// statistics.
func TestCrowdsSubstrate(t *testing.T) {
	res, err := scenario.Run(scenario.Config{
		N:            20,
		Backend:      scenario.BackendTestbed,
		StrategySpec: "crowds:0.7",
		Adversary:    scenario.Adversary{Count: 2},
		Workload:     scenario.Workload{Messages: 4000, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	cr := res.Crowds
	if cr == nil {
		t.Fatal("no crowds report")
	}
	if cr.Pf != 0.7 {
		t.Errorf("pf = %v (not recovered from the geometric strategy)", cr.Pf)
	}
	if cr.Observed == 0 {
		t.Fatal("no observed paths")
	}
	emp := float64(cr.Hits) / float64(cr.Observed)
	if math.Abs(emp-cr.PredecessorProb) > 0.05 {
		t.Errorf("empirical predecessor rate %v, closed form %v", emp, cr.PredecessorProb)
	}
}

// TestCapabilityErrors: every backend refuses what it cannot run with the
// one shared capability error, matchable through all three legacy
// vocabularies.
func TestCapabilityErrors(t *testing.T) {
	cyclic := scenario.Config{
		N:            12,
		StrategySpec: "crowds:0.7",
		Adversary:    scenario.Adversary{Count: 1},
		Workload:     scenario.Workload{Messages: 100, Seed: 1},
	}
	for _, backend := range []scenario.BackendKind{scenario.BackendExact, scenario.BackendMonteCarlo} {
		cfg := cyclic
		cfg.Backend = backend
		// On ProtocolPlain a cyclic strategy is promoted to the Crowds
		// substrate; pin the onion protocol so the analytic backends see
		// the cyclic strategy itself.
		cfg.Protocol = scenario.ProtocolOnion
		_, err := scenario.Run(cfg)
		if err == nil {
			t.Fatalf("%s accepted a cyclic strategy", backend)
		}
		for name, sentinel := range map[string]error{
			"capability.ErrComplicatedPaths": capability.ErrComplicatedPaths,
			"core.ErrComplicated":            core.ErrComplicated,
			"montecarlo.ErrComplicatedPaths": montecarlo.ErrComplicatedPaths,
		} {
			if !errors.Is(err, sentinel) {
				t.Errorf("%s: err %v does not match %s", backend, err, name)
			}
		}
		wantLabel := map[scenario.BackendKind]string{
			scenario.BackendExact:      "exact",
			scenario.BackendMonteCarlo: "montecarlo", // the estimator labels itself
		}[backend]
		var capErr *capability.Error
		if !errors.As(err, &capErr) {
			t.Errorf("%s: err %v is not a *capability.Error", backend, err)
		} else if capErr.Backend != wantLabel {
			t.Errorf("refusing backend = %q, want %q", capErr.Backend, wantLabel)
		}
	}

	// Analytic backends refuse wire protocols with their own routing.
	cfg := scenario.Config{
		N:            12,
		Backend:      scenario.BackendExact,
		StrategySpec: "fixed:3",
		Protocol:     scenario.ProtocolMix,
		Adversary:    scenario.Adversary{Count: 1},
	}
	if _, err := scenario.Run(cfg); !errors.Is(err, capability.ErrProtocol) {
		t.Errorf("exact×mix err = %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := scenario.Run(scenario.Config{N: 1}); !errors.Is(err, scenario.ErrBadConfig) {
		t.Errorf("n=1 err = %v", err)
	}
	if _, err := scenario.Run(scenario.Config{N: 10}); !errors.Is(err, scenario.ErrBadConfig) {
		t.Errorf("missing strategy err = %v", err)
	}
	if _, err := scenario.Run(scenario.Config{
		N: 10, StrategySpec: "fixed:3", Backend: "quantum",
	}); !errors.Is(err, scenario.ErrUnknownBackend) {
		t.Errorf("unknown backend err = %v", err)
	}
	if _, err := scenario.Run(scenario.Config{
		N: 10, StrategySpec: "fixed:3",
		Adversary: scenario.Adversary{Compromised: []trace.NodeID{3, 3}},
	}); !errors.Is(err, scenario.ErrBadConfig) {
		t.Errorf("duplicate compromised err = %v", err)
	}
	if _, err := scenario.Run(scenario.Config{N: 10, StrategySpec: "warp:9"}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

// TestNormalizeValidation pins the scenario layer's input checks: every
// malformed field must be rejected up front with ErrBadConfig, uniformly
// across backends, instead of leaking backend-internal errors.
func TestNormalizeValidation(t *testing.T) {
	valid := scenario.Config{
		N:            12,
		StrategySpec: "fixed:3",
		Adversary:    scenario.Adversary{Count: 2},
		Workload:     scenario.Workload{Messages: 10, Seed: 1},
	}
	cases := []struct {
		name string
		mut  func(*scenario.Config)
	}{
		{"crowds pf above one", func(c *scenario.Config) { c.CrowdsPf = 1.5 }},
		{"crowds pf exactly one", func(c *scenario.Config) { c.CrowdsPf = 1 }},
		{"crowds pf negative", func(c *scenario.Config) { c.CrowdsPf = -0.2 }},
		{"crowds pf NaN", func(c *scenario.Config) { c.CrowdsPf = math.NaN() }},
		{"crowds pf 1.5 on crowds substrate", func(c *scenario.Config) {
			c.Backend = scenario.BackendTestbed
			c.Protocol = scenario.ProtocolCrowds
			c.CrowdsPf = 1.5
		}},
		{"mc zero messages", func(c *scenario.Config) {
			c.Backend = scenario.BackendMonteCarlo
			c.Workload.Messages = 0
		}},
		{"testbed zero messages", func(c *scenario.Config) {
			c.Backend = scenario.BackendTestbed
			c.Workload.Messages = 0
		}},
		{"mc negative messages", func(c *scenario.Config) {
			c.Backend = scenario.BackendMonteCarlo
			c.Workload.Messages = -5
		}},
		{"exact rounds without messages", func(c *scenario.Config) {
			c.Workload.Rounds = 4
			c.Workload.Messages = 0
		}},
		{"negative rounds", func(c *scenario.Config) { c.Workload.Rounds = -1 }},
		{"confidence one", func(c *scenario.Config) { c.Workload.Confidence = 1 }},
		{"confidence negative", func(c *scenario.Config) { c.Workload.Confidence = -0.1 }},
		{"fixed sender out of range", func(c *scenario.Config) {
			c.Workload.FixedSender = true
			c.Workload.Sender = 12
		}},
		{"fixed sender compromised", func(c *scenario.Config) {
			c.Workload.FixedSender = true
			c.Workload.Sender = 1
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid
			tc.mut(&cfg)
			if _, err := scenario.Run(cfg); !errors.Is(err, scenario.ErrBadConfig) {
				t.Errorf("err = %v, want ErrBadConfig", err)
			}
		})
	}
	// A legal explicit pf passes, and the exact backend still does not
	// need a message budget for single-shot runs.
	ok := valid
	ok.Workload.Messages = 0
	if _, err := scenario.Run(ok); err != nil {
		t.Errorf("exact single-shot without messages: %v", err)
	}
	crowdsOK := valid
	crowdsOK.Backend = scenario.BackendTestbed
	crowdsOK.Protocol = scenario.ProtocolCrowds
	crowdsOK.CrowdsPf = 0.7
	crowdsOK.Workload.Messages = 200
	if _, err := scenario.Run(crowdsOK); err != nil {
		t.Errorf("pf=0.7 rejected: %v", err)
	}
}

// TestConfigNotAliased is the defensive-copy regression test: running the
// same Config value on two backends must not let either mutate the
// caller's Compromised slice (normalize hands backends a copy), and the
// config must keep producing identical results across reuse.
func TestConfigNotAliased(t *testing.T) {
	compromised := []trace.NodeID{11, 2, 7} // deliberately unsorted
	cfg := scenario.Config{
		N:            14,
		StrategySpec: "uniform:0,6",
		Adversary:    scenario.Adversary{Compromised: compromised},
		Workload:     scenario.Workload{Messages: 800, Seed: 3, Workers: 2},
	}
	cfg.Backend = scenario.BackendExact
	first, err := scenario.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range []scenario.BackendKind{scenario.BackendTestbed, scenario.BackendMonteCarlo} {
		cfg.Backend = backend
		if _, err := scenario.Run(cfg); err != nil {
			t.Fatal(err)
		}
	}
	want := []trace.NodeID{11, 2, 7}
	for i, id := range compromised {
		if id != want[i] {
			t.Fatalf("caller's Compromised slice mutated: %v", compromised)
		}
	}
	cfg.Backend = scenario.BackendExact
	again, err := scenario.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.H != first.H {
		t.Errorf("config reuse changed the result: %v vs %v", again.H, first.H)
	}
}

func TestParseHelpers(t *testing.T) {
	for in, want := range map[string]scenario.BackendKind{
		"exact": scenario.BackendExact, "": scenario.BackendExact,
		"mc": scenario.BackendMonteCarlo, "montecarlo": scenario.BackendMonteCarlo,
		"testbed": scenario.BackendTestbed, "SIM": scenario.BackendTestbed,
	} {
		got, err := scenario.ParseBackend(in)
		if err != nil || got != want {
			t.Errorf("ParseBackend(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := scenario.ParseBackend("nope"); err == nil {
		t.Error("bad backend accepted")
	}
	for in, want := range map[string]scenario.Protocol{
		"plain": scenario.ProtocolPlain, "onion": scenario.ProtocolOnion,
		"crowds": scenario.ProtocolCrowds, "mix": scenario.ProtocolMix,
	} {
		got, err := scenario.ParseProtocol(in)
		if err != nil || got != want {
			t.Errorf("ParseProtocol(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := scenario.ParseProtocol("pigeon"); err == nil {
		t.Error("bad protocol accepted")
	}
	kinds := scenario.Backends()
	if len(kinds) != 3 {
		t.Errorf("backends = %v", kinds)
	}
}

// TestEngineShared: the process-wide engine cache returns the same engine
// for the same configuration and distinct engines for distinct ones.
func TestEngineShared(t *testing.T) {
	e1, err := scenario.Engine(33, 2)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := scenario.Engine(33, 2)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Error("same configuration produced distinct engines")
	}
	e3, err := scenario.Engine(33, 3)
	if err != nil {
		t.Fatal(err)
	}
	if e3 == e1 {
		t.Error("distinct configurations share an engine")
	}
}

// TestNoSelfReportIsExactOnly: the sampling backends hardcode the
// local-eavesdropper branch, so the no-self-report ablation must be
// refused with a capability error rather than silently biasing H.
func TestNoSelfReportIsExactOnly(t *testing.T) {
	base := scenario.Config{
		N:            12,
		StrategySpec: "fixed:3",
		Adversary:    scenario.Adversary{Count: 2, NoSenderSelfReport: true},
		Workload:     scenario.Workload{Messages: 100, Seed: 1},
	}
	exactCfg := base
	exactCfg.Backend = scenario.BackendExact
	if _, err := scenario.Run(exactCfg); err != nil {
		t.Errorf("exact backend refused the ablation: %v", err)
	}
	for _, kind := range []scenario.BackendKind{scenario.BackendMonteCarlo, scenario.BackendTestbed} {
		cfg := base
		cfg.Backend = kind
		if _, err := scenario.Run(cfg); !errors.Is(err, capability.ErrInference) {
			t.Errorf("%s: err = %v, want capability.ErrInference", kind, err)
		}
	}
}
