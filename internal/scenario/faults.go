package scenario

// The reliability dimension: fault injection and delivery policies as a
// first-class scenario axis. This file owns what the backends share — the
// uniform ErrBadConfig validation of Config.Faults/Config.Reliability and
// the virtual-time span arithmetic that sizes phase windows and bounds
// crash schedules — so that "the same faulted scenario on every backend"
// keeps meaning the same loss process and the same outage windows
// everywhere. Execution differs by backend: the exact engine folds
// PolicyNone loss into the effective-delivery length distribution, the
// Monte-Carlo estimator samples the loss process per trial, and the
// testbed injects the faults into the discrete-event kernel.

import (
	"fmt"

	"anonmix/internal/faults"
)

// normalizeFaults validates the fault plan against the normalized
// scenario and fills the reliability defaults. Called after
// normalizeTimeline (it needs the materialized traffic budgets and the
// union identity space). Every rejection is ErrBadConfig, uniform across
// backends — a faulted config either runs everywhere the capabilities
// allow or fails identically everywhere.
func normalizeFaults(cfg *Config) error {
	if cfg.Faults == nil {
		if cfg.Reliability != (faults.Reliability{}) {
			return fmt.Errorf("%w: reliability policy set without a fault plan (set Config.Faults)", ErrBadConfig)
		}
		return nil
	}
	// Node identities must exist somewhere in the run: the union space for
	// timelines, the static population otherwise.
	if err := cfg.Faults.Validate(unionSize(cfg.N, cfg.Timeline)); err != nil {
		return fmt.Errorf("%w: %w", ErrBadConfig, err)
	}
	r := &cfg.Reliability
	if r.Policy > faults.PolicyReroute {
		return fmt.Errorf("%w: reliability policy %v", ErrBadConfig, r.Policy)
	}
	if r.MaxAttempts < 0 {
		return fmt.Errorf("%w: MaxAttempts %d", ErrBadConfig, r.MaxAttempts)
	}
	if r.MaxAttempts == 0 {
		r.MaxAttempts = faults.DefaultMaxAttempts
	}
	if r.RetryBackoff < 0 {
		return fmt.Errorf("%w: RetryBackoff %v", ErrBadConfig, r.RetryBackoff)
	}
	if r.RetryBackoff == 0 {
		r.RetryBackoff = faults.DefaultRetryBackoff
	}
	if cfg.Protocol == ProtocolCrowds {
		return fmt.Errorf("%w: fault injection is not defined for the crowds substrate (its predecessor statistics assume lossless forwarding)", ErrBadConfig)
	}
	if cfg.Workload.degradation() {
		return fmt.Errorf("%w: fault injection is single-shot (Rounds > 1 and Confidence tracking do not compose with delivery analysis)", ErrBadConfig)
	}
	if len(cfg.phases) > 0 {
		if timelineRounds(cfg.phases) {
			return fmt.Errorf("%w: fault injection needs a single-shot (Messages) timeline", ErrBadConfig)
		}
		if r.Policy == faults.PolicyReroute {
			return fmt.Errorf("%w: PolicyReroute does not compose with a timeline (rerouting waves would cross phase windows)", ErrBadConfig)
		}
	}
	// Crash windows must fall inside the run's virtual-time span — a crash
	// scheduled after the last packet retires is a configuration error, not
	// a silent no-op. The span is the same phase-window arithmetic the
	// testbed uses to place its churn boundaries.
	total := virtualSpan(cfg)
	for _, c := range cfg.Faults.Crashes {
		if c.At >= total {
			return fmt.Errorf("%w: crash of node %d at t=%d outside the run's virtual span [0,%d)",
				ErrBadConfig, c.Node, c.At, total)
		}
		if c.Recover > total {
			return fmt.Errorf("%w: recovery of node %d at t=%d outside the run's virtual span [0,%d]",
				ErrBadConfig, c.Node, c.Recover, total)
		}
	}
	return nil
}

// phaseSpan is the virtual-time window wide enough for m messages of this
// scenario: the injection clock advance plus the worst-case per-hop
// latency (the hop tick, the jitter, and — under PolicyRetransmit — the
// full retransmission backoff budget) over the deepest path. It extends
// the lossless formula of runRoutedTimeline so faulted phases still end
// strictly before the next phase's boundary.
func phaseSpan(cfg *Config, m int) uint64 {
	jitter := uint64(cfg.Workload.MaxHopDelay)
	var budget uint64
	if cfg.Faults != nil {
		jitter += uint64(cfg.Faults.Jitter)
		if cfg.Reliability.Policy == faults.PolicyRetransmit {
			budget = faults.BackoffBudget(uint64(cfg.Reliability.RetryBackoff), cfg.Reliability.MaxAttempts)
		}
	}
	_, hi := cfg.Strategy.Length.Support()
	return uint64(m) + uint64(hi+3)*(1+jitter+budget) + 4
}

// virtualSpan is the total virtual-time span of the run: the sum of the
// phase windows for a timeline, one window over the whole workload for
// the static model. Reroute re-injections extend the static window by up
// to MaxAttempts-1 extra waves.
func virtualSpan(cfg *Config) uint64 {
	if len(cfg.phases) > 0 {
		var total uint64
		for i := range cfg.phases {
			total += phaseSpan(cfg, cfg.phases[i].epoch.Messages)
		}
		return total
	}
	m := cfg.Workload.Messages * cfg.Workload.Rounds
	span := phaseSpan(cfg, m)
	if cfg.Faults != nil && cfg.Reliability.Policy == faults.PolicyReroute {
		span *= uint64(cfg.Reliability.MaxAttempts)
	}
	return span
}
