package scenario_test

// Context-cancellation and progress contracts of scenario.Run: a canceled
// context aborts every backend with an error wrapping both ErrCanceled and
// the context's cause, arming a context changes nothing, and Progress
// accounts for the full workload.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"anonmix/internal/scenario"
)

// flakyCtx embeds a background context but reports cancellation from its
// Err method after a fixed number of calls. It deterministically triggers
// checkpoints that poll ctx.Err() inside backend loops (the testbed path),
// past the pre-dispatch check in Run, without any goroutine timing.
type flakyCtx struct {
	context.Context
	after int64
	calls atomic.Int64
}

func (f *flakyCtx) Err() error {
	if f.calls.Add(1) > f.after {
		return context.Canceled
	}
	return nil
}

func assertCanceled(t *testing.T, err error) {
	t.Helper()
	if !errors.Is(err, scenario.ErrCanceled) {
		t.Errorf("error %v does not wrap scenario.ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	if c := scenario.Classify(err); c != scenario.ClassCanceled {
		t.Errorf("Classify(%v) = %v, want ClassCanceled", err, c)
	}
	if code := scenario.ExitCode(err); code != 1 {
		t.Errorf("ExitCode(%v) = %d, want 1", err, code)
	}
}

func TestRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, backend := range []scenario.BackendKind{
		scenario.BackendExact, scenario.BackendMonteCarlo, scenario.BackendTestbed,
	} {
		t.Run(string(backend), func(t *testing.T) {
			_, err := scenario.RunContext(ctx, scenario.Config{
				N:            16,
				Backend:      backend,
				StrategySpec: "uniform:1,5",
				Adversary:    scenario.Adversary{Count: 3},
				Workload:     scenario.Workload{Messages: 500, Seed: 1},
			})
			if err == nil {
				t.Fatal("pre-canceled context returned no error")
			}
			assertCanceled(t, err)
		})
	}
}

// TestRunContextMidRunMC cancels a static Monte-Carlo run from inside its
// own first Progress callback — the only deterministic vantage point that
// is guaranteed to fire while later batches are still unclaimed.
func TestRunContextMidRunMC(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := scenario.RunContext(ctx, scenario.Config{
		N:            16,
		Backend:      scenario.BackendMonteCarlo,
		StrategySpec: "uniform:1,5",
		Adversary:    scenario.Adversary{Count: 3},
		Workload:     scenario.Workload{Messages: 4000, Seed: 1, Workers: 2},
		Progress:     func(scenario.Progress) { cancel() },
	})
	if err == nil {
		t.Fatal("mid-run cancel returned no error")
	}
	assertCanceled(t, err)
}

// TestRunContextExactDegradationCanceled cancels the serial exact-rounds
// reference loop from its first per-granule progress emission; the next
// session-boundary checkpoint must abort the run.
func TestRunContextExactDegradationCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := scenario.RunContext(ctx, scenario.Config{
		N:            16,
		Backend:      scenario.BackendExact,
		StrategySpec: "uniform:1,5",
		Adversary:    scenario.Adversary{Count: 3},
		Workload:     scenario.Workload{Messages: 500, Rounds: 3, Seed: 1},
		Progress:     func(scenario.Progress) { cancel() },
	})
	if err == nil {
		t.Fatal("degradation cancel returned no error")
	}
	assertCanceled(t, err)
}

// TestRunContextTestbedInLoop drives the testbed's in-loop checkpoint: the
// flaky context survives Run's pre-dispatch check (call 1) and reports
// cancellation at the first injection-loop poll (call 2).
func TestRunContextTestbedInLoop(t *testing.T) {
	fc := &flakyCtx{Context: context.Background(), after: 1}
	_, err := scenario.RunContext(fc, scenario.Config{
		N:            16,
		Backend:      scenario.BackendTestbed,
		StrategySpec: "uniform:1,5",
		Adversary:    scenario.Adversary{Count: 3},
		Workload:     scenario.Workload{Messages: 500, Seed: 1},
	})
	if err == nil {
		t.Fatal("in-loop cancel returned no error")
	}
	assertCanceled(t, err)
}

// TestRunContextArmedDeterminism pins that threading a live-but-silent
// context through RunContext yields bit-identical results to a plain Run:
// the cancellation checks sit on batch boundaries, off the trial streams.
func TestRunContextArmedDeterminism(t *testing.T) {
	cfg := scenario.Config{
		N:            16,
		Backend:      scenario.BackendMonteCarlo,
		StrategySpec: "uniform:1,5",
		Adversary:    scenario.Adversary{Count: 3},
		Workload:     scenario.Workload{Messages: 2000, Seed: 5, Workers: 3},
	}
	plain, err := scenario.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	armed, err := scenario.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if armed.H != plain.H || armed.StdErr != plain.StdErr || armed.Trials != plain.Trials { //anonlint:allow floatcmp(bit-identity is the contract under test)
		t.Errorf("armed context changed the result: %+v vs %+v", armed, plain)
	}
}

func TestProgressStaticMC(t *testing.T) {
	const trials = 2000
	var (
		mu  sync.Mutex
		max int
	)
	_, err := scenario.Run(scenario.Config{
		N:            16,
		Backend:      scenario.BackendMonteCarlo,
		StrategySpec: "uniform:1,5",
		Adversary:    scenario.Adversary{Count: 3},
		Workload:     scenario.Workload{Messages: trials, Seed: 2, Workers: 2},
		Progress: func(p scenario.Progress) {
			mu.Lock()
			defer mu.Unlock()
			if p.Total != trials {
				t.Errorf("Progress.Total = %d, want %d", p.Total, trials)
			}
			if p.Done <= 0 || p.Done > p.Total {
				t.Errorf("Progress.Done = %d outside (0, %d]", p.Done, p.Total)
			}
			if p.Done > max {
				max = p.Done
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	// Cumulative counts may arrive out of order across workers, but the
	// maximum must account for the entire trial budget.
	if max != trials {
		t.Errorf("max cumulative progress %d, want %d", max, trials)
	}
}

// TestProgressExactTimeline checks the per-phase epoch emissions of the
// serial exact timeline: one Epoch-carrying callback per phase, in order,
// matching the Epochs of the final result.
func TestProgressExactTimeline(t *testing.T) {
	var epochs []scenario.EpochResult
	res, err := scenario.Run(scenario.Config{
		N:            16,
		Backend:      scenario.BackendExact,
		StrategySpec: "uniform:1,5",
		Adversary:    scenario.Adversary{Count: 3},
		Timeline: []scenario.Epoch{
			{Messages: 100},
			{Join: 4},
			{Messages: 200, Compromise: 2},
		},
		Progress: func(p scenario.Progress) {
			if p.Epoch != nil {
				epochs = append(epochs, *p.Epoch)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != len(res.Epochs) {
		t.Fatalf("got %d epoch emissions, want %d", len(epochs), len(res.Epochs))
	}
	for i, er := range epochs {
		if er != res.Epochs[i] {
			t.Errorf("epoch %d: progress emitted %+v, result has %+v", i, er, res.Epochs[i])
		}
	}
}
