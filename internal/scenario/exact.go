package scenario

// The exact backend: the closed-form counted-bucket engine of package
// events. Single-shot runs have no sampling and no error bars. Multi-round
// (Workload.Rounds > 1) runs keep the inference exact — every per-round
// posterior comes from the engine and rounds are accumulated by exact
// Bayesian log-posterior multiplication (adversary.Accumulator) — but the
// rerouting paths themselves are sampled, serially and deterministically
// from Workload.Seed, so the degradation curve carries a confidence
// interval like any sampled estimate. The backend refuses what the
// simple-path model cannot express.

import (
	"anonmix/internal/adversary"
	"anonmix/internal/entropy"
	"anonmix/internal/events"
	"anonmix/internal/faults"
	"anonmix/internal/montecarlo"
	"anonmix/internal/pathsel"
	"anonmix/internal/scenario/capability"
	"anonmix/internal/stats"
	"anonmix/internal/trace"
)

type exactBackend struct{}

func (exactBackend) Kind() BackendKind { return BackendExact }

func (exactBackend) Run(cfg Config) (Result, error) {
	if !analyticProtocol(cfg.Protocol) {
		return Result{}, capability.Unsupported(string(BackendExact),
			capability.ErrProtocol, cfg.Protocol.String())
	}
	if cfg.Strategy.Kind != pathsel.Simple {
		return Result{}, capability.Unsupported(string(BackendExact),
			capability.ErrComplicatedPaths, cfg.Strategy.Name)
	}
	deliveryRate := 1.0
	if cfg.Faults != nil {
		// The closed forms cover PolicyNone link loss exactly: conditioning
		// on delivery reweights the path-length prior to
		// P'(l) ∝ P(l)·(1−q)^(l+1), and the engine evaluates H under P'.
		// Retry policies and crash schedules leak timing evidence the
		// enumeration does not model — those run on the sampling backends.
		if cfg.Reliability.Policy != faults.PolicyNone {
			return Result{}, capability.Unsupported(string(BackendExact),
				capability.ErrFaults, "retry policies ("+cfg.Reliability.Policy.String()+") are sampled-backend-only; the closed form covers PolicyNone loss")
		}
		if len(cfg.Faults.Crashes) > 0 {
			return Result{}, capability.Unsupported(string(BackendExact),
				capability.ErrFaults, "crash schedules are sampled-backend-only")
		}
		eff, rate, err := faults.EffectiveLength(cfg.Strategy.Length, cfg.Faults.LinkLoss)
		if err != nil {
			return Result{}, err
		}
		if rate == 0 {
			// Total loss: nothing delivers, the adversary sees no completed
			// traffic, and H over delivered messages is vacuously zero.
			return Result{
				H: 0, HDegraded: 0, DeliveryRate: 0, MeanAttempts: 1,
				MaxH: entropy.Max(cfg.N),
			}, nil
		}
		cfg.Strategy.Length = eff
		deliveryRate = rate
	}
	if len(cfg.phases) > 0 {
		return runExactTimeline(cfg, deliveryRate)
	}
	e, err := Engine(cfg.N, len(cfg.Adversary.Compromised), engineOptions(cfg)...)
	if err != nil {
		return Result{}, err
	}
	if cfg.Workload.degradation() {
		return runExactRounds(cfg, e)
	}
	h, err := e.AnonymityDegree(cfg.Strategy.Length)
	if err != nil {
		return Result{}, err
	}
	compShare := float64(len(cfg.Adversary.Compromised)) / float64(cfg.N)
	if cfg.Workload.FixedSender {
		// H*(S) averages over a uniform sender including the C/N
		// local-eavesdropper branch, which contributes zero entropy; the
		// pinned sender is honest (normalize rejects compromised ones), so
		// its expected single-shot entropy is the honest-conditional value.
		// Under the no-self-report ablation the engine already conditions
		// on that branch being absent, so there is nothing to rescale.
		if e.SenderSelfReport() {
			h *= float64(cfg.N) / float64(cfg.N-len(cfg.Adversary.Compromised))
		}
		compShare = 0
	}
	res := Result{
		H:                      h,
		MaxH:                   e.MaxAnonymity(),
		Normalized:             entropy.Normalized(h, cfg.N),
		CompromisedSenderShare: compShare,
	}
	if cfg.Faults != nil {
		// PolicyNone drops on first loss: one attempt per message, and no
		// retry evidence — the degraded degree equals the lossless one.
		res.DeliveryRate = deliveryRate
		res.MeanAttempts = 1
		res.HDegraded = h
	}
	return res, nil
}

// runExactRounds executes the repeated-communication regime on the exact
// engine: Workload.Messages independent sessions, each sending
// Workload.Rounds messages from one sender over freshly drawn simple
// paths, with the adversary accumulating exact per-round posteriors. The
// loop is intentionally serial (Workers ignored) and draws every session
// from its own counter-based stream — the same per-trial streams the
// parallel Monte-Carlo backend consumes — so it is the reference
// implementation that backend is cross-validated against, and its output
// is a pure function of (Seed, Messages, Rounds) alone.
func runExactRounds(cfg Config, e *events.Engine) (Result, error) {
	if e.Mode() != events.InferenceStandard {
		return Result{}, capability.Unsupported(string(BackendExact),
			capability.ErrInference, "multi-round accumulation requires the standard inference mode")
	}
	if !e.SenderSelfReport() {
		// Sessions hardcode the local-eavesdropper branch (a compromised
		// sender is identified at its first message); accumulating under
		// the no-self-report ablation would silently bias H_k low.
		return Result{}, capability.Unsupported(string(BackendExact),
			capability.ErrInference, "no-sender-self-report ablation is single-shot-only")
	}
	analyst, err := adversary.NewAnalyst(e, cfg.Strategy.Length, cfg.Adversary.Compromised)
	if err != nil {
		return Result{}, err
	}
	sel, err := pathsel.NewSelector(cfg.N, cfg.Strategy)
	if err != nil {
		return Result{}, err
	}
	arena, err := montecarlo.NewSessionArena(analyst, sel, cfg.Workload.Rounds)
	if err != nil {
		return Result{}, err
	}
	var (
		rounds   = cfg.Workload.Rounds
		sessions = cfg.Workload.Messages
		hSums    = make([]float64, rounds)
		sum      stats.Summary
		comp     int
		deanon   int
		idCount  int
		idRounds int
		conf     = cfg.Workload.Confidence
	)
	for s := 0; s < sessions; s++ {
		// The serial reference loop checkpoints on the same 64-session
		// granule as the parallel batch loops, so cancellation latency is
		// comparable across backends.
		if s%sessionBatchSize == 0 {
			if err := cfg.checkCanceled(); err != nil {
				return Result{}, err
			}
		}
		rng := stats.NewStream(cfg.Workload.Seed, int64(s))
		sender := cfg.Workload.Sender
		if !cfg.Workload.FixedSender {
			sender = trace.NodeID(rng.Intn(cfg.N))
		}
		if analyst.Compromised(sender) {
			sum.Add(0)
			comp++
			deanon++
			if conf > 0 {
				idCount++
				idRounds++
			}
		} else {
			entropies, identifiedAt, err := arena.Session(&rng, sender, conf)
			if err != nil {
				return Result{}, err
			}
			for r, h := range entropies {
				hSums[r] += h
			}
			final := entropies[rounds-1]
			sum.Add(final)
			if final < 1e-9 {
				deanon++
			}
			if identifiedAt > 0 {
				idCount++
				idRounds += identifiedAt
			}
		}
		if done := s + 1; done == sessions || done%sessionBatchSize == 0 {
			cfg.emitProgress(done, sessions, nil)
		}
	}
	for r := range hSums {
		hSums[r] /= float64(sessions)
	}
	res := Result{
		H:                      sum.Mean(),
		StdErr:                 sum.StdErr(),
		CI95:                   sum.CI95(),
		Estimated:              true,
		Trials:                 sessions,
		MaxH:                   e.MaxAnonymity(),
		Normalized:             entropy.Normalized(sum.Mean(), cfg.N),
		CompromisedSenderShare: float64(comp) / float64(sessions),
		Deanonymized:           deanon,
		HRounds:                hSums,
		IdentifiedShare:        float64(idCount) / float64(sessions),
	}
	if idCount > 0 {
		res.MeanRoundsToIdentify = float64(idRounds) / float64(idCount)
	}
	return res, nil
}

// runExactTimeline executes a dynamic-population scenario on the exact
// engine. A single-shot (Messages) timeline stays fully closed-form: every
// phase's H*(S_e) comes exactly from the shared engine cache and the
// result is the traffic-weighted mixture Σ w_e·H_e. A degradation (Rounds)
// timeline feeds the union-space accumulator across the phase boundaries
// with exact per-round posteriors, serially from one RNG stream — the
// reference the parallel Monte-Carlo timeline is cross-validated against.
func runExactTimeline(cfg Config, deliveryRate float64) (Result, error) {
	if timelineRounds(cfg.phases) {
		return runPhasedRounds(cfg, string(BackendExact), 1)
	}
	weights := timelineWeights(cfg.phases)
	res := Result{MaxH: timelineMaxH(cfg.phases)}
	for i := range cfg.phases {
		p := &cfg.phases[i]
		if err := cfg.checkCanceled(); err != nil {
			return Result{}, err
		}
		if p.epoch.Messages == 0 {
			// A phase without traffic only moves the population: zero
			// weight in the mixture and, like the sampled backends, no
			// per-epoch H (EpochResult.H is defined as the entropy of the
			// phase's analyzed traffic).
			er := EpochResult{Index: i, N: p.n(), C: p.c()}
			res.Epochs = append(res.Epochs, er)
			cfg.emitProgress(i+1, len(cfg.phases), &er)
			continue
		}
		e, err := Engine(p.n(), p.c(), engineOptions(cfg)...)
		if err != nil {
			return Result{}, err
		}
		h, err := e.AnonymityDegree(cfg.Strategy.Length)
		if err != nil {
			return Result{}, err
		}
		compShare := float64(p.c()) / float64(p.n())
		if cfg.Workload.FixedSender {
			// The per-phase honest-conditional rescale of the static model
			// (see Run above); normalizeTimeline guarantees the pinned
			// sender is an honest member of every phase.
			if e.SenderSelfReport() {
				h *= float64(p.n()) / float64(p.n()-p.c())
			}
			compShare = 0
		}
		res.H += weights[i] * h
		res.CompromisedSenderShare += weights[i] * compShare
		er := EpochResult{Index: i, N: p.n(), C: p.c(), Messages: p.epoch.Messages, H: h}
		res.Epochs = append(res.Epochs, er)
		cfg.emitProgress(i+1, len(cfg.phases), &er)
	}
	res.Normalized = res.H / res.MaxH
	if cfg.Faults != nil {
		// The loss rate is population-independent (it depends only on the
		// shared length distribution), so the per-phase delivery rates
		// coincide and the blend is the caller's single rate.
		res.DeliveryRate = deliveryRate
		res.MeanAttempts = 1
		res.HDegraded = res.H
	}
	return res, nil
}

func init() { Register(exactBackend{}) }
