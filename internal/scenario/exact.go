package scenario

// The exact backend: the closed-form counted-bucket engine of package
// events. No sampling, no error bars; refuses what the simple-path model
// cannot express.

import (
	"anonmix/internal/entropy"
	"anonmix/internal/pathsel"
	"anonmix/internal/scenario/capability"
)

type exactBackend struct{}

func (exactBackend) Kind() BackendKind { return BackendExact }

func (exactBackend) Run(cfg Config) (Result, error) {
	if !analyticProtocol(cfg.Protocol) {
		return Result{}, capability.Unsupported(string(BackendExact),
			capability.ErrProtocol, cfg.Protocol.String())
	}
	if cfg.Strategy.Kind != pathsel.Simple {
		return Result{}, capability.Unsupported(string(BackendExact),
			capability.ErrComplicatedPaths, cfg.Strategy.Name)
	}
	e, err := Engine(cfg.N, len(cfg.Adversary.Compromised), engineOptions(cfg)...)
	if err != nil {
		return Result{}, err
	}
	h, err := e.AnonymityDegree(cfg.Strategy.Length)
	if err != nil {
		return Result{}, err
	}
	return Result{
		H:          h,
		MaxH:       e.MaxAnonymity(),
		Normalized: entropy.Normalized(h, cfg.N),
		CompromisedSenderShare: float64(len(cfg.Adversary.Compromised)) /
			float64(cfg.N),
	}, nil
}

func init() { Register(exactBackend{}) }
