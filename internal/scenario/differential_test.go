package scenario_test

// The differential-test harness: a seeded random walk over the full
// scenario space — population, adversary (size, receiver mode, ablations),
// five strategy families, protocol substrates, repeated-communication
// rounds, and dynamic-population timelines — executed on every backend.
// The invariant is the scenario layer's contract: every backend that can
// run a scenario agrees with the others within sampling error, and a
// scenario no backend should accept is rejected by all of them with the
// same configuration-error identity. Failures print a reproducing Config
// literal, so a counterexample becomes a regression test by copy-paste.

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"anonmix/internal/faults"
	"anonmix/internal/pathsel"
	"anonmix/internal/scenario"
	"anonmix/internal/scenario/capability"
	"anonmix/internal/trace"
)

// genConfig draws one scenario from the full configuration space. Sizes
// are kept small so a hundred scenarios across three backends stay cheap;
// a slice of the draws is deliberately out of domain (oversized strategies
// for the shrunken population, exhausted honest members) to exercise the
// error-agreement half of the contract.
func genConfig(rng *rand.Rand, idx int) scenario.Config {
	n := 8 + rng.Intn(13) // 8..20
	cfg := scenario.Config{N: n}

	// Adversary: a fraction of the population, sometimes as an explicit
	// unsorted set, sometimes with the receiver honest, rarely with the
	// self-report ablation (exact-only: the sampled backends must refuse).
	c := rng.Intn(n/3 + 1)
	if rng.Intn(2) == 0 {
		cfg.Adversary.Count = c
	} else {
		perm := rng.Perm(n)
		ids := make([]trace.NodeID, c)
		for i := range ids {
			ids[i] = trace.NodeID(perm[i])
		}
		cfg.Adversary.Compromised = ids
	}
	cfg.Adversary.UncompromisedReceiver = rng.Intn(2) == 0
	cfg.Adversary.NoSenderSelfReport = rng.Intn(10) == 0

	// Strategy: the five families of the registry — fixed, uniform, the §2
	// presets, remailer chains, and the cyclic coin-flip family.
	switch rng.Intn(5) {
	case 0:
		cfg.StrategySpec = fmt.Sprintf("fixed:%d", 1+rng.Intn(5))
	case 1:
		a := rng.Intn(3)
		cfg.StrategySpec = fmt.Sprintf("uniform:%d,%d", a, a+1+rng.Intn(5))
	case 2:
		cfg.StrategySpec = []string{"pipenet", "freedom", "onionrouting1", "anonymizer"}[rng.Intn(4)]
	case 3:
		cfg.StrategySpec = fmt.Sprintf("remailer:%d", 1+rng.Intn(4))
	case 4:
		cfg.StrategySpec = fmt.Sprintf("crowds:0.%d,%d", 5+rng.Intn(4), 4+rng.Intn(6))
	}

	// Protocol substrate.
	switch rng.Intn(10) {
	case 0:
		cfg.Protocol = scenario.ProtocolCrowds
		cfg.CrowdsPf = 0.5 + 0.1*float64(rng.Intn(4))
	case 1, 2:
		cfg.Protocol = scenario.ProtocolOnion
	case 3:
		cfg.Protocol = scenario.ProtocolMix
		cfg.Workload.BatchThreshold = 2 + rng.Intn(6)
	default:
		cfg.Protocol = scenario.ProtocolPlain
	}

	// Workload: single-shot or repeated-communication, sometimes with
	// identification tracking or a pinned sender.
	cfg.Workload.Seed = int64(1000 + idx)
	cfg.Workload.Workers = 4
	cfg.Workload.Messages = 1500 + 500*rng.Intn(3)
	if rng.Intn(3) == 0 {
		cfg.Workload.Rounds = 2 + rng.Intn(4)
		cfg.Workload.Messages = 300 + 100*rng.Intn(3)
		if rng.Intn(2) == 0 {
			cfg.Workload.Confidence = 0.8
		}
	}
	if rng.Intn(6) == 0 {
		cfg.Workload.FixedSender = true
		cfg.Workload.Sender = trace.NodeID(rng.Intn(n))
	}

	// Timeline: about half the scenarios get a dynamic population.
	if rng.Intn(2) == 0 {
		epochs := 2 + rng.Intn(3)
		tl := make([]scenario.Epoch, epochs)
		roundsMode := rng.Intn(2) == 0
		for i := range tl {
			if roundsMode {
				tl[i].Rounds = 1 + rng.Intn(3)
			} else {
				tl[i].Messages = 800 + 200*rng.Intn(3)
			}
			if i > 0 {
				switch rng.Intn(5) {
				case 0:
					tl[i].Join = 1 + rng.Intn(n/2)
				case 1:
					tl[i].Leave = 1 + rng.Intn(n/4+1)
				case 2:
					tl[i].Compromise = 1 + rng.Intn(2)
				case 3:
					tl[i].Recover = 1
				}
			}
		}
		cfg.Timeline = tl
		if roundsMode {
			cfg.Workload.Rounds = 0
			cfg.Workload.Messages = 300 + 100*rng.Intn(3)
		} else {
			cfg.Workload.Rounds = 0
			cfg.Workload.Messages = 0
			cfg.Workload.Confidence = 0
		}
	}

	// Faults: about a quarter of the scenarios run under a fault plan —
	// link loss with one of the three reliability policies, occasionally a
	// crash schedule (testbed-only: the analytic backends must refuse).
	// Combinations the layer rejects (faults + Crowds, faults + rounds,
	// reroute + timeline) are left in deliberately: they exercise the
	// config-error-agreement half of the contract. The draws come from an
	// independent per-case stream so the fault layer composes onto the
	// exact configurations the harness pinned before it existed.
	frng := rand.New(rand.NewSource(int64(4000 + idx)))
	if frng.Intn(4) == 0 {
		cfg.Faults = &faults.Plan{LinkLoss: []float64{0.02, 0.05, 0.1, 0.2}[frng.Intn(4)]}
		switch frng.Intn(3) {
		case 1:
			cfg.Reliability = faults.Reliability{Policy: faults.PolicyRetransmit}
		case 2:
			cfg.Reliability = faults.Reliability{Policy: faults.PolicyReroute}
		}
		if frng.Intn(6) == 0 {
			cfg.Faults.Crashes = []faults.Crash{{Node: trace.NodeID(frng.Intn(n)), At: 5, Recover: 200}}
		}
	}
	return cfg
}

// errClass buckets an error for the agreement check.
type errClass int

const (
	errNone errClass = iota
	errConfig
	errCapability
	errOther
)

func classify(err error) errClass {
	switch {
	case err == nil:
		return errNone
	case errors.Is(err, scenario.ErrBadConfig) || errors.Is(err, pathsel.ErrBadStrategy):
		return errConfig
	default:
		var capErr *capability.Error
		if errors.As(err, &capErr) {
			return errCapability
		}
		return errOther
	}
}

// configLiteral renders a Config as a compilable Go literal, so a harness
// failure is a copy-paste regression test.
func configLiteral(cfg scenario.Config) string {
	var b strings.Builder
	b.WriteString("scenario.Config{\n")
	fmt.Fprintf(&b, "\tN: %d,\n", cfg.N)
	if cfg.StrategySpec != "" {
		fmt.Fprintf(&b, "\tStrategySpec: %q,\n", cfg.StrategySpec)
	}
	if cfg.Protocol != scenario.ProtocolPlain {
		fmt.Fprintf(&b, "\tProtocol: scenario.Protocol(%d), // %s\n", uint8(cfg.Protocol), cfg.Protocol)
	}
	if cfg.CrowdsPf != 0 {
		fmt.Fprintf(&b, "\tCrowdsPf: %v,\n", cfg.CrowdsPf)
	}
	fmt.Fprintf(&b, "\tAdversary: scenario.Adversary{Count: %d, Compromised: %#v, UncompromisedReceiver: %v, NoSenderSelfReport: %v},\n",
		cfg.Adversary.Count, cfg.Adversary.Compromised, cfg.Adversary.UncompromisedReceiver, cfg.Adversary.NoSenderSelfReport)
	fmt.Fprintf(&b, "\tWorkload: scenario.Workload{Messages: %d, Rounds: %d, Confidence: %v, FixedSender: %v, Sender: %d, Seed: %d, Workers: %d, BatchThreshold: %d},\n",
		cfg.Workload.Messages, cfg.Workload.Rounds, cfg.Workload.Confidence,
		cfg.Workload.FixedSender, int(cfg.Workload.Sender), cfg.Workload.Seed,
		cfg.Workload.Workers, cfg.Workload.BatchThreshold)
	if cfg.Faults != nil {
		fmt.Fprintf(&b, "\tFaults: &faults.Plan{LinkLoss: %v, Jitter: %d, Crashes: %#v},\n",
			cfg.Faults.LinkLoss, cfg.Faults.Jitter, cfg.Faults.Crashes)
		fmt.Fprintf(&b, "\tReliability: faults.Reliability{Policy: faults.Policy(%d), MaxAttempts: %d, RetryBackoff: %d},\n",
			uint8(cfg.Reliability.Policy), cfg.Reliability.MaxAttempts, cfg.Reliability.RetryBackoff)
	}
	if len(cfg.Timeline) > 0 {
		b.WriteString("\tTimeline: []scenario.Epoch{\n")
		for _, e := range cfg.Timeline {
			fmt.Fprintf(&b, "\t\t{Messages: %d, Rounds: %d, Join: %d, Leave: %d, Compromise: %d, Recover: %d},\n",
				e.Messages, e.Rounds, e.Join, e.Leave, e.Compromise, e.Recover)
		}
		b.WriteString("\t},\n")
	}
	b.WriteString("}")
	return b.String()
}

// TestCrossBackendDifferential runs ~100 generated scenarios on every
// backend and asserts the scenario layer's contract case by case.
func TestCrossBackendDifferential(t *testing.T) {
	cases := 100
	if testing.Short() {
		cases = 25
	}
	rng := rand.New(rand.NewSource(20260730))
	backends := []scenario.BackendKind{
		scenario.BackendExact, scenario.BackendMonteCarlo, scenario.BackendTestbed,
	}
	for i := 0; i < cases; i++ {
		cfg := genConfig(rng, i)
		t.Run(fmt.Sprintf("case-%03d", i), func(t *testing.T) {
			fail := func(format string, args ...any) {
				t.Helper()
				t.Errorf(format+"\nreproduce with:\n%s", append(args, configLiteral(cfg))...)
			}
			results := map[scenario.BackendKind]scenario.Result{}
			classes := map[scenario.BackendKind]errClass{}
			errs := map[scenario.BackendKind]error{}
			for _, kind := range backends {
				run := cfg
				run.Backend = kind
				res, err := scenario.Run(run)
				results[kind], classes[kind], errs[kind] = res, classify(err), err
				if classes[kind] == errOther {
					fail("%s: unexpected error class: %v", kind, err)
					return
				}
			}

			// Config errors come from the shared normalization, so they are
			// backend-independent: one backend rejecting the configuration
			// means all of them must.
			anyConfig := false
			for _, kind := range backends {
				anyConfig = anyConfig || classes[kind] == errConfig
			}
			if anyConfig {
				for _, kind := range backends {
					if classes[kind] != errConfig {
						fail("config-error disagreement: %v", map[scenario.BackendKind]error(errs))
						return
					}
				}
				return
			}

			// Capability refusals are per-backend; the capable ones must
			// agree on everything observable.
			var capable []scenario.BackendKind
			for _, kind := range backends {
				if classes[kind] == errNone {
					capable = append(capable, kind)
				}
			}
			if len(capable) < 2 {
				return
			}
			ref := results[capable[0]]
			for _, kind := range capable[1:] {
				res := results[kind]
				tol := 4*(res.StdErr+ref.StdErr) + 0.02
				if d := math.Abs(res.H - ref.H); d > tol {
					fail("%s H = %v ± %v, %s H = %v ± %v (Δ=%v > tol %v)",
						kind, res.H, res.StdErr, capable[0], ref.H, ref.StdErr, d, tol)
				}
				if cfg.Faults != nil {
					if d := math.Abs(res.DeliveryRate - ref.DeliveryRate); d > 0.05 {
						fail("%s delivery = %v, %s delivery = %v (Δ=%v)",
							kind, res.DeliveryRate, capable[0], ref.DeliveryRate, d)
					}
					if d := math.Abs(res.HDegraded - ref.HDegraded); d > tol+0.05 {
						fail("%s HDegraded = %v, %s HDegraded = %v (Δ=%v)",
							kind, res.HDegraded, capable[0], ref.HDegraded, d)
					}
				}
				if res.Rounds != ref.Rounds || len(res.HRounds) != len(ref.HRounds) {
					fail("%s rounds shape (%d, %d) != %s (%d, %d)",
						kind, res.Rounds, len(res.HRounds), capable[0], ref.Rounds, len(ref.HRounds))
				}
				if len(res.Epochs) != len(ref.Epochs) {
					fail("%s epochs = %d, %s epochs = %d", kind, len(res.Epochs), capable[0], len(ref.Epochs))
					continue
				}
				for e := range res.Epochs {
					if res.Epochs[e].N != ref.Epochs[e].N || res.Epochs[e].C != ref.Epochs[e].C {
						fail("%s epoch %d population (%d,%d) != %s (%d,%d)",
							kind, e, res.Epochs[e].N, res.Epochs[e].C,
							capable[0], ref.Epochs[e].N, ref.Epochs[e].C)
					}
					// Per-epoch entropies agree too (zero-traffic phases are
					// zero everywhere); the per-phase sample is a 1/E share
					// of the run, so scale the overall error bars by √E.
					scale := math.Sqrt(float64(len(res.Epochs)))
					epochTol := 4*(res.StdErr+ref.StdErr)*scale + 0.05
					if d := math.Abs(res.Epochs[e].H - ref.Epochs[e].H); d > epochTol {
						fail("%s epoch %d H = %v, %s H = %v (Δ=%v > tol %v)",
							kind, e, res.Epochs[e].H, capable[0], ref.Epochs[e].H, d, epochTol)
					}
				}
			}
		})
	}
}
