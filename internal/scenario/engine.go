package scenario

// The process-wide engine cache. Exact engines are concurrency-safe and
// memoize every posterior they compute, so sharing one engine per
// configuration across figures, CLIs, the Monte-Carlo estimator, and the
// testbed adversary turns repeated work into cache hits. This cache used
// to live in internal/figures; the scenario layer owns it now so every
// consumer shares the same engines.

import (
	"sync"

	"anonmix/internal/adversary"
	"anonmix/internal/events"
)

// engineKey is the comparable identity of an engine configuration,
// reconstructed from the built engine's accessors (events.Option values
// are functions and cannot key a map).
type engineKey struct {
	n, c       int
	mode       events.InferenceMode
	receiver   bool
	selfReport bool
}

var engines sync.Map // engineKey → *events.Engine

// Engine returns the process-shared exact engine for the configuration,
// creating it on first use. Engines are never evicted: they hold memoized
// posteriors whose whole point is to outlive individual runs.
func Engine(n, c int, opts ...events.Option) (*events.Engine, error) {
	e, err := events.New(n, c, opts...)
	if err != nil {
		return nil, err
	}
	key := engineKey{
		n:          e.N(),
		c:          e.C(),
		mode:       e.Mode(),
		receiver:   e.ReceiverCompromised(),
		selfReport: e.SenderSelfReport(),
	}
	v, _ := engines.LoadOrStore(key, e)
	return v.(*events.Engine), nil
}

// ResetEngines drops every cached engine. It exists for determinism tests
// that compare cold-cache parallel runs against cold-cache serial runs;
// production code has no reason to call it (a stale engine is impossible —
// engines are pure functions of their configuration).
func ResetEngines() {
	engines.Range(func(k, _ any) bool {
		engines.Delete(k)
		return true
	})
}

// NewAnalyst builds the adversary for a scenario: the shared exact engine
// plus the strategy's length distribution and the compromised set.
// Analysts are stateless and safe for concurrent use, so callers may share
// the returned value across trials.
func NewAnalyst(cfg Config) (*adversary.Analyst, error) {
	norm, err := normalize(cfg)
	if err != nil {
		return nil, err
	}
	e, err := Engine(norm.N, len(norm.Adversary.Compromised), engineOptions(norm)...)
	if err != nil {
		return nil, err
	}
	return adversary.NewAnalyst(e, norm.Strategy.Length, norm.Adversary.Compromised)
}
