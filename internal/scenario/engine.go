package scenario

// The process-wide engine cache. Exact engines are concurrency-safe and
// memoize every posterior they compute, so sharing one engine per
// configuration across figures, CLIs, the Monte-Carlo estimator, and the
// testbed adversary turns repeated work into cache hits. This cache used
// to live in internal/figures; the scenario layer owns it now so every
// consumer shares the same engines.
//
// Two things distinguish it from a plain map:
//
//   - It is an LRU with a configurable capacity. A serving workload (anond)
//     cycles through many (N, C) points; the cache bounds memory and
//     reports hit/miss/eviction counters via CacheStats.
//   - A miss with any same-flag engine cached is satisfied through the
//     delta path (events.Engine.Neighbor): the new engine shares the
//     source's family of per-distribution shape tables, so a timeline of
//     drifting populations pays the table cost once instead of per epoch.
//     Nearest ±1 neighbors are preferred as derivation sources.

import (
	"container/list"
	"sync"

	"anonmix/internal/adversary"
	"anonmix/internal/events"
)

// engineKey is the comparable identity of an engine configuration,
// reconstructed from the built engine's accessors (events.Option values
// are functions and cannot key a map).
type engineKey struct {
	n, c       int
	mode       events.InferenceMode
	receiver   bool
	selfReport bool
}

// DefaultEngineCacheCapacity is the default engine-cache bound. Generous:
// an engine's tables are megabytes at most, and figure sweeps touch a few
// hundred configurations.
const DefaultEngineCacheCapacity = 1024

// engineEntry is one cached engine with its key (needed on eviction).
type engineEntry struct {
	key engineKey
	e   *events.Engine
}

// engineCache is the process-wide LRU. order's front is the most recently
// used entry; byKey indexes the list elements.
var engineCache = struct {
	mu       sync.Mutex
	capacity int
	order    *list.List
	byKey    map[engineKey]*list.Element

	hits, misses, evictions, deltaDerived uint64
}{
	capacity: DefaultEngineCacheCapacity,
	order:    list.New(),
	byKey:    make(map[engineKey]*list.Element),
}

// EngineCacheStats reports the engine cache's counters since process start
// (or the last ResetEngines).
type EngineCacheStats struct {
	// Hits counts requests served from the cache.
	Hits uint64
	// Misses counts requests that built (or delta-derived) a new engine.
	Misses uint64
	// Evictions counts entries dropped by the LRU bound.
	Evictions uint64
	// DeltaDerived counts misses satisfied from a cached same-family
	// engine via the events delta path instead of a from-scratch engine.
	DeltaDerived uint64
	// Size and Capacity describe the current occupancy.
	Size, Capacity int
}

// CacheStats returns a snapshot of the engine cache counters — the
// eviction metrics a serving daemon exports.
func CacheStats() EngineCacheStats {
	engineCache.mu.Lock()
	defer engineCache.mu.Unlock()
	return EngineCacheStats{
		Hits:         engineCache.hits,
		Misses:       engineCache.misses,
		Evictions:    engineCache.evictions,
		DeltaDerived: engineCache.deltaDerived,
		Size:         engineCache.order.Len(),
		Capacity:     engineCache.capacity,
	}
}

// ResetCacheStats zeroes the cache counters and returns the pre-reset
// snapshot. Resident engines stay cached — unlike ResetEngines — so a
// long-running server can carve its uptime into reporting windows
// without discarding warm state. The snapshot and the zeroing happen
// under one lock acquisition, so no concurrent Engine call can land a
// counter increment between the two (every increment is attributed to
// exactly one window).
func ResetCacheStats() EngineCacheStats {
	engineCache.mu.Lock()
	defer engineCache.mu.Unlock()
	prev := EngineCacheStats{
		Hits:         engineCache.hits,
		Misses:       engineCache.misses,
		Evictions:    engineCache.evictions,
		DeltaDerived: engineCache.deltaDerived,
		Size:         engineCache.order.Len(),
		Capacity:     engineCache.capacity,
	}
	engineCache.hits, engineCache.misses = 0, 0
	engineCache.evictions, engineCache.deltaDerived = 0, 0
	return prev
}

// Delta returns the counter advance from prev to s: the activity between
// two CacheStats snapshots taken without an intervening reset. Size and
// Capacity are occupancy gauges, not counters, so the later snapshot's
// values carry through unchanged.
func (s EngineCacheStats) Delta(prev EngineCacheStats) EngineCacheStats {
	return EngineCacheStats{
		Hits:         s.Hits - prev.Hits,
		Misses:       s.Misses - prev.Misses,
		Evictions:    s.Evictions - prev.Evictions,
		DeltaDerived: s.DeltaDerived - prev.DeltaDerived,
		Size:         s.Size,
		Capacity:     s.Capacity,
	}
}

// SetEngineCacheCapacity bounds the engine cache to n entries (minimum 1),
// evicting least-recently-used engines if it already holds more. It returns
// the previous capacity.
func SetEngineCacheCapacity(n int) int {
	if n < 1 {
		n = 1
	}
	engineCache.mu.Lock()
	defer engineCache.mu.Unlock()
	prev := engineCache.capacity
	engineCache.capacity = n
	evictOver()
	return prev
}

// evictOver drops LRU entries beyond capacity. Callers hold the mutex.
func evictOver() {
	for engineCache.order.Len() > engineCache.capacity {
		back := engineCache.order.Back()
		engineCache.order.Remove(back)
		delete(engineCache.byKey, back.Value.(*engineEntry).key)
		engineCache.evictions++
	}
}

// neighborDeltas is the search order for delta derivation on a miss: the
// four ±1 steps a drifting timeline takes most often, then the diagonals.
var neighborDeltas = [][2]int{
	{-1, 0}, {1, 0}, {0, -1}, {0, 1},
	{-1, -1}, {1, 1}, {1, -1}, {-1, 1},
}

// deltaDerive tries to satisfy a miss through the events delta path: first
// the eight ±1 neighbors in preference order (the steps a drifting timeline
// takes most often), then any cached engine of the same mode and flags —
// events.Engine.Neighbor accepts arbitrary (dn, dc), and a derived engine
// shares its source's family tables regardless of distance. Returns nil if
// no cached engine can seed the derivation. Callers hold the mutex.
func deltaDerive(key engineKey) *events.Engine {
	for _, d := range neighborDeltas {
		nk := key
		nk.n += d[0]
		nk.c += d[1]
		el, ok := engineCache.byKey[nk]
		if !ok {
			continue
		}
		// Walking back from the neighbor lands exactly on the requested
		// (n, c); mode and flags match by construction of the key.
		if derived, err := el.Value.(*engineEntry).e.Neighbor(-d[0], -d[1]); err == nil {
			return derived
		}
	}
	for el := engineCache.order.Front(); el != nil; el = el.Next() {
		k := el.Value.(*engineEntry).key
		if k.mode != key.mode || k.receiver != key.receiver || k.selfReport != key.selfReport {
			continue
		}
		if derived, err := el.Value.(*engineEntry).e.Neighbor(key.n-k.n, key.c-k.c); err == nil {
			return derived
		}
	}
	return nil
}

// Engine returns the process-shared exact engine for the configuration,
// creating it on first use. A miss with a cached engine of the same mode
// and flags is served by deriving from it via the delta path
// (events.Engine.Neighbor), which shares its per-distribution tables —
// nearest ±1 neighbors are preferred, but any family member will do.
func Engine(n, c int, opts ...events.Option) (*events.Engine, error) {
	probe, err := events.New(n, c, opts...)
	if err != nil {
		return nil, err
	}
	key := engineKey{
		n:          probe.N(),
		c:          probe.C(),
		mode:       probe.Mode(),
		receiver:   probe.ReceiverCompromised(),
		selfReport: probe.SenderSelfReport(),
	}
	engineCache.mu.Lock()
	defer engineCache.mu.Unlock()
	if el, ok := engineCache.byKey[key]; ok {
		engineCache.hits++
		engineCache.order.MoveToFront(el)
		return el.Value.(*engineEntry).e, nil
	}
	engineCache.misses++
	e := probe
	if derived := deltaDerive(key); derived != nil {
		e = derived
		engineCache.deltaDerived++
	}
	engineCache.byKey[key] = engineCache.order.PushFront(&engineEntry{key: key, e: e})
	evictOver()
	return e, nil
}

// ResetEngines drops every cached engine and zeroes the cache counters. It
// exists for determinism tests that compare cold-cache parallel runs
// against cold-cache serial runs; production code has no reason to call it
// (a stale engine is impossible — engines are pure functions of their
// configuration).
func ResetEngines() {
	engineCache.mu.Lock()
	defer engineCache.mu.Unlock()
	engineCache.order.Init()
	engineCache.byKey = make(map[engineKey]*list.Element)
	engineCache.hits, engineCache.misses = 0, 0
	engineCache.evictions, engineCache.deltaDerived = 0, 0
}

// NewAnalyst builds the adversary for a scenario: the shared exact engine
// plus the strategy's length distribution and the compromised set.
// Analysts are stateless and safe for concurrent use, so callers may share
// the returned value across trials.
func NewAnalyst(cfg Config) (*adversary.Analyst, error) {
	norm, err := normalize(cfg)
	if err != nil {
		return nil, err
	}
	e, err := Engine(norm.N, len(norm.Adversary.Compromised), engineOptions(norm)...)
	if err != nil {
		return nil, err
	}
	return adversary.NewAnalyst(e, norm.Strategy.Length, norm.Adversary.Compromised)
}
