// Package scenario is the unification layer of the repository: one
// declarative description of an experiment — population, adversary,
// path-selection strategy, protocol substrate, and workload — that any
// capable backend can execute through a single entry point:
//
//	res, err := scenario.Run(scenario.Config{
//	        N:         1000,
//	        Backend:   scenario.BackendTestbed,
//	        StrategySpec: "crowds:0.75,20",
//	        Protocol:  scenario.ProtocolCrowds,
//	        Adversary: scenario.Adversary{Count: 3},
//	        Workload:  scenario.Workload{Messages: 5000, Seed: 1},
//	})
//
// Three backends ship registered: the exact counted-bucket engine
// (BackendExact), the sampling estimator (BackendMonteCarlo), and the
// sharded discrete-event testbed (BackendTestbed). All three compute the
// same quantity — the anonymity degree H*(S) of Guan et al. (ICDCS 2002)
// — so any scenario a backend can express must agree with the others
// within sampling error; the cross-backend agreement test in this package
// pins that property.
//
// When a backend cannot execute a scenario (the exact engine refuses
// cyclic routes, analytic backends refuse wire protocols with their own
// routing), it returns a *capability.Error instead of a per-package
// ad-hoc failure, so callers can switch backends on errors.Is rather than
// string-matching.
package scenario

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"anonmix/internal/dist"
	"anonmix/internal/events"
	"anonmix/internal/faults"
	"anonmix/internal/pathsel"
	"anonmix/internal/scenario/capability"
	"anonmix/internal/trace"
)

// ErrBadConfig reports an inconsistent scenario configuration.
var ErrBadConfig = errors.New("scenario: invalid configuration")

// ErrUnknownBackend reports a backend kind no registry entry claims.
var ErrUnknownBackend = errors.New("scenario: unknown backend")

// ErrCanceled reports a run aborted by RunContext's context. Returned
// errors wrap both this sentinel and the context's own error, so
// errors.Is matches either vocabulary.
var ErrCanceled = errors.New("scenario: run canceled")

// BackendKind names a registered backend.
type BackendKind string

// The built-in backends.
const (
	// BackendExact is the closed-form counted-bucket engine (package
	// events): exact H*(S), no sampling error, simple paths only.
	BackendExact BackendKind = "exact"
	// BackendMonteCarlo is the sampling estimator (package montecarlo):
	// unbiased H*(S) estimates with confidence intervals.
	BackendMonteCarlo BackendKind = "mc"
	// BackendTestbed executes the scenario on the sharded discrete-event
	// network kernel (package simnet) and measures H*(S) empirically from
	// the adversary's collected tuples.
	BackendTestbed BackendKind = "testbed"
)

// ParseBackend resolves a backend name; it accepts the canonical kinds
// plus the aliases "montecarlo" and "sim".
func ParseBackend(s string) (BackendKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "exact", "":
		return BackendExact, nil
	case "mc", "montecarlo":
		return BackendMonteCarlo, nil
	case "testbed", "sim":
		return BackendTestbed, nil
	default:
		return "", fmt.Errorf("%w: %q (known: %s)", ErrUnknownBackend, s, backendNames())
	}
}

// Protocol selects the wire substrate a testbed scenario executes.
// Analytic backends (exact, Monte-Carlo) model the observable structure
// directly and accept only substrates whose observations match the
// simple-path model (plain and onion).
type Protocol uint8

// The protocol substrates.
const (
	// ProtocolPlain routes packets with explicit plain source routes.
	ProtocolPlain Protocol = iota
	// ProtocolOnion wraps each route in layered encryption (package
	// onion); the observable structure is identical to plain routing.
	ProtocolOnion
	// ProtocolCrowds runs the coin-flip jondo protocol (package crowds):
	// routing is per-hop random with cycles, so only the testbed can
	// execute it.
	ProtocolCrowds
	// ProtocolMix routes plainly but batches packets at every node in
	// threshold mixes (simnet.Config.BatchThreshold), exercising
	// mix-network timing; testbed only.
	ProtocolMix
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case ProtocolPlain:
		return "plain"
	case ProtocolOnion:
		return "onion"
	case ProtocolCrowds:
		return "crowds"
	case ProtocolMix:
		return "mix"
	default:
		return fmt.Sprintf("Protocol(%d)", uint8(p))
	}
}

// ParseProtocol resolves a protocol name.
func ParseProtocol(s string) (Protocol, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "plain", "":
		return ProtocolPlain, nil
	case "onion":
		return ProtocolOnion, nil
	case "crowds":
		return ProtocolCrowds, nil
	case "mix", "mixbatch":
		return ProtocolMix, nil
	default:
		return 0, fmt.Errorf("%w: unknown protocol %q (known: plain, onion, crowds, mix)", ErrBadConfig, s)
	}
}

// Adversary describes the threat model of a scenario.
type Adversary struct {
	// Compromised lists the adversary's nodes explicitly. When nil, the
	// first Count nodes are compromised (the convention of the paper's
	// figures and of every cmd).
	Compromised []trace.NodeID
	// Count is the number of compromised nodes when Compromised is nil.
	Count int
	// UncompromisedReceiver drops the receiver's report from the
	// adversary's view (the paper's default has the receiver compromised).
	UncompromisedReceiver bool
	// NoSenderSelfReport disables the local-eavesdropper branch in which
	// a compromised sender identifies itself (ablation).
	NoSenderSelfReport bool
}

// nodes resolves the compromised set for an n-node system.
func (a Adversary) nodes(n int) ([]trace.NodeID, error) {
	if a.Compromised != nil {
		seen := make(map[trace.NodeID]bool, len(a.Compromised))
		for _, id := range a.Compromised {
			if int(id) < 0 || int(id) >= n {
				return nil, fmt.Errorf("%w: compromised node %v outside [0,%d)", ErrBadConfig, id, n)
			}
			if seen[id] {
				return nil, fmt.Errorf("%w: duplicate compromised node %v", ErrBadConfig, id)
			}
			seen[id] = true
		}
		// A defensive copy: backends receive this slice in their normalized
		// config, and one that sorts or otherwise rearranges it must not
		// corrupt the caller's Config across reuse on another backend.
		return append([]trace.NodeID(nil), a.Compromised...), nil
	}
	if a.Count < 0 || a.Count > n {
		return nil, fmt.Errorf("%w: %d compromised of %d nodes", ErrBadConfig, a.Count, n)
	}
	out := make([]trace.NodeID, a.Count)
	for i := range out {
		out[i] = trace.NodeID(i)
	}
	return out, nil
}

// Epoch is one piecewise-constant phase of a dynamic-population timeline.
// Population and adversary deltas take effect at the phase start, in a
// fixed order (joins, leaves, compromises, recoveries) under deterministic
// identity rules — see Config.Timeline — so the membership schedule is a
// pure function of the configuration and identical across backends.
type Epoch struct {
	// Messages is the phase's single-shot traffic budget: messages on the
	// testbed, sampling trials on Monte-Carlo, and the phase's weight in
	// the exact backend's message-weighted mixture. Mutually exclusive with
	// Rounds across the whole timeline.
	Messages int
	// Rounds is the number of repeated-communication rounds every session
	// sends during this phase. When any epoch sets Rounds, the timeline is
	// a degradation run: Workload.Messages sessions persist across all
	// phases, the adversary accumulates over the phase boundaries, and the
	// blended curve H_1..H_k spans k = ΣRounds.
	Rounds int
	// Join adds this many new nodes at the phase start. Joiners get fresh
	// identities (allocated upward from the initial N) and are honest.
	Join int
	// Leave removes this many honest members at the phase start, highest
	// identities first. Compromised nodes never leave — shrink the
	// adversary with Recover.
	Leave int
	// Compromise converts this many honest members to adversary nodes at
	// the phase start, lowest identities first (creeping compromise,
	// matching the "first Count nodes" convention of the static model).
	Compromise int
	// Recover returns this many compromised nodes to honest operation,
	// most recently compromised first (LIFO over the compromise order).
	Recover int
}

// Workload describes how much traffic a scenario generates and how.
type Workload struct {
	// Messages is the number of messages (testbed) or sampling trials
	// (Monte-Carlo); with Rounds > 1 it is the number of
	// repeated-communication sessions. Ignored by the exact backend for
	// single-shot runs.
	Messages int
	// Rounds is the number of messages each session's fixed sender sends
	// to the receiver (default 1, the paper's single-shot model). Values
	// above one switch every backend into the repeated-communication
	// regime of Wright et al. ([23] in Guan et al.): the adversary
	// accumulates the per-round posteriors (Bayesian multiplication on the
	// simple-path substrates, predecessor counting on Crowds) and the
	// Result carries the degradation curve H_1..H_k. Multi-round analysis
	// materializes an N-entry posterior per round, so it costs O(N) per
	// message where single-shot analysis is O(reports).
	Rounds int
	// Confidence, when in (0,1), additionally tracks identification in
	// multi-round runs: a session counts as identified at the first round
	// where the accumulated posterior puts at least this mass on the true
	// sender. Zero disables tracking.
	Confidence float64
	// FixedSender pins every session's initiator to Sender instead of
	// drawing senders uniformly (the one-whistleblower workload of the
	// repeated-communication attack). The pinned sender must be honest.
	FixedSender bool
	// Sender is the pinned initiator when FixedSender is set.
	Sender trace.NodeID
	// Seed makes randomized backends reproducible.
	Seed int64
	// Workers bounds Monte-Carlo sampling parallelism (0 = pool width).
	Workers int
	// MaxHopDelay adds random logical per-hop delay on the testbed.
	MaxHopDelay time.Duration
	// BatchThreshold sets the testbed threshold-mix batch size for
	// ProtocolMix (default 8).
	BatchThreshold int
}

// degradation reports whether the workload asks for the
// repeated-communication analysis (multi-round accumulation, or
// identification tracking on top of single rounds).
func (w Workload) degradation() bool {
	return w.Rounds > 1 || w.Confidence > 0
}

// Config is the declarative description of one run.
type Config struct {
	// N is the system population.
	N int
	// Backend selects the execution engine (default BackendExact).
	Backend BackendKind
	// Strategy is the path-selection strategy. Leave zero and set
	// StrategySpec to resolve it from the pathsel registry. Scenarios on
	// ProtocolCrowds may omit both (the protocol routes by itself).
	Strategy pathsel.Strategy
	// StrategySpec is a pathsel registry spec ("uniform:0,10",
	// "crowds:0.75,20"), used when Strategy is zero.
	StrategySpec string
	// Protocol is the wire substrate (testbed; analytic backends accept
	// plain and onion, whose observable structure they model).
	Protocol Protocol
	// CrowdsPf is the Crowds forwarding probability for ProtocolCrowds.
	// When zero it is recovered from a geometric Strategy.Length.
	CrowdsPf float64
	// Adversary is the threat model.
	Adversary Adversary
	// Workload is the traffic description.
	Workload Workload
	// Timeline, when non-empty, makes the population dynamic: each Epoch is
	// a piecewise-constant phase with its own traffic budget and its
	// population/adversary deltas applied at the phase start. The exact
	// backend folds per-phase exact values into a traffic-weighted mixture,
	// Monte-Carlo samples each phase with its budget, and the testbed
	// executes the schedule as kernel-level churn events at virtual
	// timestamps with path selection restricted to the live membership.
	// Epochs carry either Messages (single-shot phases) or Rounds
	// (persistent sessions degrading across phases), never a mix.
	Timeline []Epoch
	// EngineOptions are forwarded to the exact engine in addition to the
	// options derived from Adversary (e.g. events.WithInference).
	EngineOptions []events.Option
	// Faults, when non-nil, injects deterministic delivery faults: per-link
	// loss, per-node crash windows at virtual times, and extra hop jitter
	// (see faults.Plan and faults.ParseFaults). All draws derive from
	// Workload.Seed, so a faulted run is exactly as reproducible as a
	// lossless one. Fault-injected scenarios are single-shot: Rounds > 1,
	// Confidence tracking, and Crowds are rejected. The exact backend
	// models PolicyNone loss in closed form via the effective-delivery
	// length distribution; crashes and retry policies run on the sampling
	// backends.
	Faults *faults.Plan
	// Reliability selects how the system reacts to a lost transmission or
	// crashed hop: drop (PolicyNone, the default), per-link retransmission
	// with capped exponential backoff, or end-to-end rerouting over a
	// fresh path. Meaningful only with Faults set.
	Reliability faults.Reliability
	// Progress, when non-nil, receives coarse progress callbacks while the
	// run executes: sampled backends report cumulative completed trials or
	// sessions, closed-form timelines report completed phases, and timeline
	// runs additionally attach each completed epoch's partial result. The
	// callback may be invoked concurrently from worker goroutines and must
	// return quickly; it must not call back into the scenario layer. The
	// testbed backend honors cancellation but reports no progress (its
	// analysis happens after the network settles).
	Progress func(Progress)

	// phases is the normalized membership schedule derived from Timeline
	// (computed by normalize; backends read it, callers never set it).
	phases []phase
	// ctx carries RunContext's cancellation (nil for plain Run; backends
	// poll it between work units, callers never set it directly).
	ctx context.Context
}

// Progress is one progress callback of a running scenario.
type Progress struct {
	// Done and Total count the run's work units: sampling trials for the
	// Monte-Carlo backend, sessions for degradation runs, messages for
	// sampled single-shot timelines, and phases for closed-form timelines.
	Done, Total int
	// Epoch, when non-nil, is the just-completed phase's partial result
	// (timeline runs only; the final Result's Epochs collect the same
	// values).
	Epoch *EpochResult
}

// CrowdsReport carries the Crowds-specific outcome of a testbed run: the
// Reiter–Rubin predecessor statistics the paper's §2 survey cites.
type CrowdsReport struct {
	// Pf is the forwarding probability used.
	Pf float64
	// Observed is the number of messages any collaborator saw.
	Observed int
	// Hits is the number of observed messages whose first collaborator's
	// predecessor was the true initiator.
	Hits int
	// PredecessorProb is the Reiter–Rubin closed form P(H1 | H1+).
	PredecessorProb float64
	// ProbableInnocence reports whether the probable-innocence condition
	// holds for (n, c, pf).
	ProbableInnocence bool
	// EventEntropy is the posterior entropy of the observed event.
	EventEntropy float64
	// TopCountIdentifiedShare is the fraction of sessions whose initiator
	// ended with the strictly highest predecessor count — the classical
	// predecessor-counting identification rule across path reformations.
	TopCountIdentifiedShare float64
	// MeanObservedRounds is the mean number of rounds per session in which
	// any collaborator was on the path.
	MeanObservedRounds float64
}

// KernelStats snapshots the testbed kernel after a run.
type KernelStats struct {
	// Shards is the number of event-kernel shards (worker goroutines).
	Shards int
	// Events is the number of node-arrival events processed.
	Events uint64
	// BatchFlushes counts threshold-mix flushes.
	BatchFlushes uint64
	// Churn is the number of membership/compromise transitions the kernel
	// executed (dynamic-population timelines only).
	Churn int
	// Goroutines is the number of goroutines the run added over the
	// process baseline captured before the network started — the kernel's
	// shard goroutines (measured after injection, before the settle
	// waiter spawns), never O(N).
	Goroutines int
	// EventsPerSec is Events divided by the settle time.
	EventsPerSec float64
}

// EpochResult summarizes one phase of a dynamic-population run.
type EpochResult struct {
	// Index is the epoch's position in Config.Timeline.
	Index int
	// N is the live population during the phase.
	N int
	// C is the number of compromised live nodes during the phase.
	C int
	// Messages is the traffic analyzed in the phase: single-shot messages
	// or trials, or sessions × rounds-in-phase for degradation timelines.
	Messages int
	// Rounds is the number of session rounds falling in this phase
	// (degradation timelines only).
	Rounds int
	// H is the mean posterior entropy of the phase's traffic — exact for
	// the exact backend's single-shot mixture, estimated elsewhere; for
	// degradation runs it is the mean accumulated entropy over the phase's
	// rounds. Zero when the phase carried no traffic.
	H float64
}

// Result is the outcome of a run, whatever the backend.
type Result struct {
	// Backend is the backend that produced the result.
	Backend BackendKind
	// Strategy echoes the resolved strategy (zero for protocol-routed
	// scenarios).
	Strategy pathsel.Strategy
	// H is the anonymity degree in bits: exact, estimated, or empirical.
	H float64
	// StdErr and CI95 quantify sampling error (zero for exact).
	StdErr float64
	CI95   float64
	// Estimated marks sampled results (Monte-Carlo, testbed).
	Estimated bool
	// Trials is the number of samples behind an estimate (0 for exact).
	Trials int
	// MaxH is log2(N), the upper bound.
	MaxH float64
	// Normalized is H / log2(N).
	Normalized float64
	// CompromisedSenderShare is the fraction of trials with a compromised
	// sender (identified outright; the C/N branch).
	CompromisedSenderShare float64
	// Deanonymized counts messages (sessions, in multi-round runs) whose
	// posterior entropy was ≈ 0.
	Deanonymized int
	// Rounds echoes the normalized Workload.Rounds.
	Rounds int
	// HRounds is the degradation curve of a repeated-communication run:
	// HRounds[r] is the mean accumulated posterior entropy after round
	// r+1, averaged over sessions. H, StdErr, and CI95 describe the final
	// round. Nil for single-shot runs without degradation tracking.
	HRounds []float64
	// IdentifiedShare is the fraction of sessions identified within Rounds
	// at Workload.Confidence (0 when tracking is off).
	IdentifiedShare float64
	// MeanRoundsToIdentify is the mean identification round among
	// identified sessions (0 when none).
	MeanRoundsToIdentify float64
	// Epochs carries the per-phase results of a dynamic-population run in
	// timeline order (nil for static scenarios); H, HRounds, and the other
	// top-level fields hold the blended values.
	Epochs []EpochResult
	// DeliveryRate is the fraction of messages delivered end to end under
	// the configured fault plan (1 for lossless runs). H describes the
	// delivered messages only — the traffic the adversary's receiver-side
	// evidence exists for.
	DeliveryRate float64
	// MeanAttempts is the mean number of transmission attempts per
	// injected message: 1 under PolicyNone, 1 plus the mean retransmission
	// count under PolicyRetransmit, and the mean number of end-to-end path
	// attempts under PolicyReroute.
	MeanAttempts float64
	// HDegraded is the retry-degraded anonymity degree: H recomputed with
	// the adversary additionally folding the evidence leaked by
	// retransmissions and failed rerouting attempts (partial traces
	// analyzed under the uncompromised-receiver model). Equal to H for
	// lossless runs; always ≤ H, with the gap growing in the loss rate.
	HDegraded float64
	// Elapsed is the wall-clock backend runtime.
	Elapsed time.Duration
	// Kernel reports testbed kernel counters (nil elsewhere).
	Kernel *KernelStats
	// Crowds carries the Crowds predecessor statistics (nil elsewhere).
	Crowds *CrowdsReport
}

// Backend executes scenarios. Implementations receive a normalized config:
// Strategy resolved from its spec, Adversary.Compromised materialized, and
// Backend set to their own kind.
type Backend interface {
	// Kind names the backend.
	Kind() BackendKind
	// Run executes the scenario or returns a *capability.Error.
	Run(cfg Config) (Result, error)
}

var (
	backendMu sync.RWMutex
	backends  = map[BackendKind]Backend{}
)

// Register adds a backend to the registry (later registrations replace
// earlier ones of the same kind).
func Register(b Backend) {
	backendMu.Lock()
	defer backendMu.Unlock()
	backends[b.Kind()] = b
}

// Backends lists the registered backend kinds, sorted.
func Backends() []BackendKind {
	backendMu.RLock()
	defer backendMu.RUnlock()
	out := make([]BackendKind, 0, len(backends))
	for k := range backends {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func backendNames() string {
	kinds := Backends()
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = string(k)
	}
	return strings.Join(names, ", ")
}

// Run normalizes the configuration and dispatches it to its backend. This
// is the single entry point every CLI and library facade routes through:
// switching backend, strategy, protocol, or threat model is a field
// change, not a different code path.
func Run(cfg Config) (Result, error) {
	norm, err := normalize(cfg)
	if err != nil {
		return Result{}, err
	}
	backendMu.RLock()
	b, ok := backends[norm.Backend]
	backendMu.RUnlock()
	if !ok {
		return Result{}, fmt.Errorf("%w: %q (known: %s)", ErrUnknownBackend, norm.Backend, backendNames())
	}
	if err := norm.checkCanceled(); err != nil {
		return Result{}, err
	}
	start := time.Now() //anonlint:allow detrand(wall-clock metrics only, never flows into Result)
	res, err := b.Run(norm)
	if err != nil {
		return Result{}, wrapCanceled(&norm, err)
	}
	res.Backend = norm.Backend
	res.Strategy = norm.Strategy
	res.Rounds = norm.Workload.Rounds
	if norm.Faults == nil {
		// Lossless runs deliver everything in one attempt and leak nothing
		// beyond the base observations.
		res.DeliveryRate = 1
		res.MeanAttempts = 1
		res.HDegraded = res.H
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// RunContext is Run with cancellation: the context aborts the run at the
// next checkpoint — sampled backends poll between trial batches, serial
// loops between sessions, timelines between phases, the testbed between
// injections — so a disconnected client stops burning CPU within one work
// unit, not at the end of the run. Returned cancellation errors wrap both
// ErrCanceled and the context's own error (context.Canceled or
// context.DeadlineExceeded), so errors.Is matches either vocabulary.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	cfg.ctx = ctx
	return Run(cfg)
}

// checkCanceled polls the run's context at a checkpoint.
func (c *Config) checkCanceled() error {
	if c.ctx == nil {
		return nil
	}
	if err := c.ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return nil
}

// cancelChan is the cancellation channel backends hand to the sampling
// layer's batch loops (nil — never firing — when the run has no context).
func (c *Config) cancelChan() <-chan struct{} {
	if c.ctx == nil {
		return nil
	}
	return c.ctx.Done()
}

// cancelRequested polls a cancellation channel without blocking; a nil
// channel never fires.
func cancelRequested(ch <-chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// wrapCanceled rewraps a lower layer's context error into the scenario
// vocabulary, so callers match ErrCanceled no matter which layer noticed
// the cancellation first.
func wrapCanceled(cfg *Config, err error) error {
	if err == nil || cfg.ctx == nil || errors.Is(err, ErrCanceled) {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return err
}

// emitProgress invokes the run's progress callback, if any.
func (c *Config) emitProgress(done, total int, ep *EpochResult) {
	if c.Progress != nil {
		c.Progress(Progress{Done: done, Total: total, Epoch: ep})
	}
}

// normalize validates the config and resolves every symbolic field.
func normalize(cfg Config) (Config, error) {
	if cfg.N < 2 {
		return Config{}, fmt.Errorf("%w: n = %d", ErrBadConfig, cfg.N)
	}
	if cfg.Backend == "" {
		cfg.Backend = BackendExact
	}
	comp, err := cfg.Adversary.nodes(cfg.N)
	if err != nil {
		return Config{}, err
	}
	cfg.Adversary.Compromised = comp
	cfg.Adversary.Count = len(comp)

	if cfg.Strategy.Length == nil && cfg.StrategySpec != "" {
		s, err := pathsel.Lookup(cfg.StrategySpec)
		if err != nil {
			return Config{}, err
		}
		cfg.Strategy = s
	}
	if cfg.Strategy.Length != nil {
		if err := cfg.Strategy.Validate(cfg.N); err != nil {
			return Config{}, err
		}
	} else if cfg.Protocol != ProtocolCrowds {
		return Config{}, fmt.Errorf("%w: no strategy (set Strategy or StrategySpec)", ErrBadConfig)
	}
	// A strategy that routes hop-by-hop with cycles is the Crowds family;
	// promote the protocol so the testbed picks the right substrate.
	if cfg.Strategy.Kind == pathsel.Complicated && cfg.Protocol == ProtocolPlain {
		cfg.Protocol = ProtocolCrowds
	}
	if cfg.Protocol == ProtocolCrowds && cfg.CrowdsPf == 0 {
		if g, ok := cfg.Strategy.Length.(dist.Geometric); ok {
			cfg.CrowdsPf = g.Pf
		}
		if cfg.CrowdsPf == 0 {
			// pf = 0 degenerates to direct sends (zero anonymity) and is
			// indistinguishable from "forgot to set it" — refuse rather
			// than silently produce meaningless predecessor statistics.
			return Config{}, fmt.Errorf("%w: crowds substrate needs a forwarding probability (set CrowdsPf or use a crowds:<pf> strategy)", ErrBadConfig)
		}
	}
	// A set forwarding probability must be a probability: values outside
	// (0,1) used to flow into the backends unchecked and surface as
	// backend-internal errors (or, worse, as a geometric distribution
	// constructed from garbage).
	if pf := cfg.CrowdsPf; pf != 0 && !(pf > 0 && pf < 1) {
		return Config{}, fmt.Errorf("%w: crowds forwarding probability %v outside (0,1)", ErrBadConfig, pf)
	}
	if cfg.Workload.Rounds < 0 {
		return Config{}, fmt.Errorf("%w: rounds = %d", ErrBadConfig, cfg.Workload.Rounds)
	}
	if cfg.Workload.Rounds == 0 {
		cfg.Workload.Rounds = 1
	}
	if c := cfg.Workload.Confidence; !(c >= 0 && c < 1) {
		// The negated conjunction also catches NaN, which would otherwise
		// slip through both comparisons and silently disable tracking.
		return Config{}, fmt.Errorf("%w: confidence %v outside [0,1)", ErrBadConfig, c)
	}
	if cfg.Workload.FixedSender {
		if int(cfg.Workload.Sender) < 0 || int(cfg.Workload.Sender) >= cfg.N {
			return Config{}, fmt.Errorf("%w: fixed sender %v outside [0,%d)", ErrBadConfig, cfg.Workload.Sender, cfg.N)
		}
		for _, id := range cfg.Adversary.Compromised {
			if id == cfg.Workload.Sender {
				return Config{}, fmt.Errorf("%w: fixed sender %v is compromised (identified at round 0)", ErrBadConfig, id)
			}
		}
	}
	if cfg.Workload.MaxHopDelay < 0 {
		// Rejected here so the error is uniformly ErrBadConfig instead of
		// surfacing as the testbed kernel's internal sentinel.
		return Config{}, fmt.Errorf("%w: MaxHopDelay %v", ErrBadConfig, cfg.Workload.MaxHopDelay)
	}
	if err := normalizeTimeline(&cfg); err != nil {
		return Config{}, err
	}
	if err := normalizeFaults(&cfg); err != nil {
		return Config{}, err
	}
	// Every sampled run needs a positive message budget. Validating here
	// keeps the error uniformly ErrBadConfig instead of leaking
	// backend-internal vocabularies (montecarlo used to report its own
	// "trials = 0", and only the testbed checked at all).
	sampled := cfg.Backend == BackendMonteCarlo || cfg.Backend == BackendTestbed ||
		(cfg.Backend == BackendExact && cfg.Workload.degradation())
	if sampled && cfg.Workload.Messages <= 0 {
		return Config{}, fmt.Errorf("%w: %s backend needs Workload.Messages > 0 (got %d)",
			ErrBadConfig, cfg.Backend, cfg.Workload.Messages)
	}
	return cfg, nil
}

// engineOptions derives the exact-engine options of a scenario.
func engineOptions(cfg Config) []events.Option {
	var opts []events.Option
	if cfg.Adversary.UncompromisedReceiver {
		opts = append(opts, events.WithUncompromisedReceiver())
	}
	if cfg.Adversary.NoSenderSelfReport {
		opts = append(opts, events.WithoutSenderSelfReport())
	}
	return append(opts, cfg.EngineOptions...)
}

// analyticProtocol reports whether the protocol's observable structure is
// the simple-path model the analytic backends compute on.
func analyticProtocol(p Protocol) bool {
	return p == ProtocolPlain || p == ProtocolOnion
}

// Interface compliance for the capability error (documentation aid).
var _ error = (*capability.Error)(nil)
