package scenario_test

// Reliability-layer tests: fault-plan validation is uniform across
// backends (rejection happens in the shared normalization), the three
// backends agree on lossy scenarios within sampling error, the reroute
// policy meets its delivery bound, retry evidence degrades anonymity
// monotonically in the loss rate, and every faulted run is bit-
// reproducible for a fixed seed.

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"anonmix/internal/faults"
	"anonmix/internal/scenario"
	"anonmix/internal/scenario/capability"
)

func isUnsupported(err error) bool {
	var capErr *capability.Error
	return errors.As(err, &capErr)
}

func lossyBase(n, c, messages int, q float64, pol faults.Policy) scenario.Config {
	return scenario.Config{
		N:            n,
		StrategySpec: "uniform:1,4",
		Adversary:    scenario.Adversary{Count: c},
		Workload:     scenario.Workload{Messages: messages, Seed: 42, Workers: 4},
		Faults:       &faults.Plan{LinkLoss: q},
		Reliability:  faults.Reliability{Policy: pol},
	}
}

// TestFaultValidation pins the scenario-layer contract of satellite (b):
// a malformed fault plan is rejected with ErrBadConfig by every backend,
// because the rejection happens in the shared normalization.
func TestFaultValidation(t *testing.T) {
	mutate := func(f func(*scenario.Config)) scenario.Config {
		cfg := lossyBase(10, 2, 100, 0.1, faults.PolicyNone)
		f(&cfg)
		return cfg
	}
	cases := []struct {
		name string
		cfg  scenario.Config
	}{
		{"loss-above-one", mutate(func(c *scenario.Config) { c.Faults.LinkLoss = 1.5 })},
		{"loss-negative", mutate(func(c *scenario.Config) { c.Faults.LinkLoss = -0.1 })},
		{"loss-nan", mutate(func(c *scenario.Config) { c.Faults.LinkLoss = math.NaN() })},
		{"jitter-negative", mutate(func(c *scenario.Config) { c.Faults.Jitter = -1 })},
		{"crash-node-out-of-range", mutate(func(c *scenario.Config) {
			c.Faults.Crashes = []faults.Crash{{Node: 50, At: 1}}
		})},
		{"crash-node-negative", mutate(func(c *scenario.Config) {
			c.Faults.Crashes = []faults.Crash{{Node: -1, At: 1}}
		})},
		{"crash-beyond-span", mutate(func(c *scenario.Config) {
			c.Faults.Crashes = []faults.Crash{{Node: 3, At: 1 << 60}}
		})},
		{"crash-recover-before-at", mutate(func(c *scenario.Config) {
			c.Faults.Crashes = []faults.Crash{{Node: 3, At: 10, Recover: 5}}
		})},
		{"reliability-without-plan", mutate(func(c *scenario.Config) {
			c.Faults = nil
			c.Reliability = faults.Reliability{Policy: faults.PolicyRetransmit}
		})},
		{"unknown-policy", mutate(func(c *scenario.Config) {
			c.Reliability.Policy = faults.Policy(99)
		})},
		{"negative-attempts", mutate(func(c *scenario.Config) {
			c.Reliability = faults.Reliability{Policy: faults.PolicyReroute, MaxAttempts: -2}
		})},
		{"negative-backoff", mutate(func(c *scenario.Config) {
			c.Reliability = faults.Reliability{Policy: faults.PolicyRetransmit, RetryBackoff: -time.Nanosecond}
		})},
		{"faults-with-crowds", mutate(func(c *scenario.Config) {
			c.Protocol = scenario.ProtocolCrowds
			c.CrowdsPf = 0.6
			c.StrategySpec = "crowds:0.6,5"
		})},
		{"faults-with-rounds", mutate(func(c *scenario.Config) { c.Workload.Rounds = 3 })},
		{"reroute-with-timeline", mutate(func(c *scenario.Config) {
			c.Reliability = faults.Reliability{Policy: faults.PolicyReroute}
			c.Workload.Messages = 0
			c.Timeline = []scenario.Epoch{{Messages: 100}, {Messages: 100, Compromise: 1}}
		})},
	}
	backends := []scenario.BackendKind{
		scenario.BackendExact, scenario.BackendMonteCarlo, scenario.BackendTestbed,
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, kind := range backends {
				cfg := tc.cfg
				cfg.Backend = kind
				if _, err := scenario.Run(cfg); !errors.Is(err, scenario.ErrBadConfig) {
					t.Errorf("%s: err = %v, want ErrBadConfig", kind, err)
				}
			}
		})
	}
}

// TestLosslessFaultFieldsDefault: a run without a fault plan reports the
// trivial reliability statistics on every backend.
func TestLosslessFaultFieldsDefault(t *testing.T) {
	for _, kind := range []scenario.BackendKind{
		scenario.BackendExact, scenario.BackendMonteCarlo, scenario.BackendTestbed,
	} {
		cfg := scenario.Config{
			N:            10,
			StrategySpec: "uniform:1,3",
			Adversary:    scenario.Adversary{Count: 2},
			Workload:     scenario.Workload{Messages: 500, Seed: 7, Workers: 2},
			Backend:      kind,
		}
		res, err := scenario.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.DeliveryRate != 1 || res.MeanAttempts != 1 {
			t.Errorf("%s: delivery = %v, attempts = %v, want 1, 1", kind, res.DeliveryRate, res.MeanAttempts)
		}
		if res.HDegraded != res.H {
			t.Errorf("%s: HDegraded = %v != H = %v", kind, res.HDegraded, res.H)
		}
	}
}

// TestLossyCrossBackendNone: under PolicyNone the exact backend's
// effective-delivery closed form, the loss-aware sampler, and the lossy
// kernel agree on H over delivered messages and on the delivery rate.
func TestLossyCrossBackendNone(t *testing.T) {
	for _, q := range []float64{0.05, 0.2} {
		t.Run(fmt.Sprintf("q=%v", q), func(t *testing.T) {
			cfg := lossyBase(12, 3, 6000, q, faults.PolicyNone)
			cfg.Backend = scenario.BackendExact
			exact, err := scenario.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if exact.HDegraded != exact.H {
				t.Errorf("exact HDegraded = %v != H = %v (no retries under PolicyNone)", exact.HDegraded, exact.H)
			}
			for _, kind := range []scenario.BackendKind{scenario.BackendMonteCarlo, scenario.BackendTestbed} {
				run := cfg
				run.Backend = kind
				res, err := scenario.Run(run)
				if err != nil {
					t.Fatalf("%s: %v", kind, err)
				}
				tol := 4*res.StdErr + 0.02
				if d := math.Abs(res.H - exact.H); d > tol {
					t.Errorf("%s H = %v ± %v, exact H = %v (Δ=%v > %v)", kind, res.H, res.StdErr, exact.H, d, tol)
				}
				// Delivery is a Bernoulli mean over the injected messages.
				se := math.Sqrt(exact.DeliveryRate*(1-exact.DeliveryRate)/6000) + 1e-9
				if d := math.Abs(res.DeliveryRate - exact.DeliveryRate); d > 4*se+0.01 {
					t.Errorf("%s delivery = %v, exact = %v (Δ=%v)", kind, res.DeliveryRate, exact.DeliveryRate, d)
				}
				if res.HDegraded != res.H {
					t.Errorf("%s HDegraded = %v != H = %v under PolicyNone", kind, res.HDegraded, res.H)
				}
				if res.MeanAttempts != 1 {
					t.Errorf("%s MeanAttempts = %v, want 1", kind, res.MeanAttempts)
				}
			}
		})
	}
}

// TestLossyCrossBackendRetry: the sampler and the kernel agree on every
// reliability statistic under both retry policies (the exact backend
// refuses them — pinned in TestExactRefusesRetryPolicies).
func TestLossyCrossBackendRetry(t *testing.T) {
	for _, pol := range []faults.Policy{faults.PolicyRetransmit, faults.PolicyReroute} {
		t.Run(pol.String(), func(t *testing.T) {
			cfg := lossyBase(12, 3, 6000, 0.1, pol)
			cfg.Backend = scenario.BackendMonteCarlo
			mc, err := scenario.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Backend = scenario.BackendTestbed
			tb, err := scenario.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			tol := 4*(mc.StdErr+tb.StdErr) + 0.02
			if d := math.Abs(mc.H - tb.H); d > tol {
				t.Errorf("H: mc = %v ± %v, testbed = %v ± %v (Δ=%v > %v)", mc.H, mc.StdErr, tb.H, tb.StdErr, d, tol)
			}
			if d := math.Abs(mc.HDegraded - tb.HDegraded); d > tol+0.03 {
				t.Errorf("HDegraded: mc = %v, testbed = %v (Δ=%v)", mc.HDegraded, tb.HDegraded, d)
			}
			if d := math.Abs(mc.DeliveryRate - tb.DeliveryRate); d > 0.02 {
				t.Errorf("delivery: mc = %v, testbed = %v", mc.DeliveryRate, tb.DeliveryRate)
			}
			if d := math.Abs(mc.MeanAttempts - tb.MeanAttempts); d > 0.1 {
				t.Errorf("attempts: mc = %v, testbed = %v", mc.MeanAttempts, tb.MeanAttempts)
			}
			for _, r := range []scenario.Result{mc, tb} {
				if r.HDegraded > r.H+1e-6 {
					t.Errorf("HDegraded = %v > H = %v", r.HDegraded, r.H)
				}
			}
		})
	}
}

// TestExactRefusesRetryPolicies: retry evidence is outside the closed
// forms, so the exact backend must refuse with a capability error rather
// than silently return the PolicyNone value.
func TestExactRefusesRetryPolicies(t *testing.T) {
	for _, pol := range []faults.Policy{faults.PolicyRetransmit, faults.PolicyReroute} {
		cfg := lossyBase(10, 2, 100, 0.1, pol)
		cfg.Backend = scenario.BackendExact
		_, err := scenario.Run(cfg)
		if !isUnsupported(err) {
			t.Errorf("%v: err = %v, want capability error", pol, err)
		}
	}
	crash := lossyBase(10, 2, 100, 0.1, faults.PolicyNone)
	crash.Faults.Crashes = []faults.Crash{{Node: 1, At: 3, Recover: 9}}
	for _, kind := range []scenario.BackendKind{scenario.BackendExact, scenario.BackendMonteCarlo} {
		cfg := crash
		cfg.Backend = kind
		if _, err := scenario.Run(cfg); !isUnsupported(err) {
			t.Errorf("%s with crashes: err = %v, want capability error", kind, err)
		}
	}
}

// TestRerouteDeliveryBound pins the acceptance criterion: rerouting with
// the default attempt budget at 5% link loss delivers at least 99% of
// the traffic.
func TestRerouteDeliveryBound(t *testing.T) {
	cfg := lossyBase(14, 3, 4000, 0.05, faults.PolicyReroute)
	cfg.Backend = scenario.BackendTestbed
	res, err := scenario.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRate < 0.99 {
		t.Errorf("reroute delivery = %v at 5%% loss, want ≥ 0.99", res.DeliveryRate)
	}
	if res.MeanAttempts < 1 || res.MeanAttempts > float64(faults.DefaultMaxAttempts) {
		t.Errorf("mean attempts = %v outside [1, %d]", res.MeanAttempts, faults.DefaultMaxAttempts)
	}
}

// TestTotalLossTerminates: a network losing every packet still settles,
// reports zero delivery, and H over (zero) delivered messages is zero —
// on every backend that accepts the policy.
func TestTotalLossTerminates(t *testing.T) {
	for _, pol := range []faults.Policy{faults.PolicyNone, faults.PolicyRetransmit, faults.PolicyReroute} {
		t.Run(pol.String(), func(t *testing.T) {
			for _, kind := range []scenario.BackendKind{
				scenario.BackendExact, scenario.BackendMonteCarlo, scenario.BackendTestbed,
			} {
				cfg := lossyBase(10, 2, 200, 1.0, pol)
				cfg.Backend = kind
				res, err := scenario.Run(cfg)
				if isUnsupported(err) {
					continue // exact refuses retry policies
				}
				if err != nil {
					t.Fatalf("%s: %v", kind, err)
				}
				if res.DeliveryRate != 0 || res.H != 0 || res.HDegraded != 0 {
					t.Errorf("%s: delivery = %v, H = %v, HDegraded = %v, want all zero",
						kind, res.DeliveryRate, res.H, res.HDegraded)
				}
			}
		})
	}
}

// TestDegradedGapGrowsWithLoss: the retry-anonymity cost — H minus the
// retry-degraded degree — is nonnegative and grows with the loss rate,
// the headline robustness trade-off of the reliability layer.
func TestDegradedGapGrowsWithLoss(t *testing.T) {
	gap := func(q float64) float64 {
		cfg := lossyBase(16, 4, 8000, q, faults.PolicyRetransmit)
		cfg.Backend = scenario.BackendMonteCarlo
		res, err := scenario.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		g := res.H - res.HDegraded
		if g < -1e-9 {
			t.Errorf("q=%v: HDegraded = %v above H = %v", q, res.HDegraded, res.H)
		}
		return g
	}
	g1, g5, g20 := gap(0.01), gap(0.05), gap(0.20)
	if g20 <= g1 {
		t.Errorf("gap(20%%) = %v not above gap(1%%) = %v", g20, g1)
	}
	if g20 <= g5 {
		t.Errorf("gap(20%%) = %v not above gap(5%%) = %v", g20, g5)
	}
	t.Logf("retry-anonymity cost: gap(1%%)=%.4f gap(5%%)=%.4f gap(20%%)=%.4f bits", g1, g5, g20)
}

// TestCrashScheduleTestbed: a crash-and-recover schedule runs only on the
// testbed; messages routed through the dead window drop (or retransmit
// around it) and the run still settles deterministically.
func TestCrashScheduleTestbed(t *testing.T) {
	for _, pol := range []faults.Policy{faults.PolicyNone, faults.PolicyRetransmit} {
		t.Run(pol.String(), func(t *testing.T) {
			cfg := lossyBase(12, 3, 2000, 0, pol)
			cfg.Faults.Crashes = []faults.Crash{
				{Node: 4, At: 10, Recover: 400},
				{Node: 7, At: 50}, // never recovers
			}
			cfg.Backend = scenario.BackendTestbed
			res, err := scenario.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.DeliveryRate >= 1 {
				t.Errorf("delivery = %v, want < 1 with a permanently dead relay", res.DeliveryRate)
			}
			if res.DeliveryRate < 0.5 {
				t.Errorf("delivery = %v collapsed", res.DeliveryRate)
			}
			again, err := scenario.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.H != again.H || res.HDegraded != again.HDegraded ||
				res.DeliveryRate != again.DeliveryRate || res.MeanAttempts != again.MeanAttempts {
				t.Errorf("crash run not reproducible: (%v,%v,%v,%v) vs (%v,%v,%v,%v)",
					res.H, res.HDegraded, res.DeliveryRate, res.MeanAttempts,
					again.H, again.HDegraded, again.DeliveryRate, again.MeanAttempts)
			}
		})
	}
}

// TestFaultyDeterminism: faulted runs are pure functions of the seed on
// every backend, across the multi-shard kernel included.
func TestFaultyDeterminism(t *testing.T) {
	for _, kind := range []scenario.BackendKind{scenario.BackendMonteCarlo, scenario.BackendTestbed} {
		for _, pol := range []faults.Policy{faults.PolicyRetransmit, faults.PolicyReroute} {
			cfg := lossyBase(12, 3, 2500, 0.15, pol)
			cfg.Backend = kind
			a, err := scenario.Run(cfg)
			if err != nil {
				t.Fatalf("%s/%v: %v", kind, pol, err)
			}
			b, err := scenario.Run(cfg)
			if err != nil {
				t.Fatalf("%s/%v: %v", kind, pol, err)
			}
			if a.H != b.H || a.HDegraded != b.HDegraded || a.DeliveryRate != b.DeliveryRate ||
				a.MeanAttempts != b.MeanAttempts || a.Trials != b.Trials {
				t.Errorf("%s/%v not reproducible: (%v,%v,%v,%v,%d) vs (%v,%v,%v,%v,%d)",
					kind, pol, a.H, a.HDegraded, a.DeliveryRate, a.MeanAttempts, a.Trials,
					b.H, b.HDegraded, b.DeliveryRate, b.MeanAttempts, b.Trials)
			}
		}
	}
}

// TestLossyTimeline: a dynamic-population timeline with link loss blends
// per-phase delivery and degraded entropy; the backends agree on the
// blended statistics.
func TestLossyTimeline(t *testing.T) {
	base := scenario.Config{
		N:            12,
		StrategySpec: "uniform:1,3",
		Adversary:    scenario.Adversary{Count: 2},
		Workload:     scenario.Workload{Seed: 11, Workers: 4},
		Timeline: []scenario.Epoch{
			{Messages: 3000},
			{Messages: 3000, Compromise: 1, Join: 2},
		},
		Faults: &faults.Plan{LinkLoss: 0.1},
	}
	t.Run("policy-none-three-way", func(t *testing.T) {
		cfg := base
		cfg.Backend = scenario.BackendExact
		exact, err := scenario.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range []scenario.BackendKind{scenario.BackendMonteCarlo, scenario.BackendTestbed} {
			run := cfg
			run.Backend = kind
			res, err := scenario.Run(run)
			if err != nil {
				t.Fatalf("%s: %v", kind, err)
			}
			tol := 4*res.StdErr + 0.03
			if d := math.Abs(res.H - exact.H); d > tol {
				t.Errorf("%s H = %v ± %v, exact = %v (Δ=%v > %v)", kind, res.H, res.StdErr, exact.H, d, tol)
			}
			if d := math.Abs(res.DeliveryRate - exact.DeliveryRate); d > 0.02 {
				t.Errorf("%s delivery = %v, exact = %v", kind, res.DeliveryRate, exact.DeliveryRate)
			}
		}
	})
	t.Run("retransmit-mc-vs-testbed", func(t *testing.T) {
		cfg := base
		cfg.Reliability = faults.Reliability{Policy: faults.PolicyRetransmit}
		cfg.Backend = scenario.BackendMonteCarlo
		mc, err := scenario.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Backend = scenario.BackendTestbed
		tb, err := scenario.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tol := 4*(mc.StdErr+tb.StdErr) + 0.03
		if d := math.Abs(mc.H - tb.H); d > tol {
			t.Errorf("H: mc = %v ± %v, testbed = %v ± %v (Δ=%v > %v)", mc.H, mc.StdErr, tb.H, tb.StdErr, d, tol)
		}
		if d := math.Abs(mc.HDegraded - tb.HDegraded); d > tol+0.05 {
			t.Errorf("HDegraded: mc = %v, testbed = %v", mc.HDegraded, tb.HDegraded)
		}
		if d := math.Abs(mc.DeliveryRate - tb.DeliveryRate); d > 0.02 {
			t.Errorf("delivery: mc = %v, testbed = %v", mc.DeliveryRate, tb.DeliveryRate)
		}
		if tb.HDegraded > tb.H+1e-6 {
			t.Errorf("testbed HDegraded = %v > H = %v", tb.HDegraded, tb.H)
		}
	})
}

// TestFaultedMixAndOnion: the fault machinery composes with the onion and
// threshold-mix substrates (testbed-only protocols for loss + retransmit).
func TestFaultedMixAndOnion(t *testing.T) {
	for _, proto := range []scenario.Protocol{scenario.ProtocolOnion, scenario.ProtocolMix} {
		t.Run(proto.String(), func(t *testing.T) {
			cfg := lossyBase(12, 3, 1500, 0.1, faults.PolicyRetransmit)
			cfg.Protocol = proto
			cfg.Backend = scenario.BackendTestbed
			res, err := scenario.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.DeliveryRate <= 0.5 || res.DeliveryRate > 1 {
				t.Errorf("delivery = %v", res.DeliveryRate)
			}
			if res.HDegraded > res.H+1e-6 {
				t.Errorf("HDegraded = %v > H = %v", res.HDegraded, res.H)
			}
			if res.MeanAttempts <= 1 {
				t.Errorf("mean attempts = %v, want > 1 under 10%% loss retransmit", res.MeanAttempts)
			}
		})
	}
}

