package scenario

// White-box tests for the fault-analysis helpers: the degenerate branches
// the end-to-end reliability suite cannot steer the kernel into — an
// observer missing from a trace, partials the adversary discards, the
// zero-injection attempt statistic, and the unexpected-drop guard firing
// on a real defect (a forwarder error) rather than the fault process.

import (
	"strings"
	"testing"
	"time"

	"anonmix/internal/adversary"
	"anonmix/internal/dist"
	"anonmix/internal/events"
	"anonmix/internal/montecarlo"
	"anonmix/internal/simnet"
	"anonmix/internal/trace"
)

func TestTruncateAtObserverAbsent(t *testing.T) {
	comp := map[trace.NodeID]bool{3: true}
	mt := montecarlo.Synthesize(1, 5, []trace.NodeID{3, 7}, func(id trace.NodeID) bool { return comp[id] })
	if got := truncateAtObserver(mt, 3); got == nil || len(got.Reports) == 0 {
		t.Errorf("observer 3 reported, got %v", got)
	}
	if got := truncateAtObserver(mt, 99); got != nil {
		t.Errorf("observer 99 never reported, got %v", got)
	}
}

func TestFoldDegradedSkipsUnusablePartials(t *testing.T) {
	e, err := events.New(12, 2)
	if err != nil {
		t.Fatal(err)
	}
	eU, err := events.New(12, 2, events.WithUncompromisedReceiver())
	if err != nil {
		t.Fatal(err)
	}
	u, err := dist.NewUniform(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	compromised := []trace.NodeID{0, 1}
	analyst, err := adversary.NewAnalyst(e, u, compromised)
	if err != nil {
		t.Fatal(err)
	}
	analystU, err := adversary.NewAnalyst(eU, u, compromised)
	if err != nil {
		t.Fatal(err)
	}
	isComp := func(id trace.NodeID) bool { return id < 2 }
	mt := montecarlo.Synthesize(7, 5, []trace.NodeID{1, 8}, isComp)
	plain, err := analyst.Entropy(mt)
	if err != nil {
		t.Fatal(err)
	}
	// A nil partial (observer absent from the delivered trace) and an
	// unclassifiable one must both be skipped, leaving the plain entropy.
	junk := &trace.MessageTrace{Msg: 7, Reports: []trace.Tuple{
		{Msg: 7, Time: 1, Observer: 0, Pred: 0, Succ: 0},
		{Msg: 7, Time: 2, Observer: 0, Pred: 0, Succ: 0},
		{Msg: 7, Time: 3, Observer: 0, Pred: 0, Succ: 0},
	}}
	acc, err := adversary.NewAccumulator(analyst)
	if err != nil {
		t.Fatal(err)
	}
	var sc adversary.Scratch
	h, err := foldDegraded(acc, analystU, mt, []*trace.MessageTrace{nil, junk}, &sc)
	if err != nil {
		t.Fatal(err)
	}
	if diff := h - plain; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("skipped partials changed entropy: %v vs %v", h, plain)
	}
}

func TestFaultAnalysisMeanAttemptsZeroInjected(t *testing.T) {
	fa := &faultAnalysis{retryN: 5}
	if got := fa.meanAttempts(0); got != 1 {
		t.Errorf("meanAttempts(0) = %v, want 1", got)
	}
	if got := fa.meanAttempts(10); got != 1.5 {
		t.Errorf("meanAttempts(10) = %v, want 1.5", got)
	}
}

// erringForwarder rejects every packet, producing DropForwarder — a drop
// cause fault injection never generates.
type erringForwarder struct{}

func (erringForwarder) Next(self trace.NodeID, pkt *simnet.Packet) (trace.NodeID, error) {
	return 0, errForward
}

var errForward = &forwardError{}

type forwardError struct{}

func (*forwardError) Error() string { return "synthetic forwarder failure" }

func TestCheckUnexpectedDropsFlagsRealDefects(t *testing.T) {
	nw, err := simnet.New(simnet.Config{N: 8, Forwarder: erringForwarder{}})
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	defer nw.Close()
	if _, err := nw.Inject(0, 3, simnet.Packet{Onion: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if err := nw.WaitSettled(time.Minute); err != nil {
		t.Fatal(err)
	}
	err = checkUnexpectedDrops(nw)
	if err == nil || !strings.Contains(err.Error(), "unexpected cause") {
		t.Errorf("forwarder drop not flagged: %v", err)
	}
}

func TestProtocolStrings(t *testing.T) {
	cases := map[Protocol]string{
		ProtocolPlain:  "plain",
		ProtocolOnion:  "onion",
		ProtocolCrowds: "crowds",
		ProtocolMix:    "mix",
		Protocol(42):   "Protocol(42)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Protocol(%d).String() = %q, want %q", uint8(p), got, want)
		}
	}
}

func TestNewAnalystFacade(t *testing.T) {
	a, err := NewAnalyst(Config{
		N:            20,
		StrategySpec: "uniform:1,5",
		Adversary:    Adversary{Count: 2},
		Workload:     Workload{Messages: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Compromised(0) || a.Compromised(5) {
		t.Error("analyst compromised set wrong")
	}
	if _, err := NewAnalyst(Config{N: -1}); err == nil {
		t.Error("bad config accepted")
	}
}
