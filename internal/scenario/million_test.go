package scenario_test

// The scale acceptance test of the sharded kernel, driven through the full
// scenario stack: N = 1,000,000 nodes, 1,000 messages, adversarial
// analysis included — with goroutines and memory scaling with the shard
// count and the in-flight traffic, never with N.

import (
	"runtime"
	"testing"

	"anonmix/internal/scenario"
)

func TestMillionNodeScenario(t *testing.T) {
	res, err := scenario.Run(scenario.Config{
		N:            1_000_000,
		Backend:      scenario.BackendTestbed,
		StrategySpec: "uniform:1,7",
		Adversary:    scenario.Adversary{Count: 1000},
		Workload:     scenario.Workload{Messages: 1000, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 1000 {
		t.Errorf("trials = %d", res.Trials)
	}
	if res.Kernel == nil {
		t.Fatal("no kernel stats")
	}
	// Kernel.Goroutines is the run's delta over the process baseline: the
	// shard goroutines, never O(N).
	if res.Kernel.Goroutines > runtime.GOMAXPROCS(0)+8 {
		t.Errorf("testbed added %d goroutines for N=1e6 (want O(shards))", res.Kernel.Goroutines)
	}
	// With C/N = 0.1% the anonymity degree stays near the log2(N) bound.
	if res.H <= 0.95*res.MaxH || res.H > res.MaxH {
		t.Errorf("H = %v bits, bound %v", res.H, res.MaxH)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > 4<<30 {
		t.Errorf("heap after run = %d MiB (budget 4 GiB)", ms.HeapAlloc>>20)
	}
}

// TestMillionNodeChurnScenario: the dynamic-population machinery keeps the
// kernel's scale properties — a million-node timeline with joins, leaves,
// and time-phased compromise stays within the same goroutine and heap
// budgets as the static run (churn state is per-churned-node, never O(N)).
func TestMillionNodeChurnScenario(t *testing.T) {
	res, err := scenario.Run(scenario.Config{
		N:            1_000_000,
		Backend:      scenario.BackendTestbed,
		StrategySpec: "uniform:1,7",
		Adversary:    scenario.Adversary{Count: 1000},
		Timeline: []scenario.Epoch{
			{Messages: 400},
			{Messages: 300, Join: 2000, Compromise: 500},
			{Messages: 300, Leave: 1000, Recover: 200},
		},
		Workload: scenario.Workload{Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 1000 {
		t.Errorf("trials = %d", res.Trials)
	}
	if res.Kernel == nil {
		t.Fatal("no kernel stats")
	}
	if res.Kernel.Churn != 3700 {
		t.Errorf("kernel churn events = %d, want 3700", res.Kernel.Churn)
	}
	if res.Kernel.Goroutines > runtime.GOMAXPROCS(0)+8 {
		t.Errorf("testbed added %d goroutines for N=1e6 churn (want O(shards))", res.Kernel.Goroutines)
	}
	if len(res.Epochs) != 3 {
		t.Fatalf("epochs = %+v", res.Epochs)
	}
	if res.Epochs[1].N != 1_002_000 || res.Epochs[1].C != 1500 {
		t.Errorf("epoch 1 population = (%d, %d), want (1002000, 1500)", res.Epochs[1].N, res.Epochs[1].C)
	}
	if res.Epochs[2].N != 1_001_000 || res.Epochs[2].C != 1300 {
		t.Errorf("epoch 2 population = (%d, %d), want (1001000, 1300)", res.Epochs[2].N, res.Epochs[2].C)
	}
	// With C/N ≈ 0.1–0.15% the anonymity degree stays near the bound.
	if res.H <= 0.95*res.MaxH || res.H > res.MaxH {
		t.Errorf("H = %v bits, bound %v", res.H, res.MaxH)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > 4<<30 {
		t.Errorf("heap after churn run = %d MiB (budget 4 GiB)", ms.HeapAlloc>>20)
	}
}
